// The Figure-5 scenario on the prepared-query lifecycle: three cleaning
// operations that share a grouping on `address`, prepared ONCE and then
// executed under per-call ExecOptions — separate vs. unified (the ablation
// that used to require constructing a whole new CleanDB), plus a unified
// re-execution that is served from the session partition cache.
//
//   build/examples/example_unified_cleaning
#include <cstdio>

#include "cleaning/prepared_query.h"
#include "datagen/generators.h"

using namespace cleanm;

int main() {
  datagen::CustomerOptions copts;
  copts.base_rows = 3000;
  copts.duplicate_fraction = 0.08;
  copts.max_duplicates = 6;
  copts.fd_violation_fraction = 0.05;

  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("customer", datagen::MakeCustomer(copts));

  // Parse + desugar + normalize + Nest-coalesce happen here, exactly once.
  auto prepared = db.Prepare(R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, LD, 0.8, c.address)
  )");
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  PreparedQuery& pq = prepared.value();

  auto report = [](const char* label, const QueryResult& r) {
    std::printf("--- %s ---\n", label);
    std::printf("  nest stages coalesced: %d\n", r.nests_coalesced);
    for (const auto& op : r.ops) {
      std::printf("  %-10s %6zu violations  %.3f s\n", op.op_name.c_str(),
                  op.violations.size(), op.seconds);
    }
    std::printf("  dirty entities: %zu | rows shuffled: %llu | shuffle batches: %llu\n",
                r.dirty_entities.size(),
                static_cast<unsigned long long>(r.metrics.rows_shuffled),
                static_cast<unsigned long long>(r.metrics.shuffle_batches));
    std::printf("  partition cache: %s\n\n", r.cache.ToString().c_str());
  };

  // The ablation, per call: the same PreparedQuery runs unified or separate.
  ExecOptions separate;
  separate.unify_operations = false;
  report("separate execution", pq.Execute(separate).ValueOrDie());

  ExecOptions unified;
  unified.unify_operations = true;
  report("unified execution (cold)", pq.Execute(unified).ValueOrDie());

  // Re-execution: scans and the coalesced grouping come from the session
  // cache — zero re-partitioning (scan_misses = 0 in the cache stats).
  report("unified re-execution (cached)", pq.Execute(unified).ValueOrDie());

  std::printf("The unified run groups the customer table once for all three "
              "operations (Plan BC of the paper's Figure 1), so it shuffles "
              "fewer rows than the separate run; the re-execution additionally "
              "reuses the cached partitionings, so it shuffles nothing.\n");
  return 0;
}
