// The Figure-5 scenario, programmatically: three cleaning operations that
// share a grouping on `address`, executed separately and as one unified
// query — showing the optimizer's Nest coalescing and its effect on
// shuffle traffic.
//
//   build/examples/example_unified_cleaning
#include <cstdio>

#include "cleaning/cleandb.h"
#include "datagen/generators.h"

using namespace cleanm;

int main() {
  datagen::CustomerOptions copts;
  copts.base_rows = 3000;
  copts.duplicate_fraction = 0.08;
  copts.max_duplicates = 6;
  copts.fd_violation_fraction = 0.05;
  auto customer = datagen::MakeCustomer(copts);

  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, LD, 0.8, c.address)
  )";

  for (bool unify : {false, true}) {
    CleanDBOptions options;
    options.num_nodes = 4;
    options.unify_operations = unify;
    CleanDB db(options);
    db.RegisterTable("customer", customer);
    auto result = db.Execute(query).ValueOrDie();
    std::printf("--- %s execution ---\n", unify ? "unified" : "separate");
    std::printf("  nest stages coalesced: %d\n", result.nests_coalesced);
    for (const auto& op : result.ops) {
      std::printf("  %-10s %6zu violations  %.3f s\n", op.op_name.c_str(),
                  op.violations.size(), op.seconds);
    }
    std::printf("  dirty entities: %zu | rows shuffled: %llu | total %.3f s\n\n",
                result.dirty_entities.size(),
                static_cast<unsigned long long>(result.rows_shuffled),
                result.total_seconds);
  }
  std::printf("The unified run groups the customer table once for all three "
              "operations (Plan BC of the paper's Figure 1), so it shuffles "
              "fewer rows than the separate run.\n");
  return 0;
}
