// Deduplicating a nested bibliography, end to end over raw files:
// generate DBLP-like XML → read it → DEDUP on (journal, title) → write a
// cleaned JSON-lines file. Demonstrates the heterogeneous-data path
// (Section 3: the same cleaning query over XML/JSON/columnar data).
//
//   build/examples/example_dedup_pipeline
#include <cstdio>
#include <filesystem>
#include <set>

#include "cleaning/cleandb.h"
#include "datagen/generators.h"
#include "storage/json.h"
#include "storage/xml.h"

using namespace cleanm;

int main() {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "cleanm_example";
  fs::create_directories(dir);
  const std::string xml_path = (dir / "dblp.xml").string();
  const std::string clean_path = (dir / "dblp_clean.jsonl").string();

  // 1. Synthesize a dirty bibliography and store it as XML.
  datagen::DblpOptions dopts;
  dopts.rows = 800;
  dopts.duplicate_fraction = 0.15;
  auto dirty = datagen::MakeDblp(dopts);
  CLEANM_CHECK(WriteXml(dirty, xml_path).ok());
  std::printf("wrote %zu publications (with injected duplicates) to %s\n",
              dirty.num_rows(), xml_path.c_str());

  // 2. Read the XML back — repeated <author> elements become a list column,
  //    no flattening required.
  auto loaded = ReadXml(xml_path).ValueOrDie();

  // 3. Find duplicate publications: same journal + title, records >= 80%
  //    similar.
  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("dblp", loaded);
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;
  dedup.metric = SimilarityMetric::kLevenshtein;
  dedup.theta = 0.8;
  dedup.attributes = {ParseCleanMExpr("p.journal").ValueOrDie(),
                      ParseCleanMExpr("p.title").ValueOrDie()};
  auto result = db.Deduplicate("dblp", "p", dedup).ValueOrDie();
  std::printf("found %zu duplicate pair(s) in %.3f s\n", result.violations.size(),
              result.seconds);

  // 4. Repair: keep the first member of every duplicate pair, drop the rest.
  std::set<uint64_t> drop;
  for (const auto& pair : result.violations) {
    drop.insert(pair.GetField("p2").ValueOrDie().Hash());
  }
  Dataset cleaned(loaded.schema());
  for (const auto& row : loaded.rows()) {
    if (!drop.count(RowToRecord(loaded.schema(), row).Hash())) cleaned.Append(row);
  }
  CLEANM_CHECK(WriteJsonLines(cleaned, clean_path).ok());
  std::printf("kept %zu of %zu records; cleaned dataset written to %s\n",
              cleaned.num_rows(), loaded.num_rows(), clean_path.c_str());
  return 0;
}
