// Deduplicating a nested bibliography, end to end over raw files:
// generate DBLP-like XML → read it → DEDUP on (journal, title) → write a
// cleaned JSON-lines file. Demonstrates the heterogeneous-data path
// (Section 3: the same cleaning query over XML/JSON/columnar data).
//
//   build/examples/example_dedup_pipeline
#include <cstdio>
#include <filesystem>
#include <set>

#include "cleaning/prepared_query.h"
#include "datagen/generators.h"
#include "storage/json.h"
#include "storage/xml.h"

using namespace cleanm;

namespace {

/// Streaming repair sink: collects only the hashes of the records to drop
/// (the second member of every duplicate pair) instead of materializing the
/// violation pairs themselves.
class DropSecondMemberSink : public ViolationSink {
 public:
  Status OnViolation(const std::string&, const Value& pair) override {
    pairs_++;
    drop_.insert(pair.GetField("p2").ValueOrDie().Hash());
    return Status::OK();
  }
  Status OnDirtyEntity(const Value&, const std::vector<std::string>&) override {
    return Status::OK();
  }
  const std::set<uint64_t>& drop() const { return drop_; }
  size_t pairs() const { return pairs_; }

 private:
  std::set<uint64_t> drop_;
  size_t pairs_ = 0;
};

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "cleanm_example";
  fs::create_directories(dir);
  const std::string xml_path = (dir / "dblp.xml").string();
  const std::string clean_path = (dir / "dblp_clean.jsonl").string();

  // 1. Synthesize a dirty bibliography and store it as XML.
  datagen::DblpOptions dopts;
  dopts.rows = 800;
  dopts.duplicate_fraction = 0.15;
  auto dirty = datagen::MakeDblp(dopts);
  CLEANM_CHECK(WriteXml(dirty, xml_path).ok());
  std::printf("wrote %zu publications (with injected duplicates) to %s\n",
              dirty.num_rows(), xml_path.c_str());

  // 2. Read the XML back — repeated <author> elements become a list column,
  //    no flattening required.
  auto loaded = ReadXml(xml_path).ValueOrDie();

  // 3. Find duplicate publications: same journal + title, records >= 80%
  //    similar. The DEDUP clause is prepared once; the repair below streams
  //    the pairs through a sink instead of materializing them.
  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("dblp", loaded);
  auto prepared = db.Prepare(
      "SELECT * FROM dblp p DEDUP(exact, LD, 0.8, p.journal, p.title)");
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  DropSecondMemberSink sink;
  CLEANM_CHECK(prepared.value().ExecuteInto(sink).ok());
  std::printf("found %zu duplicate pair(s)\n", sink.pairs());

  // 4. Repair: keep the first member of every duplicate pair, drop the rest.
  Dataset cleaned(loaded.schema());
  for (const auto& row : loaded.rows()) {
    if (!sink.drop().count(RowToRecord(loaded.schema(), row).Hash())) {
      cleaned.Append(row);
    }
  }
  CLEANM_CHECK(WriteJsonLines(cleaned, clean_path).ok());
  std::printf("kept %zu of %zu records; cleaned dataset written to %s\n",
              cleaned.num_rows(), loaded.num_rows(), clean_path.c_str());
  return 0;
}
