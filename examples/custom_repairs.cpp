// Custom repairs: extend CleanM with user-defined functions and close the
// detect → repair → re-register loop in one session.
//
//   1. Register a scalar function (normalize_phone), a monoid-annotated
//      aggregate (distinct_prefixes: set-of-prefixes with a count
//      finalize), and a repair function (fix_phone_prefix).
//   2. Run a user-written GROUP BY / HAVING query that detects the
//      violating address groups on the clustered engine and computes the
//      repairs in SELECT position.
//   3. Stream the repair actions into a RepairSink, Commit() — the
//      repaired table is re-registered under a bumped generation — and
//      show that re-running the same prepared query now finds nothing.
//
//   build/examples/example_custom_repairs
#include <cstdio>

#include "cleaning/prepared_query.h"
#include "repair/repair_sink.h"

using namespace cleanm;

namespace {

std::string TrimSpaces(const std::string& s) {
  const size_t b = s.find_first_not_of(' ');
  if (b == std::string::npos) return std::string();
  const size_t e = s.find_last_not_of(' ');
  return s.substr(b, e - b + 1);
}

std::string PhonePrefix(const std::string& phone) {
  const std::string p = TrimSpaces(phone);
  const size_t dash = p.find('-');
  return dash == std::string::npos ? p.substr(0, 3) : p.substr(0, dash);
}

Dataset MakeCustomers() {
  Dataset d(Schema{{"name", ValueType::kString},
                   {"address", ValueType::kString},
                   {"phone", ValueType::kString}});
  d.Append({Value("alice"), Value("rue de lausanne 1"), Value("021-555-0001")});
  d.Append({Value("bob"), Value("rue de lausanne 1"), Value(" 022-555-0002 ")});
  d.Append({Value("carol"), Value("bahnhofstrasse 3"), Value("044-555-0003")});
  d.Append({Value("alicia"), Value("rue de lausanne 1"), Value("021-555-0004")});
  d.Append({Value("dan"), Value("bahnhofstrasse 3"), Value("044-555-0005")});
  return d;
}

void RegisterFunctions(CleanDB& db) {
  // Scalar: trim stray whitespace off a phone before comparing prefixes.
  Status st = db.functions()
      .RegisterScalar("normalize_phone", 1,
                      [](const std::vector<Value>& args) -> Result<Value> {
                        if (args[0].type() != ValueType::kString) return args[0];
                        const std::string& s = args[0].AsString();
                        const size_t b = s.find_first_not_of(' ');
                        if (b == std::string::npos) return Value(std::string());
                        const size_t e = s.find_last_not_of(' ');
                        return Value(s.substr(b, e - b + 1));
                      });
  CLEANM_CHECK(st.ok());

  // Aggregate with the full monoid annotation: zero = empty set, unit =
  // singleton set, merge = set union — so it pre-aggregates locally on
  // every node and merges partials, like the built-ins — plus a finalize
  // mapping the set to its size.
  st = db.functions()
      .RegisterAggregate(
          "distinct_prefixes", Value(ValueList{}),
          /*unit=*/
          [](const Value& v) {
            if (v.type() != ValueType::kString) return Value(ValueList{});
            return Value(ValueList{Value(PhonePrefix(v.AsString()))});
          },
          /*merge=*/
          [](Value a, const Value& b) {
            auto& set = a.MutableList();
            for (const auto& v : b.AsList()) {
              bool found = false;
              for (const auto& existing : set) {
                if (existing.Equals(v)) {
                  found = true;
                  break;
                }
              }
              if (!found) set.push_back(v);
            }
            return a;
          },
          /*finalize=*/
          [](const std::vector<Value>& acc) -> Result<Value> {
            return Value(static_cast<int64_t>(acc[0].AsList().size()));
          },
          /*commutative=*/true, /*idempotent=*/true);
  CLEANM_CHECK(st.ok());

  // Repair: rewrite every deviating phone in a group to the group's
  // majority (here: minimal) prefix. Returns repair actions per the
  // contract in functions/function_registry.h.
  st = db.functions()
      .RegisterRepair(
          "fix_phone_prefix", 1,
          [](const std::vector<Value>& args) -> Result<Value> {
            std::string target;
            bool have_target = false;
            for (const auto& rec : args[0].AsList()) {
              auto phone = rec.GetField("phone");
              if (!phone.ok()) continue;
              const std::string p = PhonePrefix(phone.value().AsString());
              if (!have_target || p < target) {
                target = p;
                have_target = true;
              }
            }
            ValueList actions;
            for (const auto& rec : args[0].AsList()) {
              auto phone = rec.GetField("phone");
              if (!phone.ok()) continue;
              const std::string full = TrimSpaces(phone.value().AsString());
              if (PhonePrefix(full) == target) continue;
              const size_t dash = full.find('-');
              const std::string fixed =
                  target + (dash == std::string::npos ? "" : full.substr(dash));
              actions.push_back(Value(ValueStruct{
                  {"entity", rec},
                  {"set", Value(ValueStruct{{"phone", Value(fixed)}})}}));
            }
            return Value(std::move(actions));
          });
  CLEANM_CHECK(st.ok());
}

void PrintTable(const CleanDB& db, const char* name) {
  const Dataset* t = db.GetTable(name).ValueOrDie();
  for (const auto& row : t->rows()) {
    std::printf("  %-8s %-20s %s\n", row[0].AsString().c_str(),
                row[1].AsString().c_str(), row[2].ToString().c_str());
  }
}

}  // namespace

int main() {
  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("customer", MakeCustomers());
  RegisterFunctions(db);

  std::printf("== customer (dirty) ==\n");
  PrintTable(db, "customer");

  // Detect + repair in one CleanM query: GROUP BY address, keep groups
  // whose (normalized) phones span more than one prefix, and compute the
  // cell-wise fixes with the registered repair function.
  const char* query =
      "SELECT c.address AS addr, "
      "       distinct_prefixes(normalize_phone(c.phone)) AS prefixes, "
      "       fix_phone_prefix(bag(c)) AS fixes "
      "FROM customer c "
      "GROUP BY c.address "
      "HAVING prefixes > 1";
  auto prepared_r = db.Prepare(query);
  CLEANM_CHECK(prepared_r.ok());
  PreparedQuery& prepared = prepared_r.value();

  RepairSink sink(&db, prepared);
  Status st = prepared.ExecuteInto(sink);
  if (!st.ok()) {
    std::printf("execution failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n== detected ==\n  %zu repair action(s); engine counters: %s\n",
              sink.actions().size(),
              db.cluster().metrics().Snapshot().ToString().c_str());

  auto summary = sink.Commit().ValueOrDie();
  std::printf("\n== repaired ==\n"
              "  table '%s' re-registered at generation %llu: %zu row(s), "
              "%zu cell(s) changed\n",
              summary.table.c_str(),
              static_cast<unsigned long long>(summary.new_generation),
              summary.rows_changed, summary.cells_changed);

  std::printf("\n== customer (clean) ==\n");
  PrintTable(db, "customer");

  // The repaired table is a first-class input: the same prepared query,
  // re-executed, binds the new generation and finds nothing left.
  auto after = prepared.Execute().ValueOrDie();
  std::printf("\n== re-check ==\n  violating groups after repair: %zu\n",
              after.ops.back().violations.size());
  return after.ops.back().violations.empty() ? 0 : 1;
}
