// Term validation with suggested repairs: validate noisy author names
// against a dictionary, comparing the token-filtering and k-means pruning
// monoids (Section 4.3) on the same corpus.
//
//   build/examples/example_term_validation
#include <cstdio>

#include "cleaning/cleandb.h"
#include "datagen/generators.h"

using namespace cleanm;

int main() {
  // Noisy author occurrences + the clean dictionary.
  std::vector<std::pair<std::string, std::string>> ground_truth;
  datagen::DblpOptions dopts;
  dopts.rows = 300;
  dopts.noise_fraction = 0.15;
  dopts.duplicate_fraction = 0;
  auto dblp = datagen::MakeDblp(dopts, &ground_truth);

  // Flatten the author lists so each occurrence is one row.
  auto flat = FlattenListColumn(dblp, "author").ValueOrDie();
  Dataset dict(Schema{{"name", ValueType::kString}});
  {
    std::set<std::string> names;
    for (const auto& [dirty, clean] : ground_truth) names.insert(clean);
    for (const auto& n : names) dict.Append({Value(n)});
  }
  std::printf("%zu author occurrences, %zu ground-truth misspellings, dictionary of %zu\n",
              flat.num_rows(), ground_truth.size(), dict.num_rows());

  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("authors", flat);
  db.RegisterTable("dict", dict);

  for (auto algo : {FilteringAlgo::kTokenFiltering, FilteringAlgo::kKMeans}) {
    ClusterByClause cb;
    cb.op = algo;
    cb.metric = SimilarityMetric::kLevenshtein;
    cb.theta = 0.75;
    cb.term = ParseCleanMExpr("a.author").ValueOrDie();
    auto result = db.ValidateTerms("authors", "a", "dict", "name", cb).ValueOrDie();
    std::printf("\n--- %s: %zu suggestion(s) in %.3f s (showing up to 5) ---\n",
                algo == FilteringAlgo::kTokenFiltering ? "token filtering" : "k-means",
                result.violations.size(), result.seconds);
    size_t shown = 0;
    for (const auto& v : result.violations) {
      if (shown++ >= 5) break;
      std::printf("  '%s' -> '%s'\n",
                  v.GetField("term").ValueOrDie().AsString().c_str(),
                  v.GetField("suggestion").ValueOrDie().AsString().c_str());
    }
  }
  // Both runs validate against the same dictionary; the session partition
  // cache serves the dictionary scan of the k-means pass from memory
  // (scan_hits > 0) while the per-call dirty-term table, which changes and
  // is re-registered each time, never sticks (generation invalidation).
  std::printf("\nsession partition cache after both passes: %s\n",
              db.partition_cache().stats().ToString().c_str());
  return 0;
}
