// Quickstart: register a table, run the paper's motivating CleanM query,
// and inspect the unified violation report.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "cleaning/cleandb.h"

using namespace cleanm;

int main() {
  // A tiny customer table with three kinds of dirt: an FD violation
  // (same address, two phone prefixes), a near-duplicate pair, and a
  // misspelled name.
  Dataset customer(Schema{{"name", ValueType::kString},
                          {"address", ValueType::kString},
                          {"phone", ValueType::kString}});
  customer.Append({Value("john smith"), Value("rue de lausanne 1"), Value("021-555-0001")});
  customer.Append({Value("john smith"), Value("rue de lausanne 1"), Value("022-555-0002")});
  customer.Append({Value("mary jones"), Value("bahnhofstrasse 3"), Value("044-555-0003")});
  customer.Append({Value("mary jonse"), Value("bahnhofstrasse 3"), Value("044-555-0004")});

  Dataset dictionary(Schema{{"name", ValueType::kString}});
  dictionary.Append({Value("john smith")});
  dictionary.Append({Value("mary jones")});

  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("customer", std::move(customer));
  db.RegisterTable("dictionary", std::move(dictionary));

  // The compound cleaning task of the paper's introduction: validate the
  // FD address → prefix(phone), detect duplicate customers, and validate
  // names against the dictionary — one declarative query, optimized as a
  // whole.
  const char* query = R"(
    SELECT c.name, c.address, *
    FROM customer c, dictionary d
    FD(c.address, prefix(c.phone))
    DEDUP(token filtering, LD, 0.8, c.address)
    CLUSTER BY(token filtering, LD, 0.8, c.name)
  )";

  auto result = db.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Executed the motivating example query.\n");
  std::printf("Nest stages coalesced by the optimizer: %d\n",
              result.value().nests_coalesced);
  for (const auto& op : result.value().ops) {
    std::printf("\n[%s] %zu violation(s)\n", op.op_name.c_str(), op.violations.size());
    for (const auto& v : op.violations) {
      std::printf("  %s\n", v.ToString().c_str());
    }
  }
  std::printf("\nEntities with at least one violation (the unified outer join):\n");
  for (const auto& [entity, ops] : result.value().dirty_entities) {
    std::printf("  %s  <-", entity.ToString().c_str());
    for (const auto& name : ops) std::printf(" %s", name.c_str());
    std::printf("\n");
  }
  return 0;
}
