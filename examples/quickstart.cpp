// Quickstart: register tables, prepare the paper's motivating CleanM query
// once, execute it, and stream the violation report through a sink.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "cleaning/prepared_query.h"
#include "cleaning/query_profile.h"

using namespace cleanm;

namespace {

/// A streaming sink that prints violations and dirty entities as the
/// execution produces them — no materialized QueryResult anywhere.
class PrintingSink : public ViolationSink {
 public:
  Status OnOpBegin(const std::string& op_name) override {
    std::printf("\n[%s]\n", op_name.c_str());
    return Status::OK();
  }
  Status OnViolation(const std::string&, const Value& violation) override {
    std::printf("  %s\n", violation.ToString().c_str());
    return Status::OK();
  }
  Status OnOpEnd(const OpSummary& summary) override {
    std::printf("  -> %zu violation(s) in %.3f s\n", summary.violations,
                summary.seconds);
    return Status::OK();
  }
  Status OnDirtyEntity(const Value& entity,
                       const std::vector<std::string>& violated_ops) override {
    std::printf("  %s  <-", entity.ToString().c_str());
    for (const auto& name : violated_ops) std::printf(" %s", name.c_str());
    std::printf("\n");
    return Status::OK();
  }
};

}  // namespace

int main() {
  // A tiny customer table with three kinds of dirt: an FD violation
  // (same address, two phone prefixes), a near-duplicate pair, and a
  // misspelled name.
  Dataset customer(Schema{{"name", ValueType::kString},
                          {"address", ValueType::kString},
                          {"phone", ValueType::kString}});
  customer.Append({Value("john smith"), Value("rue de lausanne 1"), Value("021-555-0001")});
  customer.Append({Value("john smith"), Value("rue de lausanne 1"), Value("022-555-0002")});
  customer.Append({Value("mary jones"), Value("bahnhofstrasse 3"), Value("044-555-0003")});
  customer.Append({Value("mary jonse"), Value("bahnhofstrasse 3"), Value("044-555-0004")});

  Dataset dictionary(Schema{{"name", ValueType::kString}});
  dictionary.Append({Value("john smith")});
  dictionary.Append({Value("mary jones")});

  CleanDBOptions options;
  options.num_nodes = 4;
  CleanDB db(options);
  db.RegisterTable("customer", std::move(customer));
  db.RegisterTable("dictionary", std::move(dictionary));

  // The compound cleaning task of the paper's introduction: validate the
  // FD address → prefix(phone), detect duplicate customers, and validate
  // names against the dictionary — one declarative query, optimized once.
  auto prepared = db.Prepare(R"(
    SELECT c.name, c.address, *
    FROM customer c, dictionary d
    FD(c.address, prefix(c.phone))
    DEDUP(token filtering, LD, 0.8, c.address)
    CLUSTER BY(token filtering, LD, 0.8, c.name)
  )");
  if (!prepared.ok()) {
    // Parse errors are positioned (line/column) — see for yourself by
    // breaking the query text above.
    std::fprintf(stderr, "prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("Prepared the motivating example query.\n");
  std::printf("Nest stages coalesced by the optimizer: %d\n",
              prepared.value().nests_coalesced());

  // EXPLAIN: the prepared plan — operators, coalesced Nest stages, and
  // cache-residency expectations — rendered without executing anything.
  std::printf("\nExplain():\n%s", prepared.value().Explain().c_str());

  std::printf("\nStreaming execution (violations arrive through the sink):\n");
  PrintingSink sink;
  auto status = prepared.value().ExecuteInto(sink);
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // The materializing form is one call away when a QueryResult is wanted;
  // this re-execution reuses the cached partitionings from the first run.
  // With `profile` on, the result carries a QueryProfile — the EXPLAIN
  // ANALYZE tree (per-operator wall/self time, row counts, per-node
  // distribution) — and WriteChromeTrace exports every recorded span for
  // chrome://tracing / ui.perfetto.dev.
  ExecOptions exec_opts;
  exec_opts.profile = true;
  auto result = prepared.value().Execute(exec_opts).ValueOrDie();
  std::printf("\nRe-executed (materialized): %zu dirty entities, "
              "%llu scan cache hits, %llu scan cache misses.\n",
              result.dirty_entities.size(),
              static_cast<unsigned long long>(result.cache.scan_hits),
              static_cast<unsigned long long>(result.cache.scan_misses));
  std::printf("\nEXPLAIN ANALYZE (QueryProfile::ToString):\n%s",
              result.profile->ToString().c_str());
  if (result.profile->WriteChromeTrace("quickstart_trace.json").ok()) {
    std::printf("\nChrome trace written to quickstart_trace.json\n");
  }
  return 0;
}
