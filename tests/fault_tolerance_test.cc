// Fault-tolerant execution: deterministic fault injection, task retry with
// partition re-execution, node blacklisting, deadlines/cancellation, and
// the poison-row quarantine (DESIGN.md, "Fault model & recovery").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cleaning/prepared_query.h"
#include "engine/fault.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::FastCleanDBOptions;
using testsupport::Snapshot;

const char* kFdQuery =
    "SELECT * FROM customer c "
    "FD(c.address, prefix(c.phone)) "
    "FD(c.address, c.nationkey)";

/// Bit-identical comparison: same operations, every violation Value equal
/// pairwise, equal dirty-entity sets.
void ExpectBitIdentical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); i++) {
    ASSERT_EQ(a.ops[i].violations.size(), b.ops[i].violations.size())
        << "operation " << a.ops[i].op_name;
    for (size_t v = 0; v < a.ops[i].violations.size(); v++) {
      EXPECT_TRUE(a.ops[i].violations[v].Equals(b.ops[i].violations[v]))
          << a.ops[i].op_name << " violation " << v;
    }
  }
  EXPECT_EQ(a.dirty_entities.size(), b.dirty_entities.size());
}

/// Order-insensitive violation-set equality, for scenarios (blacklist
/// re-routing) where partition placement legitimately changes output order.
void ExpectSameViolationSets(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.ops.size(), b.ops.size());
  auto sorted = [](const ValueList& vs) {
    std::vector<std::string> out;
    for (const auto& v : vs) out.push_back(v.ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  for (size_t i = 0; i < a.ops.size(); i++) {
    EXPECT_EQ(sorted(a.ops[i].violations), sorted(b.ops[i].violations))
        << "operation " << a.ops[i].op_name;
  }
  EXPECT_EQ(a.dirty_entities.size(), b.dirty_entities.size());
}

// ---- FaultInjector unit behavior ----

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeedNodeAttempt) {
  engine::FaultOptions fo;
  fo.failure_probability = 0.5;
  fo.seed = 42;
  engine::FaultInjector a(4, fo);
  engine::FaultInjector b(4, fo);
  std::vector<bool> fails_a, fails_b;
  size_t failures = 0;
  for (int round = 0; round < 200; round++) {
    for (size_t n = 0; n < 4; n++) {
      const bool f = a.OnTaskAttempt(n).fail;
      fails_a.push_back(f);
      failures += f;
    }
  }
  for (int round = 0; round < 200; round++) {
    for (size_t n = 0; n < 4; n++) fails_b.push_back(b.OnTaskAttempt(n).fail);
  }
  EXPECT_EQ(fails_a, fails_b);
  // ~50% of 800 draws; loose bounds, deterministic given the seed.
  EXPECT_GT(failures, 300u);
  EXPECT_LT(failures, 500u);

  fo.seed = 43;
  engine::FaultInjector c(4, fo);
  std::vector<bool> fails_c;
  for (int round = 0; round < 200; round++) {
    for (size_t n = 0; n < 4; n++) fails_c.push_back(c.OnTaskAttempt(n).fail);
  }
  EXPECT_NE(fails_a, fails_c);
}

TEST(FaultInjectorTest, TargetedNodeBlacklistsAfterConsecutiveFailures) {
  engine::FaultOptions fo;
  fo.target_node = 2;
  fo.fail_first_attempts = 100;  // node 2 fails every attempt until benched
  fo.node_blacklist_threshold = 3;
  engine::FaultInjector inj(4, fo);
  EXPECT_TRUE(inj.OnTaskAttempt(2).fail);
  EXPECT_TRUE(inj.OnTaskAttempt(2).fail);
  const auto third = inj.OnTaskAttempt(2);
  EXPECT_TRUE(third.fail);
  EXPECT_TRUE(third.newly_blacklisted);
  EXPECT_TRUE(inj.blacklisted(2));
  EXPECT_TRUE(inj.AnyBlacklisted());
  // Out of service: its work runs clean (simulated re-execution on the
  // surviving pool), no further failures injected.
  EXPECT_FALSE(inj.OnTaskAttempt(2).fail);
  // Untargeted nodes never fail.
  EXPECT_FALSE(inj.OnTaskAttempt(0).fail);
  EXPECT_FALSE(inj.blacklisted(0));
}

TEST(QuarantineSinkTest, CapEndsTheQuarantine) {
  engine::QuarantineSink sink(2);
  EXPECT_TRUE(sink.Record({"t", 0, 0, "bad"}).ok());
  EXPECT_TRUE(sink.Record({"t", 1, 3, "bad"}).ok());
  const Status full = sink.Record({"t", 2, 5, "bad"});
  EXPECT_EQ(full.code(), StatusCode::kInternal);
  EXPECT_NE(full.message().find("cap exceeded"), std::string::npos);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.TakeRows().size(), 2u);
}

// ---- Engine-level retry ----

TEST(ClusterFaultTest, RetriesReExecuteTheFailedNodesTaskExactly) {
  auto copts = testsupport::FastClusterOptions(4);
  copts.fault.target_node = 1;
  copts.fault.fail_first_attempts = 2;  // node 1's first two attempts fail
  copts.fault.max_task_retries = 3;
  copts.fault.retry_backoff_ns = 1000;
  engine::Cluster cluster(copts);
  std::vector<int> runs(4, 0);
  cluster.RunOnNodes([&](size_t n) { runs[n]++; });
  // Injection fires before the body, so failed attempts have no side
  // effects: every node's body ran exactly once.
  EXPECT_EQ(runs, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 2u);
  EXPECT_EQ(cluster.metrics().tasks_retried.load(), 2u);
  EXPECT_EQ(cluster.metrics().nodes_blacklisted.load(), 0u);
}

TEST(ClusterFaultTest, RetriesExhaustedThrowUnavailable) {
  auto copts = testsupport::FastClusterOptions(4);
  copts.fault.target_node = 3;
  copts.fault.fail_first_attempts = 100;
  copts.fault.max_task_retries = 2;
  copts.fault.retry_backoff_ns = 0;
  engine::Cluster cluster(copts);
  try {
    cluster.RunOnNodes([&](size_t) {});
    FAIL() << "expected NodeUnavailableError";
  } catch (const engine::StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 3u);  // initial + 2 retries
  EXPECT_EQ(cluster.metrics().tasks_retried.load(), 2u);
}

// ---- Session-level: injected failures vs a clean run ----

TEST(FaultToleranceTest, InjectedFailuresRetryToBitIdenticalResults) {
  const Dataset customers = testsupport::MakeCustomers();

  CleanDB clean_db(FastCleanDBOptions(4));
  clean_db.RegisterTable("customer", customers);
  const QueryResult clean = clean_db.Execute(kFdQuery).ValueOrDie();
  ASSERT_GT(clean.ops[0].violations.size(), 0u);
  EXPECT_EQ(clean.metrics.tasks_failed, 0u);
  EXPECT_EQ(clean.metrics.tasks_retried, 0u);

  auto opts = FastCleanDBOptions(4);
  opts.fault.failure_probability = 0.25;
  opts.fault.seed = 11;
  opts.fault.max_task_retries = 12;
  opts.fault.retry_backoff_ns = 1000;
  CleanDB faulty_db(opts);
  faulty_db.RegisterTable("customer", customers);
  const QueryResult faulty = faulty_db.Execute(kFdQuery).ValueOrDie();

  ExpectBitIdentical(clean, faulty);
  EXPECT_GT(faulty.metrics.tasks_failed, 0u);
  EXPECT_GT(faulty.metrics.tasks_retried, 0u);
  EXPECT_EQ(faulty.metrics.nodes_blacklisted, 0u);
}

TEST(FaultToleranceTest, ExecOptionsFaultOverridesApplyPerCallAndRestore) {
  const Dataset customers = testsupport::MakeCustomers();
  CleanDB db(FastCleanDBOptions(4));
  db.RegisterTable("customer", customers);
  auto prepared = db.Prepare(kFdQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  const QueryResult clean = pq.Execute().ValueOrDie();

  ExecOptions fopts;
  fopts.fault_probability = 0.25;
  fopts.fault_seed = 11;
  fopts.max_task_retries = 12;
  fopts.retry_backoff_ns = 1000;
  const QueryResult faulty = pq.Execute(fopts).ValueOrDie();
  ExpectBitIdentical(clean, faulty);
  // Cached partitionings shrink the epoch count on re-execution but the
  // violation select still fans out, so attempts (and with p=0.25, some
  // failures) still happen.
  EXPECT_GT(faulty.metrics.tasks_failed, 0u);
  EXPECT_GT(faulty.metrics.tasks_retried, 0u);

  // The override is call-scoped: the next plain Execute runs fault-free.
  const QueryResult after = pq.Execute().ValueOrDie();
  EXPECT_EQ(after.metrics.tasks_failed, 0u);
  ExpectBitIdentical(clean, after);
}

TEST(FaultToleranceTest, RetriesExhaustedSurfaceUnavailable) {
  auto opts = FastCleanDBOptions(4);
  opts.fault.target_node = 1;
  opts.fault.fail_first_attempts = 1000000;  // node 1 never recovers
  opts.fault.max_task_retries = 2;
  opts.fault.retry_backoff_ns = 0;
  CleanDB db(opts);
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto r = db.Execute(kFdQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // All workers joined: the session stays usable (a fault-free db would
  // deadlock here if producers leaked).
  EXPECT_GT(db.cluster().session_metrics().tasks_failed.load(), 0u);
}

TEST(FaultToleranceTest, BlacklistedNodeIsRoutedAroundAndExecutionSucceeds) {
  auto opts = FastCleanDBOptions(4);
  opts.fault.target_node = 1;
  opts.fault.fail_first_attempts = 1000000;
  opts.fault.node_blacklist_threshold = 2;  // benched before retries run out
  opts.fault.max_task_retries = 5;
  opts.fault.retry_backoff_ns = 1000;
  CleanDB db(opts);
  db.RegisterTable("customer", testsupport::MakeCustomers());
  const QueryResult result = db.Execute(kFdQuery).ValueOrDie();
  EXPECT_EQ(result.metrics.nodes_blacklisted, 1u);
  EXPECT_GE(result.metrics.tasks_retried, 2u);
  EXPECT_TRUE(db.cluster().NodeBlacklisted(1));
  EXPECT_FALSE(db.cluster().NodeBlacklisted(0));

  // Degraded-mode output equals the clean run as a *set* (re-routing moves
  // partitions, so order may differ; blacklisting is graceful degradation,
  // not the bit-identical retry path).
  CleanDB clean_db(FastCleanDBOptions(4));
  clean_db.RegisterTable("customer", testsupport::MakeCustomers());
  ExpectSameViolationSets(clean_db.Execute(kFdQuery).ValueOrDie(), result);

  // New partitionings route around the blacklisted node for the rest of
  // the session.
  const QueryResult again = db.Execute(kFdQuery).ValueOrDie();
  ExpectSameViolationSets(result, again);
}

// ---- Deadlines and cancellation ----

TEST(FaultToleranceTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  CleanDB db(FastCleanDBOptions(4));
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.Prepare(kFdQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  const uint64_t cancelled_before =
      db.cluster().session_metrics().executions_cancelled.load();
  ExecOptions dopts;
  dopts.deadline_ns = 1;  // elapses before the first epoch boundary check
  auto r = pq.Execute(dopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(db.cluster().session_metrics().executions_cancelled.load(),
            cancelled_before + 1);

  // Workers joined and state intact: the same query runs fine afterwards.
  EXPECT_TRUE(pq.Execute().ok());
}

TEST(FaultToleranceTest, CancelTokenCancelsAndResets) {
  CleanDB db(FastCleanDBOptions(4));
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.Prepare(kFdQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  pq.cancel_token().Cancel();
  auto r = pq.Execute();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Sticky until Reset.
  EXPECT_EQ(pq.Execute().status().code(), StatusCode::kCancelled);

  pq.cancel_token().Reset();
  auto ok = pq.Execute();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok.ValueOrDie().ops[0].violations.size(), 0u);
}

// ---- Poison-row quarantine ----

/// 300 clean rows (numeric val) + 100 poison rows whose val is a string —
/// to_num(c.val) throws ValueCoercionError on exactly the poison rows.
Dataset PoisonTable() {
  Dataset t(Schema{{"address", ValueType::kString}, {"val", ValueType::kDouble}});
  for (int i = 0; i < 300; i++) {
    t.Append({Value("addr" + std::to_string(i % 50)),
              Value(static_cast<double>(i % 7))});
  }
  for (int i = 0; i < 100; i++) {
    t.Append({Value("poison" + std::to_string(i)), Value("not-a-number")});
  }
  return t;
}

Status RegisterToNum(CleanDB& db) {
  return db.functions().RegisterScalar(
      "to_num", 1, [](const std::vector<Value>& args) -> Result<Value> {
        return Value(args[0].ToDouble());  // throws on non-numeric
      });
}

const char* kPoisonQuery = "SELECT * FROM t c FD(c.address, to_num(c.val))";

TEST(FaultToleranceTest, QuarantineSkipsPoisonRowsAndReportsThem) {
  CleanDB db(FastCleanDBOptions(4));
  ASSERT_TRUE(RegisterToNum(db).ok());
  db.RegisterTable("t", PoisonTable());
  auto prepared = db.Prepare(kPoisonQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  ExecOptions qopts;
  qopts.max_quarantined_rows = 150;
  auto r = prepared.value().Execute(qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();
  // Acceptance: all 100 poison rows skipped, the query succeeds, and the
  // clean rows' FD violations still come out.
  EXPECT_EQ(result.metrics.rows_quarantined, 100u);
  ASSERT_EQ(result.quarantined.size(), 100u);
  EXPECT_GT(result.ops[0].violations.size(), 0u);
  for (const auto& q : result.quarantined) {
    EXPECT_EQ(q.table, "t");
    EXPECT_NE(q.error.find("cannot read string value as numeric"),
              std::string::npos);
  }
}

TEST(FaultToleranceTest, QuarantineOffPoisonRowFailsTheExecution) {
  CleanDB db(FastCleanDBOptions(4));
  ASSERT_TRUE(RegisterToNum(db).ok());
  db.RegisterTable("t", PoisonTable());
  auto r = db.Execute(kPoisonQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("cannot read string value as numeric"),
            std::string::npos);
}

TEST(FaultToleranceTest, QuarantineCapExceededFailsTheExecution) {
  CleanDB db(FastCleanDBOptions(4));
  ASSERT_TRUE(RegisterToNum(db).ok());
  db.RegisterTable("t", PoisonTable());
  auto prepared = db.Prepare(kPoisonQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ExecOptions qopts;
  qopts.max_quarantined_rows = 50;  // 100 poison rows overflow the cap
  auto r = prepared.value().Execute(qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("cap exceeded"), std::string::npos);
}

}  // namespace
}  // namespace cleanm
