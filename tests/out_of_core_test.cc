// End-to-end tests for out-of-core execution: a session whose buffer pool
// is a fraction of the dataset footprint must produce violations
// bit-identical to the fully in-memory session, spill files must vanish on
// every exit path (including deadline unwinds mid-execution), and the
// partition cache must page entries out and revive them instead of
// recomputing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cleaning/prepared_query.h"
#include "datagen/generators.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

namespace fs = std::filesystem;

constexpr const char* kQuery = R"(
  SELECT * FROM customer c
  FD(c.address, prefix(c.phone))
  FD(c.address, c.nationkey)
  DEDUP(exact, LD, 0.8, c.address)
)";

Dataset DirtyCustomers(size_t base_rows = 400) {
  datagen::CustomerOptions copts;
  copts.base_rows = base_rows;
  copts.duplicate_fraction = 0.08;
  copts.max_duplicates = 4;
  copts.fd_violation_fraction = 0.05;
  return datagen::MakeCustomer(copts);
}

/// Bit-identical comparison: same ops in the same order, every violation
/// Value equal pairwise.
void ExpectResultsBitIdentical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); i++) {
    EXPECT_EQ(a.ops[i].op_name, b.ops[i].op_name);
    ASSERT_EQ(a.ops[i].violations.size(), b.ops[i].violations.size())
        << "operation " << a.ops[i].op_name;
    for (size_t v = 0; v < a.ops[i].violations.size(); v++) {
      EXPECT_TRUE(a.ops[i].violations[v].Equals(b.ops[i].violations[v]))
          << a.ops[i].op_name << " violation " << v;
    }
  }
}

/// A fresh empty directory under the system temp dir, removed on scope
/// exit, so tests can count the spill files a session leaves in it.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("cleanm_ooc_test_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  size_t FileCount() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(path_)) {
      (void)e;
      n++;
    }
    return n;
  }

 private:
  fs::path path_;
};

/// Session options putting the buffer pool at 1/8 of `footprint` — the
/// acceptance ratio — with small pages and morsels so bench-scale data
/// produces several spill generations.
CleanDBOptions OutOfCoreOptions(uint64_t footprint, const TempDir& dir) {
  CleanDBOptions options = testsupport::FastCleanDBOptions(4);
  options.buffer_pool_bytes = footprint / 8;
  options.spill_dir = dir.path().string();
  options.page_bytes = 1024;
  options.morsel_rows = 128;
  return options;
}

TEST(OutOfCoreTest, EighthOfFootprintBudgetIsBitIdenticalToInMemory) {
  Dataset customers = DirtyCustomers();
  const uint64_t footprint = customers.ByteSize();

  CleanDB in_memory(testsupport::FastCleanDBOptions(4));
  in_memory.RegisterTable("customer", customers);
  QueryResult expected = in_memory.Execute(kQuery).ValueOrDie();
  ASSERT_GT(expected.ops[0].violations.size(), 0u);
  ASSERT_GT(expected.ops[2].violations.size(), 0u);
  EXPECT_EQ(expected.metrics.bytes_spilled, 0u);
  EXPECT_EQ(expected.metrics.buffer_pool_misses, 0u);

  TempDir dir("ab");
  CleanDB out_of_core(OutOfCoreOptions(footprint, dir));
  out_of_core.RegisterTable("customer", customers);
  QueryResult actual = out_of_core.Execute(kQuery).ValueOrDie();
  ExpectResultsBitIdentical(expected, actual);

  // The budget actually bit: breakers spilled, scans went through the pool,
  // and the pool churned under its budget.
  EXPECT_GT(actual.metrics.bytes_spilled, 0u);
  EXPECT_GT(actual.metrics.buffer_pool_misses, 0u);
  EXPECT_GT(actual.metrics.pages_evicted, 0u);
  const BufferPool::Stats pool = out_of_core.buffer_pool()->stats();
  EXPECT_LE(pool.resident_bytes,
            std::max<uint64_t>(footprint / 8, uint64_t{1024} * 8));
}

TEST(OutOfCoreTest, PreparedReExecutionStaysBitIdenticalUnderBudget) {
  Dataset customers = DirtyCustomers();
  TempDir dir("prepared");
  CleanDB db(OutOfCoreOptions(customers.ByteSize(), dir));
  db.RegisterTable("customer", customers);
  auto prepared = db.Prepare(kQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  QueryResult first = prepared.value().Execute().ValueOrDie();
  QueryResult second = prepared.value().Execute().ValueOrDie();
  ExpectResultsBitIdentical(first, second);
  EXPECT_GT(first.metrics.bytes_spilled, 0u);
}

TEST(OutOfCoreTest, ExecOptionsOverrideEnablesSpillingOnInMemorySession) {
  Dataset customers = DirtyCustomers();
  CleanDB db(testsupport::FastCleanDBOptions(4));
  db.RegisterTable("customer", customers);
  auto prepared = db.Prepare(kQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  QueryResult plain = prepared.value().Execute().ValueOrDie();
  EXPECT_EQ(plain.metrics.bytes_spilled, 0u);

  // Invalidate the session cache (generation bump) so the budgeted call
  // actually re-runs the aggregation instead of serving cached Nest
  // outputs — cached results cannot spill.
  db.RegisterTable("customer", customers);

  TempDir dir("override");
  ExecOptions opts;
  opts.buffer_pool_bytes = customers.ByteSize() / 8;
  opts.spill_dir = dir.path().string();
  opts.page_bytes = size_t{1024};
  opts.morsel_rows = size_t{128};
  QueryResult budgeted = prepared.value().Execute(opts).ValueOrDie();
  ExpectResultsBitIdentical(plain, budgeted);
  EXPECT_GT(budgeted.metrics.bytes_spilled, 0u);
  // The execution-local spill file is gone the moment Execute returns.
  EXPECT_EQ(dir.FileCount(), 0u);
}

TEST(OutOfCoreTest, ExecOptionsZeroDisablesOutOfCoreForTheCall) {
  Dataset customers = DirtyCustomers();
  TempDir dir("disable");
  CleanDB db(OutOfCoreOptions(customers.ByteSize(), dir));
  db.RegisterTable("customer", customers);
  auto prepared = db.Prepare(kQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  ExecOptions opts;
  opts.buffer_pool_bytes = uint64_t{0};
  QueryResult resident = prepared.value().Execute(opts).ValueOrDie();
  EXPECT_EQ(resident.metrics.bytes_spilled, 0u);
  EXPECT_EQ(resident.metrics.buffer_pool_hits, 0u);
  EXPECT_EQ(resident.metrics.buffer_pool_misses, 0u);

  // Generation bump: the default call must recompute (not serve the
  // resident call's cached Nest outputs) to demonstrate spilling.
  db.RegisterTable("customer", customers);
  QueryResult budgeted = prepared.value().Execute().ValueOrDie();
  ExpectResultsBitIdentical(resident, budgeted);
  EXPECT_GT(budgeted.metrics.bytes_spilled, 0u);
}

TEST(OutOfCoreTest, SpillFilesRemovedOnEveryExitPath) {
  Dataset customers = DirtyCustomers();
  TempDir dir("raii");
  const uint64_t footprint = customers.ByteSize();
  {
    CleanDB db(OutOfCoreOptions(footprint, dir));
    db.RegisterTable("customer", customers);
    // The session's paged-table store is the only file in the directory.
    const size_t session_files = dir.FileCount();
    ASSERT_GE(session_files, 1u);

    auto prepared = db.Prepare(kQuery);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

    // Success path: the per-execution spill file is gone on return.
    ASSERT_TRUE(prepared.value().Execute().ok());
    EXPECT_EQ(dir.FileCount(), session_files);

    // Deadline unwind mid-execution (spilling included): still no file
    // left behind — the stack-owned SpillContext's store is
    // remove-on-close on every exit path.
    ExecOptions tight;
    tight.deadline_ns = uint64_t{1};
    Status st = prepared.value().Execute(tight).status();
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
    }
    EXPECT_EQ(dir.FileCount(), session_files);
  }
  // Session teardown removes the paged-table store and the session spill
  // file; nothing survives.
  EXPECT_EQ(dir.FileCount(), 0u);
}

TEST(OutOfCoreTest, PartitionCachePagesOutAndRevivesInsteadOfRecomputing) {
  Dataset customers = DirtyCustomers();
  Dataset other = DirtyCustomers(350);
  TempDir dir("cache");
  CleanDBOptions options = OutOfCoreOptions(customers.ByteSize(), dir);
  // A cache far smaller than any single entry: every admission evicts the
  // previous tenant, and with the session pager installed, eviction pages
  // entries out instead of discarding them.
  options.partition_cache_bytes = 2048;
  CleanDB db(options);
  db.RegisterTable("customer", customers);
  db.RegisterTable("other", other);
  auto prepared = db.Prepare(kQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  QueryResult first = prepared.value().Execute().ValueOrDie();
  EXPECT_GT(first.cache.page_writebacks, 0u);

  // A query over the second table pushes new entries through the tiny
  // cache, evicting (paging out) the first query's Nest output.
  const char* other_query = R"(
    SELECT * FROM other c
    FD(c.address, prefix(c.phone))
  )";
  ASSERT_TRUE(db.Execute(other_query).ok());

  // Re-executing the first query now finds its Nest entry paged out and
  // revives it from the spill store — identical results, no recompute.
  QueryResult second = prepared.value().Execute().ValueOrDie();
  ExpectResultsBitIdentical(first, second);
  EXPECT_GT(second.cache.page_revivals, 0u);
  EXPECT_EQ(second.cache.nest_misses, 0u);
}

}  // namespace
}  // namespace cleanm
