// Regression tests for the morsel pump's abort protocol. The scenario under
// test: the consumer (sink) fails while producers sit blocked on full
// per-node queues — the abort flag and both condition variables must
// interact so every producer wakes, drains, and joins instead of
// deadlocking. Both producer substrates are covered: the persistent worker
// pool and the legacy spawn-per-call path (use_worker_pool=false), with the
// queue window clamped to one morsel so producers block as early as
// possible.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "engine/cluster.h"
#include "support/fixtures.h"

namespace cleanm::engine {
namespace {

using testsupport::FastClusterOptions;
using testsupport::IntRows;

/// Per-row identity expansion: the pump moves rows through unchanged.
MorselExpand Identity() {
  return [](size_t, const Row& row, Partition* out) { out->push_back(row); };
}

/// Tightest pipeline: one row per morsel, one queued morsel per node, so
/// producers hit a full queue after their second row.
MorselSpec TightSpec() {
  MorselSpec spec;
  spec.morsel_rows = 1;
  spec.queue_window = 1;
  return spec;
}

ClusterOptions LegacyOptions(size_t nodes) {
  ClusterOptions opts = FastClusterOptions(nodes);
  opts.use_worker_pool = false;
  return opts;
}

TEST(MorselPumpTest, LegacySinkErrorWithFullQueuesDoesNotDeadlock) {
  Cluster cluster(LegacyOptions(4));
  auto source = cluster.Parallelize(IntRows(400));  // ~100 morsels per node
  std::atomic<int> consumed{0};
  Status status = cluster.PumpToDriver(
      source, TightSpec(), Identity(), [&](size_t, Partition&&) -> Status {
        consumed++;
        // Fail immediately: every other producer is (or soon will be)
        // blocked on its full one-morsel queue and must be woken by the
        // abort, not by queue space that will never appear.
        return Status::Internal("sink failed");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(consumed.load(), 1);
  // Reaching this line is the regression assertion: PumpToDriver joined
  // all legacy producer threads after the abort. The cluster stays usable.
  std::atomic<int> nodes_ran{0};
  cluster.RunOnNodes([&](size_t) { nodes_ran++; });
  EXPECT_EQ(nodes_ran.load(), 4);
}

TEST(MorselPumpTest, PoolSinkErrorWithFullQueuesDoesNotDeadlock) {
  Cluster cluster(FastClusterOptions(4));
  auto source = cluster.Parallelize(IntRows(400));
  std::atomic<int> consumed{0};
  Status status = cluster.PumpToDriver(
      source, TightSpec(), Identity(), [&](size_t, Partition&&) -> Status {
        consumed++;
        return Status::Internal("sink failed");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(consumed.load(), 1);
  std::atomic<int> nodes_ran{0};
  cluster.RunOnNodes([&](size_t) { nodes_ran++; });
  EXPECT_EQ(nodes_ran.load(), 4);
}

TEST(MorselPumpTest, LegacyThrowingConsumerJoinsProducersBeforeUnwinding) {
  // A *throwing* consumer must not unwind past the pump's stack-local
  // queues while legacy producer threads still reference them (that is a
  // use-after-scope, not just a leak).
  Cluster cluster(LegacyOptions(4));
  auto source = cluster.Parallelize(IntRows(400));
  EXPECT_THROW(
      (void)cluster.PumpToDriver(
          source, TightSpec(), Identity(),
          [&](size_t, Partition&&) -> Status {
            throw std::runtime_error("consumer threw");
          }),
      std::runtime_error);
  std::atomic<int> nodes_ran{0};
  cluster.RunOnNodes([&](size_t) { nodes_ran++; });
  EXPECT_EQ(nodes_ran.load(), 4);
}

TEST(MorselPumpTest, LegacyProducerErrorSurfacesAfterPartialConsumption) {
  // An expand failure on one legacy producer thread must mark the node done
  // (so the driver never waits on a dead producer) and rethrow at the call
  // site after all threads joined.
  Cluster cluster(LegacyOptions(2));
  auto source = cluster.Parallelize(IntRows(100));
  EXPECT_THROW(
      (void)cluster.PumpToDriver(
          source, TightSpec(),
          [](size_t node, const Row& row, Partition* out) {
            if (node == 1) throw std::runtime_error("producer failed");
            out->push_back(row);
          },
          [&](size_t, Partition&&) -> Status { return Status::OK(); }),
      std::runtime_error);
}

TEST(MorselPumpTest, SinkErrorWhileRetryInFlightJoinsAllProducers) {
  // The sink fails on its first morsel while node 2 is still inside its
  // fault-retry loop (two scripted failures with a visible backoff). The
  // abort must reach the retrying producer too: its eventual clean attempt
  // observes the stop flag, produces nothing, and joins — on both
  // substrates.
  for (const bool use_pool : {true, false}) {
    ClusterOptions opts = FastClusterOptions(4);
    opts.use_worker_pool = use_pool;
    opts.fault.target_node = 2;
    opts.fault.fail_first_attempts = 2;
    opts.fault.max_task_retries = 3;
    opts.fault.retry_backoff_ns = 5'000'000;  // keep the retry in flight
    Cluster cluster(opts);
    auto source = cluster.Parallelize(IntRows(400));
    std::atomic<int> consumed{0};
    Status status = cluster.PumpToDriver(
        source, TightSpec(), Identity(), [&](size_t, Partition&&) -> Status {
          consumed++;
          return Status::Internal("sink failed");
        });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(consumed.load(), 1);
    // Injection fires at attempt start, independent of the abort: node 2's
    // two scripted failures were observed and retried.
    EXPECT_EQ(cluster.metrics().tasks_failed.load(), 2u);
    EXPECT_EQ(cluster.metrics().tasks_retried.load(), 2u);
    // Reaching this line is the regression assertion: PumpToDriver joined
    // the retrying producer as well. The cluster stays usable.
    std::atomic<int> nodes_ran{0};
    cluster.RunOnNodes([&](size_t) { nodes_ran++; });
    EXPECT_EQ(nodes_ran.load(), 4);
  }
}

TEST(MorselPumpTest, ProducerRetryDeliversIdenticalNodeMajorStream) {
  // A failed attempt flushes nothing (injection precedes the produce loop),
  // so the retry restarts the node's stream from row zero with its queue
  // still empty: delivery under faults is bit-identical to a clean pump.
  auto run = [](const FaultOptions& fault) {
    ClusterOptions opts = FastClusterOptions(3);
    opts.fault = fault;
    Cluster cluster(opts);
    auto source = cluster.Parallelize(IntRows(91));
    std::vector<Row> got;
    Status status = cluster.PumpToDriver(
        source, TightSpec(), Identity(),
        [&](size_t, Partition&& morsel) -> Status {
          for (auto& row : morsel) got.push_back(std::move(row));
          return Status::OK();
        });
    EXPECT_TRUE(status.ok()) << status.ToString();
    return got;
  };
  FaultOptions faulty;
  faulty.target_node = 1;
  faulty.fail_first_attempts = 2;
  faulty.max_task_retries = 3;
  faulty.retry_backoff_ns = 0;
  const std::vector<Row> clean = run(FaultOptions{});
  const std::vector<Row> retried = run(faulty);
  ASSERT_EQ(clean.size(), retried.size());
  for (size_t i = 0; i < clean.size(); i++) {
    EXPECT_TRUE(clean[i][0].Equals(retried[i][0])) << "row " << i;
  }
}

TEST(MorselPumpTest, TightWindowDeliversNodeMajorRowOrderInBothModes) {
  // The abort machinery must not perturb the happy path: with the tightest
  // window both substrates deliver every row in deterministic node-major
  // order, identical to Collect().
  for (const bool use_pool : {true, false}) {
    ClusterOptions opts = FastClusterOptions(3);
    opts.use_worker_pool = use_pool;
    Cluster cluster(opts);
    auto source = cluster.Parallelize(IntRows(91));
    std::vector<Row> expected;
    for (const auto& part : source) {
      expected.insert(expected.end(), part.begin(), part.end());
    }
    std::vector<Row> got;
    size_t last_node = 0;
    Status status = cluster.PumpToDriver(
        source, TightSpec(), Identity(),
        [&](size_t node, Partition&& morsel) -> Status {
          EXPECT_GE(node, last_node);  // node-major: never revisits a node
          last_node = node;
          for (auto& row : morsel) got.push_back(std::move(row));
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); i++) {
      EXPECT_TRUE(got[i][0].Equals(expected[i][0])) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace cleanm::engine
