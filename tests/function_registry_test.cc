// Function-registry + repair subsystem tests: registration rules, scalar /
// aggregate / repair UDFs called from CleanM text and executed on the
// clustered engine, Prepare-time signature checking with positioned
// errors, the udf_calls / repairs_applied counters, and the full
// detect → repair → re-register loop (repaired tables are first-class
// query inputs with correct generation / partition-cache invalidation).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algebra/algebra_eval.h"
#include "cleaning/prepared_query.h"
#include "cleaning/select_builder.h"
#include "functions/function_registry.h"
#include "repair/repair_sink.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::FastCleanDBOptions;
using testsupport::MakeCustomers;

// ---- Shared registrations ----

/// double_it(x) = 2 * x over ints/doubles.
Status RegisterDoubleIt(FunctionRegistry& functions) {
  return functions.RegisterScalar(
      "double_it", 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (!args[0].is_numeric()) return Status::TypeError("double_it: non-numeric");
        if (args[0].type() == ValueType::kInt) return Value(args[0].AsInt() * 2);
        return Value(args[0].AsDouble() * 2);
      });
}

/// usum: a user-written clone of the builtin sum monoid (identity 0,
/// unit = id, merge = +), for built-in-vs-registered equivalence checks.
Status RegisterUsum(FunctionRegistry& functions) {
  return functions.RegisterAggregate(
      "usum", Value(int64_t{0}), [](const Value& v) { return v; },
      [](Value a, const Value& b) {
        if (!a.is_numeric() || !b.is_numeric()) return a;
        if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
          return Value(a.AsInt() + b.AsInt());
        }
        return Value(a.ToDouble() + b.ToDouble());
      });
}

/// umean: accumulates a {sum, count} pair and finalizes to sum/count — the
/// canonical "not itself a monoid, but monoid + finalize" aggregate.
Status RegisterUmean(FunctionRegistry& functions) {
  return functions.RegisterAggregate(
      "umean", Value(ValueList{Value(0.0), Value(int64_t{0})}),
      [](const Value& v) {
        if (!v.is_numeric()) {
          return Value(ValueList{Value(0.0), Value(int64_t{0})});
        }
        return Value(ValueList{Value(v.ToDouble()), Value(int64_t{1})});
      },
      [](Value a, const Value& b) {
        auto& acc = a.MutableList();
        const auto& other = b.AsList();
        acc[0] = Value(acc[0].AsDouble() + other[0].AsDouble());
        acc[1] = Value(acc[1].AsInt() + other[1].AsInt());
        return a;
      },
      /*finalize=*/
      [](const std::vector<Value>& acc) -> Result<Value> {
        const auto& pair = acc[0].AsList();
        if (pair[1].AsInt() == 0) return Value::Null();
        return Value(pair[0].AsDouble() / static_cast<double>(pair[1].AsInt()));
      });
}

/// Region prefix of a phone ("021-555-0001" → "021"), in C++.
std::string PhonePrefix(const std::string& phone) {
  const size_t dash = phone.find('-');
  return dash == std::string::npos ? phone.substr(0, 3) : phone.substr(0, dash);
}

/// fix_phone_prefix(partition): majority-vote repair over one address
/// group — every member whose phone prefix deviates from the group's
/// minimal prefix gets the prefix rewritten. Returns a list of
/// repair-action structs per the registry contract.
Status RegisterFixPhonePrefix(FunctionRegistry& functions) {
  return functions.RegisterRepair(
      "fix_phone_prefix", 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kList) {
          return Status::TypeError("fix_phone_prefix expects the group partition");
        }
        std::string target;
        bool have_target = false;
        for (const auto& rec : args[0].AsList()) {
          auto phone = rec.GetField("phone");
          if (!phone.ok() || phone.value().type() != ValueType::kString) continue;
          const std::string p = PhonePrefix(phone.value().AsString());
          if (!have_target || p < target) {
            target = p;
            have_target = true;
          }
        }
        ValueList actions;
        for (const auto& rec : args[0].AsList()) {
          auto phone = rec.GetField("phone");
          if (!phone.ok() || phone.value().type() != ValueType::kString) continue;
          const std::string& full = phone.value().AsString();
          if (PhonePrefix(full) == target) continue;
          const size_t dash = full.find('-');
          const std::string fixed =
              target + (dash == std::string::npos ? "" : full.substr(dash));
          actions.push_back(Value(ValueStruct{
              {"entity", rec},
              {"set", Value(ValueStruct{{"phone", Value(fixed)}})}}));
        }
        return Value(std::move(actions));
      });
}

// ---- Registration rules ----

TEST(FunctionRegistryTest, RejectsShadowingAndDuplicates) {
  FunctionRegistry functions;
  auto ok = [](const std::vector<Value>&) -> Result<Value> { return Value::Null(); };

  EXPECT_EQ(functions.RegisterScalar("", 1, ok).code(),
            StatusCode::kInvalidArgument);
  // Builtin function and builtin monoid names are off limits.
  EXPECT_EQ(functions.RegisterScalar("prefix", 1, ok).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(functions.RegisterScalar("sum", 1, ok).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(functions
                .RegisterAggregate("avg", Value(int64_t{0}),
                                   [](const Value& v) { return v; },
                                   [](Value a, const Value&) { return a; })
                .code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(functions.RegisterScalar("mine", 1, ok).ok());
  EXPECT_EQ(functions.RegisterScalar("mine", 2, ok).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(functions
                .RegisterAggregate("mine", Value(int64_t{0}),
                                   [](const Value& v) { return v; },
                                   [](Value a, const Value&) { return a; })
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FunctionRegistryTest, ValidateCallCoversAllInterpretations) {
  FunctionRegistry functions;
  ASSERT_TRUE(RegisterDoubleIt(functions).ok());
  ASSERT_TRUE(RegisterUsum(functions).ok());

  EXPECT_TRUE(functions.ValidateCall("prefix", 1).ok());    // builtin
  EXPECT_TRUE(functions.ValidateCall("concat", 7).ok());    // variadic builtin
  EXPECT_TRUE(functions.ValidateCall("double_it", 1).ok()); // registered scalar
  EXPECT_TRUE(functions.ValidateCall("usum", 1).ok());      // registered aggregate
  EXPECT_TRUE(functions.ValidateCall("sum", 1).ok());       // builtin monoid

  EXPECT_EQ(functions.ValidateCall("no_such_fn", 1).code(), StatusCode::kKeyError);
  EXPECT_EQ(functions.ValidateCall("prefix", 2).code(), StatusCode::kKeyError);
  EXPECT_EQ(functions.ValidateCall("double_it", 3).code(), StatusCode::kKeyError);
  EXPECT_EQ(functions.ValidateCall("usum", 2).code(), StatusCode::kKeyError);
}

// ---- Prepare-time signature checking (positioned) ----

TEST(FunctionRegistryTest, UnknownFunctionIsPositionedKeyErrorAtPrepare) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());

  auto prepared = db.Prepare(
      "SELECT c.name,\n"
      "       no_such_fn(c.phone) AS x\n"
      "FROM customer c");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kKeyError);
  const std::string& msg = prepared.status().message();
  EXPECT_NE(msg.find("no_such_fn"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 8"), std::string::npos) << msg;
}

TEST(FunctionRegistryTest, ArityMismatchIsPositionedKeyErrorAtPrepare) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterDoubleIt(db.functions()).ok());

  auto prepared =
      db.Prepare("SELECT double_it(c.nationkey, 2) FROM customer c");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kKeyError);
  const std::string& msg = prepared.status().message();
  EXPECT_NE(msg.find("double_it"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 argument"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;

  // Builtin arity mistakes are caught the same way (WHERE position).
  auto bad_builtin =
      db.Prepare("SELECT * FROM customer c WHERE contains(c.name) ");
  ASSERT_FALSE(bad_builtin.ok());
  EXPECT_EQ(bad_builtin.status().code(), StatusCode::kKeyError);
}

// ---- Scalar UDFs in query text, executed on the engine ----

TEST(FunctionRegistryTest, ScalarUdfRunsInSelectAndWhere) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterDoubleIt(db.functions()).ok());

  auto prepared = db.Prepare(
      "SELECT c.name, double_it(c.nationkey) AS dk FROM customer c "
      "WHERE double_it(c.nationkey) >= 2");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto result = prepared.value().Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result.value().ops.size(), 1u);
  EXPECT_EQ(result.value().ops[0].op_name, "SELECT");
  const auto& rows = result.value().ops[0].violations;
  ASSERT_EQ(rows.size(), 4u);  // every nationkey ≥ 1 → doubled ≥ 2
  for (const auto& row : rows) {
    const int64_t dk = row.GetField("dk").ValueOrDie().AsInt();
    EXPECT_EQ(dk % 2, 0);
    EXPECT_GE(dk, 2);
  }
  // The registered function really ran (4 rows × SELECT + WHERE calls),
  // surfaced through the QueryResult metrics snapshot.
  EXPECT_GE(result.value().metrics.udf_calls, 8u);
}

// ---- UDF aggregates: distribution + finalize ----

TEST(FunctionRegistryTest, RegisteredAggregateMatchesBuiltinAcrossNodes) {
  CleanDB db(FastCleanDBOptions(/*nodes=*/4));
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterUsum(db.functions()).ok());

  auto with_udf = db.Execute(
      "SELECT c.address AS addr, usum(c.nationkey) AS total "
      "FROM customer c GROUP BY c.address");
  auto with_builtin = db.Execute(
      "SELECT c.address AS addr, sum(c.nationkey) AS total "
      "FROM customer c GROUP BY c.address");
  ASSERT_TRUE(with_udf.ok()) << with_udf.status().ToString();
  ASSERT_TRUE(with_builtin.ok()) << with_builtin.status().ToString();

  auto totals = [](const QueryResult& r) {
    std::vector<std::pair<std::string, int64_t>> out;
    for (const auto& row : r.ops[0].violations) {
      out.emplace_back(row.GetField("addr").ValueOrDie().AsString(),
                       row.GetField("total").ValueOrDie().AsInt());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(totals(with_udf.value()), totals(with_builtin.value()));
  // rue de lausanne 1 → 1 + 1 + 3 = 5; bahnhofstrasse 3 → 2.
  EXPECT_EQ(totals(with_udf.value())[1].second, 5);
  EXPECT_GT(with_udf.value().metrics.udf_calls, 0u);
  EXPECT_EQ(with_builtin.value().metrics.udf_calls, 0u);
}

TEST(FunctionRegistryTest, AggregateFinalizeMapsAccumulator) {
  CleanDB db(FastCleanDBOptions(/*nodes=*/4));
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterUmean(db.functions()).ok());

  auto result = db.Execute(
      "SELECT c.address AS addr, umean(c.nationkey) AS mean, "
      "avg(c.nationkey) AS builtin_mean "
      "FROM customer c GROUP BY c.address");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& row : result.value().ops[0].violations) {
    const double mean = row.GetField("mean").ValueOrDie().AsDouble();
    const double builtin_mean = row.GetField("builtin_mean").ValueOrDie().AsDouble();
    EXPECT_DOUBLE_EQ(mean, builtin_mean);
  }
}

TEST(FunctionRegistryTest, EngineMatchesReferenceEvaluatorOnUdfPlans) {
  CleanDB db(FastCleanDBOptions(/*nodes=*/4));
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterUsum(db.functions()).ok());
  ASSERT_TRUE(RegisterDoubleIt(db.functions()).ok());

  auto query = ParseCleanM(
                   "SELECT c.address AS addr, usum(double_it(c.nationkey)) AS t "
                   "FROM customer c GROUP BY c.address HAVING t > 2")
                   .ValueOrDie();
  auto sp = BuildSelectPlan(query, &db.functions());
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();

  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  catalog.functions = &db.functions();
  auto reference = EvalPlan(sp.value().plan.plan, catalog).ValueOrDie();

  auto engine_result = db.Execute(
      "SELECT c.address AS addr, usum(double_it(c.nationkey)) AS t "
      "FROM customer c GROUP BY c.address HAVING t > 2");
  ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();

  auto canon = [](const ValueList& rows) {
    std::vector<std::string> out;
    for (const auto& r : rows) out.push_back(r.ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(engine_result.value().ops[0].violations),
            canon(reference.AsList()));
  // lausanne group: (1+1+3)*2 = 10 > 2; bahnhofstrasse: 2*2 = 4 > 2.
  EXPECT_EQ(engine_result.value().ops[0].violations.size(), 2u);
}

// ---- Repair actions: unit-level application ----

TEST(RepairApplyTest, AppliesCellWiseAndCountsUnmatched) {
  Dataset customers = MakeCustomers();
  const Value bob = RowToRecord(customers.schema(), customers.row(1));

  std::vector<RepairAction> actions;
  actions.push_back({bob, ValueStruct{{"phone", Value("021-555-0002")}}});
  // An entity that matches no row.
  actions.push_back(
      {Value(ValueStruct{{"name", Value("nobody")}}), ValueStruct{{"phone", Value("x")}}});

  RepairSummary summary;
  QueryMetrics metrics;
  auto repaired = ApplyRepairActions(customers, actions, &summary, &metrics);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(summary.actions, 2u);
  EXPECT_EQ(summary.rows_changed, 1u);
  EXPECT_EQ(summary.cells_changed, 1u);
  EXPECT_EQ(summary.unmatched, 1u);
  EXPECT_EQ(metrics.repairs_applied.load(), 1u);
  EXPECT_EQ(repaired.value().row(1)[2].AsString(), "021-555-0002");
  // Untouched cells are bit-identical.
  EXPECT_TRUE(repaired.value().row(0)[2].Equals(customers.row(0)[2]));
}

TEST(RepairApplyTest, UnknownColumnIsKeyError) {
  Dataset customers = MakeCustomers();
  const Value alice = RowToRecord(customers.schema(), customers.row(0));
  std::vector<RepairAction> actions{{alice, ValueStruct{{"no_col", Value("x")}}}};
  RepairSummary summary;
  auto repaired = ApplyRepairActions(customers, actions, &summary);
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), StatusCode::kKeyError);
}

TEST(RepairApplyTest, ExtractRecognizesActionShapes) {
  const Value action(ValueStruct{
      {"entity", Value("e")}, {"set", Value(ValueStruct{{"c", Value(int64_t{1})}})}});
  const Value tuple(ValueStruct{
      {"addr", Value("somewhere")},                 // plain data: ignored
      {"one", action},                              // single action
      {"many", Value(ValueList{action, action})},   // list of actions
      {"nums", Value(ValueList{Value(int64_t{3})})}  // non-action list: ignored
  });
  EXPECT_EQ(ExtractRepairActions(tuple).size(), 3u);

  // The scoped form only harvests the named fields, so action-shaped
  // values elsewhere (e.g. a data column that happens to carry {entity,
  // set} structs) are never mistaken for repairs.
  const std::vector<std::string> fields{"many"};
  EXPECT_EQ(ExtractRepairActions(tuple, &fields).size(), 2u);
}

TEST(FunctionRegistryTest, UngroupedAggregateIsTypeErrorAtPrepare) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterUsum(db.functions()).ok());

  // Monoid-only names (sum) and registered aggregates (usum) need a GROUP
  // BY — caught at Prepare, not as an execution-time "unknown builtin".
  for (const char* text :
       {"SELECT sum(c.nationkey) AS t FROM customer c",
        "SELECT usum(c.nationkey) AS t FROM customer c",
        "SELECT * FROM customer c WHERE sum(c.nationkey) > 1"}) {
    auto prepared = db.Prepare(text);
    ASSERT_FALSE(prepared.ok()) << text;
    EXPECT_EQ(prepared.status().code(), StatusCode::kTypeError) << text;
    EXPECT_NE(prepared.status().message().find("GROUP BY"), std::string::npos);
  }
  // Dual-natured names stay legal as scalars: count over a list value.
  auto ok = db.Prepare("SELECT count(split(c.phone, '-')) AS parts "
                       "FROM customer c");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// ---- The full detect → repair → re-register loop ----

TEST(RepairLoopTest, GroupedRepairQueryRepairsAndReRegisters) {
  CleanDB db(FastCleanDBOptions(/*nodes=*/4));
  db.RegisterTable("customer", MakeCustomers());
  ASSERT_TRUE(RegisterFixPhonePrefix(db.functions()).ok());

  // One CleanM query detects the violating groups (GROUP BY + HAVING) and
  // computes their repairs (registered repair function in SELECT position).
  const char* detect_and_repair =
      "SELECT c.address AS addr, fix_phone_prefix(bag(c)) AS fixes "
      "FROM customer c "
      "GROUP BY c.address "
      "HAVING length(set(prefix(c.phone))) > 1";
  auto prepared = db.Prepare(detect_and_repair);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().repair_table(), "customer");
  ASSERT_EQ(prepared.value().repair_fields().size(), 1u);
  EXPECT_EQ(prepared.value().repair_fields()[0], "fixes");

  // A second PreparedQuery over the same table, prepared *before* the
  // repair commits: lazy binding must pick up the repaired generation.
  auto recheck = db.Prepare(detect_and_repair);
  ASSERT_TRUE(recheck.ok());

  const uint64_t generation_before = db.TableGeneration("customer");

  RepairSink sink(&db, prepared.value());
  ASSERT_TRUE(prepared.value().ExecuteInto(sink).ok());
  // The engine (not the reference evaluator) executed this: the clustered
  // metrics saw the scan and the UDF invocations.
  EXPECT_GT(db.cluster().metrics().rows_scanned.load(), 0u);
  EXPECT_GT(db.cluster().metrics().udf_calls.load(), 0u);
  // Only bob deviates from the majority prefix of "rue de lausanne 1".
  ASSERT_EQ(sink.actions().size(), 1u);

  auto summary = sink.Commit();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().table, "customer");
  EXPECT_EQ(summary.value().rows_changed, 1u);
  EXPECT_EQ(summary.value().cells_changed, 1u);
  EXPECT_EQ(summary.value().unmatched, 0u);
  EXPECT_EQ(summary.value().new_generation, generation_before + 1);
  EXPECT_EQ(db.TableGeneration("customer"), generation_before + 1);
  EXPECT_GE(db.cluster().metrics().repairs_applied.load(), 1u);

  // The repaired table is a first-class query input: the pre-prepared
  // re-check binds the new generation and finds nothing left to repair.
  auto after = recheck.value().Execute();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().ops[0].violations.size(), 0u);
  // The re-registration invalidated the cached partitionings: this
  // execution had to re-partition (scan misses, not hits-only).
  EXPECT_GT(after.value().cache.scan_misses, 0u);

  // And the data really is clean now.
  auto table = db.GetTable("customer").ValueOrDie();
  EXPECT_EQ(table->row(1)[2].AsString(), "021-555-0002");
  EXPECT_EQ(table->row(0)[2].AsString(), "021-555-0001");
}

TEST(RepairLoopTest, UngroupedRepairInSelectPosition) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());
  // Row-wise repair: uppercase every name (entity = the row record).
  ASSERT_TRUE(db.functions().RegisterRepair(
      "upcase_name", 1, [](const std::vector<Value>& args) -> Result<Value> {
        auto name = args[0].GetField("name");
        if (!name.ok()) return Status::TypeError("upcase_name expects the record");
        std::string upper = name.value().AsString();
        for (auto& ch : upper) ch = static_cast<char>(std::toupper(ch));
        return Value(ValueStruct{
            {"entity", args[0]},
            {"set", Value(ValueStruct{{"name", Value(upper)}})}});
      }).ok());

  auto prepared = db.Prepare("SELECT upcase_name(c) AS fix FROM customer c");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  RepairSink sink(&db, prepared.value(), "customer_clean");
  ASSERT_TRUE(prepared.value().ExecuteInto(sink).ok());
  EXPECT_EQ(sink.actions().size(), 4u);

  auto summary = sink.Commit();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().table, "customer_clean");
  EXPECT_EQ(summary.value().rows_changed, 4u);

  // Repaired into a *new* table: the source is untouched, the target is
  // registered and queryable.
  EXPECT_EQ(db.GetTable("customer").ValueOrDie()->row(0)[0].AsString(), "alice");
  EXPECT_EQ(db.GetTable("customer_clean").ValueOrDie()->row(0)[0].AsString(),
            "ALICE");
  auto roundtrip = db.Execute("SELECT cc.name FROM customer_clean cc");
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_EQ(roundtrip.value().ops[0].violations.size(), 4u);
}

// ---- Coalescing: a user GROUP BY shares the built-in grouping pass ----

TEST(FunctionRegistryTest, UserGroupByCoalescesWithFdNest) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", MakeCustomers());

  // FD(c.address, prefix(c.phone)) groups by c.address; so does the user
  // query — one shared Nest pass under unification.
  auto prepared = db.Prepare(
      "SELECT c.address AS addr, count(c) AS n FROM customer c "
      "GROUP BY c.address HAVING n > 1 "
      "FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().num_operations(), 2u);
  EXPECT_EQ(prepared.value().nests_coalesced(), 1);

  auto result = prepared.value().Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // FD: lausanne group has prefixes {021, 022} → violations reported.
  EXPECT_GT(result.value().ops[0].violations.size(), 0u);
  // User plan: only the lausanne group has > 1 member.
  ASSERT_EQ(result.value().ops[1].violations.size(), 1u);
  EXPECT_EQ(result.value()
                .ops[1]
                .violations[0]
                .GetField("addr")
                .ValueOrDie()
                .AsString(),
            "rue de lausanne 1");
  EXPECT_EQ(
      result.value().ops[1].violations[0].GetField("n").ValueOrDie().AsInt(), 3);
}

}  // namespace
}  // namespace cleanm
