// Physical-layer tests: compiled expressions, and agreement between the
// distributed executor and the reference algebra evaluator across all
// aggregation strategies and theta-join algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/algebra_eval.h"
#include "datagen/generators.h"
#include "physical/planner.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::CustomerFdPlan;

engine::ClusterOptions FastCluster() {
  return testsupport::FastClusterOptions(4);
}

TEST(CompileTest, VariableAndFieldAccess) {
  TupleLayout layout{"c", "d"};
  Value tuple(ValueStruct{
      {"c", Value(ValueStruct{{"name", Value("ann")}, {"age", Value(int64_t{30})}})},
      {"d", Value(int64_t{7})}});
  auto var = CompileExpr(Var("d"), layout).ValueOrDie();
  EXPECT_EQ(var(tuple).AsInt(), 7);
  auto field = CompileExpr(FieldAccess(Var("c"), "name"), layout).ValueOrDie();
  EXPECT_EQ(field(tuple).AsString(), "ann");
  // Missing field null-propagates instead of erroring.
  auto missing = CompileExpr(FieldAccess(Var("c"), "zzz"), layout).ValueOrDie();
  EXPECT_TRUE(missing(tuple).is_null());
  // Unknown variable is a plan-time error.
  EXPECT_FALSE(CompileExpr(Var("nope"), layout).ok());
  // Unknown builtin is a plan-time error.
  EXPECT_FALSE(CompileExpr(Call("bogus_fn", {}), layout).ok());
}

TEST(CompileTest, NullPropagationInPredicates) {
  TupleLayout layout{"x"};
  Value with_null(ValueStruct{{"x", Value::Null()}});
  auto pred =
      CompilePredicate(Binary(BinaryOp::kGt, Var("x"), ConstInt(1)), layout).ValueOrDie();
  EXPECT_FALSE(pred(with_null));  // null comparison → not a violation match
  Value with_val(ValueStruct{{"x", Value(int64_t{5})}});
  EXPECT_TRUE(pred(with_val));
}

TEST(CompileTest, ArithmeticAndCalls) {
  TupleLayout layout{"x"};
  Value tuple(ValueStruct{{"x", Value("021-555-1234")}});
  auto call = CompileExpr(Call("prefix", {Var("x")}), layout).ValueOrDie();
  EXPECT_EQ(call(tuple).AsString(), "021");
  Value nums(ValueStruct{{"x", Value(int64_t{6})}});
  auto arith = CompileExpr(
      Binary(BinaryOp::kMul, Var("x"), ConstInt(7)), layout).ValueOrDie();
  EXPECT_EQ(arith(nums).AsInt(), 42);
  // Division by zero null-propagates.
  auto div = CompileExpr(Binary(BinaryOp::kDiv, Var("x"), ConstInt(0)), layout)
                 .ValueOrDie();
  EXPECT_TRUE(div(nums).is_null());
}

class PhysicalAgreementTest
    : public ::testing::TestWithParam<engine::AggregateStrategy> {};

TEST_P(PhysicalAgreementTest, NestPlanMatchesReferenceEvaluator) {
  datagen::CustomerOptions copts;
  copts.base_rows = 400;
  copts.duplicate_fraction = 0.1;
  auto customers = datagen::MakeCustomer(copts);
  Catalog catalog{{{"customer", &customers}}};
  auto plan = CustomerFdPlan();

  auto reference = EvalPlanTuples(plan, catalog).ValueOrDie();

  engine::Cluster cluster(FastCluster());
  PhysicalOptions popts;
  popts.aggregate_strategy = GetParam();
  PartitionCache cache;
  Executor exec{&cluster, &catalog, popts, &cache};
  auto distributed = exec.RunToValue(plan).ValueOrDie();

  // Same number of violating groups, same key set.
  ASSERT_EQ(distributed.AsList().size(), reference.size());
  auto keys_of = [](const std::vector<Value>& tuples) {
    std::vector<std::string> keys;
    for (const auto& t : tuples) keys.push_back(t.GetField("key").ValueOrDie().AsString());
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  std::vector<Value> dist_tuples(distributed.AsList().begin(), distributed.AsList().end());
  EXPECT_EQ(keys_of(dist_tuples), keys_of(reference));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PhysicalAgreementTest,
    ::testing::Values(engine::AggregateStrategy::kLocalCombine,
                      engine::AggregateStrategy::kSortShuffle,
                      engine::AggregateStrategy::kHashShuffle));

TEST(PhysicalTest, EquiJoinAndReduceMatchReference) {
  Dataset left(Schema{{"k", ValueType::kInt}, {"v", ValueType::kString}});
  Dataset right(Schema{{"k", ValueType::kInt}, {"w", ValueType::kString}});
  for (int i = 0; i < 50; i++) {
    left.Append({Value(int64_t{i % 10}), Value("l" + std::to_string(i))});
  }
  for (int i = 0; i < 10; i++) {
    right.Append({Value(int64_t{i}), Value("r" + std::to_string(i))});
  }
  Catalog catalog{{{"L", &left}, {"R", &right}}};
  auto plan = ReduceOp(
      EquiJoinOp(Scan("L", "l"), Scan("R", "r"), FieldAccess(Var("l"), "k"),
                 FieldAccess(Var("r"), "k")),
      "count", Var("l"));
  auto expected = EvalPlan(plan, catalog).ValueOrDie();

  engine::Cluster cluster(FastCluster());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  auto actual = exec.RunToValue(plan).ValueOrDie();
  EXPECT_EQ(actual.AsInt(), expected.AsInt());
  EXPECT_EQ(actual.AsInt(), 50);
}

TEST(PhysicalTest, ThetaJoinMatchesReferenceAcrossAlgorithms) {
  Dataset t(Schema{{"price", ValueType::kDouble}, {"discount", ValueType::kDouble}});
  Rng rng(5);
  for (int i = 0; i < 40; i++) {
    t.Append({Value(static_cast<double>(rng.Uniform(100))),
              Value(static_cast<double>(rng.Uniform(10)) / 100.0)});
  }
  Catalog catalog{{{"t", &t}}};
  // ψ-shaped rule: t1.price < t2.price and t1.discount > t2.discount.
  auto pred = Binary(
      BinaryOp::kAnd,
      Binary(BinaryOp::kLt, FieldAccess(Var("t1"), "price"),
             FieldAccess(Var("t2"), "price")),
      Binary(BinaryOp::kGt, FieldAccess(Var("t1"), "discount"),
             FieldAccess(Var("t2"), "discount")));
  auto plan = ReduceOp(JoinOp(Scan("t", "t1"), Scan("t", "t2"), pred), "count", Var("t1"));
  auto expected = EvalPlan(plan, catalog).ValueOrDie();

  for (auto algo : {engine::ThetaJoinAlgo::kCartesian, engine::ThetaJoinAlgo::kMinMax,
                    engine::ThetaJoinAlgo::kMatrix}) {
    engine::Cluster cluster(FastCluster());
    PhysicalOptions popts;
    popts.theta_algo = algo;
    PartitionCache cache;
    Executor exec{&cluster, &catalog, popts, &cache};
    auto actual = exec.RunToValue(plan).ValueOrDie();
    EXPECT_EQ(actual.AsInt(), expected.AsInt()) << engine::ThetaJoinAlgoName(algo);
  }
}

TEST(PhysicalTest, UnnestAndOuterUnnest) {
  Dataset pubs(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  pubs.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  pubs.Append({Value("p2"), Value(ValueList{})});
  Catalog catalog{{{"pubs", &pubs}}};
  engine::Cluster cluster(FastCluster());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  auto inner = exec.RunToValue(ReduceOp(
      UnnestOp(Scan("pubs", "p"), FieldAccess(Var("p"), "authors"), "a"), "count",
      Var("a")));
  EXPECT_EQ(inner.ValueOrDie().AsInt(), 2);
  auto outer = exec.RunToValue(ReduceOp(
      UnnestOp(Scan("pubs", "p"), FieldAccess(Var("p"), "authors"), "a", true), "count",
      Var("p")));
  EXPECT_EQ(outer.ValueOrDie().AsInt(), 3);
}

TEST(PhysicalTest, ScanCacheSharesTablesAcrossPlans) {
  Dataset t(Schema{{"x", ValueType::kInt}});
  for (int i = 0; i < 100; i++) t.Append({Value(int64_t{i})});
  Catalog catalog{{{"t", &t}}};
  engine::Cluster cluster(FastCluster());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  (void)exec.RunToValue(ReduceOp(Scan("t", "a"), "count", Var("a"))).ValueOrDie();
  const uint64_t scanned_once = cluster.metrics().rows_scanned.load();
  (void)exec.RunToValue(ReduceOp(Scan("t", "b"), "count", Var("b"))).ValueOrDie();
  // Second plan reuses the cached scan: no additional parallelize.
  EXPECT_EQ(cluster.metrics().rows_scanned.load(), scanned_once);
}

TEST(PhysicalTest, NestCacheExecutesSharedNestOnce) {
  datagen::CustomerOptions copts;
  copts.base_rows = 200;
  auto customers = datagen::MakeCustomer(copts);
  Catalog catalog{{{"customer", &customers}}};
  auto shared = CustomerFdPlan();
  shared->having = nullptr;  // shared node carries no having
  auto root1 = SelectOp(shared, Binary(BinaryOp::kGt, Call("count", {Var("vals")}),
                                       ConstInt(1)));
  auto root2 = SelectOp(shared, Binary(BinaryOp::kGt, Call("count", {Var("partition")}),
                                       ConstInt(1)));
  engine::Cluster cluster(FastCluster());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  (void)exec.RunToValue(root1).ValueOrDie();
  const uint64_t groups_after_first = cluster.metrics().groups_built.load();
  (void)exec.RunToValue(root2).ValueOrDie();
  // The second root hits the nest cache: no additional grouping work.
  EXPECT_EQ(cluster.metrics().groups_built.load(), groups_after_first);
}

}  // namespace
}  // namespace cleanm
