// Tests for the out-of-core storage subsystem (storage/pagestore/): the
// bit-faithful row codec, the checksummed single-file page store (including
// positioned corruption errors and remove-on-close), the byte-budget buffer
// pool (LRU eviction, pin-survives-eviction, stats, concurrent pin stress —
// run under tsan in CI), paged table build/scan order, spill round trips,
// and the paged CSV/JSON readers' equivalence with the resident readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "storage/csv.h"
#include "storage/json.h"
#include "storage/pagestore/buffer_pool.h"
#include "storage/pagestore/paged_table.h"
#include "storage/pagestore/row_codec.h"
#include "storage/pagestore/single_file_store.h"
#include "storage/pagestore/spill.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

namespace fs = std::filesystem;

/// A fresh empty directory under the system temp dir, removed on scope
/// exit, so tests can assert "no files left behind".
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("cleanm_pagestore_test_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  size_t FileCount() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(path_)) {
      (void)e;
      n++;
    }
    return n;
  }

 private:
  fs::path path_;
};

Row MixedRow() {
  Value nested = Value(ValueList{Value(int64_t{7}), Value("x,y\n\"z\""),
                                 Value::Null()});
  ValueStruct st;
  st.emplace_back("first", Value(0.1));
  st.emplace_back("second", Value(int64_t{-3}));
  return Row{Value(int64_t{1}),      Value(1.0),
             Value("rue de lausanne 1"), Value::Null(),
             Value(std::nan("")),    nested,
             Value(std::move(st))};
}

// ---- Row codec ----

TEST(RowCodecTest, RoundTripIsBitFaithful) {
  const Row row = MixedRow();
  std::string buf;
  EncodeRow(row, &buf);
  size_t pos = 0;
  Row decoded = DecodeRow(buf, &pos).ValueOrDie();
  ASSERT_EQ(pos, buf.size());
  ASSERT_EQ(decoded.size(), row.size());
  // int 1 stays int (never becomes double 1.0) and vice versa.
  EXPECT_EQ(decoded[0].type(), ValueType::kInt);
  EXPECT_EQ(decoded[1].type(), ValueType::kDouble);
  EXPECT_TRUE(std::isnan(decoded[4].AsDouble()));
  for (size_t i = 0; i < row.size(); i++) {
    if (i == 4) continue;  // NaN != NaN
    EXPECT_TRUE(decoded[i].Equals(row[i])) << "value " << i;
  }
  // Re-encoding the decoded row reproduces the exact bytes (IEEE bits,
  // struct field order, everything).
  std::string buf2;
  EncodeRow(decoded, &buf2);
  EXPECT_EQ(buf, buf2);
}

TEST(RowCodecTest, TruncatedPayloadIsIOErrorNotUB) {
  std::vector<Row> rows = {MixedRow(), MixedRow()};
  std::string buf;
  EncodeRowChunk(rows.data(), rows.size(), &buf);
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{3}}) {
    std::vector<Row> out;
    Status st = DecodeRowChunk(buf.substr(0, cut), &out);
    ASSERT_FALSE(st.ok()) << "cut at " << cut;
    EXPECT_EQ(st.code(), StatusCode::kIOError);
  }
}

// ---- Single-file store ----

TEST(SingleFileStoreTest, AppendReadRoundTripAndOversizedPages) {
  TempDir dir("store");
  auto store =
      SingleFileStore::CreateTemp(dir.path().string(), "t", /*page_bytes=*/128)
          .MoveValue();
  const std::string small(40, 'a');
  const std::string exact(128 - 32, 'b');         // fills one slot's payload
  const std::string oversized(5 * 128 + 17, 'c');  // spans multiple slots
  const uint64_t p0 = store->AppendPage(small).ValueOrDie();
  const uint64_t p1 = store->AppendPage(exact).ValueOrDie();
  const uint64_t p2 = store->AppendPage(oversized).ValueOrDie();
  EXPECT_EQ(store->ReadPage(p0).ValueOrDie(), small);
  EXPECT_EQ(store->ReadPage(p1).ValueOrDie(), exact);
  EXPECT_EQ(store->ReadPage(p2).ValueOrDie(), oversized);
  EXPECT_GT(store->pages_allocated(), 3u);  // the oversized page spans slots
  EXPECT_GT(store->bytes_written(), oversized.size());
}

TEST(SingleFileStoreTest, RemoveOnCloseUnlinksTheFile) {
  TempDir dir("raii");
  std::string path;
  {
    auto store =
        SingleFileStore::CreateTemp(dir.path().string(), "t", 128).MoveValue();
    path = store->path();
    ASSERT_TRUE(store->AppendPage("payload").ok());
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(dir.FileCount(), 0u);
}

TEST(SingleFileStoreTest, CorruptedPageReadIsPositionedIOError) {
  TempDir dir("corrupt");
  const std::string path = (dir.path() / "pages.bin").string();
  auto store = SingleFileStore::Create(path, /*page_bytes=*/128,
                                       /*remove_on_close=*/true)
                   .MoveValue();
  const uint64_t pid = store->AppendPage(std::string(64, 'p')).ValueOrDie();

  auto flip_byte = [&](std::streamoff offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x5a;
    f.seekp(offset);
    f.write(&c, 1);
  };

  // Flip a payload byte: the checksum catches it, and the error names the
  // file, the page, and the byte offset.
  flip_byte(40);  // past the 32-byte header, inside the payload
  Status bad = store->ReadPage(pid).status();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kIOError);
  EXPECT_NE(bad.message().find(path), std::string::npos) << bad.message();
  EXPECT_NE(bad.message().find("page 0"), std::string::npos) << bad.message();
  EXPECT_NE(bad.message().find("byte offset"), std::string::npos) << bad.message();
  EXPECT_NE(bad.message().find("checksum mismatch"), std::string::npos)
      << bad.message();
  flip_byte(40);  // restore
  ASSERT_TRUE(store->ReadPage(pid).ok());

  // Flip a header magic byte: detected before the checksum even runs.
  flip_byte(0);
  Status bad_magic = store->ReadPage(pid).status();
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.code(), StatusCode::kIOError);
  EXPECT_NE(bad_magic.message().find("magic"), std::string::npos)
      << bad_magic.message();
}

// ---- Buffer pool ----

TEST(BufferPoolTest, LruEvictionKeepsResidencyUnderBudget) {
  TempDir dir("pool");
  auto store =
      SingleFileStore::CreateTemp(dir.path().string(), "t", 128).MoveValue();
  std::vector<uint64_t> pages;
  for (int i = 0; i < 4; i++) {
    pages.push_back(
        store->AppendPage(std::string(80, static_cast<char>('a' + i)))
            .ValueOrDie());
  }

  BufferPool pool(/*byte_budget=*/2 * 80);
  EXPECT_EQ(pool.Pin(*store, pages[0]).ValueOrDie()->front(), 'a');  // miss
  EXPECT_EQ(pool.Pin(*store, pages[1]).ValueOrDie()->front(), 'b');  // miss
  EXPECT_EQ(pool.Pin(*store, pages[0]).ValueOrDie()->front(), 'a');  // hit
  // Third distinct page exceeds the two-page budget → LRU (page 1) evicts.
  EXPECT_EQ(pool.Pin(*store, pages[2]).ValueOrDie()->front(), 'c');  // miss
  // Page 1 is gone (miss again); page 0 was kept (recently used).
  EXPECT_EQ(pool.Pin(*store, pages[1]).ValueOrDie()->front(), 'b');  // miss
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, pool.byte_budget());
  EXPECT_GE(s.peak_resident_bytes, s.resident_bytes);
}

TEST(BufferPoolTest, PinSurvivesEvictionAndOversizedPayloadIsAdmitted) {
  TempDir dir("pins");
  auto store =
      SingleFileStore::CreateTemp(dir.path().string(), "t", 128).MoveValue();
  const std::string big(400, 'B');  // larger than the whole budget
  const uint64_t big_id = store->AppendPage(big).ValueOrDie();
  const uint64_t small_id = store->AppendPage(std::string(50, 's')).ValueOrDie();

  BufferPool pool(/*byte_budget=*/100);
  // An oversized payload is admitted alone rather than rejected.
  PagePin big_pin = pool.Pin(*store, big_id).ValueOrDie();
  EXPECT_EQ(*big_pin, big);
  // Pinning another page evicts the oversized frame from the *pool*, but
  // the lease keeps the bytes alive and intact.
  PagePin small_pin = pool.Pin(*store, small_id).ValueOrDie();
  EXPECT_EQ(pool.stats().resident_bytes, 50u);
  EXPECT_EQ(*big_pin, big);  // unaffected by the eviction
}

TEST(BufferPoolTest, ConcurrentPinStressStaysConsistent) {
  // Run under tsan in CI: many threads pinning overlapping pages through a
  // pool small enough to churn evictions constantly.
  TempDir dir("stress");
  auto store =
      SingleFileStore::CreateTemp(dir.path().string(), "t", 256).MoveValue();
  constexpr int kPages = 16;
  constexpr size_t kPayload = 200;
  std::vector<uint64_t> pages;
  for (int i = 0; i < kPages; i++) {
    pages.push_back(
        store->AppendPage(std::string(kPayload, static_cast<char>('A' + i)))
            .ValueOrDie());
  }

  BufferPool pool(/*byte_budget=*/3 * kPayload);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t);
      for (int i = 0; i < kItersPerThread; i++) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const int idx = static_cast<int>((state >> 33) % kPages);
        Result<PagePin> pin = pool.Pin(*store, pages[idx]);
        if (!pin.ok() || pin.value()->size() != kPayload ||
            pin.value()->front() != static_cast<char>('A' + idx)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_LE(s.resident_bytes, pool.byte_budget());
}

// ---- Paged table ----

TEST(PagedTableTest, BuilderScanReplaysIngestionOrderAcrossChunks) {
  TempDir dir("table");
  auto store = std::shared_ptr<SingleFileStore>(
      SingleFileStore::CreateTemp(dir.path().string(), "t", 256).MoveValue());
  Rng rng(7);
  Dataset data = testsupport::RandomFlatDataset(&rng, 200);

  PagedTableBuilder builder(store);
  for (const auto& row : data.rows()) ASSERT_TRUE(builder.Append(row).ok());
  PagedTable table = builder.Finish(data.schema()).ValueOrDie();
  EXPECT_EQ(table.num_rows(), data.num_rows());
  EXPECT_GT(table.chunks().size(), 1u)  // actually exercises chunk spanning
      << "payload too small for page_bytes=256?";
  EXPECT_GT(table.logical_bytes(), 0u);

  BufferPool pool(/*byte_budget=*/512);  // forces eviction churn mid-scan
  std::vector<Row> scanned;
  ASSERT_TRUE(
      table.ScanRows(&pool, [&](Row&& r) { scanned.push_back(std::move(r)); })
          .ok());
  ASSERT_EQ(scanned.size(), data.num_rows());
  for (size_t i = 0; i < scanned.size(); i++) {
    ASSERT_EQ(scanned[i].size(), data.rows()[i].size());
    for (size_t c = 0; c < scanned[i].size(); c++) {
      EXPECT_TRUE(scanned[i][c].Equals(data.rows()[i][c]))
          << "row " << i << " col " << c;
    }
  }
}

// ---- Spill context ----

TEST(SpillContextTest, SpillReadBackRoundTripsAndCleansUp) {
  TempDir dir("spill");
  BufferPool pool(/*byte_budget=*/1024);
  std::vector<Row> rows;
  for (int i = 0; i < 300; i++) {
    rows.push_back(Row{Value(int64_t{i}), Value("row-" + std::to_string(i))});
  }
  {
    SpillContext spill(dir.path().string(), /*page_bytes=*/256,
                       /*budget_bytes=*/1024, &pool);
    EXPECT_TRUE(spill.enabled());
    EXPECT_FALSE(spill.ShouldSpill(100, 1));
    EXPECT_TRUE(spill.ShouldSpill(600, 2));
    EXPECT_EQ(dir.FileCount(), 0u);  // store is lazy: no file before a spill

    auto spans = spill.SpillRows(rows).ValueOrDie();
    EXPECT_GT(spans.size(), 1u);
    EXPECT_GT(spill.bytes_spilled(), 0u);
    EXPECT_EQ(dir.FileCount(), 1u);

    std::vector<Row> back;
    ASSERT_TRUE(spill.ReadBack(spans, &back).ok());
    ASSERT_EQ(back.size(), rows.size());
    for (size_t i = 0; i < rows.size(); i++) {
      EXPECT_TRUE(back[i][0].Equals(rows[i][0]));
      EXPECT_TRUE(back[i][1].Equals(rows[i][1]));
    }
  }
  // Destruction removes the spill file — the RAII exit-path guarantee.
  EXPECT_EQ(dir.FileCount(), 0u);
}

// ---- Paged readers ----

TEST(PagedReaderTest, CsvPagedMatchesResidentReaderIncludingBadRows) {
  TempDir dir("csv");
  const std::string path = (dir.path() / "input.csv").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "id,name,score\n";
    out << "1,alice,3.5\n";
    out << "2,\"bob,jr\",4.0\n";
    out << "3,carol\n";             // wrong arity → bad row under tolerance
    out << "4,dave,oops,extra\n";   // wrong arity
    out << "5,eve,2.5\n";
    out << "\n";                    // blank line, skipped silently
    out << "6,frank,\n";            // trailing null score
  }
  CsvOptions options;
  options.read.max_bad_rows = 2;
  ReadReport resident_report;
  Dataset resident = ReadCsv(path, options, &resident_report).ValueOrDie();

  auto store = std::shared_ptr<SingleFileStore>(
      SingleFileStore::CreateTemp(dir.path().string(), "csv", 256).MoveValue());
  options.read.page_store = store;
  ReadReport paged_report;
  PagedTable paged = ReadCsvPaged(path, options, &paged_report).ValueOrDie();

  EXPECT_EQ(paged_report.rows_loaded, resident_report.rows_loaded);
  ASSERT_EQ(paged_report.bad_rows.size(), resident_report.bad_rows.size());
  for (size_t i = 0; i < paged_report.bad_rows.size(); i++) {
    EXPECT_EQ(paged_report.bad_rows[i].line, resident_report.bad_rows[i].line);
    EXPECT_EQ(paged_report.bad_rows[i].error, resident_report.bad_rows[i].error);
  }
  ASSERT_EQ(paged.schema().num_fields(), resident.schema().num_fields());
  for (size_t i = 0; i < resident.schema().num_fields(); i++) {
    EXPECT_EQ(paged.schema().field(i).name, resident.schema().field(i).name);
    EXPECT_EQ(paged.schema().field(i).type, resident.schema().field(i).type);
  }
  BufferPool pool(/*byte_budget=*/1024);
  std::vector<Row> scanned;
  ASSERT_TRUE(
      paged.ScanRows(&pool, [&](Row&& r) { scanned.push_back(std::move(r)); })
          .ok());
  ASSERT_EQ(scanned.size(), resident.num_rows());
  for (size_t i = 0; i < scanned.size(); i++) {
    for (size_t c = 0; c < scanned[i].size(); c++) {
      EXPECT_TRUE(scanned[i][c].Equals(resident.rows()[i][c]))
          << "row " << i << " col " << c;
    }
  }

  // Strict mode fails the paged reader at the same record.
  CsvOptions strict;
  strict.read.page_store = store;
  Status st = ReadCsvPaged(path, strict).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), ReadCsv(path, CsvOptions{}).status().message());
}

TEST(PagedReaderTest, JsonLinesPagedMatchesResidentReader) {
  TempDir dir("json");
  const std::string path = (dir.path() / "input.jsonl").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"a\":1,\"b\":\"x\"}\n";
    out << "{\"b\":\"y\",\"c\":[1,2]}\n";   // widens the schema with c
    out << "not json at all\n";             // bad line
    out << "[1,2,3]\n";                     // not an object
    out << "{\"a\":2.5}\n";
  }
  ReadOptions options;
  options.max_bad_rows = 2;
  ReadReport resident_report;
  Dataset resident = ReadJsonLines(path, options, &resident_report).ValueOrDie();

  auto store = std::shared_ptr<SingleFileStore>(
      SingleFileStore::CreateTemp(dir.path().string(), "json", 256).MoveValue());
  options.page_store = store;
  ReadReport paged_report;
  PagedTable paged = ReadJsonLinesPaged(path, options, &paged_report).ValueOrDie();

  EXPECT_EQ(paged_report.rows_loaded, resident_report.rows_loaded);
  ASSERT_EQ(paged_report.bad_rows.size(), resident_report.bad_rows.size());
  for (size_t i = 0; i < paged_report.bad_rows.size(); i++) {
    EXPECT_EQ(paged_report.bad_rows[i].line, resident_report.bad_rows[i].line);
    EXPECT_EQ(paged_report.bad_rows[i].error, resident_report.bad_rows[i].error);
  }
  ASSERT_EQ(paged.schema().num_fields(), resident.schema().num_fields());
  for (size_t i = 0; i < resident.schema().num_fields(); i++) {
    EXPECT_EQ(paged.schema().field(i).name, resident.schema().field(i).name);
    EXPECT_EQ(paged.schema().field(i).type, resident.schema().field(i).type);
  }
  BufferPool pool(/*byte_budget=*/1024);
  std::vector<Row> scanned;
  ASSERT_TRUE(
      paged.ScanRows(&pool, [&](Row&& r) { scanned.push_back(std::move(r)); })
          .ok());
  ASSERT_EQ(scanned.size(), resident.num_rows());
  for (size_t i = 0; i < scanned.size(); i++) {
    for (size_t c = 0; c < scanned[i].size(); c++) {
      EXPECT_TRUE(scanned[i][c].Equals(resident.rows()[i][c]))
          << "row " << i << " col " << c;
    }
  }
}

TEST(PagedReaderTest, PagedReadersRequireAPageStore) {
  Status csv = ReadCsvPaged("/nonexistent.csv").status();
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.code(), StatusCode::kInvalidArgument);
  Status json = ReadJsonLinesPaged("/nonexistent.jsonl").status();
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cleanm
