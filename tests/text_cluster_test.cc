// Unit + property tests for similarity metrics and the filtering/clustering
// building blocks (token filtering, single-pass k-means, reservoir sampling).
#include <gtest/gtest.h>

#include <set>

#include "cluster/filtering.h"
#include "common/random.h"
#include "text/similarity.h"

namespace cleanm {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(LevenshteinTest, BoundedEarlyExit) {
  // Bound below the true distance: must report bound+1.
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting", 1), 2u);
  // Bound at/above the true distance: exact.
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting", 3), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting", 10), 3u);
  // Length-difference shortcut.
  EXPECT_EQ(LevenshteinDistance("ab", "abcdefgh", 2), 3u);
}

TEST(LevenshteinTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

TEST(LevenshteinTest, ThresholdedAgreesWithExact) {
  const char* words[] = {"smith", "smyth", "smithe", "jones", "jonse", "x"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (double theta : {0.5, 0.8, 0.9}) {
        EXPECT_EQ(LevenshteinSimilarAtLeast(a, b, theta),
                  LevenshteinSimilarity(a, b) >= theta)
            << a << " vs " << b << " @ " << theta;
      }
    }
  }
}

// Property: Levenshtein distance is a metric (symmetry + triangle
// inequality) on random short strings.
TEST(LevenshteinTest, MetricPropertiesOnRandomStrings) {
  Rng rng(7);
  auto random_word = [&rng]() {
    std::string s;
    const size_t len = rng.Uniform(8);
    for (size_t i = 0; i < len; i++) s += static_cast<char>('a' + rng.Uniform(4));
    return s;
  };
  for (int trial = 0; trial < 200; trial++) {
    const std::string a = random_word(), b = random_word(), c = random_word();
    const size_t ab = LevenshteinDistance(a, b);
    const size_t ba = LevenshteinDistance(b, a);
    const size_t bc = LevenshteinDistance(b, c);
    const size_t ac = LevenshteinDistance(a, c);
    EXPECT_EQ(ab, ba);
    EXPECT_LE(ac, ab + bc) << a << ' ' << b << ' ' << c;
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
  }
}

TEST(QGramTest, WindowsAndShortStrings) {
  const auto grams = QGrams("abcd", 2);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_EQ(grams[2], "cd");
  const auto shorty = QGrams("a", 3);
  ASSERT_EQ(shorty.size(), 1u);
  EXPECT_EQ(shorty[0], "a");
}

TEST(JaccardTest, QGramSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("abc", "xyz"), 0.0);
  EXPECT_GT(JaccardQGramSimilarity("jonathan", "jonathon"), 0.5);
}

TEST(JaccardTest, TokenSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b c", "c b a"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b", "a c"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("", ""), 1.0);
}

TEST(EuclideanTest, Distance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1}, {1}), 0.0);
}

TEST(MetricParseTest, NamesAndAliases) {
  SimilarityMetric m;
  EXPECT_TRUE(ParseSimilarityMetric("LD", &m));
  EXPECT_EQ(m, SimilarityMetric::kLevenshtein);
  EXPECT_TRUE(ParseSimilarityMetric("Jaccard", &m));
  EXPECT_EQ(m, SimilarityMetric::kJaccard);
  EXPECT_TRUE(ParseSimilarityMetric("euclidean", &m));
  EXPECT_FALSE(ParseSimilarityMetric("cosine", &m));
}

TEST(FilteringAlgoParseTest, NamesAndAliases) {
  FilteringAlgo a;
  EXPECT_TRUE(ParseFilteringAlgo("token_filtering", &a));
  EXPECT_EQ(a, FilteringAlgo::kTokenFiltering);
  EXPECT_TRUE(ParseFilteringAlgo("tf", &a));
  EXPECT_TRUE(ParseFilteringAlgo("KMEANS", &a));
  EXPECT_EQ(a, FilteringAlgo::kKMeans);
  EXPECT_TRUE(ParseFilteringAlgo("exact", &a));
  EXPECT_FALSE(ParseFilteringAlgo("dbscan", &a));
}

TEST(TokenFilteringTest, SharedTokenGuarantee) {
  // Two strings at edit distance 1 always share a q-gram when long enough;
  // token filtering must put them in at least one common group.
  const std::vector<std::string> values = {"jonathan smith", "jonathan smyth",
                                           "completely different"};
  auto groups = BuildGroups(values, {.algo = FilteringAlgo::kTokenFiltering, .q = 2});
  bool share = false;
  for (const auto& [key, members] : groups) {
    bool has0 = false, has1 = false;
    for (uint32_t m : members) {
      if (m == 0) has0 = true;
      if (m == 1) has1 = true;
    }
    if (has0 && has1) share = true;
  }
  EXPECT_TRUE(share);
}

TEST(TokenFilteringTest, DistinctTokensOnlyOncePerString) {
  // "aaaa" has one distinct 2-gram ("aa"); it must appear once in that group.
  auto assignments = TokenFilterAssign({"aaaa"}, 2);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].key, "aa");
}

TEST(ReservoirSampleTest, SizeAndMembership) {
  std::vector<std::string> input;
  for (int i = 0; i < 100; i++) input.push_back("w" + std::to_string(i));
  const auto sample = ReservoirSample(input, 10, 1);
  EXPECT_EQ(sample.size(), 10u);
  const std::set<std::string> universe(input.begin(), input.end());
  for (const auto& s : sample) EXPECT_TRUE(universe.count(s));
  // Fewer inputs than k: returns all of them.
  const auto small = ReservoirSample({"a", "b"}, 10, 1);
  EXPECT_EQ(small.size(), 2u);
}

TEST(ReservoirSampleTest, DeterministicGivenSeed) {
  std::vector<std::string> input;
  for (int i = 0; i < 50; i++) input.push_back(std::to_string(i));
  EXPECT_EQ(ReservoirSample(input, 5, 9), ReservoirSample(input, 5, 9));
}

// Property: reservoir sampling is (approximately) uniform — every element
// should be selected with probability k/n across many seeds.
TEST(ReservoirSampleTest, ApproximateUniformity) {
  std::vector<std::string> input;
  for (int i = 0; i < 20; i++) input.push_back(std::to_string(i));
  std::map<std::string, int> counts;
  const int trials = 2000;
  for (int seed = 0; seed < trials; seed++) {
    for (const auto& s : ReservoirSample(input, 5, seed)) counts[s]++;
  }
  // Expected count per element = trials * k/n = 500. Allow wide tolerance.
  for (const auto& [elem, count] : counts) {
    EXPECT_GT(count, 350) << elem;
    EXPECT_LT(count, 650) << elem;
  }
}

TEST(KMeansTest, AssignsEveryValueToAtLeastOneCluster) {
  std::vector<std::string> values = {"smith", "smyth", "jones", "jonse", "brown"};
  SinglePassKMeans km(2, 1.0, 3);
  const auto centers = km.SampleCenters(values);
  ASSERT_EQ(centers.size(), 2u);
  const auto assignments = km.Assign(values, centers);
  std::set<uint32_t> covered;
  for (const auto& a : assignments) covered.insert(a.index);
  EXPECT_EQ(covered.size(), values.size());
}

TEST(KMeansTest, DeltaZeroAssignsOnlyNearestCenters) {
  // Centers "aaaa" and "zzzz"; "aaab" is strictly closer to "aaaa".
  SinglePassKMeans km(2, 0.0, 1);
  const std::vector<std::string> centers = {"aaaa", "zzzz"};
  const auto assignments = km.Assign({"aaab"}, centers);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].key, "c0");
}

TEST(KMeansTest, LargerDeltaProducesMoreAssignments) {
  std::vector<std::string> values;
  Rng rng(5);
  for (int i = 0; i < 50; i++) {
    std::string s;
    for (int j = 0; j < 6; j++) s += static_cast<char>('a' + rng.Uniform(6));
    values.push_back(s);
  }
  SinglePassKMeans tight(5, 0.0, 7), loose(5, 2.0, 7);
  const auto centers = tight.SampleCenters(values);
  EXPECT_LE(tight.Assign(values, centers).size(), loose.Assign(values, centers).size());
}

TEST(BuildGroupsTest, ExactKeyGroupsEqualValues) {
  auto groups = BuildGroups({"x", "y", "x"}, {.algo = FilteringAlgo::kExactKey});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups["x"].size(), 2u);
  EXPECT_EQ(groups["y"].size(), 1u);
}

// Property sweep: across q values, token filtering never separates two
// strings that share a q-gram prefix of their common part.
class TokenFilterParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TokenFilterParamTest, SimilarPairsShareGroup) {
  const size_t q = GetParam();
  // Pairs at one substitution apart, length >= 2q so a clean window exists.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"jonathan", "jonathon"},
      {"margaret", "margaret"},
      {"stephens", "stephans"},
  };
  for (const auto& [a, b] : pairs) {
    auto groups = BuildGroups({a, b}, {.algo = FilteringAlgo::kTokenFiltering, .q = q});
    bool share = false;
    for (const auto& [key, members] : groups) {
      if (members.size() == 2) share = true;
    }
    EXPECT_TRUE(share) << a << " vs " << b << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(QSweep, TokenFilterParamTest, ::testing::Values(2, 3, 4));

TEST(ZipfTest, RankOneIsMostFrequent) {
  ZipfGenerator zipf(100, 1.0, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; i++) counts[zipf.Next()]++;
  int max_count = 0;
  uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 1u);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
  Rng r(5);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace cleanm
