// Tests for the nested relational algebra: operator semantics (reference
// evaluator), comprehension→algebra translation equivalence, and the
// rewriter rules including the Figure-1 Nest coalescing.
#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "algebra/algebra_eval.h"
#include "algebra/rewriter.h"
#include "algebra/translate.h"
#include "monoid/eval.h"
#include "monoid/normalize.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::DatasetToRecords;
using testsupport::MakeCustomers;
using testsupport::MakePublications;

TEST(AlgebraEvalTest, ScanSelectReduce) {
  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  auto plan = ReduceOp(
      SelectOp(Scan("customer", "c"),
               Binary(BinaryOp::kEq, FieldAccess(Var("c"), "nationkey"), ConstInt(1))),
      "bag", FieldAccess(Var("c"), "name"));
  auto result = EvalPlan(plan, catalog).ValueOrDie();
  ASSERT_EQ(result.AsList().size(), 2u);
}

TEST(AlgebraEvalTest, CountAndSumReduce) {
  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  auto count = EvalPlan(ReduceOp(Scan("customer", "c"), "count", Var("c")), catalog)
                   .ValueOrDie();
  EXPECT_EQ(count.AsInt(), 4);
  auto sum = EvalPlan(ReduceOp(Scan("customer", "c"), "sum",
                               FieldAccess(Var("c"), "nationkey")),
                      catalog)
                 .ValueOrDie();
  EXPECT_EQ(sum.AsInt(), 7);
}

TEST(AlgebraEvalTest, EquiJoinMatchesNestedLoopJoin) {
  auto customers = MakeCustomers();
  Dataset nations(Schema{{"nationkey", ValueType::kInt}, {"nation", ValueType::kString}});
  nations.Append({Value(int64_t{1}), Value("CH")});
  nations.Append({Value(int64_t{2}), Value("DE")});
  Catalog catalog{{{"customer", &customers}, {"nation", &nations}}};

  auto lk = FieldAccess(Var("c"), "nationkey");
  auto rk = FieldAccess(Var("n"), "nationkey");
  auto equi = ReduceOp(
      EquiJoinOp(Scan("customer", "c"), Scan("nation", "n"), lk, rk), "count", Var("c"));
  auto theta = ReduceOp(
      JoinOp(Scan("customer", "c"), Scan("nation", "n"), Binary(BinaryOp::kEq, lk, rk)),
      "count", Var("c"));
  EXPECT_EQ(EvalPlan(equi, catalog).ValueOrDie().AsInt(), 3);
  EXPECT_EQ(EvalPlan(theta, catalog).ValueOrDie().AsInt(), 3);
}

TEST(AlgebraEvalTest, OuterJoinPadsUnmatchedLeft) {
  auto customers = MakeCustomers();
  Dataset nations(Schema{{"nationkey", ValueType::kInt}});
  nations.Append({Value(int64_t{1})});
  Catalog catalog{{{"customer", &customers}, {"nation", &nations}}};
  auto plan = OuterJoinOp(Scan("customer", "c"), Scan("nation", "n"),
                          FieldAccess(Var("c"), "nationkey"),
                          FieldAccess(Var("n"), "nationkey"));
  auto tuples = EvalPlanTuples(plan, catalog).ValueOrDie();
  ASSERT_EQ(tuples.size(), 4u);
  int nulls = 0;
  for (const auto& t : tuples) {
    if (t.GetField("n").ValueOrDie().is_null()) nulls++;
  }
  EXPECT_EQ(nulls, 2);  // carol (nation 2) and alicia (nation 3)
}

TEST(AlgebraEvalTest, UnnestExplodesLists) {
  auto pubs = MakePublications();
  Catalog catalog{{{"pubs", &pubs}}};
  auto inner = ReduceOp(
      UnnestOp(Scan("pubs", "p"), FieldAccess(Var("p"), "authors"), "a"),
      "bag", Var("a"));
  EXPECT_EQ(EvalPlan(inner, catalog).ValueOrDie().AsList().size(), 3u);
  // Outer unnest keeps the empty publication with a null author.
  auto outer = ReduceOp(
      UnnestOp(Scan("pubs", "p"), FieldAccess(Var("p"), "authors"), "a", /*outer=*/true),
      "count", Var("p"));
  EXPECT_EQ(EvalPlan(outer, catalog).ValueOrDie().AsInt(), 4);
}

TEST(AlgebraEvalTest, NestGroupsByExactKeyWithHaving) {
  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  // FD check shape: group by address, count members, keep groups > 1.
  GroupSpec group;
  group.algo = FilteringAlgo::kExactKey;
  group.term = FieldAccess(Var("c"), "address");
  auto plan = NestOp(
      Scan("customer", "c"), group,
      {{"cnt", "count", Var("c")}, {"names", "bag", FieldAccess(Var("c"), "name")}},
      Binary(BinaryOp::kGt, Var("cnt"), ConstInt(1)));
  auto tuples = EvalPlanTuples(plan, catalog).ValueOrDie();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].GetField("key").ValueOrDie().AsString(), "rue de lausanne 1");
  EXPECT_EQ(tuples[0].GetField("cnt").ValueOrDie().AsInt(), 3);
  EXPECT_EQ(tuples[0].GetField("names").ValueOrDie().AsList().size(), 3u);
}

TEST(AlgebraEvalTest, NestWithTokenFilteringAssignsMultipleGroups) {
  Dataset words(Schema{{"w", ValueType::kString}});
  words.Append({Value("abc")});
  words.Append({Value("bcd")});
  Catalog catalog{{{"words", &words}}};
  GroupSpec group;
  group.algo = FilteringAlgo::kTokenFiltering;
  group.term = FieldAccess(Var("x"), "w");
  group.q = 2;
  auto plan = NestOp(Scan("words", "x"), group, {{"members", "bag", FieldAccess(Var("x"), "w")}});
  auto tuples = EvalPlanTuples(plan, catalog).ValueOrDie();
  // Tokens: ab, bc (shared), cd → 3 groups; "bc" has both members.
  ASSERT_EQ(tuples.size(), 3u);
  bool found_shared = false;
  for (const auto& t : tuples) {
    if (t.GetField("key").ValueOrDie().AsString() == "bc") {
      EXPECT_EQ(t.GetField("members").ValueOrDie().AsList().size(), 2u);
      found_shared = true;
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(AlgebraEvalTest, KMeansNestRequiresCenters) {
  Dataset words(Schema{{"w", ValueType::kString}});
  words.Append({Value("abc")});
  Catalog catalog{{{"words", &words}}};
  GroupSpec group;
  group.algo = FilteringAlgo::kKMeans;
  group.term = FieldAccess(Var("x"), "w");
  auto plan = NestOp(Scan("words", "x"), group, {{"members", "bag", Var("x")}});
  EXPECT_FALSE(EvalPlanTuples(plan, catalog).ok());
  plan->group.centers = {"abc", "xyz"};
  EXPECT_TRUE(EvalPlanTuples(plan, catalog).ok());
}

// ---- Translation ----

TEST(TranslateTest, SelectJoinReduceAgreesWithInterpreter) {
  auto customers = MakeCustomers();
  Dataset nations(Schema{{"nationkey", ValueType::kInt}, {"nation", ValueType::kString}});
  nations.Append({Value(int64_t{1}), Value("CH")});
  nations.Append({Value(int64_t{2}), Value("DE")});
  Catalog catalog{{{"customer", &customers}, {"nation", &nations}}};

  // bag{ {name, nation} | c <- customer, n <- nation,
  //                       c.nationkey = n.nationkey, c.nationkey < 2 }
  auto comp = Comprehension(
      "bag",
      Record({"name", "nation"},
             {FieldAccess(Var("c"), "name"), FieldAccess(Var("n"), "nation")}),
      {Generator("c", Var("customer")), Generator("n", Var("nation")),
       Predicate(Binary(BinaryOp::kEq, FieldAccess(Var("c"), "nationkey"),
                        FieldAccess(Var("n"), "nationkey"))),
       Predicate(Binary(BinaryOp::kLt, FieldAccess(Var("c"), "nationkey"), ConstInt(2)))});

  // Interpreter result: bind table contents as env collections.
  Env env{{"customer", DatasetToRecords(customers)},
          {"nation", DatasetToRecords(nations)}};
  auto expected = EvalExpr(comp, env).ValueOrDie();

  auto plan = TranslateComprehension(Normalize(comp)).ValueOrDie();
  auto actual = EvalPlan(plan, catalog).ValueOrDie();
  ASSERT_EQ(actual.AsList().size(), expected.AsList().size());

  // Rewriting must not change the result, and must detect the equi-join.
  RewriteStats stats;
  auto rewritten = RewritePlan(plan, &stats);
  EXPECT_GE(stats.equi_joins_detected, 1);
  auto after = EvalPlan(rewritten, catalog).ValueOrDie();
  EXPECT_EQ(after.AsList().size(), expected.AsList().size());

  // Translating the *unnormalized* comprehension leaves both predicates
  // above the join; the rewriter must push the one-sided filter (A2) and
  // still find the equi-join key (A3).
  auto raw_plan = TranslateComprehension(comp).ValueOrDie();
  RewriteStats raw_stats;
  auto raw_rewritten = RewritePlan(raw_plan, &raw_stats);
  EXPECT_GE(raw_stats.selects_pushed, 1);
  EXPECT_GE(raw_stats.equi_joins_detected, 1);
  auto raw_after = EvalPlan(raw_rewritten, catalog).ValueOrDie();
  EXPECT_EQ(raw_after.AsList().size(), expected.AsList().size());
}

TEST(TranslateTest, UnnestFromPathGenerator) {
  auto pubs = MakePublications();
  Catalog catalog{{{"pubs", &pubs}}};
  // count{ a | p <- pubs, a <- p.authors }
  auto comp = Comprehension(
      "count", Var("a"),
      {Generator("p", Var("pubs")), Generator("a", FieldAccess(Var("p"), "authors"))});
  auto plan = TranslateComprehension(comp).ValueOrDie();
  EXPECT_EQ(EvalPlan(plan, catalog).ValueOrDie().AsInt(), 3);
}

TEST(TranslateTest, RejectsUnsupportedShapes) {
  EXPECT_FALSE(TranslateComprehension(ConstInt(1)).ok());
  // Leftover binding.
  auto with_binding = Comprehension(
      "sum", Var("y"), {Generator("x", Var("t")), Binding("y", Var("x"))});
  EXPECT_FALSE(TranslateComprehension(with_binding).ok());
  // No generators.
  auto no_gen = Comprehension("sum", ConstInt(1), {});
  EXPECT_FALSE(TranslateComprehension(no_gen).ok());
}

// ---- Rewriter ----

TEST(RewriterTest, FusesStackedSelects) {
  auto plan = SelectOp(SelectOp(Scan("t", "x"), ConstBool(true)), ConstBool(true));
  RewriteStats stats;
  auto rewritten = RewritePlan(plan, &stats);
  EXPECT_EQ(stats.selects_fused, 1);
  EXPECT_EQ(rewritten->kind, AlgKind::kSelect);
  EXPECT_EQ(rewritten->input->kind, AlgKind::kScan);
}

TEST(RewriterTest, CoalescesNestsOverSameInputAndKey) {
  // The Figure-1 BC case: FD check and dedup both group customer by address.
  GroupSpec by_address;
  by_address.algo = FilteringAlgo::kExactKey;
  by_address.term = FieldAccess(Var("c"), "address");

  auto fd_plan = NestOp(
      Scan("customer", "c"), by_address,
      {{"prefixes", "set", Call("prefix", {FieldAccess(Var("c"), "phone")})}},
      Binary(BinaryOp::kGt, Call("count", {Var("prefixes")}), ConstInt(1)));
  auto dedup_plan = NestOp(
      Scan("customer", "c"), by_address, {{"partition", "bag", Var("c")}},
      Binary(BinaryOp::kGt, Call("count", {Var("partition")}), ConstInt(1)));

  RewriteStats stats;
  auto coalesced = CoalesceNests({fd_plan, dedup_plan}, &stats);
  EXPECT_EQ(stats.nests_coalesced, 1);
  EXPECT_EQ(coalesced.groups_merged, 1);
  ASSERT_EQ(coalesced.roots.size(), 2u);

  // Both roots are Selects over the *same* shared Nest node.
  ASSERT_EQ(coalesced.roots[0]->kind, AlgKind::kSelect);
  ASSERT_EQ(coalesced.roots[1]->kind, AlgKind::kSelect);
  EXPECT_EQ(coalesced.roots[0]->input.get(), coalesced.roots[1]->input.get());
  const auto& merged = coalesced.roots[0]->input;
  ASSERT_EQ(merged->kind, AlgKind::kNest);
  EXPECT_EQ(merged->aggs.size(), 2u);
  EXPECT_EQ(merged->having, nullptr);

  // Semantics: each root yields the same groups as its original plan.
  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  for (size_t i = 0; i < 2; i++) {
    const AlgOpPtr original = i == 0 ? fd_plan : dedup_plan;
    auto before = EvalPlanTuples(original, catalog).ValueOrDie();
    auto after = EvalPlanTuples(coalesced.roots[i], catalog).ValueOrDie();
    EXPECT_EQ(before.size(), after.size()) << "plan " << i;
  }
}

TEST(RewriterTest, CoalesceRenamesCollidingAggregations) {
  GroupSpec by_address;
  by_address.algo = FilteringAlgo::kExactKey;
  by_address.term = FieldAccess(Var("c"), "address");
  // Same agg name "vals", different definitions → must rename, not merge.
  auto p1 = NestOp(Scan("customer", "c"), by_address,
                   {{"vals", "set", FieldAccess(Var("c"), "phone")}},
                   Binary(BinaryOp::kGt, Call("count", {Var("vals")}), ConstInt(1)));
  auto p2 = NestOp(Scan("customer", "c"), by_address,
                   {{"vals", "set", FieldAccess(Var("c"), "nationkey")}},
                   Binary(BinaryOp::kGt, Call("count", {Var("vals")}), ConstInt(1)));
  auto coalesced = CoalesceNests({p1, p2});
  EXPECT_EQ(coalesced.groups_merged, 1);
  const auto& merged = coalesced.roots[0]->input;
  ASSERT_EQ(merged->aggs.size(), 2u);
  EXPECT_NE(merged->aggs[0].name, merged->aggs[1].name);

  auto customers = MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};
  // p1: addresses with >1 distinct phone (rue de lausanne: 3 phones) → 1.
  // p2: addresses with >1 distinct nationkey (rue de lausanne: 1,1,3) → 1.
  EXPECT_EQ(EvalPlanTuples(coalesced.roots[0], catalog).ValueOrDie().size(), 1u);
  EXPECT_EQ(EvalPlanTuples(coalesced.roots[1], catalog).ValueOrDie().size(), 1u);
}

TEST(RewriterTest, DoesNotCoalesceDifferentKeys) {
  GroupSpec by_address, by_name;
  by_address.algo = FilteringAlgo::kExactKey;
  by_address.term = FieldAccess(Var("c"), "address");
  by_name.algo = FilteringAlgo::kExactKey;
  by_name.term = FieldAccess(Var("c"), "name");
  auto p1 = NestOp(Scan("customer", "c"), by_address, {{"a", "count", Var("c")}});
  auto p2 = NestOp(Scan("customer", "c"), by_name, {{"b", "count", Var("c")}});
  auto coalesced = CoalesceNests({p1, p2});
  EXPECT_EQ(coalesced.groups_merged, 0);
}

TEST(RewriterTest, SharedScanDetection) {
  auto p1 = SelectOp(Scan("customer", "c"), ConstBool(true));
  auto p2 = ReduceOp(Scan("customer", "c"), "count", Var("c"));
  auto p3 = Scan("orders", "o");
  auto shared = SharedScanTables({p1, p2, p3});
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], "customer");
}

TEST(AlgebraTest, ToStringRendersPlanTree) {
  auto plan = ReduceOp(SelectOp(Scan("t", "x"), ConstBool(true)), "count", Var("x"));
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Reduce"), std::string::npos);
  EXPECT_NE(s.find("Select"), std::string::npos);
  EXPECT_NE(s.find("Scan(t as x)"), std::string::npos);
}

TEST(AlgebraTest, CloneAndEquals) {
  GroupSpec g;
  g.algo = FilteringAlgo::kExactKey;
  g.term = FieldAccess(Var("c"), "address");
  auto plan = NestOp(Scan("customer", "c"), g, {{"n", "count", Var("c")}});
  auto clone = AlgClone(plan);
  EXPECT_TRUE(AlgEquals(plan, clone));
  clone->aggs[0].monoid = "sum";
  EXPECT_FALSE(AlgEquals(plan, clone));
}

}  // namespace
}  // namespace cleanm
