// Span-recorder correctness under concurrency (the tsan preset runs this):
// per-thread buffers, scope install/restore, recorder isolation across
// concurrent drivers sharing one worker pool, and the profiling-off
// guarantee of literally zero recorded spans.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cleaning/prepared_query.h"
#include "cleaning/query_profile.h"
#include "common/trace.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

TEST(TraceTest, RecorderMergesPerThreadBuffersAfterJoin) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  TraceRecorder rec;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&rec] {
      TraceRecorderScope install(&rec);
      for (int i = 0; i < kSpansPerThread; i++) {
        TraceScope outer("cluster", "task", nullptr, 0);
        TraceScope inner("io", "page_miss");
        inner.SetRowsIn(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<TraceSpan> spans = rec.Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread * 2));

  // Unique ids, start-ordered, and every inner span parents on an outer
  // span of the same thread.
  std::set<uint64_t> ids;
  std::set<uint64_t> threads_seen;
  for (size_t i = 0; i < spans.size(); i++) {
    EXPECT_TRUE(ids.insert(spans[i].id).second) << "duplicate span id";
    threads_seen.insert(spans[i].thread);
    if (i > 0) EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
  EXPECT_EQ(threads_seen.size(), static_cast<size_t>(kThreads));
  std::map<uint64_t, const TraceSpan*> by_id;
  for (const auto& s : spans) by_id[s.id] = &s;
  for (const auto& s : spans) {
    if (std::string(s.name) != "page_miss") continue;
    ASSERT_NE(s.parent, 0u);
    const TraceSpan* parent = by_id.at(s.parent);
    EXPECT_EQ(std::string(parent->name), "task");
    EXPECT_EQ(parent->thread, s.thread);
  }

  // A second drain returns nothing (buffers were consumed).
  EXPECT_TRUE(rec.Drain().empty());
}

TEST(TraceTest, ScopeRestoresPreviousRecorderAndParent) {
  TraceRecorder outer_rec;
  TraceRecorder inner_rec;
  EXPECT_EQ(TraceRecorderScope::Current(), nullptr);
  {
    TraceRecorderScope outer(&outer_rec, 7);
    EXPECT_EQ(TraceRecorderScope::Current(), &outer_rec);
    EXPECT_EQ(TraceRecorderScope::CurrentParent(), 7u);
    {
      TraceRecorderScope inner(&inner_rec, 42);
      EXPECT_EQ(TraceRecorderScope::Current(), &inner_rec);
      EXPECT_EQ(TraceRecorderScope::CurrentParent(), 42u);
    }
    EXPECT_EQ(TraceRecorderScope::Current(), &outer_rec);
    EXPECT_EQ(TraceRecorderScope::CurrentParent(), 7u);
  }
  EXPECT_EQ(TraceRecorderScope::Current(), nullptr);
}

TEST(TraceTest, InactiveScopeRecordsNothing) {
  ASSERT_EQ(TraceRecorderScope::Current(), nullptr);
  const uint64_t before = TraceRecorder::TotalSpansRecorded();
  {
    TraceScope span("operator", "execute");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    span.SetRows(1, 2);
    span.SetNodeRows({3, 4});
  }
  EXPECT_EQ(TraceRecorder::TotalSpansRecorded(), before);
}

// Concurrent drivers sharing one CleanDB (and its worker pool), each
// profiling its own execution: every driver's spans must land in its own
// recorder only. tsan checks the buffer handoff; the assertions check the
// isolation.
TEST(TraceTest, ConcurrentProfiledDriversStayIsolated) {
  CleanDB db(testsupport::FastCleanDBOptions(4));
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  constexpr int kDrivers = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (int d = 0; d < kDrivers; d++) {
    drivers.emplace_back([&] {
      for (int r = 0; r < kRounds; r++) {
        ExecOptions opts;
        opts.profile = true;
        auto result = pq.Execute(opts);
        if (!result.ok() || result.value().profile == nullptr ||
            result.value().profile->spans().empty()) {
          failures.fetch_add(1);
          continue;
        }
        // Spans drain start-ordered and id-unique within this execution.
        const auto& spans = result.value().profile->spans();
        std::set<uint64_t> ids;
        for (const auto& s : spans) {
          if (!ids.insert(s.id).second) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cleanm
