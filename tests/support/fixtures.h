// Shared test support: canonical datasets, fast cluster/db options, plan
// shapes, random-data generators, and QueryMetrics assertion helpers.
//
// Every suite builds on these instead of re-declaring its own copies, so a
// schema change propagates to all tests from one place.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "cleaning/cleandb.h"
#include "common/metrics.h"
#include "common/random.h"
#include "engine/cluster.h"
#include "storage/dataset.h"

namespace cleanm::testsupport {

// ---- Fast execution options (pure-compute: no simulated network cost) ----

CleanDBOptions FastCleanDBOptions(size_t nodes = 4);
engine::ClusterOptions FastClusterOptions(size_t nodes = 4);

// ---- Canonical datasets ----

/// Four customers: three share "rue de lausanne 1" (one with a deviating
/// phone prefix and one with a deviating nationkey), one lives alone.
/// Schema: name, address, phone, nationkey.
Dataset MakeCustomers();

/// Three publications with 2 / 1 / 0 authors (nested list column).
/// Schema: title, authors.
Dataset MakePublications();

/// Flat dataset exercising the CSV/JSON escapers: commas, quotes, a null.
/// Schema: id, name, score.
Dataset MakeFlatDataset();

/// Random flat dataset (int/double/string columns, ~10% nulls, strings over
/// an alphabet that stresses every format escaper). Deterministic in *rng.
Dataset RandomFlatDataset(Rng* rng, size_t rows);

/// Rows {0}, {1}, ..., {n-1} as single-int rows for engine-level tests.
std::vector<Row> IntRows(int n);

// ---- Plan shapes ----

/// The FD-shaped Nest plan used throughout the cleaning layer: group
/// customer by address, aggregate distinct phone prefixes + the partition,
/// keep groups with > 1 prefix.
AlgOpPtr CustomerFdPlan();

/// Binds a dataset's rows as a list of record Values — the environment
/// representation the monoid interpreter consumes.
Value DatasetToRecords(const Dataset& dataset);

// ---- Comparisons / assertions ----

/// Exact cell-by-cell equality (types strict, nulls equal).
bool DatasetsEqual(const Dataset& a, const Dataset& b);

/// Point-in-time copy of the engine counters, for stability assertions
/// across runs. Now just the library's own snapshot type (the old
/// hand-copied struct duplicated it field by field).
using MetricsSnapshot = ::cleanm::MetricsCounters;
MetricsSnapshot Snapshot(const QueryMetrics& metrics);

/// Passes when the snapshot recorded nonzero shuffle traffic (rows + bytes).
::testing::AssertionResult ShuffledNonzero(const MetricsSnapshot& m);

/// Passes when two snapshots agree on every counter; the failure message
/// prints both. Use to assert a pipeline's traffic is run-to-run stable.
::testing::AssertionResult SnapshotsEqual(const MetricsSnapshot& a,
                                          const MetricsSnapshot& b);

// ---- Filesystem fixture ----

/// Test fixture owning a per-suite temp directory, removed on teardown.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override;
  void TearDown() override;
  std::string Path(const std::string& name) const;
  std::filesystem::path dir_;
};

}  // namespace cleanm::testsupport
