#include "support/fixtures.h"

#include <sstream>

#include "algebra/algebra_eval.h"
#include "monoid/expr.h"

namespace cleanm::testsupport {

CleanDBOptions FastCleanDBOptions(size_t nodes) {
  CleanDBOptions opts;
  opts.num_nodes = nodes;
  opts.shuffle_ns_per_byte = 0;
  return opts;
}

engine::ClusterOptions FastClusterOptions(size_t nodes) {
  engine::ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.shuffle_ns_per_byte = 0;
  return opts;
}

Dataset MakeCustomers() {
  Dataset d(Schema{{"name", ValueType::kString},
                   {"address", ValueType::kString},
                   {"phone", ValueType::kString},
                   {"nationkey", ValueType::kInt}});
  d.Append({Value("alice"), Value("rue de lausanne 1"), Value("021-555-0001"), Value(int64_t{1})});
  d.Append({Value("bob"), Value("rue de lausanne 1"), Value("022-555-0002"), Value(int64_t{1})});
  d.Append({Value("carol"), Value("bahnhofstrasse 3"), Value("044-555-0003"), Value(int64_t{2})});
  d.Append({Value("alicia"), Value("rue de lausanne 1"), Value("021-555-0004"), Value(int64_t{3})});
  return d;
}

Dataset MakePublications() {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("ann"), Value("bob")})});
  d.Append({Value("p2"), Value(ValueList{Value("ann")})});
  d.Append({Value("p3"), Value(ValueList{})});
  return d;
}

Dataset MakeFlatDataset() {
  Dataset d(Schema{{"id", ValueType::kInt},
                   {"name", ValueType::kString},
                   {"score", ValueType::kDouble}});
  d.Append({Value(int64_t{1}), Value("alice"), Value(0.5)});
  d.Append({Value(int64_t{2}), Value("bob,jr"), Value(1.25)});
  d.Append({Value(int64_t{3}), Value("carol \"cc\""), Value(-3.0)});
  d.Append({Value(int64_t{4}), Value::Null(), Value(0.0)});
  return d;
}

Dataset RandomFlatDataset(Rng* rng, size_t rows) {
  Dataset d(Schema{{"i", ValueType::kInt},
                   {"f", ValueType::kDouble},
                   {"s", ValueType::kString}});
  for (size_t r = 0; r < rows; r++) {
    Row row;
    row.push_back(rng->Chance(0.1) ? Value::Null()
                                   : Value(rng->UniformRange(-1000, 1000)));
    row.push_back(rng->Chance(0.1)
                      ? Value::Null()
                      : Value(static_cast<double>(rng->UniformRange(-500, 500)) / 8.0));
    if (rng->Chance(0.1)) {
      row.push_back(Value::Null());
    } else {
      std::string s;
      const size_t len = rng->Uniform(12);
      for (size_t c = 0; c < len; c++) {
        // Include the characters that stress the format escapers.
        const char* alphabet = "abc,\"\n\t\\{}<>&";
        s += alphabet[rng->Uniform(13)];
      }
      row.push_back(Value(std::move(s)));
    }
    d.Append(std::move(row));
  }
  return d;
}

std::vector<Row> IntRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; i++) rows.push_back({Value(int64_t{i})});
  return rows;
}

AlgOpPtr CustomerFdPlan() {
  GroupSpec group;
  group.algo = FilteringAlgo::kExactKey;
  group.term = FieldAccess(Var("c"), "address");
  return NestOp(Scan("customer", "c"), group,
                {{"vals", "set", Call("prefix", {FieldAccess(Var("c"), "phone")})},
                 {"partition", "bag", Var("c")}},
                Binary(BinaryOp::kGt, Call("count", {Var("vals")}), ConstInt(1)));
}

Value DatasetToRecords(const Dataset& dataset) {
  ValueList list;
  for (const auto& row : dataset.rows()) {
    list.push_back(RowToRecord(dataset.schema(), row));
  }
  return Value(std::move(list));
}

bool DatasetsEqual(const Dataset& a, const Dataset& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_fields() != b.schema().num_fields()) return false;
  for (size_t r = 0; r < a.num_rows(); r++) {
    for (size_t c = 0; c < a.schema().num_fields(); c++) {
      if (!a.row(r)[c].Equals(b.row(r)[c])) return false;
    }
  }
  return true;
}

MetricsSnapshot Snapshot(const QueryMetrics& metrics) { return metrics.Snapshot(); }

::testing::AssertionResult ShuffledNonzero(const MetricsSnapshot& m) {
  if (m.rows_shuffled > 0 && m.bytes_shuffled > 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "expected nonzero shuffle traffic, got {" << m.ToString() << "}";
}

::testing::AssertionResult SnapshotsEqual(const MetricsSnapshot& a,
                                          const MetricsSnapshot& b) {
  if (a == b) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "metrics differ: {" << a.ToString()
                                       << "} vs {" << b.ToString() << "}";
}

void TempDirTest::SetUp() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  // Parameterized suites are named "Prefix/Suite": flatten to one level so
  // TearDown's remove_all leaves no orphan parent directory.
  std::string name = info ? info->test_suite_name() : "test";
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  dir_ = std::filesystem::temp_directory_path() / ("cleanm_" + name);
  std::filesystem::create_directories(dir_);
}

void TempDirTest::TearDown() { std::filesystem::remove_all(dir_); }

std::string TempDirTest::Path(const std::string& name) const {
  return (dir_ / name).string();
}

}  // namespace cleanm::testsupport
