// Tests for the multi-pass clustering extensions (paper Section 4.3:
// iterative/multi-pass partitional algorithms and hierarchical clustering
// as chained monoid comprehensions).
#include <gtest/gtest.h>

#include <set>

#include "cluster/iterative.h"
#include "text/similarity.h"

namespace cleanm {
namespace {

std::vector<std::string> TwoFamilies() {
  // Two tight edit-distance families.
  return {"smith", "smyth", "smithe", "sm1th",
          "johnson", "jonson", "johnsen", "johnsonn"};
}

TEST(IterativeKMeansTest, SeparatesTwoFamilies) {
  const auto values = TwoFamilies();
  auto result = IterativeKMeans(values, 2, 10, 7);
  ASSERT_EQ(result.assignment.size(), values.size());
  ASSERT_EQ(result.centers.size(), 2u);
  // All smiths in one cluster, all johnsons in the other.
  const size_t smith_cluster = result.assignment[0];
  for (int i = 0; i < 4; i++) EXPECT_EQ(result.assignment[i], smith_cluster) << i;
  const size_t johnson_cluster = result.assignment[4];
  EXPECT_NE(johnson_cluster, smith_cluster);
  for (int i = 4; i < 8; i++) EXPECT_EQ(result.assignment[i], johnson_cluster) << i;
}

TEST(IterativeKMeansTest, ConvergesAndCentersAreMedoids) {
  const auto values = TwoFamilies();
  auto result = IterativeKMeans(values, 2, 50, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50u);
  // Each center is an actual member of the input (medoid property).
  const std::set<std::string> universe(values.begin(), values.end());
  for (const auto& c : result.centers) EXPECT_TRUE(universe.count(c)) << c;
}

TEST(IterativeKMeansTest, EdgeCases) {
  EXPECT_TRUE(IterativeKMeans({}, 3, 5, 1).centers.empty());
  // k larger than input: clamped, everything still assigned.
  auto r = IterativeKMeans({"a", "b"}, 10, 5, 1);
  EXPECT_EQ(r.centers.size(), 2u);
  EXPECT_EQ(r.assignment.size(), 2u);
  // k = 1: one cluster holds everything.
  auto one = IterativeKMeans(TwoFamilies(), 1, 5, 1);
  for (size_t a : one.assignment) EXPECT_EQ(a, 0u);
}

TEST(IterativeKMeansTest, DeterministicGivenSeed) {
  const auto values = TwoFamilies();
  auto a = IterativeKMeans(values, 2, 10, 9);
  auto b = IterativeKMeans(values, 2, 10, 9);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centers, b.centers);
}

TEST(HierarchicalTest, SingleLinkageSeparatesFamilies) {
  const auto values = TwoFamilies();
  auto clusters = HierarchicalAgglomerative(values, 2);
  ASSERT_EQ(clusters.size(), values.size());
  for (int i = 1; i < 4; i++) EXPECT_EQ(clusters[i], clusters[0]) << i;
  for (int i = 5; i < 8; i++) EXPECT_EQ(clusters[i], clusters[4]) << i;
  EXPECT_NE(clusters[0], clusters[4]);
}

TEST(HierarchicalTest, KOneMergesEverythingAndIdsAreDense) {
  const auto values = TwoFamilies();
  auto one = HierarchicalAgglomerative(values, 1);
  for (size_t c : one) EXPECT_EQ(c, 0u);
  auto three = HierarchicalAgglomerative(values, 3);
  std::set<size_t> ids(three.begin(), three.end());
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(ids.count(0));
  EXPECT_TRUE(ids.count(2));
}

TEST(HierarchicalTest, EmptyAndSingleton) {
  EXPECT_TRUE(HierarchicalAgglomerative({}, 2).empty());
  auto single = HierarchicalAgglomerative({"x"}, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 0u);
}

// Property: every iterative k-means cluster is internally tighter than the
// dataset diameter (clusters group similar strings).
TEST(IterativeKMeansTest, IntraClusterDistancesBelowDiameter) {
  const auto values = TwoFamilies();
  auto result = IterativeKMeans(values, 2, 10, 11);
  size_t diameter = 0;
  for (const auto& a : values) {
    for (const auto& b : values) diameter = std::max(diameter, LevenshteinDistance(a, b));
  }
  for (size_t i = 0; i < values.size(); i++) {
    for (size_t j = 0; j < values.size(); j++) {
      if (result.assignment[i] != result.assignment[j]) continue;
      EXPECT_LT(LevenshteinDistance(values[i], values[j]), diameter);
    }
  }
}

}  // namespace
}  // namespace cleanm
