// Tests for the prepare-once / execute-many API: PreparedQuery lifecycle,
// ExecOptions per-call overrides, the session PartitionCache (generation
// invalidation, byte-budget LRU), streaming ViolationSinks, and the
// specific error codes surfaced by Prepare/Execute.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "algebra/algebra_eval.h"
#include "cleaning/prepared_query.h"
#include "datagen/generators.h"
#include "repair/repair_sink.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

CleanDBOptions FastOptions() { return testsupport::FastCleanDBOptions(4); }

Dataset DirtyCustomers() {
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.duplicate_fraction = 0.08;
  copts.max_duplicates = 4;
  copts.fd_violation_fraction = 0.05;
  return datagen::MakeCustomer(copts);
}

/// Bit-identical comparison of two results: same operations in the same
/// order, every violation Value equal pairwise, and equal dirty-entity
/// sets (compared order-insensitively — the entity join hashes).
void ExpectResultsBitIdentical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); i++) {
    EXPECT_EQ(a.ops[i].op_name, b.ops[i].op_name);
    ASSERT_EQ(a.ops[i].violations.size(), b.ops[i].violations.size())
        << "operation " << a.ops[i].op_name;
    for (size_t v = 0; v < a.ops[i].violations.size(); v++) {
      EXPECT_TRUE(a.ops[i].violations[v].Equals(b.ops[i].violations[v]))
          << a.ops[i].op_name << " violation " << v;
    }
  }
  auto entity_set = [](const QueryResult& r) {
    std::vector<std::string> out;
    for (const auto& [entity, ops] : r.dirty_entities) {
      std::string s = entity.ToString() + " <-";
      for (const auto& op : ops) s += " " + op;
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(entity_set(a), entity_set(b));
}

/// Renders a Value with struct fields sorted by name and list elements
/// sorted lexicographically, so results compare equal regardless of the
/// merge-tree order that built an aggregated collection.
std::string CanonicalString(const Value& v) {
  if (v.type() == ValueType::kStruct) {
    std::vector<std::pair<std::string, std::string>> fields;
    for (const auto& [name, field] : v.AsStruct()) {
      fields.emplace_back(name, CanonicalString(field));
    }
    std::sort(fields.begin(), fields.end());
    std::string out = "{";
    for (const auto& [name, repr] : fields) out += name + ":" + repr + ",";
    return out + "}";
  }
  if (v.type() == ValueType::kList) {
    std::vector<std::string> elems;
    for (const auto& e : v.AsList()) elems.push_back(CanonicalString(e));
    std::sort(elems.begin(), elems.end());
    std::string out = "[";
    for (const auto& e : elems) out += e + ",";
    return out + "]";
  }
  return v.ToString();
}

/// Order-insensitive equality of the violation/dirty-entity *sets* — for
/// comparisons across different partition widths, where output order (and
/// the internal order of aggregated collections) may legitimately differ.
void ExpectSameViolationSets(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.ops.size(), b.ops.size());
  auto sorted = [](const ValueList& vs) {
    std::vector<std::string> out;
    for (const auto& v : vs) out.push_back(CanonicalString(v));
    std::sort(out.begin(), out.end());
    return out;
  };
  for (size_t i = 0; i < a.ops.size(); i++) {
    EXPECT_EQ(sorted(a.ops[i].violations), sorted(b.ops[i].violations))
        << "operation " << a.ops[i].op_name;
  }
  EXPECT_EQ(a.dirty_entities.size(), b.dirty_entities.size());
}

// ---- Acceptance: prepared re-execution ≡ cold execution, zero
// re-partitioning on cache hits ----

TEST(PreparedQueryTest, ReExecutionBitIdenticalToColdExecuteAcrossScenarios) {
  // FD + dedup + term validation in one query (the motivating example
  // shape), all through the prepared path.
  const char* query = R"(
    SELECT * FROM customer c, dictionary d
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, LD, 0.8, c.address)
    CLUSTER BY(token filtering, LD, 0.8, c.name)
  )";
  Dataset customers = DirtyCustomers();
  Dataset dictionary(Schema{{"name", ValueType::kString}});
  {
    std::vector<std::string> names;
    const size_t name_idx = customers.schema().IndexOf("name").ValueOrDie();
    for (const auto& row : customers.rows()) names.push_back(row[name_idx].AsString());
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    for (const auto& n : names) dictionary.Append({Value(n)});
  }

  CleanDB db(FastOptions());
  db.RegisterTable("customer", customers);
  db.RegisterTable("dictionary", dictionary);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  ASSERT_EQ(pq.num_operations(), 4u);
  EXPECT_TRUE(pq.status().ok());

  auto first = pq.Execute().ValueOrDie();
  auto second = pq.Execute().ValueOrDie();
  ExpectResultsBitIdentical(first, second);
  ASSERT_GT(first.ops[0].violations.size(), 0u);  // datagen injected FD dirt
  ASSERT_GT(first.ops[2].violations.size(), 0u);  // and duplicates

  // Cold path: a fresh session executing the same text one-shot.
  CleanDB cold(FastOptions());
  cold.RegisterTable("customer", customers);
  cold.RegisterTable("dictionary", dictionary);
  auto cold_result = cold.Execute(query).ValueOrDie();
  ExpectResultsBitIdentical(first, cold_result);

  // Within the first execution, the clauses already share scans (the
  // Figure-1 DAG): the customer table is parallelized once and every later
  // scan of it is a cache hit.
  EXPECT_GT(first.cache.scan_misses, 0u);
  EXPECT_GT(first.cache.scan_hits, 0u);
  // The re-execution does zero re-partitioning: every Nest output comes
  // straight from the session cache (which short-circuits the scans
  // beneath them — no scan is even requested), and no rows are scanned.
  EXPECT_EQ(second.cache.scan_misses, 0u);
  EXPECT_EQ(second.cache.nest_misses, 0u);
  EXPECT_GT(second.cache.nest_hits, 0u);
  EXPECT_EQ(second.metrics.rows_scanned, 0u);
}

TEST(PreparedQueryTest, PreparedDenialConstraintMatchesProgrammaticCheck) {
  datagen::LineitemOptions lopts;
  lopts.rows = 200;
  lopts.noise_fraction = 0.1;
  auto lineitem = datagen::MakeLineitem(lopts);

  auto pred = ParseCleanMExpr("t1.price < t2.price AND t1.discount > t2.discount");
  auto prefilter = ParseCleanMExpr("t1.price < 905");

  CleanDB db(FastOptions());
  db.RegisterTable("lineitem", lineitem);
  auto reference = db.CheckDenialConstraint("lineitem", CloneExpr(pred.ValueOrDie()),
                                            CloneExpr(prefilter.ValueOrDie()))
                       .ValueOrDie();

  auto prepared = db.PrepareDenialConstraint(
      "lineitem", CloneExpr(pred.ValueOrDie()), CloneExpr(prefilter.ValueOrDie()));
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto first = prepared.value().Execute().ValueOrDie();
  auto second = prepared.value().Execute().ValueOrDie();

  ASSERT_EQ(first.ops.size(), 1u);
  EXPECT_EQ(first.ops[0].op_name, "DC");
  ASSERT_EQ(first.ops[0].violations.size(), reference.violations.size());
  ExpectResultsBitIdentical(first, second);
  EXPECT_EQ(second.cache.scan_misses, 0u);
  EXPECT_GT(second.cache.scan_hits, 0u);
}

// ---- ExecOptions: per-call overrides of session knobs ----

TEST(PreparedQueryTest, UnifyOverridePerCallMatchesSessionLevelAblation) {
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";
  CleanDB db(FastOptions());
  db.RegisterTable("customer", DirtyCustomers());
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  EXPECT_EQ(pq.nests_coalesced(), 2);

  ExecOptions unified;
  unified.unify_operations = true;
  ExecOptions separate;
  separate.unify_operations = false;
  auto uni = pq.Execute(unified).ValueOrDie();
  auto sep = pq.Execute(separate).ValueOrDie();

  EXPECT_EQ(uni.nests_coalesced, 2);
  EXPECT_EQ(sep.nests_coalesced, 0);
  // The ablation changes the plan shape, never the violations.
  ASSERT_EQ(uni.ops.size(), sep.ops.size());
  for (size_t i = 0; i < uni.ops.size(); i++) {
    EXPECT_EQ(uni.ops[i].violations.size(), sep.ops[i].violations.size());
  }
}

TEST(PreparedQueryTest, NodeCapAndShuffleOverridesPreserveResultsAndRestore) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", DirtyCustomers());
  auto prepared = db.Prepare(
      "SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto baseline = pq.Execute().ValueOrDie();

  ExecOptions capped;
  capped.max_nodes = 2;
  capped.shuffle_batch_rows = 1;
  capped.shuffle_ns_per_byte = 0.0;
  auto capped_result = pq.Execute(capped).ValueOrDie();
  ExpectSameViolationSets(baseline, capped_result);
  // A capped execution re-partitions at the narrower width (widths are
  // cache keys, not interchangeable) ...
  EXPECT_GT(capped_result.cache.scan_misses, 0u);
  // ... and the session configuration is restored afterwards.
  EXPECT_EQ(db.cluster().num_nodes(), 4u);
  EXPECT_EQ(db.cluster().options().shuffle_batch_rows, db.options().shuffle_batch_rows);

  // Re-executing at the default width hits the original cached layout.
  auto again = pq.Execute().ValueOrDie();
  ExpectResultsBitIdentical(baseline, again);
  EXPECT_EQ(again.cache.scan_misses, 0u);
}

TEST(PreparedQueryTest, ClusterConfigRestoredEvenWhenExecutionFails) {
  CleanDB db(FastOptions());
  auto prepared = db.Prepare("SELECT * FROM ghost g FD(g.a, g.b)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ExecOptions capped;
  capped.max_nodes = 1;
  auto result = prepared.value().Execute(capped);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(db.cluster().num_nodes(), 4u);
}

// ---- Satellite: RegisterTable bumps the generation; no stale serving ----

TEST(PreparedQueryTest, ReRegisteredTableIsNeverServedFromStaleCache) {
  const char* query = "SELECT * FROM customer c FD(c.address, c.nationkey)";
  datagen::CustomerOptions copts;
  copts.base_rows = 200;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  Dataset v1 = datagen::MakeCustomer(copts);

  CleanDB db(FastOptions());
  db.RegisterTable("customer", v1);
  EXPECT_EQ(db.TableGeneration("customer"), 1u);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto before = pq.Execute().ValueOrDie();

  // Replace the table between two executions of the same PreparedQuery:
  // a brand-new FD violation group must surface.
  Dataset v2 = v1;
  Row extra1 = v1.row(0);
  Row extra2 = v1.row(0);
  const size_t addr = v1.schema().IndexOf("address").ValueOrDie();
  const size_t nation = v1.schema().IndexOf("nationkey").ValueOrDie();
  extra1[addr] = Value(std::string("1 freshly injected lane"));
  extra2[addr] = Value(std::string("1 freshly injected lane"));
  extra1[nation] = Value(int64_t{7});
  extra2[nation] = Value(int64_t{8});
  v2.Append(extra1);
  v2.Append(extra2);
  db.RegisterTable("customer", v2);
  EXPECT_EQ(db.TableGeneration("customer"), 2u);

  auto after = pq.Execute().ValueOrDie();
  EXPECT_EQ(after.ops[0].violations.size(), before.ops[0].violations.size() + 1);
  EXPECT_GT(after.cache.scan_misses, 0u);  // really re-partitioned

  // And it matches a cold execution over the new data bit for bit.
  CleanDB cold(FastOptions());
  cold.RegisterTable("customer", v2);
  ExpectResultsBitIdentical(after, cold.Execute(query).ValueOrDie());
}

// ---- Acceptance: the byte budget under a multi-table session workload ----

TEST(PreparedQueryTest, PartitionCacheRespectsByteBudgetAcrossTables) {
  const std::vector<std::string> tables = {"t1", "t2", "t3", "t4"};
  datagen::CustomerOptions copts;
  copts.base_rows = 150;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;

  // Size one table's cache footprint (scan + wrap + nest) with an
  // unbounded session, then budget the real session to roughly two.
  uint64_t per_table_bytes = 0;
  {
    CleanDBOptions unbounded = FastOptions();
    unbounded.partition_cache_bytes = 0;
    CleanDB probe(unbounded);
    probe.RegisterTable("t1", datagen::MakeCustomer(copts));
    ASSERT_TRUE(probe.Execute("SELECT * FROM t1 c FD(c.address, c.nationkey)").ok());
    per_table_bytes = probe.partition_cache().stats().resident_bytes;
    ASSERT_GT(per_table_bytes, 0u);
  }

  CleanDBOptions budgeted = FastOptions();
  budgeted.partition_cache_bytes = per_table_bytes * 2;
  CleanDB db(budgeted);
  for (const auto& t : tables) db.RegisterTable(t, datagen::MakeCustomer(copts));

  // Working set (4 tables) > budget (~2 tables): the cache must stay under
  // its budget at every step, evicting LRU entries as tables rotate, while
  // an immediate re-execution (entries still resident) is served from it.
  for (int round = 0; round < 2; round++) {
    for (const auto& t : tables) {
      const std::string query = "SELECT * FROM " + t + " c FD(c.address, c.nationkey)";
      auto cold = db.Execute(query);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      // One-shot Execute re-prepares (fresh Nest nodes → no nest reuse),
      // but the table scans are keyed by name+generation and must hit.
      auto warm = db.Execute(query);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      EXPECT_GT(warm.value().cache.scan_hits, 0u) << t;
      EXPECT_LE(db.partition_cache().stats().resident_bytes,
                budgeted.partition_cache_bytes)
          << db.partition_cache().stats().ToString();
    }
  }
  const auto& stats = db.partition_cache().stats();
  EXPECT_GT(stats.evictions, 0u) << stats.ToString();
}

TEST(PreparedQueryTest, TransientExecutionsDoNotPolluteTheNestCache) {
  // One-shot Execute and the programmatic ops build throwaway plans; their
  // Nest outputs are identity-keyed and could never be hit again, so they
  // must not accumulate in (and LRU-thrash) the session cache.
  CleanDB db(FastOptions());
  db.RegisterTable("customer", DirtyCustomers());
  const char* query = "SELECT * FROM customer c FD(c.address, c.nationkey)";

  ASSERT_TRUE(db.Execute(query).ok());
  const uint64_t entries_after_first = db.partition_cache().stats().resident_entries;
  ASSERT_TRUE(db.Execute(query).ok());
  FdClause fd;
  fd.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("c.nationkey").ValueOrDie()};
  ASSERT_TRUE(db.CheckFd("customer", "c", fd).ok());
  // Only the (table, generation)-keyed scan/wrap entries persist — no
  // per-call nest growth.
  EXPECT_EQ(db.partition_cache().stats().resident_entries, entries_after_first);

  // A held PreparedQuery's nests DO persist (that is the point of it).
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared.value().Execute().ok());
  EXPECT_GT(db.partition_cache().stats().resident_entries, entries_after_first);
  auto again = prepared.value().Execute().ValueOrDie();
  EXPECT_GT(again.cache.nest_hits, 0u);
}

TEST(PartitionCacheTest, LruEvictionPrefersLeastRecentlyUsed) {
  engine::Partitioned one_row{{Row{Value(int64_t{1})}}};
  const uint64_t entry_bytes = RowByteSize(one_row[0][0]);
  PartitionCache cache(entry_bytes * 2);
  cache.PutScan("a", 1, 4, one_row);
  cache.PutScan("b", 1, 4, one_row);
  EXPECT_NE(cache.FindScan("a", 1, 4), nullptr);  // touch a → b becomes LRU
  cache.PutScan("c", 1, 4, one_row);
  EXPECT_NE(cache.FindScan("a", 1, 4), nullptr);
  EXPECT_EQ(cache.FindScan("b", 1, 4), nullptr);
  EXPECT_NE(cache.FindScan("c", 1, 4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().resident_bytes, entry_bytes * 2);
}

TEST(PartitionCacheTest, GenerationAndInvalidationKeepStaleEntriesUnreachable) {
  engine::Partitioned data{{Row{Value(int64_t{1})}}};
  PartitionCache cache;
  cache.PutScan("t", 1, 4, data);
  cache.PutWrap("t", "c", 1, 4, data);
  // A different generation or width never matches.
  EXPECT_EQ(cache.FindScan("t", 2, 4), nullptr);
  EXPECT_EQ(cache.FindScan("t", 1, 2), nullptr);
  EXPECT_NE(cache.FindScan("t", 1, 4), nullptr);
  // Invalidation drops every entry derived from the table.
  cache.InvalidateTable("t");
  EXPECT_EQ(cache.FindScan("t", 1, 4), nullptr);
  EXPECT_EQ(cache.FindWrap("t", "c", 1, 4), nullptr);
  EXPECT_EQ(cache.stats().resident_entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(PartitionCacheTest, ConcurrentReadersSurviveInvalidationAndEviction) {
  // Readers pin entries while writers re-register tables (generation bumps
  // + InvalidateTable) and a tiny byte budget forces constant LRU eviction.
  // The pin contract under test: a hit returned by Find* stays readable for
  // as long as the reader holds it, and its content always matches the
  // (table, generation) it was keyed by — never a stale or aliased
  // partitioning. Run under the tsan preset this doubles as a race check on
  // the cache's internal mutex.
  engine::Partitioned probe{{Row{Value(int64_t{0})}}};
  const uint64_t entry_bytes = RowByteSize(probe[0][0]);
  PartitionCache cache(entry_bytes * 3);  // room for ~3 entries → churn

  constexpr int kTables = 4;
  constexpr int kWriterRounds = 1500;
  constexpr int kReaderRounds = 3000;
  auto value_for = [](int table, uint64_t generation) {
    return Value(static_cast<int64_t>(table) * 1000000 +
                 static_cast<int64_t>(generation));
  };
  auto table_name = [](int table) { return "t" + std::to_string(table); };

  // Latest generation registered per table (readers probe at or below it).
  std::array<std::atomic<uint64_t>, kTables> latest{};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};
  std::atomic<int> content_mismatches{0};

  std::thread writer([&] {
    for (int round = 0; round < kWriterRounds; round++) {
      const int t = round % kTables;
      const uint64_t generation = latest[t].load() + 1;
      engine::Partitioned data{{Row{value_for(t, generation)}}};
      // Same order as CleanDB::RegisterTable: publish the new generation,
      // then drop entries of older ones.
      auto pin = cache.PutScan(table_name(t), generation, 4, std::move(data));
      ASSERT_NE(pin, nullptr);
      latest[t].store(generation);
      if (round % 3 == 0) cache.InvalidateTable(table_name(t));
    }
    stop = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&, r] {
      uint32_t rng = 0x9E3779B9u * static_cast<uint32_t>(r + 1);
      for (int i = 0; i < kReaderRounds && !stop; i++) {
        rng = rng * 1664525u + 1013904223u;
        const int t = static_cast<int>(rng >> 16) % kTables;
        const uint64_t generation = latest[t].load();
        if (generation == 0) continue;
        PartitionPin pin = cache.FindScan(table_name(t), generation, 4);
        if (!pin) continue;
        hits++;
        // The pinned data must match its key even if the entry was evicted
        // or invalidated between Find and this read.
        if (!(*pin)[0][0][0].Equals(value_for(t, generation))) {
          content_mismatches++;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(content_mismatches.load(), 0);
  // The budget held despite the churn, and the churn actually happened.
  EXPECT_LE(cache.stats().resident_bytes, entry_bytes * 3);
  EXPECT_GT(cache.stats().evictions + cache.stats().invalidations, 0u);
  // Sanity: a fresh Put is still served afterwards.
  const int t0 = 0;
  const uint64_t g = latest[t0].load() + 1;
  cache.PutScan(table_name(t0), g, 4, {{Row{value_for(t0, g)}}});
  EXPECT_NE(cache.FindScan(table_name(t0), g, 4), nullptr);
}

// ---- Satellite: specific error codes ----

TEST(PreparedQueryTest, PrepareOnMalformedCleanMIsPositionedParseError) {
  CleanDB db(FastOptions());
  auto r1 = db.Prepare("SELECT * FROM t c\n  FD(c.a)");  // FD missing RHS
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);
  EXPECT_NE(r1.status().message().find("line 2"), std::string::npos)
      << r1.status().ToString();

  auto r2 = db.Prepare("not a query");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kParseError);
  EXPECT_NE(r2.status().message().find("line 1, column 1"), std::string::npos)
      << r2.status().ToString();
}

TEST(PreparedQueryTest, ExecuteAgainstUnregisteredTableIsKeyError) {
  CleanDB db(FastOptions());
  // Binding is lazy: preparing against a not-yet-registered table succeeds…
  auto prepared = db.Prepare("SELECT * FROM nowhere n FD(n.a, n.b)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // …and executing it reports the missing table as kKeyError.
  auto result = prepared.value().Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kKeyError);

  // Registering the table afterwards makes the same PreparedQuery runnable.
  Dataset t(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  t.Append({Value(int64_t{1}), Value(int64_t{2})});
  db.RegisterTable("nowhere", t);
  EXPECT_TRUE(prepared.value().Execute().ok());
}

TEST(PreparedQueryTest, UnknownColumnAndTypeMismatchSurfaceSpecificCodes) {
  CleanDB db(FastOptions());
  Dataset t(Schema{{"name", ValueType::kString}, {"num", ValueType::kInt}});
  t.Append({Value(std::string("x")), Value(int64_t{1})});
  db.RegisterTable("t", t);
  Dataset dict(Schema{{"name", ValueType::kString}});
  dict.Append({Value(std::string("x"))});
  db.RegisterTable("dict", dict);

  // Unknown column in a cleaning clause of a registered table: kKeyError
  // at Prepare time.
  auto unknown = db.Prepare("SELECT * FROM t c FD(c.nope, c.name)");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kKeyError);

  // Grouping monoids need string terms: kTypeError at Prepare time.
  auto bad_dedup = db.Prepare("SELECT * FROM t c DEDUP(token filtering, LD, 0.8, c.num)");
  ASSERT_FALSE(bad_dedup.ok());
  EXPECT_EQ(bad_dedup.status().code(), StatusCode::kTypeError);

  auto bad_cluster =
      db.Prepare("SELECT * FROM t c, dict d CLUSTER BY(tf, LD, 0.8, c.num)");
  ASSERT_FALSE(bad_cluster.ok());
  EXPECT_EQ(bad_cluster.status().code(), StatusCode::kTypeError);

  // Exact-key dedup has no string requirement.
  EXPECT_TRUE(db.Prepare("SELECT * FROM t c DEDUP(exact, c.num)").ok());
}

// ---- Tentpole: table mutations, minor generations, incremental
// re-validation (the generation-semantics matrix) ----

/// Appends two rows that form one brand-new FD(address, nationkey)
/// violation group to `table`.
void AppendFreshFdViolation(CleanDB& db, const std::string& table,
                            const Dataset& shape) {
  const size_t addr = shape.schema().IndexOf("address").ValueOrDie();
  const size_t nation = shape.schema().IndexOf("nationkey").ValueOrDie();
  Row extra1 = shape.row(0);
  Row extra2 = shape.row(0);
  extra1[addr] = Value(std::string("1 freshly injected lane"));
  extra2[addr] = Value(std::string("1 freshly injected lane"));
  extra1[nation] = Value(int64_t{7});
  extra2[nation] = Value(int64_t{8});
  auto r = db.AppendRows(table, {extra1, extra2});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(MutationApiTest, MutationsBumpMinorGenerationsAndRegisterResets) {
  CleanDB db(FastOptions());
  Dataset t(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  t.Append({Value(int64_t{1}), Value(int64_t{10})});
  t.Append({Value(int64_t{2}), Value(int64_t{20})});
  db.RegisterTable("t", t);
  EXPECT_EQ(db.TableGeneration("t"), 1u);
  EXPECT_EQ(db.TableMajor("t"), 1u);
  EXPECT_EQ(db.TableMinor("t"), 0u);

  auto append = db.AppendRows("t", {{Value(int64_t{3}), Value(int64_t{30})}});
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  EXPECT_EQ(append.value().generation, 2u);
  EXPECT_EQ(append.value().major, 1u);
  EXPECT_EQ(append.value().minor, 1u);
  EXPECT_EQ(append.value().rows_affected, 1u);

  auto update = db.UpdateRows(
      "t",
      [](const Schema&, const Row& r) { return r[0].Equals(Value(int64_t{1})); },
      ValueStruct{{"b", Value(int64_t{11})}});
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update.value().minor, 2u);
  EXPECT_EQ(update.value().rows_affected, 1u);

  // Mutations that change nothing publish nothing and bump nothing: a
  // matcher with no matches, and an update setting the already-current
  // value.
  auto no_match =
      db.DeleteRows("t", [](const Schema&, const Row&) { return false; });
  ASSERT_TRUE(no_match.ok());
  EXPECT_EQ(no_match.value().rows_affected, 0u);
  auto same_value = db.UpdateRows(
      "t",
      [](const Schema&, const Row& r) { return r[0].Equals(Value(int64_t{1})); },
      ValueStruct{{"b", Value(int64_t{11})}});
  ASSERT_TRUE(same_value.ok());
  EXPECT_EQ(same_value.value().rows_affected, 0u);
  EXPECT_EQ(db.TableGeneration("t"), 3u);
  EXPECT_EQ(db.TableMinor("t"), 2u);

  auto removed = db.DeleteRows(
      "t", [](const Schema&, const Row& r) { return r[0].Equals(Value(int64_t{2})); });
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value().minor, 3u);
  EXPECT_EQ(removed.value().rows_affected, 1u);

  // The effective table reflects all three mutations.
  auto now = db.GetTableShared("t").ValueOrDie();
  ASSERT_EQ(now->num_rows(), 2u);
  EXPECT_TRUE(now->row(0)[1].Equals(Value(int64_t{11})));
  EXPECT_TRUE(now->row(1)[0].Equals(Value(int64_t{3})));

  // Re-registering closes the epoch: major bumps, minor resets.
  db.RegisterTable("t", t);
  EXPECT_EQ(db.TableGeneration("t"), 5u);
  EXPECT_EQ(db.TableMajor("t"), 2u);
  EXPECT_EQ(db.TableMinor("t"), 0u);
  // Unknown tables and width mismatches are rejected.
  EXPECT_EQ(db.AppendRows("ghost", {{Value(int64_t{1})}}).status().code(),
            StatusCode::kKeyError);
  EXPECT_FALSE(db.AppendRows("t", {{Value(int64_t{1})}}).ok());
}

TEST(PreparedQueryTest, MinorBumpIsServedIncrementallyWithZeroRepartitions) {
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";
  datagen::CustomerOptions copts;
  copts.base_rows = 200;
  copts.duplicate_fraction = 0.05;
  copts.fd_violation_fraction = 0.05;
  Dataset v1 = datagen::MakeCustomer(copts);

  CleanDB db(FastOptions());
  db.RegisterTable("customer", v1);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto before = pq.Execute().ValueOrDie();
  EXPECT_EQ(before.metrics.incremental_executions, 0u);

  AppendFreshFdViolation(db, "customer", v1);
  EXPECT_EQ(db.TableMinor("customer"), 1u);

  auto after = pq.Execute().ValueOrDie();
  // Served by the incremental delta path: no engine work, no cache
  // traffic, zero full re-partitions.
  EXPECT_EQ(after.metrics.incremental_executions, 1u);
  EXPECT_GT(after.metrics.delta_rows_processed, 0u);
  EXPECT_GT(after.metrics.groups_remerged, 0u);
  EXPECT_EQ(after.cache.scan_misses, 0u);
  EXPECT_EQ(after.cache.nest_misses, 0u);
  EXPECT_EQ(after.metrics.rows_scanned, 0u);
  EXPECT_EQ(after.ops[0].violations.size(), before.ops[0].violations.size() + 1);
  EXPECT_EQ(after.ops[1].violations.size(), before.ops[1].violations.size() + 1);

  // The merged set equals a cold execution over the mutated table
  // (canonically normalized: aggregated collections are order-sensitive to
  // the fold tree that built them).
  CleanDB cold(FastOptions());
  cold.RegisterTable("customer", *db.GetTableShared("customer").ValueOrDie());
  auto cold_result = cold.Execute(query).ValueOrDie();
  ExpectSameViolationSets(after, cold_result);

  // A second mutation round advances the same cached state.
  auto del = db.DeleteRows("customer", [&](const Schema& s, const Row& r) {
    const size_t addr = s.IndexOf("address").ValueOrDie();
    return r[addr].Equals(Value(std::string("1 freshly injected lane")));
  });
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().rows_affected, 2u);
  auto third = pq.Execute().ValueOrDie();
  EXPECT_EQ(third.metrics.incremental_executions, 1u);
  EXPECT_EQ(third.ops[0].violations.size(), before.ops[0].violations.size());
  EXPECT_EQ(third.ops[1].violations.size(), before.ops[1].violations.size());
}

TEST(PreparedQueryTest, MinorThenMajorBumpForcesColdExecution) {
  const char* query = "SELECT * FROM customer c FD(c.address, c.nationkey)";
  datagen::CustomerOptions copts;
  copts.base_rows = 150;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  Dataset v1 = datagen::MakeCustomer(copts);

  CleanDB db(FastOptions());
  db.RegisterTable("customer", v1);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto before = pq.Execute().ValueOrDie();

  AppendFreshFdViolation(db, "customer", v1);
  auto incremental = pq.Execute().ValueOrDie();
  EXPECT_EQ(incremental.metrics.incremental_executions, 1u);

  // (minor, then major): re-registration closes the epoch — the next
  // execution is cold (real re-partitioning, no delta serving), exactly as
  // if the mutations never happened.
  db.RegisterTable("customer", v1);
  EXPECT_EQ(db.TableMinor("customer"), 0u);
  auto after_major = pq.Execute().ValueOrDie();
  EXPECT_EQ(after_major.metrics.incremental_executions, 0u);
  EXPECT_GT(after_major.cache.scan_misses, 0u);
  EXPECT_GT(after_major.metrics.rows_scanned, 0u);
  ExpectSameViolationSets(before, after_major);

  // A plain re-execution after the cold one keeps the warm-cache contract.
  auto warm = pq.Execute().ValueOrDie();
  EXPECT_EQ(warm.cache.scan_misses, 0u);
  EXPECT_EQ(warm.metrics.rows_scanned, 0u);
}

TEST(PreparedQueryTest, PinnedPartitioningsSurviveMinorBumps) {
  const char* query = "SELECT * FROM customer c FD(c.address, c.nationkey)";
  datagen::CustomerOptions copts;
  copts.base_rows = 120;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  Dataset v1 = datagen::MakeCustomer(copts);

  CleanDB db(FastOptions());
  db.RegisterTable("customer", v1);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  ASSERT_TRUE(pq.Execute().ok());

  // A concurrent reader's pin on the generation-1 scan.
  PartitionPin pin = db.partition_cache().FindScan("customer", 1, 4);
  ASSERT_NE(pin, nullptr);
  size_t pinned_rows = 0;
  for (const auto& part : *pin) pinned_rows += part.size();
  EXPECT_EQ(pinned_rows, v1.num_rows());

  AppendFreshFdViolation(db, "customer", v1);

  // Mutations never invalidate: the old-generation entry is still cached
  // (unreachable by new snapshots, reclaimed by the LRU eventually), and
  // the held pin still reads the pre-mutation partitioning.
  EXPECT_NE(db.partition_cache().FindScan("customer", 1, 4), nullptr);
  size_t still_pinned = 0;
  for (const auto& part : *pin) still_pinned += part.size();
  EXPECT_EQ(still_pinned, v1.num_rows());

  // And executions during/after the reader's pin proceed normally.
  auto after = pq.Execute().ValueOrDie();
  EXPECT_EQ(after.metrics.incremental_executions, 1u);
}

TEST(PreparedQueryTest, RetractionsAndNewTagsReconcileWithColdExecution) {
  /// Records the retraction-tagged stream (canonically normalized).
  class DeltaRecordingSink : public ViolationSink {
   public:
    Status OnViolation(const std::string& op, const Value& v) override {
      current.push_back(op + "|" + CanonicalString(v));
      return Status::OK();
    }
    Status OnViolationRetracted(const std::string& op, const Value& v) override {
      retracted.push_back(op + "|" + CanonicalString(v));
      return Status::OK();
    }
    Status OnViolationNew(const std::string& op, const Value& v) override {
      fresh.push_back(op + "|" + CanonicalString(v));
      return OnViolation(op, v);
    }
    Status OnDirtyEntity(const Value&, const std::vector<std::string>&) override {
      dirty++;
      return Status::OK();
    }
    std::vector<std::string> current, retracted, fresh;
    size_t dirty = 0;
  };

  // A hand-built table where every group is known: address "A" violates the
  // FD, "A" and "B" are exact-duplicate groups.
  Dataset t(Schema{{"name", ValueType::kString},
                   {"address", ValueType::kString},
                   {"nationkey", ValueType::kInt}});
  t.Append({Value("a1"), Value("A"), Value(int64_t{1})});
  t.Append({Value("a2"), Value("A"), Value(int64_t{2})});
  t.Append({Value("b1"), Value("B"), Value(int64_t{3})});
  t.Append({Value("b2"), Value("B"), Value(int64_t{3})});
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";

  CleanDB db(FastOptions());
  db.RegisterTable("customer", t);
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  DeltaRecordingSink cold_sink;
  ASSERT_TRUE(pq.ExecuteInto(cold_sink).ok());
  EXPECT_TRUE(cold_sink.retracted.empty());
  EXPECT_TRUE(cold_sink.fresh.empty());
  ASSERT_FALSE(cold_sink.current.empty());

  // Fix the FD violation on "A" (a2's nationkey joins the majority) and
  // inject a brand-new violating group "C".
  ASSERT_TRUE(db.UpdateRows(
                    "customer",
                    [](const Schema&, const Row& r) {
                      return r[0].Equals(Value(std::string("a2")));
                    },
                    ValueStruct{{"nationkey", Value(int64_t{1})}})
                  .ok());
  ASSERT_TRUE(db.AppendRows("customer", {{Value("c1"), Value("C"), Value(int64_t{7})},
                                         {Value("c2"), Value("C"), Value(int64_t{8})}})
                  .ok());

  DeltaRecordingSink delta_sink;
  ASSERT_TRUE(pq.ExecuteInto(delta_sink).ok());
  EXPECT_FALSE(delta_sink.retracted.empty());
  EXPECT_FALSE(delta_sink.fresh.empty());

  // The incremental contract: previous − retracted + new == current, as
  // multisets (and `current` is the full post-mutation violation set).
  std::vector<std::string> merged = cold_sink.current;
  for (const auto& r : delta_sink.retracted) {
    auto it = std::find(merged.begin(), merged.end(), r);
    ASSERT_NE(it, merged.end()) << "retraction of a never-emitted violation: " << r;
    merged.erase(it);
  }
  merged.insert(merged.end(), delta_sink.fresh.begin(), delta_sink.fresh.end());
  std::sort(merged.begin(), merged.end());
  std::vector<std::string> current = delta_sink.current;
  std::sort(current.begin(), current.end());
  EXPECT_EQ(merged, current);

  // And `current` matches a cold execution over the mutated table.
  CleanDB cold(FastOptions());
  cold.RegisterTable("customer", *db.GetTableShared("customer").ValueOrDie());
  auto cold_prepared = cold.Prepare(query);
  ASSERT_TRUE(cold_prepared.ok());
  DeltaRecordingSink cold_after;
  ASSERT_TRUE(cold_prepared.value().ExecuteInto(cold_after).ok());
  std::vector<std::string> expected = cold_after.current;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(current, expected);
}

TEST(PreparedQueryTest, IncrementalKnobOffAndIneligiblePlansFallBackCorrectly) {
  datagen::CustomerOptions copts;
  copts.base_rows = 150;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  Dataset v1 = datagen::MakeCustomer(copts);

  CleanDB db(FastOptions());
  db.RegisterTable("customer", v1);
  auto prepared = db.Prepare("SELECT * FROM customer c FD(c.address, c.nationkey)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto before = pq.Execute().ValueOrDie();

  AppendFreshFdViolation(db, "customer", v1);

  // incremental=false forces the full engine path — and also disables the
  // planner's delta-extended scan rebuild, so the table re-partitions.
  ExecOptions full;
  full.incremental = false;
  auto cold = pq.Execute(full).ValueOrDie();
  EXPECT_EQ(cold.metrics.incremental_executions, 0u);
  EXPECT_GT(cold.metrics.rows_scanned, 0u);
  EXPECT_EQ(cold.ops[0].violations.size(), before.ops[0].violations.size() + 1);

  // A join-rooted plan (denial constraint) is structurally ineligible for
  // driver-side serving, but the delta-extended scan rebuild still spares
  // it a full re-partition after a further mutation.
  datagen::LineitemOptions lopts;
  lopts.rows = 120;
  lopts.noise_fraction = 0.1;
  db.RegisterTable("lineitem", datagen::MakeLineitem(lopts));
  auto pred = ParseCleanMExpr("t1.price < t2.price AND t1.discount > t2.discount");
  auto dc = db.PrepareDenialConstraint("lineitem", CloneExpr(pred.ValueOrDie()));
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  auto dc_before = dc.value().Execute().ValueOrDie();
  EXPECT_EQ(dc_before.metrics.incremental_executions, 0u);

  auto li = db.GetTableShared("lineitem").ValueOrDie();
  ASSERT_TRUE(db.AppendRows("lineitem", {li->row(0)}).ok());
  auto dc_after = dc.value().Execute().ValueOrDie();
  EXPECT_EQ(dc_after.metrics.incremental_executions, 0u);  // engine path
  EXPECT_GT(dc_after.metrics.delta_rows_processed, 0u);    // delta scan rebuild
  EXPECT_EQ(dc_after.metrics.rows_scanned, 0u);            // no re-partition

  // Cross-check against a cold session over the mutated lineitem.
  CleanDB cold_db(FastOptions());
  cold_db.RegisterTable("lineitem", *db.GetTableShared("lineitem").ValueOrDie());
  auto dc_cold = cold_db.PrepareDenialConstraint("lineitem", CloneExpr(pred.ValueOrDie()));
  ASSERT_TRUE(dc_cold.ok());
  auto dc_cold_result = dc_cold.value().Execute().ValueOrDie();
  EXPECT_EQ(dc_after.ops[0].violations.size(), dc_cold_result.ops[0].violations.size());
}

TEST(RepairSinkTest, CommitDeltaClosesTheFixpointIncrementally) {
  // MakeCustomers: "rue de lausanne 1" holds alice/bob (nationkey 1) and
  // alicia (nationkey 3) — one FD(address, nationkey) violation.
  Dataset t = testsupport::MakeCustomers();
  CleanDB db(FastOptions());
  db.RegisterTable("customer", t);
  auto prepared = db.Prepare("SELECT * FROM customer c FD(c.address, c.nationkey)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();
  auto before = pq.Execute().ValueOrDie();
  ASSERT_EQ(before.ops[0].violations.size(), 1u);

  // Repair: align alicia's nationkey with the majority — via the unscoped
  // sink form fed one action-shaped tuple by hand.
  RepairSink sink(&db, "customer");
  const Value alicia = RowToRecord(t.schema(), t.row(3));
  ASSERT_TRUE(sink.OnViolation(
                     "FD",
                     Value(ValueStruct{
                         {"fix", Value(ValueStruct{
                                     {"entity", alicia},
                                     {"set", Value(ValueStruct{
                                                 {"nationkey", Value(int64_t{1})}})}})}}))
                  .ok());
  auto summary = sink.CommitDelta();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows_changed, 1u);
  EXPECT_EQ(summary.value().cells_changed, 1u);
  EXPECT_EQ(summary.value().unmatched, 0u);

  // The repair landed as a *minor* generation: no invalidation, and the
  // re-validation is served incrementally with the violation retracted.
  EXPECT_EQ(db.TableMajor("customer"), 1u);
  EXPECT_EQ(db.TableMinor("customer"), 1u);
  auto after = pq.Execute().ValueOrDie();
  EXPECT_EQ(after.metrics.incremental_executions, 1u);
  EXPECT_EQ(after.cache.scan_misses, 0u);
  EXPECT_EQ(after.ops[0].violations.size(), 0u);

  // A committed no-op round (same action again) publishes nothing.
  RepairSink again(&db, "customer");
  const Value repaired_alicia =
      RowToRecord(t.schema(), db.GetTableShared("customer").ValueOrDie()->row(3));
  ASSERT_TRUE(again.OnViolation(
                     "FD",
                     Value(ValueStruct{
                         {"fix", Value(ValueStruct{
                                     {"entity", repaired_alicia},
                                     {"set", Value(ValueStruct{
                                                 {"nationkey", Value(int64_t{1})}})}})}}))
                  .ok());
  auto noop = again.CommitDelta();
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();
  EXPECT_EQ(noop.value().cells_changed, 0u);
  EXPECT_EQ(db.TableMinor("customer"), 1u);

  // CommitDelta cannot re-register under a new name.
  RepairSink renaming(&db, "customer", "customer_clean");
  EXPECT_EQ(renaming.CommitDelta().status().code(), StatusCode::kInvalidArgument);
}

// ---- Streaming sinks ----

/// Records the full event stream for comparison with the materialized path.
class RecordingSink : public ViolationSink {
 public:
  Status OnOpBegin(const std::string& op_name) override {
    events.push_back("begin " + op_name);
    return Status::OK();
  }
  Status OnViolation(const std::string& op_name, const Value& violation) override {
    events.push_back("violation " + op_name);
    violations.push_back(violation);
    return Status::OK();
  }
  Status OnOpEnd(const OpSummary& summary) override {
    events.push_back("end " + summary.op_name + " " +
                     std::to_string(summary.violations));
    return Status::OK();
  }
  Status OnDirtyEntity(const Value& entity, const std::vector<std::string>&) override {
    dirty.push_back(entity);
    return Status::OK();
  }

  std::vector<std::string> events;
  ValueList violations;
  ValueList dirty;
};

TEST(ViolationSinkTest, StreamedEventsMatchMaterializedResult) {
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    DEDUP(exact, c.address)
  )";
  CleanDB db(FastOptions());
  db.RegisterTable("customer", DirtyCustomers());
  auto prepared = db.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  RecordingSink sink;
  ASSERT_TRUE(prepared.value().ExecuteInto(sink).ok());
  auto materialized = prepared.value().Execute().ValueOrDie();

  // Same violations, in the same order, and per-op begin/end bracketing.
  size_t total = 0;
  for (const auto& op : materialized.ops) total += op.violations.size();
  ASSERT_EQ(sink.violations.size(), total);
  size_t k = 0;
  for (const auto& op : materialized.ops) {
    for (const auto& v : op.violations) {
      EXPECT_TRUE(v.Equals(sink.violations[k++]));
    }
  }
  EXPECT_EQ(sink.dirty.size(), materialized.dirty_entities.size());
  ASSERT_GE(sink.events.size(), 4u);
  EXPECT_EQ(sink.events.front(), "begin FD");
  EXPECT_EQ(sink.events.back(),
            "end DEDUP " + std::to_string(materialized.ops[1].violations.size()));
}

TEST(ViolationSinkTest, SinkErrorAbortsExecutionAndPropagates) {
  class AbortingSink : public ViolationSink {
   public:
    Status OnViolation(const std::string&, const Value&) override {
      seen++;
      if (seen >= 3) return Status::IOError("sink full after 3 violations");
      return Status::OK();
    }
    Status OnDirtyEntity(const Value&, const std::vector<std::string>&) override {
      ADD_FAILURE() << "aborted execution must not reach the entity join";
      return Status::OK();
    }
    int seen = 0;
  };

  CleanDB db(FastOptions());
  db.RegisterTable("customer", DirtyCustomers());
  auto prepared = db.Prepare("SELECT * FROM customer c DEDUP(exact, c.address)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  AbortingSink sink;
  auto status = prepared.value().ExecuteInto(sink);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(sink.seen, 3);
}

}  // namespace
}  // namespace cleanm
