// Property tests across module boundaries:
//  * random flat datasets survive CSV / JSON-lines / colpack round-trips
//  * random nested datasets survive JSON-lines / colpack round-trips
//  * the FD cleaning pipeline returns identical violations for every
//    (aggregation strategy × cluster size) combination — the paper's claim
//    that the monoid translation is *inherently* parallelizable: the answer
//    cannot depend on how the merge tree is shaped.
#include <gtest/gtest.h>

#include <filesystem>

#include "cleaning/cleandb.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "storage/colpack.h"
#include "storage/csv.h"
#include "storage/json.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::DatasetsEqual;
using testsupport::RandomFlatDataset;

class RoundTripPropertyTest : public testsupport::TempDirTest,
                              public ::testing::WithParamInterface<uint64_t> {};

TEST_P(RoundTripPropertyTest, FlatDatasetSurvivesAllFormats) {
  Rng rng(GetParam());
  const Dataset original = RandomFlatDataset(&rng, 40);

  const std::string colpack_path = (dir_ / "t.cpk").string();
  ASSERT_TRUE(WriteColpack(original, colpack_path).ok());
  auto colpack_back = ReadColpack(colpack_path).ValueOrDie();
  EXPECT_TRUE(DatasetsEqual(original, colpack_back)) << "colpack seed " << GetParam();

  const std::string json_path = (dir_ / "t.jsonl").string();
  ASSERT_TRUE(WriteJsonLines(original, json_path).ok());
  auto json_back = ReadJsonLines(json_path).ValueOrDie();
  // JSON-lines drops all-null trailing columns only if a key never occurs;
  // with 40 rows at 10% null rate every column occurs, so shapes match.
  EXPECT_TRUE(DatasetsEqual(original, json_back)) << "json seed " << GetParam();

  // CSV cannot distinguish an empty string from null and renders doubles in
  // decimal; compare loosely: same row count, numerics equal, strings equal
  // up to the null/"" ambiguity.
  const std::string csv_path = (dir_ / "t.csv").string();
  ASSERT_TRUE(WriteCsv(original, csv_path).ok());
  auto csv_back = ReadCsv(csv_path).ValueOrDie();
  ASSERT_EQ(csv_back.num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); r++) {
    const Value& vi = original.row(r)[0];
    const Value& ci = csv_back.row(r)[0];
    if (!vi.is_null()) {
      EXPECT_EQ(vi.AsInt(), ci.AsInt()) << "row " << r;
    }
    const Value& vs = original.row(r)[2];
    const Value& cs = csv_back.row(r)[2];
    if (!vs.is_null() && !vs.AsString().empty()) {
      EXPECT_EQ(vs.AsString(), cs.AsString()) << "row " << r;
    }
  }
}

TEST_P(RoundTripPropertyTest, NestedDatasetSurvivesJsonAndColpack) {
  Rng rng(GetParam());
  Dataset original(Schema{{"title", ValueType::kString}, {"tags", ValueType::kList}});
  for (int r = 0; r < 25; r++) {
    ValueList tags;
    const size_t n = rng.Uniform(4);
    for (size_t t = 0; t < n; t++) {
      tags.push_back(Value("tag" + std::to_string(rng.Uniform(10))));
    }
    original.Append({Value("t" + std::to_string(r)), Value(std::move(tags))});
  }
  const std::string colpack_path = (dir_ / "n.cpk").string();
  ASSERT_TRUE(WriteColpack(original, colpack_path).ok());
  EXPECT_TRUE(DatasetsEqual(original, ReadColpack(colpack_path).ValueOrDie()));

  const std::string json_path = (dir_ / "n.jsonl").string();
  ASSERT_TRUE(WriteJsonLines(original, json_path).ok());
  EXPECT_TRUE(DatasetsEqual(original, ReadJsonLines(json_path).ValueOrDie()));
}

TEST_P(RoundTripPropertyTest, EscaperHeavyStringsSurviveJsonAndColpack) {
  // Pure-string columns drawn from the escaper-stress alphabet, larger than
  // the flat property above so dictionary coding and the quote handling see
  // repeats. JSON and colpack round-trip exactly (CSV's null/"" ambiguity
  // is covered loosely by FlatDatasetSurvivesAllFormats).
  Rng rng(GetParam() * 7919);  // distinct fixed stream per seed
  Dataset original(Schema{{"a", ValueType::kString}, {"b", ValueType::kString}});
  const char* alphabet = "ab,\"\n\t\\{}<>&:[]";
  for (int r = 0; r < 120; r++) {
    Row row;
    for (int c = 0; c < 2; c++) {
      std::string s;
      const size_t len = rng.Uniform(16);
      for (size_t i = 0; i < len; i++) s += alphabet[rng.Uniform(15)];
      row.push_back(Value(std::move(s)));
    }
    original.Append(std::move(row));
  }
  const std::string json_path = (dir_ / "esc.jsonl").string();
  ASSERT_TRUE(WriteJsonLines(original, json_path).ok());
  EXPECT_TRUE(DatasetsEqual(original, ReadJsonLines(json_path).ValueOrDie()))
      << "json seed " << GetParam();
  const std::string cpk_path = (dir_ / "esc.cpk").string();
  ASSERT_TRUE(WriteColpack(original, cpk_path).ok());
  EXPECT_TRUE(DatasetsEqual(original, ReadColpack(cpk_path).ValueOrDie()))
      << "colpack seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

/// The distributed answer must be independent of strategy and node count.
struct ExecConfig {
  engine::AggregateStrategy strategy;
  size_t nodes;
};

class ParallelInvarianceTest : public ::testing::TestWithParam<ExecConfig> {};

TEST_P(ParallelInvarianceTest, FdViolationsIndependentOfExecutionShape) {
  datagen::CustomerOptions copts;
  copts.base_rows = 600;
  copts.fd_violation_fraction = 0.08;
  copts.duplicate_fraction = 0;
  auto customers = datagen::MakeCustomer(copts);

  FdClause fd;
  fd.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("prefix(c.phone)").ValueOrDie()};

  // Reference: single node, local combine.
  CleanDBOptions ref_opts;
  ref_opts.num_nodes = 1;
  ref_opts.shuffle_ns_per_byte = 0;
  CleanDB ref(ref_opts);
  ref.RegisterTable("customer", customers);
  const size_t expected = ref.CheckFd("customer", "c", fd).ValueOrDie().violations.size();
  ASSERT_GT(expected, 0u);

  CleanDBOptions opts;
  opts.num_nodes = GetParam().nodes;
  opts.shuffle_ns_per_byte = 0;
  opts.physical.aggregate_strategy = GetParam().strategy;
  CleanDB db(opts);
  db.RegisterTable("customer", customers);
  EXPECT_EQ(db.CheckFd("customer", "c", fd).ValueOrDie().violations.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesNodes, ParallelInvarianceTest,
    ::testing::Values(ExecConfig{engine::AggregateStrategy::kLocalCombine, 2},
                      ExecConfig{engine::AggregateStrategy::kLocalCombine, 7},
                      ExecConfig{engine::AggregateStrategy::kLocalCombine, 16},
                      ExecConfig{engine::AggregateStrategy::kSortShuffle, 2},
                      ExecConfig{engine::AggregateStrategy::kSortShuffle, 7},
                      ExecConfig{engine::AggregateStrategy::kSortShuffle, 16},
                      ExecConfig{engine::AggregateStrategy::kHashShuffle, 2},
                      ExecConfig{engine::AggregateStrategy::kHashShuffle, 7},
                      ExecConfig{engine::AggregateStrategy::kHashShuffle, 16}));

}  // namespace
}  // namespace cleanm
