// Tests for the virtual-cluster execution engine: partitioning, shuffles
// and their traffic accounting, the three aggregation strategies, and the
// equi-/theta-join algorithms.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/random.h"
#include "engine/aggregate.h"
#include "engine/cluster.h"
#include "engine/join.h"
#include "support/fixtures.h"

namespace cleanm::engine {
namespace {

using testsupport::IntRows;

ClusterOptions FastOptions(size_t nodes = 4) {
  return testsupport::FastClusterOptions(nodes);
}

TEST(ClusterTest, ParallelizeRoundRobinAndCollect) {
  Cluster cluster(FastOptions(4));
  auto data = cluster.Parallelize(IntRows(10));
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(Cluster::TotalRows(data), 10u);
  // Round-robin: node 0 gets 0,4,8; node 1 gets 1,5,9; ...
  EXPECT_EQ(data[0].size(), 3u);
  EXPECT_EQ(data[1].size(), 3u);
  EXPECT_EQ(data[2].size(), 2u);
  auto collected = cluster.Collect(data);
  std::multiset<int64_t> values;
  for (const auto& r : collected) values.insert(r[0].AsInt());
  EXPECT_EQ(values.size(), 10u);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), 9);
}

TEST(ClusterTest, MapFilterFlatMap) {
  Cluster cluster(FastOptions());
  auto data = cluster.Parallelize(IntRows(100));
  auto doubled = cluster.Map(data, [](const Row& r) {
    return Row{Value(r[0].AsInt() * 2)};
  });
  auto evens = cluster.Filter(doubled, [](const Row& r) {
    return r[0].AsInt() % 4 == 0;
  });
  EXPECT_EQ(Cluster::TotalRows(evens), 50u);
  auto dupes = cluster.FlatMap(evens, [](const Row& r, Partition* out) {
    out->push_back(r);
    out->push_back(r);
  });
  EXPECT_EQ(Cluster::TotalRows(dupes), 100u);
}

TEST(ClusterTest, ShuffleRoutesByFunctionAndMetersTraffic) {
  Cluster cluster(FastOptions(4));
  auto data = cluster.Parallelize(IntRows(40));
  auto routed = cluster.Shuffle(data, [](const Row& r) {
    return static_cast<uint64_t>(r[0].AsInt() % 2);
  });
  // All rows end on nodes 0 and 1.
  EXPECT_EQ(routed[0].size(), 20u);
  EXPECT_EQ(routed[1].size(), 20u);
  EXPECT_EQ(routed[2].size(), 0u);
  EXPECT_EQ(Cluster::TotalRows(routed), 40u);
  EXPECT_GT(cluster.metrics().rows_shuffled.load(), 0u);
  EXPECT_GT(cluster.metrics().bytes_shuffled.load(), 0u);
}

TEST(ClusterTest, ShuffleLocalRowsAreFree) {
  Cluster cluster(FastOptions(2));
  // Rows pre-placed so routing is the identity: no traffic.
  Partitioned data(2);
  data[0].push_back({Value(int64_t{0})});
  data[1].push_back({Value(int64_t{1})});
  auto routed = cluster.Shuffle(data, [](const Row& r) {
    return static_cast<uint64_t>(r[0].AsInt());
  });
  EXPECT_EQ(Cluster::TotalRows(routed), 2u);
  EXPECT_EQ(cluster.metrics().rows_shuffled.load(), 0u);
  EXPECT_EQ(cluster.metrics().bytes_shuffled.load(), 0u);
  // Node-local rows never form a network batch.
  EXPECT_EQ(cluster.metrics().shuffle_batches.load(), 0u);
}

// ---- Shuffle batching ----

/// Runs the canonical mod-2 routing shuffle over `n_rows` on 4 nodes with
/// the given batch size; returns the cluster for metric inspection and the
/// collected result rows via `out`.
std::unique_ptr<Cluster> RunBatchedShuffle(size_t batch_rows, int n_rows,
                                           std::vector<Row>* out) {
  ClusterOptions opts = FastOptions(4);
  opts.shuffle_batch_rows = batch_rows;
  auto cluster = std::make_unique<Cluster>(opts);
  auto data = cluster->Parallelize(IntRows(n_rows));
  auto routed = cluster->Shuffle(data, [](const Row& r) {
    return static_cast<uint64_t>(r[0].AsInt() % 2);
  });
  if (out) *out = cluster->Collect(routed);
  return cluster;
}

TEST(ShuffleBatchingTest, RowAndByteMetricsMatchUnbatchedPath) {
  // Batch size 1 degenerates to the row-at-a-time path; larger batch sizes
  // must leave the row-level accounting bit-identical.
  std::vector<Row> reference_rows;
  auto reference = RunBatchedShuffle(1, 500, &reference_rows);
  const uint64_t ref_rows = reference->metrics().rows_shuffled.load();
  const uint64_t ref_bytes = reference->metrics().bytes_shuffled.load();
  ASSERT_GT(ref_rows, 0u);
  for (size_t batch : {7u, 64u, 1024u}) {
    std::vector<Row> rows;
    auto cluster = RunBatchedShuffle(batch, 500, &rows);
    EXPECT_EQ(cluster->metrics().rows_shuffled.load(), ref_rows) << "batch " << batch;
    EXPECT_EQ(cluster->metrics().bytes_shuffled.load(), ref_bytes) << "batch " << batch;
    // The destination splice preserves source-major row order exactly.
    ASSERT_EQ(rows.size(), reference_rows.size()) << "batch " << batch;
    for (size_t i = 0; i < rows.size(); i++) {
      EXPECT_EQ(rows[i][0].AsInt(), reference_rows[i][0].AsInt())
          << "batch " << batch << " row " << i;
    }
  }
}

TEST(ShuffleBatchingTest, BatchSizeOneCountsOneBatchPerRemoteRow) {
  auto cluster = RunBatchedShuffle(1, 200, nullptr);
  EXPECT_EQ(cluster->metrics().shuffle_batches.load(),
            cluster->metrics().rows_shuffled.load());
}

TEST(ShuffleBatchingTest, BatchLargerThanPartitionFlushesOncePerRemotePair) {
  // Round-robin placement puts values ≡ 0 (mod 4) on node 0 (all even →
  // dst 0, local) and ≡ 1 on node 1 (all odd → dst 1, local); only nodes 2
  // and 3 ship remotely (2 → 0 and 3 → 1). A batch far larger than any
  // partition flushes each remote pair exactly once.
  auto cluster = RunBatchedShuffle(1 << 20, 200, nullptr);
  EXPECT_EQ(cluster->metrics().shuffle_batches.load(), 2u);
}

TEST(ShuffleBatchingTest, IntermediateBatchSizeCountsCeilPerPair) {
  // 200 rows over 4 nodes = 50 per source. The two remote pairs (2 → 0,
  // 3 → 1) each ship all 50 rows; with batch 10 that is ceil(50/10) = 5
  // flushes per pair → 10 batches total.
  auto cluster = RunBatchedShuffle(10, 200, nullptr);
  EXPECT_EQ(cluster->metrics().shuffle_batches.load(), 10u);
}

TEST(ShuffleBatchingTest, BroadcastCountsBatchesPerReceiver) {
  ClusterOptions opts = FastOptions(4);
  opts.shuffle_batch_rows = 3;
  Cluster cluster(opts);
  auto data = cluster.Parallelize(IntRows(8));  // 2 rows per node
  auto all = cluster.BroadcastAll(data);
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(cluster.metrics().rows_shuffled.load(), 24u);
  // Each source ships ceil(2/3) = 1 batch to each of the 3 receivers.
  EXPECT_EQ(cluster.metrics().shuffle_batches.load(), 12u);
}

TEST(ClusterTest, BroadcastReplicatesToAllNodes) {
  Cluster cluster(FastOptions(4));
  auto data = cluster.Parallelize(IntRows(8));
  auto all = cluster.BroadcastAll(data);
  EXPECT_EQ(all.size(), 8u);
  // 8 rows × (4-1) receivers.
  EXPECT_EQ(cluster.metrics().rows_shuffled.load(), 24u);
}

TEST(ClusterTest, BroadcastHandlesMorePartitionsThanNodes) {
  // Input partitioned wider than this cluster: every partition must still
  // reach the broadcast result (regression: the first pooled version only
  // visited sources < num_nodes, leaving empty rows in the output).
  Cluster cluster(FastOptions(2));
  Partitioned wide(5);
  for (int i = 0; i < 5; i++) wide[i].push_back({Value(int64_t{i})});
  auto all = cluster.BroadcastAll(wide);
  ASSERT_EQ(all.size(), 5u);
  std::set<int64_t> values;
  for (const auto& row : all) {
    ASSERT_EQ(row.size(), 1u);
    values.insert(row[0].AsInt());
  }
  EXPECT_EQ(values.size(), 5u);
  EXPECT_EQ(cluster.metrics().rows_shuffled.load(), 5u);  // 5 rows × (2-1)
}

TEST(ClusterTest, LoadReportImbalance) {
  LoadReport balanced{{10, 10, 10, 10}};
  EXPECT_DOUBLE_EQ(balanced.ImbalanceFactor(), 1.0);
  LoadReport skewed{{40, 0, 0, 0}};
  EXPECT_DOUBLE_EQ(skewed.ImbalanceFactor(), 4.0);
  LoadReport empty{};
  EXPECT_DOUBLE_EQ(empty.ImbalanceFactor(), 1.0);
}

// ---- Aggregation ----

/// Groups ints by value % 10 and counts them; returns key → count.
std::map<int64_t, int64_t> RunCountAggregate(AggregateStrategy strategy, int n_rows,
                                             Cluster* cluster) {
  auto data = cluster->Parallelize(IntRows(n_rows));
  AggregateSpec spec;
  spec.key = [](const Row& r) { return Value(r[0].AsInt() % 10); };
  spec.init = [](const Row&) { return Value(int64_t{1}); };
  spec.merge = [](Value a, const Value& b) { return Value(a.AsInt() + b.AsInt()); };
  spec.finalize = [](const Value& key, const Value& acc, Partition* out) {
    out->push_back({key, acc});
  };
  auto result = AggregateByKey(*cluster, data, spec, strategy);
  std::map<int64_t, int64_t> counts;
  for (const auto& row : cluster->Collect(result)) {
    counts[row[0].AsInt()] = row[1].AsInt();
  }
  return counts;
}

class AggregateStrategyTest : public ::testing::TestWithParam<AggregateStrategy> {};

TEST_P(AggregateStrategyTest, CountsAreExact) {
  Cluster cluster(FastOptions());
  auto counts = RunCountAggregate(GetParam(), 1000, &cluster);
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) EXPECT_EQ(count, 100) << "key " << key;
}

TEST_P(AggregateStrategyTest, EmptyInputYieldsNoGroups) {
  Cluster cluster(FastOptions());
  auto counts = RunCountAggregate(GetParam(), 0, &cluster);
  EXPECT_TRUE(counts.empty());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AggregateStrategyTest,
                         ::testing::Values(AggregateStrategy::kLocalCombine,
                                           AggregateStrategy::kSortShuffle,
                                           AggregateStrategy::kHashShuffle),
                         [](const auto& info) {
                           std::string name = AggregateStrategyName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AggregateSkewTest, LocalCombineShufflesLessUnderSkew) {
  // Zipf-skewed keys: local combine ships one partial per (node, key);
  // the raw-row strategies ship every row of the hot key.
  ZipfGenerator zipf(50, 1.2, 3);
  std::vector<Row> rows;
  for (int i = 0; i < 20000; i++) {
    rows.push_back({Value(static_cast<int64_t>(zipf.Next()))});
  }
  AggregateSpec spec;
  spec.key = [](const Row& r) { return r[0]; };
  spec.init = [](const Row&) { return Value(int64_t{1}); };
  spec.merge = [](Value a, const Value& b) { return Value(a.AsInt() + b.AsInt()); };
  spec.finalize = [](const Value& key, const Value& acc, Partition* out) {
    out->push_back({key, acc});
  };

  uint64_t traffic[3];
  double imbalance[3];
  const AggregateStrategy strategies[] = {AggregateStrategy::kLocalCombine,
                                          AggregateStrategy::kSortShuffle,
                                          AggregateStrategy::kHashShuffle};
  for (int s = 0; s < 3; s++) {
    Cluster cluster(FastOptions(8));
    auto data = cluster.Parallelize(rows);
    LoadReport load;
    AggregateByKey(cluster, data, spec, strategies[s], &load);
    traffic[s] = cluster.metrics().rows_shuffled.load();
    imbalance[s] = load.ImbalanceFactor();
  }
  // Local combine must ship far fewer rows than either raw-row strategy.
  EXPECT_LT(traffic[0] * 10, traffic[1]);
  EXPECT_LT(traffic[0] * 10, traffic[2]);
  // And its post-shuffle load must be more balanced than sort-shuffle's,
  // which sends the whole hot key range to one node.
  EXPECT_LT(imbalance[0], imbalance[1]);
}

TEST(AggregateAccTest, DistinctAccKeepsSetSemantics) {
  auto init = DistinctAccInit([](const Row& r) { return r[1]; });
  Value acc = init({Value(int64_t{1}), Value("x")});
  acc = DistinctAccMerge(std::move(acc), init({Value(int64_t{1}), Value("y")}));
  acc = DistinctAccMerge(std::move(acc), init({Value(int64_t{2}), Value("x")}));
  ASSERT_EQ(acc.AsList().size(), 2u);
}

TEST(AggregateAccTest, RowsAccCollectsWholeRows) {
  Value acc = RowsAccInit({Value(int64_t{1}), Value("a")});
  acc = RowsAccMerge(std::move(acc), RowsAccInit({Value(int64_t{2}), Value("b")}));
  ASSERT_EQ(acc.AsList().size(), 2u);
  EXPECT_EQ(acc.AsList()[1].AsList()[1].AsString(), "b");
}

// ---- Joins ----

TEST(EquiJoinTest, MatchesOnKey) {
  Cluster cluster(FastOptions());
  std::vector<Row> left, right;
  for (int i = 0; i < 20; i++) left.push_back({Value(int64_t{i % 5}), Value("L" + std::to_string(i))});
  for (int i = 0; i < 5; i++) right.push_back({Value(int64_t{i}), Value("R" + std::to_string(i))});
  auto l = cluster.Parallelize(left);
  auto r = cluster.Parallelize(right);
  auto joined = HashEquiJoin(
      cluster, l, r, [](const Row& x) { return x[0]; }, [](const Row& x) { return x[0]; },
      [](const Row& a, const Row& b) {
        return Row{a[0], a[1], b[1]};
      });
  EXPECT_EQ(Cluster::TotalRows(joined), 20u);
  for (const auto& row : cluster.Collect(joined)) {
    EXPECT_EQ(row[2].AsString(), "R" + std::to_string(row[0].AsInt()));
  }
}

TEST(LeftOuterJoinTest, EmitsUnmatchedLeftRows) {
  Cluster cluster(FastOptions());
  std::vector<Row> left = {{Value(int64_t{1})}, {Value(int64_t{2})}, {Value(int64_t{3})}};
  std::vector<Row> right = {{Value(int64_t{2})}};
  auto joined = HashLeftOuterJoin(
      cluster, cluster.Parallelize(left), cluster.Parallelize(right),
      [](const Row& x) { return x[0]; }, [](const Row& x) { return x[0]; },
      [](const Row& a, const Row&) {
        return Row{a[0], Value(true)};
      },
      [](const Row& a) {
        return Row{a[0], Value(false)};
      });
  std::map<int64_t, bool> matched;
  for (const auto& row : cluster.Collect(joined)) matched[row[0].AsInt()] = row[1].AsBool();
  ASSERT_EQ(matched.size(), 3u);
  EXPECT_FALSE(matched[1]);
  EXPECT_TRUE(matched[2]);
  EXPECT_FALSE(matched[3]);
}

/// All theta-join algorithms must produce identical result multisets.
class ThetaJoinAlgoTest : public ::testing::TestWithParam<ThetaJoinAlgo> {};

TEST_P(ThetaJoinAlgoTest, InequalityJoinCorrectness) {
  Cluster cluster(FastOptions());
  std::vector<Row> rows;
  Rng rng(11);
  for (int i = 0; i < 60; i++) {
    rows.push_back({Value(static_cast<int64_t>(rng.Uniform(100))),
                    Value(static_cast<double>(rng.Uniform(50)) / 10.0)});
  }
  auto pred = [](const Row& a, const Row& b) {
    return a[0].AsInt() < b[0].AsInt() && a[1].AsDouble() > b[1].AsDouble();
  };
  auto emit = [](const Row& a, const Row& b) {
    return Row{a[0], b[0], a[1], b[1]};
  };
  // Reference: sequential nested loop.
  std::multiset<std::string> expected;
  for (const auto& a : rows) {
    for (const auto& b : rows) {
      if (pred(a, b)) expected.insert(emit(a, b)[0].ToString() + "|" + emit(a, b)[1].ToString() + "|" + emit(a, b)[2].ToString() + "|" + emit(a, b)[3].ToString());
    }
  }
  ThetaJoinOptions options;
  options.algo = GetParam();
  auto data = cluster.Parallelize(rows);
  auto result = ThetaJoin(cluster, data, data, pred, emit, options);
  std::multiset<std::string> actual;
  for (const auto& r : cluster.Collect(result)) {
    actual.insert(r[0].ToString() + "|" + r[1].ToString() + "|" + r[2].ToString() + "|" + r[3].ToString());
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ThetaJoinAlgoTest,
                         ::testing::Values(ThetaJoinAlgo::kCartesian,
                                           ThetaJoinAlgo::kMinMax,
                                           ThetaJoinAlgo::kMatrix),
                         [](const auto& info) {
                           return std::string(ThetaJoinAlgoName(info.param));
                         });

TEST(ThetaJoinTest, MatrixBalancesComparisons) {
  // With N nodes and equal inputs, every node should evaluate roughly
  // |L||S|/N comparisons; verify total equals |L||S| exactly.
  Cluster cluster(FastOptions(4));
  auto data = cluster.Parallelize(IntRows(40));
  ThetaJoinOptions options;
  options.algo = ThetaJoinAlgo::kMatrix;
  ThetaJoin(
      cluster, data, data, [](const Row&, const Row&) { return false; },
      [](const Row& a, const Row&) { return a; }, options);
  EXPECT_EQ(cluster.metrics().comparisons.load(), 1600u);
}

TEST(ThetaJoinTest, MinMaxPrunesDisjointRanges) {
  // Left partitions hold small values, right partitions hold large ones;
  // with an aligned bound function and pred a < b ... arrange data so some
  // chunk pairs are prunable with the reversed predicate a > b.
  Cluster cluster(FastOptions(2));
  Partitioned left(2), right(2);
  // Node 0: left values 0..9; node 1: left values 10..19.
  for (int i = 0; i < 10; i++) left[0].push_back({Value(int64_t{i})});
  for (int i = 10; i < 20; i++) left[1].push_back({Value(int64_t{i})});
  // Right: all values 100+ → pred a > b never holds; ranges disjoint.
  for (int i = 100; i < 110; i++) right[0].push_back({Value(int64_t{i})});
  for (int i = 110; i < 120; i++) right[1].push_back({Value(int64_t{i})});

  ThetaJoinOptions options;
  options.algo = ThetaJoinAlgo::kMinMax;
  options.left_bound = [](const Row& r) { return r[0]; };
  options.right_bound = [](const Row& r) { return r[0]; };
  // pred: a > b. A left chunk can only match a right chunk if
  // left_max > right_min.
  options.ranges_may_match = [](const Value&, const Value& lmax, const Value& rmin,
                                const Value&) { return lmax.Compare(rmin) > 0; };
  auto result = ThetaJoin(
      cluster, left, right,
      [](const Row& a, const Row& b) { return a[0].AsInt() > b[0].AsInt(); },
      [](const Row& a, const Row&) { return a; }, options);
  EXPECT_EQ(Cluster::TotalRows(result), 0u);
  // Everything pruned: zero comparisons.
  EXPECT_EQ(cluster.metrics().comparisons.load(), 0u);
}

TEST(ThetaJoinTest, EmptyInputs) {
  Cluster cluster(FastOptions());
  Partitioned empty(cluster.num_nodes());
  auto data = cluster.Parallelize(IntRows(5));
  for (auto algo : {ThetaJoinAlgo::kCartesian, ThetaJoinAlgo::kMinMax, ThetaJoinAlgo::kMatrix}) {
    ThetaJoinOptions options;
    options.algo = algo;
    auto r1 = ThetaJoin(
        cluster, empty, data, [](const Row&, const Row&) { return true; },
        [](const Row& a, const Row&) { return a; }, options);
    EXPECT_EQ(Cluster::TotalRows(r1), 0u) << ThetaJoinAlgoName(algo);
    auto r2 = ThetaJoin(
        cluster, data, empty, [](const Row&, const Row&) { return true; },
        [](const Row& a, const Row&) { return a; }, options);
    EXPECT_EQ(Cluster::TotalRows(r2), 0u) << ThetaJoinAlgoName(algo);
  }
}

}  // namespace
}  // namespace cleanm::engine
