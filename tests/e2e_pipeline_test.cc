// End-to-end pipeline tests: drive the full stack — CleanM text → parser →
// monoid comprehensions (normalization) → nested algebra (translation +
// rewriting) → physical plans → virtual-cluster execution — and cross-check
// the engine's answers against the single-threaded reference algebra
// evaluator on every scenario (dedup, term validation, denial constraints,
// FD checks). Shuffle-traffic metrics must be nonzero (the plans really
// repartition) and stable run to run (execution is deterministic).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "algebra/algebra_eval.h"
#include "algebra/rewriter.h"
#include "algebra/translate.h"
#include "cleaning/cleandb.h"
#include "cleaning/plan_builder.h"
#include "cleaning/prepared_query.h"
#include "cleaning/select_builder.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "monoid/eval.h"
#include "monoid/normalize.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::DatasetToRecords;
using testsupport::FastCleanDBOptions;
using testsupport::FastClusterOptions;
using testsupport::MetricsSnapshot;
using testsupport::ShuffledNonzero;
using testsupport::Snapshot;
using testsupport::SnapshotsEqual;

// ---- Cross-evaluator comparison helpers ----

/// Renders a Value with struct fields sorted by name and list elements
/// sorted lexicographically, so that two evaluators' tuples compare equal
/// regardless of field ordering or of the merge-tree shape that built an
/// aggregated collection.
std::string CanonicalString(const Value& v) {
  if (v.type() == ValueType::kStruct) {
    std::vector<std::pair<std::string, std::string>> fields;
    for (const auto& [name, field] : v.AsStruct()) {
      fields.emplace_back(name, CanonicalString(field));
    }
    std::sort(fields.begin(), fields.end());
    std::string out = "{";
    for (const auto& [name, repr] : fields) out += name + ":" + repr + ",";
    return out + "}";
  }
  if (v.type() == ValueType::kList) {
    std::vector<std::string> elems;
    for (const auto& e : v.AsList()) elems.push_back(CanonicalString(e));
    std::sort(elems.begin(), elems.end());
    std::string out = "[";
    for (const auto& e : elems) out += e + ",";
    return out + "]";
  }
  return v.ToString();
}

std::multiset<std::string> CanonicalTuples(const Value& list_value) {
  std::multiset<std::string> tuples;
  for (const auto& t : list_value.AsList()) tuples.insert(CanonicalString(t));
  return tuples;
}

/// Runs `plan` on a fresh virtual cluster and checks the collected tuples
/// equal the reference evaluator's, as canonical multisets. Returns the
/// engine result and, via `metrics`, the run's traffic snapshot.
Value RunEngineAgainstReference(const AlgOpPtr& plan, const Catalog& catalog,
                                MetricsSnapshot* metrics = nullptr,
                                size_t nodes = 4) {
  auto reference = EvalPlan(plan, catalog).ValueOrDie();
  engine::Cluster cluster(FastClusterOptions(nodes));
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  auto engine_result = exec.RunToValue(plan).ValueOrDie();
  EXPECT_EQ(CanonicalTuples(engine_result), CanonicalTuples(reference));
  if (metrics) *metrics = Snapshot(cluster.metrics());
  return engine_result;
}

// ---- Scenario 1: deduplication ----

Dataset DedupCustomers() {
  datagen::CustomerOptions copts;
  copts.base_rows = 250;
  copts.duplicate_fraction = 0.1;
  copts.max_duplicates = 4;
  copts.fd_violation_fraction = 0;
  return datagen::MakeCustomer(copts);
}

TEST(E2EDedupTest, ParsedQueryMatchesReferenceEvaluator) {
  const char* query_text =
      "SELECT * FROM customer c DEDUP(exact, LD, 0.8, c.address)";
  auto query = ParseCleanM(query_text).ValueOrDie();
  ASSERT_EQ(query.dedups.size(), 1u);

  auto customers = DedupCustomers();
  Catalog catalog{{{"customer", &customers}}};
  auto cp = BuildDedupPlan("customer", "c", query.dedups[0], FilteringOptions{})
                .ValueOrDie();

  // The rewriter must leave the violation set unchanged.
  RewriteStats stats;
  auto rewritten = RewritePlan(cp.plan, &stats);

  MetricsSnapshot first, second;
  auto violations = RunEngineAgainstReference(rewritten, catalog, &first);
  EXPECT_GT(violations.AsList().size(), 0u);  // datagen injected duplicates
  EXPECT_EQ(CanonicalTuples(violations),
            CanonicalTuples(EvalPlan(cp.plan, catalog).ValueOrDie()));

  // Every reported pair is two distinct records sharing the blocking key.
  for (const auto& pair : violations.AsList()) {
    const Value p1 = pair.GetField("p1").ValueOrDie();
    const Value p2 = pair.GetField("p2").ValueOrDie();
    EXPECT_FALSE(p1.Equals(p2));
    EXPECT_TRUE(p1.GetField("address").ValueOrDie().Equals(
        p2.GetField("address").ValueOrDie()));
  }

  // Traffic: grouping by address repartitions rows, and a second identical
  // run moves exactly the same traffic.
  EXPECT_TRUE(ShuffledNonzero(first));
  (void)RunEngineAgainstReference(rewritten, catalog, &second);
  EXPECT_TRUE(SnapshotsEqual(first, second));

  // Full-stack cross-check: CleanDB::Execute on the same query text reports
  // the same number of duplicate pairs.
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", customers);
  auto result = db.Execute(query_text).ValueOrDie();
  ASSERT_EQ(result.ops.size(), 1u);
  EXPECT_EQ(result.ops[0].violations.size(), violations.AsList().size());
  EXPECT_GT(result.metrics.rows_shuffled, 0u);
}

// ---- Scenario 2: term validation ----

/// Author corpus: every clean dictionary name occurs verbatim, and every
/// third name also occurs with character noise (the dirty occurrences).
void MakeAuthorCorpus(Dataset* data, Dataset* dict, size_t* dirty_count) {
  *dict = datagen::MakeAuthorDictionary(60);
  Dataset corpus(Schema{{"author", ValueType::kString}});
  Rng rng(7);
  size_t dirty = 0;
  for (size_t i = 0; i < dict->num_rows(); i++) {
    const std::string clean = dict->row(i)[0].AsString();
    corpus.Append({Value(clean)});
    if (i % 3 == 0) {
      corpus.Append({Value(datagen::AddNoise(clean, 0.15, &rng))});
      dirty++;
    }
  }
  *data = std::move(corpus);
  *dirty_count = dirty;
}

TEST(E2ETermValidationTest, ParsedQueryMatchesReferenceEvaluator) {
  const char* query_text = R"(
    SELECT * FROM authors a, dictionary d
    CLUSTER BY(tf, LD, 0.8, a.author)
  )";
  auto query = ParseCleanM(query_text).ValueOrDie();
  ASSERT_EQ(query.cluster_bys.size(), 1u);
  ASSERT_EQ(query.from[1].table, "dictionary");

  Dataset data, dict;
  size_t dirty_count = 0;
  MakeAuthorCorpus(&data, &dict, &dirty_count);
  Catalog catalog{{{"authors", &data}, {"dictionary", &dict}}};

  auto cp = BuildTermValidationPlan("authors", "a", "dictionary", "d", "name",
                                    query.cluster_bys[0], FilteringOptions{})
                .ValueOrDie();

  MetricsSnapshot first, second;
  auto violations = RunEngineAgainstReference(cp.plan, catalog, &first);
  EXPECT_TRUE(ShuffledNonzero(first));
  (void)RunEngineAgainstReference(cp.plan, catalog, &second);
  EXPECT_TRUE(SnapshotsEqual(first, second));

  // The plan flags similar-but-not-identical (term, dictionary) couples;
  // noised variants must be among the flagged terms.
  EXPECT_GT(violations.AsList().size(), 0u);
  for (const auto& v : violations.AsList()) {
    const Value term = v.GetField("term").ValueOrDie();
    const Value suggestion = v.GetField("suggestion").ValueOrDie();
    EXPECT_FALSE(term.Equals(suggestion));
  }
}

TEST(E2ETermValidationTest, CleanDBSuggestsExactlyTheInjectedRepairs) {
  // Deterministic three-name corpus: CleanDB's ValidateTerms pre-filters
  // verbatim dictionary hits, so exactly the misspelling is flagged.
  CleanDB db(FastCleanDBOptions());
  Dataset data(Schema{{"name", ValueType::kString}});
  data.Append({Value("jonathan smith")});
  data.Append({Value("jonathan smyth")});
  data.Append({Value("mary jones")});
  Dataset dict(Schema{{"name", ValueType::kString}});
  dict.Append({Value("jonathan smith")});
  dict.Append({Value("mary jones")});
  db.RegisterTable("data", data);
  db.RegisterTable("dict", dict);

  auto cb_query = ParseCleanM(
                      "SELECT * FROM data c, dict d CLUSTER BY(tf, LD, 0.8, c.name)")
                      .ValueOrDie();
  auto result =
      db.ValidateTerms("data", "c", "dict", "name", cb_query.cluster_bys[0])
          .ValueOrDie();
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].GetField("term").ValueOrDie().AsString(),
            "jonathan smyth");
  EXPECT_EQ(result.violations[0].GetField("suggestion").ValueOrDie().AsString(),
            "jonathan smith");
}

// ---- Scenario 3: denial constraints ----

TEST(E2EDenialConstraintTest, ThetaSelfJoinMatchesReferenceAcrossAlgorithms) {
  datagen::LineitemOptions lopts;
  lopts.rows = 300;
  lopts.noise_fraction = 0.1;
  auto lineitem = datagen::MakeLineitem(lopts);
  Catalog catalog{{{"lineitem", &lineitem}}};

  // Rule ψ parsed from CleanM expression text.
  auto pred = ParseCleanMExpr(
                  "t1.price < t2.price AND t1.discount > t2.discount")
                  .ValueOrDie();
  auto plan = SelectOp(
      JoinOp(Scan("lineitem", "t1"), Scan("lineitem", "t2"), CloneExpr(pred)),
      ParseCleanMExpr("t1.price < 905").ValueOrDie());

  // The rewriter pushes the one-sided prefilter below the theta join.
  RewriteStats stats;
  auto rewritten = RewritePlan(plan, &stats);
  EXPECT_GE(stats.selects_pushed, 1);

  auto reference = EvalPlan(rewritten, catalog).ValueOrDie();
  ASSERT_GT(reference.AsList().size(), 0u);

  for (auto algo : {engine::ThetaJoinAlgo::kCartesian, engine::ThetaJoinAlgo::kMinMax,
                    engine::ThetaJoinAlgo::kMatrix}) {
    engine::Cluster cluster(FastClusterOptions());
    PhysicalOptions popts;
    popts.theta_algo = algo;
    PartitionCache cache;
    Executor exec{&cluster, &catalog, popts, &cache};
    auto engine_result = exec.RunToValue(rewritten).ValueOrDie();
    EXPECT_EQ(CanonicalTuples(engine_result), CanonicalTuples(reference))
        << engine::ThetaJoinAlgoName(algo);
    EXPECT_GT(cluster.metrics().comparisons.load(), 0u)
        << engine::ThetaJoinAlgoName(algo);
  }

  // Full-stack: CleanDB's programmatic DC API agrees on the violation count.
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("lineitem", lineitem);
  auto result = db.CheckDenialConstraint(
                      "lineitem", CloneExpr(pred),
                      ParseCleanMExpr("t1.price < 905").ValueOrDie())
                    .ValueOrDie();
  EXPECT_EQ(result.violations.size(), reference.AsList().size());
}

// ---- Scenario 4: FD check through the monoid layer ----

TEST(E2EFdTest, ComprehensionNormalizationAndPlanAgree) {
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  auto customers = datagen::MakeCustomer(copts);
  Catalog catalog{{{"customer", &customers}}};

  auto query = ParseCleanM(
                   "SELECT * FROM customer c FD(c.address, prefix(c.phone))")
                   .ValueOrDie();
  ASSERT_EQ(query.fds.size(), 1u);

  // Monoid layer: the Section-4.4 comprehension yields one element per
  // violating *record*; normalization must preserve that bag.
  auto comp = FdComprehension("customer", "c", query.fds[0]);
  Env env{{"customer", DatasetToRecords(customers)}};
  auto interpreted = EvalExpr(comp, env).ValueOrDie();
  auto normalized_result = EvalExpr(Normalize(comp), env).ValueOrDie();
  ASSERT_GT(interpreted.AsList().size(), 0u);
  EXPECT_EQ(CanonicalString(interpreted), CanonicalString(normalized_result));

  // Algebra + engine: the Nest plan yields one tuple per violating *group*;
  // its partitions cover exactly the comprehension's violating records.
  auto cp = BuildFdPlan("customer", "c", query.fds[0]).ValueOrDie();
  MetricsSnapshot metrics;
  auto groups = RunEngineAgainstReference(cp.plan, catalog, &metrics);
  EXPECT_TRUE(ShuffledNonzero(metrics));
  size_t records_in_groups = 0;
  for (const auto& g : groups.AsList()) {
    records_in_groups += g.GetField("partition").ValueOrDie().AsList().size();
  }
  EXPECT_EQ(records_in_groups, interpreted.AsList().size());
}

// ---- Scenario 5: plain SELECT through parse → monoid → algebra → engine ----

TEST(E2ESelectTest, ParsedSelectAgreesAcrossInterpreterReferenceAndEngine) {
  auto customers = testsupport::MakeCustomers();
  Catalog catalog{{{"customer", &customers}}};

  auto query =
      ParseCleanM("SELECT c.name FROM customer c WHERE c.nationkey = 1")
          .ValueOrDie();
  ASSERT_NE(query.where, nullptr);

  // Assemble the query's monoid comprehension from the parsed pieces.
  auto comp = Comprehension(
      "bag", CloneExpr(query.select_list[0].expr),
      {Generator(query.from[0].alias, Var(query.from[0].table)),
       Predicate(CloneExpr(query.where))});

  Env env{{"customer", DatasetToRecords(customers)}};
  auto interpreted = EvalExpr(comp, env).ValueOrDie();
  ASSERT_EQ(interpreted.AsList().size(), 2u);  // alice and bob

  auto plan = TranslateComprehension(Normalize(comp)).ValueOrDie();
  auto rewritten = RewritePlan(plan);
  auto reference = EvalPlan(rewritten, catalog).ValueOrDie();
  EXPECT_EQ(CanonicalString(reference), CanonicalString(interpreted));

  engine::Cluster cluster(FastClusterOptions());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  auto engine_result = exec.RunToValue(rewritten).ValueOrDie();
  EXPECT_EQ(CanonicalString(engine_result), CanonicalString(interpreted));
}

// ---- Scenario 6: the unified multi-clause query, metrics stability ----

TEST(E2EUnifiedQueryTest, CoalescedExecutionIsStableAndShuffles) {
  const char* query_text = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";
  datagen::CustomerOptions copts;
  copts.base_rows = 400;
  copts.duplicate_fraction = 0.05;
  copts.max_duplicates = 4;
  auto customers = datagen::MakeCustomer(copts);

  auto run_once = [&]() {
    CleanDB db(FastCleanDBOptions());
    db.RegisterTable("customer", customers);
    return db.Execute(query_text).ValueOrDie();
  };
  auto first = run_once();
  auto second = run_once();

  // All three clauses share the grouping on address.
  EXPECT_EQ(first.nests_coalesced, 2);
  ASSERT_EQ(first.ops.size(), 3u);
  EXPECT_GT(first.dirty_entities.size(), 0u);

  // Nonzero, run-to-run stable shuffle traffic and identical violations.
  EXPECT_GT(first.metrics.rows_shuffled, 0u);
  EXPECT_GT(first.metrics.bytes_shuffled, 0u);
  EXPECT_TRUE(SnapshotsEqual(first.metrics, second.metrics));
  for (size_t i = 0; i < first.ops.size(); i++) {
    EXPECT_EQ(first.ops[i].violations.size(), second.ops[i].violations.size());
  }
  EXPECT_EQ(first.dirty_entities.size(), second.dirty_entities.size());
}

// ---- Scenario 7: user GROUP BY / HAVING through the full pipeline ----
//
// Parser → select_builder (monoid normalization + aggregate extraction) →
// Nest/Reduce algebra → physical compile → clustered engine, cross-checked
// against the reference algebra evaluator.

/// Lineitem-style rows with known group structure: 3 orders; order 1 has 3
/// lines (prices 10, 20, 30), order 2 has 2 (prices 5, 5), order 3 has 1
/// (price 100).
Dataset GroupedLineitems() {
  Dataset d(Schema{{"orderkey", ValueType::kInt},
                   {"linenumber", ValueType::kInt},
                   {"price", ValueType::kDouble}});
  d.Append({Value(int64_t{1}), Value(int64_t{1}), Value(10.0)});
  d.Append({Value(int64_t{1}), Value(int64_t{2}), Value(20.0)});
  d.Append({Value(int64_t{1}), Value(int64_t{3}), Value(30.0)});
  d.Append({Value(int64_t{2}), Value(int64_t{1}), Value(5.0)});
  d.Append({Value(int64_t{2}), Value(int64_t{2}), Value(5.0)});
  d.Append({Value(int64_t{3}), Value(int64_t{1}), Value(100.0)});
  return d;
}

/// Prepares + executes `query_text` on the engine and cross-checks the
/// SELECT op's rows against the reference evaluator running the same
/// lowered plan. Returns the engine rows.
ValueList RunSelectAgainstReference(const std::string& query_text,
                                    const Dataset& data,
                                    const std::string& table = "lineitem") {
  auto query = ParseCleanM(query_text).ValueOrDie();
  auto sp = BuildSelectPlan(query, nullptr).ValueOrDie();
  Catalog catalog{{{table, &data}}};
  auto reference = EvalPlan(sp.plan.plan, catalog).ValueOrDie();

  CleanDB db(FastCleanDBOptions());
  db.RegisterTable(table, data);
  auto result = db.Execute(query_text).ValueOrDie();
  EXPECT_EQ(result.ops.size(), 1u);
  EXPECT_EQ(result.ops.back().op_name, "SELECT");
  EXPECT_EQ(CanonicalTuples(Value(result.ops.back().violations)),
            CanonicalTuples(reference));
  return result.ops.back().violations;
}

TEST(E2EGroupByTest, SingleKeyGroupingWithAggregates) {
  auto rows = RunSelectAgainstReference(
      "SELECT l.orderkey AS k, count(l) AS n, sum(l.price) AS total, "
      "avg(l.price) AS mean, max(l.price) AS top "
      "FROM lineitem l GROUP BY l.orderkey",
      GroupedLineitems());
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    const int64_t k = row.GetField("k").ValueOrDie().AsInt();
    const int64_t n = row.GetField("n").ValueOrDie().AsInt();
    const double total = row.GetField("total").ValueOrDie().ToDouble();
    const double mean = row.GetField("mean").ValueOrDie().AsDouble();
    if (k == 1) {
      EXPECT_EQ(n, 3);
      EXPECT_DOUBLE_EQ(total, 60.0);
      EXPECT_DOUBLE_EQ(mean, 20.0);
      EXPECT_DOUBLE_EQ(row.GetField("top").ValueOrDie().AsDouble(), 30.0);
    }
    if (k == 2) {
      EXPECT_EQ(n, 2);
      EXPECT_DOUBLE_EQ(total, 10.0);
    }
    if (k == 3) {
      EXPECT_EQ(n, 1);
    }
  }
}

TEST(E2EGroupByTest, MultiKeyGrouping) {
  // (orderkey, linenumber) is a key of this table: every group is a
  // singleton, and both key components project back out of the group key.
  auto rows = RunSelectAgainstReference(
      "SELECT l.orderkey AS ok, l.linenumber AS ln, count(l) AS n "
      "FROM lineitem l GROUP BY l.orderkey, l.linenumber",
      GroupedLineitems());
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.GetField("n").ValueOrDie().AsInt(), 1);
    EXPECT_GE(row.GetField("ok").ValueOrDie().AsInt(), 1);
    EXPECT_GE(row.GetField("ln").ValueOrDie().AsInt(), 1);
  }
}

TEST(E2EGroupByTest, HavingOverAliasedAggregate) {
  auto rows = RunSelectAgainstReference(
      "SELECT l.orderkey AS k, count(l) AS n "
      "FROM lineitem l GROUP BY l.orderkey HAVING n >= 2",
      GroupedLineitems());
  ASSERT_EQ(rows.size(), 2u);  // orders 1 and 2
  for (const auto& row : rows) {
    EXPECT_NE(row.GetField("k").ValueOrDie().AsInt(), 3);
  }
}

TEST(E2EGroupByTest, HavingCanFilterEveryGroupAndWhereCanEmptyTheInput) {
  // No group reaches count 10 → empty result, not an error.
  auto none = RunSelectAgainstReference(
      "SELECT l.orderkey AS k, count(l) AS n "
      "FROM lineitem l GROUP BY l.orderkey HAVING n > 10",
      GroupedLineitems());
  EXPECT_EQ(none.size(), 0u);

  // WHERE excludes every row → no groups at all (the empty-group edge:
  // groups never materialize with zero members).
  auto empty_input = RunSelectAgainstReference(
      "SELECT l.orderkey AS k, count(l) AS n "
      "FROM lineitem l WHERE l.price > 1000 GROUP BY l.orderkey",
      GroupedLineitems());
  EXPECT_EQ(empty_input.size(), 0u);
}

TEST(E2EGroupByTest, HavingWithoutGroupByIsTypeError) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("lineitem", GroupedLineitems());
  auto prepared =
      db.Prepare("SELECT l.orderkey FROM lineitem l HAVING count(l) > 1");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kTypeError);
  EXPECT_NE(prepared.status().message().find("GROUP BY"), std::string::npos);
}

TEST(E2EGroupByTest, BareColumnOutsideAggregateIsTypeError) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("lineitem", GroupedLineitems());
  auto prepared = db.Prepare(
      "SELECT l.price FROM lineitem l GROUP BY l.orderkey");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kTypeError);
}

TEST(E2EGroupByTest, GroupByPlanSurvivesRewriterAndMatchesReference) {
  // The full optimizer path: select_builder output through RewritePlan,
  // engine vs reference on the rewritten form.
  auto query = ParseCleanM(
                   "SELECT l.orderkey AS k, sum(l.price) AS total "
                   "FROM lineitem l WHERE l.linenumber >= 1 "
                   "GROUP BY l.orderkey HAVING total > 9")
                   .ValueOrDie();
  auto sp = BuildSelectPlan(query, nullptr).ValueOrDie();
  auto rewritten = RewritePlan(sp.plan.plan);

  auto data = GroupedLineitems();
  Catalog catalog{{{"lineitem", &data}}};
  auto reference = EvalPlan(sp.plan.plan, catalog).ValueOrDie();

  engine::Cluster cluster(FastClusterOptions());
  PartitionCache cache;
  Executor exec{&cluster, &catalog, {}, &cache};
  auto engine_result = exec.RunToValue(rewritten).ValueOrDie();
  EXPECT_EQ(CanonicalTuples(engine_result), CanonicalTuples(reference));
  EXPECT_EQ(engine_result.AsList().size(), 3u);  // 60, 10, 100 all > 9
}

// ---- Scenario 8: operator-level pipelining (morsel-driven execution) ----
//
// ExecOptions::pipeline = true must be observationally *bit-identical* to
// the materialize-first baseline — the same violation tuples, in the same
// order, per operation, at any morsel size — while really streaming
// (morsels metered) and holding peak transient memory at or below the
// baseline. These are the equivalence guarantees the bench gate
// (bench_unified_cleaning --check) enforces at scale.

Dataset PipelineCustomers() {
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 6;
  copts.fd_violation_fraction = 0.08;
  return datagen::MakeCustomer(copts);
}

/// Violations of every operation rendered in emission order — the
/// bit-exact comparison key (no canonicalization: order and structure both
/// count).
std::vector<std::string> RenderedViolations(const QueryResult& result) {
  std::vector<std::string> out;
  for (const auto& op : result.ops) {
    for (const auto& v : op.violations) {
      out.push_back(op.op_name + "|" + v.ToString());
    }
  }
  return out;
}

std::vector<std::string> RenderedDirtyEntities(const QueryResult& result) {
  std::vector<std::string> out;
  for (const auto& [entity, ops] : result.dirty_entities) {
    std::string line = entity.ToString() + "|";
    for (const auto& op : ops) line += op + ",";
    out.push_back(std::move(line));
  }
  return out;
}

/// One cold execution on a fresh session under the given pipeline config.
QueryResult ExecutePipelineConfig(const Dataset& data, const std::string& query,
                                  bool pipeline, size_t morsel_rows) {
  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", data);
  auto prepared = db.Prepare(query);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  ExecOptions opts;
  opts.pipeline = pipeline;
  opts.morsel_rows = morsel_rows;
  return prepared.value().Execute(opts).ValueOrDie();
}

TEST(E2EMorselPipelineTest, FdAndDedupBitIdenticalAcrossMorselSizes) {
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, LD, 0.8, c.address)
  )";
  const Dataset data = PipelineCustomers();
  const QueryResult baseline = ExecutePipelineConfig(data, query, false, 4096);
  const auto baseline_violations = RenderedViolations(baseline);
  const auto baseline_entities = RenderedDirtyEntities(baseline);
  ASSERT_GT(baseline_violations.size(), 0u);
  EXPECT_EQ(baseline.metrics.morsels_processed, 0u);

  // Morsel boundaries must never change results: a degenerate 1-row morsel,
  // a prime size that straddles every partition, and the 4096 default.
  for (size_t morsel_rows : {size_t{1}, size_t{7}, size_t{4096}}) {
    const QueryResult piped = ExecutePipelineConfig(data, query, true, morsel_rows);
    EXPECT_EQ(RenderedViolations(piped), baseline_violations)
        << "violations diverged at morsel_rows=" << morsel_rows;
    EXPECT_EQ(RenderedDirtyEntities(piped), baseline_entities)
        << "dirty entities diverged at morsel_rows=" << morsel_rows;
    EXPECT_GT(piped.metrics.morsels_processed, 0u);
  }
}

TEST(E2EMorselPipelineTest, TermValidationBitIdenticalAcrossMorselSizes) {
  // Data and dictionary share the column name so the CLUSTER BY clause
  // binds both sides.
  Dataset dict = datagen::MakeAuthorDictionary(40);
  Dataset data(Schema{{"name", ValueType::kString}});
  Rng rng(11);
  for (size_t i = 0; i < dict.num_rows(); i++) {
    const std::string clean = dict.row(i)[0].AsString();
    data.Append({Value(clean)});
    if (i % 3 == 0) data.Append({Value(datagen::AddNoise(clean, 0.15, &rng))});
  }
  Dataset named_dict(Schema{{"name", ValueType::kString}});
  for (const auto& row : dict.rows()) named_dict.Append(row);

  const char* query = "SELECT * FROM data c, dict d CLUSTER BY(tf, LD, 0.8, c.name)";
  auto run = [&](bool pipeline, size_t morsel_rows) {
    CleanDB db(FastCleanDBOptions());
    db.RegisterTable("data", data);
    db.RegisterTable("dict", named_dict);
    auto prepared = db.Prepare(query);
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    ExecOptions opts;
    opts.pipeline = pipeline;
    opts.morsel_rows = morsel_rows;
    return prepared.value().Execute(opts).ValueOrDie();
  };
  const auto baseline = RenderedViolations(run(false, 4096));
  ASSERT_GT(baseline.size(), 0u);  // the noised variants are flagged
  for (size_t morsel_rows : {size_t{1}, size_t{7}, size_t{4096}}) {
    EXPECT_EQ(RenderedViolations(run(true, morsel_rows)), baseline)
        << "term validation diverged at morsel_rows=" << morsel_rows;
  }
}

TEST(E2EMorselPipelineTest, JoinOverNestsSurvivesTinyCacheBudget) {
  // Term validation joins two Nest outputs. Under a byte budget small
  // enough that admitting the second Nest's output evicts the first's,
  // the pipelined join must not stream from the evicted entry (regression
  // test: borrowed cache pointers are detached before the other side may
  // mutate the cache).
  Dataset dict(Schema{{"name", ValueType::kString}});
  dict.Append({Value("jonathan smith")});
  dict.Append({Value("mary jones")});
  Dataset data(Schema{{"name", ValueType::kString}});
  data.Append({Value("jonathan smyth")});
  data.Append({Value("mary jones")});
  data.Append({Value("jonathan smith")});

  const char* query = "SELECT * FROM data c, dict d CLUSTER BY(tf, LD, 0.8, c.name)";
  auto run = [&](size_t cache_bytes, bool pipeline) {
    CleanDBOptions opts = FastCleanDBOptions();
    opts.partition_cache_bytes = cache_bytes;
    CleanDB db(opts);
    db.RegisterTable("data", data);
    db.RegisterTable("dict", dict);
    auto prepared = db.Prepare(query);
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    ExecOptions eo;
    eo.pipeline = pipeline;
    eo.morsel_rows = 1;
    return prepared.value().Execute(eo).ValueOrDie();
  };
  const auto unbounded = RenderedViolations(run(0, true));
  EXPECT_EQ(RenderedViolations(run(1, true)), unbounded);  // evicts every Put
  EXPECT_EQ(RenderedViolations(run(1, false)), unbounded);
}

TEST(E2EMorselPipelineTest, DenialConstraintBitIdenticalAcrossMorselSizes) {
  const Dataset data = PipelineCustomers();
  auto run = [&](bool pipeline, size_t morsel_rows) {
    CleanDB db(FastCleanDBOptions());
    db.RegisterTable("customer", data);
    auto prepared = db.PrepareDenialConstraint(
        "customer",
        ParseCleanMExpr("t1.address = t2.address AND t1.custkey < t2.custkey "
                        "AND t1.nationkey <> t2.nationkey")
            .ValueOrDie());
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    ExecOptions opts;
    opts.pipeline = pipeline;
    opts.morsel_rows = morsel_rows;
    return prepared.value().Execute(opts).ValueOrDie();
  };
  const auto baseline = RenderedViolations(run(false, 4096));
  ASSERT_GT(baseline.size(), 0u);
  for (size_t morsel_rows : {size_t{1}, size_t{7}, size_t{4096}}) {
    EXPECT_EQ(RenderedViolations(run(true, morsel_rows)), baseline)
        << "denial constraint diverged at morsel_rows=" << morsel_rows;
  }
}

TEST(E2EMorselPipelineTest, SinkAbortsMidMorselAndStopsTheStream) {
  class AbortingSink : public ViolationSink {
   public:
    Status OnViolation(const std::string&, const Value&) override {
      seen++;
      if (seen >= 3) return Status::IOError("sink full after 3 violations");
      return Status::OK();
    }
    Status OnDirtyEntity(const Value&, const std::vector<std::string>&) override {
      ADD_FAILURE() << "aborted execution must not reach the entity join";
      return Status::OK();
    }
    int seen = 0;
  };

  CleanDB db(FastCleanDBOptions());
  db.RegisterTable("customer", PipelineCustomers());
  auto prepared = db.Prepare("SELECT * FROM customer c DEDUP(exact, c.address)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // morsel_rows = 7 with the abort on the 3rd violation: the sink dies in
  // the middle of a morsel, and the pipeline must stop there — not finish
  // the morsel, not finish the operator.
  AbortingSink sink;
  ExecOptions opts;
  opts.pipeline = true;
  opts.morsel_rows = 7;
  auto status = prepared.value().ExecuteInto(sink, opts);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(sink.seen, 3);
}

TEST(E2EMorselPipelineTest, MetricsMonotonicity) {
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    DEDUP(exact, LD, 0.8, c.address)
  )";
  const Dataset data = PipelineCustomers();
  const QueryResult materialized = ExecutePipelineConfig(data, query, false, 4096);
  const QueryResult piped_fine = ExecutePipelineConfig(data, query, true, 7);
  const QueryResult piped_coarse = ExecutePipelineConfig(data, query, true, 4096);

  // The materialize-first path never streams; the pipelined path always
  // does, and finer morsels mean strictly more of them.
  EXPECT_EQ(materialized.metrics.morsels_processed, 0u);
  EXPECT_GT(piped_coarse.metrics.morsels_processed, 0u);
  EXPECT_GT(piped_fine.metrics.morsels_processed,
            piped_coarse.metrics.morsels_processed);

  // Peak transient memory: nonzero on both paths (real work happened), and
  // the pipelined peak never exceeds the materialize-first peak.
  EXPECT_GT(materialized.metrics.peak_bytes_materialized, 0u);
  EXPECT_GT(piped_fine.metrics.peak_bytes_materialized, 0u);
  EXPECT_LE(piped_fine.metrics.peak_bytes_materialized,
            materialized.metrics.peak_bytes_materialized);
  EXPECT_LE(piped_coarse.metrics.peak_bytes_materialized,
            materialized.metrics.peak_bytes_materialized);

  // Identical work otherwise: the shuffle/scan/group counters agree across
  // all three configurations (only the pipelining counters may differ).
  auto without_pipelining_counters = [](MetricsSnapshot m) {
    m.peak_bytes_materialized = 0;
    m.morsels_processed = 0;
    return m;
  };
  EXPECT_TRUE(SnapshotsEqual(without_pipelining_counters(materialized.metrics),
                             without_pipelining_counters(piped_fine.metrics)));
  EXPECT_TRUE(SnapshotsEqual(without_pipelining_counters(piped_fine.metrics),
                             without_pipelining_counters(piped_coarse.metrics)));
}

}  // namespace
}  // namespace cleanm
