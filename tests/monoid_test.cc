// Tests for the monoid calculus: monoid laws (property-style over every
// registered monoid), the comprehension interpreter, builtin functions, and
// the normalizer — including the key property that normalization preserves
// interpreter semantics.
#include <gtest/gtest.h>

#include "common/random.h"
#include "monoid/eval.h"
#include "monoid/expr.h"
#include "monoid/monoid.h"
#include "monoid/normalize.h"

namespace cleanm {
namespace {

// ---- Monoid laws ----

class MonoidLawTest : public ::testing::TestWithParam<const char*> {};

std::vector<Value> SampleElements(const std::string& monoid) {
  if (monoid == "some" || monoid == "all") {
    return {Value(true), Value(false), Value(true), Value(false), Value(true)};
  }
  return {Value(int64_t{3}), Value(int64_t{-1}), Value(int64_t{3}),
          Value(int64_t{7}), Value(int64_t{0})};
}

TEST_P(MonoidLawTest, IdentityAndAssociativity) {
  const Monoid* m = LookupMonoid(GetParam()).ValueOrDie();
  const auto elements = SampleElements(GetParam());
  for (const auto& e : elements) {
    const Value lifted = m->Unit(e);
    // zero ⊕ x = x ⊕ zero = x
    EXPECT_TRUE(m->Merge(m->zero(), lifted).Equals(lifted)) << m->name();
    EXPECT_TRUE(m->Merge(lifted, m->zero()).Equals(lifted)) << m->name();
  }
  // (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c) over all sampled triples.
  for (const auto& a : elements) {
    for (const auto& b : elements) {
      for (const auto& c : elements) {
        const Value left =
            m->Merge(m->Merge(m->Unit(a), m->Unit(b)), m->Unit(c));
        const Value right =
            m->Merge(m->Unit(a), m->Merge(m->Unit(b), m->Unit(c)));
        EXPECT_TRUE(left.Equals(right)) << m->name();
      }
    }
  }
}

TEST_P(MonoidLawTest, CommutativityMatchesDeclaration) {
  const Monoid* m = LookupMonoid(GetParam()).ValueOrDie();
  if (!m->commutative()) return;  // "list" is declared non-commutative
  // Collections are commutative up to element order (bag/set semantics over
  // an ordered physical representation): compare sorted.
  auto canonical = [](Value v) {
    if (v.type() != ValueType::kList) return v;
    ValueList copy = v.AsList();
    std::sort(copy.begin(), copy.end(),
              [](const Value& x, const Value& y) { return x.Compare(y) < 0; });
    return Value(std::move(copy));
  };
  const auto elements = SampleElements(GetParam());
  for (const auto& a : elements) {
    for (const auto& b : elements) {
      EXPECT_TRUE(canonical(m->Merge(m->Unit(a), m->Unit(b)))
                      .Equals(canonical(m->Merge(m->Unit(b), m->Unit(a)))))
          << m->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, MonoidLawTest,
                         ::testing::Values("sum", "prod", "max", "min", "some",
                                           "all", "count", "bag", "list", "set"));

TEST(MonoidRegistryTest, UnknownNameIsError) {
  EXPECT_FALSE(LookupMonoid("median").ok());
}

TEST(MonoidRegistryTest, CollectionClassification) {
  EXPECT_TRUE(IsCollectionMonoid("bag"));
  EXPECT_TRUE(IsCollectionMonoid("set"));
  EXPECT_FALSE(IsCollectionMonoid("sum"));
}

// ---- Grouping monoids (Section 4.3) ----

TEST(GroupingMonoidTest, TokenFilterAssociativity) {
  // The paper's law: tokenize(a, tokenize(b, c)) = tokenize(tokenize(a,b), c).
  auto m = MakeTokenFilterMonoid(2);
  const Value a = Value("smith"), b = Value("smyth"), c = Value("jones");
  const Value left = m->Merge(m->Merge(m->Unit(a), m->Unit(b)), m->Unit(c));
  const Value right = m->Merge(m->Unit(a), m->Merge(m->Unit(b), m->Unit(c)));
  EXPECT_TRUE(left.Equals(right));
  // Identity.
  EXPECT_TRUE(m->Merge(m->zero(), m->Unit(a)).Equals(m->Unit(a)));
}

TEST(GroupingMonoidTest, TokenFilterGroupsShareTokens) {
  auto m = MakeTokenFilterMonoid(2);
  Value acc = m->zero();
  for (const char* s : {"smith", "smyth"}) acc = m->Accumulate(std::move(acc), Value(s));
  // Group "sm" must contain both strings.
  auto group = acc.GetField("sm").ValueOrDie();
  EXPECT_EQ(group.AsList().size(), 2u);
}

TEST(GroupingMonoidTest, KMeansMonoidLaws) {
  auto m = MakeKMeansMonoid({"alpha", "omega"}, 0.0);
  const Value a = Value("alpho"), b = Value("omega"), c = Value("alpha");
  const Value left = m->Merge(m->Merge(m->Unit(a), m->Unit(b)), m->Unit(c));
  const Value right = m->Merge(m->Unit(a), m->Merge(m->Unit(b), m->Unit(c)));
  EXPECT_TRUE(left.Equals(right));
  // "alpho" is closer to "alpha": lands in c0.
  auto c0 = m->Unit(a).GetField("c0");
  ASSERT_TRUE(c0.ok());
}

TEST(GroupingMonoidTest, ExactGroupCollectsEqualKeys) {
  auto m = MakeExactGroupMonoid();
  Value acc = m->zero();
  for (const char* s : {"x", "y", "x"}) acc = m->Accumulate(std::move(acc), Value(s));
  EXPECT_EQ(acc.GetField("x").ValueOrDie().AsList().size(), 2u);
  EXPECT_EQ(acc.GetField("y").ValueOrDie().AsList().size(), 1u);
}

// ---- Interpreter ----

Value IntList(std::initializer_list<int64_t> xs) {
  ValueList list;
  for (int64_t x : xs) list.emplace_back(x);
  return Value(std::move(list));
}

TEST(EvalTest, PaperSumExample) {
  // +{x | x <- [1,2,10], x < 5} = 3
  Env env{{"input", IntList({1, 2, 10})}};
  auto comp = Comprehension(
      "sum", Var("x"),
      {Generator("x", Var("input")),
       Predicate(Binary(BinaryOp::kLt, Var("x"), ConstInt(5)))});
  EXPECT_EQ(EvalExpr(comp, env).ValueOrDie().AsInt(), 3);
}

TEST(EvalTest, PaperCrossProductExample) {
  // set{(x,y) | x <- {1,2}, y <- {3,4}} has 4 elements.
  Env env{{"xs", IntList({1, 2})}, {"ys", IntList({3, 4})}};
  auto comp = Comprehension(
      "set", Record({"x", "y"}, {Var("x"), Var("y")}),
      {Generator("x", Var("xs")), Generator("y", Var("ys"))});
  EXPECT_EQ(EvalExpr(comp, env).ValueOrDie().AsList().size(), 4u);
}

TEST(EvalTest, NestedComprehensionAndBindings) {
  // sum{ y | x <- [1,2,3], y := x * x } = 14
  Env env{{"xs", IntList({1, 2, 3})}};
  auto comp = Comprehension(
      "sum", Var("y"),
      {Generator("x", Var("xs")),
       Binding("y", Binary(BinaryOp::kMul, Var("x"), Var("x")))});
  EXPECT_EQ(EvalExpr(comp, env).ValueOrDie().AsInt(), 14);
}

TEST(EvalTest, MaxMinOverEmptyIsNull) {
  Env env{{"xs", Value(ValueList{})}};
  auto comp = Comprehension("max", Var("x"), {Generator("x", Var("xs"))});
  EXPECT_TRUE(EvalExpr(comp, env).ValueOrDie().is_null());
}

TEST(EvalTest, FieldAccessOnGeneratedRecords) {
  ValueList people;
  people.push_back(Value(ValueStruct{{"name", Value("ann")}, {"age", Value(int64_t{30})}}));
  people.push_back(Value(ValueStruct{{"name", Value("bob")}, {"age", Value(int64_t{20})}}));
  Env env{{"people", Value(std::move(people))}};
  auto comp = Comprehension(
      "bag", FieldAccess(Var("p"), "name"),
      {Generator("p", Var("people")),
       Predicate(Binary(BinaryOp::kGt, FieldAccess(Var("p"), "age"), ConstInt(25)))});
  auto result = EvalExpr(comp, env).ValueOrDie();
  ASSERT_EQ(result.AsList().size(), 1u);
  EXPECT_EQ(result.AsList()[0].AsString(), "ann");
}

TEST(EvalTest, ErrorsSurfaceAsStatuses) {
  Env env;
  EXPECT_FALSE(EvalExpr(Var("missing"), env).ok());
  EXPECT_FALSE(EvalExpr(Call("no_such_fn", {}), env).ok());
  EXPECT_FALSE(EvalExpr(Binary(BinaryOp::kAdd, ConstBool(true), ConstInt(1)), env).ok());
  auto bad_comp = Comprehension("sum", Var("x"), {Generator("x", ConstInt(3))});
  EXPECT_FALSE(EvalExpr(bad_comp, env).ok());
}

TEST(EvalTest, ShortCircuitBooleans) {
  // (false and (1/0 = 1)) must not evaluate the division.
  Env env;
  auto div = Binary(BinaryOp::kEq,
                    Binary(BinaryOp::kDiv, ConstInt(1), ConstInt(0)), ConstInt(1));
  auto expr = Binary(BinaryOp::kAnd, ConstBool(false), div);
  EXPECT_FALSE(EvalExpr(expr, env).ValueOrDie().AsBool());
}

TEST(EvalTest, ExtraMonoidsInContext) {
  EvalContext ctx;
  ctx.extra_monoids["tf2"] = MakeTokenFilterMonoid(2);
  Env env{{"words", Value(ValueList{Value("abc"), Value("bcd")})}};
  auto comp = Comprehension("tf2", Var("w"), {Generator("w", Var("words"))});
  auto groups = EvalExpr(comp, env, ctx).ValueOrDie();
  // Shared token "bc" groups both words.
  EXPECT_EQ(groups.GetField("bc").ValueOrDie().AsList().size(), 2u);
}

// ---- Builtins ----

TEST(BuiltinTest, StringFunctions) {
  EXPECT_EQ(EvalBuiltin("prefix", {Value("021-555-1234")}).ValueOrDie().AsString(), "021");
  EXPECT_EQ(EvalBuiltin("prefix", {Value("0215551234")}).ValueOrDie().AsString(), "021");
  EXPECT_EQ(EvalBuiltin("lower", {Value("AbC")}).ValueOrDie().AsString(), "abc");
  EXPECT_EQ(EvalBuiltin("upper", {Value("aBc")}).ValueOrDie().AsString(), "ABC");
  EXPECT_EQ(EvalBuiltin("trim", {Value("  x ")}).ValueOrDie().AsString(), "x");
  EXPECT_EQ(EvalBuiltin("substr", {Value("hello"), Value(int64_t{1}), Value(int64_t{3})})
                .ValueOrDie().AsString(), "ell");
  EXPECT_EQ(EvalBuiltin("length", {Value("hello")}).ValueOrDie().AsInt(), 5);
  EXPECT_TRUE(EvalBuiltin("contains", {Value("hello"), Value("ell")}).ValueOrDie().AsBool());
  EXPECT_EQ(EvalBuiltin("concat", {Value("a"), Value(int64_t{1})}).ValueOrDie().AsString(), "a1");
}

TEST(BuiltinTest, SplitAndDateParts) {
  auto parts = EvalBuiltin("split", {Value("1996-03-12"), Value("-")}).ValueOrDie();
  ASSERT_EQ(parts.AsList().size(), 3u);
  EXPECT_EQ(parts.AsList()[0].AsString(), "1996");
  EXPECT_EQ(EvalBuiltin("year", {Value("1996-03-12")}).ValueOrDie().AsInt(), 1996);
  EXPECT_EQ(EvalBuiltin("month", {Value("1996-03-12")}).ValueOrDie().AsInt(), 3);
  EXPECT_EQ(EvalBuiltin("day", {Value("1996-03-12")}).ValueOrDie().AsInt(), 12);
  EXPECT_FALSE(EvalBuiltin("year", {Value("")}).ok());
}

TEST(BuiltinTest, SimilarityFunctions) {
  EXPECT_EQ(EvalBuiltin("levenshtein", {Value("kitten"), Value("sitting")})
                .ValueOrDie().AsInt(), 3);
  EXPECT_DOUBLE_EQ(
      EvalBuiltin("similarity", {Value("LD"), Value("abc"), Value("abc")})
          .ValueOrDie().AsDouble(), 1.0);
  EXPECT_TRUE(EvalBuiltin("similar",
                          {Value("LD"), Value("smith"), Value("smyth"), Value(0.8)})
                  .ValueOrDie().AsBool());
  EXPECT_FALSE(EvalBuiltin("similar",
                           {Value("LD"), Value("smith"), Value("zzzzz"), Value(0.8)})
                   .ValueOrDie().AsBool());
  EXPECT_FALSE(EvalBuiltin("similarity", {Value("bogus"), Value("a"), Value("b")}).ok());
}

TEST(BuiltinTest, AggregatesOverLists) {
  EXPECT_EQ(EvalBuiltin("count", {IntList({1, 2, 3})}).ValueOrDie().AsInt(), 3);
  EXPECT_DOUBLE_EQ(EvalBuiltin("avg", {IntList({1, 2, 3})}).ValueOrDie().AsDouble(), 2.0);
  EXPECT_TRUE(EvalBuiltin("avg", {Value(ValueList{})}).ValueOrDie().is_null());
  auto d = EvalBuiltin("distinct", {IntList({1, 1, 2})}).ValueOrDie();
  EXPECT_EQ(d.AsList().size(), 2u);
}

TEST(BuiltinTest, CollectionMerges) {
  auto bc = EvalBuiltin("bag_concat", {IntList({1}), IntList({1, 2})}).ValueOrDie();
  EXPECT_EQ(bc.AsList().size(), 3u);
  auto su = EvalBuiltin("set_union", {IntList({1}), IntList({1, 2})}).ValueOrDie();
  EXPECT_EQ(su.AsList().size(), 2u);
}

// ---- Expression utilities ----

TEST(ExprTest, FreeVarsRespectQualifierScoping) {
  // for(x <- xs, x > y) yield sum x : free = {xs, y}
  auto comp = Comprehension(
      "sum", Var("x"),
      {Generator("x", Var("xs")),
       Predicate(Binary(BinaryOp::kGt, Var("x"), Var("y")))});
  auto free = FreeVars(comp);
  EXPECT_TRUE(free.count("xs"));
  EXPECT_TRUE(free.count("y"));
  EXPECT_FALSE(free.count("x"));
}

TEST(ExprTest, SubstituteAvoidsCapturedVars) {
  // Substituting y := x inside a comprehension that re-binds x must not
  // touch occurrences under the shadowing generator... substituting *for* a
  // shadowed var leaves inner occurrences alone.
  auto comp = Comprehension("sum", Var("x"), {Generator("x", Var("xs"))});
  auto substituted = Substitute(comp, "x", ConstInt(9));
  // x is bound by the generator: head must still reference the generator var.
  EXPECT_TRUE(ExprEquals(substituted, comp));
}

TEST(ExprTest, CloneAndEquals) {
  auto e = Binary(BinaryOp::kAdd, Call("length", {Var("s")}), ConstInt(1));
  auto c = CloneExpr(e);
  EXPECT_TRUE(ExprEquals(e, c));
  c->rhs = ConstInt(2);
  EXPECT_FALSE(ExprEquals(e, c));
}

TEST(ExprTest, ToStringReadable) {
  auto comp = Comprehension(
      "sum", Var("x"),
      {Generator("x", Var("xs")), Predicate(Binary(BinaryOp::kLt, Var("x"), ConstInt(5)))});
  EXPECT_EQ(comp->ToString(), "for(x <- xs, (x < 5)) yield sum x");
}

// ---- Normalization ----

TEST(NormalizeTest, BetaReductionInlinesBindings) {
  auto comp = Comprehension(
      "sum", Var("y"),
      {Generator("x", Var("xs")),
       Binding("y", Binary(BinaryOp::kMul, Var("x"), ConstInt(2)))});
  NormalizeStats stats;
  auto normalized = Normalize(comp, &stats);
  EXPECT_GE(stats.beta_reductions, 1);
  // No bindings remain.
  ASSERT_EQ(normalized->kind, ExprKind::kComprehension);
  for (const auto& q : normalized->comp.qualifiers) {
    EXPECT_NE(q.kind, Qualifier::Kind::kBinding);
  }
}

TEST(NormalizeTest, EmptyGeneratorCollapsesToZero) {
  auto comp = Comprehension(
      "sum", Var("x"), {Generator("x", Const(Value(ValueList{})))});
  NormalizeStats stats;
  auto normalized = Normalize(comp, &stats);
  EXPECT_EQ(stats.empty_generators, 1);
  ASSERT_EQ(normalized->kind, ExprKind::kConst);
  EXPECT_EQ(normalized->literal.AsInt(), 0);
}

TEST(NormalizeTest, SingletonGeneratorBecomesBinding) {
  auto comp = Comprehension(
      "sum", Binary(BinaryOp::kAdd, Var("x"), Var("y")),
      {Generator("x", Var("xs")), Generator("y", Const(IntList({7})))});
  NormalizeStats stats;
  auto normalized = Normalize(comp, &stats);
  EXPECT_GE(stats.singleton_generators, 1);
  // After R2 + R1, the head references the constant directly.
  Env env{{"xs", IntList({1, 2})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsInt(), 17);
}

TEST(NormalizeTest, GeneratorUnnestingFlattens) {
  // sum{ y | y <- bag{ x*2 | x <- xs } } → sum{ x*2 | x <- xs }
  auto inner = Comprehension(
      "bag", Binary(BinaryOp::kMul, Var("x"), ConstInt(2)), {Generator("x", Var("xs"))});
  auto outer = Comprehension("sum", Var("y"), {Generator("y", inner)});
  NormalizeStats stats;
  auto normalized = Normalize(outer, &stats);
  EXPECT_GE(stats.generator_unnestings, 1);
  ASSERT_EQ(normalized->kind, ExprKind::kComprehension);
  // Single generator directly over xs; no nested comprehension remains.
  ASSERT_EQ(normalized->comp.qualifiers.size(), 1u);
  EXPECT_EQ(normalized->comp.qualifiers[0].kind, Qualifier::Kind::kGenerator);
  EXPECT_EQ(normalized->comp.qualifiers[0].expr->kind, ExprKind::kVar);
  Env env{{"xs", IntList({1, 2, 3})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsInt(), 12);
}

TEST(NormalizeTest, SetGeneratorDoesNotUnnestIntoBag) {
  // Splicing a set into a bag would change multiplicities; R4 must refuse.
  auto inner = Comprehension("set", Var("x"), {Generator("x", Var("xs"))});
  auto outer = Comprehension("bag", Var("y"), {Generator("y", inner)});
  NormalizeStats stats;
  auto normalized = Normalize(outer, &stats);
  EXPECT_EQ(stats.generator_unnestings, 0);
  Env env{{"xs", IntList({1, 1, 2})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsList().size(), 2u);
}

TEST(NormalizeTest, ExistentialUnnestsIntoIdempotentMonoid) {
  // set{ x | x <- xs, some{ x = y | y <- ys } }
  auto exists = Comprehension(
      "some", Binary(BinaryOp::kEq, Var("x"), Var("y")), {Generator("y", Var("ys"))});
  auto outer = Comprehension(
      "set", Var("x"), {Generator("x", Var("xs")), Predicate(exists)});
  NormalizeStats stats;
  auto normalized = Normalize(outer, &stats);
  EXPECT_GE(stats.existential_unnestings, 1);
  Env env{{"xs", IntList({1, 2, 3})}, {"ys", IntList({2, 3, 4})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsList().size(), 2u);
}

TEST(NormalizeTest, ExistentialStaysUnderNonIdempotentMonoid) {
  auto exists = Comprehension(
      "some", Binary(BinaryOp::kEq, Var("x"), Var("y")), {Generator("y", Var("ys"))});
  auto outer = Comprehension(
      "sum", Var("x"), {Generator("x", Var("xs")), Predicate(exists)});
  NormalizeStats stats;
  auto normalized = Normalize(outer, &stats);
  EXPECT_EQ(stats.existential_unnestings, 0);
  // Semantics check: 2 and 3 match, each counted once despite ys dupes.
  Env env{{"xs", IntList({1, 2, 3})}, {"ys", IntList({2, 2, 3})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsInt(), 5);
}

TEST(NormalizeTest, ConstantPredicates) {
  auto keep = Comprehension(
      "sum", Var("x"), {Generator("x", Var("xs")), Predicate(ConstBool(true))});
  NormalizeStats s1;
  auto n1 = Normalize(keep, &s1);
  EXPECT_GE(s1.predicate_simplifications, 1);
  ASSERT_EQ(n1->kind, ExprKind::kComprehension);
  EXPECT_EQ(n1->comp.qualifiers.size(), 1u);

  auto drop = Comprehension(
      "sum", Var("x"), {Generator("x", Var("xs")), Predicate(ConstBool(false))});
  NormalizeStats s2;
  auto n2 = Normalize(drop, &s2);
  ASSERT_EQ(n2->kind, ExprKind::kConst);
  EXPECT_EQ(n2->literal.AsInt(), 0);
}

TEST(NormalizeTest, ConstantFoldingAndBooleanIdentities) {
  auto e = Binary(BinaryOp::kAdd, ConstInt(2), ConstInt(3));
  auto n = Normalize(e);
  ASSERT_EQ(n->kind, ExprKind::kConst);
  EXPECT_EQ(n->literal.AsInt(), 5);

  auto idand = Binary(BinaryOp::kAnd, ConstBool(true), Var("p"));
  EXPECT_TRUE(ExprEquals(Normalize(idand), Var("p")));
  auto annihilate = Binary(BinaryOp::kAnd, Var("p"), ConstBool(false));
  auto na = Normalize(annihilate);
  ASSERT_EQ(na->kind, ExprKind::kConst);
  EXPECT_FALSE(na->literal.AsBool());
  // Calls over constants fold too.
  auto call = Call("lower", {ConstString("ABC")});
  auto nc = Normalize(call);
  ASSERT_EQ(nc->kind, ExprKind::kConst);
  EXPECT_EQ(nc->literal.AsString(), "abc");
}

TEST(NormalizeTest, IfSplitOnSumHead) {
  // sum{ if x > 2 then x else 0 | x <- xs } splits into two filtered sums.
  auto comp = Comprehension(
      "sum",
      If(Binary(BinaryOp::kGt, Var("x"), ConstInt(2)), Var("x"), ConstInt(0)),
      {Generator("x", Var("xs"))});
  NormalizeStats stats;
  auto normalized = Normalize(comp, &stats);
  EXPECT_GE(stats.if_splits, 1);
  Env env{{"xs", IntList({1, 2, 3, 4})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsInt(), 7);
}

TEST(NormalizeTest, FilterPushdownMovesPredicateBeforeLaterGenerators) {
  // for(x <- xs, y <- ys, x > 1) — the predicate only needs x, so it must
  // move before the y generator.
  auto comp = Comprehension(
      "sum", Binary(BinaryOp::kAdd, Var("x"), Var("y")),
      {Generator("x", Var("xs")), Generator("y", Var("ys")),
       Predicate(Binary(BinaryOp::kGt, Var("x"), ConstInt(1)))});
  NormalizeStats stats;
  auto normalized = Normalize(comp, &stats);
  EXPECT_GE(stats.filters_pushed, 1);
  ASSERT_EQ(normalized->kind, ExprKind::kComprehension);
  const auto& quals = normalized->comp.qualifiers;
  ASSERT_EQ(quals.size(), 3u);
  EXPECT_EQ(quals[0].kind, Qualifier::Kind::kGenerator);
  EXPECT_EQ(quals[1].kind, Qualifier::Kind::kPredicate);
  EXPECT_EQ(quals[2].kind, Qualifier::Kind::kGenerator);
  // Only x = 2 survives the filter: (2+10) + (2+20) = 34.
  Env env{{"xs", IntList({1, 2})}, {"ys", IntList({10, 20})}};
  EXPECT_EQ(EvalExpr(normalized, env).ValueOrDie().AsInt(), 34);
}

// ---- Property: normalization preserves semantics on random programs ----

/// Builds a random comprehension over the environment {xs, ys, k}.
ExprPtr RandomComprehension(Rng* rng, int depth);

ExprPtr RandomScalarExpr(Rng* rng, const std::vector<std::string>& vars, int depth) {
  if (depth <= 0 || rng->Chance(0.3)) {
    if (!vars.empty() && rng->Chance(0.6)) return Var(vars[rng->Uniform(vars.size())]);
    return ConstInt(static_cast<int64_t>(rng->Uniform(5)));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return Binary(rng->Chance(0.5) ? BinaryOp::kAdd : BinaryOp::kMul,
                    RandomScalarExpr(rng, vars, depth - 1),
                    RandomScalarExpr(rng, vars, depth - 1));
    case 1:
      return If(Binary(BinaryOp::kLt, RandomScalarExpr(rng, vars, depth - 1),
                       RandomScalarExpr(rng, vars, depth - 1)),
                RandomScalarExpr(rng, vars, depth - 1),
                RandomScalarExpr(rng, vars, depth - 1));
    default:
      return Binary(BinaryOp::kSub, RandomScalarExpr(rng, vars, depth - 1),
                    RandomScalarExpr(rng, vars, depth - 1));
  }
}

ExprPtr RandomComprehension(Rng* rng, int depth) {
  std::vector<std::string> vars;
  std::vector<Qualifier> quals;
  const int n_quals = 1 + static_cast<int>(rng->Uniform(3));
  int gen_count = 0;
  for (int i = 0; i < n_quals; i++) {
    const uint64_t kind = rng->Uniform(3);
    if (kind == 0 || gen_count == 0) {
      std::string var = "v" + std::to_string(rng->Next() % 1000);
      // Source: base collection, or (rarely) a nested bag comprehension.
      ExprPtr source;
      if (depth > 0 && rng->Chance(0.3)) {
        source = RandomComprehension(rng, depth - 1);
        if (source->comp.monoid != "bag") {
          source = Comprehension("bag", source->comp.head, source->comp.qualifiers);
        }
      } else {
        source = Var(rng->Chance(0.5) ? "xs" : "ys");
      }
      quals.push_back(Generator(var, std::move(source)));
      vars.push_back(var);
      gen_count++;
    } else if (kind == 1) {
      quals.push_back(Predicate(
          Binary(BinaryOp::kLt, RandomScalarExpr(rng, vars, 1),
                 RandomScalarExpr(rng, vars, 1))));
    } else {
      std::string var = "b" + std::to_string(rng->Next() % 1000);
      quals.push_back(Binding(var, RandomScalarExpr(rng, vars, 1)));
      vars.push_back(var);
    }
  }
  const char* monoids[] = {"sum", "bag", "set", "max", "count"};
  return Comprehension(monoids[rng->Uniform(5)],
                       RandomScalarExpr(rng, vars, 2), std::move(quals));
}

TEST(NormalizePropertyTest, PreservesSemanticsOnRandomComprehensions) {
  Env env{{"xs", IntList({1, 2, 3})}, {"ys", IntList({0, 2, 4, 6})}};
  int compared = 0;
  for (uint64_t seed = 0; seed < 300; seed++) {
    Rng rng(seed);
    auto program = RandomComprehension(&rng, 2);
    auto before = EvalExpr(program, env);
    if (!before.ok()) continue;  // e.g. type error in random program
    auto normalized = Normalize(program);
    auto after = EvalExpr(normalized, env);
    ASSERT_TRUE(after.ok()) << "normalization broke evaluation of "
                            << program->ToString() << "\n  -> "
                            << normalized->ToString() << "\n  error: "
                            << after.status().ToString();
    // Bags may reorder under qualifier reordering: compare as multisets.
    Value b = before.ValueOrDie();
    Value a = after.ValueOrDie();
    if (b.type() == ValueType::kList) {
      auto sorted = [](const Value& v) {
        ValueList copy = v.AsList();
        std::sort(copy.begin(), copy.end(),
                  [](const Value& x, const Value& y) { return x.Compare(y) < 0; });
        return copy;
      };
      auto sb = sorted(b), sa = sorted(a);
      ASSERT_EQ(sb.size(), sa.size()) << program->ToString();
      for (size_t i = 0; i < sb.size(); i++) {
        ASSERT_TRUE(sb[i].Equals(sa[i])) << program->ToString();
      }
    } else {
      ASSERT_TRUE(b.Equals(a))
          << program->ToString() << "\n  -> " << normalized->ToString()
          << "\n  before: " << b.ToString() << " after: " << a.ToString();
    }
    compared++;
  }
  // Make sure the property actually exercised a meaningful sample.
  EXPECT_GT(compared, 100);
}

}  // namespace
}  // namespace cleanm
