// Tests for the persistent worker pool: thread reuse across operator
// dispatches, concurrent metrics accumulation, exception propagation to the
// driver, destruction with an unwaited epoch in flight, and the nested-Run
// inline fallback. The asan preset exercises the same binary for races and
// lifetime bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "engine/cluster.h"
#include "engine/worker_pool.h"
#include "support/fixtures.h"

namespace cleanm::engine {
namespace {

using testsupport::IntRows;

TEST(WorkerPoolTest, RunsEveryWorkerExactlyOncePerEpoch) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.Run([&](size_t id) { hits[id]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ReusesThreadsAcrossManySequentialDispatches) {
  constexpr int kEpochs = 500;
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> thread_ids;
  std::atomic<int> total{0};
  for (int e = 0; e < kEpochs; e++) {
    pool.Run([&](size_t) {
      total++;
      std::lock_guard<std::mutex> lock(mu);
      thread_ids.insert(std::this_thread::get_id());
    });
  }
  EXPECT_EQ(total.load(), kEpochs * 4);
  // Persistent pool: the same 4 threads serve all 500 operator dispatches.
  EXPECT_EQ(thread_ids.size(), 4u);
}

TEST(WorkerPoolTest, ConcurrentMetricsAccumulationIsExact) {
  Cluster cluster(testsupport::FastClusterOptions(8));
  constexpr int kOps = 50;
  constexpr uint64_t kPerNode = 1000;
  for (int op = 0; op < kOps; op++) {
    cluster.RunOnNodes([&](size_t) {
      for (uint64_t i = 0; i < kPerNode; i++) cluster.metrics().comparisons++;
    });
  }
  EXPECT_EQ(cluster.metrics().comparisons.load(), kOps * 8 * kPerNode);
}

TEST(WorkerPoolTest, ExceptionPropagatesToDriverAndPoolSurvives) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.Run([](size_t id) {
        if (id == 2) throw std::runtime_error("node 2 failed");
      }),
      std::runtime_error);
  // The pool must remain usable after a failed epoch.
  std::atomic<int> total{0};
  pool.Run([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, ExceptionMessageIsPreserved) {
  WorkerPool pool(2);
  try {
    pool.Run([](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(WorkerPoolTest, DestructionWithDispatchedEpochInFlight) {
  std::atomic<int> completed{0};
  {
    WorkerPool pool(4);
    pool.Dispatch([&](size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed++;
    });
    // Destructor runs with the epoch still in flight: it must drain the
    // tasks and join cleanly (asan verifies no use-after-free on captures).
  }
  EXPECT_EQ(completed.load(), 4);
}

TEST(WorkerPoolTest, DispatchWaitPairMatchesRun) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  pool.Dispatch([&](size_t) { total++; });
  pool.Wait();
  EXPECT_EQ(total.load(), 3);
}

TEST(WorkerPoolTest, NestedRunFallsBackToInlineExecution) {
  WorkerPool pool(3);
  std::atomic<int> inner{0};
  std::atomic<int> outer{0};
  pool.Run([&](size_t id) {
    outer++;
    if (id == 0) {
      EXPECT_TRUE(pool.OnWorkerThread());
      // Would deadlock without the inline fallback: the pool's epoch is
      // still occupied by the enclosing task.
      pool.Run([&](size_t) { inner++; });
    }
  });
  EXPECT_EQ(outer.load(), 3);
  EXPECT_EQ(inner.load(), 3);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(WorkerPoolTest, NestedDispatchPropagatesInnerException) {
  WorkerPool pool(4);
  std::atomic<int> outer_done{0};
  EXPECT_THROW(
      pool.Run([&](size_t id) {
        if (id == 0) {
          // The nested Run executes inline; its exception must surface from
          // the nested Wait into this (outer) task, which the outer epoch
          // then reports at the driver like any task failure.
          pool.Run([](size_t inner) {
            if (inner == 2) throw std::runtime_error("inner boom");
          });
        }
        outer_done++;
      }),
      std::runtime_error);
  // Workers other than the nesting one completed their outer task normally.
  EXPECT_EQ(outer_done.load(), 3);
  // The pool survives a failed nested dispatch.
  std::atomic<int> total{0};
  pool.Run([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, NestedDispatchRunsAllIdsAndKeepsFirstError) {
  WorkerPool pool(3);
  std::atomic<int> inner_runs{0};
  try {
    pool.Run([&](size_t id) {
      if (id != 0) return;
      pool.Dispatch([&](size_t inner) {
        inner_runs++;
        throw std::runtime_error("inner " + std::to_string(inner));
      });
      pool.Wait();
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The first inner failure wins (same contract as the driver path)...
    EXPECT_STREQ(e.what(), "inner 0");
  }
  // ...but an inner throw must not stop the remaining node ids.
  EXPECT_EQ(inner_runs.load(), 3);
}

TEST(WorkerPoolTest, AbandonedNestedErrorDoesNotLeakIntoLaterDispatch) {
  WorkerPool pool(2);
  // A nested Dispatch whose error is never consumed by a Wait...
  pool.Run([&](size_t id) {
    if (id != 0) return;
    pool.Dispatch([](size_t) { throw std::runtime_error("abandoned"); });
    // No Wait: the enclosing task moves on, discarding the nested epoch.
  });
  // ...must not resurface from an unrelated nested Run on the same worker
  // thread later (fn(id) runs on the fixed worker thread `id`, so this
  // nested Run executes on the exact thread that abandoned the error).
  pool.Run([&](size_t id) {
    if (id != 0) return;
    EXPECT_NO_THROW(pool.Run([](size_t) {}));
  });
}

TEST(WorkerPoolTest, ConcurrentDriversShareThePoolSafely) {
  // Multiple session threads race Run() on one pool: the driver lock
  // serializes epochs, TryAcquireDriver lets whoever wins drive, and every
  // epoch still runs each worker exactly once.
  constexpr int kDrivers = 4;
  constexpr int kEpochsPerDriver = 50;
  WorkerPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; d++) {
    drivers.emplace_back([&] {
      for (int e = 0; e < kEpochsPerDriver; e++) {
        pool.Run([&](size_t) { total++; });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), kDrivers * kEpochsPerDriver * 3);
}

TEST(WorkerPoolTest, ClusterRunOnNodesPropagatesWorkerErrors) {
  Cluster cluster(testsupport::FastClusterOptions(4));
  EXPECT_THROW(cluster.RunOnNodes([](size_t n) {
    if (n == 1) throw std::logic_error("operator failure");
  }),
               std::logic_error);
  // The cluster (and its pool) stay usable for the next operator.
  auto data = cluster.Parallelize(IntRows(16));
  EXPECT_EQ(Cluster::TotalRows(data), 16u);
}

TEST(WorkerPoolTest, StatusExceptionKeepsItsStatusThroughThePool) {
  // The fault layer's typed exceptions must cross the pool's capture/rethrow
  // boundary intact: the session layer downcasts at its boundary to turn
  // kUnavailable / kCancelled into ordinary error Statuses.
  WorkerPool pool(4);
  try {
    pool.Run([](size_t id) {
      if (id == 1) throw NodeUnavailableError(1, "node 1 down");
    });
    FAIL() << "expected NodeUnavailableError";
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(e.status().message().find("node 1 down"), std::string::npos);
  }
  // The pool survives the failed epoch.
  std::atomic<int> total{0};
  pool.Run([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, FailedInjectedAttemptsNeverRunTheTaskBody) {
  // The retry loop lives inside the dispatched task: injection fires before
  // the body, so node 1's two scripted failures leave no side effects and
  // the body runs exactly once per node on the pool substrate.
  ClusterOptions opts = testsupport::FastClusterOptions(4);
  opts.fault.target_node = 1;
  opts.fault.fail_first_attempts = 2;
  opts.fault.max_task_retries = 3;
  opts.fault.retry_backoff_ns = 0;
  Cluster cluster(opts);
  std::vector<std::atomic<int>> body_runs(4);
  cluster.RunOnNodes([&](size_t n) { body_runs[n]++; });
  for (const auto& runs : body_runs) EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 2u);
  EXPECT_EQ(cluster.metrics().tasks_retried.load(), 2u);
}

TEST(WorkerPoolTest, SpawnPerCallModeStillWorks) {
  ClusterOptions opts = testsupport::FastClusterOptions(4);
  opts.use_worker_pool = false;  // legacy A/B path
  Cluster cluster(opts);
  std::atomic<int> total{0};
  cluster.RunOnNodes([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, SpawnPerCallModePropagatesExceptions) {
  // Both substrates share the error contract: a throwing operator closure
  // surfaces at the call site instead of std::terminate-ing the process.
  ClusterOptions opts = testsupport::FastClusterOptions(4);
  opts.use_worker_pool = false;
  Cluster cluster(opts);
  EXPECT_THROW(cluster.RunOnNodes([](size_t n) {
    if (n == 3) throw std::runtime_error("legacy node failure");
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace cleanm::engine
