// Tests for the persistent worker pool: thread reuse across operator
// dispatches, concurrent metrics accumulation, exception propagation to the
// driver, destruction with an unwaited epoch in flight, and the nested-Run
// inline fallback. The asan preset exercises the same binary for races and
// lifetime bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "engine/cluster.h"
#include "engine/worker_pool.h"
#include "support/fixtures.h"

namespace cleanm::engine {
namespace {

using testsupport::IntRows;

TEST(WorkerPoolTest, RunsEveryWorkerExactlyOncePerEpoch) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.Run([&](size_t id) { hits[id]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ReusesThreadsAcrossManySequentialDispatches) {
  constexpr int kEpochs = 500;
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> thread_ids;
  std::atomic<int> total{0};
  for (int e = 0; e < kEpochs; e++) {
    pool.Run([&](size_t) {
      total++;
      std::lock_guard<std::mutex> lock(mu);
      thread_ids.insert(std::this_thread::get_id());
    });
  }
  EXPECT_EQ(total.load(), kEpochs * 4);
  // Persistent pool: the same 4 threads serve all 500 operator dispatches.
  EXPECT_EQ(thread_ids.size(), 4u);
}

TEST(WorkerPoolTest, ConcurrentMetricsAccumulationIsExact) {
  Cluster cluster(testsupport::FastClusterOptions(8));
  constexpr int kOps = 50;
  constexpr uint64_t kPerNode = 1000;
  for (int op = 0; op < kOps; op++) {
    cluster.RunOnNodes([&](size_t) {
      for (uint64_t i = 0; i < kPerNode; i++) cluster.metrics().comparisons++;
    });
  }
  EXPECT_EQ(cluster.metrics().comparisons.load(), kOps * 8 * kPerNode);
}

TEST(WorkerPoolTest, ExceptionPropagatesToDriverAndPoolSurvives) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.Run([](size_t id) {
        if (id == 2) throw std::runtime_error("node 2 failed");
      }),
      std::runtime_error);
  // The pool must remain usable after a failed epoch.
  std::atomic<int> total{0};
  pool.Run([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, ExceptionMessageIsPreserved) {
  WorkerPool pool(2);
  try {
    pool.Run([](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(WorkerPoolTest, DestructionWithDispatchedEpochInFlight) {
  std::atomic<int> completed{0};
  {
    WorkerPool pool(4);
    pool.Dispatch([&](size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed++;
    });
    // Destructor runs with the epoch still in flight: it must drain the
    // tasks and join cleanly (asan verifies no use-after-free on captures).
  }
  EXPECT_EQ(completed.load(), 4);
}

TEST(WorkerPoolTest, DispatchWaitPairMatchesRun) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  pool.Dispatch([&](size_t) { total++; });
  pool.Wait();
  EXPECT_EQ(total.load(), 3);
}

TEST(WorkerPoolTest, NestedRunFallsBackToInlineExecution) {
  WorkerPool pool(3);
  std::atomic<int> inner{0};
  std::atomic<int> outer{0};
  pool.Run([&](size_t id) {
    outer++;
    if (id == 0) {
      EXPECT_TRUE(pool.OnWorkerThread());
      // Would deadlock without the inline fallback: the pool's epoch is
      // still occupied by the enclosing task.
      pool.Run([&](size_t) { inner++; });
    }
  });
  EXPECT_EQ(outer.load(), 3);
  EXPECT_EQ(inner.load(), 3);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(WorkerPoolTest, ClusterRunOnNodesPropagatesWorkerErrors) {
  Cluster cluster(testsupport::FastClusterOptions(4));
  EXPECT_THROW(cluster.RunOnNodes([](size_t n) {
    if (n == 1) throw std::logic_error("operator failure");
  }),
               std::logic_error);
  // The cluster (and its pool) stay usable for the next operator.
  auto data = cluster.Parallelize(IntRows(16));
  EXPECT_EQ(Cluster::TotalRows(data), 16u);
}

TEST(WorkerPoolTest, SpawnPerCallModeStillWorks) {
  ClusterOptions opts = testsupport::FastClusterOptions(4);
  opts.use_worker_pool = false;  // legacy A/B path
  Cluster cluster(opts);
  std::atomic<int> total{0};
  cluster.RunOnNodes([&](size_t) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, SpawnPerCallModePropagatesExceptions) {
  // Both substrates share the error contract: a throwing operator closure
  // surfaces at the call site instead of std::terminate-ing the process.
  ClusterOptions opts = testsupport::FastClusterOptions(4);
  opts.use_worker_pool = false;
  Cluster cluster(opts);
  EXPECT_THROW(cluster.RunOnNodes([](size_t n) {
    if (n == 3) throw std::runtime_error("legacy node failure");
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace cleanm::engine
