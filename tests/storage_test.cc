// Unit tests for the storage layer: Value semantics, Schema/Dataset,
// and all four on-disk formats round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/colpack.h"
#include "storage/csv.h"
#include "storage/dataset.h"
#include "storage/json.h"
#include "storage/value.h"
#include "storage/xml.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::MakeFlatDataset;

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, MistypedAccessThrowsDescriptiveCoercionError) {
  // A wrong-type read must be an ordinary catchable exception naming both
  // types (quarantinable on the pipelined path), not a bare
  // std::bad_variant_access.
  try {
    (void)Value("not a number").ToDouble();
    FAIL() << "expected ValueCoercionError";
  } catch (const ValueCoercionError& e) {
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("numeric"), std::string::npos);
  }
  EXPECT_THROW((void)Value(int64_t{1}).AsString(), ValueCoercionError);
  EXPECT_THROW((void)Value::Null().AsList(), ValueCoercionError);
  EXPECT_THROW((void)Value(2.5).AsInt(), ValueCoercionError);
}

TEST(ValueTest, EqualsIsTypeStrict) {
  EXPECT_TRUE(Value(int64_t{1}).Equals(Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value(1.0)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value("a").Equals(Value("b")));
}

TEST(ValueTest, CompareIsNumericAcrossIntDouble) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, CompareOrdersByTypeRank) {
  EXPECT_LT(Value::Null().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{5}).Compare(Value("a")), 0);
}

TEST(ValueTest, NestedEqualityAndHash) {
  Value l1(ValueList{Value(int64_t{1}), Value("x")});
  Value l2(ValueList{Value(int64_t{1}), Value("x")});
  Value l3(ValueList{Value(int64_t{1}), Value("y")});
  EXPECT_TRUE(l1.Equals(l2));
  EXPECT_FALSE(l1.Equals(l3));
  EXPECT_EQ(l1.Hash(), l2.Hash());
  EXPECT_NE(l1.Hash(), l3.Hash());

  Value s1(ValueStruct{{"a", Value(int64_t{1})}});
  Value s2(ValueStruct{{"a", Value(int64_t{1})}});
  Value s3(ValueStruct{{"b", Value(int64_t{1})}});
  EXPECT_TRUE(s1.Equals(s2));
  EXPECT_FALSE(s1.Equals(s3));
}

TEST(ValueTest, StructFieldLookup) {
  Value s(ValueStruct{{"name", Value("alice")}, {"age", Value(int64_t{30})}});
  auto name = s.GetField("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value().AsString(), "alice");
  EXPECT_FALSE(s.GetField("missing").ok());
  EXPECT_FALSE(Value(int64_t{1}).GetField("x").ok());
}

TEST(ValueTest, ToStringRendersNestedJson) {
  Value v(ValueStruct{{"xs", Value(ValueList{Value(int64_t{1}), Value("a")})}});
  EXPECT_EQ(v.ToString(), "{\"xs\":[1,\"a\"]}");
}

TEST(ValueTest, ListCompareIsLexicographic) {
  Value a(ValueList{Value(int64_t{1}), Value(int64_t{2})});
  Value b(ValueList{Value(int64_t{1}), Value(int64_t{3})});
  Value c(ValueList{Value(int64_t{1})});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(c.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(SchemaTest, IndexOfAndHasField) {
  Schema s{{"a", ValueType::kInt}, {"b", ValueType::kString}};
  EXPECT_EQ(s.IndexOf("a").ValueOrDie(), 0u);
  EXPECT_EQ(s.IndexOf("b").ValueOrDie(), 1u);
  EXPECT_FALSE(s.IndexOf("c").ok());
  EXPECT_TRUE(s.HasField("b"));
  EXPECT_FALSE(s.HasField("z"));
}

TEST(DatasetTest, ValidateCatchesRaggedRows) {
  Dataset d(Schema{{"a", ValueType::kInt}});
  d.Append({Value(int64_t{1})});
  EXPECT_TRUE(d.Validate().ok());
  d.Append({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, FlattenListColumn) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value(ValueList{Value("c")})});
  auto flat = FlattenListColumn(d, "authors").ValueOrDie();
  ASSERT_EQ(flat.num_rows(), 3u);
  EXPECT_EQ(flat.row(0)[1].AsString(), "a");
  EXPECT_EQ(flat.row(1)[1].AsString(), "b");
  EXPECT_EQ(flat.row(2)[1].AsString(), "c");
  EXPECT_EQ(flat.row(1)[0].AsString(), "p1");
}

using FormatRoundTripTest = testsupport::TempDirTest;

TEST_F(FormatRoundTripTest, CsvRoundTrip) {
  const auto d = MakeFlatDataset();
  ASSERT_TRUE(WriteCsv(d, Path("t.csv")).ok());
  auto back = ReadCsv(Path("t.csv")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), d.num_rows());
  EXPECT_EQ(back.row(1)[1].AsString(), "bob,jr");
  EXPECT_EQ(back.row(2)[1].AsString(), "carol \"cc\"");
  EXPECT_EQ(back.row(0)[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(back.row(1)[2].AsDouble(), 1.25);
  EXPECT_TRUE(back.row(3)[1].is_null());
}

TEST_F(FormatRoundTripTest, CsvRejectsNestedColumns) {
  Dataset d(Schema{{"xs", ValueType::kList}});
  d.Append({Value(ValueList{Value(int64_t{1})})});
  EXPECT_FALSE(WriteCsv(d, Path("bad.csv")).ok());
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvOptions opts;
  opts.has_header = false;
  auto d = ParseCsvString("1,foo\n2,bar\n", opts).ValueOrDie();
  ASSERT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.schema().field(0).name, "f0");
  EXPECT_EQ(d.row(1)[1].AsString(), "bar");
}

TEST(CsvTest, RejectsRaggedRecords) {
  EXPECT_FALSE(ParseCsvString("a,b\n1,2\n3\n").ok());
}

TEST(JsonTest, ParsesScalarsAndNesting) {
  auto v = ParseJson(R"({"a":1,"b":[1.5,"x",null],"c":{"d":true}})").ValueOrDie();
  ASSERT_EQ(v.type(), ValueType::kStruct);
  EXPECT_EQ(v.GetField("a").ValueOrDie().AsInt(), 1);
  const auto& list = v.GetField("b").ValueOrDie().AsList();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0].AsDouble(), 1.5);
  EXPECT_TRUE(list[2].is_null());
  EXPECT_TRUE(v.GetField("c").ValueOrDie().GetField("d").ValueOrDie().AsBool());
}

TEST(JsonTest, ParsesEscapes) {
  auto v = ParseJson(R"("a\"b\n\t\\")").ValueOrDie();
  EXPECT_EQ(v.AsString(), "a\"b\n\t\\");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson(R"("\u12")").ok());    // truncated \u escape
  EXPECT_FALSE(ParseJson(R"("\u12zq")").ok());  // non-hex digits
}

TEST(JsonTest, DecodesUnicodeEscapesToUtf8) {
  // ASCII stays single-byte.
  EXPECT_EQ(ParseJson(R"("\u0041")").ValueOrDie().AsString(), "A");
  // 2-byte sequence: U+00E9 (e-acute).
  EXPECT_EQ(ParseJson(R"("\u00E9")").ValueOrDie().AsString(), "\xC3\xA9");
  // 3-byte sequence: U+20AC (euro sign), mixed with literal text.
  EXPECT_EQ(ParseJson(R"("price: \u20AC5")").ValueOrDie().AsString(),
            "price: \xE2\x82\xAC" "5");
  // Astral plane via surrogate pair: U+1F600 (grinning face).
  EXPECT_EQ(ParseJson(R"("\uD83D\uDE00")").ValueOrDie().AsString(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonTest, LoneSurrogatesDecodeToReplacementCharacter) {
  const std::string replacement = "\xEF\xBF\xBD";  // U+FFFD
  // High surrogate at end of string / before literal text / before a
  // non-surrogate escape; low surrogate with no preceding high one.
  EXPECT_EQ(ParseJson(R"("\uD83D")").ValueOrDie().AsString(), replacement);
  EXPECT_EQ(ParseJson(R"("\uD83Dx")").ValueOrDie().AsString(), replacement + "x");
  EXPECT_EQ(ParseJson(R"("\uD83DA")").ValueOrDie().AsString(),
            replacement + "A");
  EXPECT_EQ(ParseJson(R"("\uDE00")").ValueOrDie().AsString(), replacement);
}

TEST(JsonTest, UnicodeStringsRoundTripThroughWriter) {
  // The writer emits non-ASCII bytes raw, so decoded escapes round-trip
  // (re-reading yields the identical UTF-8 string) for BMP and astral
  // characters alike (U+1D11E, musical G clef, needs a surrogate pair).
  for (const char* text : {R"("caf\u00E9")", R"("\u20AC 42")",
                           R"("\uD83D\uDE00 ok \uD834\uDD1E")"}) {
    const Value decoded = ParseJson(text).ValueOrDie();
    const Value again = ParseJson(WriteJson(decoded)).ValueOrDie();
    EXPECT_EQ(again.AsString(), decoded.AsString()) << text;
  }
}

TEST_F(FormatRoundTripTest, JsonLinesRoundTripWithNesting) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value(ValueList{Value("c")})});
  ASSERT_TRUE(WriteJsonLines(d, Path("t.jsonl")).ok());
  auto back = ReadJsonLines(Path("t.jsonl")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList().size(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList()[1].AsString(), "b");
}

TEST(JsonLinesTest, AlignsHeterogeneousKeys) {
  auto d = ParseJsonLinesString("{\"a\":1}\n{\"b\":\"x\"}\n").ValueOrDie();
  ASSERT_EQ(d.schema().num_fields(), 2u);
  EXPECT_TRUE(d.row(0)[1].is_null());
  EXPECT_TRUE(d.row(1)[0].is_null());
}

TEST(XmlTest, ParsesRepeatedFieldsAsLists) {
  const std::string xml = R"(<dblp>
    <article>
      <title>Paper one</title>
      <author>A B</author>
      <author>C D</author>
      <year>2001</year>
    </article>
    <article>
      <title>Paper two &amp; more</title>
      <author>E F</author>
    </article>
  </dblp>)";
  auto d = ParseXmlString(xml).ValueOrDie();
  ASSERT_EQ(d.num_rows(), 2u);
  const size_t author = d.schema().IndexOf("author").ValueOrDie();
  ASSERT_EQ(d.row(0)[author].type(), ValueType::kList);
  EXPECT_EQ(d.row(0)[author].AsList()[1].AsString(), "C D");
  EXPECT_EQ(d.row(1)[author].AsString(), "E F");
  const size_t title = d.schema().IndexOf("title").ValueOrDie();
  EXPECT_EQ(d.row(1)[title].AsString(), "Paper two & more");
}

TEST_F(FormatRoundTripTest, XmlRoundTrip) {
  Dataset d(Schema{{"title", ValueType::kString}, {"author", ValueType::kList}});
  d.Append({Value("p <1>"), Value(ValueList{Value("a"), Value("b")})});
  ASSERT_TRUE(WriteXml(d, Path("t.xml")).ok());
  auto back = ReadXml(Path("t.xml")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.row(0)[0].AsString(), "p <1>");
  EXPECT_EQ(back.row(0)[1].AsList().size(), 2u);
}

TEST(XmlTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXmlString("<a><b><c>x</d></b></a>").ok());
}

TEST_F(FormatRoundTripTest, ColpackRoundTripFlat) {
  const auto d = MakeFlatDataset();
  ASSERT_TRUE(WriteColpack(d, Path("t.cpk")).ok());
  auto back = ReadColpack(Path("t.cpk")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); i++) {
    for (size_t c = 0; c < d.schema().num_fields(); c++) {
      EXPECT_TRUE(back.row(i)[c].Equals(d.row(i)[c]))
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(FormatRoundTripTest, ColpackRoundTripNested) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value::Null()});
  ASSERT_TRUE(WriteColpack(d, Path("n.cpk")).ok());
  auto back = ReadColpack(Path("n.cpk")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList()[0].AsString(), "a");
  EXPECT_TRUE(back.row(1)[1].is_null());
}

TEST_F(FormatRoundTripTest, ColpackDictionaryCompressesRepeatedStrings) {
  // 1000 rows over 3 distinct strings: the dictionary-coded file must be
  // much smaller than the CSV.
  Dataset d(Schema{{"city", ValueType::kString}});
  const char* cities[] = {"Lausanne", "Geneva", "Zurich"};
  for (int i = 0; i < 1000; i++) d.Append({Value(cities[i % 3])});
  ASSERT_TRUE(WriteColpack(d, Path("dict.cpk")).ok());
  ASSERT_TRUE(WriteCsv(d, Path("dict.csv")).ok());
  const auto cpk_size = std::filesystem::file_size(Path("dict.cpk"));
  const auto csv_size = std::filesystem::file_size(Path("dict.csv"));
  EXPECT_LT(cpk_size, csv_size);
}

// ---- Empty-input edge cases ----

TEST(CsvTest, EmptyInputs) {
  // A fully empty file has no header row to name columns: error.
  EXPECT_FALSE(ParseCsvString("").ok());
  // Header-only: zero rows, schema from the header.
  auto header_only = ParseCsvString("a,b\n").ValueOrDie();
  EXPECT_EQ(header_only.num_rows(), 0u);
  EXPECT_EQ(header_only.schema().num_fields(), 2u);
  // Headerless empty text: a legitimate zero-row, zero-column dataset.
  CsvOptions opts;
  opts.has_header = false;
  auto empty = ParseCsvString("", opts).ValueOrDie();
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.schema().num_fields(), 0u);
}

TEST(JsonLinesTest, EmptyInputs) {
  auto empty = ParseJsonLinesString("").ValueOrDie();
  EXPECT_EQ(empty.num_rows(), 0u);
  // Blank lines are skipped, not parsed as records.
  auto blanks = ParseJsonLinesString("\n\n").ValueOrDie();
  EXPECT_EQ(blanks.num_rows(), 0u);
}

// ---- Tolerant loading: ReadOptions::max_bad_rows ----

TEST(CsvTest, MaxBadRowsSkipsAndReportsArityMismatch) {
  const std::string text = "a,b\n1,2\n3\n4,5\n6,7,8\n9,10\n";
  // Strict (default): first ragged record fails the load, naming its line.
  auto strict = ParseCsvString(text);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos);

  CsvOptions opts;
  opts.read.max_bad_rows = 2;
  ReadReport report;
  auto d = ParseCsvString(text, opts, &report).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(report.rows_loaded, 3u);
  ASSERT_EQ(report.bad_rows.size(), 2u);
  EXPECT_EQ(report.bad_rows[0].line, 3u);  // "3" — 1 field
  EXPECT_NE(report.bad_rows[0].error.find("expected 2"), std::string::npos);
  EXPECT_EQ(report.bad_rows[1].line, 5u);  // "6,7,8" — 3 fields
}

TEST(CsvTest, MaxBadRowsCapExceededFailsWithLine) {
  CsvOptions opts;
  opts.read.max_bad_rows = 1;
  auto r = ParseCsvString("a,b\n1\n2\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("more than 1 bad rows"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, MaxBadRowsHandlesUnterminatedQuote) {
  // The unterminated quote swallows the rest of the file; the two good
  // rows before it load, the broken tail is recorded at its start line.
  CsvOptions opts;
  opts.read.max_bad_rows = 1;
  ReadReport report;
  auto d = ParseCsvString("a,b\n1,2\n3,4\n5,\"oops\n", opts, &report).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 2u);
  ASSERT_EQ(report.bad_rows.size(), 1u);
  EXPECT_EQ(report.bad_rows[0].line, 4u);
  EXPECT_NE(report.bad_rows[0].error.find("unterminated"), std::string::npos);
}

TEST(CsvTest, QuotedEmbeddedNewlinesKeepLineNumbersRight) {
  // Record 1 spans lines 2-3 (quoted newline); the ragged record is on
  // physical line 4 and must be reported there.
  CsvOptions opts;
  opts.read.max_bad_rows = 1;
  ReadReport report;
  auto d =
      ParseCsvString("a,b\n\"x\ny\",1\nbad\n2,3\n", opts, &report).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 2u);
  ASSERT_EQ(report.bad_rows.size(), 1u);
  EXPECT_EQ(report.bad_rows[0].line, 4u);
}

TEST(JsonLinesTest, MaxBadRowsSkipsAndReports) {
  const std::string text =
      "{\"a\":1}\n"
      "{\"a\":oops}\n"          // bad literal
      "{\"a\":\"\\u12G4\"}\n"   // invalid \uXXXX digit
      "[1,2]\n"                 // not an object
      "{\"a\":2}\n";
  // Strict: first bad line fails.
  EXPECT_FALSE(ParseJsonLinesString(text).ok());

  ReadOptions opts;
  opts.max_bad_rows = 3;
  ReadReport report;
  auto d = ParseJsonLinesString(text, opts, &report).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(report.rows_loaded, 2u);
  ASSERT_EQ(report.bad_rows.size(), 3u);
  EXPECT_EQ(report.bad_rows[0].line, 2u);
  EXPECT_EQ(report.bad_rows[1].line, 3u);
  EXPECT_NE(report.bad_rows[1].error.find("\\u"), std::string::npos);
  EXPECT_EQ(report.bad_rows[2].line, 4u);
  EXPECT_NE(report.bad_rows[2].error.find("not an object"), std::string::npos);
}

TEST(JsonLinesTest, MaxBadRowsCapExceededFails) {
  ReadOptions opts;
  opts.max_bad_rows = 1;
  auto r = ParseJsonLinesString("nope\nnope\n{\"a\":1}\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("more than 1 bad rows"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(XmlTest, EmptyInputs) {
  auto empty_root = ParseXmlString("<dblp></dblp>").ValueOrDie();
  EXPECT_EQ(empty_root.num_rows(), 0u);
  EXPECT_EQ(empty_root.schema().num_fields(), 0u);
}

TEST_F(FormatRoundTripTest, ZeroRowDatasetsSurviveEveryFormat) {
  Dataset empty(Schema{{"a", ValueType::kInt}, {"s", ValueType::kString}});
  // CSV and colpack carry the schema through a zero-row round-trip.
  ASSERT_TRUE(WriteCsv(empty, Path("e.csv")).ok());
  auto csv_back = ReadCsv(Path("e.csv")).ValueOrDie();
  EXPECT_EQ(csv_back.num_rows(), 0u);
  EXPECT_EQ(csv_back.schema().num_fields(), 2u);
  ASSERT_TRUE(WriteColpack(empty, Path("e.cpk")).ok());
  auto cpk_back = ReadColpack(Path("e.cpk")).ValueOrDie();
  EXPECT_EQ(cpk_back.num_rows(), 0u);
  EXPECT_EQ(cpk_back.schema().num_fields(), 2u);
  // JSON-lines and XML infer the schema from records, so a zero-row file
  // legitimately reads back schemaless — but still zero rows, no error.
  ASSERT_TRUE(WriteJsonLines(empty, Path("e.jsonl")).ok());
  EXPECT_EQ(ReadJsonLines(Path("e.jsonl")).ValueOrDie().num_rows(), 0u);
  ASSERT_TRUE(WriteXml(empty, Path("e.xml")).ok());
  EXPECT_EQ(ReadXml(Path("e.xml")).ValueOrDie().num_rows(), 0u);
}

// ---- Quoting/escaping edge cases ----

TEST_F(FormatRoundTripTest, EscaperTortureStrings) {
  // Every escaper hazard in one dataset: delimiters, quotes, newlines,
  // tabs, backslashes, markup, braces, and the empty string. The id column
  // keeps rows distinguishable (and keeps CSV lines non-blank).
  const char* nasty[] = {"a,b",    "q\"uote",    "line\nbreak",
                         "tab\there", "back\\slash", "<tag>&amp;",
                         "{\"json\":[1]}", ""};
  Dataset d(Schema{{"id", ValueType::kInt}, {"s", ValueType::kString}});
  int64_t id = 0;
  for (const char* s : nasty) d.Append({Value(id++), Value(s)});

  ASSERT_TRUE(WriteCsv(d, Path("n.csv")).ok());
  auto csv_back = ReadCsv(Path("n.csv")).ValueOrDie();
  ASSERT_EQ(csv_back.num_rows(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); i++) {
    const Value& back = csv_back.row(i)[1];
    // CSV cannot tell the empty string from null; everything else is exact.
    if (d.row(i)[1].AsString().empty()) {
      EXPECT_TRUE(back.is_null() || back.AsString().empty()) << "row " << i;
    } else {
      EXPECT_EQ(back.AsString(), d.row(i)[1].AsString()) << "row " << i;
    }
  }

  ASSERT_TRUE(WriteJsonLines(d, Path("n.jsonl")).ok());
  EXPECT_TRUE(testsupport::DatasetsEqual(d, ReadJsonLines(Path("n.jsonl")).ValueOrDie()));

  ASSERT_TRUE(WriteColpack(d, Path("n.cpk")).ok());
  EXPECT_TRUE(testsupport::DatasetsEqual(d, ReadColpack(Path("n.cpk")).ValueOrDie()));
}

TEST_F(FormatRoundTripTest, XmlEscapesMarkupButTrimsSurroundingWhitespace) {
  Dataset d(Schema{{"s", ValueType::kString}});
  d.Append({Value("<tag>&amp;\"quotes\"")});
  d.Append({Value("  spaces  ")});
  ASSERT_TRUE(WriteXml(d, Path("w.xml")).ok());
  auto back = ReadXml(Path("w.xml")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 2u);
  // Markup survives via entity escaping...
  EXPECT_EQ(back.row(0)[0].AsString(), "<tag>&amp;\"quotes\"");
  // ...but the reader trims surrounding whitespace (documented behavior).
  EXPECT_EQ(back.row(1)[0].AsString(), "spaces");
}

TEST(CsvTest, BlankLineRowIsDroppedNotMisparsed) {
  // A single empty string column renders as a blank line, which the reader
  // skips — the known CSV ambiguity. Rows must never shift misaligned.
  auto text_parsed = ParseCsvString("s\nx\n\ny\n").ValueOrDie();
  ASSERT_EQ(text_parsed.num_rows(), 2u);
  EXPECT_EQ(text_parsed.row(0)[0].AsString(), "x");
  EXPECT_EQ(text_parsed.row(1)[0].AsString(), "y");
}

TEST_F(FormatRoundTripTest, ColpackRejectsGarbage) {
  {
    std::ofstream f(Path("junk.cpk"), std::ios::binary);
    f << "not a colpack file";
  }
  EXPECT_FALSE(ReadColpack(Path("junk.cpk")).ok());
  EXPECT_FALSE(ReadColpack(Path("missing.cpk")).ok());
}

}  // namespace
}  // namespace cleanm
