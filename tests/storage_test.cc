// Unit tests for the storage layer: Value semantics, Schema/Dataset,
// and all four on-disk formats round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/colpack.h"
#include "storage/csv.h"
#include "storage/dataset.h"
#include "storage/json.h"
#include "storage/value.h"
#include "storage/xml.h"

namespace cleanm {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, EqualsIsTypeStrict) {
  EXPECT_TRUE(Value(int64_t{1}).Equals(Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value(1.0)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value("a").Equals(Value("b")));
}

TEST(ValueTest, CompareIsNumericAcrossIntDouble) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, CompareOrdersByTypeRank) {
  EXPECT_LT(Value::Null().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{5}).Compare(Value("a")), 0);
}

TEST(ValueTest, NestedEqualityAndHash) {
  Value l1(ValueList{Value(int64_t{1}), Value("x")});
  Value l2(ValueList{Value(int64_t{1}), Value("x")});
  Value l3(ValueList{Value(int64_t{1}), Value("y")});
  EXPECT_TRUE(l1.Equals(l2));
  EXPECT_FALSE(l1.Equals(l3));
  EXPECT_EQ(l1.Hash(), l2.Hash());
  EXPECT_NE(l1.Hash(), l3.Hash());

  Value s1(ValueStruct{{"a", Value(int64_t{1})}});
  Value s2(ValueStruct{{"a", Value(int64_t{1})}});
  Value s3(ValueStruct{{"b", Value(int64_t{1})}});
  EXPECT_TRUE(s1.Equals(s2));
  EXPECT_FALSE(s1.Equals(s3));
}

TEST(ValueTest, StructFieldLookup) {
  Value s(ValueStruct{{"name", Value("alice")}, {"age", Value(int64_t{30})}});
  auto name = s.GetField("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value().AsString(), "alice");
  EXPECT_FALSE(s.GetField("missing").ok());
  EXPECT_FALSE(Value(int64_t{1}).GetField("x").ok());
}

TEST(ValueTest, ToStringRendersNestedJson) {
  Value v(ValueStruct{{"xs", Value(ValueList{Value(int64_t{1}), Value("a")})}});
  EXPECT_EQ(v.ToString(), "{\"xs\":[1,\"a\"]}");
}

TEST(ValueTest, ListCompareIsLexicographic) {
  Value a(ValueList{Value(int64_t{1}), Value(int64_t{2})});
  Value b(ValueList{Value(int64_t{1}), Value(int64_t{3})});
  Value c(ValueList{Value(int64_t{1})});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(c.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(SchemaTest, IndexOfAndHasField) {
  Schema s{{"a", ValueType::kInt}, {"b", ValueType::kString}};
  EXPECT_EQ(s.IndexOf("a").ValueOrDie(), 0u);
  EXPECT_EQ(s.IndexOf("b").ValueOrDie(), 1u);
  EXPECT_FALSE(s.IndexOf("c").ok());
  EXPECT_TRUE(s.HasField("b"));
  EXPECT_FALSE(s.HasField("z"));
}

TEST(DatasetTest, ValidateCatchesRaggedRows) {
  Dataset d(Schema{{"a", ValueType::kInt}});
  d.Append({Value(int64_t{1})});
  EXPECT_TRUE(d.Validate().ok());
  d.Append({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, FlattenListColumn) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value(ValueList{Value("c")})});
  auto flat = FlattenListColumn(d, "authors").ValueOrDie();
  ASSERT_EQ(flat.num_rows(), 3u);
  EXPECT_EQ(flat.row(0)[1].AsString(), "a");
  EXPECT_EQ(flat.row(1)[1].AsString(), "b");
  EXPECT_EQ(flat.row(2)[1].AsString(), "c");
  EXPECT_EQ(flat.row(1)[0].AsString(), "p1");
}

class FormatRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "cleanm_storage_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Dataset MakeFlatDataset() {
  Dataset d(Schema{{"id", ValueType::kInt},
                   {"name", ValueType::kString},
                   {"score", ValueType::kDouble}});
  d.Append({Value(int64_t{1}), Value("alice"), Value(0.5)});
  d.Append({Value(int64_t{2}), Value("bob,jr"), Value(1.25)});
  d.Append({Value(int64_t{3}), Value("carol \"cc\""), Value(-3.0)});
  d.Append({Value(int64_t{4}), Value::Null(), Value(0.0)});
  return d;
}

TEST_F(FormatRoundTripTest, CsvRoundTrip) {
  const auto d = MakeFlatDataset();
  ASSERT_TRUE(WriteCsv(d, Path("t.csv")).ok());
  auto back = ReadCsv(Path("t.csv")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), d.num_rows());
  EXPECT_EQ(back.row(1)[1].AsString(), "bob,jr");
  EXPECT_EQ(back.row(2)[1].AsString(), "carol \"cc\"");
  EXPECT_EQ(back.row(0)[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(back.row(1)[2].AsDouble(), 1.25);
  EXPECT_TRUE(back.row(3)[1].is_null());
}

TEST_F(FormatRoundTripTest, CsvRejectsNestedColumns) {
  Dataset d(Schema{{"xs", ValueType::kList}});
  d.Append({Value(ValueList{Value(int64_t{1})})});
  EXPECT_FALSE(WriteCsv(d, Path("bad.csv")).ok());
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvOptions opts;
  opts.has_header = false;
  auto d = ParseCsvString("1,foo\n2,bar\n", opts).ValueOrDie();
  ASSERT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.schema().field(0).name, "f0");
  EXPECT_EQ(d.row(1)[1].AsString(), "bar");
}

TEST(CsvTest, RejectsRaggedRecords) {
  EXPECT_FALSE(ParseCsvString("a,b\n1,2\n3\n").ok());
}

TEST(JsonTest, ParsesScalarsAndNesting) {
  auto v = ParseJson(R"({"a":1,"b":[1.5,"x",null],"c":{"d":true}})").ValueOrDie();
  ASSERT_EQ(v.type(), ValueType::kStruct);
  EXPECT_EQ(v.GetField("a").ValueOrDie().AsInt(), 1);
  const auto& list = v.GetField("b").ValueOrDie().AsList();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0].AsDouble(), 1.5);
  EXPECT_TRUE(list[2].is_null());
  EXPECT_TRUE(v.GetField("c").ValueOrDie().GetField("d").ValueOrDie().AsBool());
}

TEST(JsonTest, ParsesEscapes) {
  auto v = ParseJson(R"("a\"b\n\t\\")").ValueOrDie();
  EXPECT_EQ(v.AsString(), "a\"b\n\t\\");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST_F(FormatRoundTripTest, JsonLinesRoundTripWithNesting) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value(ValueList{Value("c")})});
  ASSERT_TRUE(WriteJsonLines(d, Path("t.jsonl")).ok());
  auto back = ReadJsonLines(Path("t.jsonl")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList().size(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList()[1].AsString(), "b");
}

TEST(JsonLinesTest, AlignsHeterogeneousKeys) {
  auto d = ParseJsonLinesString("{\"a\":1}\n{\"b\":\"x\"}\n").ValueOrDie();
  ASSERT_EQ(d.schema().num_fields(), 2u);
  EXPECT_TRUE(d.row(0)[1].is_null());
  EXPECT_TRUE(d.row(1)[0].is_null());
}

TEST(XmlTest, ParsesRepeatedFieldsAsLists) {
  const std::string xml = R"(<dblp>
    <article>
      <title>Paper one</title>
      <author>A B</author>
      <author>C D</author>
      <year>2001</year>
    </article>
    <article>
      <title>Paper two &amp; more</title>
      <author>E F</author>
    </article>
  </dblp>)";
  auto d = ParseXmlString(xml).ValueOrDie();
  ASSERT_EQ(d.num_rows(), 2u);
  const size_t author = d.schema().IndexOf("author").ValueOrDie();
  ASSERT_EQ(d.row(0)[author].type(), ValueType::kList);
  EXPECT_EQ(d.row(0)[author].AsList()[1].AsString(), "C D");
  EXPECT_EQ(d.row(1)[author].AsString(), "E F");
  const size_t title = d.schema().IndexOf("title").ValueOrDie();
  EXPECT_EQ(d.row(1)[title].AsString(), "Paper two & more");
}

TEST_F(FormatRoundTripTest, XmlRoundTrip) {
  Dataset d(Schema{{"title", ValueType::kString}, {"author", ValueType::kList}});
  d.Append({Value("p <1>"), Value(ValueList{Value("a"), Value("b")})});
  ASSERT_TRUE(WriteXml(d, Path("t.xml")).ok());
  auto back = ReadXml(Path("t.xml")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.row(0)[0].AsString(), "p <1>");
  EXPECT_EQ(back.row(0)[1].AsList().size(), 2u);
}

TEST(XmlTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXmlString("<a><b><c>x</d></b></a>").ok());
}

TEST_F(FormatRoundTripTest, ColpackRoundTripFlat) {
  const auto d = MakeFlatDataset();
  ASSERT_TRUE(WriteColpack(d, Path("t.cpk")).ok());
  auto back = ReadColpack(Path("t.cpk")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); i++) {
    for (size_t c = 0; c < d.schema().num_fields(); c++) {
      EXPECT_TRUE(back.row(i)[c].Equals(d.row(i)[c]))
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(FormatRoundTripTest, ColpackRoundTripNested) {
  Dataset d(Schema{{"title", ValueType::kString}, {"authors", ValueType::kList}});
  d.Append({Value("p1"), Value(ValueList{Value("a"), Value("b")})});
  d.Append({Value("p2"), Value::Null()});
  ASSERT_TRUE(WriteColpack(d, Path("n.cpk")).ok());
  auto back = ReadColpack(Path("n.cpk")).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.row(0)[1].AsList()[0].AsString(), "a");
  EXPECT_TRUE(back.row(1)[1].is_null());
}

TEST_F(FormatRoundTripTest, ColpackDictionaryCompressesRepeatedStrings) {
  // 1000 rows over 3 distinct strings: the dictionary-coded file must be
  // much smaller than the CSV.
  Dataset d(Schema{{"city", ValueType::kString}});
  const char* cities[] = {"Lausanne", "Geneva", "Zurich"};
  for (int i = 0; i < 1000; i++) d.Append({Value(cities[i % 3])});
  ASSERT_TRUE(WriteColpack(d, Path("dict.cpk")).ok());
  ASSERT_TRUE(WriteCsv(d, Path("dict.csv")).ok());
  const auto cpk_size = std::filesystem::file_size(Path("dict.cpk"));
  const auto csv_size = std::filesystem::file_size(Path("dict.csv"));
  EXPECT_LT(cpk_size, csv_size);
}

TEST_F(FormatRoundTripTest, ColpackRejectsGarbage) {
  {
    std::ofstream f(Path("junk.cpk"), std::ios::binary);
    f << "not a colpack file";
  }
  EXPECT_FALSE(ReadColpack(Path("junk.cpk")).ok());
  EXPECT_FALSE(ReadColpack(Path("missing.cpk")).ok());
}

}  // namespace
}  // namespace cleanm
