// Session-concurrency stress suite (the tsan preset runs these under
// ThreadSanitizer; the plain presets run them as functional races).
//
// One CleanDB, many driver threads: prepared FD / dedup / SELECT queries
// execute concurrently over the shared worker pool while other threads
// re-register tables and commit repairs. The contracts under test are the
// ones DESIGN.md ("Threading & session concurrency") documents:
//
//  * every concurrent execution of a prepared query over a *stable* table
//    returns a violation set bit-identical to the serial baseline — no
//    torn snapshots, no cross-execution metric or cache interference;
//  * RegisterTable / RepairSink::Commit during in-flight executions are
//    atomic: an execution sees one generation of each table throughout
//    (snapshot visibility), never a mix;
//  * the admission controller really bounds concurrent in-flight work:
//    with a byte budget, oversized executions run alone (serialized);
//    without one, executions overlap.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cleaning/prepared_query.h"
#include "datagen/generators.h"
#include "repair/repair_sink.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

using testsupport::FastCleanDBOptions;
using testsupport::MakeCustomers;

Dataset DirtyCustomers() {
  datagen::CustomerOptions copts;
  copts.base_rows = 200;
  copts.duplicate_fraction = 0.08;
  copts.max_duplicates = 3;
  copts.fd_violation_fraction = 0.05;
  return datagen::MakeCustomer(copts);
}

/// Canonical rendering of a result: operations and their violations in
/// execution order (deterministic), the dirty-entity join sorted (the
/// entity outer join hashes, so its order is not part of the contract).
std::string Render(const QueryResult& r) {
  std::string out;
  for (const auto& op : r.ops) {
    out += op.op_name + "#" + std::to_string(op.violations.size()) + "\n";
    for (const auto& v : op.violations) out += v.ToString() + "\n";
  }
  std::vector<std::string> dirty;
  for (const auto& [entity, ops] : r.dirty_entities) {
    std::string line = entity.ToString();
    for (const auto& o : ops) line += "|" + o;
    dirty.push_back(std::move(line));
  }
  std::sort(dirty.begin(), dirty.end());
  for (const auto& d : dirty) out += d + "\n";
  return out;
}

TEST(ConcurrencyStressTest, ConcurrentDriversMatchSerialBaselineUnderChurn) {
  CleanDB db(FastCleanDBOptions(4));
  db.RegisterTable("customer", DirtyCustomers());  // stable during the run
  db.RegisterTable("fixable", MakeCustomers());    // repaired repeatedly

  // Row-wise repair UDF for the commit thread: uppercase the name.
  ASSERT_TRUE(db.functions()
                  .RegisterRepair(
                      "upcase_name", 1,
                      [](const std::vector<Value>& args) -> Result<Value> {
                        auto name = args[0].GetField("name");
                        if (!name.ok()) return name.status();
                        std::string upper = name.value().AsString();
                        for (auto& ch : upper) {
                          ch = static_cast<char>(std::toupper(ch));
                        }
                        return Value(ValueStruct{
                            {"entity", args[0]},
                            {"set", Value(ValueStruct{{"name", Value(upper)}})}});
                      })
                  .ok());

  // Shared prepared queries — all driver threads execute these same
  // objects concurrently.
  auto multi = db.Prepare(R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )");
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  auto fd_only = db.Prepare("SELECT * FROM customer c FD(c.address, c.nationkey)");
  ASSERT_TRUE(fd_only.ok()) << fd_only.status().ToString();
  auto select = db.Prepare("SELECT c.name FROM customer c");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  PreparedQuery* queries[] = {&multi.value(), &fd_only.value(), &select.value()};

  // Serial baselines before any concurrency.
  std::vector<std::string> baseline;
  for (PreparedQuery* pq : queries) {
    auto r = pq->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baseline.push_back(Render(r.value()));
  }

  constexpr int kDrivers = 8;
  constexpr int kIterations = 6;
  std::atomic<int> failures{0};
  std::atomic<int> executions{0};
  std::mutex first_mu;
  std::string first_divergence;
  auto record_failure = [&](const std::string& what) {
    failures++;
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_divergence.empty()) first_divergence = what;
  };

  std::atomic<bool> stop_churn{false};
  // Churn thread: re-registers an unrelated table (generation bumps + cache
  // invalidations) and queries it, concurrently with everything else.
  std::thread churn([&] {
    for (int round = 0; !stop_churn; round++) {
      Dataset scratch(Schema{{"a", ValueType::kInt}});
      for (int i = 0; i <= round % 5; i++) {
        scratch.Append({Value(static_cast<int64_t>(round + i))});
      }
      db.RegisterTable("scratch", std::move(scratch));
      auto r = db.Execute("SELECT s.a FROM scratch s");
      if (!r.ok()) record_failure("scratch query: " + r.status().ToString());
    }
  });

  // Repair thread: detect → repair → re-register loop on "fixable", each
  // Commit going through the session commit lock while drivers execute.
  std::thread repairer([&] {
    auto repair = db.Prepare("SELECT upcase_name(f) AS fix FROM fixable f");
    if (!repair.ok()) {
      record_failure("prepare repair: " + repair.status().ToString());
      return;
    }
    for (int round = 0; round < 8; round++) {
      db.RegisterTable("fixable", MakeCustomers());  // reset the dirty data
      RepairSink sink(&db, repair.value(), "fixable_clean");
      Status s = repair.value().ExecuteInto(sink);
      if (!s.ok()) {
        record_failure("repair execute: " + s.ToString());
        return;
      }
      auto summary = sink.Commit();
      if (!summary.ok()) {
        record_failure("repair commit: " + summary.status().ToString());
        return;
      }
    }
  });

  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; d++) {
    drivers.emplace_back([&, d] {
      for (int i = 0; i < kIterations; i++) {
        const size_t q = static_cast<size_t>(d + i) % 3;
        auto r = queries[q]->Execute();
        if (!r.ok()) {
          record_failure("driver execute: " + r.status().ToString());
          continue;
        }
        executions++;
        const std::string rendered = Render(r.value());
        if (rendered != baseline[q]) {
          record_failure("driver " + std::to_string(d) + " query " +
                         std::to_string(q) + " diverged from serial baseline");
        }
      }
    });
  }

  for (auto& t : drivers) t.join();
  repairer.join();
  stop_churn = true;
  churn.join();

  EXPECT_EQ(failures.load(), 0) << first_divergence;
  EXPECT_EQ(executions.load(), kDrivers * kIterations);
  // The repair loop really ran: the final committed table is clean.
  auto clean = db.GetTableShared("fixable_clean");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value()->row(0)[0].AsString(), "ALICE");
}

TEST(ConcurrencyStressTest, ConcurrentDriversStayExactUnderInjectedFaults) {
  // Concurrent drivers with 5% injected task failures: every execution must
  // retry its way to a result bit-identical to a fault-free serial baseline.
  // tools/ci.sh sweeps this test under tsan with CLEANM_FAULT_SEED set to
  // several values — each seed replays a different deterministic failure
  // schedule through the same concurrent drivers.
  uint64_t seed = 11;
  if (const char* env = std::getenv("CLEANM_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const char* kQuery = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";

  // Fault-free serial baseline from an identically seeded dataset.
  std::string baseline;
  {
    CleanDB clean_db(FastCleanDBOptions(4));
    clean_db.RegisterTable("customer", DirtyCustomers());
    auto r = clean_db.Execute(kQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baseline = Render(r.value());
  }

  CleanDBOptions opts = FastCleanDBOptions(4);
  opts.fault.failure_probability = 0.05;
  opts.fault.seed = seed;
  opts.fault.max_task_retries = 8;  // rides out p=0.05 failure streaks
  opts.fault.retry_backoff_ns = 0;
  CleanDB db(opts);
  db.RegisterTable("customer", DirtyCustomers());
  auto pq = db.Prepare(kQuery);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  constexpr int kDrivers = 6;
  constexpr int kIterations = 4;
  std::atomic<int> failures{0};
  std::mutex first_mu;
  std::string first_divergence;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; d++) {
    drivers.emplace_back([&, d] {
      for (int i = 0; i < kIterations; i++) {
        auto r = pq.value().Execute();
        std::string what;
        if (!r.ok()) {
          what = "driver execute: " + r.status().ToString();
        } else if (Render(r.value()) != baseline) {
          what = "driver " + std::to_string(d) + " diverged under faults";
        }
        if (!what.empty()) {
          failures++;
          std::lock_guard<std::mutex> lock(first_mu);
          if (first_divergence.empty()) first_divergence = std::move(what);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0) << first_divergence;
  // The sweep actually exercised the retry path (p=0.05 over hundreds of
  // task attempts makes zero injected failures effectively impossible).
  EXPECT_GT(db.cluster().session_metrics().tasks_retried.load(), 0u);
}

TEST(ConcurrencyStressTest, ReRegistrationDuringExecutionIsAllOrNothing) {
  // Drivers hammer a query whose table flips between two datasets with
  // different violation counts. Snapshot visibility means every single
  // execution must report one of the two serial results — never a blend.
  CleanDB db(FastCleanDBOptions(4));
  Dataset clean = MakeCustomers();
  Dataset dirty = DirtyCustomers();
  const char* query = "SELECT * FROM flip c FD(c.address, c.nationkey)";

  db.RegisterTable("flip", clean);
  auto pq = db.Prepare(query);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  const std::string render_clean = Render(pq.value().Execute().ValueOrDie());
  db.RegisterTable("flip", dirty);
  const std::string render_dirty = Render(pq.value().Execute().ValueOrDie());
  ASSERT_NE(render_clean, render_dirty);

  std::atomic<int> blends{0};
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int round = 0; !stop; round++) {
      db.RegisterTable("flip", (round % 2 != 0) ? clean : dirty);
    }
  });
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; d++) {
    drivers.emplace_back([&] {
      for (int i = 0; i < 10; i++) {
        auto r = pq.value().Execute();
        if (!r.ok()) {
          errors++;
          continue;
        }
        const std::string rendered = Render(r.value());
        if (rendered != render_clean && rendered != render_dirty) blends++;
      }
    });
  }
  for (auto& t : drivers) t.join();
  stop = true;
  flipper.join();
  EXPECT_EQ(blends.load(), 0);
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrencyStressTest, MutateVersusUnregisterChurnStaysConsistent) {
  // Mutators hammer AppendRows/DeleteRows while a registrar unregisters and
  // re-registers the same table, and a reader re-executes a prepared query
  // (alternating between the incremental delta path and cold engine runs as
  // the epochs churn). Contracts under test: UnregisterTable drops the
  // table, its generation counters, and its delta log in ONE exclusive
  // critical section (the documented lock order), so a mutation either
  // lands on a live registration — minor ≥ 1, delta logged — or fails with
  // kKeyError; a fresh registration always starts at minor 0 with an empty
  // log; and no execution ever sees a torn snapshot.
  CleanDB db(FastCleanDBOptions(4));
  const Schema schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}};
  auto fresh = [&] {
    Dataset t(schema);
    for (int i = 0; i < 8; i++) {
      t.Append({Value(static_cast<int64_t>(i)), Value(static_cast<int64_t>(i))});
    }
    return t;
  };
  db.RegisterTable("churn", fresh());
  auto pq = db.Prepare("SELECT * FROM churn c FD(c.a, c.b)");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> effective_mutations{0};
  std::mutex first_mu;
  std::string first_failure;
  auto record_failure = [&](const std::string& what) {
    failures++;
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_failure.empty()) first_failure = what;
  };

  // The registrar churns until every mutator has finished its fixed
  // iteration budget, so the unregister/mutate race is actually exercised
  // regardless of scheduling.
  std::atomic<int> mutators_done{0};
  std::thread registrar([&] {
    for (int round = 0; mutators_done.load() < 3; round++) {
      db.UnregisterTable("churn");
      if (round % 2 == 0) db.RegisterTable("churn", fresh());
      // Breathe between rounds: an unthrottled churn loop re-acquires the
      // table lock before the woken mutators are scheduled, starving them
      // indefinitely (the writer queue is not fair).
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    db.RegisterTable("churn", fresh());
    stop = true;
  });

  std::vector<std::thread> mutators;
  for (int m = 0; m < 3; m++) {
    mutators.emplace_back([&, m] {
      const Value tag(static_cast<int64_t>(100 + m));
      for (int i = 0; i < 400; i++) {
        Result<CleanDB::MutationResult> r =
            (i % 2 == 0)
                ? db.AppendRows("churn", {{tag, Value(static_cast<int64_t>(i))}})
                : db.DeleteRows("churn", [&](const Schema&, const Row& row) {
                    return row[0].Equals(tag);
                  });
        if (!r.ok()) {
          // Racing an unregister is the expected failure; anything else
          // (width error, internal) is a bug.
          if (r.status().code() != StatusCode::kKeyError) {
            record_failure("mutation: " + r.status().ToString());
          }
          continue;
        }
        if (r.value().rows_affected > 0) {
          effective_mutations++;
          // An effective mutation on a live registration must have landed
          // in that registration's epoch: minor ≥ 1, generation > 0. A
          // minor of 0 would mean the mutation wrote into a dropped (or
          // not-yet-reset) delta log — the torn state the atomic
          // UnregisterTable exists to prevent.
          if (r.value().minor == 0 || r.value().generation == 0) {
            record_failure("effective mutation with minor 0");
          }
        }
      }
      mutators_done++;
    });
  }

  std::thread reader([&] {
    while (!stop) {
      auto r = pq.value().Execute();
      if (!r.ok() && r.status().code() != StatusCode::kKeyError) {
        record_failure("execute: " + r.status().ToString());
      }
    }
  });

  registrar.join();
  for (auto& t : mutators) t.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  EXPECT_GT(effective_mutations.load(), 0u) << "churn never exercised mutations";
  // The final registration is fresh: minor 0, and the next mutation starts
  // a brand-new delta log at minor 1.
  EXPECT_EQ(db.TableMinor("churn"), 0u);
  auto last = db.AppendRows("churn", {{Value(int64_t{1}), Value(int64_t{2})}});
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_EQ(last.value().minor, 1u);
  // And the table still validates end to end (incremental path included).
  auto final_run = pq.value().Execute();
  ASSERT_TRUE(final_run.ok()) << final_run.status().ToString();
}

TEST(ConcurrencyStressTest, AdmissionBudgetSerializesWhileUnlimitedOverlaps) {
  // A slow scalar UDF samples how many executions are inside the engine at
  // once. Single-node sessions keep intra-execution parallelism at one, so
  // any overlap the gauge sees is *cross-execution* overlap.
  std::atomic<int> in_flight{0};
  std::atomic<int> max_overlap{0};
  auto register_probe = [&](CleanDB& db) {
    ASSERT_TRUE(db.functions()
                    .RegisterScalar(
                        "probe", 1,
                        [&](const std::vector<Value>& args) -> Result<Value> {
                          const int now = ++in_flight;
                          int seen = max_overlap.load();
                          while (now > seen &&
                                 !max_overlap.compare_exchange_weak(seen, now)) {
                          }
                          std::this_thread::sleep_for(std::chrono::milliseconds(1));
                          --in_flight;
                          return args[0];
                        })
                    .ok());
  };
  Dataset rows(Schema{{"name", ValueType::kString}});
  for (int i = 0; i < 24; i++) rows.Append({Value("r" + std::to_string(i))});

  auto hammer = [&](CleanDB& db) {
    auto pq = db.Prepare("SELECT probe(c.name) AS x FROM small c");
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    std::vector<std::thread> drivers;
    std::atomic<int> errors{0};
    for (int d = 0; d < 4; d++) {
      drivers.emplace_back([&] {
        for (int i = 0; i < 3; i++) {
          if (!pq.value().Execute().ok()) errors++;
        }
      });
    }
    for (auto& t : drivers) t.join();
    EXPECT_EQ(errors.load(), 0);
  };

  {
    // No budget: concurrent executions overlap inside the engine.
    CleanDB db(FastCleanDBOptions(/*nodes=*/1));
    db.RegisterTable("small", rows);
    register_probe(db);
    hammer(db);
    EXPECT_GE(max_overlap.load(), 2) << "executions never overlapped";
  }

  in_flight = 0;
  max_overlap = 0;
  {
    // A 1-byte budget makes every execution oversized: each is admitted
    // only when it is alone, i.e. executions are fully serialized.
    CleanDBOptions opts = FastCleanDBOptions(/*nodes=*/1);
    opts.max_inflight_bytes = 1;
    CleanDB db(opts);
    db.RegisterTable("small", rows);
    register_probe(db);
    hammer(db);
    EXPECT_EQ(max_overlap.load(), 1) << "admission failed to serialize";
  }
}

}  // namespace
}  // namespace cleanm
