// Tests for the CleanM parser, the clause desugaring, the CleanDB facade
// (end-to-end queries including the paper's motivating example), and the
// baseline simulators' documented restrictions.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "cleaning/cleandb.h"
#include "datagen/generators.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

CleanDBOptions FastOptions() { return testsupport::FastCleanDBOptions(4); }

// ---- Parser ----

TEST(ParserTest, MotivatingExampleQuery) {
  const char* query = R"(
    SELECT c.name, c.address, *
    FROM customer c, dictionary d
    FD(c.address, prefix(c.phone))
    DEDUP(token filtering, LD, 0.8, c.address)
    CLUSTER BY(token filtering, LD, 0.8, c.name)
  )";
  auto q = ParseCleanM(query).ValueOrDie();
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[0].table, "customer");
  EXPECT_EQ(q.from[0].alias, "c");
  EXPECT_EQ(q.from[1].alias, "d");
  ASSERT_EQ(q.select_list.size(), 3u);
  EXPECT_TRUE(q.select_list[2].star);
  ASSERT_EQ(q.fds.size(), 1u);
  EXPECT_EQ(q.fds[0].rhs[0]->kind, ExprKind::kCall);
  EXPECT_EQ(q.fds[0].rhs[0]->name, "prefix");
  ASSERT_EQ(q.dedups.size(), 1u);
  EXPECT_EQ(q.dedups[0].op, FilteringAlgo::kTokenFiltering);
  EXPECT_EQ(q.dedups[0].metric, SimilarityMetric::kLevenshtein);
  EXPECT_DOUBLE_EQ(q.dedups[0].theta, 0.8);
  ASSERT_EQ(q.cluster_bys.size(), 1u);
  EXPECT_EQ(q.cluster_bys[0].term->name, "name");
}

TEST(ParserTest, WhereGroupByHaving) {
  auto q = ParseCleanM(
               "SELECT l.orderkey FROM lineitem l WHERE l.price > 100 AND "
               "l.discount <= 0.05 GROUP BY l.orderkey HAVING count(l.orderkey) > 2")
               .ValueOrDie();
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->bin_op, BinaryOp::kAnd);
  ASSERT_EQ(q.group_by.size(), 1u);
  ASSERT_NE(q.having, nullptr);
}

TEST(ParserTest, MultiAttributeFdAndDefaults) {
  auto q = ParseCleanM(
               "SELECT * FROM lineitem l FD((l.orderkey, l.linenumber), l.suppkey) "
               "DEDUP(exact, l.name)")
               .ValueOrDie();
  ASSERT_EQ(q.fds.size(), 1u);
  EXPECT_EQ(q.fds[0].lhs.size(), 2u);
  ASSERT_EQ(q.dedups.size(), 1u);
  EXPECT_EQ(q.dedups[0].op, FilteringAlgo::kExactKey);
  // Defaults kept when metric/theta omitted.
  EXPECT_DOUBLE_EQ(q.dedups[0].theta, 0.8);
}

TEST(ParserTest, DistinctAndExpressions) {
  auto q = ParseCleanM("SELECT DISTINCT c.name AS n FROM t c WHERE NOT (c.x = 1)")
               .ValueOrDie();
  EXPECT_TRUE(q.distinct);
  EXPECT_EQ(q.select_list[0].alias, "n");
  EXPECT_EQ(q.where->kind, ExprKind::kUnary);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseCleanM("FROM t").ok());
  EXPECT_FALSE(ParseCleanM("SELECT * FROM").ok());
  EXPECT_FALSE(ParseCleanM("SELECT * FROM t FD(a.b)").ok());          // missing RHS
  EXPECT_FALSE(ParseCleanM("SELECT * FROM t DEDUP(bogus_algo, x)").ok());
  EXPECT_FALSE(ParseCleanM("SELECT * FROM t trailing garbage ,").ok());
}

TEST(ParserTest, StandaloneExpressions) {
  auto e = ParseCleanMExpr("prefix(c.phone)").ValueOrDie();
  EXPECT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->args[0]->ToString(), "c.phone");
  EXPECT_FALSE(ParseCleanMExpr("1 +").ok());
  auto num = ParseCleanMExpr("0.8").ValueOrDie();
  EXPECT_DOUBLE_EQ(num->literal.AsDouble(), 0.8);
}

// ---- CleanDB end-to-end ----

TEST(CleanDBTest, FdCheckFindsInjectedViolations) {
  CleanDB db(FastOptions());
  datagen::CustomerOptions copts;
  copts.base_rows = 500;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0.05;
  db.RegisterTable("customer", datagen::MakeCustomer(copts));

  FdClause fd;
  fd.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("prefix(c.phone)").ValueOrDie()};
  auto result = db.CheckFd("customer", "c", fd).ValueOrDie();
  EXPECT_GT(result.violations.size(), 0u);
  // Every reported group really has > 1 distinct prefix.
  for (const auto& v : result.violations) {
    EXPECT_GT(v.GetField("vals").ValueOrDie().AsList().size(), 1u);
  }
}

TEST(CleanDBTest, CleanDataHasNoFdViolations) {
  CleanDB db(FastOptions());
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.duplicate_fraction = 0;
  copts.fd_violation_fraction = 0;
  db.RegisterTable("customer", datagen::MakeCustomer(copts));
  FdClause fd;
  fd.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("prefix(c.phone)").ValueOrDie()};
  auto result = db.CheckFd("customer", "c", fd).ValueOrDie();
  EXPECT_EQ(result.violations.size(), 0u);
}

TEST(CleanDBTest, DenialConstraintThetaJoin) {
  CleanDB db(FastOptions());
  Dataset t(Schema{{"price", ValueType::kDouble}, {"discount", ValueType::kDouble}});
  t.Append({Value(10.0), Value(0.05)});
  t.Append({Value(20.0), Value(0.02)});  // violates with row 0
  t.Append({Value(30.0), Value(0.08)});
  db.RegisterTable("items", t);
  auto pred = Binary(
      BinaryOp::kAnd,
      Binary(BinaryOp::kLt, ParseCleanMExpr("t1.price").ValueOrDie(),
             ParseCleanMExpr("t2.price").ValueOrDie()),
      Binary(BinaryOp::kGt, ParseCleanMExpr("t1.discount").ValueOrDie(),
             ParseCleanMExpr("t2.discount").ValueOrDie()));
  auto result = db.CheckDenialConstraint("items", pred).ValueOrDie();
  // (10,0.05)<(20,0.02) violates; (10,0.05)<(30,0.08) does not;
  // (20,0.02)<(30,0.08) does not.
  EXPECT_EQ(result.violations.size(), 1u);
}

TEST(CleanDBTest, DeduplicationFindsInjectedDuplicates) {
  CleanDB db(FastOptions());
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.duplicate_fraction = 0.1;
  copts.max_duplicates = 5;
  copts.fd_violation_fraction = 0;
  db.RegisterTable("customer", datagen::MakeCustomer(copts));
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;
  dedup.attributes = {ParseCleanMExpr("c.address").ValueOrDie()};
  dedup.theta = 0.6;
  auto result = db.Deduplicate("customer", "c", dedup).ValueOrDie();
  EXPECT_GT(result.violations.size(), 0u);
  // Every reported pair is really similar.
  for (const auto& v : result.violations) {
    const Value p1 = v.GetField("p1").ValueOrDie();
    const Value p2 = v.GetField("p2").ValueOrDie();
    EXPECT_FALSE(p1.Equals(p2));
  }
}

TEST(CleanDBTest, TermValidationSuggestsCorrectRepairs) {
  CleanDB db(FastOptions());
  Dataset data(Schema{{"name", ValueType::kString}});
  data.Append({Value("jonathan smith")});
  data.Append({Value("jonathan smyth")});  // misspelling
  data.Append({Value("mary jones")});
  Dataset dict(Schema{{"name", ValueType::kString}});
  dict.Append({Value("jonathan smith")});
  dict.Append({Value("mary jones")});
  db.RegisterTable("data", data);
  db.RegisterTable("dict", dict);

  ClusterByClause cb;
  cb.op = FilteringAlgo::kTokenFiltering;
  cb.metric = SimilarityMetric::kLevenshtein;
  cb.theta = 0.8;
  cb.term = ParseCleanMExpr("c.name").ValueOrDie();
  auto result = db.ValidateTerms("data", "c", "dict", "name", cb).ValueOrDie();
  // Exactly the misspelled name is flagged, repaired to the dictionary form.
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].GetField("term").ValueOrDie().AsString(),
            "jonathan smyth");
  EXPECT_EQ(result.violations[0].GetField("suggestion").ValueOrDie().AsString(),
            "jonathan smith");
}

TEST(CleanDBTest, UnifiedQueryCoalescesSharedGroupings) {
  // Figure 5's query: FD1 address→prefix(phone), FD2 address→nationkey,
  // DEDUP on address. All three group by address → two coalescings.
  CleanDB db(FastOptions());
  datagen::CustomerOptions copts;
  copts.base_rows = 400;
  copts.duplicate_fraction = 0.05;
  copts.max_duplicates = 4;
  db.RegisterTable("customer", datagen::MakeCustomer(copts));
  const char* query = R"(
    SELECT * FROM customer c
    FD(c.address, prefix(c.phone))
    FD(c.address, c.nationkey)
    DEDUP(exact, c.address)
  )";
  auto result = db.Execute(query).ValueOrDie();
  EXPECT_EQ(result.nests_coalesced, 2);
  EXPECT_EQ(result.ops.size(), 3u);
  EXPECT_GT(result.dirty_entities.size(), 0u);
  // Unified execution vs standalone: the coalesced run shuffles less.
  CleanDBOptions separate = FastOptions();
  separate.unify_operations = false;
  CleanDB db2(separate);
  db2.RegisterTable("customer", datagen::MakeCustomer(copts));
  auto result2 = db2.Execute(query).ValueOrDie();
  EXPECT_EQ(result2.nests_coalesced, 0);
  EXPECT_LT(result.metrics.rows_shuffled, result2.metrics.rows_shuffled);
  // Same violations either way.
  for (size_t i = 0; i < 3; i++) {
    EXPECT_EQ(result.ops[i].violations.size(), result2.ops[i].violations.size());
  }
}

TEST(CleanDBTest, TransformsSplitDateAndFillMissing) {
  CleanDB db(FastOptions());
  datagen::LineitemOptions lopts;
  lopts.rows = 200;
  lopts.missing_fraction = 0.2;
  lopts.noise_fraction = 0;
  db.RegisterTable("lineitem", datagen::MakeLineitem(lopts));

  CleanDB::TransformSpec spec;
  spec.split_date_column = "receiptdate";
  spec.fill_missing_column = "quantity";
  auto one_pass = db.Transform("lineitem", spec, /*one_pass=*/true).ValueOrDie();
  auto two_pass = db.Transform("lineitem", spec, /*one_pass=*/false).ValueOrDie();

  ASSERT_EQ(one_pass.num_rows(), 200u);
  EXPECT_TRUE(one_pass.schema().HasField("receiptdate_year"));
  const size_t qty = one_pass.schema().IndexOf("quantity").ValueOrDie();
  const size_t year = one_pass.schema().IndexOf("receiptdate_year").ValueOrDie();
  for (size_t i = 0; i < one_pass.num_rows(); i++) {
    EXPECT_FALSE(one_pass.row(i)[qty].is_null());
    EXPECT_GE(one_pass.row(i)[year].AsInt(), 1992);
    // Both execution modes repair identically.
    EXPECT_TRUE(one_pass.row(i)[qty].Equals(two_pass.row(i)[qty]));
  }
}

TEST(CleanDBTest, ErrorsSurfaceCleanly) {
  CleanDB db(FastOptions());
  EXPECT_FALSE(db.Execute("SELECT * FROM missing_table FD(c.a, c.b)").ok());
  EXPECT_FALSE(db.Execute("not a query").ok());
  Dataset t(Schema{{"a", ValueType::kInt}});
  db.RegisterTable("t", t);
  // CLUSTER BY without a dictionary table.
  EXPECT_FALSE(db.Execute("SELECT * FROM t c CLUSTER BY(tf, LD, 0.8, c.a)").ok());
}

// ---- Baselines ----

TEST(BaselineTest, BigDansingRejectsComputedAttributes) {
  BigDansingSim bd(FastOptions());
  datagen::CustomerOptions copts;
  copts.base_rows = 100;
  bd.RegisterTable("customer", datagen::MakeCustomer(copts));
  FdClause fd1;
  fd1.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd1.rhs = {ParseCleanMExpr("prefix(c.phone)").ValueOrDie()};
  auto r1 = bd.CheckFd("customer", "c", fd1);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kNotImplemented);
  // Plain attributes work.
  FdClause fd2;
  fd2.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd2.rhs = {ParseCleanMExpr("c.nationkey").ValueOrDie()};
  EXPECT_TRUE(bd.CheckFd("customer", "c", fd2).ok());
}

TEST(BaselineTest, SparkSqlCartesianDcAbortsOverBudget) {
  SparkSqlSim spark(FastOptions());
  datagen::LineitemOptions lopts;
  lopts.rows = 2000;
  spark.RegisterTable("lineitem", datagen::MakeLineitem(lopts));
  auto pred = Binary(BinaryOp::kLt, ParseCleanMExpr("t1.price").ValueOrDie(),
                     ParseCleanMExpr("t2.price").ValueOrDie());
  // Tiny budget → "did not terminate".
  auto r = spark.CheckDenialConstraint("lineitem", pred, nullptr, 1000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("did not terminate"), std::string::npos);
}

TEST(BaselineTest, BaselinesAgreeWithCleanDBOnViolations) {
  datagen::CustomerOptions copts;
  copts.base_rows = 300;
  copts.fd_violation_fraction = 0.05;
  copts.duplicate_fraction = 0;
  FdClause fd;
  fd.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("c.nationkey").ValueOrDie()};

  CleanDB cleandb(FastOptions());
  cleandb.RegisterTable("customer", datagen::MakeCustomer(copts));
  auto expected = cleandb.CheckFd("customer", "c", fd).ValueOrDie();

  SparkSqlSim spark(FastOptions());
  spark.RegisterTable("customer", datagen::MakeCustomer(copts));
  auto spark_result = spark.CheckFd("customer", "c", fd).ValueOrDie();
  EXPECT_EQ(spark_result.violations.size(), expected.violations.size());

  BigDansingSim bd(FastOptions());
  bd.RegisterTable("customer", datagen::MakeCustomer(copts));
  auto bd_result = bd.CheckFd("customer", "c", fd).ValueOrDie();
  EXPECT_EQ(bd_result.violations.size(), expected.violations.size());
}

// ---- Data generators ----

TEST(DatagenTest, CustomerShapesAndFds) {
  datagen::CustomerOptions copts;
  copts.base_rows = 500;
  copts.duplicate_fraction = 0.1;
  copts.max_duplicates = 10;
  auto d = datagen::MakeCustomer(copts);
  EXPECT_GT(d.num_rows(), 500u);  // duplicates added
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatagenTest, DblpNoiseBookkeeping) {
  datagen::DblpOptions dopts;
  dopts.rows = 500;
  dopts.noise_fraction = 0.2;
  std::vector<std::pair<std::string, std::string>> noisy;
  auto d = datagen::MakeDblp(dopts, &noisy);
  EXPECT_GT(d.num_rows(), 500u);  // duplicates
  EXPECT_GT(noisy.size(), 0u);
  for (const auto& [dirty, clean] : noisy) EXPECT_NE(dirty, clean);
}

TEST(DatagenTest, MagHasDuplicatesAndMissingDois) {
  datagen::MagOptions mopts;
  mopts.rows = 1000;
  auto d = datagen::MakeMag(mopts);
  EXPECT_GT(d.num_rows(), 1000u);
  const size_t doi = d.schema().IndexOf("doi").ValueOrDie();
  int missing = 0;
  for (const auto& row : d.rows()) {
    if (row[doi].is_null()) missing++;
  }
  EXPECT_GT(missing, 0);
}

TEST(DatagenTest, AddNoiseEditsApproximatelyFactorChars) {
  Rng rng(1);
  const std::string s = "abcdefghijklmnopqrst";  // 20 chars
  const std::string noisy = datagen::AddNoise(s, 0.2, &rng);
  EXPECT_EQ(noisy.size(), s.size());
  size_t diff = 0;
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] != noisy[i]) diff++;
  }
  EXPECT_LE(diff, 4u);  // at most `edits` positions actually changed
  EXPECT_GE(diff, 1u);
}

}  // namespace
}  // namespace cleanm
