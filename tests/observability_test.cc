// The observability surface: EXPLAIN golden texts, EXPLAIN ANALYZE
// (QueryProfile) determinism and counter reconciliation, per-node skew
// flags, Chrome-trace export, Prometheus metrics text, and the
// profiling-off zero-span guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cleaning/prepared_query.h"
#include "cleaning/query_profile.h"
#include "common/trace.h"
#include "language/parser.h"
#include "support/fixtures.h"

namespace cleanm {
namespace {

CleanDBOptions FastOptions() { return testsupport::FastCleanDBOptions(4); }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// ---- EXPLAIN golden texts ----

TEST(ExplainTest, FdPlanGolden) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().Explain(),
            "PreparedQuery: 1 operation(s), unify=on\n"
            "== FD ==\n"
            "Select[(count(vals) > 1)]\n"
            "  Nest[by exact(c.address), vals=set(prefix(c.phone)), "
            "partition=bag(c)]\n"
            "    Scan(customer as c)  [generation 1; partitioned scan cached "
            "per node width]\n");
}

TEST(ExplainTest, DedupPlanGolden) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared =
      db.Prepare("SELECT * FROM customer c DEDUP(exact, LD, 0.8, c.address)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().Explain(),
            "PreparedQuery: 1 operation(s), unify=on\n"
            "== DEDUP ==\n"
            "Select[((p1 < p2) and similar(\"LD\", to_string(p1), "
            "to_string(p2), 0.8))]\n"
            "  Unnest[p2 <- partition]\n"
            "    Unnest[p1 <- partition]\n"
            "      Select[(count(partition) > 1)]\n"
            "        Nest[by exact(c.address), partition=bag(c)]\n"
            "          Scan(customer as c)  [generation 1; partitioned scan "
            "cached per node width]\n");
}

TEST(ExplainTest, DenialConstraintPlanGolden) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.PrepareDenialConstraint(
      "customer",
      ParseCleanMExpr("t1.address = t2.address AND t1.nationkey <> t2.nationkey")
          .ValueOrDie());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().Explain(),
            "PreparedQuery: 1 operation(s), unify=on\n"
            "== DC ==\n"
            "Join[((t1.address = t2.address) and (t1.nationkey != "
            "t2.nationkey))]\n"
            "  Scan(customer as t1)  [generation 1; partitioned scan cached "
            "per node width]\n"
            "  Scan(customer as t2)  [generation 1; partitioned scan cached "
            "per node width]\n");
}

TEST(ExplainTest, SelectPlanGolden) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.Prepare(
      "SELECT c.address, count(c.name) FROM customer c GROUP BY c.address");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().Explain(),
            "PreparedQuery: 1 operation(s), unify=on\n"
            "== SELECT ==\n"
            "Reduce[list / {address: key, count: agg0}]\n"
            "  Nest[by exact(c.address), agg0=count(c.name)]\n"
            "    Scan(customer as c)  [generation 1; partitioned scan cached "
            "per node width]\n");
}

TEST(ExplainTest, SharedNestMarkedWhenUnified) {
  // Two FDs over the same grouping term coalesce; the shared Nest must be
  // marked in the unified rendering and absent from the standalone one.
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.Prepare(
      "SELECT * FROM customer c "
      "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const std::string unified = prepared.value().Explain();
  EXPECT_NE(unified.find("[shared S1: executed once"), std::string::npos)
      << unified;
  EXPECT_NE(unified.find("[shared S1: see above]"), std::string::npos) << unified;
  EXPECT_NE(unified.find("Nest stage(s) coalesced"), std::string::npos) << unified;

  ExecOptions standalone;
  standalone.unify_operations = false;
  const std::string plain = prepared.value().Explain(standalone);
  EXPECT_EQ(plain.find("[shared"), std::string::npos) << plain;
}

TEST(ExplainTest, UnregisteredTableAnnotated) {
  CleanDB db(FastOptions());
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_NE(prepared.value().Explain().find("not registered yet"),
            std::string::npos);
}

// ---- Profiling (EXPLAIN ANALYZE) ----

/// The per-operator row signature of a profile: (name, label, rows_in,
/// rows_out) in tree order.
std::vector<std::string> RowSignature(const QueryProfile& profile) {
  std::vector<std::string> out;
  std::function<void(size_t)> walk = [&](size_t idx) {
    const OperatorProfile& op = profile.operators()[idx];
    out.push_back(op.name + "/" + op.label + ":" + std::to_string(op.rows_in) +
                  "->" + std::to_string(op.rows_out));
    for (size_t c : op.children) walk(c);
  };
  for (size_t r : profile.roots()) walk(r);
  return out;
}

TEST(QueryProfileTest, RowsDeterministicAcrossRunsAndReconciled) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared = db.Prepare(
      "SELECT * FROM customer c "
      "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey) "
      "DEDUP(exact, LD, 0.8, c.address)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQuery& pq = prepared.value();

  for (size_t morsel : {size_t{1}, size_t{7}, size_t{4096}}) {
    ExecOptions opts;
    opts.profile = true;
    opts.morsel_rows = morsel;
    auto first = pq.Execute(opts);
    auto second = pq.Execute(opts);
    ASSERT_TRUE(first.ok() && second.ok());
    ASSERT_NE(first.value().profile, nullptr);
    ASSERT_NE(second.value().profile, nullptr);

    // Bit-identical per-operator rows across runs at this morsel size.
    EXPECT_EQ(RowSignature(*first.value().profile),
              RowSignature(*second.value().profile))
        << "morsel_rows=" << morsel;

    // Exact reconciliation: the profile's summed self-counters equal the
    // execution's flat counters for everything that moves inside the run
    // (the out-of-core folds land after the root span closes by design).
    for (const auto& result : {&first.value(), &second.value()}) {
      const MetricsCounters totals = result->profile->totals();
      EXPECT_EQ(totals.rows_scanned, result->metrics.rows_scanned);
      EXPECT_EQ(totals.groups_built, result->metrics.groups_built);
      EXPECT_EQ(totals.rows_shuffled, result->metrics.rows_shuffled);
      EXPECT_EQ(totals.comparisons, result->metrics.comparisons);
      EXPECT_EQ(totals.morsels_processed, result->metrics.morsels_processed);
    }

    // The rendered tree carries the root and the per-plan operators.
    const std::string tree = first.value().profile->ToString();
    EXPECT_NE(tree.find("-> execute"), std::string::npos) << tree;
    EXPECT_NE(tree.find("[FD]"), std::string::npos) << tree;
    EXPECT_NE(tree.find("[DEDUP]"), std::string::npos) << tree;
  }
}

TEST(QueryProfileTest, ProfileOffRecordsZeroSpansAndNoProfile) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  const uint64_t before = TraceRecorder::TotalSpansRecorded();
  auto result = prepared.value().Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().profile, nullptr);
  EXPECT_EQ(TraceRecorder::TotalSpansRecorded(), before)
      << "profiling off must record literally zero spans";
}

TEST(QueryProfileTest, SessionDefaultProfileKnob) {
  CleanDBOptions options = FastOptions();
  options.profile = true;
  CleanDB db(options);
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto result =
      db.Execute("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.value().profile, nullptr);
  EXPECT_FALSE(result.value().profile->spans().empty());
}

TEST(QueryProfileTest, SkewedNestFlagsImbalance) {
  // Every row shares one grouping key, so Nest routes all of them to a
  // single node: ImbalanceFactor = node count > the 2.0 default threshold.
  CleanDB db(FastOptions());
  Dataset skewed(Schema{{"name", ValueType::kString},
                        {"address", ValueType::kString},
                        {"phone", ValueType::kString},
                        {"nationkey", ValueType::kInt}});
  for (int i = 0; i < 64; i++) {
    skewed.Append(Row{Value("customer#" + std::to_string(i)),
                      Value("rue de lausanne 1"),
                      Value(std::to_string(100 + i) + "-555"),
                      Value(static_cast<int64_t>(i % 7))});
  }
  db.RegisterTable("customer", std::move(skewed));
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ExecOptions opts;
  opts.profile = true;
  auto result = prepared.value().Execute(opts);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.value().profile, nullptr);

  bool found_skewed_nest = false;
  for (const auto& op : result.value().profile->operators()) {
    if (op.name != "Nest" || op.node_rows.empty()) continue;
    found_skewed_nest = true;
    EXPECT_GT(op.imbalance, 2.0);
    EXPECT_TRUE(op.skew_warning);
  }
  EXPECT_TRUE(found_skewed_nest);
  EXPECT_NE(result.value().profile->ToString().find("SKEW"), std::string::npos);
}

TEST(QueryProfileTest, ChromeTraceFileAndJsonRender) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  auto prepared =
      db.Prepare("SELECT * FROM customer c FD(c.address, prefix(c.phone))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  const std::string path =
      (std::filesystem::temp_directory_path() / "cleanm_trace_test.json")
          .string();
  ExecOptions opts;
  opts.profile = true;
  opts.trace_path = path;
  auto result = prepared.value().Execute(opts);
  ASSERT_TRUE(result.ok());

  const std::string trace = ReadFileOrDie(path);
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  std::remove(path.c_str());

  const std::string json = result.value().profile->ToJson();
  EXPECT_NE(json.find("\"operators\":"), std::string::npos);
  EXPECT_NE(json.find("\"totals\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows_scanned\":"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextFormat) {
  CleanDB db(FastOptions());
  db.RegisterTable("customer", testsupport::MakeCustomers());
  ASSERT_TRUE(
      db.Execute("SELECT * FROM customer c FD(c.address, prefix(c.phone))").ok());
  const std::string text = db.ExportMetricsText();
  EXPECT_NE(text.find("# TYPE cleandb_rows_scanned_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE cleandb_peak_bytes_materialized gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cleandb_bytes_materialized_now 0"), std::string::npos)
      << text;
  // The session accumulated this execution's scan work.
  bool scanned_nonzero = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("cleandb_rows_scanned_total ", 0) == 0) {
      scanned_nonzero = line != "cleandb_rows_scanned_total 0";
    }
  }
  EXPECT_TRUE(scanned_nonzero) << text;
}

}  // namespace
}  // namespace cleanm
