// E5 — Table 4: syntactic transformations over TPC-H lineitem.
//
// Measures the slowdown of (a) splitting the receipt date, (b) filling
// missing quantity values with the column average, (c) both as two separate
// dataset traversals, and (d) both in one pass, each relative to a plain
// full-projection query over the dataset.
//
// Paper: split 1.15×, fill 1.15×, two-step 2.3×, one-step 1.19× — the
// optimizer's one-pass plan costs about the same as a single operation.
#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <string>

#include "cleaning/cleandb.h"
#include "common/timer.h"
#include "datagen/generators.h"
#include "storage/colpack.h"

int main(int argc, char** argv) {
  using namespace cleanm;
  // --smoke: tiny size so CTest can verify the bench end to end.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  std::printf("=== E5 — Table 4: transformation slowdowns (lineitem 'SF70'-scaled) ===\n");
  std::printf("paper: split 1.15x | fill 1.15x | both two-step 2.30x | both one-step 1.19x\n\n");

  CleanDBOptions opts;
  opts.num_nodes = 8;
  opts.shuffle_ns_per_byte = 0;
  CleanDB db(opts);
  datagen::LineitemOptions lopts;
  lopts.rows = smoke ? 2000 : 420000 / 2;  // SF70-equivalent at 1/2000 scale
  lopts.missing_fraction = 0.05;
  lopts.noise_fraction = 0;
  auto dataset = datagen::MakeLineitem(lopts);
  const size_t n_rows = dataset.num_rows();

  // As in the paper, every measurement includes reading the (Parquet-like)
  // input from disk — the plain query is read + full projection.
  namespace fs = std::filesystem;
  // Per-process name: concurrent ctest runs must not share bench files.
  const std::string path =
      (fs::temp_directory_path() /
       ("cleanm_sf70_" + std::to_string(::getpid()) + ".cpk")).string();
  CLEANM_CHECK(WriteColpack(dataset, path).ok());

  // Warm-up read (page cache + allocator), then the plain-query baseline.
  { auto warm = ReadColpack(path).ValueOrDie(); }
  Timer plain_timer;
  {
    auto table = ReadColpack(path).ValueOrDie();
    Dataset projected(table.schema());
    for (const auto& row : table.rows()) projected.Append(row);
  }
  const double plain = plain_timer.ElapsedSeconds();

  auto timed = [&](const CleanDB::TransformSpec& spec, bool one_pass) {
    Timer t;
    db.RegisterTable("lineitem", ReadColpack(path).ValueOrDie());
    auto out = db.Transform("lineitem", spec, one_pass).ValueOrDie();
    const double secs = t.ElapsedSeconds();
    CLEANM_CHECK(out.num_rows() == n_rows);
    return secs;
  };

  CleanDB::TransformSpec split_only;
  split_only.split_date_column = "receiptdate";
  CleanDB::TransformSpec fill_only;
  fill_only.fill_missing_column = "quantity";
  CleanDB::TransformSpec both;
  both.split_date_column = "receiptdate";
  both.fill_missing_column = "quantity";

  const double split = timed(split_only, false);
  const double fill = timed(fill_only, false);
  const double two_step = timed(both, /*one_pass=*/false);
  const double one_step = timed(both, /*one_pass=*/true);

  std::printf("%-36s %10s %10s %8s\n", "operation", "time(s)", "plain(s)", "slowdown");
  std::printf("%-36s %10.3f %10.3f %7.2fx  (paper 1.15x)\n", "Split date", split, plain,
              split / plain);
  std::printf("%-36s %10.3f %10.3f %7.2fx  (paper 1.15x)\n", "Fill values", fill, plain,
              fill / plain);
  std::printf("%-36s %10.3f %10.3f %7.2fx  (paper 2.30x)\n",
              "Split date & Fill values (two steps)", two_step, plain, two_step / plain);
  std::printf("%-36s %10.3f %10.3f %7.2fx  (paper 1.19x)\n",
              "Split date & Fill values (one step)", one_step, plain, one_step / plain);
  std::printf("\n[measured] the one-pass plan should cost roughly one operation; the "
              "two-step plan roughly the sum of both.\n");
  fs::remove(path);
  return 0;
}
