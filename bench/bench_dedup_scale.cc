// E9/E10 — Figure 8(a,b): duplicate elimination under heavy skew.
//
// 8(a): TPC-H customer with Zipf-distributed duplicate counts in [1,50] and
// [1,100]; CleanDB vs BigDansing vs Spark SQL. Paper shape: CleanDB scales
// best because it pre-aggregates locally; the baselines shuffle the whole
// dataset to build their blocks.
//
// 8(b): MAG-like publication data (real-world skew), year-2014 subset vs
// the full set; CleanDB vs Spark SQL. Paper: Spark SQL needs >10h on the
// full set; CleanDB's skew-resilient primitives finish.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "datagen/generators.h"

namespace cleanm {
namespace {

// --nonet: zero simulated network cost; --legacy: spawn-per-call threads +
// unbatched shuffles (the pre-pool model, for before/after comparison).
bool g_nonet = false;
bool g_legacy = false;

CleanDBOptions BenchOptions() {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  // Per-byte shuffle cost including serialization (see DESIGN.md).
  opts.shuffle_ns_per_byte = g_nonet ? 0.0 : 40.0;
  if (g_legacy) {
    opts.use_worker_pool = false;
    opts.shuffle_batch_rows = 1;
  }
  return opts;
}

DedupClause CustomerDedup() {
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;
  dedup.metric = SimilarityMetric::kLevenshtein;
  dedup.theta = 0.8;
  dedup.attributes = {ParseCleanMExpr("c.address").ValueOrDie()};
  return dedup;
}

DedupClause MagDedup() {
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;
  dedup.metric = SimilarityMetric::kLevenshtein;
  dedup.theta = 0.8;
  dedup.attributes = {ParseCleanMExpr("c.year").ValueOrDie(),
                      ParseCleanMExpr("c.author_id").ValueOrDie()};
  return dedup;
}

// Substrate A/B — a session of many sequential dedup operators over small
// partitions: per-operator dispatch dominates, which is exactly what the
// persistent worker pool amortizes (thread startup paid once per session,
// not once per operator). Pure compute, pool+batching vs. legacy.
double RunSequentialSession(bool legacy, size_t rows, int repeats) {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  opts.shuffle_ns_per_byte = 0;
  if (legacy) {
    opts.use_worker_pool = false;
    opts.shuffle_batch_rows = 1;
  }
  CleanDB db(opts);
  datagen::CustomerOptions copts;
  copts.base_rows = rows;
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 5;
  db.RegisterTable("t", datagen::MakeCustomer(copts));
  const DedupClause dedup = CustomerDedup();  // parse clause exprs once
  double best = -1;
  for (int session = 0; session < 3; session++) {  // best-of-3 vs scheduler noise
    Timer timer;
    for (int r = 0; r < repeats; r++) {
      CLEANM_CHECK(db.Deduplicate("t", "c", dedup).ok());
    }
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

template <typename System>
double Run(System& system, const Dataset& data, const DedupClause& dedup,
           uint64_t* shuffled = nullptr) {
  system.RegisterTable("t", data);
  DedupClause d = dedup;
  // Rebind attribute exprs from alias c to the registered alias.
  auto r = system.Deduplicate("t", "c", d);
  CLEANM_CHECK(r.ok());
  if (shuffled) *shuffled = system.cluster().metrics().rows_shuffled.load();
  return r.value().seconds;
}

}  // namespace
}  // namespace cleanm

int main(int argc, char** argv) {
  using namespace cleanm;
  // --smoke: tiny sizes so CTest can verify the bench end to end.
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--nonet") g_nonet = true;
    if (arg == "--legacy") g_legacy = true;
  }
  const size_t base_rows = smoke ? 200 : 4000;
  const std::vector<size_t> dup_sweep =
      smoke ? std::vector<size_t>{5} : std::vector<size_t>{50, 100};
  std::printf("=== E9 — Figure 8a: customer dedup, Zipf duplicates ===\n");
  std::printf("paper: CleanDB fastest; BigDansing and SparkSQL shuffle the whole "
              "dataset to build blocks\n\n");
  std::printf("%-14s %12s %14s %12s\n", "duplicates", "CleanDB(s)", "BigDansing(s)",
              "SparkSQL(s)");
  {  // Warm-up pass so measurement order is fair.
    datagen::CustomerOptions w;
    w.base_rows = base_rows;
    w.max_duplicates = 20;
    CleanDB warm(BenchOptions());
    (void)Run(warm, datagen::MakeCustomer(w), CustomerDedup());
  }
  for (size_t max_dups : dup_sweep) {
    datagen::CustomerOptions copts;
    copts.base_rows = base_rows;
    copts.duplicate_fraction = 0.05;
    copts.max_duplicates = max_dups;
    auto data = datagen::MakeCustomer(copts);

    CleanDB cleandb(BenchOptions());
    uint64_t cdb_shuffled = 0;
    const double cdb = Run(cleandb, data, CustomerDedup(), &cdb_shuffled);
    BigDansingSim bigdansing(BenchOptions());
    uint64_t bd_shuffled = 0;
    const double bd = Run(bigdansing, data, CustomerDedup(), &bd_shuffled);
    SparkSqlSim spark(BenchOptions());
    uint64_t sp_shuffled = 0;
    const double sp = Run(spark, data, CustomerDedup(), &sp_shuffled);
    std::printf("[1-%-3zu] %19.3f %14.3f %12.3f   (rows shuffled: %llu / %llu / %llu)\n",
                max_dups, cdb, bd, sp, static_cast<unsigned long long>(cdb_shuffled),
                static_cast<unsigned long long>(bd_shuffled),
                static_cast<unsigned long long>(sp_shuffled));
  }

  std::printf("\n=== E10 — Figure 8b: MAG-like dedup (real-world skew) ===\n");
  std::printf("paper: CleanDB 52 min on the full 33GB set; SparkSQL > 10h; on the "
              "2014 subset both finish but CleanDB is faster\n\n");
  datagen::MagOptions mopts;
  mopts.rows = smoke ? 500 : 15000;
  auto mag = datagen::MakeMag(mopts);
  // Year-2014 subset.
  Dataset mag2014(mag.schema());
  const size_t year_idx = mag.schema().IndexOf("year").ValueOrDie();
  for (const auto& row : mag.rows()) {
    if (row[year_idx].AsInt() == 2014) mag2014.Append(row);
  }
  std::printf("%-10s %10s %12s %12s\n", "dataset", "rows", "CleanDB(s)", "SparkSQL(s)");
  for (const auto* which : {"MAG2014", "MAGtotal"}) {
    const Dataset& data = std::string(which) == "MAG2014" ? mag2014 : mag;
    CleanDB cleandb(BenchOptions());
    const double cdb = Run(cleandb, data, MagDedup());
    SparkSqlSim spark(BenchOptions());
    const double sp = Run(spark, data, MagDedup());
    std::printf("%-10s %10zu %12.3f %12.3f\n", which, data.num_rows(), cdb, sp);
  }
  std::printf("\n[measured] verify CleanDB < baselines in every row and that the gap "
              "grows with the duplicate skew / dataset size.\n");

  std::printf("\n=== substrate A/B: sequential dedup session (many operators), "
              "pure compute ===\n");
  // Small partitions keep each operator dispatch-bound — the regime the
  // pool targets (per-op compute at this size is tens of microseconds per
  // node, far below legacy thread-spawn cost).
  const size_t session_rows = 16;
  const int session_repeats = smoke ? 6 : 30;
  const double seq_legacy = RunSequentialSession(/*legacy=*/true, session_rows,
                                                 session_repeats);
  const double seq_pool = RunSequentialSession(/*legacy=*/false, session_rows,
                                               session_repeats);
  std::printf("%d dedup ops over %zu rows: legacy %7.3f s   pool %7.3f s\n",
              session_repeats, session_rows, seq_legacy, seq_pool);
  std::printf("[measured] substrate speedup %.2fx on the sequential-operator "
              "session\n",
              seq_legacy / seq_pool);
  return 0;
}
