// E1/E2/E3 — Table 3, Figure 3, Figure 4: term validation over a DBLP-like
// author corpus, sweeping the filtering algorithm (token filtering q ∈
// {2,3,4}; single-pass k-means k ∈ {5,10,20}), reporting per-phase runtime
// (grouping vs similarity) and accuracy (precision / recall / F-score),
// then accuracy as noise grows 20% → 40% (threshold lowered with noise, as
// in the paper).
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "cleaning/cleandb.h"
#include "cluster/filtering.h"
#include "common/timer.h"
#include "datagen/generators.h"
#include "text/similarity.h"

namespace cleanm {
namespace {

struct Config {
  const char* label;
  FilteringAlgo algo;
  size_t q_or_k;
};

struct Accuracy {
  double precision, recall, fscore;
};

struct PhaseTimes {
  double grouping, similarity;
};

/// Runs validation of `dirty` terms against `dict`, suggesting for each
/// dirty term its most similar in-group dictionary word. Ground truth maps
/// dirty → clean.
Accuracy RunValidation(const std::vector<std::string>& dirty,
                       const std::vector<std::string>& dict,
                       const std::map<std::string, std::string>& truth, double theta,
                       const Config& config, PhaseTimes* times) {
  FilteringOptions fopts;
  fopts.algo = config.algo;
  fopts.q = config.q_or_k;
  fopts.k = config.q_or_k;

  Timer group_timer;
  // Group data and dictionary with the same filtering monoid; k-means
  // centers come from the dictionary (as CleanDB does).
  const auto data_groups = BuildGroups(dirty, fopts, dict);
  const auto dict_groups = BuildGroups(dict, fopts, dict);
  times->grouping = group_timer.ElapsedSeconds();

  Timer sim_timer;
  // Intra-group comparisons only: for each dirty term keep the most
  // similar dictionary word above theta.
  std::map<std::string, std::pair<std::string, double>> best;
  for (const auto& [key, members] : data_groups) {
    auto dit = dict_groups.find(key);
    if (dit == dict_groups.end()) continue;
    for (uint32_t m : members) {
      const std::string& term = dirty[m];
      auto& candidate = best[term];
      for (uint32_t dm : dit->second) {
        const std::string& word = dict[dm];
        if (!LevenshteinSimilarAtLeast(term, word, theta)) continue;
        const double sim = LevenshteinSimilarity(term, word);
        if (sim > candidate.second) candidate = {word, sim};
      }
    }
  }
  times->similarity = sim_timer.ElapsedSeconds();

  size_t suggested = 0, correct = 0;
  for (const auto& [term, repair] : best) {
    if (repair.second <= 0) continue;
    suggested++;
    auto t = truth.find(term);
    if (t != truth.end() && t->second == repair.first) correct++;
  }
  Accuracy acc;
  acc.precision = suggested ? static_cast<double>(correct) / suggested : 1.0;
  acc.recall = truth.empty() ? 1.0 : static_cast<double>(correct) / truth.size();
  acc.fscore = (acc.precision + acc.recall) > 0
                   ? 2 * acc.precision * acc.recall / (acc.precision + acc.recall)
                   : 0;
  return acc;
}

// Set by --smoke: tiny corpus so CTest can verify the bench end to end.
size_t g_corpus_rows = 4000;
size_t g_author_pool = 800;

/// Builds the dirty-term corpus: flattened author occurrences with noise,
/// keeping only terms absent from the dictionary (the CleanDB pre-filter).
void BuildCorpus(double noise_factor, std::vector<std::string>* dirty,
                 std::vector<std::string>* dict,
                 std::map<std::string, std::string>* truth) {
  datagen::DblpOptions dopts;
  dopts.rows = g_corpus_rows;
  dopts.author_pool = g_author_pool;
  dopts.noise_fraction = 0.10;
  dopts.noise_factor = noise_factor;
  dopts.duplicate_fraction = 0;
  std::vector<std::pair<std::string, std::string>> noisy;
  auto dblp = datagen::MakeDblp(dopts, &noisy);

  Dataset dictionary = datagen::MakeAuthorDictionary(g_author_pool, dopts.seed);
  std::set<std::string> dict_set;
  for (const auto& row : dictionary.rows()) dict_set.insert(row[0].AsString());
  // The clean pool inside MakeDblp uses a "name i%97" suffix scheme; use
  // the actual clean names from the ground truth as the dictionary to
  // guarantee repairs exist.
  for (const auto& [d, c] : noisy) dict_set.insert(c);
  dict->assign(dict_set.begin(), dict_set.end());

  for (const auto& [d, c] : noisy) {
    if (!dict_set.count(d)) {
      dirty->push_back(d);
      (*truth)[d] = c;
    }
  }
  (void)dblp;
}

}  // namespace
}  // namespace cleanm

int main(int argc, char** argv) {
  using namespace cleanm;
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    g_corpus_rows = 300;
    g_author_pool = 100;
  }
  std::printf("=== E1/E2 — Table 3 + Figure 3: term validation (DBLP-like) ===\n");
  std::printf("paper: tf q=2 P=100%% R=97%% F=98.5 | tf q=3 P=100%% R=96.8%% | "
              "tf q=4 P=99.9%% R=95.9%% | kmeans k=5 R=95.7%% k=10 R=94.8%% "
              "k=20 R=94%%; tf faster than kmeans except q=2-ish regimes\n\n");

  std::vector<std::string> dirty, dict;
  std::map<std::string, std::string> truth;
  BuildCorpus(0.20, &dirty, &dict, &truth);
  std::printf("corpus: %zu dirty terms, %zu dictionary names, %zu ground-truth repairs\n\n",
              dirty.size(), dict.size(), truth.size());

  const Config configs[] = {
      {"tf q=2", FilteringAlgo::kTokenFiltering, 2},
      {"tf q=3", FilteringAlgo::kTokenFiltering, 3},
      {"tf q=4", FilteringAlgo::kTokenFiltering, 4},
      {"kmeans k=5", FilteringAlgo::kKMeans, 5},
      {"kmeans k=10", FilteringAlgo::kKMeans, 10},
      {"kmeans k=20", FilteringAlgo::kKMeans, 20},
  };

  std::printf("%-12s %10s %10s %10s %9s %9s %9s\n", "config", "group(s)", "sim(s)",
              "total(s)", "prec", "recall", "fscore");
  for (const auto& config : configs) {
    PhaseTimes times{};
    const Accuracy acc = RunValidation(dirty, dict, truth, 0.8, config, &times);
    std::printf("%-12s %10.3f %10.3f %10.3f %8.1f%% %8.1f%% %8.1f%%\n", config.label,
                times.grouping, times.similarity, times.grouping + times.similarity,
                acc.precision * 100, acc.recall * 100, acc.fscore * 100);
  }

  std::printf("\n=== E3 — Figure 4: accuracy vs noise (theta lowered with noise) ===\n");
  std::printf("paper: accuracy drops slightly with noise; q=4 / k=20 drop the most\n\n");
  std::printf("%-12s", "config");
  for (double noise : {0.20, 0.30, 0.40}) std::printf("  noise=%.0f%%", noise * 100);
  std::printf("\n");
  for (const auto& config : configs) {
    std::printf("%-12s", config.label);
    for (double noise : {0.20, 0.30, 0.40}) {
      std::vector<std::string> nd, ndict;
      std::map<std::string, std::string> ntruth;
      BuildCorpus(noise, &nd, &ndict, &ntruth);
      const double theta = 0.8 - (noise - 0.2);  // lower threshold as noise grows
      PhaseTimes times{};
      const Accuracy acc = RunValidation(nd, ndict, ntruth, theta, config, &times);
      std::printf("   %7.1f%%", acc.fscore * 100);
    }
    std::printf("\n");
  }
  std::printf("\n[measured] precision stays ~100%% (no false repairs of in-dictionary "
              "terms); recall falls with larger q/k and with noise — the Table 3 / "
              "Figure 4 shape.\n");
  return 0;
}
