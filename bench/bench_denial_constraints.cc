// E6/E7 — Figure 6(a,b) and Table 5: denial constraints over TPC-H lineitem.
//
// Rule φ (FD): orderkey, linenumber → suppkey, checked across scale factors
// on the CSV and colpack ("Parquet") access paths for CleanDB, Spark SQL,
// and BigDansing (CSV only, as in the paper).
//
// Rule ψ (general DC with inequalities): t1.price < t2.price ∧ t1.discount >
// t2.discount ∧ t1.price < X. Only CleanDB's statistics-aware matrix theta
// join completes across the sweep; Spark SQL's cartesian plan exceeds its
// comparison budget and BigDansing's min-max pruning cannot prune (the
// partitioning is not aligned with the predicate attributes).
//
// Also prints the aggregation-strategy ablation: shuffle volume and
// post-shuffle imbalance per strategy on the skewed key column.
#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "datagen/generators.h"
#include "storage/colpack.h"
#include "storage/csv.h"

namespace cleanm {
namespace {

constexpr size_t kRowsPerSf = 600;  // SF15 → 9000 rows (paper: 90M; 1/10000)

CleanDBOptions BenchOptions() {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  // Per-byte shuffle cost including serialization (see DESIGN.md).
  opts.shuffle_ns_per_byte = 40.0;
  return opts;
}

Dataset MakeSf(int sf) {
  datagen::LineitemOptions lopts;
  lopts.rows = static_cast<size_t>(sf) * kRowsPerSf;
  lopts.noise_fraction = 0.10;
  lopts.noise_domain = 15 * kRowsPerSf / 4;  // SF15 domain: skew grows with SF
  return datagen::MakeLineitem(lopts);
}

FdClause RulePhi() {
  FdClause fd;
  fd.lhs = {ParseCleanMExpr("l.orderkey").ValueOrDie(),
            ParseCleanMExpr("l.linenumber").ValueOrDie()};
  fd.rhs = {ParseCleanMExpr("l.suppkey").ValueOrDie()};
  return fd;
}

/// Time to load `path` in `format` and run rule φ on `system` ("cleandb",
/// "spark", "bigdansing").
template <typename System>
double TimeFdOn(System& system, const Dataset& data) {
  system.RegisterTable("lineitem", data);
  auto r = system.CheckFd("lineitem", "l", RulePhi());
  return r.ok() ? r.value().seconds : -1;
}

}  // namespace
}  // namespace cleanm

int main(int argc, char** argv) {
  using namespace cleanm;
  namespace fs = std::filesystem;
  // --smoke: tiny scale factors so CTest can verify the bench end to end.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::vector<int> sf_sweep =
      smoke ? std::vector<int>{1} : std::vector<int>{15, 30, 45, 60, 70};
  const int ablation_sf = smoke ? 1 : 45;
  // Per-process dir: concurrent ctest runs must not share bench files.
  const auto tmp = fs::temp_directory_path() /
                   ("cleanm_dc_bench_" + std::to_string(::getpid()));
  fs::create_directories(tmp);

  std::printf("=== E6 — Figure 6a/6b: FD rule phi across scale factors ===\n");
  std::printf("paper: CleanDB < SparkSQL < BigDansing on CSV; Parquet runs faster "
              "than CSV; all scale roughly linearly\n\n");
  std::printf("%4s %8s | %33s | %22s\n", "SF", "rows", "CSV: CleanDB SparkSQL BigDansing",
              "colpack: CleanDB SparkSQL");
  for (int sf : sf_sweep) {
    auto data = MakeSf(sf);
    // Write + read each format so I/O cost participates, as in the paper.
    const std::string csv_path = (tmp / ("sf" + std::to_string(sf) + ".csv")).string();
    const std::string cpk_path = (tmp / ("sf" + std::to_string(sf) + ".cpk")).string();
    CLEANM_CHECK(WriteCsv(data, csv_path).ok());
    CLEANM_CHECK(WriteColpack(data, cpk_path).ok());

    auto run = [&](auto& system, const std::string& path, bool colpack_fmt) {
      Timer total;
      auto loaded = colpack_fmt ? ReadColpack(path) : ReadCsv(path);
      CLEANM_CHECK(loaded.ok());
      const double clean_secs = TimeFdOn(system, loaded.value());
      return clean_secs < 0 ? -1.0 : total.ElapsedSeconds();
    };

    CleanDB cleandb(BenchOptions());
    SparkSqlSim spark(BenchOptions());
    BigDansingSim bigdansing(BenchOptions());
    const double csv_cdb = run(cleandb, csv_path, false);
    const double csv_spark = run(spark, csv_path, false);
    const double csv_bd = run(bigdansing, csv_path, false);
    CleanDB cleandb2(BenchOptions());
    SparkSqlSim spark2(BenchOptions());
    const double cpk_cdb = run(cleandb2, cpk_path, true);
    const double cpk_spark = run(spark2, cpk_path, true);
    std::printf("%4d %8zu | %10.3f %8.3f %10.3f | %10.3f %8.3f\n", sf,
                MakeSf(sf).num_rows(), csv_cdb, csv_spark, csv_bd, cpk_cdb, cpk_spark);
  }

  std::printf("\n=== ablation — aggregation strategy under skew (rule phi shuffle) ===\n");
  {
    auto data = MakeSf(ablation_sf);
    std::printf("%-14s %14s %14s %10s\n", "strategy", "rows-shuffled", "bytes-shuffled",
                "imbalance");
    for (auto strategy : {engine::AggregateStrategy::kLocalCombine,
                          engine::AggregateStrategy::kSortShuffle,
                          engine::AggregateStrategy::kHashShuffle}) {
      CleanDBOptions opts = BenchOptions();
      opts.shuffle_ns_per_byte = 0;
      opts.physical.aggregate_strategy = strategy;
      CleanDB db(opts);
      db.RegisterTable("lineitem", data);
      (void)db.CheckFd("lineitem", "l", RulePhi()).ValueOrDie();
      // Re-run with load report via a direct executor for the imbalance.
      const Dataset* t = db.GetTable("lineitem").ValueOrDie();
      Catalog catalog{{{"lineitem", t}}};
      engine::ClusterOptions copts;
      copts.num_nodes = 8;
      copts.shuffle_ns_per_byte = 0;
      engine::Cluster cluster(copts);
      std::vector<Row> rows;
      for (const auto& row : t->rows()) {
        rows.push_back({row[0], row[1], row[2]});
      }
      auto part = cluster.Parallelize(rows);
      engine::AggregateSpec spec;
      spec.key = [](const Row& r) {
        return Value(ValueList{r[0], r[1]});
      };
      spec.init = [](const Row& r) { return Value(ValueList{r[2]}); };
      spec.merge = engine::DistinctAccMerge;
      spec.finalize = [](const Value& k, const Value& acc, engine::Partition* out) {
        if (acc.AsList().size() > 1) out->push_back({k});
      };
      LoadReport load;
      engine::AggregateByKey(cluster, part, spec, strategy, &load);
      std::printf("%-14s %14llu %14llu %9.2fx\n", engine::AggregateStrategyName(strategy),
                  static_cast<unsigned long long>(cluster.metrics().rows_shuffled.load()),
                  static_cast<unsigned long long>(cluster.metrics().bytes_shuffled.load()),
                  load.ImbalanceFactor());
    }
  }

  std::printf("\n=== E7 — Table 5: inequality DC (rule psi) across scale factors ===\n");
  std::printf("paper: only CleanDB terminates (1.7 - 5.65 min); SparkSQL cannot "
              "compute the cross product; BigDansing becomes non-responsive\n\n");
  std::printf("%4s | %12s | %14s | %14s\n", "SF", "CleanDB(s)", "SparkSQL", "BigDansing");
  for (int sf : sf_sweep) {
    auto data = MakeSf(sf);
    // Pre-filter t1.price < X with ~0.5% selectivity.
    auto prefilter = ParseCleanMExpr("t1.price < 905").ValueOrDie();
    auto pred = ParseCleanMExpr(
                    "t1.price < t2.price AND t1.discount > t2.discount").ValueOrDie();

    CleanDB cleandb(BenchOptions());
    cleandb.RegisterTable("lineitem", data);
    auto cdb = cleandb.CheckDenialConstraint("lineitem", pred, prefilter).ValueOrDie();

    SparkSqlSim spark(BenchOptions());
    spark.RegisterTable("lineitem", data);
    // Spark SQL's generated plan evaluates the whole conjunction after the
    // cross product (the price filter references the join variable t1, so
    // Catalyst leaves it above the cartesian): |T|^2 comparisons against a
    // generous budget.
    auto spark_pred = Binary(BinaryOp::kAnd, CloneExpr(pred),
                             ParseCleanMExpr("t1.price < 905").ValueOrDie());
    auto spark_r = spark.CheckDenialConstraint(
        "lineitem", spark_pred, nullptr,
        static_cast<uint64_t>(data.num_rows()) * 2000);
    // BigDansing: min-max pruning cannot prune on unaligned partitions and
    // ships every partition pair; report only for the smallest SF (beyond
    // that the paper marks it non-responsive, and the full pairwise pass
    // here is quadratic).
    std::string bd_cell = "non-responsive";
    if (sf == sf_sweep.front()) {
      BigDansingSim bigdansing(BenchOptions());
      bigdansing.RegisterTable("lineitem", data);
      auto bd = bigdansing.CheckDenialConstraint("lineitem", pred, prefilter);
      if (bd.ok()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f s (slow)", bd.value().seconds);
        bd_cell = buf;
      }
    }
    std::printf("%4d | %12.3f | %14s | %14s\n", sf, cdb.seconds,
                spark_r.ok() ? "finished" : "did not term.", bd_cell.c_str());
  }
  fs::remove_all(tmp);
  return 0;
}
