// E4 — Figure 5: unified data cleaning on the customer table.
//
// Query: FD1 address → prefix(phone), FD2 address → nationkey, and DEDUP on
// address — run (a) as three standalone operations and (b) as one unified
// query, on CleanDB, Spark SQL, and BigDansing.
//
// Paper shape: CleanDB detects the shared grouping on `address` and runs a
// single aggregation pass, so unified < separate; Spark SQL cannot combine
// the operations (unified costs *more* than separate due to the outer-join
// combination pass); BigDansing runs one rule at a time and rejects FD1
// (prefix() is a computed attribute).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "cleaning/prepared_query.h"
#include "cleaning/query_profile.h"
#include "common/timer.h"
#include "common/trace.h"
#include "datagen/generators.h"
#include "repair/repair_sink.h"

namespace cleanm {
namespace {

// Set by --smoke: tiny sizes so CTest can verify the bench end to end.
size_t g_base_rows = 12000;
// --nonet: zero simulated network cost (pure compute, for dispatch A/B).
bool g_nonet = false;
// --legacy: spawn-per-call threads + unbatched shuffles (the pre-pool
// execution model, kept for before/after comparison).
bool g_legacy = false;

CleanDBOptions BenchOptions() {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  // Effective per-byte cost of a shuffle hop including serialization —
  // shuffles dominate cleaning jobs on real clusters (see DESIGN.md).
  opts.shuffle_ns_per_byte = g_nonet ? 0.0 : 40.0;
  if (g_legacy) {
    opts.use_worker_pool = false;
    opts.shuffle_batch_rows = 1;
  }
  return opts;
}

Dataset MakeData() {
  datagen::CustomerOptions copts;
  copts.base_rows = g_base_rows;
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  return datagen::MakeCustomer(copts);
}

const char* kQuery = R"(
  SELECT * FROM customer c
  FD(c.address, prefix(c.phone))
  FD(c.address, c.nationkey)
  DEDUP(exact, LD, 0.8, c.address)
)";

struct SystemTimes {
  double fd1 = -1, fd2 = -1, dedup = -1, unified = -1;
};

SystemTimes RunCleanDB(bool unify) {
  CleanDBOptions opts = BenchOptions();
  opts.unify_operations = unify;
  CleanDB db(opts);
  db.RegisterTable("customer", MakeData());
  SystemTimes t;
  auto result = db.Execute(kQuery).ValueOrDie();
  t.fd1 = result.ops[0].seconds;
  t.fd2 = result.ops[1].seconds;
  t.dedup = result.ops[2].seconds;
  t.unified = result.total_seconds;
  return t;
}

SystemTimes RunSparkSql() {
  SparkSqlSim spark(BenchOptions());
  spark.RegisterTable("customer", MakeData());
  auto query = ParseCleanM(kQuery).ValueOrDie();
  SystemTimes t;
  auto result = spark.ExecuteQuery(query).ValueOrDie();
  t.fd1 = result.ops[0].seconds;
  t.fd2 = result.ops[1].seconds;
  t.dedup = result.ops[2].seconds;
  t.unified = result.total_seconds;
  return t;
}

SystemTimes RunBigDansing() {
  BigDansingSim bd(BenchOptions());
  bd.RegisterTable("customer", MakeData());
  SystemTimes t;
  FdClause fd1;
  fd1.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd1.rhs = {ParseCleanMExpr("prefix(c.phone)").ValueOrDie()};
  auto r1 = bd.CheckFd("customer", "c", fd1);
  t.fd1 = r1.ok() ? r1.value().seconds : -1;  // -1 = unsupported
  FdClause fd2;
  fd2.lhs = {ParseCleanMExpr("c.address").ValueOrDie()};
  fd2.rhs = {ParseCleanMExpr("c.nationkey").ValueOrDie()};
  t.fd2 = bd.CheckFd("customer", "c", fd2).ValueOrDie().seconds;
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;
  dedup.theta = 0.8;
  dedup.attributes = {ParseCleanMExpr("c.address").ValueOrDie()};
  t.dedup = bd.Deduplicate("customer", "c", dedup).ValueOrDie().seconds;
  // BigDansing has no unified mode: total = sum of rules it can run.
  t.unified = t.fd2 + t.dedup + (t.fd1 > 0 ? t.fd1 : 0);
  return t;
}

// Substrate A/B — a *many-operator* unified plan: eight FD clauses compile
// into a deep operator DAG (scans, groupings, joins) whose per-operator
// dispatch cost is what the persistent worker pool amortizes. Runs at zero
// simulated network cost (pure compute), pool+batching vs. the legacy
// spawn-per-call model, in-process.
const char* kManyOpQuery = R"(
  SELECT * FROM customer c
  FD(c.address, c.nationkey)
  FD(c.address, prefix(c.phone))
  FD(c.name, c.nationkey)
  FD(c.phone, c.nationkey)
  FD(c.name, c.address)
  FD(c.phone, c.address)
  FD(c.name, c.phone)
  FD(c.custkey, c.nationkey)
)";

Dataset ManyOpData() {
  // Fixed small table regardless of --smoke: per-operator dispatch must
  // stay the dominant cost for these A/Bs to isolate the substrate.
  datagen::CustomerOptions copts;
  copts.base_rows = 400;
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  return datagen::MakeCustomer(copts);
}

CleanDBOptions ManyOpOptions(bool legacy) {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  opts.shuffle_ns_per_byte = 0;
  if (legacy) {
    opts.use_worker_pool = false;
    opts.shuffle_batch_rows = 1;
  }
  return opts;
}

double RunManyOpPlan(bool legacy) {
  CleanDB db(ManyOpOptions(legacy));
  db.RegisterTable("customer", ManyOpData());
  double best = -1;
  for (int rep = 0; rep < 3; rep++) {
    Timer timer;
    auto result = db.Execute(kManyOpQuery).ValueOrDie();
    CLEANM_CHECK(result.ops.size() == 8);
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

// ---- Prepared-query A/B: cold one-shot Execute (fresh session: construct,
// register, parse, plan, partition — the only way to run a query before the
// Prepare/Execute split) vs. re-executing one PreparedQuery on a live
// session (plans + partition cache warm). 8-FD unified plan, pure compute.

struct PreparedAb {
  double cold_s = 0;
  double reexec_s = 0;
  double speedup = 0;
  uint64_t reexec_repartitions = 0;  ///< scan+nest misses across timed reps
};

PreparedAb RunPreparedAb() {
  const Dataset data = ManyOpData();
  const int reps = 5;
  PreparedAb ab;

  double cold_best = -1;
  for (int rep = 0; rep < reps; rep++) {
    Timer timer;
    CleanDB db(ManyOpOptions(/*legacy=*/false));
    db.RegisterTable("customer", data);
    auto result = db.Execute(kManyOpQuery).ValueOrDie();
    CLEANM_CHECK(result.ops.size() == 8);
    const double s = timer.ElapsedSeconds();
    if (cold_best < 0 || s < cold_best) cold_best = s;
  }

  CleanDB db(ManyOpOptions(/*legacy=*/false));
  db.RegisterTable("customer", data);
  auto prepared = db.Prepare(kManyOpQuery);
  CLEANM_CHECK(prepared.ok());
  (void)prepared.value().Execute().ValueOrDie();  // populate the cache
  double reexec_best = -1;
  for (int rep = 0; rep < reps; rep++) {
    Timer timer;
    auto result = prepared.value().Execute().ValueOrDie();
    CLEANM_CHECK(result.ops.size() == 8);
    const double s = timer.ElapsedSeconds();
    if (reexec_best < 0 || s < reexec_best) reexec_best = s;
    ab.reexec_repartitions += result.cache.scan_misses + result.cache.nest_misses;
  }

  ab.cold_s = cold_best;
  ab.reexec_s = reexec_best;
  ab.speedup = reexec_best > 0 ? cold_best / reexec_best : 0;
  return ab;
}

// ---- UDF / repair A/B: the function-registry subsystem must not tax the
// engine. Three measurements on the customer table, pure compute:
//   1. a GROUP BY with a *registered* monoid-annotated aggregate (usum, a
//      user-written clone of sum) vs. the equivalent built-in aggregate —
//      CI-gated at ≤ 1.3× (the registry dispatch must stay in the noise);
//   2. the same UDF GROUP BY pooled vs. use_worker_pool=false (the
//      registry path must ride the substrate wins of PR 2);
//   3. a registered repair function driving the detect→repair loop vs. a
//      hand-rolled driver-side traversal computing the identical repairs.

std::string BenchPhonePrefix(const std::string& phone) {
  const size_t dash = phone.find('-');
  return dash == std::string::npos ? phone.substr(0, 3) : phone.substr(0, dash);
}

void RegisterBenchFunctions(CleanDB& db) {
  Status st = db.functions().RegisterAggregate(
      "usum", Value(int64_t{0}), [](const Value& v) { return v; },
      [](Value a, const Value& b) {
        if (!a.is_numeric() || !b.is_numeric()) return a;
        return Value(a.AsInt() + b.AsInt());
      });
  CLEANM_CHECK(st.ok());
  st = db.functions().RegisterRepair(
      "fix_phone_prefix", 1, [](const std::vector<Value>& args) -> Result<Value> {
        std::string target;
        bool have_target = false;
        for (const auto& rec : args[0].AsList()) {
          auto phone = rec.GetField("phone");
          if (!phone.ok() || phone.value().type() != ValueType::kString) continue;
          const std::string p = BenchPhonePrefix(phone.value().AsString());
          if (!have_target || p < target) {
            target = p;
            have_target = true;
          }
        }
        ValueList actions;
        for (const auto& rec : args[0].AsList()) {
          auto phone = rec.GetField("phone");
          if (!phone.ok() || phone.value().type() != ValueType::kString) continue;
          const std::string& full = phone.value().AsString();
          if (BenchPhonePrefix(full) == target) continue;
          const size_t dash = full.find('-');
          actions.push_back(Value(ValueStruct{
              {"entity", rec},
              {"set", Value(ValueStruct{
                          {"phone", Value(target + (dash == std::string::npos
                                                        ? ""
                                                        : full.substr(dash)))}})}}));
        }
        return Value(std::move(actions));
      });
  CLEANM_CHECK(st.ok());
}

const char* kUdfAggQuery =
    "SELECT c.nationkey AS k, usum(c.custkey) AS t "
    "FROM customer c GROUP BY c.nationkey";
const char* kBuiltinAggQuery =
    "SELECT c.nationkey AS k, sum(c.custkey) AS t "
    "FROM customer c GROUP BY c.nationkey";
const char* kRepairQuery =
    "SELECT c.address AS addr, fix_phone_prefix(bag(c)) AS fixes "
    "FROM customer c GROUP BY c.address "
    "HAVING length(set(prefix(c.phone))) > 1";

struct UdfAb {
  double builtin_agg_s = 0;
  double udf_agg_s = 0;
  double agg_ratio = 0;          ///< udf / builtin (≤ 1.3 gated)
  double udf_agg_legacy_s = 0;   ///< UDF GROUP BY, spawn-per-call + batch 1
  double repair_registered_s = 0;
  double repair_manual_s = 0;
  size_t repairs_applied = 0;
  size_t repairs_manual = 0;
};

/// Best-of-reps execution time of `query` on a warm session. One-shot
/// Executes on purpose: a transient plan keeps its Nest output out of the
/// session cache, so every rep really re-runs the aggregation (scans stay
/// cached — the A/B isolates aggregate compute, not partitioning).
double TimeGroupByQuery(const Dataset& data, const char* query, bool legacy,
                        size_t* violations = nullptr) {
  CleanDBOptions opts = ManyOpOptions(legacy);
  CleanDB db(opts);
  RegisterBenchFunctions(db);
  db.RegisterTable("customer", data);
  (void)db.Execute(query).ValueOrDie();  // warm the scan cache
  double best = -1;
  for (int rep = 0; rep < 7; rep++) {
    Timer timer;
    auto result = db.Execute(query).ValueOrDie();
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
    if (violations) *violations = result.ops.back().violations.size();
  }
  return best;
}

UdfAb RunUdfAb() {
  // A larger slice than the many-op table: aggregate throughput, not
  // dispatch, is what the 1.3× gate compares.
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 2000);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  const Dataset data = datagen::MakeCustomer(copts);

  UdfAb ab;
  ab.builtin_agg_s = TimeGroupByQuery(data, kBuiltinAggQuery, /*legacy=*/false);
  ab.udf_agg_s = TimeGroupByQuery(data, kUdfAggQuery, /*legacy=*/false);
  ab.agg_ratio = ab.builtin_agg_s > 0 ? ab.udf_agg_s / ab.builtin_agg_s : 0;
  ab.udf_agg_legacy_s = TimeGroupByQuery(data, kUdfAggQuery, /*legacy=*/true);

  // Registered repair loop: detect on the engine, apply + re-register.
  {
    CleanDB db(ManyOpOptions(/*legacy=*/false));
    RegisterBenchFunctions(db);
    db.RegisterTable("customer", data);
    auto prepared = db.Prepare(kRepairQuery);
    CLEANM_CHECK(prepared.ok());
    Timer timer;
    RepairSink sink(&db, prepared.value());
    CLEANM_CHECK(prepared.value().ExecuteInto(sink).ok());
    auto summary = sink.Commit().ValueOrDie();
    ab.repair_registered_s = timer.ElapsedSeconds();
    ab.repairs_applied = summary.cells_changed;
  }

  // Hand-rolled baseline: a driver-side traversal computing the identical
  // majority-prefix repair (group, pick min prefix, rewrite deviants).
  {
    Timer timer;
    const auto& schema = data.schema();
    const size_t addr_idx = schema.IndexOf("address").ValueOrDie();
    const size_t phone_idx = schema.IndexOf("phone").ValueOrDie();
    std::map<std::string, std::string> min_prefix;
    std::map<std::string, std::set<std::string>> prefixes;
    for (const auto& row : data.rows()) {
      if (row[addr_idx].type() != ValueType::kString ||
          row[phone_idx].type() != ValueType::kString) {
        continue;
      }
      const std::string& addr = row[addr_idx].AsString();
      const std::string p = BenchPhonePrefix(row[phone_idx].AsString());
      prefixes[addr].insert(p);
      auto it = min_prefix.find(addr);
      if (it == min_prefix.end() || p < it->second) min_prefix[addr] = p;
    }
    Dataset repaired(schema);
    size_t cells = 0;
    for (const auto& row : data.rows()) {
      Row r = row;
      if (r[addr_idx].type() == ValueType::kString &&
          r[phone_idx].type() == ValueType::kString) {
        const std::string& addr = r[addr_idx].AsString();
        if (prefixes[addr].size() > 1) {
          const std::string& full = r[phone_idx].AsString();
          if (BenchPhonePrefix(full) != min_prefix[addr]) {
            const size_t dash = full.find('-');
            r[phone_idx] = Value(min_prefix[addr] +
                                 (dash == std::string::npos ? "" : full.substr(dash)));
            cells++;
          }
        }
      }
      repaired.Append(std::move(r));
    }
    ab.repair_manual_s = timer.ElapsedSeconds();
    ab.repairs_manual = cells;
  }
  return ab;
}

// ---- Pipeline A/B: materialize-first vs morsel-driven execution on the
// 8-FD unified plan. Both runs start from a fresh session (cold caches) so
// each pays its own Nest builds; violations must be *bit-identical* — same
// tuples in the same order, compared on their full rendered structure. The
// memory gate compares QueryMetrics::peak_bytes_materialized: transient
// operator-output buffers (whole materialized outputs vs in-flight
// morsels). The A/B pins morsel_rows so a morsel is a small fraction of a
// per-node partition at bench scale — the scaled-down equivalent of the
// 4096-row default on production-size tables (a morsel only bounds memory
// when it is smaller than the partition it streams from).

struct PipelineAb {
  uint64_t peak_materialized = 0;
  uint64_t peak_pipelined = 0;
  double reduction = 0;  ///< materialized / pipelined (≥ 4 gated)
  uint64_t morsels = 0;
  double materialized_s = 0;
  double pipelined_s = 0;
  size_t violations = 0;
  bool identical = false;
};

PipelineAb RunPipelineAb() {
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 2000);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  const Dataset data = datagen::MakeCustomer(copts);
  const size_t kGateMorselRows = 32;

  PipelineAb ab;
  std::vector<std::string> rendered[2];
  for (int pipe = 0; pipe <= 1; pipe++) {
    CleanDB db(ManyOpOptions(/*legacy=*/false));
    db.RegisterTable("customer", data);
    auto prepared = db.Prepare(kManyOpQuery);
    CLEANM_CHECK(prepared.ok());
    ExecOptions eo;
    eo.pipeline = pipe != 0;
    eo.morsel_rows = kGateMorselRows;
    Timer timer;
    auto result = prepared.value().Execute(eo).ValueOrDie();
    const double s = timer.ElapsedSeconds();
    CLEANM_CHECK(result.ops.size() == 8);
    for (const auto& op : result.ops) {
      for (const auto& v : op.violations) rendered[pipe].push_back(v.ToString());
    }
    if (pipe == 0) {
      ab.peak_materialized = result.metrics.peak_bytes_materialized;
      ab.materialized_s = s;
    } else {
      ab.peak_pipelined = result.metrics.peak_bytes_materialized;
      ab.pipelined_s = s;
      ab.morsels = result.metrics.morsels_processed;
    }
  }
  ab.violations = rendered[0].size();
  ab.identical = rendered[0] == rendered[1];
  ab.reduction = ab.peak_pipelined
                     ? static_cast<double>(ab.peak_materialized) /
                           static_cast<double>(ab.peak_pipelined)
                     : 0;
  return ab;
}

// ---- Out-of-core A/B: the 8-FD unified plan fully in-memory vs under a
// buffer pool budgeted at 1/8 of the dataset footprint. The budgeted run
// scans the table through paged chunks, spills Nest partials past the
// budget, and re-reads every spill generation for the merge — and must
// still produce *bit-identical* violations (same tuples, same order,
// compared on the full rendered structure). Gates: identical violations,
// bytes actually spilled (the budget really bit), pool peak residency
// within the budget, and wall-clock within 2× of in-memory. Small pages
// and morsels keep bench-scale data producing several spill generations.

struct OutOfCoreAb {
  uint64_t footprint_bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t bytes_spilled = 0;
  uint64_t pages_evicted = 0;
  uint64_t pool_peak_resident = 0;
  bool within_budget = false;
  double in_memory_s = 0;
  double out_of_core_s = 0;
  double slowdown = 0;  ///< out_of_core / in_memory (≤ 2 gated)
  size_t violations = 0;
  bool identical = false;
};

OutOfCoreAb RunOutOfCoreAb() {
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 2000);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  const Dataset data = datagen::MakeCustomer(copts);
  const size_t kPageBytes = 4096;

  OutOfCoreAb ab;
  ab.footprint_bytes = data.ByteSize();
  ab.budget_bytes = ab.footprint_bytes / 8;
  std::vector<std::string> rendered[2];
  for (int ooc = 0; ooc <= 1; ooc++) {
    CleanDBOptions options = ManyOpOptions(/*legacy=*/false);
    if (ooc != 0) {
      options.buffer_pool_bytes = ab.budget_bytes;
      options.page_bytes = kPageBytes;
      options.morsel_rows = 512;  // several aggregator spill generations
    }
    CleanDB db(options);
    db.RegisterTable("customer", data);
    auto prepared = db.Prepare(kManyOpQuery);
    CLEANM_CHECK(prepared.ok());
    Timer timer;
    auto result = prepared.value().Execute().ValueOrDie();
    const double s = timer.ElapsedSeconds();
    CLEANM_CHECK(result.ops.size() == 8);
    for (const auto& op : result.ops) {
      for (const auto& v : op.violations) rendered[ooc].push_back(v.ToString());
    }
    if (ooc != 0) {
      ab.out_of_core_s = s;
      ab.bytes_spilled = result.metrics.bytes_spilled;
      ab.pages_evicted = result.metrics.pages_evicted;
      const BufferPool::Stats pool = db.buffer_pool()->stats();
      ab.pool_peak_resident = pool.peak_resident_bytes;
      // The pool admits a single over-budget payload alone, so the bound
      // is max(budget, one oversized chunk).
      ab.within_budget = pool.peak_resident_bytes <=
                         std::max<uint64_t>(ab.budget_bytes, 2 * kPageBytes);
    } else {
      ab.in_memory_s = s;
    }
  }
  ab.violations = rendered[0].size();
  ab.identical = rendered[0] == rendered[1];
  ab.slowdown = ab.in_memory_s > 0 ? ab.out_of_core_s / ab.in_memory_s : 0;
  return ab;
}

// ---- Concurrency A/B: 8 prepared sessions serialized vs 8 concurrent
// driver threads on ONE shared CleanDB. Each session owns its own table
// copy and its own PreparedQuery, and every table is re-registered
// (generation bump -> partition-cache miss) before each arm, so every
// execution in both arms genuinely re-partitions and pays the simulated
// network. (A single shared warm PreparedQuery would serve every shuffle
// from the partition cache — the prepared_reexec gate above proves
// re-executions do zero re-partitioning — leaving nothing to overlap.)
// The session layer's claim: concurrent executions overlap those network
// waits (each shuffle hop sleeps on its own driver/worker/spawned thread)
// while staying bit-identical to the serial baseline — snapshot visibility
// and per-execution metrics make the interleaving invisible in the results.
// The workload is deliberately sleep-dominated (tiny table, steep ns/byte):
// on a single-core runner compute cannot overlap, so the A/B isolates
// exactly what the session layer controls — whether one session's network
// wait blocks another's. This section also deliberately ignores --nonet:
// with zero network cost there is nothing to overlap, and the A/B would
// merely measure the scheduler. The network-simulated regime is the
// paper's cluster setting anyway.

struct ConcurrencyAb {
  size_t sessions = 8;
  double serial_s = 0;
  double concurrent_s = 0;
  double speedup = 0;      ///< serial / concurrent (≥ 2 gated)
  size_t violations = 0;   ///< per-execution violation tuples (baseline)
  bool identical = false;  ///< all 16 executions bit-identical to baseline
};

ConcurrencyAb RunConcurrencyAb() {
  ConcurrencyAb ab;
  CleanDBOptions opts;
  opts.num_nodes = 8;
  opts.shuffle_ns_per_byte = 150000.0;  // sleep-dominated on purpose (see above)
  CleanDB db(opts);
  datagen::CustomerOptions copts;
  copts.base_rows = std::min<size_t>(g_base_rows, 150);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  // One identical table copy per session (datagen is deterministic, so all
  // eight carry the same rows and yield the same violations). Re-running
  // this before an arm bumps every generation, invalidating the partition
  // cache so the arm's executions re-partition from scratch.
  auto reseed = [&] {
    for (size_t i = 0; i < ab.sessions; i++) {
      db.RegisterTable("customer" + std::to_string(i),
                       datagen::MakeCustomer(copts));
    }
  };
  reseed();
  std::vector<PreparedQuery> sessions;
  sessions.reserve(ab.sessions);
  for (size_t i = 0; i < ab.sessions; i++) {
    std::string q = kQuery;
    const std::string from = "FROM customer";
    q.replace(q.find(from), from.size(), from + std::to_string(i));
    auto prepared = db.Prepare(q);
    CLEANM_CHECK(prepared.ok());
    sessions.push_back(std::move(prepared.value()));
  }

  auto render = [](const QueryResult& r) {
    std::string out;
    for (const auto& op : r.ops) {
      for (const auto& v : op.violations) {
        out += v.ToString();
        out += '\n';
      }
    }
    return out;
  };
  auto warm = sessions[0].Execute().ValueOrDie();
  const std::string baseline = render(warm);
  for (const auto& op : warm.ops) ab.violations += op.violations.size();
  bool all_identical = true;

  {
    reseed();  // all sessions cold: every execution pays the network
    Timer timer;
    for (size_t i = 0; i < ab.sessions; i++) {
      auto result = sessions[i].Execute().ValueOrDie();
      if (render(result) != baseline) all_identical = false;
    }
    ab.serial_s = timer.ElapsedSeconds();
  }
  {
    reseed();  // cold again: the concurrent arm repartitions the same work
    std::atomic<int> mismatches{0};
    std::vector<std::thread> drivers;
    drivers.reserve(ab.sessions);
    Timer timer;
    for (size_t i = 0; i < ab.sessions; i++) {
      drivers.emplace_back([&, i] {
        auto result = sessions[i].Execute();
        if (!result.ok() || render(result.value()) != baseline) mismatches++;
      });
    }
    for (auto& t : drivers) t.join();
    ab.concurrent_s = timer.ElapsedSeconds();
    if (mismatches.load() != 0) all_identical = false;
  }
  ab.identical = all_identical;
  ab.speedup = ab.concurrent_s > 0 ? ab.serial_s / ab.concurrent_s : 0;
  return ab;
}

// ---- Fault-tolerance A/B: the recovery machinery must keep results exact
// and cheap. Two arms:
//   1. Injected failures: the 8-FD unified plan (pure compute) clean vs
//      5% per-task injected kUnavailable with a fixed seed — retries must
//      re-execute failed partitions to *bit-identical* violations at ≤1.5×
//      the clean wall-clock (a failed attempt aborts before the task body,
//      so the overhead is re-execution, not corruption).
//   2. Deadline: a network-simulated cold execution (this arm deliberately
//      ignores --nonet — with zero network cost the run finishes before any
//      realistic deadline) re-run with deadline_ns at 10% of its clean
//      wall-clock must return kDeadlineExceeded promptly instead of running
//      to completion.

struct FaultAb {
  double clean_s = 0;
  double faulted_s = 0;
  double overhead = 0;  ///< faulted / clean (≤ 1.5 gated)
  uint64_t tasks_failed = 0;
  uint64_t tasks_retried = 0;
  size_t violations = 0;
  bool identical = false;
  double deadline_clean_s = 0;
  double deadline_run_s = 0;
  bool deadline_exceeded = false;
  uint64_t executions_cancelled = 0;
};

FaultAb RunFaultAb() {
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 2000);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  const Dataset data = datagen::MakeCustomer(copts);

  FaultAb ab;
  auto render = [](const QueryResult& r) {
    std::vector<std::string> out;
    for (const auto& op : r.ops) {
      for (const auto& v : op.violations) out.push_back(v.ToString());
    }
    return out;
  };

  // Arm 1: clean vs 5% injected task failures on the 8-FD unified plan.
  std::vector<std::string> rendered[2];
  for (int faulty = 0; faulty <= 1; faulty++) {
    CleanDBOptions opts = ManyOpOptions(/*legacy=*/false);
    if (faulty != 0) {
      opts.fault.failure_probability = 0.05;
      opts.fault.seed = 1234;  // fixed: the failure schedule is part of the A/B
      opts.fault.max_task_retries = 8;
      opts.fault.retry_backoff_ns = 0;  // measure re-execution, not sleeps
    }
    CleanDB db(opts);
    db.RegisterTable("customer", data);
    double best = -1;
    for (int rep = 0; rep < 3; rep++) {
      Timer timer;
      auto result = db.Execute(kManyOpQuery).ValueOrDie();
      const double s = timer.ElapsedSeconds();
      if (best < 0 || s < best) best = s;
      CLEANM_CHECK(result.ops.size() == 8);
      rendered[faulty] = render(result);
      if (faulty != 0) {
        ab.tasks_failed += result.metrics.tasks_failed;
        ab.tasks_retried += result.metrics.tasks_retried;
      }
    }
    (faulty != 0 ? ab.faulted_s : ab.clean_s) = best;
  }
  ab.violations = rendered[0].size();
  ab.identical = rendered[0] == rendered[1];
  ab.overhead = ab.clean_s > 0 ? ab.faulted_s / ab.clean_s : 0;

  // Arm 2: deadline at 10% of a cold network-simulated execution.
  CleanDBOptions dopts;
  dopts.num_nodes = 8;
  dopts.shuffle_ns_per_byte = 150000.0;  // sleep-dominated (see concurrency A/B)
  CleanDB db(dopts);
  datagen::CustomerOptions small = copts;
  small.base_rows = std::min<size_t>(g_base_rows, 150);
  db.RegisterTable("customer", datagen::MakeCustomer(small));
  auto prepared = db.Prepare(kQuery);
  CLEANM_CHECK(prepared.ok());
  {
    Timer timer;
    (void)prepared.value().Execute().ValueOrDie();
    ab.deadline_clean_s = timer.ElapsedSeconds();
  }
  // Re-register: the generation bump empties the partition cache, so the
  // deadline run pays the same network waits the clean timing did.
  db.RegisterTable("customer", datagen::MakeCustomer(small));
  ExecOptions eo;
  eo.deadline_ns = static_cast<uint64_t>(ab.deadline_clean_s * 0.1 * 1e9);
  {
    Timer timer;
    auto r = prepared.value().Execute(eo);
    ab.deadline_run_s = timer.ElapsedSeconds();
    ab.deadline_exceeded =
        !r.ok() && r.status().code() == StatusCode::kDeadlineExceeded;
  }
  ab.executions_cancelled =
      db.cluster().session_metrics().executions_cancelled.load();
  return ab;
}

// ---- Observability A/B: the pipelined 8-FD unified plan with profiling
// off vs on, same cold-session config as the pipeline A/B (fresh CleanDB
// per rep, morsel 32, best of 3). Tracing is compiled in unconditionally;
// with no recorder installed every TraceScope is a few-branch no-op, so
// the off arm must record literally zero spans and track the pipeline
// A/B wall-clock (≤2%, advisory — both run profiling-off, so the ratio
// bounds instrumentation-plus-noise). The profiled arm pays span
// recording and the profile build (≤10% over off, advisory) and must
// reconcile exactly: Σ self_counters over the operator tree equals the
// flat QueryResult::metrics for every row-moving counter (hard gate —
// if attribution drifts, the ANALYZE tree lies).

struct ObservabilityAb {
  double off_s = 0;
  double profile_s = 0;
  double off_overhead = 0;      ///< off_s / pipeline-A/B pipelined_s (≤1.02 advisory)
  double profile_overhead = 0;  ///< profile_s / off_s (≤1.10 advisory)
  uint64_t spans_off = 0;       ///< spans recorded during the off arm (0 gated)
  size_t operator_spans = 0;    ///< operator-span instances, root excluded (≥6 gated)
  size_t spans_total = 0;       ///< all spans in the profiled run
  bool rows_reconciled = false; ///< profile totals() == flat metrics (gated)
  uint64_t profile_rows_scanned = 0;
  uint64_t flat_rows_scanned = 0;
  std::string trace_path;       ///< set once a Chrome trace was written
};

ObservabilityAb RunObservabilityAb(double pipelined_baseline_s,
                                   const std::string& trace_out) {
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 2000);
  copts.duplicate_fraction = 0.10;
  copts.max_duplicates = 40;
  copts.fd_violation_fraction = 0.05;
  const Dataset data = datagen::MakeCustomer(copts);
  const size_t kGateMorselRows = 32;

  ObservabilityAb ab;
  for (int profiled = 0; profiled <= 1; profiled++) {
    const uint64_t spans_before = TraceRecorder::TotalSpansRecorded();
    double best = -1;
    for (int rep = 0; rep < 3; rep++) {
      CleanDB db(ManyOpOptions(/*legacy=*/false));
      db.RegisterTable("customer", data);
      auto prepared = db.Prepare(kManyOpQuery);
      CLEANM_CHECK(prepared.ok());
      ExecOptions eo;
      eo.pipeline = true;
      eo.morsel_rows = kGateMorselRows;
      eo.profile = profiled != 0;
      Timer timer;
      auto result = prepared.value().Execute(eo).ValueOrDie();
      const double s = timer.ElapsedSeconds();
      if (best < 0 || s < best) best = s;
      CLEANM_CHECK(result.ops.size() == 8);
      if (profiled != 0 && rep == 2) {
        CLEANM_CHECK(result.profile != nullptr);
        const QueryProfile& prof = *result.profile;
        for (const auto& op : prof.operators()) {
          if (op.name != "execute") ab.operator_spans++;
        }
        ab.spans_total = prof.spans().size();
        const MetricsCounters totals = prof.totals();
        ab.profile_rows_scanned = totals.rows_scanned;
        ab.flat_rows_scanned = result.metrics.rows_scanned;
        // The out-of-core folds and cancellation counts land after the
        // root span closes; the row-moving counters below are the ones
        // attribution is exact for (see query_profile.h).
        ab.rows_reconciled =
            totals.rows_scanned == result.metrics.rows_scanned &&
            totals.groups_built == result.metrics.groups_built &&
            totals.rows_shuffled == result.metrics.rows_shuffled &&
            totals.comparisons == result.metrics.comparisons &&
            totals.morsels_processed == result.metrics.morsels_processed;
        if (!trace_out.empty()) {
          CLEANM_CHECK(prof.WriteChromeTrace(trace_out).ok());
          ab.trace_path = trace_out;
        }
      }
    }
    if (profiled == 0) {
      ab.off_s = best;
      ab.spans_off = TraceRecorder::TotalSpansRecorded() - spans_before;
    } else {
      ab.profile_s = best;
    }
  }
  ab.off_overhead =
      pipelined_baseline_s > 0 ? ab.off_s / pipelined_baseline_s : 0;
  ab.profile_overhead = ab.off_s > 0 ? ab.profile_s / ab.off_s : 0;
  return ab;
}

// ---- Delta-incremental A/B: full re-execution vs incremental
// re-validation after a 1% mutation on the 8-FD unified plan (pure
// compute). Both arms follow the same session pattern: register, prepare,
// bootstrap execute (untimed — it seeds the incremental state), then per
// round append the same 1% delta chunk and re-execute the prepared query.
// The full arm pins ExecOptions::incremental=false, so every round
// re-partitions the scan and rebuilds all eight Nest states from scratch;
// the incremental arm is served entirely from the delta log (monoid-merged
// group partials, touched keys re-finalized). Gates: the incremental arm's
// merged violation multiset must equal a cold execution over the
// post-delta table under canonical normalization (aggregated collections
// are fold-order sensitive, so bit-identity is the wrong comparison here),
// zero re-partitions and one incremental execution per round, the
// delta-scaling row ratio (rows a full round scans / rows an incremental
// round processes) ≥10 (deterministic), and wall-clock speedup ≥10
// (machine-local at measure time; advisory in the cross-machine JSON diff).

/// Renders a Value with struct fields sorted by name and list elements
/// sorted lexicographically — equal results compare equal regardless of
/// the merge-tree order that built an aggregated collection.
std::string CanonicalString(const Value& v) {
  if (v.type() == ValueType::kStruct) {
    std::vector<std::pair<std::string, std::string>> fields;
    for (const auto& [name, field] : v.AsStruct()) {
      fields.emplace_back(name, CanonicalString(field));
    }
    std::sort(fields.begin(), fields.end());
    std::string out = "{";
    for (const auto& [name, repr] : fields) out += name + ":" + repr + ",";
    return out + "}";
  }
  if (v.type() == ValueType::kList) {
    std::vector<std::string> elems;
    for (const auto& e : v.AsList()) elems.push_back(CanonicalString(e));
    std::sort(elems.begin(), elems.end());
    std::string out = "[";
    for (const auto& e : elems) out += e + ",";
    return out + "]";
  }
  return v.ToString();
}

struct DeltaIncrementalAb {
  size_t base_rows = 0;
  size_t delta_rows = 0;     ///< appended per round (1% of base)
  size_t rounds = 3;
  double full_reexec_s = 0;  ///< best full (incremental=false) round
  double incremental_s = 0;  ///< best incremental round
  double speedup = 0;        ///< full / incremental (≥ 10 gated locally)
  uint64_t full_rows_scanned = 0;     ///< per full round (average)
  uint64_t delta_rows_processed = 0;  ///< per incremental round (average)
  double row_ratio = 0;  ///< full_rows_scanned / delta_rows_processed (≥ 10)
  uint64_t groups_remerged = 0;
  uint64_t incremental_executions = 0;  ///< across timed rounds (== rounds)
  uint64_t incremental_repartitions = 0;  ///< scan+nest misses (0 gated)
  bool identical = false;  ///< merged set == cold post-delta execution
};

DeltaIncrementalAb RunDeltaIncrementalAb() {
  // Mostly-clean table: the incremental arm's cost is O(delta + touched
  // groups + emitted violations), so a low violation rate keeps the
  // emission term from washing out the delta scaling at bench size.
  datagen::CustomerOptions copts;
  copts.base_rows = std::max<size_t>(g_base_rows, 4000);
  copts.duplicate_fraction = 0.01;
  copts.max_duplicates = 3;
  copts.fd_violation_fraction = 0.005;
  Dataset dirty = datagen::MakeCustomer(copts);
  // Uniquify the name column: datagen draws names from a small pool, which
  // floods the three name-keyed FDs with hundreds of violations that have
  // nothing to do with the delta. A mostly-clean table keeps the violation
  // set — whose emission cost both arms pay identically — dominated by the
  // injected address-FD dirtiness instead.
  {
    const size_t name_idx = dirty.schema().IndexOf("name").ValueOrDie();
    size_t i = 0;
    for (auto& row : dirty.mutable_rows()) {
      row[name_idx] =
          Value(row[name_idx].AsString() + " #" + std::to_string(i++));
    }
  }
  const Dataset base = std::move(dirty);
  const size_t nation_idx = base.schema().IndexOf("nationkey").ValueOrDie();

  DeltaIncrementalAb ab;
  ab.base_rows = base.rows().size();
  ab.delta_rows = std::max<size_t>(1, ab.base_rows / 100);

  // Round r's chunk: mostly clean inserts (fresh singleton groups under
  // every FD key) plus ~10% nationkey-bumped copies of existing rows that
  // land in existing address/custkey groups and break several of the eight
  // FDs. A realistic mutation stream: the delta genuinely changes the
  // violation sets, but the violation count — whose emission cost both
  // arms pay identically — stays proportional to the table's dirtiness
  // instead of compounding every round.
  const size_t violating = std::max<size_t>(1, ab.delta_rows / 10);
  auto chunk = [&](size_t r) {
    std::vector<Row> rows;
    rows.reserve(ab.delta_rows);
    for (size_t i = 0; i < violating; i++) {
      Row row = base.rows()[(r * violating + i) % base.rows().size()];
      row[nation_idx] =
          Value(row[nation_idx].AsInt() + static_cast<int64_t>(100 + r));
      rows.push_back(std::move(row));
    }
    for (size_t i = violating; i < ab.delta_rows; i++) {
      const uint64_t uid = 1000000000ull + r * ab.delta_rows + i;
      const std::string tag = std::to_string(uid);
      rows.push_back({Value(static_cast<int64_t>(uid)),
                      Value("delta customer " + tag),
                      Value("delta lane " + tag), Value(tag),
                      Value(static_cast<int64_t>(uid % 25))});
    }
    return rows;
  };

  QueryResult last_incremental;
  for (int incremental = 0; incremental <= 1; incremental++) {
    CleanDB db(ManyOpOptions(/*legacy=*/false));
    db.RegisterTable("customer", base);
    auto prepared = db.Prepare(kManyOpQuery);
    CLEANM_CHECK(prepared.ok());
    (void)prepared.value().Execute().ValueOrDie();  // bootstrap (untimed)
    double best = -1;
    for (size_t r = 0; r < ab.rounds; r++) {
      CLEANM_CHECK(db.AppendRows("customer", chunk(r)).ok());
      ExecOptions eo;
      eo.incremental = incremental != 0;
      Timer timer;
      auto result = prepared.value().Execute(eo).ValueOrDie();
      const double s = timer.ElapsedSeconds();
      if (best < 0 || s < best) best = s;
      CLEANM_CHECK(result.ops.size() == 8);
      if (incremental != 0) {
        ab.delta_rows_processed += result.metrics.delta_rows_processed;
        ab.groups_remerged += result.metrics.groups_remerged;
        ab.incremental_executions += result.metrics.incremental_executions;
        ab.incremental_repartitions +=
            result.cache.scan_misses + result.cache.nest_misses;
        if (r == ab.rounds - 1) last_incremental = std::move(result);
      } else {
        ab.full_rows_scanned += result.metrics.rows_scanned;
      }
    }
    (incremental != 0 ? ab.incremental_s : ab.full_reexec_s) = best;
  }
  ab.full_rows_scanned /= ab.rounds;
  ab.delta_rows_processed /= ab.rounds;

  // Merged-result identity: the incremental arm's final violation multiset
  // must equal a cold execution over the post-delta table.
  Dataset post(base.schema());
  for (const auto& row : base.rows()) post.Append(row);
  for (size_t r = 0; r < ab.rounds; r++) {
    for (auto& row : chunk(r)) post.Append(std::move(row));
  }
  CleanDB cold_db(ManyOpOptions(/*legacy=*/false));
  cold_db.RegisterTable("customer", std::move(post));
  auto cold = cold_db.Execute(kManyOpQuery).ValueOrDie();
  auto canon = [](const QueryResult& r) {
    std::vector<std::string> out;
    for (const auto& op : r.ops) {
      for (const auto& v : op.violations) {
        out.push_back(op.op_name + "|" + CanonicalString(v));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto merged = canon(last_incremental);
  ab.identical = !merged.empty() && merged == canon(cold);

  ab.speedup = ab.incremental_s > 0 ? ab.full_reexec_s / ab.incremental_s : 0;
  ab.row_ratio = ab.delta_rows_processed > 0
                     ? static_cast<double>(ab.full_rows_scanned) /
                           static_cast<double>(ab.delta_rows_processed)
                     : 0;
  return ab;
}

/// Inserts/replaces `"key": object` in the flat JSON file at `path`
/// (written by bench_cluster_primitives), preserving the other sections.
/// Sections written this way live on a single line, so replacement is a
/// line drop. A missing or empty file yields {"key": object}.
void MergeJsonSection(const std::string& path, const std::string& key,
                      const std::string& object) {
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }
  // Drop any previous line carrying this key.
  std::string kept;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"" + key + "\"") == std::string::npos) kept += line + "\n";
  }
  auto rstrip = [](std::string* s) {
    while (!s->empty() && std::isspace(static_cast<unsigned char>(s->back()))) {
      s->pop_back();
    }
  };
  rstrip(&kept);
  if (!kept.empty() && kept.back() == '}') kept.pop_back();
  rstrip(&kept);
  if (!kept.empty() && kept.back() == ',') kept.pop_back();
  rstrip(&kept);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  if (kept.empty() || kept == "{") {
    out << "{\n";
  } else {
    out << kept << ",\n";
  }
  out << "  \"" << key << "\": " << object << "\n}\n";
  std::printf("[written] %s (section \"%s\")\n", path.c_str(), key.c_str());
}

void PrintRow(const char* name, const SystemTimes& t, double separate_total) {
  auto cell = [](double v) {
    static char buf[32];
    if (v < 0) {
      std::snprintf(buf, sizeof(buf), "%10s", "unsupported");
    } else {
      std::snprintf(buf, sizeof(buf), "%10.3f", v);
    }
    return std::string(buf);
  };
  std::printf("%-12s %s %s %s | separate-total %8.3f  unified %s\n", name,
              cell(t.fd1).c_str(), cell(t.fd2).c_str(), cell(t.dedup).c_str(),
              separate_total, cell(t.unified).c_str());
}

}  // namespace
}  // namespace cleanm

int main(int argc, char** argv) {
  using namespace cleanm;
  bool check = false;
  std::string out_path;
  std::string trace_out;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--smoke") g_base_rows = 400;
    if (arg == "--nonet") g_nonet = true;
    if (arg == "--legacy") g_legacy = true;
    if (arg == "--check") check = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
  }
  std::printf("=== E4 — Figure 5: unified cleaning (FD1 + FD2 + DEDUP on customer) ===\n");
  std::printf("paper: CleanDB merges the three ops into one aggregation "
              "(unified < separate); Spark SQL's unified run costs more than "
              "separate; BigDansing can't run FD1 (computed attribute) and has "
              "no unified mode.\n\n");
  std::printf("%-12s %10s %10s %10s\n", "system", "FD1(s)", "FD2(s)", "DEDUP(s)");

  // Warm-up pass (allocator + page cache) so measurement order is fair.
  (void)RunCleanDB(/*unify=*/true);

  // CleanDB separate (no unification) then unified.
  SystemTimes cdb_sep = RunCleanDB(/*unify=*/false);
  SystemTimes cdb_uni = RunCleanDB(/*unify=*/true);
  SystemTimes combined = cdb_sep;
  combined.unified = cdb_uni.unified;
  PrintRow("CleanDB", combined, cdb_sep.fd1 + cdb_sep.fd2 + cdb_sep.dedup);

  SystemTimes spark = RunSparkSql();
  PrintRow("SparkSQL", spark, spark.fd1 + spark.fd2 + spark.dedup);

  SystemTimes bd = RunBigDansing();
  PrintRow("BigDansing", bd, bd.fd2 + bd.dedup);

  std::printf("\n[measured] CleanDB unified shares one grouping pass across all three "
              "operations; verify unified(CleanDB) < separate-total(CleanDB) and "
              "unified(SparkSQL) > separate-total(SparkSQL).\n");

  std::printf("\n=== substrate A/B: many-operator unified plan (8 FDs), pure compute ===\n");
  const double many_op_legacy = RunManyOpPlan(/*legacy=*/true);
  const double many_op_pool = RunManyOpPlan(/*legacy=*/false);
  std::printf("legacy (spawn-per-call, unbatched) %8.3f s\n", many_op_legacy);
  std::printf("worker pool + batched shuffle      %8.3f s\n", many_op_pool);
  std::printf("[measured] substrate speedup %.2fx on the many-operator plan\n",
              many_op_legacy / many_op_pool);

  std::printf("\n=== prepared-query A/B: cold Execute vs prepared re-execute "
              "(8 FDs, pure compute) ===\n");
  const PreparedAb ab = RunPreparedAb();
  std::printf("cold one-shot Execute (fresh session)   %8.4f s\n", ab.cold_s);
  std::printf("prepared re-execute (plans+cache warm)  %8.4f s\n", ab.reexec_s);
  std::printf("[measured] prepared re-execution speedup %.2fx; re-partitions "
              "during timed re-executions: %llu\n",
              ab.speedup, static_cast<unsigned long long>(ab.reexec_repartitions));

  std::printf("\n=== pipeline A/B: materialize-first vs morsel-driven "
              "(8 FDs, fresh sessions, pure compute) ===\n");
  const PipelineAb pab = RunPipelineAb();
  std::printf("materialize-first peak bytes  %12llu  (%8.4f s)\n",
              static_cast<unsigned long long>(pab.peak_materialized),
              pab.materialized_s);
  std::printf("pipelined peak bytes          %12llu  (%8.4f s, %llu morsels)\n",
              static_cast<unsigned long long>(pab.peak_pipelined), pab.pipelined_s,
              static_cast<unsigned long long>(pab.morsels));
  std::printf("[measured] peak transient memory reduction %.2fx; %zu violations "
              "%s across the two paths\n",
              pab.reduction, pab.violations,
              pab.identical ? "bit-identical" : "DIFFER");

  std::printf("\n=== out-of-core A/B: in-memory vs 1/8-footprint buffer pool "
              "(8 FDs, fresh sessions, pure compute) ===\n");
  const OutOfCoreAb oab = RunOutOfCoreAb();
  std::printf("dataset footprint %12llu bytes; pool budget %llu bytes\n",
              static_cast<unsigned long long>(oab.footprint_bytes),
              static_cast<unsigned long long>(oab.budget_bytes));
  std::printf("fully in-memory               %8.4f s\n", oab.in_memory_s);
  std::printf("1/8-footprint pool            %8.4f s  (%.2fx, %llu bytes "
              "spilled, %llu pages evicted)\n",
              oab.out_of_core_s, oab.slowdown,
              static_cast<unsigned long long>(oab.bytes_spilled),
              static_cast<unsigned long long>(oab.pages_evicted));
  std::printf("[measured] pool peak residency %llu bytes (%s budget); %zu "
              "violations %s across the two runs\n",
              static_cast<unsigned long long>(oab.pool_peak_resident),
              oab.within_budget ? "within" : "OVER",
              oab.violations, oab.identical ? "bit-identical" : "DIFFER");

  std::printf("\n=== concurrency A/B: 8 prepared sessions, serialized vs "
              "concurrent drivers (network-simulated) ===\n");
  const ConcurrencyAb cab = RunConcurrencyAb();
  std::printf("8 executions serialized               %8.4f s\n", cab.serial_s);
  std::printf("8 executions on concurrent drivers    %8.4f s\n", cab.concurrent_s);
  std::printf("[measured] concurrent-session throughput %.2fx; %zu violations "
              "per execution, all runs %s\n",
              cab.speedup, cab.violations,
              cab.identical ? "bit-identical" : "DIFFER");

  std::printf("\n=== UDF / repair A/B: registered functions vs built-ins "
              "(pure compute) ===\n");
  const UdfAb udf = RunUdfAb();
  std::printf("builtin aggregate GROUP BY             %8.4f s\n", udf.builtin_agg_s);
  std::printf("registered (usum) aggregate GROUP BY   %8.4f s  (%.2fx)\n",
              udf.udf_agg_s, udf.agg_ratio);
  std::printf("registered aggregate, legacy dispatch  %8.4f s  (pool %.2fx)\n",
              udf.udf_agg_legacy_s,
              udf.udf_agg_s > 0 ? udf.udf_agg_legacy_s / udf.udf_agg_s : 0);
  std::printf("repair loop, registered fn + sink      %8.4f s  (%zu cells)\n",
              udf.repair_registered_s, udf.repairs_applied);
  std::printf("repair loop, hand-rolled traversal     %8.4f s  (%zu cells)\n",
              udf.repair_manual_s, udf.repairs_manual);
  std::printf("[measured] registered-vs-builtin aggregate ratio %.2fx; both "
              "repair paths fixed %s cell sets\n",
              udf.agg_ratio,
              udf.repairs_applied == udf.repairs_manual ? "identical" : "DIFFERENT");

  std::printf("\n=== fault-tolerance A/B: 5%% injected failures (8 FDs, pure "
              "compute) + deadline (network-simulated) ===\n");
  const FaultAb fab = RunFaultAb();
  std::printf("clean unified plan                    %8.4f s\n", fab.clean_s);
  std::printf("5%% injected failures, retried        %8.4f s  (%.2fx, %llu "
              "failed / %llu retried tasks)\n",
              fab.faulted_s, fab.overhead,
              static_cast<unsigned long long>(fab.tasks_failed),
              static_cast<unsigned long long>(fab.tasks_retried));
  std::printf("deadline: clean %8.4f s, 10%% deadline run %8.4f s (%s)\n",
              fab.deadline_clean_s, fab.deadline_run_s,
              fab.deadline_exceeded ? "kDeadlineExceeded" : "NOT CUT OFF");
  std::printf("[measured] %zu violations %s under injected faults; deadline "
              "cancelled %llu execution(s)\n",
              fab.violations, fab.identical ? "bit-identical" : "DIFFER",
              static_cast<unsigned long long>(fab.executions_cancelled));

  std::printf("\n=== observability A/B: profiling off vs on (8 FDs, pipelined, "
              "fresh sessions, pure compute) ===\n");
  const ObservabilityAb obs = RunObservabilityAb(pab.pipelined_s, trace_out);
  std::printf("profiling off                         %8.4f s  (%.3fx vs "
              "pipeline A/B, %llu spans recorded)\n",
              obs.off_s, obs.off_overhead,
              static_cast<unsigned long long>(obs.spans_off));
  std::printf("profiling on                          %8.4f s  (%.3fx vs off; "
              "%zu operator spans, %zu spans total)\n",
              obs.profile_s, obs.profile_overhead, obs.operator_spans,
              obs.spans_total);
  std::printf("[measured] profile row counters %s the flat metrics "
              "(rows_scanned %llu vs %llu)\n",
              obs.rows_reconciled ? "reconcile exactly with" : "DIVERGE from",
              static_cast<unsigned long long>(obs.profile_rows_scanned),
              static_cast<unsigned long long>(obs.flat_rows_scanned));
  if (!obs.trace_path.empty()) {
    std::printf("[written] Chrome trace: %s (chrome://tracing / "
                "ui.perfetto.dev)\n",
                obs.trace_path.c_str());
  }

  std::printf("\n=== delta-incremental A/B: full re-execution vs incremental "
              "re-validation at a 1%% delta (8 FDs, pure compute) ===\n");
  const DeltaIncrementalAb dab = RunDeltaIncrementalAb();
  std::printf("table %zu rows, %zu appended per round (%zu rounds)\n",
              dab.base_rows, dab.delta_rows, dab.rounds);
  std::printf("full re-execution per delta round     %8.4f s  (%llu rows "
              "scanned)\n",
              dab.full_reexec_s,
              static_cast<unsigned long long>(dab.full_rows_scanned));
  std::printf("incremental re-validation per round   %8.4f s  (%llu delta "
              "rows, %llu groups re-merged)\n",
              dab.incremental_s,
              static_cast<unsigned long long>(dab.delta_rows_processed),
              static_cast<unsigned long long>(dab.groups_remerged));
  std::printf("[measured] incremental speedup %.2fx, delta-scaling row ratio "
              "%.1fx; %llu re-partitions; merged violation set %s the cold "
              "post-delta run\n",
              dab.speedup, dab.row_ratio,
              static_cast<unsigned long long>(dab.incremental_repartitions),
              dab.identical ? "identical to" : "DIFFERS from");

  if (!out_path.empty()) {
    char object[256];
    std::snprintf(object, sizeof(object),
                  "{\"cold_execute_s\": %.6f, \"prepared_reexec_s\": %.6f, "
                  "\"speedup\": %.3f, \"reexec_repartitions\": %llu}",
                  ab.cold_s, ab.reexec_s, ab.speedup,
                  static_cast<unsigned long long>(ab.reexec_repartitions));
    MergeJsonSection(out_path, "prepared_reexec", object);
    char udf_object[384];
    std::snprintf(udf_object, sizeof(udf_object),
                  "{\"builtin_agg_s\": %.6f, \"udf_agg_s\": %.6f, "
                  "\"udf_vs_builtin_ratio\": %.3f, \"udf_agg_legacy_s\": %.6f, "
                  "\"repair_registered_s\": %.6f, \"repair_manual_s\": %.6f, "
                  "\"repairs_applied\": %zu}",
                  udf.builtin_agg_s, udf.udf_agg_s, udf.agg_ratio,
                  udf.udf_agg_legacy_s, udf.repair_registered_s,
                  udf.repair_manual_s, udf.repairs_applied);
    MergeJsonSection(out_path, "udf_repair", udf_object);
    char pipe_object[320];
    std::snprintf(pipe_object, sizeof(pipe_object),
                  "{\"peak_materialized_bytes\": %llu, "
                  "\"peak_pipelined_bytes\": %llu, \"reduction\": %.3f, "
                  "\"morsels\": %llu, \"materialized_s\": %.6f, "
                  "\"pipelined_s\": %.6f, \"violations_identical\": %d}",
                  static_cast<unsigned long long>(pab.peak_materialized),
                  static_cast<unsigned long long>(pab.peak_pipelined),
                  pab.reduction, static_cast<unsigned long long>(pab.morsels),
                  pab.materialized_s, pab.pipelined_s, pab.identical ? 1 : 0);
    MergeJsonSection(out_path, "pipeline", pipe_object);
    char ooc_object[384];
    std::snprintf(ooc_object, sizeof(ooc_object),
                  "{\"footprint_bytes\": %llu, \"budget_bytes\": %llu, "
                  "\"bytes_spilled\": %llu, \"pages_evicted\": %llu, "
                  "\"pool_peak_resident_bytes\": %llu, \"within_budget\": %d, "
                  "\"in_memory_s\": %.6f, \"out_of_core_s\": %.6f, "
                  "\"slowdown\": %.3f, \"violations_identical\": %d}",
                  static_cast<unsigned long long>(oab.footprint_bytes),
                  static_cast<unsigned long long>(oab.budget_bytes),
                  static_cast<unsigned long long>(oab.bytes_spilled),
                  static_cast<unsigned long long>(oab.pages_evicted),
                  static_cast<unsigned long long>(oab.pool_peak_resident),
                  oab.within_budget ? 1 : 0, oab.in_memory_s,
                  oab.out_of_core_s, oab.slowdown, oab.identical ? 1 : 0);
    MergeJsonSection(out_path, "out_of_core", ooc_object);
    char conc_object[256];
    std::snprintf(conc_object, sizeof(conc_object),
                  "{\"sessions\": %zu, \"serial_s\": %.6f, "
                  "\"concurrent_s\": %.6f, \"speedup\": %.3f, "
                  "\"violations_identical\": %d}",
                  cab.sessions, cab.serial_s, cab.concurrent_s, cab.speedup,
                  cab.identical ? 1 : 0);
    MergeJsonSection(out_path, "concurrency", conc_object);
    char fault_object[384];
    std::snprintf(fault_object, sizeof(fault_object),
                  "{\"clean_s\": %.6f, \"faulted_s\": %.6f, "
                  "\"overhead\": %.3f, \"tasks_failed\": %llu, "
                  "\"tasks_retried\": %llu, \"violations_identical\": %d, "
                  "\"deadline_clean_s\": %.6f, \"deadline_run_s\": %.6f, "
                  "\"deadline_exceeded\": %d}",
                  fab.clean_s, fab.faulted_s, fab.overhead,
                  static_cast<unsigned long long>(fab.tasks_failed),
                  static_cast<unsigned long long>(fab.tasks_retried),
                  fab.identical ? 1 : 0, fab.deadline_clean_s,
                  fab.deadline_run_s, fab.deadline_exceeded ? 1 : 0);
    MergeJsonSection(out_path, "fault_tolerance", fault_object);
    char obs_object[384];
    std::snprintf(obs_object, sizeof(obs_object),
                  "{\"off_s\": %.6f, \"profile_s\": %.6f, "
                  "\"off_overhead\": %.3f, \"profile_overhead\": %.3f, "
                  "\"spans_recorded_off\": %llu, \"operator_spans\": %zu, "
                  "\"spans_total\": %zu, \"rows_reconciled\": %d}",
                  obs.off_s, obs.profile_s, obs.off_overhead,
                  obs.profile_overhead,
                  static_cast<unsigned long long>(obs.spans_off),
                  obs.operator_spans, obs.spans_total,
                  obs.rows_reconciled ? 1 : 0);
    MergeJsonSection(out_path, "observability", obs_object);
    char delta_object[448];
    std::snprintf(delta_object, sizeof(delta_object),
                  "{\"base_rows\": %zu, \"delta_rows\": %zu, "
                  "\"full_reexec_s\": %.6f, \"incremental_s\": %.6f, "
                  "\"speedup\": %.3f, \"full_rows_scanned\": %llu, "
                  "\"delta_rows_processed\": %llu, \"row_ratio\": %.3f, "
                  "\"groups_remerged\": %llu, "
                  "\"incremental_repartitions\": %llu, "
                  "\"violations_identical\": %d}",
                  dab.base_rows, dab.delta_rows, dab.full_reexec_s,
                  dab.incremental_s, dab.speedup,
                  static_cast<unsigned long long>(dab.full_rows_scanned),
                  static_cast<unsigned long long>(dab.delta_rows_processed),
                  dab.row_ratio,
                  static_cast<unsigned long long>(dab.groups_remerged),
                  static_cast<unsigned long long>(dab.incremental_repartitions),
                  dab.identical ? 1 : 0);
    MergeJsonSection(out_path, "delta_incremental", delta_object);
  }

  if (check) {
    // CI gate: prepared re-execution must stay clearly ahead of a cold
    // one-shot Execute (target ≥2×), and it must really skip
    // re-partitioning — otherwise the plan/partition reuse has regressed.
    const double kMinSpeedup = 2.0;
    if (ab.speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "[check] FAILED: prepared re-execution speedup %.2fx is below "
                   "the %.1fx gate\n",
                   ab.speedup, kMinSpeedup);
      return 1;
    }
    if (ab.reexec_repartitions != 0) {
      std::fprintf(stderr,
                   "[check] FAILED: %llu re-partitions during prepared "
                   "re-executions (expected 0: cache misses have crept in)\n",
                   static_cast<unsigned long long>(ab.reexec_repartitions));
      return 1;
    }
    std::printf("[check] prepared re-execution gate passed (%.2fx, 0 re-partitions)\n",
                ab.speedup);

    // UDF gate: a registered monoid-annotated aggregate must stay within
    // 1.3× of the equivalent built-in (registry dispatch in the noise),
    // and the registered repair loop must compute the same repairs as the
    // hand-rolled baseline.
    const double kMaxUdfRatio = 1.3;
    if (udf.agg_ratio > kMaxUdfRatio) {
      std::fprintf(stderr,
                   "[check] FAILED: registered aggregate is %.2fx the builtin "
                   "(gate %.1fx)\n",
                   udf.agg_ratio, kMaxUdfRatio);
      return 1;
    }
    if (udf.repairs_applied != udf.repairs_manual || udf.repairs_applied == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: registered repair fixed %zu cell(s), "
                   "hand-rolled baseline fixed %zu\n",
                   udf.repairs_applied, udf.repairs_manual);
      return 1;
    }
    std::printf("[check] UDF aggregate gate passed (%.2fx ≤ %.1fx; %zu repairs "
                "match the baseline)\n",
                udf.agg_ratio, kMaxUdfRatio, udf.repairs_applied);

    // Pipeline gate: morsel-driven execution must hold peak transient
    // memory ≥4× below the materialize-first path on the 8-FD unified plan
    // while producing bit-identical violations, with morsels really
    // flowing — otherwise operator-level pipelining has regressed to
    // materialization (or worse, changed results).
    const double kMinPeakReduction = 4.0;
    if (!pab.identical || pab.violations == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: pipelined violations %s materialize-first "
                   "(%zu tuples)\n",
                   pab.identical ? "match" : "DIFFER from", pab.violations);
      return 1;
    }
    if (pab.morsels == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: pipelined execution processed 0 morsels "
                   "(pipeline fell back to materialization)\n");
      return 1;
    }
    if (pab.reduction < kMinPeakReduction) {
      std::fprintf(stderr,
                   "[check] FAILED: pipelined peak memory reduction %.2fx is "
                   "below the %.1fx gate (%llu vs %llu bytes)\n",
                   pab.reduction, kMinPeakReduction,
                   static_cast<unsigned long long>(pab.peak_materialized),
                   static_cast<unsigned long long>(pab.peak_pipelined));
      return 1;
    }
    std::printf("[check] pipeline gate passed (%.2fx ≥ %.1fx peak reduction, "
                "%llu morsels, %zu bit-identical violations)\n",
                pab.reduction, kMinPeakReduction,
                static_cast<unsigned long long>(pab.morsels), pab.violations);

    // Out-of-core gates: under a pool budgeted at 1/8 of the dataset
    // footprint the unified plan must spill (otherwise the budget isn't
    // binding and the A/B proves nothing), hold pool residency within the
    // budget, stay within 2× of the in-memory wall-clock, and produce
    // bit-identical violations — the spill generations' first-occurrence
    // order must replay the in-memory aggregation exactly.
    const double kMaxOutOfCoreSlowdown = 2.0;
    if (!oab.identical || oab.violations == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: out-of-core violations %s the in-memory "
                   "run (%zu tuples)\n",
                   oab.identical ? "match" : "DIFFER from", oab.violations);
      return 1;
    }
    if (oab.bytes_spilled == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: 0 bytes spilled under a 1/8-footprint "
                   "pool budget (%llu of %llu bytes) — the budget never bit\n",
                   static_cast<unsigned long long>(oab.budget_bytes),
                   static_cast<unsigned long long>(oab.footprint_bytes));
      return 1;
    }
    if (!oab.within_budget) {
      std::fprintf(stderr,
                   "[check] FAILED: pool peak residency %llu bytes exceeds "
                   "the %llu-byte budget\n",
                   static_cast<unsigned long long>(oab.pool_peak_resident),
                   static_cast<unsigned long long>(oab.budget_bytes));
      return 1;
    }
    if (oab.slowdown > kMaxOutOfCoreSlowdown) {
      std::fprintf(stderr,
                   "[check] FAILED: out-of-core slowdown %.2fx exceeds the "
                   "%.1fx gate (%.4f s vs %.4f s in-memory)\n",
                   oab.slowdown, kMaxOutOfCoreSlowdown, oab.out_of_core_s,
                   oab.in_memory_s);
      return 1;
    }
    std::printf("[check] out-of-core gate passed (%.2fx ≤ %.1fx slowdown, "
                "%llu bytes spilled, peak residency %llu ≤ %llu budget, %zu "
                "bit-identical violations)\n",
                oab.slowdown, kMaxOutOfCoreSlowdown,
                static_cast<unsigned long long>(oab.bytes_spilled),
                static_cast<unsigned long long>(oab.pool_peak_resident),
                static_cast<unsigned long long>(oab.budget_bytes),
                oab.violations);

    // Concurrency gate: 8 concurrent prepared sessions must clear ≥2× the
    // serialized throughput in the network-simulated regime (the waits
    // overlap), with every execution bit-identical to the serial baseline —
    // otherwise the session layer has re-serialized (a stray exclusive
    // lock) or, worse, races are corrupting results.
    const double kMinConcurrentSpeedup = 2.0;
    if (!cab.identical || cab.violations == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: concurrent executions %s the serial "
                   "baseline (%zu violations per execution)\n",
                   cab.identical ? "match" : "DIFFER from", cab.violations);
      return 1;
    }
    if (cab.speedup < kMinConcurrentSpeedup) {
      std::fprintf(stderr,
                   "[check] FAILED: concurrent-session throughput %.2fx is "
                   "below the %.1fx gate (%.4f s serial vs %.4f s concurrent)\n",
                   cab.speedup, kMinConcurrentSpeedup, cab.serial_s,
                   cab.concurrent_s);
      return 1;
    }
    std::printf("[check] concurrency gate passed (%.2fx ≥ %.1fx, %zu "
                "bit-identical violations per execution)\n",
                cab.speedup, kMinConcurrentSpeedup, cab.violations);

    // Fault-tolerance gates: retried executions must stay exact (same
    // violations in the same order — a retry is a per-partition
    // re-execution, and the monoid merges make it reproduce the partials
    // bit for bit) and cheap (≤1.5× clean); the retry path must actually
    // fire; and a deadline 10× shorter than the clean wall-clock must cut
    // the execution off with kDeadlineExceeded instead of letting it run
    // to completion.
    const double kMaxFaultOverhead = 1.5;
    if (!fab.identical || fab.violations == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: violations under injected faults %s the "
                   "clean run (%zu tuples)\n",
                   fab.identical ? "match" : "DIFFER from", fab.violations);
      return 1;
    }
    if (fab.tasks_retried == 0) {
      std::fprintf(stderr,
                   "[check] FAILED: 0 tasks retried at 5%% injected failure "
                   "probability (injection or retry path is dead)\n");
      return 1;
    }
    if (fab.overhead > kMaxFaultOverhead) {
      std::fprintf(stderr,
                   "[check] FAILED: injected-fault overhead %.2fx exceeds the "
                   "%.1fx gate (%.4f s clean vs %.4f s faulted)\n",
                   fab.overhead, kMaxFaultOverhead, fab.clean_s, fab.faulted_s);
      return 1;
    }
    if (!fab.deadline_exceeded) {
      std::fprintf(stderr,
                   "[check] FAILED: execution with a 10%% deadline did not "
                   "return kDeadlineExceeded (%.4f s clean, %.4f s run)\n",
                   fab.deadline_clean_s, fab.deadline_run_s);
      return 1;
    }
    if (fab.deadline_run_s > fab.deadline_clean_s * 0.6) {
      std::fprintf(stderr,
                   "[check] FAILED: deadline run took %.4f s — not prompt "
                   "against a %.4f s clean wall-clock (gate: ≤60%%)\n",
                   fab.deadline_run_s, fab.deadline_clean_s);
      return 1;
    }
    std::printf("[check] fault-tolerance gate passed (%.2fx ≤ %.1fx overhead, "
                "%llu retries, %zu bit-identical violations, deadline cut at "
                "%.4f s / %.4f s clean)\n",
                fab.overhead, kMaxFaultOverhead,
                static_cast<unsigned long long>(fab.tasks_retried),
                fab.violations, fab.deadline_run_s, fab.deadline_clean_s);

    // Observability gates: with no recorder installed the compiled-in
    // instrumentation must record literally zero spans (hard); the
    // profile's per-operator self-counters must sum exactly to the flat
    // execution metrics (hard — the ANALYZE tree must not lie about row
    // movement); and the 8-FD plan must resolve at least 6 operator-span
    // instances (hard — the operator attribution path is alive). The
    // timing ratios are advisory: a WARNING, not a failure, because
    // wall-clock at bench scale is noisy.
    if (obs.spans_off != 0) {
      std::fprintf(stderr,
                   "[check] FAILED: %llu spans recorded with profiling off "
                   "(the disabled path must record none)\n",
                   static_cast<unsigned long long>(obs.spans_off));
      return 1;
    }
    if (!obs.rows_reconciled) {
      std::fprintf(stderr,
                   "[check] FAILED: profile operator counters do not sum to "
                   "the flat metrics (rows_scanned %llu vs %llu)\n",
                   static_cast<unsigned long long>(obs.profile_rows_scanned),
                   static_cast<unsigned long long>(obs.flat_rows_scanned));
      return 1;
    }
    if (obs.operator_spans < 6) {
      std::fprintf(stderr,
                   "[check] FAILED: only %zu operator spans in the profile "
                   "of the 8-FD plan (expected ≥6)\n",
                   obs.operator_spans);
      return 1;
    }
    if (obs.off_overhead > 1.02) {
      std::printf("[check] WARNING: profiling-off wall-clock is %.3fx the "
                  "pipeline A/B baseline (advisory budget 1.02x)\n",
                  obs.off_overhead);
    }
    if (obs.profile_overhead > 1.10) {
      std::printf("[check] WARNING: profiling-on wall-clock is %.3fx the "
                  "profiling-off run (advisory budget 1.10x)\n",
                  obs.profile_overhead);
    }
    std::printf("[check] observability gate passed (0 spans when off, "
                "%zu operator spans, row counters reconciled; overhead "
                "%.3fx off / %.3fx profiled, advisory)\n",
                obs.operator_spans, obs.off_overhead, obs.profile_overhead);

    // Delta-incremental gates: the merged (violations − retractions + new)
    // multiset must equal a cold execution over the post-delta table under
    // canonical normalization; every timed round must actually take the
    // incremental path with zero re-partitions; the delta-scaling row
    // ratio is deterministic and must clear 10×; and the wall-clock
    // speedup must clear 10× at a 1% delta (machine-local — the JSON diff
    // treats it as advisory across machines).
    const double kMinIncrementalSpeedup = 10.0;
    if (!dab.identical) {
      std::fprintf(stderr,
                   "[check] FAILED: incremental merged violation set differs "
                   "from the cold post-delta execution\n");
      return 1;
    }
    if (dab.incremental_executions != dab.rounds) {
      std::fprintf(stderr,
                   "[check] FAILED: %llu of %zu delta rounds took the "
                   "incremental path (the rest fell back to full execution)\n",
                   static_cast<unsigned long long>(dab.incremental_executions),
                   dab.rounds);
      return 1;
    }
    if (dab.incremental_repartitions != 0) {
      std::fprintf(stderr,
                   "[check] FAILED: %llu re-partitions during incremental "
                   "delta rounds (expected 0)\n",
                   static_cast<unsigned long long>(dab.incremental_repartitions));
      return 1;
    }
    if (dab.row_ratio < kMinIncrementalSpeedup) {
      std::fprintf(stderr,
                   "[check] FAILED: delta-scaling row ratio %.1fx is below "
                   "the %.0fx gate (%llu rows scanned per full round vs %llu "
                   "delta rows processed)\n",
                   dab.row_ratio, kMinIncrementalSpeedup,
                   static_cast<unsigned long long>(dab.full_rows_scanned),
                   static_cast<unsigned long long>(dab.delta_rows_processed));
      return 1;
    }
    if (dab.speedup < kMinIncrementalSpeedup) {
      std::fprintf(stderr,
                   "[check] FAILED: incremental re-validation speedup %.2fx "
                   "is below the %.0fx gate (%.4f s full vs %.4f s "
                   "incremental)\n",
                   dab.speedup, kMinIncrementalSpeedup, dab.full_reexec_s,
                   dab.incremental_s);
      return 1;
    }
    std::printf("[check] delta-incremental gate passed (%.2fx ≥ %.0fx "
                "speedup, row ratio %.1fx, 0 re-partitions, merged set "
                "identical to cold)\n",
                dab.speedup, kMinIncrementalSpeedup, dab.row_ratio);
  }
  return 0;
}
