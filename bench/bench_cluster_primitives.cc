// Microbenchmark for the virtual-cluster primitives underneath every
// operator: RunOnNodes dispatch latency (persistent worker pool vs. the
// legacy spawn-per-call thread model) and shuffle throughput as a function
// of the batch size. Emits a machine-readable BENCH_cluster.json so the
// perf trajectory of the substrate is tracked across PRs.
//
// Flags:
//   --smoke        tiny sizes (CTest smoke run)
//   --check        exit non-zero if pool dispatch latency regresses to
//                  within 0.9× of spawn-per-call (the CI regression gate)
//   --out <path>   JSON output path (default: BENCH_cluster.json in CWD)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "engine/cluster.h"

namespace cleanm::engine {
namespace {

constexpr size_t kNodes = 8;

ClusterOptions PureComputeOptions(bool use_pool, size_t batch_rows = 1024) {
  ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.shuffle_ns_per_byte = 0;  // pure dispatch/compute cost
  opts.use_worker_pool = use_pool;
  opts.shuffle_batch_rows = batch_rows;
  return opts;
}

/// Average ns per RunOnNodes dispatch of a near-empty task.
double MeasureDispatchNs(bool use_pool, int iterations) {
  Cluster cluster(PureComputeOptions(use_pool));
  std::atomic<uint64_t> sink{0};
  // Warm-up (pool thread startup, first-touch of scheduler state).
  for (int i = 0; i < 10; i++) cluster.RunOnNodes([&](size_t n) { sink += n; });
  Timer timer;
  for (int i = 0; i < iterations; i++) {
    cluster.RunOnNodes([&](size_t n) { sink += n; });
  }
  const double total_ns = timer.ElapsedSeconds() * 1e9;
  if (sink.load() == ~uint64_t{0}) std::printf("unreachable\n");
  return total_ns / iterations;
}

std::vector<Row> MakeShuffleRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; i++) {
    rows.push_back({Value(static_cast<int64_t>(i)),
                    Value("payload-" + std::to_string(i % 1000))});
  }
  return rows;
}

/// Shuffle throughput in rows/sec for one batch size (all-remote routing:
/// every row shifts one node over, the worst case for batching to help).
double MeasureShuffleRowsPerSec(size_t batch_rows, size_t n_rows, int repeats) {
  Cluster cluster(PureComputeOptions(/*use_pool=*/true, batch_rows));
  auto data = cluster.Parallelize(MakeShuffleRows(n_rows));
  auto route = [](const Row& r) {
    return static_cast<uint64_t>(r[0].AsInt()) % kNodes + 1;
  };
  (void)cluster.Shuffle(data, route);  // warm-up
  Timer timer;
  for (int i = 0; i < repeats; i++) (void)cluster.Shuffle(data, route);
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(n_rows) * repeats / seconds;
}

}  // namespace
}  // namespace cleanm::engine

int main(int argc, char** argv) {
  using namespace cleanm;
  using namespace cleanm::engine;

  bool smoke = false, check = false;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const int dispatch_iters = smoke ? 300 : 3000;
  const size_t shuffle_rows = smoke ? 4000 : 100000;
  const int shuffle_repeats = smoke ? 2 : 5;
  const std::vector<size_t> batch_sizes = {1, 64, 256, 1024, 8192};

  std::printf("=== cluster primitives microbenchmark (%zu nodes) ===\n", kNodes);

  const double spawn_ns = MeasureDispatchNs(/*use_pool=*/false, dispatch_iters);
  const double pool_ns = MeasureDispatchNs(/*use_pool=*/true, dispatch_iters);
  const double dispatch_speedup = spawn_ns / pool_ns;
  std::printf("RunOnNodes dispatch: spawn-per-call %10.0f ns   worker-pool %10.0f ns"
              "   speedup %.2fx\n",
              spawn_ns, pool_ns, dispatch_speedup);

  std::printf("shuffle throughput (%zu rows, all-remote routing):\n", shuffle_rows);
  std::vector<std::pair<size_t, double>> shuffle_results;
  for (size_t batch : batch_sizes) {
    const double rps = MeasureShuffleRowsPerSec(batch, shuffle_rows, shuffle_repeats);
    shuffle_results.emplace_back(batch, rps);
    std::printf("  batch %5zu rows: %12.0f rows/sec\n", batch, rps);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"cluster_primitives\",\n");
  std::fprintf(out, "  \"config\": {\"nodes\": %zu, \"smoke\": %s, "
                    "\"dispatch_iterations\": %d, \"shuffle_rows\": %zu},\n",
               kNodes, smoke ? "true" : "false", dispatch_iters, shuffle_rows);
  std::fprintf(out, "  \"dispatch\": {\"spawn_per_call_ns\": %.1f, "
                    "\"worker_pool_ns\": %.1f, \"speedup\": %.3f},\n",
               spawn_ns, pool_ns, dispatch_speedup);
  std::fprintf(out, "  \"shuffle\": [\n");
  for (size_t i = 0; i < shuffle_results.size(); i++) {
    std::fprintf(out, "    {\"batch_rows\": %zu, \"rows_per_sec\": %.0f}%s\n",
                 shuffle_results[i].first, shuffle_results[i].second,
                 i + 1 < shuffle_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[written] %s\n", out_path.c_str());

  if (check) {
    // Generous gate: the pool must beat spawn-per-call by a clear margin.
    // If someone regresses RunOnNodes back to spawning threads, pool and
    // spawn latency converge and this trips.
    if (pool_ns > 0.9 * spawn_ns) {
      std::fprintf(stderr,
                   "REGRESSION: worker-pool dispatch (%.0f ns) is not clearly "
                   "faster than spawn-per-call (%.0f ns)\n",
                   pool_ns, spawn_ns);
      return 1;
    }
    std::printf("[check] dispatch latency gate passed (%.2fx)\n", dispatch_speedup);
  }
  return 0;
}
