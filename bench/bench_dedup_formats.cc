// E8 — Figure 7: duplicate elimination over DBLP in four representations:
// nested JSON, nested colpack ("Parquet"), flattened CSV, flattened colpack.
//
// Two publications are duplicates when they share journal and title and
// their records are ≥ 80% similar; both systems block on (journal, title).
//
// Paper shape: nested representations beat flattened ones (flattening
// multiplies the rows); Spark SQL is competitive at the small size but
// scales worse than CleanDB at the large one (skew sensitivity).
#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "datagen/generators.h"
#include "storage/colpack.h"
#include "storage/csv.h"
#include "storage/json.h"

namespace cleanm {
namespace {

CleanDBOptions BenchOptions() {
  CleanDBOptions opts;
  opts.num_nodes = 8;
  // Per-byte shuffle cost including serialization (see DESIGN.md).
  opts.shuffle_ns_per_byte = 40.0;
  return opts;
}

DedupClause DblpDedup() {
  DedupClause dedup;
  dedup.op = FilteringAlgo::kExactKey;  // block on (journal, title)
  dedup.metric = SimilarityMetric::kLevenshtein;
  dedup.theta = 0.8;
  dedup.attributes = {ParseCleanMExpr("p.journal").ValueOrDie(),
                      ParseCleanMExpr("p.title").ValueOrDie()};
  return dedup;
}

template <typename System>
double TimeDedup(System& system, const Dataset& data) {
  system.RegisterTable("dblp", data);
  auto r = system.Deduplicate("dblp", "p", DblpDedup());
  return r.ok() ? r.value().seconds : -1;
}

}  // namespace
}  // namespace cleanm

int main(int argc, char** argv) {
  using namespace cleanm;
  namespace fs = std::filesystem;
  // --smoke: tiny sizes so CTest can verify the bench end to end.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::vector<size_t> row_sweep =
      smoke ? std::vector<size_t>{300} : std::vector<size_t>{4000, 8000};
  // Per-process dir: concurrent ctest runs must not share bench files.
  const auto tmp = fs::temp_directory_path() /
                   ("cleanm_fmt_bench_" + std::to_string(::getpid()));
  fs::create_directories(tmp);

  std::printf("=== E8 — Figure 7: dedup over DBLP representations ===\n");
  std::printf("paper: nested (JSON/Parquet) faster than flat (CSV/Parquet_flat); "
              "SparkSQL competitive at 5GB-scale, slower at 10GB-scale\n\n");

  for (size_t rows : row_sweep) {
    datagen::DblpOptions dopts;
    dopts.rows = rows;
    dopts.duplicate_fraction = 0.10;
    dopts.skew = 1.1;  // hot titles: the skew that hurts sort-based shuffles
    auto nested = datagen::MakeDblp(dopts);
    auto flat = FlattenListColumn(nested, "author").ValueOrDie();

    const std::string json_path = (tmp / "dblp.jsonl").string();
    const std::string cpk_path = (tmp / "dblp.cpk").string();
    const std::string csv_path = (tmp / "dblp_flat.csv").string();
    const std::string cpkf_path = (tmp / "dblp_flat.cpk").string();
    CLEANM_CHECK(WriteJsonLines(nested, json_path).ok());
    CLEANM_CHECK(WriteColpack(nested, cpk_path).ok());
    CLEANM_CHECK(WriteCsv(flat, csv_path).ok());
    CLEANM_CHECK(WriteColpack(flat, cpkf_path).ok());

    struct FormatCase {
      const char* label;
      std::string path;
      int format;  // 0=json, 1=colpack, 2=csv
    };
    const FormatCase cases[] = {{"JSON", json_path, 0},
                                {"Parquet(colpack)", cpk_path, 1},
                                {"CSV_flat", csv_path, 2},
                                {"Parquet_flat", cpkf_path, 1}};
    std::printf("--- DBLP %zu publications (%zu flat rows) ---\n", nested.num_rows(),
                flat.num_rows());
    std::printf("%-18s %12s %12s\n", "format", "CleanDB(s)", "SparkSQL(s)");
    for (const auto& c : cases) {
      auto load = [&]() {
        switch (c.format) {
          case 0: return ReadJsonLines(c.path).ValueOrDie();
          case 1: return ReadColpack(c.path).ValueOrDie();
          default: return ReadCsv(c.path).ValueOrDie();
        }
      };
      {  // Warm-up (page cache + allocator) so system order is fair.
        CleanDB warm(BenchOptions());
        auto data = load();
        CLEANM_CHECK(TimeDedup(warm, data) >= 0);
      }
      Timer t_cdb;
      CleanDB cleandb(BenchOptions());
      {
        auto data = load();
        CLEANM_CHECK(TimeDedup(cleandb, data) >= 0);
      }
      const double cdb = t_cdb.ElapsedSeconds();
      Timer t_spark;
      SparkSqlSim spark(BenchOptions());
      {
        auto data = load();
        CLEANM_CHECK(TimeDedup(spark, data) >= 0);
      }
      const double sp = t_spark.ElapsedSeconds();
      std::printf("%-18s %12.3f %12.3f\n", c.label, cdb, sp);
    }
    std::printf("\n");
  }
  std::printf("[measured] verify nested < flat per system, and the CleanDB/SparkSQL "
              "gap widening at the larger size.\n");
  fs::remove_all(tmp);
  return 0;
}
