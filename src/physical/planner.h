// Physical planner/executor: lowers algebra plans onto the virtual cluster
// (paper Section 6, Table 2).
//
// Operator mapping (Table 2 of the paper, Spark column → engine column):
//   Select      → Cluster::Filter
//   Reduce      → map + driver-side monoid fold
//   Unnest      → Cluster::FlatMap
//   Nest        → aggregate-by-key under the configured strategy: CleanDB
//                 uses local pre-aggregation (aggregateByKey →
//                 mapPartitions); the baselines use sort-/hash-shuffles
//   Equi join   → engine::HashEquiJoin
//   Theta join  → engine::ThetaJoin under the configured algorithm
//                 (CleanDB: statistics-aware matrix partitioning)
//   Outer join  → engine::HashLeftOuterJoin
//
// The executor also implements the two sharing mechanisms enabled by the
// algebra rewriter: a scan cache (each table parallelized once per query)
// and a nest cache (a coalesced shared Nest node executes once and feeds
// every consumer).
#pragma once

#include <map>
#include <string>

#include "algebra/algebra.h"
#include "algebra/algebra_eval.h"  // Catalog, CollectVars
#include "engine/aggregate.h"
#include "engine/cluster.h"
#include "engine/join.h"
#include "physical/compile.h"

namespace cleanm {

/// Knobs distinguishing CleanDB from the baseline systems.
struct PhysicalOptions {
  engine::AggregateStrategy aggregate_strategy =
      engine::AggregateStrategy::kLocalCombine;
  engine::ThetaJoinAlgo theta_algo = engine::ThetaJoinAlgo::kMatrix;
};

/// \brief Per-query execution state: cluster, catalog, options, caches.
struct Executor {
  engine::Cluster* cluster;
  const Catalog* catalog;
  PhysicalOptions options;

  /// Scan cache — the shared-scan DAG of Figure 1: each table is read and
  /// parallelized once per query.
  std::map<std::string, engine::Partitioned> scan_cache;
  /// Wrapped-scan cache keyed by (table, var): the {var: record} tuple wrap
  /// of a scan is pure, so repeated scans of the same alias reuse it
  /// instead of paying a Map dispatch + copy per consumer.
  std::map<std::pair<std::string, std::string>, engine::Partitioned> wrap_cache;
  /// Nest cache keyed by node identity — coalesced Nests execute once.
  std::map<const AlgOp*, engine::Partitioned> nest_cache;

  /// Executes a plan (any root except Reduce), returning distributed
  /// tuples. Tuple layout matches CollectVars(plan).
  Result<engine::Partitioned> Run(const AlgOpPtr& plan);

  /// Executes a full plan; Reduce roots fold to a single Value, other
  /// roots collect their tuples into a list Value (same convention as the
  /// reference evaluator).
  Result<Value> RunToValue(const AlgOpPtr& plan);
};

}  // namespace cleanm
