// Physical planner/executor: lowers algebra plans onto the virtual cluster
// (paper Section 6, Table 2).
//
// Operator mapping (Table 2 of the paper, Spark column → engine column):
//   Select      → Cluster::Filter
//   Reduce      → map + driver-side monoid fold
//   Unnest      → Cluster::FlatMap
//   Nest        → aggregate-by-key under the configured strategy: CleanDB
//                 uses local pre-aggregation (aggregateByKey →
//                 mapPartitions); the baselines use sort-/hash-shuffles
//   Equi join   → engine::HashEquiJoin
//   Theta join  → engine::ThetaJoin under the configured algorithm
//                 (CleanDB: statistics-aware matrix partitioning)
//   Outer join  → engine::HashLeftOuterJoin
//
// The executor also implements the two sharing mechanisms enabled by the
// algebra rewriter — shared scans (each table parallelized once, Figure 1's
// DAG) and shared Nests (a coalesced Nest node executes once and feeds
// every consumer) — by reading and writing the session-owned
// PartitionCache, so the sharing extends across repeated executions of a
// PreparedQuery, not just within one query.
#pragma once

#include <map>
#include <string>

#include "algebra/algebra.h"
#include "algebra/algebra_eval.h"  // Catalog, CollectVars
#include "engine/aggregate.h"
#include "engine/cluster.h"
#include "engine/join.h"
#include "physical/compile.h"
#include "physical/partition_cache.h"

namespace cleanm {

class BufferPool;
class SpillContext;

/// Knobs distinguishing CleanDB from the baseline systems.
struct PhysicalOptions {
  engine::AggregateStrategy aggregate_strategy =
      engine::AggregateStrategy::kLocalCombine;
  engine::ThetaJoinAlgo theta_algo = engine::ThetaJoinAlgo::kMatrix;
};

/// \brief Execution state: cluster, catalog, options, session cache.
///
/// The cache outlives the executor (a session runs many executors over its
/// lifetime); an executor is cheap and constructed per execution.
struct Executor {
  Executor(engine::Cluster* cluster_in, const Catalog* catalog_in,
           PhysicalOptions options_in, PartitionCache* cache_in,
           bool persist_nests_in = true,
           const FunctionRegistry* functions_in = nullptr)
      : cluster(cluster_in),
        catalog(catalog_in),
        options(options_in),
        functions(functions_in ? functions_in : catalog_in->functions),
        cache(cache_in),
        persist_nests(persist_nests_in) {}

  engine::Cluster* cluster = nullptr;
  const Catalog* catalog = nullptr;
  PhysicalOptions options;
  /// Session function registry (may be null): registered scalars resolve
  /// inside compiled expressions, registered aggregates supply Nest/Reduce
  /// monoids whose partial accumulators merge across worker nodes like the
  /// built-ins. Defaults to the catalog's registry.
  const FunctionRegistry* functions = nullptr;
  /// Session-owned partition cache (required): scans, wrapped scans, and
  /// Nest outputs are looked up and published here, keyed by table
  /// generation and active partition count.
  PartitionCache* cache = nullptr;
  /// When false, Nest outputs go into `local_nests` instead of the session
  /// cache. Nest entries are keyed by plan-node identity, so outputs of
  /// *transient* plans (one-shot Execute, the programmatic ops) could
  /// never be hit again — persisting them would only pin dead partitions
  /// and LRU-evict live ones. Within-execution sharing of a coalesced
  /// Nest (Figure 1) works in either mode.
  bool persist_nests = true;
  std::map<const AlgOp*, engine::Partitioned> local_nests;
  /// Per-execution poison-row quarantine (null = off). When set, pipelined
  /// segments route a row whose compiled expression or UDF throws into the
  /// sink (recorded with source label, node, and row ordinal) and skip it
  /// instead of failing the execution; past the sink's cap the execution
  /// aborts. The materialize-first path ignores it.
  engine::QuarantineSink* quarantine = nullptr;
  /// Buffer pool for page-backed table scans (null = scans use the
  /// resident Dataset). Set by the session/execution alongside `spill`.
  BufferPool* pool = nullptr;
  /// Per-execution spill context (null = breakers never spill). When set
  /// and over budget, Nest partials and hash-join build sides go to the
  /// spill file and are re-read for the merge/probe phase.
  SpillContext* spill = nullptr;
  /// Delta-extended scan rebuild: on a base-scan cache miss, a cached
  /// partitioning of an earlier generation of the same table may be
  /// patched forward through the table's delta log (rows removed/appended
  /// in place of a full re-partition), as long as the whole window since
  /// that generation is mutations. False (ExecOptions::incremental=false)
  /// forces every miss to re-partition from the catalog dataset.
  bool delta_scan = true;

  /// Compile context for this execution: registered functions + the
  /// cluster's metrics (udf_calls accounting).
  CompileEnv Env() const { return {functions, &cluster->metrics()}; }

  /// Executes a plan (any root except Reduce), returning distributed
  /// tuples. Tuple layout matches CollectVars(plan). This is the
  /// *materialize-first* path: every operator's full output exists as a
  /// Partitioned before its consumer runs (kept as the
  /// ExecOptions::pipeline=false baseline; each such buffer is charged to
  /// the peak_bytes_materialized gauge).
  Result<engine::Partitioned> Run(const AlgOpPtr& plan);

  /// Executes a full plan; Reduce roots fold to a single Value, other
  /// roots collect their tuples into a list Value (same convention as the
  /// reference evaluator).
  Result<Value> RunToValue(const AlgOpPtr& plan);

  // ---- Pipelined execution (operator-level streaming; pipeline.cc) ----
  //
  // The plan decomposes into MorselSource → Transform* chains: Select /
  // Unnest stages stream fixed-size morsels from a resident source (a
  // cached scan, a Nest output, a Join output) without materializing any
  // intermediate operator output; pipeline *breakers* sit only at
  // Nest / Reduce / shuffle (join) boundaries, and a Nest consumes its own
  // input morsel-wise (engine::MorselAggregator), so the keyed expansion
  // is never materialized either. Results are bit-identical to Run /
  // RunToValue: per-node row order, fold order, and node-major delivery all
  // match the materializing path.

  /// Streams the plan's output tuples (layout CollectVars(plan)) to
  /// `consume` in node-major order, `morsel_rows` rows at a time. A non-OK
  /// status from `consume` aborts the execution early and is returned.
  /// The root must not be a Reduce (use RunToValuePipelined).
  Status RunPipelined(const AlgOpPtr& plan, size_t morsel_rows,
                      const std::function<Status(size_t node, engine::Partition&&)>&
                          consume);

  /// Pipelined counterpart of RunToValue: Reduce roots fold morsel-fed
  /// per-node partials; other roots collect their streamed tuples.
  Result<Value> RunToValuePipelined(const AlgOpPtr& plan, size_t morsel_rows);

  // ---- Internals shared by planner.cc and pipeline.cc ----

  /// A compiled pipeline segment: the resident source partitioning plus the
  /// composed row-wise transform chain above it. Owned (breaker-output)
  /// storage is charged to the peak_bytes_materialized gauge for the
  /// segment's lifetime.
  struct PipelineSegment {
    PipelineSegment() = default;
    PipelineSegment(PipelineSegment&& o) noexcept { *this = std::move(o); }
    PipelineSegment& operator=(PipelineSegment&& o) noexcept {
      ReleaseNow();
      borrowed = std::move(o.borrowed);
      owned = std::move(o.owned);
      owned_bytes = o.owned_bytes;
      gauge = o.gauge;
      expand = std::move(o.expand);
      identity = o.identity;
      o.borrowed = nullptr;
      o.owned_bytes = 0;
      o.gauge = nullptr;
      return *this;
    }
    PipelineSegment(const PipelineSegment&) = delete;
    PipelineSegment& operator=(const PipelineSegment&) = delete;
    ~PipelineSegment() { ReleaseNow(); }

    void ReleaseNow() {
      if (gauge && owned_bytes) {
        gauge->ReleaseMaterialized(owned_bytes);
        owned_bytes = 0;
      }
    }
    const engine::Partitioned& data() const {
      return borrowed ? *borrowed : owned;
    }

    /// Pinned cache-resident source: the pin keeps the partitioning alive
    /// even if a concurrent execution's eviction or RegisterTable
    /// invalidation drops it from the cache mid-stream.
    PartitionPin borrowed;
    engine::Partitioned owned;     ///< breaker output owned by the segment
    uint64_t owned_bytes = 0;      ///< `owned`'s charge on the gauge
    QueryMetrics* gauge = nullptr;
    engine::MorselExpand expand;   ///< source row → output tuples
    bool identity = false;         ///< no transforms: source rows pass through
  };

  /// A Nest stage compiled to physical form: the keyed expansion feeding
  /// the aggregation (tuple-level, so the pipelined path fuses it as a
  /// chain terminal without re-wrapping rows), and the monoid
  /// AggregateSpec.
  struct CompiledNest {
    std::function<void(const Value& tuple, engine::Partition*)> expand;
    engine::AggregateSpec spec;
  };

  /// `Run` with materialization accounting: the returned buffer's logical
  /// bytes stay charged on the gauge and are reported via `out_bytes`; the
  /// caller releases them when the buffer dies (cache-resident results
  /// report 0).
  Result<engine::Partitioned> RunTracked(const AlgOpPtr& plan, uint64_t* out_bytes);

  /// The {var: record} wrapped scan, resolved through (and pinned in) the
  /// session cache.
  Result<PartitionPin> WrappedScan(const AlgOp& scan);

  /// Executes a join node over already-resolved inputs.
  Result<engine::Partitioned> ExecJoin(const AlgOpPtr& plan,
                                       const engine::Partitioned& left,
                                       const engine::Partitioned& right);

  /// Compiles a Nest node's grouping expansion + aggregation spec.
  Result<CompiledNest> CompileNestStage(const AlgOpPtr& plan);

  /// Terminal continuation of a compiled transform chain: consumes each
  /// produced tuple (pipeline.cc; defaults to "append as a physical row").
  using TupleSink = std::function<void(Value, engine::Partition*)>;

  /// Decomposes `plan` into a pipeline segment (pipeline.cc). A custom
  /// `terminal` fuses the consumer into the chain — breakers use it to
  /// fold expansions without an intermediate per-row buffer.
  Result<PipelineSegment> BuildSegment(const AlgOpPtr& plan, size_t morsel_rows,
                                       TupleSink terminal = nullptr);

  /// The Nest breaker on the pipelined path: cache lookup, else morsel-fed
  /// aggregation over the input segment; the result is resident (a pinned
  /// session-cache entry or local_nests), never copied out.
  Result<PartitionPin> PipelinedNest(const AlgOpPtr& plan, size_t morsel_rows);
};

/// Every table scanned under `plan`, with the catalog's current generation
/// — the dependency set recorded on cached Nest outputs. Shared by the
/// materializing (planner.cc) and pipelined (pipeline.cc) paths: the two
/// must record identical dep sets or cache invalidation diverges.
void CollectScanDeps(const AlgOpPtr& plan, const Catalog& catalog,
                     std::vector<std::pair<std::string, uint64_t>>* deps);

}  // namespace cleanm
