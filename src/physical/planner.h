// Physical planner/executor: lowers algebra plans onto the virtual cluster
// (paper Section 6, Table 2).
//
// Operator mapping (Table 2 of the paper, Spark column → engine column):
//   Select      → Cluster::Filter
//   Reduce      → map + driver-side monoid fold
//   Unnest      → Cluster::FlatMap
//   Nest        → aggregate-by-key under the configured strategy: CleanDB
//                 uses local pre-aggregation (aggregateByKey →
//                 mapPartitions); the baselines use sort-/hash-shuffles
//   Equi join   → engine::HashEquiJoin
//   Theta join  → engine::ThetaJoin under the configured algorithm
//                 (CleanDB: statistics-aware matrix partitioning)
//   Outer join  → engine::HashLeftOuterJoin
//
// The executor also implements the two sharing mechanisms enabled by the
// algebra rewriter — shared scans (each table parallelized once, Figure 1's
// DAG) and shared Nests (a coalesced Nest node executes once and feeds
// every consumer) — by reading and writing the session-owned
// PartitionCache, so the sharing extends across repeated executions of a
// PreparedQuery, not just within one query.
#pragma once

#include <map>
#include <string>

#include "algebra/algebra.h"
#include "algebra/algebra_eval.h"  // Catalog, CollectVars
#include "engine/aggregate.h"
#include "engine/cluster.h"
#include "engine/join.h"
#include "physical/compile.h"
#include "physical/partition_cache.h"

namespace cleanm {

/// Knobs distinguishing CleanDB from the baseline systems.
struct PhysicalOptions {
  engine::AggregateStrategy aggregate_strategy =
      engine::AggregateStrategy::kLocalCombine;
  engine::ThetaJoinAlgo theta_algo = engine::ThetaJoinAlgo::kMatrix;
};

/// \brief Execution state: cluster, catalog, options, session cache.
///
/// The cache outlives the executor (a session runs many executors over its
/// lifetime); an executor is cheap and constructed per execution.
struct Executor {
  Executor(engine::Cluster* cluster_in, const Catalog* catalog_in,
           PhysicalOptions options_in, PartitionCache* cache_in,
           bool persist_nests_in = true,
           const FunctionRegistry* functions_in = nullptr)
      : cluster(cluster_in),
        catalog(catalog_in),
        options(options_in),
        functions(functions_in ? functions_in : catalog_in->functions),
        cache(cache_in),
        persist_nests(persist_nests_in) {}

  engine::Cluster* cluster = nullptr;
  const Catalog* catalog = nullptr;
  PhysicalOptions options;
  /// Session function registry (may be null): registered scalars resolve
  /// inside compiled expressions, registered aggregates supply Nest/Reduce
  /// monoids whose partial accumulators merge across worker nodes like the
  /// built-ins. Defaults to the catalog's registry.
  const FunctionRegistry* functions = nullptr;
  /// Session-owned partition cache (required): scans, wrapped scans, and
  /// Nest outputs are looked up and published here, keyed by table
  /// generation and active partition count.
  PartitionCache* cache = nullptr;
  /// When false, Nest outputs go into `local_nests` instead of the session
  /// cache. Nest entries are keyed by plan-node identity, so outputs of
  /// *transient* plans (one-shot Execute, the programmatic ops) could
  /// never be hit again — persisting them would only pin dead partitions
  /// and LRU-evict live ones. Within-execution sharing of a coalesced
  /// Nest (Figure 1) works in either mode.
  bool persist_nests = true;
  std::map<const AlgOp*, engine::Partitioned> local_nests;

  /// Compile context for this execution: registered functions + the
  /// cluster's metrics (udf_calls accounting).
  CompileEnv Env() const { return {functions, &cluster->metrics()}; }

  /// Executes a plan (any root except Reduce), returning distributed
  /// tuples. Tuple layout matches CollectVars(plan).
  Result<engine::Partitioned> Run(const AlgOpPtr& plan);

  /// Executes a full plan; Reduce roots fold to a single Value, other
  /// roots collect their tuples into a list Value (same convention as the
  /// reference evaluator).
  Result<Value> RunToValue(const AlgOpPtr& plan);
};

}  // namespace cleanm
