// Pipelined (morsel-driven) execution of physical plans.
//
// The materialize-first path (planner.cc) produces every operator's whole
// output as a Partitioned before its consumer runs, so peak memory scales
// with the largest intermediate — for cleaning plans, the keyed Nest
// expansion or an Unnest pair blow-up, i.e. the dirtiest table, not the
// result. This file implements the streaming alternative:
//
//   MorselSource → Transform* → SinkDriver
//
// A plan decomposes from the root downward: Select / Unnest stages compose
// into one per-row expansion (no intermediate buffers at all), and the walk
// stops at a pipeline *breaker* — Scan (resident in the session cache),
// Nest (aggregation; consumes its own input morsel-wise via
// engine::MorselAggregator, so even the keyed expansion never
// materializes), Join (shuffle-backed; its inputs and output materialize as
// breaker state, but stream onward). Morsels of ExecOptions::morsel_rows
// rows then flow across the persistent WorkerPool to the consumer
// (engine::Cluster::PumpToDriver / PumpOnWorkers).
//
// Equivalence contract (CI-gated): per-node row order, per-node fold order,
// and node-major delivery all match the materializing path, so violation
// sets are bit-identical between ExecOptions::pipeline = true and false.
#include <atomic>

#include "algebra/algebra_eval.h"
#include "common/trace.h"
#include "engine/aggregate.h"
#include "functions/function_registry.h"
#include "monoid/monoid.h"
#include "physical/planner.h"
#include "physical/tuple.h"

namespace cleanm {

namespace {

using engine::Partition;
using engine::Partitioned;

using engine::PartitionedLogicalBytes;

/// Continuation consuming one tuple of a transform stage.
using TupleCont = Executor::TupleSink;

/// Composes the root-first transform chain into a single per-row expansion:
/// data flows source → chain.back() → ... → chain.front() → terminal, so
/// the continuation is built from the top down. Select filters; Unnest
/// expands with the exact padding/branching of the materializing executor.
Result<engine::MorselExpand> CompileChain(const std::vector<const AlgOp*>& chain,
                                          const std::vector<AlgOpPtr>& chain_inputs,
                                          const CompileEnv& env, TupleCont terminal) {
  TupleCont k = std::move(terminal);
  if (!k) {
    k = [](Value t, Partition* out) {
      out->push_back(MakePhysicalTuple(std::move(t)));
    };
  }
  for (size_t i = 0; i < chain.size(); i++) {  // i = 0 is the root stage
    const AlgOp* op = chain[i];
    const TupleLayout layout = CollectVars(chain_inputs[i]);
    TupleCont inner = std::move(k);
    if (op->kind == AlgKind::kSelect) {
      CLEANM_ASSIGN_OR_RETURN(auto pred, CompilePredicate(op->pred, layout, env));
      k = [pred, inner](Value t, Partition* out) {
        if (pred(t)) inner(std::move(t), out);
      };
    } else {  // kUnnest / kOuterUnnest
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr path, CompileExpr(op->path, layout, env));
      const std::string var = op->path_var;
      const bool outer = op->kind == AlgKind::kOuterUnnest;
      k = [path, var, outer, inner](Value t, Partition* out) {
        const Value coll = path(t);
        auto pad = [&](Value element) {
          ValueStruct padded = t.AsStruct();
          padded.emplace_back(var, std::move(element));
          inner(Value(std::move(padded)), out);
        };
        if (coll.is_null() ||
            (coll.type() == ValueType::kList && coll.AsList().empty())) {
          if (outer) pad(Value::Null());
          return;
        }
        if (coll.type() != ValueType::kList) {
          pad(coll);  // scalar behaves as singleton (XML-style nesting)
          return;
        }
        for (const auto& element : coll.AsList()) pad(element);
      };
    }
  }
  TupleCont final_k = std::move(k);
  return engine::MorselExpand([final_k](size_t, const Row& r, Partition* out) {
    final_k(PhysicalTupleOf(r), out);
  });
}

bool IsTransform(AlgKind kind) {
  return kind == AlgKind::kSelect || kind == AlgKind::kUnnest ||
         kind == AlgKind::kOuterUnnest;
}

/// Wraps a segment's per-row expansion with the poison-row quarantine: a
/// row whose compiled expression or UDF throws is recorded (source label,
/// node, row ordinal, error) and *skipped*; past the sink's cap the error
/// aborts the execution. Expansion goes through a scratch buffer so a row
/// that throws after a partial expansion leaves no output behind.
engine::MorselExpand WithQuarantine(engine::MorselExpand inner,
                                    std::string source_label, size_t nodes,
                                    engine::QuarantineSink* sink) {
  // Row ordinals per node (the quarantine's "row id"): each producing
  // thread works one node's stream in order, so the relaxed counter is the
  // row's position within that node's source stream.
  auto ordinals = std::make_shared<std::vector<std::atomic<uint64_t>>>(nodes);
  return engine::MorselExpand([inner, source_label, ordinals, sink](
                                  size_t n, const Row& r, Partition* out) {
    const uint64_t ordinal =
        n < ordinals->size()
            ? (*ordinals)[n].fetch_add(1, std::memory_order_relaxed)
            : 0;
    thread_local Partition scratch;
    scratch.clear();
    try {
      inner(n, r, &scratch);
    } catch (const engine::StatusException&) {
      throw;  // cancellation / injected unavailability is not a poison row
    } catch (const std::exception& e) {
      engine::QuarantinedRow q;
      q.table = source_label;
      q.node = n;
      q.row = static_cast<size_t>(ordinal);
      q.error = e.what();
      Status st = sink->Record(std::move(q));
      if (!st.ok()) throw engine::StatusException(std::move(st));
      if (QueryMetrics* m = engine::MetricsScope::Current()) {
        m->rows_quarantined += 1;
      }
      return;
    }
    for (auto& row : scratch) out->push_back(std::move(row));
  });
}

/// The quarantine's source label for a segment rooted at `source`.
std::string SegmentSourceLabel(const AlgOp& source) {
  switch (source.kind) {
    case AlgKind::kScan: return source.table;
    case AlgKind::kNest: return "nest";
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: return "join";
    default: return "plan";
  }
}

/// Source label for a plan that feeds a Nest: the breaker beneath its
/// transform chain.
std::string SourceLabelOf(const AlgOpPtr& plan) {
  const AlgOp* cur = plan.get();
  while (cur != nullptr && IsTransform(cur->kind)) cur = cur->input.get();
  return cur != nullptr ? SegmentSourceLabel(*cur) : "plan";
}

/// The Nest-fold half of the quarantine: expressions compiled into the
/// aggregation (FD right-hand sides, registered aggregate units) run
/// inside AggregateSpec::init, past the segment's wrapped expand — the
/// hook catches those throws, records the row, and lets the fold skip it.
void InstallNestQuarantine(engine::AggregateSpec* spec, std::string source_label,
                           engine::QuarantineSink* sink) {
  spec->on_row_error = [source_label, sink](size_t node, size_t ordinal,
                                            const Row&, const std::exception& e) {
    engine::QuarantinedRow q;
    q.table = source_label;
    q.node = node;
    q.row = ordinal;
    q.error = e.what();
    CLEANM_RETURN_NOT_OK(sink->Record(std::move(q)));
    if (QueryMetrics* m = engine::MetricsScope::Current()) {
      m->rows_quarantined += 1;
    }
    return Status::OK();
  };
}

/// Resolves a join input: when the sub-plan is a bare breaker/scan the
/// resident partitioning is borrowed outright; otherwise its transform
/// chain streams morsel-wise into an owned buffer (still no per-operator
/// intermediates below the join).
Result<Executor::PipelineSegment> CollectInput(Executor* ex, const AlgOpPtr& plan,
                                               size_t morsel_rows) {
  CLEANM_ASSIGN_OR_RETURN(Executor::PipelineSegment seg,
                          ex->BuildSegment(plan, morsel_rows));
  if (seg.identity) return seg;
  Executor::PipelineSegment out;
  out.owned.resize(ex->cluster->num_nodes());
  engine::MorselSpec spec;
  spec.morsel_rows = morsel_rows;
  ex->cluster->PumpOnWorkers(seg.data(), spec, seg.expand,
                             [&out](size_t n, Partition&& morsel) {
                               auto& dst = out.owned[n];
                               dst.insert(dst.end(),
                                          std::make_move_iterator(morsel.begin()),
                                          std::make_move_iterator(morsel.end()));
                             });
  out.owned_bytes = PartitionedLogicalBytes(out.owned);
  out.gauge = &ex->cluster->metrics();
  out.gauge->ChargeMaterialized(out.owned_bytes);
  out.identity = true;
  return out;
}

}  // namespace

Result<PartitionPin> Executor::PipelinedNest(const AlgOpPtr& plan,
                                             size_t morsel_rows) {
  const size_t nodes = cluster->num_nodes();
  // The breaker's operator span; cache hits record too (near-zero duration,
  // which is exactly what a profile should show for a shared Nest).
  TraceScope op_span("operator", AlgKindName(plan->kind), plan.get(), -1,
                     &cluster->metrics());
  // local_nests entries live exactly as long as this per-execution Executor,
  // which outlives every segment built from them — a non-owning alias pin
  // is safe and avoids copying the partitioning into shared storage.
  auto local_pin = [](const Partitioned& data) {
    return PartitionPin(PartitionPin{}, &data);
  };
  // Execution-local entries are checked first even when persisting: a nest
  // that quarantined poison rows during its build lands here instead of the
  // session cache (see below), and later consumers in this execution must
  // share it rather than rebuild.
  auto local = local_nests.find(plan.get());
  if (local != local_nests.end()) {
    op_span.SetRowsOut(engine::Cluster::TotalRows(local->second));
    return local_pin(local->second);
  }
  if (persist_nests) {
    const Catalog& cat = *catalog;
    if (PartitionPin cached = cache->FindNest(
            plan.get(), nodes,
            [&cat](const std::string& t) { return cat.GenerationOf(t); })) {
      op_span.SetRowsOut(engine::Cluster::TotalRows(*cached));
      return cached;
    }
  }

  CLEANM_ASSIGN_OR_RETURN(CompiledNest compiled, CompileNestStage(plan));
  if (quarantine != nullptr) {
    InstallNestQuarantine(&compiled.spec, SourceLabelOf(plan->input), quarantine);
  }
  // The breaker consumes its input morsel-wise: each worker expands its own
  // rows through the segment's transforms *fused with* the keyed expansion
  // (passed as the chain's terminal continuation, so no per-row
  // intermediate buffer exists), then folds the (key, tuple) pairs
  // straight into node-local aggregation state — the keyed Partitioned of
  // the materializing path never exists.
  auto nest_expand = compiled.expand;
  CLEANM_ASSIGN_OR_RETURN(
      PipelineSegment seg,
      BuildSegment(plan->input, morsel_rows,
                   [nest_expand](Value t, Partition* out) {
                     nest_expand(t, out);
                   }));
  engine::MorselAggregator agg(*cluster, compiled.spec, options.aggregate_strategy,
                               spill);
  engine::MorselSpec spec;
  spec.morsel_rows = morsel_rows;
  const size_t quarantined_before = quarantine ? quarantine->size() : 0;
  cluster->PumpOnWorkers(seg.data(), spec, seg.expand,
                         [&agg](size_t n, Partition&& morsel) {
                           agg.Accumulate(n, std::move(morsel));
                         });
  seg.ReleaseNow();
  LoadReport load;
  Partitioned result = agg.Finish(&load);
  if (op_span.active()) {
    // Routed (pre-aggregation) per-node distribution: the skew signal.
    op_span.SetNodeRows(std::move(load.rows_per_node));
    op_span.SetRowsOut(engine::Cluster::TotalRows(result));
  }

  // A Nest built while rows were being quarantined is missing those rows —
  // publishing it to the session cache would serve the incomplete
  // partitioning to later (possibly quarantine-free) executions. Keep it
  // execution-local instead; within-execution sharing still works.
  const bool poisoned =
      quarantine && quarantine->size() > quarantined_before;
  if (!persist_nests || poisoned) {
    auto placed = local_nests.emplace(plan.get(), std::move(result)).first;
    return local_pin(placed->second);
  }
  std::vector<std::pair<std::string, uint64_t>> deps;
  CollectScanDeps(plan, *catalog, &deps);
  return cache->PutNest(plan, nodes, std::move(deps), std::move(result));
}

Result<Executor::PipelineSegment> Executor::BuildSegment(const AlgOpPtr& plan,
                                                         size_t morsel_rows,
                                                         TupleSink terminal) {
  if (!plan) return Status::Internal("null physical plan");
  if (!cache) return Status::Internal("Executor has no partition cache");

  std::vector<const AlgOp*> chain;        // root-first transform stages
  std::vector<AlgOpPtr> chain_inputs;     // their inputs (layout anchors)
  const AlgOpPtr* cur = &plan;
  while (IsTransform((*cur)->kind)) {
    chain.push_back(cur->get());
    chain_inputs.push_back((*cur)->input);
    cur = &(*cur)->input;
  }
  const AlgOpPtr& source = *cur;

  PipelineSegment seg;
  switch (source->kind) {
    case AlgKind::kScan: {
      CLEANM_ASSIGN_OR_RETURN(seg.borrowed, WrappedScan(*source));
      break;
    }
    case AlgKind::kNest: {
      CLEANM_ASSIGN_OR_RETURN(seg.borrowed, PipelinedNest(source, morsel_rows));
      break;
    }
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      TraceScope join_span("operator", AlgKindName(source->kind), source.get(),
                           -1, &cluster->metrics());
      CLEANM_ASSIGN_OR_RETURN(PipelineSegment left,
                              CollectInput(this, source->input, morsel_rows));
      // Resolving the right side may mutate the cache (its Nest build
      // Put-inserts, and an insert can LRU-evict the entry the left side
      // borrows under a byte budget) — the left segment's pin keeps the
      // borrowed partitioning alive through that, so no detach copy is
      // needed.
      CLEANM_ASSIGN_OR_RETURN(PipelineSegment right,
                              CollectInput(this, source->right, morsel_rows));
      CLEANM_ASSIGN_OR_RETURN(seg.owned, ExecJoin(source, left.data(), right.data()));
      seg.owned_bytes = PartitionedLogicalBytes(seg.owned);
      seg.gauge = &cluster->metrics();
      seg.gauge->ChargeMaterialized(seg.owned_bytes);
      if (join_span.active()) {
        join_span.SetRows(engine::Cluster::TotalRows(left.data()) +
                              engine::Cluster::TotalRows(right.data()),
                          engine::Cluster::TotalRows(seg.owned));
        std::vector<uint64_t> node_rows;
        node_rows.reserve(seg.owned.size());
        for (const auto& p : seg.owned) node_rows.push_back(p.size());
        join_span.SetNodeRows(std::move(node_rows));
      }
      break;
    }
    case AlgKind::kReduce:
      return Status::InvalidArgument("Reduce cannot feed a pipeline segment");
    default:
      return Status::Internal("unhandled pipeline source kind");
  }

  if (chain.empty() && !terminal) {
    // Identity passthrough cannot throw per-row — no quarantine wrap needed.
    seg.identity = true;
    seg.expand = [](size_t, const Row& r, Partition* out) { out->push_back(r); };
    return seg;
  }
  if (chain.empty()) {
    // Terminal only: apply the consumer's continuation to each source row.
    TupleSink sink = std::move(terminal);
    seg.expand = [sink](size_t, const Row& r, Partition* out) {
      sink(PhysicalTupleOf(r), out);
    };
  } else {
    CLEANM_ASSIGN_OR_RETURN(
        seg.expand, CompileChain(chain, chain_inputs, Env(), std::move(terminal)));
  }
  if (quarantine) {
    seg.expand = WithQuarantine(std::move(seg.expand), SegmentSourceLabel(*source),
                                cluster->num_nodes(), quarantine);
  }
  return seg;
}

Status Executor::RunPipelined(
    const AlgOpPtr& plan, size_t morsel_rows,
    const std::function<Status(size_t node, engine::Partition&&)>& consume) {
  if (!plan) return Status::Internal("null physical plan");
  if (plan->kind == AlgKind::kReduce) {
    return Status::InvalidArgument("Reduce root must go through RunToValuePipelined");
  }
  // The root operator span for the fused transform chain: Select/Unnest
  // stages compile into the segment's expansion, so the chain's work (and
  // counter movement) lands here rather than on per-stage spans.
  TraceScope op_span("operator", AlgKindName(plan->kind), plan.get(), -1,
                     &cluster->metrics());
  CLEANM_ASSIGN_OR_RETURN(PipelineSegment seg, BuildSegment(plan, morsel_rows));
  engine::MorselSpec spec;
  spec.morsel_rows = morsel_rows;
  op_span.SetRowsIn(engine::Cluster::TotalRows(seg.data()));
  return cluster->PumpToDriver(seg.data(), spec, seg.expand, consume);
}

Result<Value> Executor::RunToValuePipelined(const AlgOpPtr& plan, size_t morsel_rows) {
  if (!plan) return Status::Internal("null physical plan");
  if (plan->kind != AlgKind::kReduce) {
    ValueList out;
    uint64_t list_bytes = 0;
    CLEANM_RETURN_NOT_OK(RunPipelined(
        plan, morsel_rows, [&out, &list_bytes](size_t, Partition&& morsel) {
          for (const auto& row : morsel) {
            list_bytes += PhysicalTupleOf(row).ByteSize();
            out.push_back(PhysicalTupleOf(row));
          }
          return Status::OK();
        }));
    // The collected result is driver-side materialization, exactly as on
    // the materializing RunToValue: fold it into the peak, then stop
    // tracking (the returned Value is the caller's).
    cluster->metrics().ChargeMaterialized(list_bytes);
    cluster->metrics().ReleaseMaterialized(list_bytes);
    return Value(std::move(out));
  }

  const AggregateFunction* udf = nullptr;
  CLEANM_ASSIGN_OR_RETURN(const Monoid* monoid,
                          ResolveAggregateMonoid(functions, plan->monoid, &udf));
  TraceScope op_span("operator", AlgKindName(plan->kind), plan.get(), -1,
                     &cluster->metrics());
  CLEANM_ASSIGN_OR_RETURN(PipelineSegment seg, BuildSegment(plan->input, morsel_rows));
  const TupleLayout layout = CollectVars(plan->input);
  CLEANM_ASSIGN_OR_RETURN(CompiledExpr head, CompileExpr(plan->head, layout, Env()));

  // Morsel-fed per-node fold, merged on the driver — the same
  // fold-then-merge shape (and order) as the materializing RunToValue.
  // One *fresh* zero per node: Value copies share nested storage, so a
  // vector(n, zero) fill would alias one accumulator across all nodes and
  // every in-place fold would land in the same shared list.
  std::vector<Value> partials;
  partials.reserve(cluster->num_nodes());
  for (size_t n = 0; n < cluster->num_nodes(); n++) partials.push_back(monoid->zero());
  std::atomic<uint64_t> rows_folded{0};
  engine::MorselSpec spec;
  spec.morsel_rows = morsel_rows;
  cluster->PumpOnWorkers(seg.data(), spec, seg.expand,
                         [&](size_t n, Partition&& morsel) {
                           Value acc = std::move(partials[n]);
                           for (const auto& row : morsel) {
                             acc = monoid->Accumulate(std::move(acc),
                                                      head(PhysicalTupleOf(row)));
                           }
                           partials[n] = std::move(acc);
                           rows_folded += morsel.size();
                         });
  Value acc = monoid->zero();
  for (auto& p : partials) acc = monoid->Merge(std::move(acc), p);
  op_span.SetRowsIn(rows_folded.load());
  if (udf) cluster->metrics().udf_calls += rows_folded.load();
  if (udf && udf->finalize) return udf->finalize({acc});
  return acc;
}

}  // namespace cleanm
