#include "physical/partition_cache.h"

#include <sstream>

namespace cleanm {

namespace {

uint64_t PartitionedBytes(const engine::Partitioned& data) {
  uint64_t bytes = 0;
  for (const auto& partition : data) {
    for (const auto& row : partition) bytes += RowByteSize(row);
  }
  return bytes;
}

}  // namespace

PartitionCache::Stats PartitionCache::Stats::Since(const Stats& before) const {
  Stats delta = *this;
  delta.scan_hits -= before.scan_hits;
  delta.scan_misses -= before.scan_misses;
  delta.nest_hits -= before.nest_hits;
  delta.nest_misses -= before.nest_misses;
  delta.evictions -= before.evictions;
  delta.invalidations -= before.invalidations;
  return delta;
}

std::string PartitionCache::Stats::ToString() const {
  std::ostringstream out;
  out << "{scan_hits=" << scan_hits << " scan_misses=" << scan_misses
      << " nest_hits=" << nest_hits << " nest_misses=" << nest_misses
      << " evictions=" << evictions << " invalidations=" << invalidations
      << " resident_bytes=" << resident_bytes
      << " resident_entries=" << resident_entries << "}";
  return out.str();
}

PartitionCache::Stats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PartitionCache::CountScanHit() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.scan_hits++;
}

void PartitionCache::CountScanMiss() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.scan_misses++;
}

PartitionPin PartitionCache::FindLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  return it->second.data;
}

PartitionPin PartitionCache::FindScan(const std::string& table,
                                      uint64_t generation, size_t nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(Key{Kind::kScan, nullptr, table, "", generation, nodes});
}

PartitionPin PartitionCache::PutScan(const std::string& table,
                                     uint64_t generation, size_t nodes,
                                     engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = {{table, generation}};
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kScan, nullptr, table, "", generation, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::FindWrap(const std::string& table,
                                      const std::string& var,
                                      uint64_t generation, size_t nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(Key{Kind::kWrap, nullptr, table, var, generation, nodes});
}

PartitionPin PartitionCache::PutWrap(const std::string& table,
                                     const std::string& var,
                                     uint64_t generation, size_t nodes,
                                     engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = {{table, generation}};
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kWrap, nullptr, table, var, generation, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::FindNest(
    const AlgOp* node, size_t nodes,
    const std::function<uint64_t(const std::string&)>& generation_of) {
  const Key key{Kind::kNest, node, "", "", 0, nodes};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.nest_misses++;
    return nullptr;
  }
  // Eager invalidation already drops stale entries; the generation re-check
  // is the belt-and-braces guarantee that a stale partitioning is
  // unreachable even if an invalidation path is ever missed.
  for (const auto& [table, generation] : it->second.deps) {
    if (generation_of(table) != generation) {
      EraseLocked(it, &stats_.invalidations);
      stats_.nest_misses++;
      return nullptr;
    }
  }
  stats_.nest_hits++;
  it->second.last_used = ++tick_;
  return it->second.data;
}

PartitionPin PartitionCache::PutNest(
    const AlgOpPtr& node, size_t nodes,
    std::vector<std::pair<std::string, uint64_t>> deps, engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = std::move(deps);
  entry.pinned = node;
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kNest, node.get(), "", "", 0, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::PutLocked(Key key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it, nullptr);  // replace, re-accounting
  entry.last_used = ++tick_;
  resident_bytes_ += entry.bytes;
  auto placed = entries_.emplace(key, std::move(entry)).first;
  stats_.resident_bytes = resident_bytes_;
  stats_.resident_entries = entries_.size();
  if (byte_budget_ > 0) EvictToBudgetLocked(key);
  // EvictToBudgetLocked never evicts the entry being admitted, so `placed`
  // is still valid (std::map iterators survive other erasures).
  return placed->second.data;
}

void PartitionCache::EraseLocked(std::map<Key, Entry>::iterator it,
                                 uint64_t* counter) {
  // Drops only the cache's reference: readers holding a pin keep the data.
  resident_bytes_ -= it->second.bytes;
  entries_.erase(it);
  if (counter) (*counter)++;
  stats_.resident_bytes = resident_bytes_;
  stats_.resident_entries = entries_.size();
}

void PartitionCache::EvictToBudgetLocked(const Key& keep) {
  while (resident_bytes_ > byte_budget_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;  // never evict the entry being admitted
      if (victim == entries_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    EraseLocked(victim, &stats_.evictions);
  }
}

void PartitionCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool depends = false;
    for (const auto& [dep_table, generation] : it->second.deps) {
      (void)generation;
      if (dep_table == table) {
        depends = true;
        break;
      }
    }
    if (depends) {
      auto doomed = it++;
      EraseLocked(doomed, &stats_.invalidations);
    } else {
      ++it;
    }
  }
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += entries_.size();
  entries_.clear();
  resident_bytes_ = 0;
  stats_.resident_bytes = 0;
  stats_.resident_entries = 0;
}

}  // namespace cleanm
