#include "physical/partition_cache.h"

#include <sstream>

namespace cleanm {

namespace {

uint64_t PartitionedBytes(const engine::Partitioned& data) {
  uint64_t bytes = 0;
  for (const auto& partition : data) {
    for (const auto& row : partition) bytes += RowByteSize(row);
  }
  return bytes;
}

}  // namespace

PartitionCache::Stats PartitionCache::Stats::Since(const Stats& before) const {
  Stats delta = *this;
  delta.scan_hits -= before.scan_hits;
  delta.scan_misses -= before.scan_misses;
  delta.nest_hits -= before.nest_hits;
  delta.nest_misses -= before.nest_misses;
  delta.evictions -= before.evictions;
  delta.invalidations -= before.invalidations;
  delta.page_writebacks -= before.page_writebacks;
  delta.page_revivals -= before.page_revivals;
  return delta;
}

std::string PartitionCache::Stats::ToString() const {
  std::ostringstream out;
  out << "{scan_hits=" << scan_hits << " scan_misses=" << scan_misses
      << " nest_hits=" << nest_hits << " nest_misses=" << nest_misses
      << " evictions=" << evictions << " invalidations=" << invalidations
      << " page_writebacks=" << page_writebacks
      << " page_revivals=" << page_revivals
      << " resident_bytes=" << resident_bytes
      << " resident_entries=" << resident_entries << "}";
  return out.str();
}

void PartitionCache::set_pager(std::shared_ptr<PartitionPager> pager) {
  std::lock_guard<std::mutex> lock(mu_);
  pager_ = std::move(pager);
}

PartitionCache::Stats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PartitionCache::CountScanHit() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.scan_hits++;
}

void PartitionCache::CountScanMiss() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.scan_misses++;
}

PartitionPin PartitionCache::FindLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  if (!it->second.data) return ReviveLocked(it);
  return it->second.data;
}

PartitionPin PartitionCache::ReviveLocked(std::map<Key, Entry>::iterator it) {
  if (!pager_ || it->second.paged.empty()) {
    // Unreachable by construction (entries only lose their data via a
    // successful write-back); recover by dropping the husk.
    EraseLocked(it, &stats_.invalidations);
    return nullptr;
  }
  Result<engine::Partitioned> revived = pager_->Read(it->second.paged);
  if (!revived.ok()) {
    // Spill-store read failure (e.g. corruption): surface as a miss so the
    // caller recomputes from the source of truth.
    EraseLocked(it, &stats_.invalidations);
    return nullptr;
  }
  it->second.data =
      std::make_shared<const engine::Partitioned>(revived.MoveValue());
  resident_bytes_ += it->second.bytes;
  stats_.page_revivals++;
  stats_.resident_bytes = resident_bytes_;
  PartitionPin pin = it->second.data;
  const Key key = it->first;
  if (byte_budget_ > 0) EvictToBudgetLocked(key);
  return pin;
}

PartitionPin PartitionCache::FindScan(const std::string& table,
                                      uint64_t generation, size_t nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(Key{Kind::kScan, nullptr, table, "", generation, nodes});
}

PartitionPin PartitionCache::PutScan(const std::string& table,
                                     uint64_t generation, size_t nodes,
                                     engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = {{table, generation}};
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kScan, nullptr, table, "", generation, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::FindWrap(const std::string& table,
                                      const std::string& var,
                                      uint64_t generation, size_t nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(Key{Kind::kWrap, nullptr, table, var, generation, nodes});
}

PartitionPin PartitionCache::PutWrap(const std::string& table,
                                     const std::string& var,
                                     uint64_t generation, size_t nodes,
                                     engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = {{table, generation}};
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kWrap, nullptr, table, var, generation, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::FindNest(
    const AlgOp* node, size_t nodes,
    const std::function<uint64_t(const std::string&)>& generation_of) {
  const Key key{Kind::kNest, node, "", "", 0, nodes};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.nest_misses++;
    return nullptr;
  }
  // Eager invalidation already drops stale entries; the generation re-check
  // is the belt-and-braces guarantee that a stale partitioning is
  // unreachable even if an invalidation path is ever missed.
  for (const auto& [table, generation] : it->second.deps) {
    if (generation_of(table) != generation) {
      EraseLocked(it, &stats_.invalidations);
      stats_.nest_misses++;
      return nullptr;
    }
  }
  it->second.last_used = ++tick_;
  PartitionPin pin = it->second.data ? it->second.data : ReviveLocked(it);
  if (!pin) {
    stats_.nest_misses++;
    return nullptr;
  }
  stats_.nest_hits++;
  return pin;
}

PartitionPin PartitionCache::PutNest(
    const AlgOpPtr& node, size_t nodes,
    std::vector<std::pair<std::string, uint64_t>> deps, engine::Partitioned data) {
  Entry entry;
  entry.bytes = PartitionedBytes(data);
  entry.data = std::make_shared<const engine::Partitioned>(std::move(data));
  entry.deps = std::move(deps);
  entry.pinned = node;
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(Key{Kind::kNest, node.get(), "", "", 0, nodes},
                   std::move(entry));
}

PartitionPin PartitionCache::PutLocked(Key key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it, nullptr);  // replace, re-accounting
  entry.last_used = ++tick_;
  resident_bytes_ += entry.bytes;
  auto placed = entries_.emplace(key, std::move(entry)).first;
  stats_.resident_bytes = resident_bytes_;
  stats_.resident_entries = entries_.size();
  if (byte_budget_ > 0) EvictToBudgetLocked(key);
  // EvictToBudgetLocked never evicts the entry being admitted, so `placed`
  // is still valid (std::map iterators survive other erasures).
  return placed->second.data;
}

void PartitionCache::EraseLocked(std::map<Key, Entry>::iterator it,
                                 uint64_t* counter) {
  // Drops only the cache's reference: readers holding a pin keep the data.
  // A paged-out entry's bytes already left the resident gauge.
  if (it->second.data) resident_bytes_ -= it->second.bytes;
  entries_.erase(it);
  if (counter) (*counter)++;
  stats_.resident_bytes = resident_bytes_;
  stats_.resident_entries = entries_.size();
}

void PartitionCache::EvictToBudgetLocked(const Key& keep) {
  while (resident_bytes_ > byte_budget_) {
    // Victims are chosen among *resident* entries only; paged-out husks
    // hold no bytes. Never evict the entry being admitted, and keep at
    // least one resident entry (a single over-budget entry is admitted
    // alone rather than thrashing).
    auto victim = entries_.end();
    size_t resident = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.data) continue;
      resident++;
      if (it->first == keep) continue;
      if (victim == entries_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end() || resident <= 1) return;
    Entry& entry = victim->second;
    if (pager_) {
      // Page out instead of discarding: write the partitions back (first
      // eviction only — the spans stay valid across revivals, so repeat
      // evictions are free) and drop just the resident copy.
      if (entry.paged.empty()) {
        Result<std::vector<std::vector<PageSpan>>> spans = pager_->Write(*entry.data);
        if (spans.ok() && !spans.value().empty()) {
          entry.paged = spans.MoveValue();
          stats_.page_writebacks++;
        }
      }
      if (!entry.paged.empty()) {
        resident_bytes_ -= entry.bytes;
        entry.data.reset();
        stats_.evictions++;
        stats_.resident_bytes = resident_bytes_;
        continue;
      }
      // Write-back failed (or the partitioning was empty): plain eviction.
    }
    EraseLocked(victim, &stats_.evictions);
  }
}

void PartitionCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool depends = false;
    for (const auto& [dep_table, generation] : it->second.deps) {
      (void)generation;
      if (dep_table == table) {
        depends = true;
        break;
      }
    }
    if (depends) {
      auto doomed = it++;
      EraseLocked(doomed, &stats_.invalidations);
    } else {
      ++it;
    }
  }
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += entries_.size();
  entries_.clear();
  resident_bytes_ = 0;
  stats_.resident_bytes = 0;
  stats_.resident_entries = 0;
}

}  // namespace cleanm
