#include "physical/compile.h"

#include <algorithm>

#include "monoid/eval.h"

namespace cleanm {

namespace {

Value NullV() { return Value::Null(); }

/// Numeric/boolean binary with null propagation.
Value ApplyBinary(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq: return Value(l.Compare(r) == 0);
    case BinaryOp::kNe: return Value(l.Compare(r) != 0);
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return NullV();
      const int c = l.Compare(r);
      switch (op) {
        case BinaryOp::kLt: return Value(c < 0);
        case BinaryOp::kLe: return Value(c <= 0);
        case BinaryOp::kGt: return Value(c > 0);
        default: return Value(c >= 0);
      }
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if (l.type() != ValueType::kBool || r.type() != ValueType::kBool) return NullV();
      return Value(op == BinaryOp::kAnd ? (l.AsBool() && r.AsBool())
                                        : (l.AsBool() || r.AsBool()));
    }
    case BinaryOp::kAdd:
      if (l.type() == ValueType::kString && r.type() == ValueType::kString) {
        return Value(l.AsString() + r.AsString());
      }
      [[fallthrough]];
    default: {
      if (!l.is_numeric() || !r.is_numeric()) return NullV();
      const double a = l.ToDouble(), b = r.ToDouble();
      double result;
      switch (op) {
        case BinaryOp::kAdd: result = a + b; break;
        case BinaryOp::kSub: result = a - b; break;
        case BinaryOp::kMul: result = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0) return NullV();
          result = a / b;
          break;
        default: return NullV();
      }
      if (l.type() == ValueType::kInt && r.type() == ValueType::kInt &&
          op != BinaryOp::kDiv) {
        return Value(static_cast<int64_t>(result));
      }
      return Value(result);
    }
  }
}

}  // namespace

Result<CompiledExpr> CompileExpr(const ExprPtr& e, const TupleLayout& layout,
                                 const CompileEnv& env) {
  if (!e) return Status::Internal("compiling null expression");
  switch (e->kind) {
    case ExprKind::kConst: {
      Value v = e->literal;
      return CompiledExpr([v](const Value&) { return v; });
    }
    case ExprKind::kVar: {
      const auto it = std::find(layout.begin(), layout.end(), e->name);
      if (it == layout.end()) {
        return Status::KeyError("variable '" + e->name + "' not in tuple layout");
      }
      const size_t index = static_cast<size_t>(it - layout.begin());
      const std::string name = e->name;
      return CompiledExpr([index, name](const Value& tuple) {
        const auto& fields = tuple.AsStruct();
        // Fast path: positional access per the plan layout; fall back to a
        // name scan if the tuple shape diverges (defensive, not expected).
        if (index < fields.size() && fields[index].first == name) {
          return fields[index].second;
        }
        for (const auto& [fname, fval] : fields) {
          if (fname == name) return fval;
        }
        return Value::Null();
      });
    }
    case ExprKind::kField: {
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr child, CompileExpr(e->child, layout, env));
      std::string field = e->name;
      return CompiledExpr([child, field](const Value& tuple) {
        const Value base = child(tuple);
        if (base.type() != ValueType::kStruct) return Value::Null();
        for (const auto& [name, v] : base.AsStruct()) {
          if (name == field) return v;
        }
        return Value::Null();
      });
    }
    case ExprKind::kBinary: {
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr lhs, CompileExpr(e->lhs, layout, env));
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr rhs, CompileExpr(e->rhs, layout, env));
      const BinaryOp op = e->bin_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        // Short-circuit.
        const bool is_and = op == BinaryOp::kAnd;
        return CompiledExpr([lhs, rhs, is_and](const Value& tuple) {
          const Value l = lhs(tuple);
          if (l.type() != ValueType::kBool) return Value::Null();
          if (is_and && !l.AsBool()) return Value(false);
          if (!is_and && l.AsBool()) return Value(true);
          return rhs(tuple);
        });
      }
      return CompiledExpr([lhs, rhs, op](const Value& tuple) {
        return ApplyBinary(op, lhs(tuple), rhs(tuple));
      });
    }
    case ExprKind::kUnary: {
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr child, CompileExpr(e->child, layout, env));
      const UnaryOp op = e->un_op;
      return CompiledExpr([child, op](const Value& tuple) {
        const Value v = child(tuple);
        if (op == UnaryOp::kNot) {
          if (v.type() != ValueType::kBool) return Value::Null();
          return Value(!v.AsBool());
        }
        if (v.type() == ValueType::kInt) return Value(-v.AsInt());
        if (v.type() == ValueType::kDouble) return Value(-v.AsDouble());
        return Value::Null();
      });
    }
    case ExprKind::kIf: {
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr cond, CompileExpr(e->cond, layout, env));
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr then_e, CompileExpr(e->then_e, layout, env));
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr else_e, CompileExpr(e->else_e, layout, env));
      return CompiledExpr([cond, then_e, else_e](const Value& tuple) {
        const Value c = cond(tuple);
        if (c.type() != ValueType::kBool) return Value::Null();
        return c.AsBool() ? then_e(tuple) : else_e(tuple);
      });
    }
    case ExprKind::kCall: {
      std::vector<CompiledExpr> args;
      for (const auto& a : e->args) {
        CLEANM_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(a, layout, env));
        args.push_back(std::move(c));
      }
      const std::string fn = e->name;
      // Registered user functions (scalar + repair) resolve here; builtin
      // names can never collide with them (registration rejects shadows).
      // Registered-function errors null-propagate like builtin errors, and
      // each invocation charges one udf_calls tick.
      if (env.functions != nullptr) {
        if (const ScalarFunction* user = env.functions->FindScalar(fn)) {
          const UserFn body = user->fn;
          QueryMetrics* metrics = env.metrics;
          return CompiledExpr([body, args, metrics](const Value& tuple) {
            std::vector<Value> vals;
            vals.reserve(args.size());
            for (const auto& a : args) vals.push_back(a(tuple));
            if (metrics) metrics->udf_calls++;
            auto r = body(vals);
            return r.ok() ? r.MoveValue() : Value::Null();
          });
        }
      }
      // Validate the function name at compile time with a dummy invocation
      // guard: unknown builtins must fail at plan time, not per row.
      {
        std::vector<Value> probe;  // arity checks happen at runtime
        auto r = EvalBuiltin(fn, probe);
        if (!r.ok() && r.status().code() == StatusCode::kKeyError) {
          return Status::KeyError("unknown builtin function '" + fn + "'");
        }
      }
      return CompiledExpr([fn, args](const Value& tuple) {
        std::vector<Value> vals;
        vals.reserve(args.size());
        for (const auto& a : args) vals.push_back(a(tuple));
        auto r = EvalBuiltin(fn, vals);
        return r.ok() ? r.MoveValue() : Value::Null();
      });
    }
    case ExprKind::kRecord: {
      std::vector<CompiledExpr> values;
      for (const auto& v : e->field_values) {
        CLEANM_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(v, layout, env));
        values.push_back(std::move(c));
      }
      const std::vector<std::string> names = e->field_names;
      return CompiledExpr([names, values](const Value& tuple) {
        ValueStruct fields;
        fields.reserve(names.size());
        for (size_t i = 0; i < names.size(); i++) {
          fields.emplace_back(names[i], values[i](tuple));
        }
        return Value(std::move(fields));
      });
    }
    case ExprKind::kComprehension:
      return Status::NotImplemented(
          "nested comprehension reached the physical compiler; normalize and "
          "translate it to algebra first");
  }
  return Status::Internal("unhandled expression kind");
}

Result<std::function<bool(const Value&)>> CompilePredicate(const ExprPtr& e,
                                                           const TupleLayout& layout,
                                                           const CompileEnv& env) {
  CLEANM_ASSIGN_OR_RETURN(CompiledExpr compiled, CompileExpr(e, layout, env));
  return std::function<bool(const Value&)>([compiled](const Value& tuple) {
    const Value v = compiled(tuple);
    return v.type() == ValueType::kBool && v.AsBool();
  });
}

}  // namespace cleanm
