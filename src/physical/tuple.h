// Physical tuple representation shared by the materializing executor
// (planner.cc), the pipelined executor (pipeline.cc), and the streaming
// consumption layer (cleaning/prepared_query.cc).
//
// Physical rows are single-Value rows holding the algebra-level tuple
// struct {var → record}; see physical/compile.h for the layout contract.
#pragma once

#include "engine/cluster.h"
#include "storage/value.h"

namespace cleanm {

inline Row MakePhysicalTuple(Value tuple) { return Row{std::move(tuple)}; }

inline const Value& PhysicalTupleOf(const Row& row) { return row[0]; }

inline Value MergePhysicalTuples(const Value& a, const Value& b) {
  ValueStruct merged = a.AsStruct();
  const auto& bs = b.AsStruct();
  merged.insert(merged.end(), bs.begin(), bs.end());
  return Value(std::move(merged));
}

}  // namespace cleanm
