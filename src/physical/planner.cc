#include "physical/planner.h"

#include <algorithm>

#include "common/trace.h"
#include "functions/function_registry.h"
#include "monoid/monoid.h"
#include "physical/tuple.h"
#include "storage/delta.h"
#include "storage/pagestore/paged_table.h"
#include "storage/pagestore/spill.h"

namespace cleanm {

namespace {

using engine::Partition;
using engine::Partitioned;
using engine::PartitionedLogicalBytes;

/// Releases a tracked buffer's gauge charge when the owning scope ends
/// (including error paths).
struct GaugeRelease {
  QueryMetrics* metrics;
  uint64_t bytes = 0;
  ~GaugeRelease() {
    if (bytes) metrics->ReleaseMaterialized(bytes);
  }
};

}  // namespace

void CollectScanDeps(const AlgOpPtr& plan, const Catalog& catalog,
                     std::vector<std::pair<std::string, uint64_t>>* deps) {
  if (!plan) return;
  if (plan->kind == AlgKind::kScan) {
    for (const auto& dep : *deps) {
      if (dep.first == plan->table) return;
    }
    deps->emplace_back(plan->table, catalog.GenerationOf(plan->table));
    return;
  }
  CollectScanDeps(plan->input, catalog, deps);
  CollectScanDeps(plan->right, catalog, deps);
}

Result<PartitionPin> Executor::WrappedScan(const AlgOp& scan) {
  const uint64_t generation = catalog->GenerationOf(scan.table);
  const size_t nodes = cluster->num_nodes();
  if (PartitionPin wrapped =
          cache->FindWrap(scan.table, scan.var, generation, nodes)) {
    cache->CountScanHit();
    return wrapped;
  }

  PartitionPin base = cache->FindScan(scan.table, generation, nodes);
  if (base) {
    cache->CountScanHit();
  } else if (delta_scan) {
    // Delta-extended rebuild: a cached partitioning of an earlier
    // generation of this table can be patched forward through the
    // mutation delta log — each removed row erased in place (one
    // Equals-matching physical row), added rows appended round-robin —
    // instead of re-partitioning the whole dataset. Only mutation (minor)
    // generations are bridgeable: the probe reaches back at most MinorOf
    // generations, and Collect refuses windows that cross a registration.
    // Any inconsistency (a removed row the cached partitioning does not
    // hold) abandons the patch and falls through to the full build.
    const uint64_t minor = catalog->MinorOf(scan.table);
    const DeltaLog* log = minor > 0 ? catalog->FindDelta(scan.table) : nullptr;
    const auto table_r = log ? catalog->Find(scan.table) : Result<const Dataset*>(nullptr);
    if (log && table_r.ok() && table_r.value() != nullptr) {
      const Schema& schema = table_r.value()->schema();
      const uint64_t reach = std::min<uint64_t>(minor, generation > 0 ? generation - 1 : 0);
      for (uint64_t k = 1; k <= reach && !base; k++) {
        PartitionPin prior = cache->FindScan(scan.table, generation - k, nodes);
        if (!prior) continue;
        std::vector<Row> added, removed;
        if (!log->Collect(generation - k, generation, &added, &removed)) break;
        Partitioned patched = *prior;
        if (patched.empty()) break;
        bool consistent = true;
        for (const Row& gone : removed) {
          const Value image = RowToRecord(schema, gone);
          bool erased = false;
          for (auto& part : patched) {
            for (size_t i = 0; i < part.size(); i++) {
              if (PhysicalTupleOf(part[i]).Equals(image)) {
                part.erase(part.begin() + static_cast<ptrdiff_t>(i));
                erased = true;
                break;
              }
            }
            if (erased) break;
          }
          if (!erased) {
            consistent = false;
            break;
          }
        }
        if (!consistent) break;
        for (size_t i = 0; i < added.size(); i++) {
          patched[i % patched.size()].push_back(
              MakePhysicalTuple(RowToRecord(schema, added[i])));
        }
        cluster->metrics().delta_rows_processed += added.size() + removed.size();
        cache->CountScanHit();
        base = cache->PutScan(scan.table, generation, nodes, std::move(patched));
      }
    }
  }
  if (!base) {
    std::vector<Row> rows;
    // Page-backed scan: stream chunks through the pool instead of walking
    // the resident Dataset. Both paths build the identical row vector and
    // hand it to the same Parallelize, so the partition layout (and hence
    // every downstream result) is bit-identical.
    const PagedTable* paged = pool ? catalog->FindPaged(scan.table) : nullptr;
    if (paged) {
      rows.reserve(paged->num_rows());
      const Schema& schema = paged->schema();
      Status st = paged->ScanRows(pool, [&](Row&& row) {
        rows.push_back(MakePhysicalTuple(RowToRecord(schema, row)));
      });
      CLEANM_RETURN_NOT_OK(st);
    } else {
      CLEANM_ASSIGN_OR_RETURN(const Dataset* table, catalog->Find(scan.table));
      rows.reserve(table->num_rows());
      for (const auto& row : table->rows()) {
        rows.push_back(MakePhysicalTuple(RowToRecord(table->schema(), row)));
      }
    }
    Partitioned scanned = cluster->Parallelize(rows);
    cache->CountScanMiss();
    base = cache->PutScan(scan.table, generation, nodes, std::move(scanned));
  }
  // Wrap each record into the {var: record} tuple. The pin keeps `base`
  // alive even if PutWrap (or a concurrent execution) evicts it from the
  // cache under the byte budget.
  const std::string var = scan.var;
  Partitioned wrapped = cluster->Map(*base, [var](const Row& r) {
    return MakePhysicalTuple(Value(ValueStruct{{var, PhysicalTupleOf(r)}}));
  });
  return cache->PutWrap(scan.table, scan.var, generation, nodes, std::move(wrapped));
}

Result<engine::Partitioned> Executor::ExecJoin(const AlgOpPtr& plan,
                                               const engine::Partitioned& left,
                                               const engine::Partitioned& right) {
  const TupleLayout left_layout = CollectVars(plan->input);
  const TupleLayout right_layout = CollectVars(plan->right);
  TupleLayout both = left_layout;
  both.insert(both.end(), right_layout.begin(), right_layout.end());

  auto emit = [](const Row& l, const Row& r) {
    return MakePhysicalTuple(MergePhysicalTuples(PhysicalTupleOf(l), PhysicalTupleOf(r)));
  };

  if (plan->left_key) {
    CLEANM_ASSIGN_OR_RETURN(CompiledExpr lk, CompileExpr(plan->left_key, left_layout, Env()));
    CLEANM_ASSIGN_OR_RETURN(CompiledExpr rk,
                            CompileExpr(plan->right_key, right_layout, Env()));
    auto lkey = [lk](const Row& r) { return lk(PhysicalTupleOf(r)); };
    auto rkey = [rk](const Row& r) { return rk(PhysicalTupleOf(r)); };
    std::function<bool(const Value&)> residual;
    if (plan->pred) {
      CLEANM_ASSIGN_OR_RETURN(residual, CompilePredicate(plan->pred, both, Env()));
    }
    Partitioned joined;
    if (plan->kind == AlgKind::kOuterJoin) {
      const TupleLayout right_vars = right_layout;
      joined = engine::HashLeftOuterJoin(
          *cluster, left, right, lkey, rkey, emit,
          [right_vars](const Row& l) {
            ValueStruct padded = PhysicalTupleOf(l).AsStruct();
            for (const auto& v : right_vars) padded.emplace_back(v, Value::Null());
            return MakePhysicalTuple(Value(std::move(padded)));
          },
          spill);
    } else {
      joined = engine::HashEquiJoin(*cluster, left, right, lkey, rkey, emit, spill);
    }
    if (residual) {
      joined = cluster->Filter(
          joined, [residual](const Row& r) { return residual(PhysicalTupleOf(r)); });
    }
    return joined;
  }

  // Theta join (or cross product when pred is null).
  if (plan->kind == AlgKind::kOuterJoin) {
    return Status::NotImplemented("outer theta joins are not supported");
  }
  std::function<bool(const Row&, const Row&)> pred;
  if (plan->pred) {
    CLEANM_ASSIGN_OR_RETURN(auto compiled, CompilePredicate(plan->pred, both, Env()));
    pred = [compiled](const Row& l, const Row& r) {
      return compiled(MergePhysicalTuples(PhysicalTupleOf(l), PhysicalTupleOf(r)));
    };
  } else {
    pred = [](const Row&, const Row&) { return true; };
  }
  engine::ThetaJoinOptions theta;
  theta.algo = options.theta_algo;
  return engine::ThetaJoin(*cluster, left, right, pred, emit, theta);
}

Result<Executor::CompiledNest> Executor::CompileNestStage(const AlgOpPtr& plan) {
  const TupleLayout layout = CollectVars(plan->input);

  // Keyed expansion: each input tuple becomes (key, tuple) pairs. Exact
  // grouping emits one pair; grouping monoids may emit several.
  CLEANM_ASSIGN_OR_RETURN(CompiledExpr term, CompileExpr(plan->group.term, layout, Env()));
  const GroupSpec group = plan->group;
  if (group.algo == FilteringAlgo::kKMeans && group.centers.empty()) {
    return Status::InvalidArgument("k-means Nest executed without sampled centers");
  }
  CompiledNest compiled;
  compiled.expand = [term, group](const Value& tuple, Partition* out) {
    const Value t = term(tuple);
    switch (group.algo) {
      case FilteringAlgo::kExactKey:
        out->push_back(Row{t, tuple});
        return;
      case FilteringAlgo::kTokenFiltering: {
        if (t.type() != ValueType::kString) return;  // dirty value: skip
        auto grams = QGrams(t.AsString(), group.q);
        std::sort(grams.begin(), grams.end());
        grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
        for (auto& g : grams) {
          out->push_back(Row{Value(std::move(g)), tuple});
        }
        return;
      }
      case FilteringAlgo::kKMeans: {
        if (t.type() != ValueType::kString) return;
        SinglePassKMeans km(group.centers.size(), group.delta, 0);
        for (const auto& a : km.Assign({t.AsString()}, group.centers)) {
          out->push_back(Row{Value(a.key), tuple});
        }
        return;
      }
    }
  };

  // Monoid aggregation spec. Aggregation names resolve against the session
  // registry first, so a registered (monoid-annotated) UDF aggregate
  // distributes exactly like a built-in: units fold locally, partial
  // accumulators merge across nodes, and its optional finalize maps each
  // group's merged accumulator to the reported value before `having` sees
  // it.
  std::vector<const Monoid*> monoids;
  std::vector<CompiledExpr> agg_exprs;
  std::vector<UserFn> finalizers(plan->aggs.size());
  size_t udf_aggs = 0;
  for (size_t a = 0; a < plan->aggs.size(); a++) {
    const NestAgg& agg = plan->aggs[a];
    const AggregateFunction* udf = nullptr;
    CLEANM_ASSIGN_OR_RETURN(const Monoid* m,
                            ResolveAggregateMonoid(functions, agg.monoid, &udf));
    monoids.push_back(m);
    if (udf) {
      finalizers[a] = udf->finalize;
      udf_aggs++;
    }
    CLEANM_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(agg.expr, layout, Env()));
    agg_exprs.push_back(std::move(c));
  }
  const std::string key_name = plan->key_name;
  const std::vector<NestAgg> aggs = plan->aggs;

  std::function<bool(const Value&)> having;
  if (plan->having) {
    TupleLayout out_layout{key_name};
    for (const auto& agg : aggs) out_layout.push_back(agg.name);
    CLEANM_ASSIGN_OR_RETURN(having, CompilePredicate(plan->having, out_layout, Env()));
  }

  engine::AggregateSpec spec;
  spec.key = [](const Row& r) { return r[0]; };
  QueryMetrics* metrics = &cluster->metrics();
  spec.init = [monoids, agg_exprs, metrics, udf_aggs](const Row& r) {
    ValueList accs;
    accs.reserve(monoids.size());
    for (size_t a = 0; a < monoids.size(); a++) {
      accs.push_back(monoids[a]->Unit(agg_exprs[a](r[1])));
    }
    if (udf_aggs) metrics->udf_calls += udf_aggs;
    return Value(std::move(accs));
  };
  spec.merge = [monoids](Value a, const Value& b) {
    auto& accs = a.MutableList();
    const auto& other = b.AsList();
    for (size_t i = 0; i < accs.size(); i++) {
      accs[i] = monoids[i]->Merge(std::move(accs[i]), other[i]);
    }
    return a;
  };
  spec.finalize = [key_name, aggs, having, finalizers](const Value& key,
                                                       const Value& acc,
                                                       Partition* out) {
    ValueStruct tuple;
    tuple.emplace_back(key_name, key);
    const auto& accs = acc.AsList();
    for (size_t a = 0; a < aggs.size(); a++) {
      if (finalizers[a]) {
        // UDF finalize errors null-propagate (engine convention for
        // per-row/-group data errors).
        auto finalized = finalizers[a]({accs[a]});
        tuple.emplace_back(aggs[a].name,
                           finalized.ok() ? finalized.MoveValue() : Value::Null());
        continue;
      }
      tuple.emplace_back(aggs[a].name, accs[a]);
    }
    Value result(std::move(tuple));
    if (having && !having(result)) return;
    out->push_back(MakePhysicalTuple(std::move(result)));
  };
  compiled.spec = std::move(spec);
  return compiled;
}

Result<engine::Partitioned> Executor::Run(const AlgOpPtr& plan) {
  uint64_t bytes = 0;
  Result<Partitioned> out = RunTracked(plan, &bytes);
  // The caller owns the buffer now; this entry point stops tracking it
  // (the peak already folded it in).
  if (out.ok() && bytes) cluster->metrics().ReleaseMaterialized(bytes);
  return out;
}

Result<engine::Partitioned> Executor::RunTracked(const AlgOpPtr& plan,
                                                 uint64_t* out_bytes) {
  *out_bytes = 0;
  if (!plan) return Status::Internal("null physical plan");
  if (!cache) return Status::Internal("Executor has no partition cache");
  QueryMetrics& metrics = cluster->metrics();
  // Operator span: driver-side and sequential (the recursion below runs on
  // this thread), so the counter delta it captures nests exactly and the
  // profile's self-time partitioning stays exact.
  TraceScope op_span("operator", AlgKindName(plan->kind), plan.get(), -1,
                     &metrics);
  auto charge = [&metrics, out_bytes, &op_span](const Partitioned& data) {
    *out_bytes = PartitionedLogicalBytes(data);
    metrics.ChargeMaterialized(*out_bytes);
    if (op_span.active()) {
      op_span.SetRowsOut(engine::Cluster::TotalRows(data));
      std::vector<uint64_t> node_rows;
      node_rows.reserve(data.size());
      for (const auto& p : data) node_rows.push_back(p.size());
      op_span.SetNodeRows(std::move(node_rows));
    }
  };
  switch (plan->kind) {
    case AlgKind::kScan: {
      CLEANM_ASSIGN_OR_RETURN(PartitionPin wrapped, WrappedScan(*plan));
      // The materialize-first copy of the cache-resident wrap — precisely
      // the buffer the pipelined path streams from instead.
      Partitioned out = *wrapped;
      charge(out);
      return out;
    }

    case AlgKind::kSelect: {
      GaugeRelease in_release{&metrics};
      CLEANM_ASSIGN_OR_RETURN(Partitioned in, RunTracked(plan->input, &in_release.bytes));
      op_span.SetRowsIn(engine::Cluster::TotalRows(in));
      const TupleLayout layout = CollectVars(plan->input);
      CLEANM_ASSIGN_OR_RETURN(auto pred, CompilePredicate(plan->pred, layout, Env()));
      Partitioned out =
          cluster->Filter(in, [pred](const Row& r) { return pred(PhysicalTupleOf(r)); });
      charge(out);
      return out;
    }

    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      GaugeRelease left_release{&metrics}, right_release{&metrics};
      CLEANM_ASSIGN_OR_RETURN(Partitioned left,
                              RunTracked(plan->input, &left_release.bytes));
      CLEANM_ASSIGN_OR_RETURN(Partitioned right,
                              RunTracked(plan->right, &right_release.bytes));
      op_span.SetRowsIn(engine::Cluster::TotalRows(left) +
                        engine::Cluster::TotalRows(right));
      CLEANM_ASSIGN_OR_RETURN(Partitioned out, ExecJoin(plan, left, right));
      charge(out);
      return out;
    }

    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      GaugeRelease in_release{&metrics};
      CLEANM_ASSIGN_OR_RETURN(Partitioned in, RunTracked(plan->input, &in_release.bytes));
      op_span.SetRowsIn(engine::Cluster::TotalRows(in));
      const TupleLayout layout = CollectVars(plan->input);
      CLEANM_ASSIGN_OR_RETURN(CompiledExpr path, CompileExpr(plan->path, layout, Env()));
      const std::string var = plan->path_var;
      const bool outer = plan->kind == AlgKind::kOuterUnnest;
      Partitioned out = cluster->FlatMap(in, [path, var, outer](const Row& r,
                                                                Partition* dst) {
        const Value coll = path(PhysicalTupleOf(r));
        auto pad = [&](Value element) {
          ValueStruct padded = PhysicalTupleOf(r).AsStruct();
          padded.emplace_back(var, std::move(element));
          dst->push_back(MakePhysicalTuple(Value(std::move(padded))));
        };
        if (coll.is_null() || (coll.type() == ValueType::kList && coll.AsList().empty())) {
          if (outer) pad(Value::Null());
          return;
        }
        if (coll.type() != ValueType::kList) {
          pad(coll);  // scalar behaves as singleton (XML-style nesting)
          return;
        }
        for (const auto& element : coll.AsList()) pad(element);
      });
      charge(out);
      return out;
    }

    case AlgKind::kNest: {
      const size_t nodes = cluster->num_nodes();
      if (!persist_nests) {
        auto local = local_nests.find(plan.get());
        if (local != local_nests.end()) {
          Partitioned out = local->second;
          charge(out);
          return out;
        }
      } else {
        const Catalog& cat = *catalog;
        if (PartitionPin cached = cache->FindNest(
                plan.get(), nodes,
                [&cat](const std::string& t) { return cat.GenerationOf(t); })) {
          Partitioned out = *cached;
          charge(out);
          return out;
        }
      }

      CLEANM_ASSIGN_OR_RETURN(CompiledNest compiled, CompileNestStage(plan));
      GaugeRelease in_release{&metrics};
      CLEANM_ASSIGN_OR_RETURN(Partitioned in, RunTracked(plan->input, &in_release.bytes));
      op_span.SetRowsIn(engine::Cluster::TotalRows(in));

      // Phase 1 (materialize-first): the whole keyed expansion exists as a
      // Partitioned before aggregation — the buffer the pipelined Nest
      // folds away morsel by morsel.
      auto nest_expand = compiled.expand;
      Partitioned keyed = cluster->FlatMap(in, [nest_expand](const Row& r, Partition* out) {
        nest_expand(PhysicalTupleOf(r), out);
      });
      GaugeRelease keyed_release{&metrics, PartitionedLogicalBytes(keyed)};
      metrics.ChargeMaterialized(keyed_release.bytes);

      // Phase 2: monoid aggregation under the configured shuffle strategy.
      LoadReport load;
      Partitioned result = engine::AggregateByKey(*cluster, keyed, compiled.spec,
                                                  options.aggregate_strategy,
                                                  &load);
      charge(result);
      // The routed (pre-aggregation) distribution is the skew signal the
      // profile reports for a Nest, not the per-node group counts.
      if (op_span.active()) op_span.SetNodeRows(std::move(load.rows_per_node));
      if (!persist_nests) {
        local_nests.emplace(plan.get(), result);
      } else {
        std::vector<std::pair<std::string, uint64_t>> deps;
        CollectScanDeps(plan, *catalog, &deps);
        cache->PutNest(plan, nodes, std::move(deps), result);
      }
      return result;
    }

    case AlgKind::kReduce:
      return Status::InvalidArgument("Reduce root must go through RunToValue");
  }
  return Status::Internal("unhandled physical plan kind");
}

Result<Value> Executor::RunToValue(const AlgOpPtr& plan) {
  if (!plan) return Status::Internal("null physical plan");
  QueryMetrics& metrics = cluster->metrics();
  if (plan->kind != AlgKind::kReduce) {
    GaugeRelease root_release{&metrics};
    CLEANM_ASSIGN_OR_RETURN(Partitioned tuples, RunTracked(plan, &root_release.bytes));
    ValueList out;
    uint64_t list_bytes = 0;
    for (const auto& p : tuples) {
      for (const auto& row : p) {
        list_bytes += PhysicalTupleOf(row).ByteSize();
        out.push_back(PhysicalTupleOf(row));
      }
    }
    // The driver-side result list coexists with the root buffer here; fold
    // that high-water point into the peak, then stop tracking (the Value
    // returned is the caller's).
    GaugeRelease list_release{&metrics, list_bytes};
    metrics.ChargeMaterialized(list_bytes);
    return Value(std::move(out));
  }
  const AggregateFunction* udf = nullptr;
  CLEANM_ASSIGN_OR_RETURN(const Monoid* monoid,
                          ResolveAggregateMonoid(functions, plan->monoid, &udf));
  TraceScope op_span("operator", AlgKindName(plan->kind), plan.get(), -1,
                     &metrics);
  GaugeRelease in_release{&metrics};
  CLEANM_ASSIGN_OR_RETURN(Partitioned in, RunTracked(plan->input, &in_release.bytes));
  op_span.SetRowsIn(engine::Cluster::TotalRows(in));
  if (op_span.active()) {
    std::vector<uint64_t> node_rows;
    node_rows.reserve(in.size());
    for (const auto& p : in) node_rows.push_back(p.size());
    op_span.SetNodeRows(std::move(node_rows));
  }
  const TupleLayout layout = CollectVars(plan->input);
  CLEANM_ASSIGN_OR_RETURN(CompiledExpr head, CompileExpr(plan->head, layout, Env()));
  // Fold locally per node, then merge the partials on the driver — legal
  // for any monoid by associativity (commutative monoids also tolerate the
  // arbitrary node order; "list" keeps node order deterministic).
  std::vector<Value> partials(cluster->num_nodes(), monoid->zero());
  cluster->RunOnNodes([&](size_t n) {
    Value acc = monoid->zero();
    for (const auto& row : in[n]) {
      acc = monoid->Accumulate(std::move(acc), head(PhysicalTupleOf(row)));
    }
    partials[n] = std::move(acc);
  });
  Value acc = monoid->zero();
  for (auto& p : partials) acc = monoid->Merge(std::move(acc), p);
  if (udf) cluster->metrics().udf_calls += engine::Cluster::TotalRows(in);
  if (udf && udf->finalize) return udf->finalize({acc});
  return acc;
}

}  // namespace cleanm
