// Session-owned partition cache: the cross-query successor of the
// executor's per-query scan/wrap/nest maps.
//
// A CleanDB session owns one PartitionCache; every Executor the session
// creates shares it. Entries are keyed by (kind, table, var, node identity,
// table generation, partition count), so
//   * repeated executions of a PreparedQuery reuse the parallelized scans,
//     the {var: record} wrapped scans, and the outputs of coalesced Nest
//     stages instead of re-partitioning,
//   * a re-registered table (generation bump) can never be served stale —
//     RegisterTable invalidates eagerly AND the stale generation no longer
//     matches the key,
//   * executions under a different active-node cap (ExecOptions::max_nodes)
//     never see partitionings of the wrong width.
//
// Memory is bounded by a byte budget with LRU eviction (ROADMAP
// "Scan-cache memory"): each Put charges the deep row bytes of the inserted
// partitioning and evicts least-recently-used entries until the cache fits.
// A single entry larger than the whole budget is admitted alone (evicting
// everything else); refusing it would livelock large-table sessions.
//
// Thread model: every operation takes the cache's internal mutex, and
// Find/Put hand out shared-ownership pins (PartitionPin) instead of raw
// pointers. The pin keeps the partitioning alive for as long as the caller
// streams from it; eviction, invalidation, and Clear merely drop the
// cache's own reference, so a concurrent reader can never dangle. Pins are
// snapshots: a pinned partitioning may no longer be resident (or even
// current) by the time it is read — generation keys guarantee a *stale*
// one is never handed out at Find time, which is the visibility rule the
// session layer documents (DESIGN.md, "Threading & session concurrency").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "algebra/algebra.h"
#include "engine/cluster.h"
#include "storage/pagestore/page.h"

namespace cleanm {

/// Shared-ownership pin on a cached partitioning: holding it keeps the data
/// alive across evictions/invalidations. Null = miss.
using PartitionPin = std::shared_ptr<const engine::Partitioned>;

/// \brief Write-back target for evicted cache entries — the out-of-core
/// hook (DESIGN.md, "Out-of-core storage & spill").
///
/// With a pager installed, eviction *pages out* a cold entry (writes its
/// partitions to the session spill store and drops only the resident copy)
/// instead of discarding the work; a later Find revives it from its spans.
/// Implementations are called with the cache mutex held, so they must not
/// call back into the cache (lock order: cache mutex → store/pool mutexes).
class PartitionPager {
 public:
  virtual ~PartitionPager() = default;
  /// Serializes each partition of `data` to pages; spans[n] addresses
  /// partition n ([] for an empty partition).
  virtual Result<std::vector<std::vector<PageSpan>>> Write(
      const engine::Partitioned& data) = 0;
  /// Revives a partitioning previously produced by Write.
  virtual Result<engine::Partitioned> Read(
      const std::vector<std::vector<PageSpan>>& spans) = 0;
};

class PartitionCache {
 public:
  /// Point-in-time counters. Hit/miss/eviction counters are cumulative for
  /// the cache's lifetime; resident_* describe the current contents.
  /// `Since` turns two snapshots into a per-execution delta.
  struct Stats {
    uint64_t scan_hits = 0;    ///< scan requests served without Parallelize
    uint64_t scan_misses = 0;  ///< Parallelize runs (tables partitioned)
    uint64_t nest_hits = 0;    ///< shared-Nest requests served from cache
    uint64_t nest_misses = 0;  ///< Nest stages executed
    uint64_t evictions = 0;    ///< entries dropped by the byte budget
    uint64_t invalidations = 0;  ///< entries dropped by table re-registration
    /// Entries paged out to the spill store instead of discarded (pager
    /// installed), and entries revived from their spans on a later Find.
    uint64_t page_writebacks = 0;
    uint64_t page_revivals = 0;
    uint64_t resident_bytes = 0;
    uint64_t resident_entries = 0;

    /// Counter-wise delta against an earlier snapshot (resident_* keep the
    /// later snapshot's values — they are gauges, not counters).
    Stats Since(const Stats& before) const;
    std::string ToString() const;
  };

  /// `byte_budget` bounds the resident partition bytes; 0 = unbounded.
  explicit PartitionCache(size_t byte_budget = 0) : byte_budget_(byte_budget) {}

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  // ---- Scans (a table parallelized across `nodes` partitions) ----

  PartitionPin FindScan(const std::string& table, uint64_t generation,
                        size_t nodes);
  /// Returns a pin on the admitted entry.
  PartitionPin PutScan(const std::string& table, uint64_t generation,
                       size_t nodes, engine::Partitioned data);

  // ---- Wrapped scans (the {var: record} tuple wrap of a scan) ----

  PartitionPin FindWrap(const std::string& table, const std::string& var,
                        uint64_t generation, size_t nodes);
  /// Returns a pin on the admitted entry.
  PartitionPin PutWrap(const std::string& table, const std::string& var,
                       uint64_t generation, size_t nodes,
                       engine::Partitioned data);

  // ---- Nest outputs (keyed by node identity; the node is pinned) ----

  /// `generation_of` resolves a table name to its current generation; a hit
  /// requires every recorded dependency to still match. `generation_of` is
  /// called while the cache lock is held — it must not call back into the
  /// cache (resolving against a Catalog snapshot satisfies this).
  PartitionPin FindNest(
      const AlgOp* node, size_t nodes,
      const std::function<uint64_t(const std::string&)>& generation_of);
  /// `node` is retained (shared ownership) while the entry lives, so a
  /// recycled heap address can never alias a cached result. `deps` lists
  /// every (table, generation) the Nest's input subtree read. Returns a pin
  /// on the admitted entry (never evicted by its own budget pass), so the
  /// pipelined executor can stream from it without copying.
  PartitionPin PutNest(const AlgOpPtr& node, size_t nodes,
                       std::vector<std::pair<std::string, uint64_t>> deps,
                       engine::Partitioned data);

  /// Records a scan served from cache (wrap or base) / a Parallelize run.
  /// Exposed so the executor can count wrap-cache hits as scan hits.
  void CountScanHit();
  void CountScanMiss();

  /// Drops every entry that read `table` (any generation). Called by
  /// RegisterTable/UnregisterTable. Readers holding pins are unaffected.
  void InvalidateTable(const std::string& table);

  void Clear();

  /// Installs (or clears, with null) the write-back pager. The pager must
  /// outlive every cache operation that may evict or revive (the session
  /// owns both and destroys the cache first).
  void set_pager(std::shared_ptr<PartitionPager> pager);

  size_t byte_budget() const { return byte_budget_; }
  /// Consistent snapshot of the counters (by value: the live struct changes
  /// under concurrent executions).
  Stats stats() const;

 private:
  enum class Kind { kScan, kWrap, kNest };
  /// (kind, nest-node identity, table, var, generation, partition count).
  using Key = std::tuple<Kind, const AlgOp*, std::string, std::string, uint64_t, size_t>;

  struct Entry {
    /// Resident copy; null while the entry is paged out (`!paged.empty()`).
    PartitionPin data;
    uint64_t bytes = 0;
    uint64_t last_used = 0;
    /// Tables (with the generations seen) this entry depends on.
    std::vector<std::pair<std::string, uint64_t>> deps;
    /// Nest entries pin their plan node against address reuse.
    AlgOpPtr pinned;
    /// Page spans of the written-back copy (pager installed). Kept after a
    /// revival: the data under a key never changes, so the next eviction
    /// is free — drop the resident copy, the spans stay valid.
    std::vector<std::vector<PageSpan>> paged;
  };

  // All private helpers expect mu_ held by the caller.
  PartitionPin FindLocked(const Key& key);
  PartitionPin PutLocked(Key key, Entry entry);
  /// Revives a paged-out entry through the pager; null on read failure
  /// (treated as a miss — the caller recomputes).
  PartitionPin ReviveLocked(std::map<Key, Entry>::iterator it);
  void EraseLocked(std::map<Key, Entry>::iterator it, uint64_t* counter);
  void EvictToBudgetLocked(const Key& keep);

  size_t byte_budget_;
  std::shared_ptr<PartitionPager> pager_;

  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  uint64_t resident_bytes_ = 0;
  std::map<Key, Entry> entries_;
  Stats stats_;
};

}  // namespace cleanm
