// Expression compilation for the physical layer (paper Section 7: the Code
// Generator emits a Spark script; our analogue compiles expression trees
// into C++ closures once per plan, so per-row evaluation does no tree
// walking or name resolution).
//
// Physical tuples are single-Value rows holding the algebra-level tuple
// struct {var → record}. The compiler resolves variable references to
// positional indexes against the plan's deterministic layout.
//
// Error semantics: compiled expressions *null-propagate* (type mismatches
// and unknown fields yield null, and predicates treat null as false), the
// usual engine behaviour for dirty data — the reference evaluator's strict
// errors are for plan debugging, not for per-row data errors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "functions/function_registry.h"
#include "monoid/expr.h"

namespace cleanm {

/// Deterministic variable layout of a plan node's output tuples.
using TupleLayout = std::vector<std::string>;

/// A compiled expression: tuple → value.
using CompiledExpr = std::function<Value(const Value& tuple)>;

/// \brief Compile-time context beyond the tuple layout: the session's
/// function registry (registered scalar/repair functions resolve in call
/// position; registration rejects builtin-shadowing names, so resolution
/// order cannot change a query's meaning) and the metrics sink charged one
/// `udf_calls` tick per registered-function invocation.
struct CompileEnv {
  const FunctionRegistry* functions = nullptr;
  QueryMetrics* metrics = nullptr;
};

/// Compiles `e` against `layout`. Unknown variables are a plan-time error.
Result<CompiledExpr> CompileExpr(const ExprPtr& e, const TupleLayout& layout,
                                 const CompileEnv& env = {});

/// Compiles a predicate: null or non-bool results become false.
Result<std::function<bool(const Value&)>> CompilePredicate(const ExprPtr& e,
                                                           const TupleLayout& layout,
                                                           const CompileEnv& env = {});

}  // namespace cleanm
