#include "cleaning/incremental.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "physical/tuple.h"
#include "storage/delta.h"

namespace cleanm {

namespace {

using engine::Partition;

/// One compiled transform stage of a root's chain, applied tuple-wise.
struct ChainStage {
  AlgKind kind = AlgKind::kSelect;
  std::function<bool(const Value&)> pred;  ///< kSelect
  CompiledExpr path;                       ///< kUnnest / kOuterUnnest
  std::string var;
};

struct RootWork {
  const CleaningPlan* plan = nullptr;
  const AlgOp* root = nullptr;
  const AlgOp* nest_key = nullptr;
  /// Bottom-up (nest → root) compiled transform chain.
  std::vector<ChainStage> stages;
};

struct NestWork {
  AlgOpPtr nest;
  std::string table;
  std::string var;
  Executor::CompiledNest compiled;
  IncrementalNestState* state = nullptr;
  /// Keys this execution's delta touched; true = the key saw a removal (its
  /// accumulators were re-folded from the member bag).
  std::unordered_map<Value, bool, IncrementalValueHash, IncrementalValueEq> touched;
};

/// Peels root-first transforms down to an exact-key Nest over a Scan.
/// `chain` receives the transform nodes root-first.
bool AnalyzeRoot(const AlgOpPtr& root, std::vector<const AlgOp*>* chain,
                 AlgOpPtr* nest) {
  AlgOpPtr cur = root;
  while (cur) {
    switch (cur->kind) {
      case AlgKind::kSelect:
      case AlgKind::kUnnest:
      case AlgKind::kOuterUnnest:
        chain->push_back(cur.get());
        cur = cur->input;
        continue;
      case AlgKind::kNest:
        if (cur->group.algo != FilteringAlgo::kExactKey) return false;
        if (!cur->input || cur->input->kind != AlgKind::kScan) return false;
        *nest = cur;
        return true;
      default:
        return false;
    }
  }
  return false;
}

Result<std::vector<ChainStage>> CompileChainStages(
    const std::vector<const AlgOp*>& chain_root_first, const Executor& exec) {
  std::vector<ChainStage> stages;
  stages.reserve(chain_root_first.size());
  // Reverse to bottom-up application order.
  for (auto it = chain_root_first.rbegin(); it != chain_root_first.rend(); ++it) {
    const AlgOp* node = *it;
    const TupleLayout layout = CollectVars(node->input);
    ChainStage s;
    s.kind = node->kind;
    if (node->kind == AlgKind::kSelect) {
      CLEANM_ASSIGN_OR_RETURN(s.pred, CompilePredicate(node->pred, layout, exec.Env()));
    } else {
      CLEANM_ASSIGN_OR_RETURN(s.path, CompileExpr(node->path, layout, exec.Env()));
      s.var = node->path_var;
    }
    stages.push_back(std::move(s));
  }
  return stages;
}

/// Applies the compiled chain to one tuple, collecting the produced tuples.
/// Select filtering and (Outer)Unnest padding mirror the physical executor
/// exactly (planner.cc kUnnest / pipeline.cc CompileChain): null or empty
/// list pads Null only under OuterUnnest, a non-list scalar behaves as a
/// singleton, a list iterates.
void ApplyChain(const std::vector<ChainStage>& stages, size_t i, const Value& tuple,
                std::vector<Value>* out) {
  if (i == stages.size()) {
    out->push_back(tuple);
    return;
  }
  const ChainStage& s = stages[i];
  if (s.kind == AlgKind::kSelect) {
    if (s.pred(tuple)) ApplyChain(stages, i + 1, tuple, out);
    return;
  }
  const bool outer = s.kind == AlgKind::kOuterUnnest;
  const Value coll = s.path(tuple);
  auto pad = [&](Value element) {
    ValueStruct padded = tuple.AsStruct();
    padded.emplace_back(s.var, std::move(element));
    ApplyChain(stages, i + 1, Value(std::move(padded)), out);
  };
  if (coll.is_null() ||
      (coll.type() == ValueType::kList && coll.AsList().empty())) {
    if (outer) pad(Value::Null());
    return;
  }
  if (coll.type() != ValueType::kList) {
    pad(coll);
    return;
  }
  for (const auto& element : coll.AsList()) pad(element);
}

/// Wraps a storage row into the scan's {var: record} tuple and expands it
/// through the Nest's keyed expansion. Exact-key grouping emits exactly one
/// (key, tuple) pair.
Result<Row> ExpandOne(const NestWork& w, const Schema& schema, const Row& row) {
  Value tuple(ValueStruct{{w.var, RowToRecord(schema, row)}});
  Partition pairs;
  w.compiled.expand(tuple, &pairs);
  if (pairs.size() != 1) {
    return Status::Internal("exact-key expansion produced " +
                            std::to_string(pairs.size()) + " pairs");
  }
  return std::move(pairs.front());
}

/// Finalizes one group (having-gated, 0 or 1 tuples) and runs the op's
/// transform chain over it.
std::vector<Value> GroupOutputs(const NestWork& w, const RootWork& r,
                                const Value& key, const IncrementalGroup& g) {
  Partition finalized;
  w.compiled.spec.finalize(key, g.accs, &finalized);
  std::vector<Value> out;
  for (const auto& row : finalized) {
    ApplyChain(r.stages, 0, PhysicalTupleOf(row), &out);
  }
  return out;
}

/// Drops a Nest's state and every operation baseline derived from it.
void ResetNest(IncrementalState& state, const AlgOp* nest_key) {
  state.nests.erase(nest_key);
  for (auto it = state.ops.begin(); it != state.ops.end();) {
    if (it->second.nest == nest_key) {
      it = state.ops.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

Result<IncrementalRun> RunIncrementalValidation(IncrementalState& state,
                                                const std::vector<CleaningPlan>& plans,
                                                const std::vector<AlgOpPtr>& roots,
                                                Executor& exec, ViolationSink& sink) {
  const Catalog& catalog = *exec.catalog;
  if (plans.size() != roots.size()) {
    return Status::Internal("incremental: plan/root arity mismatch");
  }

  // Phase 0: structural eligibility + compilation — all-or-nothing.
  std::vector<RootWork> rwork(roots.size());
  std::map<const AlgOp*, NestWork> nwork;
  for (size_t i = 0; i < roots.size(); i++) {
    std::vector<const AlgOp*> chain;
    AlgOpPtr nest;
    if (!roots[i] || !AnalyzeRoot(roots[i], &chain, &nest)) {
      return IncrementalRun::kIneligible;
    }
    rwork[i].plan = &plans[i];
    rwork[i].root = roots[i].get();
    rwork[i].nest_key = nest.get();
    CLEANM_ASSIGN_OR_RETURN(rwork[i].stages, CompileChainStages(chain, exec));
    auto [it, inserted] = nwork.try_emplace(nest.get());
    if (inserted) {
      NestWork& w = it->second;
      w.nest = nest;
      w.table = nest->input->table;
      w.var = nest->input->var;
      CLEANM_ASSIGN_OR_RETURN(w.compiled, exec.CompileNestStage(nest));
    }
  }

  // The delta path only applies when the snapshot is ahead of the base by
  // mutations: every scanned table must be registered, mutated within the
  // current major epoch (minor > 0), and carry a delta log. Otherwise the
  // cold engine path is the right one (and keeps its cache-metrics
  // contract: plain re-executions never enter here).
  for (const auto& [key, w] : nwork) {
    (void)key;
    if (catalog.GenerationOf(w.table) == 0 || catalog.MinorOf(w.table) == 0 ||
        catalog.FindDelta(w.table) == nullptr) {
      return IncrementalRun::kIneligible;
    }
  }

  std::lock_guard<std::mutex> lock(state.mu);
  QueryMetrics& metrics = exec.cluster->metrics();

  // Phase 1: bind / bootstrap / validate per-Nest state.
  for (auto& [key, w] : nwork) {
    const uint64_t gen = catalog.GenerationOf(w.table);
    const uint64_t minor = catalog.MinorOf(w.table);
    const uint64_t major = catalog.MajorOf(w.table);
    auto it = state.nests.find(key);
    if (it != state.nests.end() &&
        (it->second.major != major || it->second.table != w.table ||
         it->second.version > gen)) {
      // Stale epoch (re-registration) or a state already ahead of this
      // snapshot (a concurrent execution with a newer snapshot advanced
      // it): drop it and let the engine serve this snapshot.
      ResetNest(state, key);
      it = state.nests.end();
    }
    if (it == state.nests.end()) {
      // Bootstrap: fold the base (as-registered) dataset into fresh group
      // state at the epoch's start version, gen − minor. In-place unit
      // merging is safe here — no outputs reference these accumulators yet.
      const Dataset* base = catalog.FindBase(w.table);
      if (base == nullptr) return IncrementalRun::kIneligible;
      IncrementalNestState ns;
      ns.table = w.table;
      ns.major = major;
      ns.version = gen - minor;
      for (const auto& row : base->rows()) {
        CLEANM_ASSIGN_OR_RETURN(Row pair, ExpandOne(w, base->schema(), row));
        auto [git, fresh_key] = ns.groups.try_emplace(pair[0]);
        if (fresh_key) ns.key_order.push_back(pair[0]);
        IncrementalGroup& g = git->second;
        Value unit = w.compiled.spec.init(pair);
        g.accs = g.members.empty()
                     ? std::move(unit)
                     : w.compiled.spec.merge(std::move(g.accs), unit);
        g.members.push_back(std::move(pair[1]));
      }
      it = state.nests.emplace(key, std::move(ns)).first;
    }
    w.state = &it->second;
  }

  // Phase 2: operation baselines at the nests' pre-delta versions. A
  // missing or version-skewed baseline (first incremental run, or the
  // active root set changed — e.g. the unify knob toggled) is recomputed in
  // full from the current group state.
  for (auto& r : rwork) {
    NestWork& w = nwork.at(r.nest_key);
    auto [it, inserted] = state.ops.try_emplace(r.root);
    IncrementalOpState& os = it->second;
    if (inserted || os.nest != r.nest_key || os.version != w.state->version) {
      os.nest = r.nest_key;
      os.version = w.state->version;
      os.outputs.clear();
      for (const auto& k : w.state->key_order) {
        std::vector<Value> outs = GroupOutputs(w, r, k, w.state->groups.at(k));
        if (!outs.empty()) os.outputs.emplace(k, std::move(outs));
      }
    }
  }

  // Phase 3: apply each table's delta window to its nest states.
  for (auto& [key, w] : nwork) {
    IncrementalNestState& ns = *w.state;
    const uint64_t gen = catalog.GenerationOf(w.table);
    if (ns.version == gen) continue;
    const DeltaLog* log = catalog.FindDelta(w.table);
    std::vector<Row> added, removed;
    if (!log->Collect(ns.version, gen, &added, &removed)) {
      // The log does not contiguously cover (state version, snapshot]:
      // rebuild from scratch next time.
      ResetNest(state, key);
      return IncrementalRun::kIneligible;
    }
    auto table = catalog.Find(w.table);
    if (!table.ok()) return IncrementalRun::kIneligible;
    const Schema& schema = table.value()->schema();

    // Removals: erase one Equals-matching member per removed row.
    for (const auto& row : removed) {
      CLEANM_ASSIGN_OR_RETURN(Row pair, ExpandOne(w, schema, row));
      auto git = ns.groups.find(pair[0]);
      bool erased = false;
      if (git != ns.groups.end()) {
        auto& members = git->second.members;
        for (size_t m = 0; m < members.size(); m++) {
          if (members[m].Equals(pair[1])) {
            members.erase(members.begin() + static_cast<long>(m));
            erased = true;
            break;
          }
        }
      }
      if (!erased) {
        // The log names a row the state never saw — inconsistent; rebuild.
        ResetNest(state, key);
        return IncrementalRun::kIneligible;
      }
      w.touched[pair[0]] = true;
    }

    // Additions: append members, remembering the units per key.
    std::unordered_map<Value, std::vector<Row>, IncrementalValueHash,
                       IncrementalValueEq>
        added_pairs;
    for (const auto& row : added) {
      CLEANM_ASSIGN_OR_RETURN(Row pair, ExpandOne(w, schema, row));
      auto [git, fresh_key] = ns.groups.try_emplace(pair[0]);
      if (fresh_key) ns.key_order.push_back(pair[0]);
      git->second.members.push_back(pair[1]);
      w.touched.try_emplace(pair[0], false);
      added_pairs[pair[0]].push_back(std::move(pair));
    }

    // Refresh accumulators per touched key. A key that saw a removal is
    // re-folded from its member bag (subtractive re-grouping — sidesteps
    // monoid invertibility); an adds-only key merges the new units into a
    // DeepCopy of the cached accumulator (never in place: previously
    // finalized outputs share nested storage with it).
    for (const auto& [k, had_removal] : w.touched) {
      auto git = ns.groups.find(k);
      if (git == ns.groups.end()) continue;
      IncrementalGroup& g = git->second;
      if (g.members.empty()) {
        ns.groups.erase(git);
        ns.key_order.erase(
            std::remove_if(ns.key_order.begin(), ns.key_order.end(),
                           [&](const Value& v) { return v.Equals(k); }),
            ns.key_order.end());
        continue;
      }
      if (had_removal || g.accs.is_null()) {
        // Re-fold from the member bag: after a removal (subtractive
        // re-grouping), or for a group this delta created (no cached
        // accumulator to extend).
        Value acc;
        bool first = true;
        for (const auto& member : g.members) {
          Value unit = w.compiled.spec.init(Row{k, member});
          acc = first ? std::move(unit)
                      : w.compiled.spec.merge(std::move(acc), unit);
          first = false;
        }
        g.accs = std::move(acc);
      } else {
        Value acc = g.accs.DeepCopy();
        for (const auto& pair : added_pairs[k]) {
          acc = w.compiled.spec.merge(std::move(acc), w.compiled.spec.init(pair));
        }
        g.accs = std::move(acc);
      }
    }
    metrics.delta_rows_processed += added.size() + removed.size();
    metrics.groups_remerged += w.touched.size();
    ns.version = gen;
  }

  // Phase 4: per operation — recompute touched keys, diff against the
  // baseline, and emit the retraction-tagged stream. Entity accumulation
  // matches the engine path's unified-report semantics exactly.
  std::unordered_map<Value, std::vector<std::string>, IncrementalValueHash,
                     IncrementalValueEq>
      entities;
  for (auto& r : rwork) {
    Timer op_timer;
    NestWork& w = nwork.at(r.nest_key);
    IncrementalNestState& ns = *w.state;
    IncrementalOpState& os = state.ops.at(r.root);
    const CleaningPlan& cp = *r.plan;

    CLEANM_RETURN_NOT_OK(sink.OnOpBegin(cp.op_name));

    std::vector<Value> retracted;
    std::unordered_map<Value, std::vector<char>, IncrementalValueHash,
                       IncrementalValueEq>
        fresh;  // key → per-output "new since last run" flags
    for (const auto& [k, had_removal] : w.touched) {
      (void)had_removal;
      std::vector<Value> next;
      if (auto git = ns.groups.find(k); git != ns.groups.end()) {
        next = GroupOutputs(w, r, k, git->second);
      }
      std::vector<Value> prev;
      if (auto oit = os.outputs.find(k); oit != os.outputs.end()) {
        prev = std::move(oit->second);
      }
      // Bag diff via pairwise Equals (groups produce few outputs).
      std::vector<char> prev_matched(prev.size(), 0);
      std::vector<char> next_new(next.size(), 1);
      for (size_t n = 0; n < next.size(); n++) {
        for (size_t p = 0; p < prev.size(); p++) {
          if (!prev_matched[p] && prev[p].Equals(next[n])) {
            prev_matched[p] = 1;
            next_new[n] = 0;
            break;
          }
        }
      }
      for (size_t p = 0; p < prev.size(); p++) {
        if (!prev_matched[p]) retracted.push_back(std::move(prev[p]));
      }
      if (std::any_of(next_new.begin(), next_new.end(),
                      [](char c) { return c != 0; })) {
        fresh[k] = std::move(next_new);
      }
      if (next.empty()) {
        os.outputs.erase(k);
      } else {
        os.outputs[k] = std::move(next);
      }
    }
    os.version = ns.version;

    // Retractions first, then the full current set in first-occurrence key
    // order (the engine's group-order determinism contract). The current
    // set goes through the same per-op entity deduper as the engine path;
    // retractions are not deduper-gated — each names a concrete previously
    // emitted tuple that no longer holds.
    for (const auto& v : retracted) {
      CLEANM_RETURN_NOT_OK(sink.OnViolationRetracted(cp.op_name, v));
    }
    size_t emitted = 0;
    ViolationDeduper dedup(cp);
    for (const auto& k : ns.key_order) {
      auto oit = os.outputs.find(k);
      if (oit == os.outputs.end()) continue;
      const std::vector<char>* flags = nullptr;
      if (auto fit = fresh.find(k); fit != fresh.end()) flags = &fit->second;
      for (size_t n = 0; n < oit->second.size(); n++) {
        const Value& v = oit->second[n];
        if (!dedup.ShouldEmit(v)) continue;
        const bool is_new = flags != nullptr && n < flags->size() && (*flags)[n];
        CLEANM_RETURN_NOT_OK(is_new ? sink.OnViolationNew(cp.op_name, v)
                                    : sink.OnViolation(cp.op_name, v));
        emitted++;
        for (const auto& var : cp.entity_vars) {
          auto field = v.GetField(var);
          if (!field.ok()) continue;
          const Value& entity = field.value();
          auto add = [&](const Value& e) {
            auto& ops = entities[e];
            if (ops.empty() || ops.back() != cp.op_name) ops.push_back(cp.op_name);
          };
          if (entity.type() == ValueType::kList) {
            for (const auto& e : entity.AsList()) add(e);
          } else {
            add(entity);
          }
        }
      }
    }

    OpSummary summary;
    summary.op_name = cp.op_name;
    summary.violations = emitted;
    summary.seconds = op_timer.ElapsedSeconds();
    CLEANM_RETURN_NOT_OK(sink.OnOpEnd(summary));
  }

  for (const auto& [entity, ops] : entities) {
    CLEANM_RETURN_NOT_OK(sink.OnDirtyEntity(entity, ops));
  }
  metrics.incremental_executions += 1;
  return IncrementalRun::kRan;
}

}  // namespace cleanm
