// Desugaring of CleanM cleaning clauses into algebra plans (paper
// Section 4.4 semantics, Section 5 plans).
//
// Each clause lowers to the canonical comprehension template of Section 4.4
// and from there to a nested-relational-algebra plan:
//
//   FD(lhs, rhs)      groups := for(c <- T) yield filter(lhs)
//                     for(g <- groups, count(distinct rhs) > 1) yield bag g
//                     → Nest[exact lhs; vals=set(rhs), partition=bag(c);
//                            having count(vals) > 1]
//
//   DEDUP(op, m, θ, attrs)
//                     groups := for(c <- T) yield filter(attrs, op)
//                     for(g, p1 <- g.partition, p2 <- g.partition,
//                         similar(m, p1, p2, θ)) yield bag (p1, p2)
//                     → Nest[op attrs; partition=bag(c); |partition|>1]
//                       → Unnest(p1) → Unnest(p2)
//                       → Select(p1 < p2 ∧ similar(m, p1, p2, θ))
//
//   CLUSTER BY(op, m, θ, term)   (dictionary = second FROM table)
//                     → Nest over data terms ⋈(key) Nest over dictionary
//                       → Unnest both term sets
//                       → Select(term ≠ dict ∧ similar(m, term, dict, θ))
//
// The builders return plain algebra plans; CoalesceNests + the physical
// executor provide the Figure-1 work sharing when a query carries several
// clauses.
#pragma once

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/algebra.h"
#include "common/status.h"
#include "language/ast.h"

namespace cleanm {

/// One cleaning operation lowered to algebra, plus bookkeeping for the
/// unified-result outer join.
struct CleaningPlan {
  std::string op_name;   ///< "FD", "DEDUP", "CLUSTER BY" (+index if several)
  AlgOpPtr plan;         ///< violation-producing plan
  /// Variables of `plan`'s output holding violating source records:
  /// FD → the partition bag; DEDUP → the two pair members; CLUSTER BY → the
  /// offending term (not a record).
  std::vector<std::string> entity_vars;
};

/// Combines multiple attribute expressions into one grouping term:
/// a single expression stays as is; several become concat(a, '|', b, ...).
ExprPtr CombineAttrs(const std::vector<ExprPtr>& attrs);

/// Metric name as the `similar` builtin expects ("LD", "jaccard").
const char* MetricName(SimilarityMetric metric);

/// FD plan over `table` bound as `var`.
Result<CleaningPlan> BuildFdPlan(const std::string& table, const std::string& var,
                                 const FdClause& fd);

/// DEDUP plan. `options` supplies the q/k/delta defaults for the chosen
/// filtering algorithm; kmeans centers are sampled by the caller (CleanDB)
/// and passed through `centers`.
Result<CleaningPlan> BuildDedupPlan(const std::string& table, const std::string& var,
                                    const DedupClause& dedup,
                                    const FilteringOptions& options,
                                    std::vector<std::string> centers = {});

/// CLUSTER BY (term validation) plan over data table + dictionary table.
Result<CleaningPlan> BuildTermValidationPlan(
    const std::string& data_table, const std::string& data_var,
    const std::string& dict_table, const std::string& dict_var,
    const std::string& dict_attr, const ClusterByClause& cb,
    const FilteringOptions& options, std::vector<std::string> centers = {});

/// The canonical comprehension for an FD clause (Section 4.4), for EXPLAIN
/// output and the semantics tests.
ExprPtr FdComprehension(const std::string& table, const std::string& var,
                        const FdClause& fd);

/// \brief Streaming-capable entity-projection dedup: filtering monoids
/// assign one record to several groups (one per shared token / center), so
/// the same violating pair can surface once per shared group, and only its
/// first occurrence must reach the sink.
///
/// The seen-set persists across calls, so the morsel-at-a-time pipelined
/// path and the whole-output materializing path apply the identical dedup
/// — morsel boundaries cannot change which violations are emitted.
class ViolationDeduper {
 public:
  explicit ViolationDeduper(const CleaningPlan& cp) : cp_(&cp) {}

  /// True when `v` is the first occurrence of its entity projection (or
  /// projects onto no entity var at all) and should be emitted.
  bool ShouldEmit(const Value& v);

 private:
  const CleaningPlan* cp_;
  std::unordered_set<uint64_t> seen_;
};

/// Walks a cleaning plan's output (a list Value of tuples), deduplicated
/// on the operation's entity projection via ViolationDeduper. Calls `emit`
/// for each kept violation; a non-OK status from `emit` stops the walk and
/// is returned. Shared by the materializing (RunCleaningPlan) and
/// streaming (ExecutePrepared) consumption paths so the dedup semantics
/// cannot diverge.
Status ForEachDedupedViolation(const Value& plan_output, const CleaningPlan& cp,
                               const std::function<Status(const Value&)>& emit);

}  // namespace cleanm
