#include "cleaning/cleandb.h"

#include <unordered_map>
#include <unordered_set>

#include "cluster/filtering.h"
#include "monoid/eval.h"

namespace cleanm {

CleanDB::CleanDB(CleanDBOptions options) : options_(std::move(options)) {
  engine::ClusterOptions copts;
  copts.num_nodes = options_.num_nodes;
  copts.shuffle_ns_per_byte = options_.shuffle_ns_per_byte;
  copts.shuffle_batch_rows = options_.shuffle_batch_rows;
  copts.shuffle_ns_per_batch = options_.shuffle_ns_per_batch;
  copts.use_worker_pool = options_.use_worker_pool;
  cluster_ = std::make_unique<engine::Cluster>(copts);
}

void CleanDB::RegisterTable(const std::string& name, Dataset dataset) {
  tables_[name] = std::move(dataset);
}

Result<const Dataset*> CleanDB::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::KeyError("unknown table '" + name + "'");
  return &it->second;
}

Catalog CleanDB::MakeCatalog() const {
  Catalog catalog;
  for (const auto& [name, dataset] : tables_) catalog.tables[name] = &dataset;
  return catalog;
}

std::vector<std::string> CleanDB::SampleCenters(const std::string& table,
                                                const std::string& attr,
                                                size_t k) const {
  auto t = GetTable(table);
  if (!t.ok()) return {};
  auto idx = t.value()->schema().IndexOf(attr);
  if (!idx.ok()) return {};
  std::vector<std::string> values;
  values.reserve(t.value()->num_rows());
  for (const auto& row : t.value()->rows()) {
    const Value& v = row[idx.value()];
    if (v.type() == ValueType::kString) values.push_back(v.AsString());
  }
  return ReservoirSample(values, k, options_.filtering.seed);
}

Result<OpResult> CleanDB::RunCleaningPlan(Executor& exec, const CleaningPlan& cp) {
  Timer timer;
  OpResult result;
  result.op_name = cp.op_name;
  CLEANM_ASSIGN_OR_RETURN(Value out, exec.RunToValue(cp.plan));
  // Deduplicate violations on their entity projection: filtering monoids
  // assign one record to several groups (one per shared token / center), so
  // the same violating pair can surface once per shared group.
  std::unordered_set<uint64_t> seen;
  for (const auto& v : out.AsList()) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    bool projected = false;
    for (const auto& var : cp.entity_vars) {
      auto field = v.GetField(var);
      if (field.ok()) {
        h = HashCombine(h, field.value().Hash());
        projected = true;
      }
    }
    if (!projected || seen.insert(h).second) result.violations.push_back(v);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<QueryResult> CleanDB::Execute(const std::string& query_text) {
  CLEANM_ASSIGN_OR_RETURN(CleanMQuery query, ParseCleanM(query_text));
  return ExecuteQuery(query);
}

Result<QueryResult> CleanDB::ExecuteQuery(const CleanMQuery& query) {
  if (query.from.empty()) return Status::InvalidArgument("query has no FROM table");
  const TableRef& base = query.from[0];
  CLEANM_ASSIGN_OR_RETURN(const Dataset* base_table, GetTable(base.table));
  (void)base_table;

  Timer total;
  QueryResult result;

  // Desugar every cleaning clause to its algebra plan.
  std::vector<CleaningPlan> cleaning_plans;
  for (const auto& fd : query.fds) {
    CLEANM_ASSIGN_OR_RETURN(CleaningPlan cp, BuildFdPlan(base.table, base.alias, fd));
    cleaning_plans.push_back(std::move(cp));
  }
  for (const auto& dedup : query.dedups) {
    FilteringOptions fopts = options_.filtering;
    fopts.algo = dedup.op;
    std::vector<std::string> centers;
    if (dedup.op == FilteringAlgo::kKMeans && !dedup.attributes.empty() &&
        dedup.attributes[0]->kind == ExprKind::kField) {
      centers = SampleCenters(base.table, dedup.attributes[0]->name, fopts.k);
    }
    CLEANM_ASSIGN_OR_RETURN(
        CleaningPlan cp,
        BuildDedupPlan(base.table, base.alias, dedup, fopts, std::move(centers)));
    cleaning_plans.push_back(std::move(cp));
  }
  for (const auto& cb : query.cluster_bys) {
    if (query.from.size() < 2) {
      return Status::InvalidArgument(
          "CLUSTER BY requires a dictionary table as the second FROM entry");
    }
    const TableRef& dict = query.from[1];
    if (!cb.term || cb.term->kind != ExprKind::kField) {
      return Status::InvalidArgument("CLUSTER BY term must be a column reference");
    }
    const std::string attr = cb.term->name;
    FilteringOptions fopts = options_.filtering;
    fopts.algo = cb.op;
    std::vector<std::string> centers;
    if (cb.op == FilteringAlgo::kKMeans) {
      centers = SampleCenters(dict.table, attr, fopts.k);
    }
    CLEANM_ASSIGN_OR_RETURN(
        CleaningPlan cp,
        BuildTermValidationPlan(base.table, base.alias, dict.table, dict.alias, attr,
                                cb, fopts, std::move(centers)));
    cleaning_plans.push_back(std::move(cp));
  }
  // Disambiguate repeated operator names (FD, FD_2, ...).
  {
    std::map<std::string, int> seen;
    for (auto& cp : cleaning_plans) {
      const int n = ++seen[cp.op_name];
      if (n > 1) cp.op_name += "_" + std::to_string(n);
    }
  }

  // Algebra-level optimization: coalesce shared Nest stages (Figure 1) and
  // apply the intra-plan rules.
  RewriteStats stats;
  if (options_.unify_operations) {
    std::vector<AlgOpPtr> roots;
    roots.reserve(cleaning_plans.size());
    for (const auto& cp : cleaning_plans) roots.push_back(cp.plan);
    CoalescedPlans coalesced = CoalesceNests(roots, &stats);
    for (size_t i = 0; i < cleaning_plans.size(); i++) {
      cleaning_plans[i].plan = coalesced.roots[i];
    }
    result.nests_coalesced = coalesced.groups_merged;
  }

  // Physical execution. One Executor for the whole query when unified
  // (shared scan + nest caches); a fresh one per operation otherwise.
  Catalog catalog = MakeCatalog();
  cluster_->metrics().Reset();
  Executor shared_exec{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
  for (const auto& cp : cleaning_plans) {
    Executor standalone{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
    Executor& exec = options_.unify_operations ? shared_exec : standalone;
    CLEANM_ASSIGN_OR_RETURN(OpResult op, RunCleaningPlan(exec, cp));
    result.ops.push_back(std::move(op));
  }

  // Unified violation report: the outer join over all operations' entities.
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
  };
  std::unordered_map<Value, std::vector<std::string>, ValueHash, ValueEq> entities;
  for (size_t i = 0; i < cleaning_plans.size(); i++) {
    const auto& cp = cleaning_plans[i];
    for (const auto& violation : result.ops[i].violations) {
      for (const auto& var : cp.entity_vars) {
        auto field = violation.GetField(var);
        if (!field.ok()) continue;
        const Value& v = field.value();
        if (v.type() == ValueType::kList) {
          for (const auto& e : v.AsList()) {
            auto& ops = entities[e];
            if (ops.empty() || ops.back() != cp.op_name) ops.push_back(cp.op_name);
          }
        } else {
          auto& ops = entities[v];
          if (ops.empty() || ops.back() != cp.op_name) ops.push_back(cp.op_name);
        }
      }
    }
  }
  result.dirty_entities.assign(entities.begin(), entities.end());
  result.total_seconds = total.ElapsedSeconds();
  result.rows_shuffled = cluster_->metrics().rows_shuffled.load();
  result.bytes_shuffled = cluster_->metrics().bytes_shuffled.load();
  return result;
}

Result<OpResult> CleanDB::CheckFd(const std::string& table, const std::string& var,
                                  const FdClause& fd) {
  CLEANM_ASSIGN_OR_RETURN(CleaningPlan cp, BuildFdPlan(table, var, fd));
  Catalog catalog = MakeCatalog();
  cluster_->metrics().Reset();
  Executor exec{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
  return RunCleaningPlan(exec, cp);
}

Result<OpResult> CleanDB::CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                                ExprPtr prefilter) {
  AlgOpPtr left = Scan(table, "t1");
  if (prefilter) left = SelectOp(std::move(left), prefilter);
  AlgOpPtr join = JoinOp(std::move(left), Scan(table, "t2"), std::move(pred));
  CleaningPlan cp;
  cp.op_name = "DC";
  cp.plan = std::move(join);
  cp.entity_vars = {"t1", "t2"};
  Catalog catalog = MakeCatalog();
  cluster_->metrics().Reset();
  Executor exec{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
  return RunCleaningPlan(exec, cp);
}

Result<OpResult> CleanDB::Deduplicate(const std::string& table, const std::string& var,
                                      const DedupClause& dedup) {
  FilteringOptions fopts = options_.filtering;
  fopts.algo = dedup.op;
  std::vector<std::string> centers;
  if (dedup.op == FilteringAlgo::kKMeans && !dedup.attributes.empty() &&
      dedup.attributes[0]->kind == ExprKind::kField) {
    centers = SampleCenters(table, dedup.attributes[0]->name, fopts.k);
  }
  CLEANM_ASSIGN_OR_RETURN(
      CleaningPlan cp, BuildDedupPlan(table, var, dedup, fopts, std::move(centers)));
  Catalog catalog = MakeCatalog();
  cluster_->metrics().Reset();
  Executor exec{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
  return RunCleaningPlan(exec, cp);
}

Result<OpResult> CleanDB::ValidateTerms(const std::string& data_table,
                                        const std::string& data_var,
                                        const std::string& dict_table,
                                        const std::string& dict_attr,
                                        const ClusterByClause& cb) {
  if (!cb.term || cb.term->kind != ExprKind::kField) {
    return Status::InvalidArgument("term must be a column reference");
  }
  const std::string term_attr = cb.term->name;
  CLEANM_ASSIGN_OR_RETURN(const Dataset* data, GetTable(data_table));
  CLEANM_ASSIGN_OR_RETURN(const Dataset* dict, GetTable(dict_table));

  // Pre-filter: terms appearing verbatim in the dictionary are clean; only
  // unknown terms go through grouping + similarity (this is what makes the
  // precision of Table 3 ≈ 100%: exact matches are never "repaired").
  CLEANM_ASSIGN_OR_RETURN(const size_t dict_idx, dict->schema().IndexOf(dict_attr));
  std::unordered_set<std::string> dictionary;
  for (const auto& row : dict->rows()) {
    if (row[dict_idx].type() == ValueType::kString) {
      dictionary.insert(row[dict_idx].AsString());
    }
  }
  CLEANM_ASSIGN_OR_RETURN(const size_t term_idx, data->schema().IndexOf(term_attr));
  Dataset dirty(data->schema());
  for (const auto& row : data->rows()) {
    if (row[term_idx].type() == ValueType::kString &&
        !dictionary.count(row[term_idx].AsString())) {
      dirty.Append(row);
    }
  }
  const std::string tmp_name = "__dirty_" + data_table;
  RegisterTable(tmp_name, std::move(dirty));

  FilteringOptions fopts = options_.filtering;
  fopts.algo = cb.op;
  std::vector<std::string> centers;
  if (cb.op == FilteringAlgo::kKMeans) {
    centers = SampleCenters(dict_table, dict_attr, fopts.k);
  }
  CLEANM_ASSIGN_OR_RETURN(
      CleaningPlan cp,
      BuildTermValidationPlan(tmp_name, data_var, dict_table, "d", dict_attr, cb, fopts,
                              std::move(centers)));
  Catalog catalog = MakeCatalog();
  cluster_->metrics().Reset();
  Executor exec{cluster_.get(), &catalog, options_.physical, {}, {}, {}};
  auto result = RunCleaningPlan(exec, cp);
  tables_.erase(tmp_name);
  return result;
}

Result<Dataset> CleanDB::Transform(const std::string& table, const TransformSpec& spec,
                                   bool one_pass) {
  CLEANM_ASSIGN_OR_RETURN(const Dataset* input, GetTable(table));
  const Schema& schema = input->schema();

  auto split_idx = spec.split_date_column.empty()
                       ? Result<size_t>(Status::KeyError("unused"))
                       : schema.IndexOf(spec.split_date_column);
  auto fill_idx = spec.fill_missing_column.empty()
                      ? Result<size_t>(Status::KeyError("unused"))
                      : schema.IndexOf(spec.fill_missing_column);
  if (!spec.split_date_column.empty() && !split_idx.ok()) return split_idx.status();
  if (!spec.fill_missing_column.empty() && !fill_idx.ok()) return fill_idx.status();

  // The column average for fill-missing: one aggregation pass (shared by
  // both execution modes; the paper's plan computes it before repairing).
  double fill_avg = 0;
  if (fill_idx.ok()) {
    double sum = 0;
    size_t n = 0;
    for (const auto& row : input->rows()) {
      const Value& v = row[fill_idx.value()];
      if (!v.is_null() && v.is_numeric()) {
        sum += v.ToDouble();
        n++;
      }
    }
    fill_avg = n ? sum / static_cast<double>(n) : 0;
  }

  // Fast in-place "YYYY-MM-DD" split (the generated-code path; per-row
  // builtin dispatch would dominate this lightweight repair).
  auto split_parts = [](const Value& v, int64_t out3[3]) {
    out3[0] = out3[1] = out3[2] = -1;
    if (v.type() != ValueType::kString) return;
    const std::string& s = v.AsString();
    int part = 0;
    int64_t cur = 0;
    bool any = false;
    for (char c : s) {
      if (c == '-') {
        if (part < 3) out3[part++] = any ? cur : -1;
        cur = 0;
        any = false;
      } else if (c >= '0' && c <= '9') {
        cur = cur * 10 + (c - '0');
        any = true;
      }
    }
    if (part < 3) out3[part] = any ? cur : -1;
  };
  auto apply_split = [&](const Dataset& in) {
    Schema out_schema = in.schema();
    out_schema.AddField({spec.split_date_column + "_year", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_month", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_day", ValueType::kInt});
    const size_t idx = in.schema().IndexOf(spec.split_date_column).ValueOrDie();
    Dataset out(out_schema);
    for (const auto& row : in.rows()) {
      Row r = row;
      int64_t parts[3];
      split_parts(row[idx], parts);
      for (int p = 0; p < 3; p++) {
        r.push_back(parts[p] >= 0 ? Value(parts[p]) : Value::Null());
      }
      out.Append(std::move(r));
    }
    return out;
  };
  auto apply_fill = [&](const Dataset& in) {
    const size_t idx = in.schema().IndexOf(spec.fill_missing_column).ValueOrDie();
    Dataset out(in.schema());
    for (const auto& row : in.rows()) {
      Row r = row;
      if (r[idx].is_null()) r[idx] = Value(fill_avg);
      out.Append(std::move(r));
    }
    return out;
  };

  if (one_pass && split_idx.ok() && fill_idx.ok()) {
    // Single traversal applying both repairs (the CleanDB plan of Table 4).
    Schema out_schema = schema;
    out_schema.AddField({spec.split_date_column + "_year", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_month", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_day", ValueType::kInt});
    Dataset out(out_schema);
    for (const auto& row : input->rows()) {
      Row r = row;
      if (r[fill_idx.value()].is_null()) r[fill_idx.value()] = Value(fill_avg);
      int64_t parts[3];
      split_parts(row[split_idx.value()], parts);
      for (int p = 0; p < 3; p++) {
        r.push_back(parts[p] >= 0 ? Value(parts[p]) : Value::Null());
      }
      out.Append(std::move(r));
    }
    return out;
  }

  // Sequential repairs, one full traversal each.
  Dataset current = *input;
  if (fill_idx.ok()) current = apply_fill(current);
  if (split_idx.ok()) current = apply_split(current);
  return current;
}

}  // namespace cleanm
