#include "cleaning/cleandb.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <unordered_set>

#include "cleaning/prepared_query.h"
#include "cluster/filtering.h"
#include "monoid/eval.h"
#include "physical/tuple.h"

namespace cleanm {

namespace {

/// The partition cache's write-back pager: partitions serialize through
/// the session spill context (lazy temp store, remove-on-close) and revive
/// through the shared buffer pool. Called with the cache mutex held — it
/// never calls back into the cache (lock order: cache mutex → store/pool
/// mutexes).
class SpillPager : public PartitionPager {
 public:
  explicit SpillPager(SpillContext* spill) : spill_(spill) {}

  Result<std::vector<std::vector<PageSpan>>> Write(
      const engine::Partitioned& data) override {
    std::vector<std::vector<PageSpan>> spans(data.size());
    for (size_t n = 0; n < data.size(); n++) {
      if (data[n].empty()) continue;
      CLEANM_ASSIGN_OR_RETURN(spans[n], spill_->SpillRows(data[n]));
    }
    return spans;
  }

  Result<engine::Partitioned> Read(
      const std::vector<std::vector<PageSpan>>& spans) override {
    engine::Partitioned out(spans.size());
    for (size_t n = 0; n < spans.size(); n++) {
      CLEANM_RETURN_NOT_OK(spill_->ReadBack(spans[n], &out[n]));
    }
    return out;
  }

 private:
  SpillContext* const spill_;
};

}  // namespace

CleanDB::CleanDB(CleanDBOptions options)
    : options_(std::move(options)), cache_(options_.partition_cache_bytes) {
  engine::ClusterOptions copts;
  copts.num_nodes = options_.num_nodes;
  copts.shuffle_ns_per_byte = options_.shuffle_ns_per_byte;
  copts.shuffle_batch_rows = options_.shuffle_batch_rows;
  copts.shuffle_ns_per_batch = options_.shuffle_ns_per_batch;
  copts.use_worker_pool = options_.use_worker_pool;
  copts.fault = options_.fault;
  cluster_ = std::make_unique<engine::Cluster>(copts);
  if (options_.buffer_pool_bytes > 0) {
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_bytes);
    // The table page store is best-effort: if the temp file cannot be
    // created (e.g. unwritable spill_dir) the session stays resident-only.
    auto store = SingleFileStore::CreateTemp(options_.spill_dir, "tables",
                                             options_.page_bytes);
    if (store.ok()) page_store_ = std::move(store.MoveValue());
    session_spill_ = std::make_unique<SpillContext>(
        options_.spill_dir, options_.page_bytes, options_.buffer_pool_bytes,
        pool_.get());
    cache_.set_pager(std::make_shared<SpillPager>(session_spill_.get()));
  }
}

void CleanDB::RegisterTable(const std::string& name, Dataset dataset) {
  auto table = std::make_shared<const Dataset>(std::move(dataset));
  {
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    tables_[name] = table;
    generations_[name]++;
    // A registration opens a new major epoch: the registered dataset is the
    // base future incremental bootstraps fold from, the minor counter
    // restarts, and the previous epoch's delta log is dropped (snapshot
    // holders keep theirs alive through their leases).
    base_tables_[name] = table;
    majors_[name]++;
    minors_[name] = 0;
    delta_logs_.erase(name);
    // The old paged copy is stale the moment the new registration is
    // visible; drop it in the same critical section so no snapshot can
    // pair the new resident table with old pages. The fresh copy is
    // ingested (and published) below, outside the lock.
    paged_tables_.erase(name);
  }
  if (pool_ && page_store_) {
    PagedTableBuilder builder(page_store_);
    Status st = Status::OK();
    for (const auto& row : table->rows()) {
      st = builder.Append(row);
      if (!st.ok()) break;
    }
    if (st.ok()) {
      Result<PagedTable> finished = builder.Finish(table->schema());
      if (finished.ok()) {
        auto paged = std::make_shared<const PagedTable>(finished.MoveValue());
        std::unique_lock<std::shared_mutex> lock(table_mu_);
        // Publish only if this registration is still current (a concurrent
        // re-registration may have won the race and re-ingested).
        if (tables_[name] == table) paged_tables_[name] = std::move(paged);
      }
    }
    // Ingestion failure leaves the table resident-only — an optimization
    // lost, never a correctness problem.
  }
  // Invalidation happens after the lock drops (cache has its own mutex).
  // In the window between, the bumped generation is already visible and
  // cache keys embed generations, so a new snapshot can only miss on the
  // doomed entries — while an old snapshot may still legitimately hit
  // entries of the generation it bound.
  cache_.InvalidateTable(name);
}

void CleanDB::UnregisterTable(const std::string& name) {
  {
    // One exclusive critical section drops the table, its paged copy, its
    // base, its delta log, and its minor counter together (and closes the
    // major epoch), so a mutation racing the drop either completed before
    // it or observes the table as gone — never a log without its table.
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    if (tables_.erase(name) == 0) return;
    paged_tables_.erase(name);
    base_tables_.erase(name);
    delta_logs_.erase(name);
    minors_.erase(name);
    majors_[name]++;
    generations_[name]++;
  }
  cache_.InvalidateTable(name);
}

uint64_t CleanDB::TableGeneration(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = generations_.find(name);
  return it == generations_.end() ? 0 : it->second;
}

uint64_t CleanDB::TableMajor(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = majors_.find(name);
  return it == majors_.end() ? 0 : it->second;
}

uint64_t CleanDB::TableMinor(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = minors_.find(name);
  return it == minors_.end() ? 0 : it->second;
}

Result<CleanDB::MutationResult> CleanDB::MutateTable(const std::string& table,
                                                     const MutationFn& fn) {
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::KeyError("unknown table '" + table + "'");
  }
  const Dataset& current = *it->second;
  auto next = std::make_shared<Dataset>(current.schema());
  auto delta = std::make_shared<TableDelta>();
  CLEANM_RETURN_NOT_OK(fn(current, next.get(), delta.get()));

  MutationResult result;
  result.major = majors_[table];
  if (delta->added.empty() && delta->removed.empty()) {
    // No-op mutation: publish nothing, bump nothing — the cache stays
    // reachable and a repair fixpoint that converged does not spuriously
    // advance the version.
    result.generation = generations_[table];
    result.minor = minors_[table];
    return result;
  }
  result.rows_affected = std::max(delta->added.size(), delta->removed.size());
  result.generation = ++generations_[table];
  result.minor = ++minors_[table];
  delta->generation = result.generation;
  delta->minor = result.minor;
  // Copy-then-append keeps published logs immutable: snapshots taken before
  // this mutation keep reading the old log object.
  auto log = std::make_shared<DeltaLog>();
  if (auto lit = delta_logs_.find(table); lit != delta_logs_.end()) {
    *log = *lit->second;
  }
  log->Append(std::move(delta));
  delta_logs_[table] = std::move(log);
  tables_[table] = std::move(next);
  // The paged copy describes the pre-mutation rows; it is not rebuilt here
  // (mutations stay cheap), so the table reverts to resident scans until
  // the next registration re-ingests it.
  paged_tables_.erase(table);
  return result;
}

Result<CleanDB::MutationResult> CleanDB::AppendRows(const std::string& table,
                                                    std::vector<Row> rows) {
  return MutateTable(
      table, [&rows](const Dataset& cur, Dataset* next, TableDelta* delta) {
        const size_t width = cur.schema().fields().size();
        for (const auto& r : rows) {
          if (r.size() != width) {
            return Status::InvalidArgument(
                "appended row has " + std::to_string(r.size()) +
                " values; table schema has " + std::to_string(width));
          }
        }
        for (const auto& r : cur.rows()) next->Append(r);
        for (auto& r : rows) {
          delta->added.push_back(r);
          next->Append(std::move(r));
        }
        return Status::OK();
      });
}

Result<CleanDB::MutationResult> CleanDB::UpdateRows(const std::string& table,
                                                    const RowMatcher& matcher,
                                                    const ValueStruct& sets) {
  return MutateTable(
      table, [&](const Dataset& cur, Dataset* next, TableDelta* delta) {
        std::vector<std::pair<size_t, const Value*>> targets;
        targets.reserve(sets.size());
        for (const auto& [name, value] : sets) {
          CLEANM_ASSIGN_OR_RETURN(const size_t idx, cur.schema().IndexOf(name));
          targets.emplace_back(idx, &value);
        }
        for (const auto& row : cur.rows()) {
          if (matcher(cur.schema(), row)) {
            Row updated = row;
            bool changed = false;
            for (const auto& [idx, value] : targets) {
              if (!updated[idx].Equals(*value)) {
                updated[idx] = *value;
                changed = true;
              }
            }
            if (changed) {
              delta->removed.push_back(row);
              delta->added.push_back(updated);
              next->Append(std::move(updated));
              continue;
            }
          }
          next->Append(row);
        }
        return Status::OK();
      });
}

Result<CleanDB::MutationResult> CleanDB::UpdateRowsWith(const std::string& table,
                                                        const RowEditor& editor) {
  return MutateTable(
      table, [&editor](const Dataset& cur, Dataset* next, TableDelta* delta) {
        const size_t width = cur.schema().fields().size();
        for (const auto& row : cur.rows()) {
          Row edited = row;
          if (editor(cur.schema(), &edited)) {
            if (edited.size() != width) {
              return Status::InvalidArgument(
                  "row editor changed the row width");
            }
            bool changed = false;
            for (size_t i = 0; i < width && !changed; i++) {
              changed = !edited[i].Equals(row[i]);
            }
            if (changed) {
              delta->removed.push_back(row);
              delta->added.push_back(edited);
              next->Append(std::move(edited));
              continue;
            }
          }
          next->Append(row);
        }
        return Status::OK();
      });
}

Result<CleanDB::MutationResult> CleanDB::DeleteRows(const std::string& table,
                                                    const RowMatcher& matcher) {
  return MutateTable(
      table, [&matcher](const Dataset& cur, Dataset* next, TableDelta* delta) {
        for (const auto& row : cur.rows()) {
          if (matcher(cur.schema(), row)) {
            delta->removed.push_back(row);
          } else {
            next->Append(row);
          }
        }
        return Status::OK();
      });
}

Result<const Dataset*> CleanDB::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::KeyError("unknown table '" + name + "'");
  return it->second.get();
}

Result<std::shared_ptr<const Dataset>> CleanDB::GetTableShared(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::KeyError("unknown table '" + name + "'");
  return it->second;
}

CleanDB::TableSnapshot CleanDB::SnapshotTables() const {
  TableSnapshot snapshot;
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  snapshot.leases.reserve(tables_.size());
  for (const auto& [name, dataset] : tables_) {
    snapshot.catalog.tables[name] = dataset.get();
    snapshot.leases.push_back(dataset);
  }
  snapshot.paged_leases.reserve(paged_tables_.size());
  for (const auto& [name, paged] : paged_tables_) {
    snapshot.catalog.paged[name] = paged.get();
    snapshot.paged_leases.push_back(paged);
  }
  snapshot.base_leases.reserve(base_tables_.size());
  for (const auto& [name, base] : base_tables_) {
    snapshot.catalog.bases[name] = base.get();
    snapshot.base_leases.push_back(base);
  }
  snapshot.delta_leases.reserve(delta_logs_.size());
  for (const auto& [name, log] : delta_logs_) {
    snapshot.catalog.deltas[name] = log.get();
    snapshot.delta_leases.push_back(log);
  }
  snapshot.catalog.generations = generations_;
  snapshot.catalog.majors = majors_;
  snapshot.catalog.minors = minors_;
  snapshot.catalog.functions = &functions_;
  return snapshot;
}

uint64_t CleanDB::AdmitExecution(uint64_t estimated_bytes) {
  const uint64_t budget = options_.max_inflight_bytes;
  if (budget == 0) return 0;
  std::unique_lock<std::mutex> lock(admission_mu_);
  // FIFO fairness: tickets serve strictly in arrival order, so a stream of
  // small queries can never starve a large one already waiting.
  const uint64_t ticket = admission_next_ticket_++;
  admission_cv_.wait(lock, [&] {
    if (ticket != admission_serve_ticket_) return false;
    return admission_inflight_bytes_ + estimated_bytes <= budget ||
           admission_inflight_count_ == 0;  // oversized: admitted alone
  });
  admission_serve_ticket_++;
  admission_inflight_bytes_ += estimated_bytes;
  admission_inflight_count_++;
  lock.unlock();
  // Wake the next ticket: it may also fit within the remaining budget.
  admission_cv_.notify_all();
  return estimated_bytes;
}

void CleanDB::ReleaseExecution(uint64_t charged_bytes) {
  if (options_.max_inflight_bytes == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    admission_inflight_bytes_ -= charged_bytes;
    admission_inflight_count_--;
  }
  admission_cv_.notify_all();
}

std::vector<std::string> CleanDB::SampleCenters(const std::string& table,
                                                const std::string& attr,
                                                size_t k) const {
  auto t = GetTableShared(table);
  if (!t.ok()) return {};
  const Dataset& dataset = *t.value();  // lease: safe across re-registration
  auto idx = dataset.schema().IndexOf(attr);
  if (!idx.ok()) return {};
  std::vector<std::string> values;
  values.reserve(dataset.num_rows());
  for (const auto& row : dataset.rows()) {
    const Value& v = row[idx.value()];
    if (v.type() == ValueType::kString) values.push_back(v.AsString());
  }
  return ReservoirSample(values, k, options_.filtering.seed);
}

Result<OpResult> CleanDB::RunProgrammaticOp(CleaningPlan cp) {
  // A programmatic op is exactly a one-operation prepared query executed
  // once: wrap the plan in a transient PreparedQuery and run it through the
  // shared ExecutePrepared path (snapshot, admission, config lock, metrics
  // scope, out-of-core wiring, sink emission — one code path, not two).
  // Cache persistence is off because the plan's nodes are never seen again;
  // incremental_ stays null, so these one-shots never take the delta path.
  PreparedQuery pq;
  pq.db_ = this;
  pq.status_ = Status::OK();
  pq.unified_roots_ = {cp.plan};
  pq.plans_.push_back(std::move(cp));
  pq.persist_cache_ = false;
  QueryResultSink sink;
  CLEANM_RETURN_NOT_OK(ExecutePrepared(pq, ExecOptions{}, sink, &sink.result()));
  if (sink.result().ops.empty()) {
    return Status::Internal("programmatic op produced no operation result");
  }
  return std::move(sink.result().ops.front());
}

Result<QueryResult> CleanDB::Execute(const std::string& query_text) {
  CLEANM_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(query_text));
  pq.persist_cache_ = false;  // one-shot: the plans die with this call
  return pq.Execute();
}

Result<QueryResult> CleanDB::ExecuteQuery(const CleanMQuery& query) {
  CLEANM_ASSIGN_OR_RETURN(PreparedQuery pq, PrepareQuery(query));
  pq.persist_cache_ = false;  // one-shot: the plans die with this call
  return pq.Execute();
}

Result<OpResult> CleanDB::CheckFd(const std::string& table, const std::string& var,
                                  const FdClause& fd) {
  CLEANM_ASSIGN_OR_RETURN(CleaningPlan cp, BuildFdPlan(table, var, fd));
  return RunProgrammaticOp(std::move(cp));
}

Result<OpResult> CleanDB::CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                                ExprPtr prefilter) {
  // Thin wrapper over the prepared lifecycle: the DC plan is built by
  // PrepareDenialConstraint and executed once, with cache persistence off
  // like every other one-shot.
  CLEANM_ASSIGN_OR_RETURN(
      PreparedQuery pq,
      PrepareDenialConstraint(table, std::move(pred), std::move(prefilter)));
  pq.persist_cache_ = false;
  QueryResultSink sink;
  CLEANM_RETURN_NOT_OK(ExecutePrepared(pq, ExecOptions{}, sink, &sink.result()));
  if (sink.result().ops.empty()) {
    return Status::Internal("denial constraint produced no operation result");
  }
  return std::move(sink.result().ops.front());
}

Result<OpResult> CleanDB::Deduplicate(const std::string& table, const std::string& var,
                                      const DedupClause& dedup) {
  FilteringOptions fopts = options_.filtering;
  fopts.algo = dedup.op;
  std::vector<std::string> centers;
  if (dedup.op == FilteringAlgo::kKMeans && !dedup.attributes.empty() &&
      dedup.attributes[0]->kind == ExprKind::kField) {
    centers = SampleCenters(table, dedup.attributes[0]->name, fopts.k);
  }
  CLEANM_ASSIGN_OR_RETURN(
      CleaningPlan cp, BuildDedupPlan(table, var, dedup, fopts, std::move(centers)));
  return RunProgrammaticOp(std::move(cp));
}

Result<OpResult> CleanDB::ValidateTerms(const std::string& data_table,
                                        const std::string& data_var,
                                        const std::string& dict_table,
                                        const std::string& dict_attr,
                                        const ClusterByClause& cb) {
  if (!cb.term || cb.term->kind != ExprKind::kField) {
    return Status::InvalidArgument("term must be a column reference");
  }
  const std::string term_attr = cb.term->name;
  CLEANM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> data,
                          GetTableShared(data_table));
  CLEANM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> dict,
                          GetTableShared(dict_table));

  // Pre-filter: terms appearing verbatim in the dictionary are clean; only
  // unknown terms go through grouping + similarity (this is what makes the
  // precision of Table 3 ≈ 100%: exact matches are never "repaired").
  CLEANM_ASSIGN_OR_RETURN(const size_t dict_idx, dict->schema().IndexOf(dict_attr));
  std::unordered_set<std::string> dictionary;
  for (const auto& row : dict->rows()) {
    if (row[dict_idx].type() == ValueType::kString) {
      dictionary.insert(row[dict_idx].AsString());
    }
  }
  CLEANM_ASSIGN_OR_RETURN(const size_t term_idx, data->schema().IndexOf(term_attr));
  Dataset dirty(data->schema());
  for (const auto& row : data->rows()) {
    if (row[term_idx].type() == ValueType::kString &&
        !dictionary.count(row[term_idx].AsString())) {
      dirty.Append(row);
    }
  }
  // Unique per call: concurrent ValidateTerms over the same data table must
  // not clobber each other's (or shadow a user's) registration.
  const std::string tmp_name = "__dirty_" + data_table + "_" +
                               std::to_string(temp_table_seq_.fetch_add(1));
  RegisterTable(tmp_name, std::move(dirty));

  FilteringOptions fopts = options_.filtering;
  fopts.algo = cb.op;
  std::vector<std::string> centers;
  if (cb.op == FilteringAlgo::kKMeans) {
    centers = SampleCenters(dict_table, dict_attr, fopts.k);
  }
  auto build = BuildTermValidationPlan(tmp_name, data_var, dict_table, "d", dict_attr,
                                       cb, fopts, std::move(centers));
  if (!build.ok()) {
    UnregisterTable(tmp_name);
    return build.status();
  }
  auto result = RunProgrammaticOp(build.MoveValue());
  UnregisterTable(tmp_name);
  return result;
}

Result<Dataset> CleanDB::Transform(const std::string& table, const TransformSpec& spec,
                                   bool one_pass) {
  CLEANM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> input,
                          GetTableShared(table));
  const Schema& schema = input->schema();

  auto split_idx = spec.split_date_column.empty()
                       ? Result<size_t>(Status::KeyError("unused"))
                       : schema.IndexOf(spec.split_date_column);
  auto fill_idx = spec.fill_missing_column.empty()
                      ? Result<size_t>(Status::KeyError("unused"))
                      : schema.IndexOf(spec.fill_missing_column);
  if (!spec.split_date_column.empty() && !split_idx.ok()) return split_idx.status();
  if (!spec.fill_missing_column.empty() && !fill_idx.ok()) return fill_idx.status();

  // The column average for fill-missing: one aggregation pass (shared by
  // both execution modes; the paper's plan computes it before repairing).
  double fill_avg = 0;
  if (fill_idx.ok()) {
    double sum = 0;
    size_t n = 0;
    for (const auto& row : input->rows()) {
      const Value& v = row[fill_idx.value()];
      if (!v.is_null() && v.is_numeric()) {
        sum += v.ToDouble();
        n++;
      }
    }
    fill_avg = n ? sum / static_cast<double>(n) : 0;
  }

  // Fast in-place "YYYY-MM-DD" split (the generated-code path; per-row
  // builtin dispatch would dominate this lightweight repair).
  auto split_parts = [](const Value& v, int64_t out3[3]) {
    out3[0] = out3[1] = out3[2] = -1;
    if (v.type() != ValueType::kString) return;
    const std::string& s = v.AsString();
    int part = 0;
    int64_t cur = 0;
    bool any = false;
    for (char c : s) {
      if (c == '-') {
        if (part < 3) out3[part++] = any ? cur : -1;
        cur = 0;
        any = false;
      } else if (c >= '0' && c <= '9') {
        cur = cur * 10 + (c - '0');
        any = true;
      }
    }
    if (part < 3) out3[part] = any ? cur : -1;
  };
  auto apply_split = [&](const Dataset& in) {
    Schema out_schema = in.schema();
    out_schema.AddField({spec.split_date_column + "_year", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_month", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_day", ValueType::kInt});
    const size_t idx = in.schema().IndexOf(spec.split_date_column).ValueOrDie();
    Dataset out(out_schema);
    for (const auto& row : in.rows()) {
      Row r = row;
      int64_t parts[3];
      split_parts(row[idx], parts);
      for (int p = 0; p < 3; p++) {
        r.push_back(parts[p] >= 0 ? Value(parts[p]) : Value::Null());
      }
      out.Append(std::move(r));
    }
    return out;
  };
  auto apply_fill = [&](const Dataset& in) {
    const size_t idx = in.schema().IndexOf(spec.fill_missing_column).ValueOrDie();
    Dataset out(in.schema());
    for (const auto& row : in.rows()) {
      Row r = row;
      if (r[idx].is_null()) r[idx] = Value(fill_avg);
      out.Append(std::move(r));
    }
    return out;
  };

  if (one_pass && split_idx.ok() && fill_idx.ok()) {
    // Single traversal applying both repairs (the CleanDB plan of Table 4).
    Schema out_schema = schema;
    out_schema.AddField({spec.split_date_column + "_year", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_month", ValueType::kInt});
    out_schema.AddField({spec.split_date_column + "_day", ValueType::kInt});
    Dataset out(out_schema);
    for (const auto& row : input->rows()) {
      Row r = row;
      if (r[fill_idx.value()].is_null()) r[fill_idx.value()] = Value(fill_avg);
      int64_t parts[3];
      split_parts(row[split_idx.value()], parts);
      for (int p = 0; p < 3; p++) {
        r.push_back(parts[p] >= 0 ? Value(parts[p]) : Value::Null());
      }
      out.Append(std::move(r));
    }
    return out;
  }

  // Sequential repairs, one full traversal each.
  Dataset current = *input;
  if (fill_idx.ok()) current = apply_fill(current);
  if (split_idx.ok()) current = apply_split(current);
  return current;
}

std::string CleanDB::ExportMetricsText() const {
  // Prometheus text exposition format over the session-cumulative counters.
  // Generated from CLEANM_METRICS_FIELDS: Add-fold fields are counters
  // (suffix _total per convention), Max-fold fields are gauges.
  const MetricsCounters c = cluster_->session_metrics().Snapshot();
  std::string out;
  auto emit = [&out](const char* name, const char* fold, uint64_t value) {
    const bool is_counter = std::strcmp(fold, "Add") == 0;
    const std::string metric =
        std::string("cleandb_") + name + (is_counter ? "_total" : "");
    out += "# TYPE " + metric + (is_counter ? " counter\n" : " gauge\n");
    out += metric + ' ' + std::to_string(value) + '\n';
  };
#define CLEANM_X(name, fold) emit(#name, #fold, c.name);
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  emit("bytes_materialized_now", "Max",
       cluster_->session_metrics().bytes_materialized_now.load());
  return out;
}

}  // namespace cleanm
