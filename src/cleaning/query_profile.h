// QueryProfile: the EXPLAIN ANALYZE surface over one execution's trace.
//
// ExecutePrepared (with ExecOptions::profile on) installs a TraceRecorder,
// runs the plans, drains the spans, and builds one of these. The profile is
// the span tree restricted to category=="operator": one OperatorProfile per
// operator-span *instance*, carrying wall/self time, rows in/out, the
// per-node row and time distribution (with LoadReport::ImbalanceFactor skew
// flags), and the engine-counter movement attributed to the operator.
//
// Counter attribution is exact by construction: driver-side operator spans
// are sequential and properly nested, and each captured a MetricsCounters
// delta between open and close. self = inclusive − Σ direct operator
// children, so Σ self_counters over the whole tree equals the root
// ("execute") span's delta — the flat QueryResult::metrics the CI gate
// reconciles against.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"

namespace cleanm {

/// \brief One operator-span instance in the profile tree.
struct OperatorProfile {
  /// Span name: the algebra kind ("Nest", "Join", ...) or "execute" (root).
  std::string name;
  /// Cleaning-operation label ("FD", "DEDUP_2", ...) when the span's plan
  /// node is one of the prepared query's roots; empty otherwise.
  std::string label;
  uint64_t start_ns = 0;
  uint64_t wall_ns = 0;  ///< inclusive duration
  uint64_t self_ns = 0;  ///< wall minus direct operator children
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Per-node row distribution (Nest routing / partition sizes); empty when
  /// the operator recorded none.
  std::vector<uint64_t> node_rows;
  /// Per-node worker time directly under this operator (task / produce
  /// spans, nested operator work excluded). Indexed by node id; empty when
  /// no worker span ran under it.
  std::vector<uint64_t> node_time_ns;
  /// max/mean of node_rows (LoadReport::ImbalanceFactor); 1.0 when empty.
  double imbalance = 1.0;
  /// imbalance exceeded the session's skew_warn_factor.
  bool skew_warning = false;
  /// Engine-counter movement while the span was open (inclusive).
  MetricsCounters counters;
  /// counters minus the direct operator children's — this operator's own
  /// movement. Sums to totals() across the tree.
  MetricsCounters self_counters;
  /// Indices into QueryProfile::operators() of direct operator children.
  std::vector<size_t> children;
};

/// \brief Per-operator profile of one execution, plus the raw span tree.
/// Cheap to copy around via shared_ptr on QueryResult; Build() is called
/// once, after the execution has drained its recorder.
class QueryProfile {
 public:
  /// Builds the profile from a drained span list. `op_labels` maps plan-node
  /// identity (the AlgOp* recorded in TraceSpan::op) to the cleaning
  /// operation's display name. `skew_warn_factor` is the imbalance threshold
  /// above which a node-row distribution is flagged.
  static QueryProfile Build(std::vector<TraceSpan> spans,
                            const std::map<const void*, std::string>& op_labels,
                            double skew_warn_factor);

  const std::vector<OperatorProfile>& operators() const { return operators_; }
  /// Indices of operator-tree roots (normally one: the "execute" span).
  const std::vector<size_t>& roots() const { return roots_; }
  /// The full drained span list (all categories), start-ordered.
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Σ self_counters over all operators — reconciles exactly with the flat
  /// QueryResult::metrics movement of the run (see header comment).
  MetricsCounters totals() const;

  /// EXPLAIN ANALYZE rendering: the operator tree, indented, with wall/self
  /// time, row counts, per-node breakdown, and SKEW flags.
  std::string ToString() const;

  /// The operator tree as a JSON object (machine-readable ToString).
  std::string ToJson() const;

  /// All spans as a Chrome/Perfetto trace_event JSON array ("X" events; one
  /// track per (node, thread): pid = node + 1 with the driver at pid 0,
  /// tid = the recording thread's ordinal).
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path` (load via chrome://tracing or
  /// ui.perfetto.dev).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<OperatorProfile> operators_;
  std::vector<size_t> roots_;
  std::vector<TraceSpan> spans_;
};

}  // namespace cleanm
