// Per-execution overrides for PreparedQuery::Execute.
//
// A CleanDB session freezes its defaults at construction (CleanDBOptions);
// before this existed, changing any knob — the Figure-5 unification
// ablation, the simulated interconnect, the node count — meant building a
// whole new CleanDB and re-partitioning every table. ExecOptions carries
// the per-call deltas instead: every field defaults to "inherit the
// session value", and the cluster is restored to the session configuration
// when the execution returns.
//
// The fields shared with CleanDBOptions are generated from
// CLEANM_SESSION_KNOBS (cleaning/session_knobs.h) so the session default,
// the per-call optional, and the resolution below can never drift apart:
//
//   unify_operations — run the Nest-coalesced (unified) plan forms vs. the
//     standalone per-operation plans (the Figure-5 ablation, per call).
//   shuffle_ns_per_byte / shuffle_ns_per_batch / shuffle_batch_rows —
//     simulated interconnect model (see engine::ClusterOptions).
//   pipeline — operator-level pipelining below the sink (morsel-driven
//     chains with breakers at Nest/Reduce/shuffle boundaries); false = the
//     materialize-first A/B baseline. Violation sets are bit-identical
//     either way (CI-gated).
//   morsel_rows — rows per morsel on the pipelined path (clamped to ≥ 1).
//   incremental — serve a re-execution whose table snapshot differs from
//     the cached state only by *minor* generations (mutations via
//     AppendRows/UpdateRows/DeleteRows) from the incremental delta path:
//     only delta rows are processed and cached Nest group partials are
//     merged/re-folded per the monoid annotation, with retractions and
//     additions tagged through ViolationSink::OnViolationRetracted /
//     OnViolationNew. false forces a full (cold) execution and also
//     disables the planner's delta-extended scan rebuild. See DESIGN.md,
//     "Incremental validation & the delta log".
//   buffer_pool_bytes — buffer-pool byte budget for this execution.
//     Overriding away from the session value runs the call under an
//     execution-local pool; 0 disables spilling for this call even on an
//     out-of-core session (paged table scans also revert to the resident
//     datasets).
//   spill_dir — directory for this execution's spill file (empty = system
//     temp dir); created lazily on first spill, removed on close on every
//     exit path.
//   page_bytes — page granularity of this execution's spill file.
//   profile — record operator-level tracing spans and attach a
//     QueryProfile to the QueryResult (CI-gated ≤ 2% overhead when off).
//   trace_path — when profiling, additionally write the spans as
//     Chrome/Perfetto trace_event JSON to this path (empty = no file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "cleaning/session_knobs.h"

namespace cleanm {

struct ExecOptions {
  // Shared session knobs: empty optional = inherit the session default.
#define CLEANM_X(type, name, default_value) std::optional<type> name;
  CLEANM_SESSION_KNOBS(CLEANM_X)
#undef CLEANM_X

  /// Caps execution to the first N virtual nodes (clamped to the cluster
  /// width). Partitionings are cached per active width, so alternating caps
  /// never mixes layouts.
  std::optional<size_t> max_nodes;

  /// Admission-control charge for this execution, in logical bytes —
  /// overrides the default estimate (the summed ByteSize of every table the
  /// plans scan, the same RowByteSize accounting the
  /// peak_bytes_materialized gauge uses). Counted against
  /// CleanDBOptions::max_inflight_bytes; ignored when the session has no
  /// in-flight budget.
  std::optional<uint64_t> admission_bytes;

  /// Wall-clock budget for this execution. When it elapses the execution
  /// unwinds at the next epoch/morsel boundary (or mid network sleep) and
  /// returns kDeadlineExceeded with all workers joined.
  std::optional<uint64_t> deadline_ns;

  /// Poison rows tolerated: a row whose compiled expression or UDF throws
  /// is recorded in QueryResult::quarantined and skipped instead of
  /// aborting. Past the cap the execution fails. Unset/0 = quarantine off
  /// (a throwing row fails the execution with kInternal). Pipelined path
  /// only; the materialize-first baseline ignores it.
  std::optional<size_t> max_quarantined_rows;

  // Fault-injection / retry overrides (see engine::FaultOptions). Applied
  // to the shared cluster for this call and restored afterwards; per-node
  // blacklist state, once entered, persists for the session.
  std::optional<double> fault_probability;
  std::optional<uint64_t> fault_seed;
  std::optional<size_t> max_task_retries;
  std::optional<uint64_t> retry_backoff_ns;
};

/// The shared knobs of one execution after per-call overrides were applied
/// over the session defaults — the single place ExecutePrepared reads them
/// from (instead of a value_or chain at every use site).
struct ResolvedExecOptions {
#define CLEANM_X(type, name, default_value) type name = default_value;
  CLEANM_SESSION_KNOBS(CLEANM_X)
#undef CLEANM_X
};

/// Resolves the shared knobs: each ExecOptions field that is set overrides
/// the session default. Templated over the session-options type only to
/// avoid an include cycle with cleandb.h; the session type must carry one
/// plain field per CLEANM_SESSION_KNOBS entry (CleanDBOptions does, by
/// construction — its fields are generated from the same list).
template <typename SessionOptions>
ResolvedExecOptions ResolveExecOptions(const ExecOptions& opts,
                                       const SessionOptions& session) {
  ResolvedExecOptions out;
#define CLEANM_X(type, name, default_value) \
  out.name = opts.name.has_value() ? *opts.name : session.name;
  CLEANM_SESSION_KNOBS(CLEANM_X)
#undef CLEANM_X
  return out;
}

}  // namespace cleanm
