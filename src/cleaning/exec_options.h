// Per-execution overrides for PreparedQuery::Execute.
//
// A CleanDB session freezes its defaults at construction (CleanDBOptions);
// before this existed, changing any knob — the Figure-5 unification
// ablation, the simulated interconnect, the node count — meant building a
// whole new CleanDB and re-partitioning every table. ExecOptions carries
// the per-call deltas instead: every field defaults to "inherit the
// session value", and the cluster is restored to the session configuration
// when the execution returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cleanm {

struct ExecOptions {
  /// Run the Nest-coalesced (unified) plan forms vs. the standalone
  /// per-operation plans — the Figure-5 ablation, now per call.
  std::optional<bool> unify_operations;

  /// Caps execution to the first N virtual nodes (clamped to the cluster
  /// width). Partitionings are cached per active width, so alternating caps
  /// never mixes layouts.
  std::optional<size_t> max_nodes;

  // Simulated interconnect model (see engine::ClusterOptions).
  std::optional<double> shuffle_ns_per_byte;
  std::optional<double> shuffle_ns_per_batch;
  std::optional<size_t> shuffle_batch_rows;

  /// Operator-level pipelining below the sink: plans execute as
  /// MorselSource → Transform* → SinkDriver chains moving fixed-size row
  /// batches, with pipeline breakers only at Nest/Reduce/shuffle
  /// boundaries, and violations stream to the sink as each morsel
  /// completes. false = the materialize-first A/B baseline (every
  /// operator's whole output exists before its consumer runs). Violation
  /// sets are bit-identical either way (CI-gated).
  std::optional<bool> pipeline;

  /// Rows per morsel on the pipelined path (session default 4096; clamped
  /// to ≥ 1). Smaller morsels bound memory tighter at more per-batch
  /// overhead.
  std::optional<size_t> morsel_rows;

  /// Admission-control charge for this execution, in logical bytes —
  /// overrides the default estimate (the summed ByteSize of every table the
  /// plans scan, the same RowByteSize accounting the
  /// peak_bytes_materialized gauge uses). Counted against
  /// CleanDBOptions::max_inflight_bytes; ignored when the session has no
  /// in-flight budget.
  std::optional<uint64_t> admission_bytes;

  /// Wall-clock budget for this execution. When it elapses the execution
  /// unwinds at the next epoch/morsel boundary (or mid network sleep) and
  /// returns kDeadlineExceeded with all workers joined.
  std::optional<uint64_t> deadline_ns;

  /// Poison rows tolerated: a row whose compiled expression or UDF throws
  /// is recorded in QueryResult::quarantined and skipped instead of
  /// aborting. Past the cap the execution fails. Unset/0 = quarantine off
  /// (a throwing row fails the execution with kInternal). Pipelined path
  /// only; the materialize-first baseline ignores it.
  std::optional<size_t> max_quarantined_rows;

  // Fault-injection / retry overrides (see engine::FaultOptions). Applied
  // to the shared cluster for this call and restored afterwards; per-node
  // blacklist state, once entered, persists for the session.
  std::optional<double> fault_probability;
  std::optional<uint64_t> fault_seed;
  std::optional<size_t> max_task_retries;
  std::optional<uint64_t> retry_backoff_ns;

  // Out-of-core overrides (see CleanDBOptions::buffer_pool_bytes /
  // spill_dir / page_bytes and DESIGN.md, "Out-of-core storage & spill").

  /// Buffer-pool byte budget for this execution. Overriding away from the
  /// session value runs the call under an execution-local pool; 0 disables
  /// spilling for this call even on an out-of-core session (paged table
  /// scans also revert to the resident datasets).
  std::optional<uint64_t> buffer_pool_bytes;

  /// Directory for this execution's spill file (empty = system temp dir).
  /// The file is created lazily on first spill and removed on close on
  /// every exit path.
  std::optional<std::string> spill_dir;

  /// Page granularity of this execution's spill file.
  std::optional<size_t> page_bytes;

  // Observability (see DESIGN.md, "Tracing & profiling").

  /// Record operator-level tracing spans for this execution and attach a
  /// QueryProfile (per-operator wall/self time, rows, per-node skew, engine
  /// counters) to the QueryResult. Off by default: with profiling off the
  /// instrumentation costs one thread-local load per site and records zero
  /// spans (CI-gated ≤ 2% overhead).
  std::optional<bool> profile;

  /// When profiling is on, additionally write the execution's spans to this
  /// path as Chrome/Perfetto trace_event JSON (chrome://tracing,
  /// ui.perfetto.dev). Empty = no file.
  std::optional<std::string> trace_path;
};

}  // namespace cleanm
