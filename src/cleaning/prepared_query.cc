#include "cleaning/prepared_query.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "cleaning/incremental.h"
#include "cleaning/query_profile.h"
#include "cleaning/select_builder.h"
#include "common/trace.h"
#include "physical/tuple.h"

namespace cleanm {

namespace {

/// True when `opts` overrides any fault-injection / retry knob.
bool HasFaultOverrides(const ExecOptions& opts) {
  return opts.fault_probability.has_value() || opts.fault_seed.has_value() ||
         opts.max_task_retries.has_value() || opts.retry_backoff_ns.has_value();
}

/// Applies ExecOptions' cluster overrides on construction and restores the
/// session configuration on destruction, so per-call knobs can never leak
/// into later executions (or into another PreparedQuery on the same
/// session).
class ScopedClusterConfig {
 public:
  ScopedClusterConfig(engine::Cluster* cluster, const ExecOptions& opts)
      : cluster_(cluster),
        saved_(cluster->options()),
        saved_active_(cluster->num_nodes()) {
    if (opts.max_nodes) cluster_->SetActiveNodes(*opts.max_nodes);
    if (opts.shuffle_ns_per_byte || opts.shuffle_ns_per_batch) {
      cluster_->SetShuffleCost(
          opts.shuffle_ns_per_byte.value_or(saved_.shuffle_ns_per_byte),
          opts.shuffle_ns_per_batch.value_or(saved_.shuffle_ns_per_batch));
    }
    if (opts.shuffle_batch_rows) cluster_->SetShuffleBatchRows(*opts.shuffle_batch_rows);
    if (HasFaultOverrides(opts)) {
      engine::FaultOptions fo = saved_.fault;
      if (opts.fault_probability) fo.failure_probability = *opts.fault_probability;
      if (opts.fault_seed) fo.seed = *opts.fault_seed;
      if (opts.max_task_retries) fo.max_task_retries = *opts.max_task_retries;
      if (opts.retry_backoff_ns) fo.retry_backoff_ns = *opts.retry_backoff_ns;
      cluster_->SetFaultOptions(fo);
    }
  }

  ~ScopedClusterConfig() {
    cluster_->SetActiveNodes(saved_active_);
    cluster_->SetShuffleCost(saved_.shuffle_ns_per_byte, saved_.shuffle_ns_per_batch);
    cluster_->SetShuffleBatchRows(saved_.shuffle_batch_rows);
    cluster_->SetFaultOptions(saved_.fault);
  }

 private:
  engine::Cluster* cluster_;
  engine::ClusterOptions saved_;
  size_t saved_active_;
};

/// True when `opts` carries any override that mutates the shared cluster —
/// exactly the fields ScopedClusterConfig applies. Such an execution must
/// run alone (it takes the session config lock exclusively).
bool ReconfiguresCluster(const ExecOptions& opts) {
  return opts.max_nodes.has_value() || opts.shuffle_ns_per_byte.has_value() ||
         opts.shuffle_ns_per_batch.has_value() ||
         opts.shuffle_batch_rows.has_value() || HasFaultOverrides(opts);
}

/// Default admission charge of an execution: the summed logical ByteSize of
/// every distinct table the plans scan — the same RowByteSize accounting
/// that backs the peak_bytes_materialized gauge, so the in-flight budget
/// and the materialization meter speak one unit.
uint64_t EstimateAdmissionBytes(const std::vector<CleaningPlan>& plans,
                                const Catalog& catalog) {
  std::vector<std::pair<std::string, uint64_t>> deps;
  for (const auto& cp : plans) CollectScanDeps(cp.plan, catalog, &deps);
  std::set<std::string> seen;
  uint64_t bytes = 0;
  for (const auto& [table, generation] : deps) {
    (void)generation;
    if (!seen.insert(table).second) continue;
    auto it = catalog.tables.find(table);
    if (it != catalog.tables.end()) bytes += it->second->ByteSize();
  }
  return bytes;
}

/// True for a plain `alias.column` reference bound to `alias`; sets *column.
bool IsColumnOf(const ExprPtr& e, const std::string& alias, std::string* column) {
  if (!e || e->kind != ExprKind::kField) return false;
  if (!e->child || e->child->kind != ExprKind::kVar || e->child->name != alias) {
    return false;
  }
  *column = e->name;
  return true;
}

/// Prepare-time validation of cleaning-clause column references against the
/// schemas registered *right now*. Unregistered tables are skipped — binding
/// is lazy, and executing then yields kKeyError from the catalog — but when
/// a schema is visible, an unknown column is kKeyError and a
/// similarity-grouped term of non-string type is kTypeError at Prepare
/// time, not a silent empty result at Execute time.
Status ValidateClauses(const CleanDB& db, const CleanMQuery& query) {
  if (query.from.empty()) return Status::InvalidArgument("query has no FROM table");
  const TableRef& base = query.from[0];
  // Leases, not borrowed pointers: Prepare may race a RegisterTable on
  // another driver thread.
  auto base_table = db.GetTableShared(base.table);

  auto check_column = [](const Dataset* table, const std::string& table_name,
                         const std::string& column, bool needs_string) -> Status {
    auto idx = table->schema().IndexOf(column);
    if (!idx.ok()) {
      return Status::KeyError("unknown column '" + column + "' in table '" +
                              table_name + "'");
    }
    if (needs_string &&
        table->schema().fields()[idx.value()].type != ValueType::kString) {
      return Status::TypeError("grouping monoids (token filtering / k-means) "
                               "require a string term, but column '" +
                               column + "' of table '" + table_name + "' is not");
    }
    return Status::OK();
  };

  std::string column;
  if (base_table.ok()) {
    for (const auto& fd : query.fds) {
      for (const auto& side : {&fd.lhs, &fd.rhs}) {
        for (const auto& e : *side) {
          if (IsColumnOf(e, base.alias, &column)) {
            CLEANM_RETURN_NOT_OK(
                check_column(base_table.value().get(), base.table, column, false));
          }
        }
      }
    }
    for (const auto& dedup : query.dedups) {
      const bool grouping_monoid = dedup.op != FilteringAlgo::kExactKey;
      for (size_t i = 0; i < dedup.attributes.size(); i++) {
        if (IsColumnOf(dedup.attributes[i], base.alias, &column)) {
          // Only the combined grouping term must be a string under a
          // grouping monoid; with several attributes the term is a concat
          // (already a string), so the type requirement applies to the
          // single-attribute form.
          const bool needs_string = grouping_monoid && dedup.attributes.size() == 1;
          CLEANM_RETURN_NOT_OK(
              check_column(base_table.value().get(), base.table, column, needs_string));
        }
      }
    }
    for (const auto& cb : query.cluster_bys) {
      if (IsColumnOf(cb.term, base.alias, &column)) {
        CLEANM_RETURN_NOT_OK(check_column(base_table.value().get(), base.table, column,
                                          /*needs_string=*/true));
      }
    }
  }
  if (!query.cluster_bys.empty() && query.from.size() >= 2) {
    const TableRef& dict = query.from[1];
    auto dict_table = db.GetTableShared(dict.table);
    if (dict_table.ok()) {
      for (const auto& cb : query.cluster_bys) {
        if (cb.term && cb.term->kind == ExprKind::kField) {
          CLEANM_RETURN_NOT_OK(check_column(dict_table.value().get(), dict.table,
                                            cb.term->name, /*needs_string=*/true));
        }
      }
    }
  }
  return Status::OK();
}

/// Walks one expression and checks every function-call site against the
/// registry + builtin tables (Prepare-time signature checking). When the
/// original query text is available and the parser recorded the call's
/// offset, the kKeyError is positioned at the offending function name.
Status ValidateCallsIn(const ExprPtr& e, const FunctionRegistry& functions,
                       const std::string* query_text) {
  if (!e) return Status::OK();
  if (e->kind == ExprKind::kCall) {
    Status st = functions.ValidateCall(e->name, e->args.size());
    if (!st.ok()) {
      if (query_text != nullptr && e->src_pos != kNoSourcePos) {
        size_t line = 1, column = 1;
        LineColumnAt(*query_text, e->src_pos, &line, &column);
        return Status(st.code(), st.message() + " at line " + std::to_string(line) +
                                     ", column " + std::to_string(column) +
                                     " (offset " + std::to_string(e->src_pos) + ")");
      }
      return st;
    }
  }
  for (const ExprPtr& child :
       {e->child, e->lhs, e->rhs, e->cond, e->then_e, e->else_e}) {
    CLEANM_RETURN_NOT_OK(ValidateCallsIn(child, functions, query_text));
  }
  for (const auto& a : e->args) {
    CLEANM_RETURN_NOT_OK(ValidateCallsIn(a, functions, query_text));
  }
  for (const auto& v : e->field_values) {
    CLEANM_RETURN_NOT_OK(ValidateCallsIn(v, functions, query_text));
  }
  if (e->kind == ExprKind::kComprehension) {
    CLEANM_RETURN_NOT_OK(ValidateCallsIn(e->comp.head, functions, query_text));
    for (const auto& q : e->comp.qualifiers) {
      CLEANM_RETURN_NOT_OK(ValidateCallsIn(q.expr, functions, query_text));
    }
  }
  return Status::OK();
}

Status ValidateFunctionCalls(const CleanMQuery& query,
                             const FunctionRegistry& functions,
                             const std::string* query_text) {
  auto check = [&](const ExprPtr& e) {
    return ValidateCallsIn(e, functions, query_text);
  };
  for (const auto& item : query.select_list) CLEANM_RETURN_NOT_OK(check(item.expr));
  CLEANM_RETURN_NOT_OK(check(query.where));
  for (const auto& g : query.group_by) CLEANM_RETURN_NOT_OK(check(g));
  CLEANM_RETURN_NOT_OK(check(query.having));
  for (const auto& fd : query.fds) {
    for (const auto& side : {&fd.lhs, &fd.rhs}) {
      for (const auto& e : *side) CLEANM_RETURN_NOT_OK(check(e));
    }
  }
  for (const auto& dedup : query.dedups) {
    for (const auto& e : dedup.attributes) CLEANM_RETURN_NOT_OK(check(e));
  }
  for (const auto& cb : query.cluster_bys) CLEANM_RETURN_NOT_OK(check(cb.term));
  return Status::OK();
}

}  // namespace

// ---- Preparation ----

Result<PreparedQuery> CleanDB::Prepare(const std::string& query_text) {
  CLEANM_ASSIGN_OR_RETURN(CleanMQuery query, ParseCleanM(query_text));
  return PrepareQueryImpl(query, &query_text);
}

Result<PreparedQuery> CleanDB::PrepareQuery(const CleanMQuery& query) {
  return PrepareQueryImpl(query, nullptr);
}

Result<PreparedQuery> CleanDB::PrepareQueryImpl(const CleanMQuery& query,
                                                const std::string* query_text) {
  CLEANM_RETURN_NOT_OK(ValidateClauses(*this, query));
  CLEANM_RETURN_NOT_OK(ValidateFunctionCalls(query, functions_, query_text));
  const TableRef& base = query.from[0];

  // Desugar every cleaning clause to its algebra plan.
  std::vector<CleaningPlan> cleaning_plans;
  for (const auto& fd : query.fds) {
    CLEANM_ASSIGN_OR_RETURN(CleaningPlan cp, BuildFdPlan(base.table, base.alias, fd));
    cleaning_plans.push_back(std::move(cp));
  }
  for (const auto& dedup : query.dedups) {
    FilteringOptions fopts = options_.filtering;
    fopts.algo = dedup.op;
    std::vector<std::string> centers;
    if (dedup.op == FilteringAlgo::kKMeans && !dedup.attributes.empty() &&
        dedup.attributes[0]->kind == ExprKind::kField) {
      centers = SampleCenters(base.table, dedup.attributes[0]->name, fopts.k);
    }
    CLEANM_ASSIGN_OR_RETURN(
        CleaningPlan cp,
        BuildDedupPlan(base.table, base.alias, dedup, fopts, std::move(centers)));
    cleaning_plans.push_back(std::move(cp));
  }
  for (const auto& cb : query.cluster_bys) {
    if (query.from.size() < 2) {
      return Status::InvalidArgument(
          "CLUSTER BY requires a dictionary table as the second FROM entry");
    }
    const TableRef& dict = query.from[1];
    if (!cb.term || cb.term->kind != ExprKind::kField) {
      return Status::InvalidArgument("CLUSTER BY term must be a column reference");
    }
    const std::string attr = cb.term->name;
    FilteringOptions fopts = options_.filtering;
    fopts.algo = cb.op;
    std::vector<std::string> centers;
    if (cb.op == FilteringAlgo::kKMeans) {
      centers = SampleCenters(dict.table, attr, fopts.k);
    }
    CLEANM_ASSIGN_OR_RETURN(
        CleaningPlan cp,
        BuildTermValidationPlan(base.table, base.alias, dict.table, dict.alias, attr,
                                cb, fopts, std::move(centers)));
    cleaning_plans.push_back(std::move(cp));
  }
  // User SELECT / GROUP BY / HAVING plan — the open language surface. Its
  // Nest stage is shaped like the built-in builders', so the Nest
  // coalescing below can merge it with FD/DEDUP groupings over the same
  // term, and a registered repair call in SELECT position marks its output
  // field for the repair loop (see repair/repair_sink.h).
  std::vector<std::string> repair_fields;
  std::string repair_table;
  if (QueryWantsSelectPlan(query)) {
    CLEANM_ASSIGN_OR_RETURN(SelectPlan sp, BuildSelectPlan(query, &functions_));
    if (!sp.repair_fields.empty()) {
      repair_fields = std::move(sp.repair_fields);
      repair_table = std::move(sp.source_table);
    }
    cleaning_plans.push_back(std::move(sp.plan));
  }
  // Disambiguate repeated operator names (FD, FD_2, ...).
  {
    std::map<std::string, int> seen;
    for (auto& cp : cleaning_plans) {
      const int n = ++seen[cp.op_name];
      if (n > 1) cp.op_name += "_" + std::to_string(n);
    }
  }

  PreparedQuery pq;
  pq.db_ = this;
  pq.status_ = Status::OK();
  pq.query_ = query;
  pq.plans_ = std::move(cleaning_plans);
  pq.repair_fields_ = std::move(repair_fields);
  pq.repair_table_ = std::move(repair_table);

  // Algebra-level optimization, done once: coalesce shared Nest stages
  // (Figure 1) into the unified plan forms. Both forms are kept so the
  // unify knob stays a per-execution choice.
  std::vector<AlgOpPtr> roots;
  roots.reserve(pq.plans_.size());
  for (const auto& cp : pq.plans_) roots.push_back(cp.plan);
  RewriteStats stats;
  CoalescedPlans coalesced = CoalesceNests(roots, &stats);
  pq.unified_roots_ = std::move(coalesced.roots);
  pq.nests_coalesced_ = coalesced.groups_merged;
  pq.incremental_ = std::make_shared<IncrementalState>();
  return pq;
}

Result<PreparedQuery> CleanDB::PrepareDenialConstraint(const std::string& table,
                                                       ExprPtr pred,
                                                       ExprPtr prefilter) {
  if (!pred) return Status::InvalidArgument("denial constraint has no predicate");
  AlgOpPtr left = Scan(table, "t1");
  if (prefilter) left = SelectOp(std::move(left), prefilter);
  AlgOpPtr join = JoinOp(std::move(left), Scan(table, "t2"), std::move(pred));
  CleaningPlan cp;
  cp.op_name = "DC";
  cp.plan = std::move(join);
  cp.entity_vars = {"t1", "t2"};

  PreparedQuery pq;
  pq.db_ = this;
  pq.status_ = Status::OK();
  pq.unified_roots_ = {cp.plan};
  pq.plans_.push_back(std::move(cp));
  // Join-rooted, so always incrementally ineligible — but allocating keeps
  // the eligibility decision in one place (the validator).
  pq.incremental_ = std::make_shared<IncrementalState>();
  return pq;
}

// ---- EXPLAIN ----

namespace {

const char* ExplainAlgoName(FilteringAlgo algo) {
  switch (algo) {
    case FilteringAlgo::kTokenFiltering: return "tf";
    case FilteringAlgo::kKMeans: return "kmeans";
    case FilteringAlgo::kExactKey: return "exact";
  }
  return "?";
}

/// One-line operator headline, same notation as AlgOp::ToString().
std::string ExplainHeadline(const AlgOp& op) {
  std::string out = AlgKindName(op.kind);
  switch (op.kind) {
    case AlgKind::kScan:
      out += '(' + op.table + " as " + op.var + ')';
      break;
    case AlgKind::kSelect:
      out += '[' + op.pred->ToString() + ']';
      break;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      out += '[';
      if (op.left_key) {
        out += op.left_key->ToString() + " = " + op.right_key->ToString();
        if (op.pred) out += " && " + op.pred->ToString();
      } else if (op.pred) {
        out += op.pred->ToString();
      } else {
        out += "true";
      }
      out += ']';
      break;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      out += '[' + op.path_var + " <- " + op.path->ToString() + ']';
      break;
    case AlgKind::kReduce:
      out += '[' + op.monoid + " / " + op.head->ToString() + ']';
      break;
    case AlgKind::kNest: {
      out += std::string("[by ") + ExplainAlgoName(op.group.algo) + '(' +
             op.group.term->ToString() + ')';
      for (const auto& agg : op.aggs) {
        out += ", " + agg.name + "=" + agg.monoid + '(' + agg.expr->ToString() + ')';
      }
      if (op.having) out += ", having " + op.having->ToString();
      out += ']';
      break;
    }
  }
  return out;
}

}  // namespace

std::string PreparedQuery::Explain(const ExecOptions& opts) const {
  if (!status_.ok()) return "<unprepared query: " + status_.message() + ">";
  const bool unify =
      opts.unify_operations.value_or(db_ != nullptr ? db_->options().unify_operations
                                                    : true);
  std::string out = "PreparedQuery: " + std::to_string(plans_.size()) +
                    " operation(s), unify=";
  out += unify ? "on" : "off";
  if (unify && nests_coalesced_ > 0) {
    out += " (" + std::to_string(nests_coalesced_) + " Nest stage(s) coalesced)";
  }
  out += '\n';

  auto root_of = [&](size_t i) -> const AlgOpPtr& {
    return unify && i < unified_roots_.size() ? unified_roots_[i] : plans_[i].plan;
  };

  // Pointer-identity sharing across the chosen roots: a subtree reached more
  // than once is a coalesced stage — executed once, its output served from
  // the partition cache to every other consumer.
  std::map<const AlgOp*, int> uses;
  std::function<void(const AlgOpPtr&)> count = [&](const AlgOpPtr& op) {
    if (!op) return;
    uses[op.get()]++;
    count(op->input);
    count(op->right);
  };
  for (size_t i = 0; i < plans_.size(); i++) count(root_of(i));

  std::map<const AlgOp*, int> shared_id;
  int next_shared = 1;
  std::function<void(const AlgOpPtr&, int)> render = [&](const AlgOpPtr& op,
                                                         int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    if (!op) {
      out += "<null>\n";
      return;
    }
    out += ExplainHeadline(*op);
    bool first_visit = true;
    if (uses[op.get()] > 1) {
      auto [it, inserted] = shared_id.emplace(op.get(), next_shared);
      if (inserted) next_shared++;
      first_visit = inserted;
      out += "  [shared S" + std::to_string(it->second);
      if (inserted) {
        out += ": executed once; output cache-resident for the other plans";
        if (persist_cache_) out += " and for re-executions";
      } else {
        out += ": see above";
      }
      out += ']';
    }
    if (op->kind == AlgKind::kScan && db_ != nullptr) {
      const uint64_t gen = db_->TableGeneration(op->table);
      if (gen == 0) {
        out += "  [not registered yet; binds at execute]";
      } else {
        out += "  [generation " + std::to_string(gen) +
               "; partitioned scan cached per node width]";
      }
    }
    out += '\n';
    if (!first_visit) return;
    if (op->input) render(op->input, depth + 1);
    if (op->right) render(op->right, depth + 1);
  };

  for (size_t i = 0; i < plans_.size(); i++) {
    out += "== " + plans_[i].op_name + " ==\n";
    render(root_of(i), 0);
  }
  return out;
}

// ---- Execution ----

std::vector<std::string> PreparedQuery::operation_names() const {
  std::vector<std::string> names;
  names.reserve(plans_.size());
  for (const auto& cp : plans_) names.push_back(cp.op_name);
  return names;
}

Result<QueryResult> PreparedQuery::Execute(const ExecOptions& opts) {
  QueryResultSink sink;
  CLEANM_RETURN_NOT_OK(db_->ExecutePrepared(*this, opts, sink, &sink.result()));
  return std::move(sink.result());
}

Status PreparedQuery::ExecuteInto(ViolationSink& sink, const ExecOptions& opts) {
  return db_->ExecutePrepared(*this, opts, sink, nullptr);
}

Status CleanDB::ExecutePrepared(const PreparedQuery& pq, const ExecOptions& opts,
                                ViolationSink& sink, QueryResult* summary) {
  CLEANM_RETURN_NOT_OK(pq.status_);
  if (!pq.db_) return Status::Internal("PreparedQuery is not bound to a CleanDB");
  // All CLEANM_SESSION_KNOBS shared between the session and the per-call
  // overrides resolve once, here. (The cluster-reconfiguration knobs —
  // shuffle model, fault injection — are applied from the raw optionals by
  // ScopedClusterConfig below because "unset" means "leave the cluster
  // alone", not "re-apply the session value".)
  const ResolvedExecOptions knobs = ResolveExecOptions(opts, options_);
  const bool unify = knobs.unify_operations;

  // Registration snapshot: the catalog binds the tables and generations
  // visible right now, and the snapshot's leases keep those datasets alive
  // even if a concurrent RegisterTable / repair Commit replaces them
  // mid-execution (the re-registration is visible only to executions that
  // snapshot after it).
  TableSnapshot snapshot = SnapshotTables();

  // FIFO admission against the session's in-flight byte budget (no-op when
  // unlimited). Charged before any engine work starts; released on every
  // exit path.
  const uint64_t admitted = AdmitExecution(opts.admission_bytes.value_or(
      EstimateAdmissionBytes(pq.plans_, snapshot.catalog)));
  struct AdmissionRelease {
    CleanDB* db;
    uint64_t bytes;
    ~AdmissionRelease() { db->ReleaseExecution(bytes); }
  } release{this, admitted};

  Timer total;
  // Plain executions run under the session cluster configuration and share
  // the config lock; an execution carrying cluster overrides mutates the
  // shared cluster, so it takes the lock exclusively and runs alone (the
  // override is applied after the lock and restored before it drops).
  std::shared_lock<std::shared_mutex> shared_config(config_mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive_config(config_mu_, std::defer_lock);
  std::optional<ScopedClusterConfig> config;
  if (ReconfiguresCluster(opts)) {
    exclusive_config.lock();
    config.emplace(cluster_.get(), opts);
  } else {
    shared_config.lock();
  }

  // Per-execution metrics: the scope travels with this execution's engine
  // calls (workers re-install it), so concurrent executions never mix
  // counters; the session totals accumulate on completion below.
  QueryMetrics exec_metrics;
  engine::MetricsScope metrics_scope(&exec_metrics);

  // Observability (DESIGN.md, "Tracing & profiling"): with profiling on, a
  // per-execution recorder collects spans from every instrumented engine
  // site — fan-out points re-install it on workers exactly like the metrics
  // scope — and is drained into a QueryProfile after the run. Off (the
  // default), no recorder is installed and every TraceScope in the engine
  // is a thread-local load + null check.
  const bool profile_on = knobs.profile;
  std::optional<TraceRecorder> trace_recorder;
  std::optional<TraceRecorderScope> trace_install;
  if (profile_on) {
    trace_recorder.emplace();
    trace_install.emplace(&*trace_recorder);
  }

  // Cancellation sources for this execution: the query's CancelToken plus
  // the per-call deadline. The scope travels with the engine calls the same
  // way the metrics scope does; checks fire at every task attempt, every
  // PumpToDriver morsel, and inside simulated network sleeps.
  engine::ExecControl control;
  control.token = pq.cancel_token_.get();
  if (opts.deadline_ns) {
    control.has_deadline = true;
    control.deadline = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(static_cast<int64_t>(*opts.deadline_ns));
  }
  engine::ExecControlScope control_scope(&control);

  // Poison-row quarantine (opt-in): rows whose compiled expressions throw
  // are recorded here and skipped on the pipelined path.
  const size_t max_quarantined = opts.max_quarantined_rows.value_or(0);
  engine::QuarantineSink quarantine(max_quarantined);

  // Out-of-core wiring: resolve the effective pool budget (per-call
  // override, else session default). The session pool serves unless the
  // budget is overridden, in which case an execution-local pool applies it;
  // budget 0 disables paged scans and breaker spilling for this call. The
  // spill context is stack-owned, so its lazily-created temp file is
  // unlinked on every exit path — success, sink abort, cancellation or
  // deadline unwind, retry exhaustion — purely by scope exit.
  const uint64_t pool_bytes = knobs.buffer_pool_bytes;
  const size_t page_bytes = knobs.page_bytes;
  const std::string spill_dir = knobs.spill_dir;
  std::unique_ptr<BufferPool> local_pool;
  BufferPool* pool = nullptr;
  if (pool_bytes > 0) {
    if (pool_ && !opts.buffer_pool_bytes.has_value()) {
      pool = pool_.get();
    } else {
      local_pool = std::make_unique<BufferPool>(pool_bytes);
      pool = local_pool.get();
    }
  }
  std::optional<SpillContext> spill;
  if (pool != nullptr) spill.emplace(spill_dir, page_bytes, pool_bytes, pool);
  const BufferPool::Stats pool_before = pool ? pool->stats() : BufferPool::Stats{};
  const uint64_t session_spilled_before =
      session_spill_ ? session_spill_->bytes_spilled() : 0;

  const PartitionCache::Stats cache_before = cache_.stats();
  Executor exec{cluster_.get(), &snapshot.catalog, options_.physical, &cache_,
                pq.persist_cache_};
  exec.quarantine = max_quarantined > 0 ? &quarantine : nullptr;
  exec.pool = pool;
  exec.spill = spill ? &*spill : nullptr;
  exec.delta_scan = knobs.incremental;

  // The unified violation report: entity → operations it violates (the
  // Section-4.4 outer join), built incrementally as violations stream.
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
  };
  std::unordered_map<Value, std::vector<std::string>, ValueHash, ValueEq> entities;

  const bool pipeline = knobs.pipeline;
  const size_t morsel_rows = std::max<size_t>(1, knobs.morsel_rows);

  // The engine propagates worker failures as exceptions (see
  // engine/fault.h): retries exhausted (kUnavailable), cancellation and
  // deadlines (StatusException), and — with the quarantine off — poison
  // rows. Catch them at this session boundary so every failure mode
  // surfaces as an ordinary Status with all workers joined.
  auto run_plans = [&]() -> Status {
  // Incremental delta path (cleaning/incremental.h): when the snapshot has
  // only advanced by mutation (minor) generations since the cached state,
  // an eligible query is served entirely from the delta log — no engine
  // work, no scan/Nest cache traffic. Ineligible or cold states fall
  // through to the ordinary loop below (which still benefits from the
  // planner's delta-extended scan rebuild).
  if (knobs.incremental && pq.incremental_) {
    std::vector<AlgOpPtr> inc_roots;
    inc_roots.reserve(pq.plans_.size());
    for (size_t i = 0; i < pq.plans_.size(); i++) {
      inc_roots.push_back(unify && i < pq.unified_roots_.size()
                              ? pq.unified_roots_[i]
                              : pq.plans_[i].plan);
    }
    Result<IncrementalRun> inc =
        RunIncrementalValidation(*pq.incremental_, pq.plans_, inc_roots, exec, sink);
    CLEANM_RETURN_NOT_OK(inc.status());
    if (inc.value() == IncrementalRun::kRan) return Status::OK();
  }
  for (size_t i = 0; i < pq.plans_.size(); i++) {
    const CleaningPlan& cp = pq.plans_[i];
    Timer op_timer;
    const AlgOpPtr& root = unify ? pq.unified_roots_[i] : cp.plan;

    CLEANM_RETURN_NOT_OK(sink.OnOpBegin(cp.op_name));
    size_t emitted = 0;
    ViolationDeduper dedup(cp);
    auto emit_violation = [&](const Value& v) -> Status {
      if (!dedup.ShouldEmit(v)) return Status::OK();
      CLEANM_RETURN_NOT_OK(sink.OnViolation(cp.op_name, v));
      emitted++;
      for (const auto& var : cp.entity_vars) {
        auto field = v.GetField(var);
        if (!field.ok()) continue;
        const Value& entity = field.value();
        auto add = [&](const Value& e) {
          auto& ops = entities[e];
          if (ops.empty() || ops.back() != cp.op_name) ops.push_back(cp.op_name);
        };
        if (entity.type() == ValueType::kList) {
          for (const auto& e : entity.AsList()) add(e);
        } else {
          add(entity);
        }
      }
      return Status::OK();
    };

    if (pipeline && root->kind != AlgKind::kReduce) {
      // Operator-level pipelining below the sink: violations reach the
      // sink as each morsel completes, so a sink error (early abort) stops
      // the plan mid-morsel and no whole operator output is ever
      // materialized driver-side.
      CLEANM_RETURN_NOT_OK(exec.RunPipelined(
          root, morsel_rows, [&](size_t, engine::Partition&& morsel) -> Status {
            for (const auto& row : morsel) {
              CLEANM_RETURN_NOT_OK(emit_violation(PhysicalTupleOf(row)));
            }
            return Status::OK();
          }));
    } else {
      // Reduce roots fold to one value (the query's actual result — e.g. a
      // user GROUP BY projection), so the pipelined gain is on the input
      // side only; the materialize-first baseline takes this branch for
      // every root kind.
      Value out;
      if (pipeline) {
        CLEANM_ASSIGN_OR_RETURN(out, exec.RunToValuePipelined(root, morsel_rows));
      } else {
        CLEANM_ASSIGN_OR_RETURN(out, exec.RunToValue(root));
      }
      for (const auto& v : out.AsList()) {
        CLEANM_RETURN_NOT_OK(emit_violation(v));
      }
    }

    OpSummary op_summary;
    op_summary.op_name = cp.op_name;
    op_summary.violations = emitted;
    op_summary.seconds = op_timer.ElapsedSeconds();
    CLEANM_RETURN_NOT_OK(sink.OnOpEnd(op_summary));
  }

  for (const auto& [entity, ops] : entities) {
    CLEANM_RETURN_NOT_OK(sink.OnDirtyEntity(entity, ops));
  }
  return Status::OK();
  };

  Status status;
  {
    // Root span of the profile tree: every operator span nests under it, so
    // its counter delta is the whole run's movement and the profile's
    // Σ self_counters reconciles against it exactly. (The out-of-core /
    // cancellation folds below happen after it closes and are deliberately
    // outside the attribution.)
    std::optional<TraceScope> exec_span;
    if (profile_on) {
      exec_span.emplace("operator", "execute", nullptr, -1, &exec_metrics);
    }
    try {
      status = run_plans();
    } catch (const engine::StatusException& e) {
      status = e.status();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("execution failed: ") + e.what());
    }
  }
  if (status.code() == StatusCode::kCancelled ||
      status.code() == StatusCode::kDeadlineExceeded) {
    exec_metrics.executions_cancelled += 1;
  }

  // Out-of-core counters: breaker spills from this execution's context,
  // cache write-backs from the session context (delta over this window),
  // and the pool's hit/miss/eviction deltas.
  if (spill) exec_metrics.bytes_spilled += spill->bytes_spilled();
  if (session_spill_) {
    exec_metrics.bytes_spilled +=
        session_spill_->bytes_spilled() - session_spilled_before;
  }
  if (pool != nullptr) {
    const BufferPool::Stats pool_after = pool->stats();
    exec_metrics.buffer_pool_hits += pool_after.hits - pool_before.hits;
    exec_metrics.buffer_pool_misses += pool_after.misses - pool_before.misses;
    exec_metrics.pages_evicted += pool_after.evictions - pool_before.evictions;
  }

  // Drain the recorder (all workers have joined by now) and build the
  // profile; the trace file is written regardless of the run's status so a
  // failed execution can still be inspected.
  std::shared_ptr<const QueryProfile> profile_out;
  if (profile_on) {
    std::map<const void*, std::string> op_labels;
    for (size_t i = 0; i < pq.plans_.size(); i++) {
      op_labels[pq.plans_[i].plan.get()] = pq.plans_[i].op_name;
      if (i < pq.unified_roots_.size()) {
        op_labels[pq.unified_roots_[i].get()] = pq.plans_[i].op_name;
      }
    }
    auto qp = std::make_shared<QueryProfile>(QueryProfile::Build(
        trace_recorder->Drain(), op_labels, options_.skew_warn_factor));
    const std::string trace_path = knobs.trace_path;
    if (!trace_path.empty()) {
      const Status trace_status = qp->WriteChromeTrace(trace_path);
      if (status.ok() && !trace_status.ok()) status = trace_status;
    }
    profile_out = std::move(qp);
  }

  if (summary) {
    summary->profile = profile_out;
    summary->nests_coalesced = unify ? pq.nests_coalesced_ : 0;
    summary->total_seconds = total.ElapsedSeconds();
    summary->quarantined = quarantine.TakeRows();
    summary->metrics = exec_metrics.Snapshot();
    // The cache is shared, so under concurrent executions this delta also
    // counts their hits/misses — it is a session-activity window, not a
    // per-execution attribution (the engine counters above are).
    summary->cache = cache_.stats().Since(cache_before);
  }
  // Fold this execution's counters into the session-cumulative totals
  // (counts add; the materialization peak folds as a running max) — also on
  // failure, so cancelled/unavailable executions stay metrics-visible.
  cluster_->session_metrics().Accumulate(exec_metrics.Snapshot());
  return status;
}

}  // namespace cleanm
