// Desugaring of user SELECT / GROUP BY / HAVING queries into algebra plans.
//
// The built-in cleaning clauses (plan_builder.h) lower fixed Section-4.4
// templates; this module lowers the *open* part of the language surface —
// user-written grouping and aggregation, including registered (UDF)
// aggregates and repair functions in SELECT position:
//
//   SELECT <items> FROM T t [WHERE p]
//   [GROUP BY g1, ... [HAVING h]]
//
//   ungrouped →  Reduce[list / record-head](σp(Scan T))
//   grouped   →  Reduce[list / record-head](
//                  Nest[exact g; one aggregation per distinct aggregate
//                       call in <items>/h; having = h'](σp(Scan T)))
//
// Aggregate calls (count(t), sum(t.x), set(prefix(t.y)), any registered
// aggregate) are detected by name *and* by what they consume: a call whose
// single argument ranges over the FROM row becomes a Nest aggregation;
// calls over aggregation outputs stay scalar (so `length(set(t.x))` means
// "distinct count"). `avg(e)` desugars to the builtin avg over a collected
// bag. Everything else in a grouped item must derive from the GROUP BY
// terms — a bare row column is the classic kTypeError.
//
// The Nest stage is shaped exactly like the built-in builders' (exact
// GroupSpec, having inside the Nest), so CoalesceNests merges it with FD /
// DEDUP groupings over the same term — a user query shares the grouping
// pass of Figure 1 with the built-in operators.
#pragma once

#include <string>
#include <vector>

#include "cleaning/plan_builder.h"
#include "functions/function_registry.h"
#include "language/ast.h"

namespace cleanm {

/// A lowered SELECT query plus the bookkeeping the repair loop needs.
struct SelectPlan {
  /// op_name "SELECT"; entity_vars empty (every output tuple reports).
  CleaningPlan plan;
  /// Projection field names, in SELECT-list order.
  std::vector<std::string> output_fields;
  /// The output fields whose expressions invoke a registered *repair*
  /// function — their values follow the repair-action contract
  /// (functions/function_registry.h) and are consumed by RepairSink.
  std::vector<std::string> repair_fields;
  /// The FROM table — the table repair actions apply to.
  std::string source_table;
};

/// True when `query` needs a SELECT plan in addition to (or instead of) its
/// cleaning-clause plans: any GROUP BY / HAVING, or a pure query with no
/// cleaning clauses at all. A `SELECT * ... FD(...)` keeps the historical
/// meaning ("report the violations"), with no separate projection plan.
bool QueryWantsSelectPlan(const CleanMQuery& query);

/// Lowers the SELECT / GROUP BY / HAVING part of `query`. `functions` (may
/// be null) resolves registered aggregates and marks repair calls. Errors:
/// kTypeError for HAVING without GROUP BY, SELECT * under GROUP BY, row
/// columns outside aggregates, or nested aggregates; kNotImplemented for
/// multi-table projections.
Result<SelectPlan> BuildSelectPlan(const CleanMQuery& query,
                                   const FunctionRegistry* functions);

}  // namespace cleanm
