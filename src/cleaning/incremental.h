// Driver-side incremental validator: serves re-executions whose table
// snapshot differs from the cached state only by *minor* (mutation)
// generations without re-running the engine.
//
// Eligibility is structural and all-or-nothing per prepared query: every
// active plan root must peel — through Select / Unnest / OuterUnnest
// transforms only — down to an exact-key Nest whose input is directly a
// Scan (the FD / DEDUP / user-GROUP-BY shapes, standalone or coalesced).
// Join-rooted plans (denial constraints, CLUSTER BY), Reduce roots, and
// grouping-monoid Nests (token filtering / k-means redistribute rows across
// groups non-locally) fall back to the full engine path — which still
// benefits from the planner's delta-extended scan rebuild.
//
// The state caches, per Nest node, every group's member bag and merged
// monoid accumulator list, and per operation the post-chain outputs per
// group. An execution advances the state by the delta-log window between
// the state's version and the snapshot's generation: removed rows erase one
// Equals-matching member and force a re-fold of the group's accumulators
// from the member bag (sidestepping monoid invertibility — subtractive
// re-grouping of exactly the affected keys); added rows merge fresh units
// into a DeepCopy of the cached accumulator. Touched groups are
// re-finalized and re-chained; the per-operation diff is emitted through
// ViolationSink::OnViolationRetracted / OnViolationNew so
// (previous − retracted + new) equals a cold full re-execution. Any
// inconsistency (non-contiguous delta coverage, a removed row the state
// never saw, a closed major epoch) resets the affected state and reports
// kIneligible, and the caller runs the ordinary engine path.
//
// See DESIGN.md, "Incremental validation & the delta log".
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "cleaning/plan_builder.h"
#include "cleaning/violation_sink.h"
#include "physical/planner.h"

namespace cleanm {

struct IncrementalValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};
struct IncrementalValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

/// One cached group of an exact-key Nest: the member bag (wrapped
/// {var: record} tuples in insertion order) and the merged accumulator
/// list (AggregateSpec layout: one accumulator Value per aggregation).
struct IncrementalGroup {
  std::vector<Value> members;
  /// Never merged into in place once operation outputs were derived from
  /// it: finalized tuples share nested storage with the accumulators, so
  /// updates go through a DeepCopy-merge or a fresh re-fold.
  Value accs;
};

/// Cached state of one Nest node (shared by every operation the optimizer
/// coalesced onto it).
struct IncrementalNestState {
  std::string table;
  /// Major epoch the state belongs to; a re-registration closes it.
  uint64_t major = 0;
  /// Table generation the groups reflect.
  uint64_t version = 0;
  /// First-occurrence key order — the engine's group-order determinism
  /// contract, preserved so emission order is reproducible.
  std::vector<Value> key_order;
  std::unordered_map<Value, IncrementalGroup, IncrementalValueHash,
                     IncrementalValueEq>
      groups;
};

/// Cached per-operation outputs (post-finalize, post-transform-chain,
/// pre-dedup) per group key — the baseline the retraction diff runs
/// against.
struct IncrementalOpState {
  const AlgOp* nest = nullptr;
  uint64_t version = 0;
  std::unordered_map<Value, std::vector<Value>, IncrementalValueHash,
                     IncrementalValueEq>
      outputs;
};

/// \brief Mutable incremental cache of one PreparedQuery, shared across its
/// executions (and across moves of the PreparedQuery). The mutex serializes
/// concurrent incremental executions of the same query; the engine path
/// never touches it.
struct IncrementalState {
  std::mutex mu;
  std::map<const AlgOp*, IncrementalNestState> nests;
  std::map<const AlgOp*, IncrementalOpState> ops;
};

enum class IncrementalRun {
  kRan,        ///< the execution was fully served; the sink has everything
  kIneligible  ///< run the ordinary engine path (state left consistent)
};

/// Attempts to serve one execution of `plans` (with active roots `roots`,
/// same order) from `state`. On kRan the whole sink protocol — OnOpBegin,
/// retractions, the deduplicated current violation set with OnViolationNew
/// tags, OnOpEnd, OnDirtyEntity — has been delivered and the
/// delta_rows_processed / groups_remerged / incremental_executions counters
/// charged. `exec` supplies the catalog snapshot, compile environment, and
/// metrics; no engine (cluster) work is issued.
Result<IncrementalRun> RunIncrementalValidation(IncrementalState& state,
                                                const std::vector<CleaningPlan>& plans,
                                                const std::vector<AlgOpPtr>& roots,
                                                Executor& exec, ViolationSink& sink);

}  // namespace cleanm
