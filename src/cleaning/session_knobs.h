// Single source of truth for the session knobs that exist at both scopes:
// a session default in CleanDBOptions and a per-call override in
// ExecOptions (the metrics X-macro pattern — see common/metrics.h).
//
// Before this list, adding such a knob meant hand-mirroring it in three
// places (the CleanDBOptions field, the ExecOptions optional, and the
// value_or resolution at every use site), and a knob could silently miss
// one of them. Now CLEANM_SESSION_KNOBS generates the CleanDBOptions
// fields (plain, with defaults), the ExecOptions fields
// (std::optional<T>, empty = inherit the session value), and
// ResolvedExecOptions/ResolveExecOptions (the per-execution resolution) —
// a knob added here exists everywhere or nowhere.
//
// Only knobs with identical meaning at both scopes belong here. Knobs that
// exist at a single scope (CleanDBOptions::num_nodes vs
// ExecOptions::max_nodes, the admission/deadline/quarantine/fault
// overrides) stay hand-written in their respective structs.
//
// X(type, name, default_value) — see exec_options.h / cleandb.h for the
// per-knob documentation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/pagestore/page.h"

#define CLEANM_SESSION_KNOBS(X)                          \
  X(bool, unify_operations, true)                        \
  X(double, shuffle_ns_per_byte, 1.0)                    \
  X(double, shuffle_ns_per_batch, 0.0)                   \
  X(size_t, shuffle_batch_rows, 1024)                    \
  X(bool, pipeline, true)                                \
  X(size_t, morsel_rows, 4096)                           \
  X(bool, incremental, true)                             \
  X(uint64_t, buffer_pool_bytes, 0)                      \
  X(std::string, spill_dir, std::string())               \
  X(size_t, page_bytes, ::cleanm::kDefaultPageBytes)     \
  X(bool, profile, false)                                \
  X(std::string, trace_path, std::string())
