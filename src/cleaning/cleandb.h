// CleanDB: the unified querying + cleaning engine (paper Section 7,
// Figure 2).
//
// Pipeline per query: Parser → (Monoid Rewriter) cleaning clauses desugar to
// canonical plans → Monoid/algebra optimizer (normalization + CoalesceNests
// + RewritePlan) → physical executor on the virtual cluster → unified
// violation report (the top-level outer join of Section 4.4).
//
// Query lifecycle: Prepare(text) performs the parse/normalize/rewrite work
// once and returns a PreparedQuery whose Execute(ExecOptions) runs the
// optimized plans against the current table registrations, reusing the
// session-owned PartitionCache (scans, wrapped scans, coalesced Nest
// outputs, keyed by table generation). Execute(text) remains as the
// one-shot convenience — it is exactly Prepare + a single Execute.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "algebra/rewriter.h"
#include "cleaning/plan_builder.h"
#include "common/timer.h"
#include "functions/function_registry.h"
#include "language/parser.h"
#include "physical/partition_cache.h"
#include "physical/planner.h"
#include "storage/pagestore/buffer_pool.h"
#include "storage/pagestore/paged_table.h"
#include "storage/pagestore/spill.h"

namespace cleanm {

class PreparedQuery;
class QueryProfile;
class ViolationSink;
struct ExecOptions;

struct CleanDBOptions {
  size_t num_nodes = 4;
  /// Simulated interconnect cost (see engine::ClusterOptions).
  double shuffle_ns_per_byte = 1.0;
  /// Shuffle batching + thread-model knobs (see engine::ClusterOptions).
  size_t shuffle_batch_rows = 1024;
  double shuffle_ns_per_batch = 0.0;
  bool use_worker_pool = true;
  PhysicalOptions physical;
  /// Defaults for token filtering / k-means parameters (q, k, delta, seed).
  FilteringOptions filtering;
  /// When false, cleaning clauses run as standalone plans with no Nest
  /// coalescing — the ablation knob for Figure 5. Overridable per
  /// execution via ExecOptions::unify_operations.
  bool unify_operations = true;
  /// Byte budget of the session partition cache (cached scans / wrapped
  /// scans / Nest outputs, LRU-evicted). 0 = unbounded.
  size_t partition_cache_bytes = size_t{256} << 20;
  /// Out-of-core storage (DESIGN.md, "Out-of-core storage & spill"): byte
  /// budget of the session buffer pool. When > 0, registered tables are
  /// additionally ingested into a paged single-file store and scanned
  /// through the pool, pipeline breakers (Nest partials, hash-join build
  /// sides) spill over-budget state to a per-execution temp file, and
  /// partition-cache eviction pages cold entries out instead of discarding
  /// them. 0 = fully in-memory (the default). Overridable per call via
  /// ExecOptions::buffer_pool_bytes.
  uint64_t buffer_pool_bytes = 0;
  /// Directory for page-store / spill temp files; empty = the system temp
  /// directory. Every file is unlinked on close, on all exit paths.
  std::string spill_dir;
  /// Page granularity of the single-file stores.
  size_t page_bytes = kDefaultPageBytes;
  /// Operator-level pipelining (morsel-driven execution below the sink).
  /// When true (default), plans stream fixed-size morsels from resident
  /// sources through Select/Unnest chains to the violation sink, breaking
  /// the pipeline only at Nest/Reduce/shuffle boundaries; peak transient
  /// memory scales with morsel_rows instead of the largest intermediate.
  /// false restores the materialize-first execution. Overridable per call
  /// via ExecOptions::pipeline.
  bool pipeline = true;
  /// Rows per morsel on the pipelined path (ExecOptions::morsel_rows
  /// overrides per call).
  size_t morsel_rows = 4096;
  /// Admission control for concurrent executions: bound on the summed
  /// admission charges (logical input bytes, or the per-call
  /// ExecOptions::admission_bytes override) of in-flight
  /// PreparedQuery executions. Executions over the bound queue FIFO; an
  /// oversized execution is admitted once it is alone. 0 = unlimited (no
  /// queueing, the default).
  uint64_t max_inflight_bytes = 0;
  /// Session defaults for fault injection, task retry/backoff, and node
  /// blacklisting (see engine::FaultOptions; off by default). Probability /
  /// seed / retry knobs are overridable per call via ExecOptions.
  engine::FaultOptions fault;
  /// Record operator-level tracing spans on every execution and attach a
  /// QueryProfile to each QueryResult (see DESIGN.md, "Tracing &
  /// profiling"). Off by default; overridable per call via
  /// ExecOptions::profile.
  bool profile = false;
  /// Skew threshold for profile warnings: an operator whose per-node row
  /// distribution has ImbalanceFactor (max/mean) above this is flagged.
  double skew_warn_factor = 2.0;
  /// When profiling, write each execution's Chrome-trace JSON here (empty =
  /// none; overridable per call via ExecOptions::trace_path). Successive
  /// executions overwrite the file.
  std::string trace_path;
};

/// Output of one cleaning operation.
struct OpResult {
  std::string op_name;
  /// Violation tuples (struct Values; fields depend on the operation).
  ValueList violations;
  double seconds = 0;
};

/// Output of a whole query: per-operation results plus the entities that
/// violate at least one rule (paper: the outer join of all violations).
struct QueryResult {
  std::vector<OpResult> ops;
  /// entity → names of the operations it violates.
  std::vector<std::pair<Value, std::vector<std::string>>> dirty_entities;
  double total_seconds = 0;
  int nests_coalesced = 0;
  /// Engine counters for this execution — the full QueryMetrics snapshot
  /// (rows/bytes/batches shuffled, comparisons, ...), replacing the old
  /// hand-copied rows_shuffled/bytes_shuffled pair.
  MetricsCounters metrics;
  /// Partition-cache activity during this execution: hit/miss/eviction
  /// counters are per-execution deltas; resident_* are end-of-execution
  /// gauges.
  PartitionCache::Stats cache;
  /// Poison rows recorded and skipped by the quarantine (empty unless
  /// ExecOptions::max_quarantined_rows enabled it).
  std::vector<engine::QuarantinedRow> quarantined;
  /// The execution's trace-derived profile (EXPLAIN ANALYZE: per-operator
  /// timings, rows, per-node skew, counter attribution). Null unless
  /// profiling was on (ExecOptions::profile / CleanDBOptions::profile).
  std::shared_ptr<const QueryProfile> profile;
};

/// \brief The CleanDB engine. Register tables, then Prepare/Execute CleanM
/// queries or call the programmatic cleaning APIs (used by the benchmarks).
///
/// Thread model (DESIGN.md, "Threading & session concurrency"): one CleanDB
/// may serve N driver threads concurrently executing PreparedQuerys and
/// programmatic ops over the shared worker pool. Registrations are guarded
/// by a reader/writer lock and every execution binds a *snapshot* of the
/// tables visible when it starts: re-registering a table (RegisterTable,
/// repair Commit) bumps the generation for executions that start later,
/// while in-flight executions keep reading the datasets they snapshotted
/// (shared-ownership leases keep them alive). Cluster-reconfiguring
/// ExecOptions (max_nodes, shuffle_*) take the session's config lock
/// exclusively and so run alone; plain executions share it.
class CleanDB {
 public:
  explicit CleanDB(CleanDBOptions options = {});

  /// Registers (or replaces) a named table. Replacing bumps the table's
  /// generation and invalidates every cached partitioning derived from it,
  /// so no execution that starts afterwards can be served stale data.
  /// Thread-safe; executions already in flight keep their snapshot.
  void RegisterTable(const std::string& name, Dataset dataset);
  /// Drops a table (and its cached partitionings). No-op when absent.
  void UnregisterTable(const std::string& name);
  /// Borrowed pointer into the current registration. Stable only until the
  /// next RegisterTable/UnregisterTable of `name` — callers that may race a
  /// re-registration use GetTableShared.
  Result<const Dataset*> GetTable(const std::string& name) const;
  /// Shared-ownership lease on the current registration: the dataset stays
  /// alive for the lease's lifetime even if the name is re-registered.
  Result<std::shared_ptr<const Dataset>> GetTableShared(
      const std::string& name) const;
  /// Current generation of `name` (bumped by every RegisterTable /
  /// UnregisterTable); 0 = never registered.
  uint64_t TableGeneration(const std::string& name) const;

  /// Serializes table read-modify-write commits (repair Commit): holding
  /// the returned lock guarantees no other committer replaces the table
  /// between reading it and re-registering the modified copy. Plain
  /// RegisterTable calls are atomic on their own and need not take it.
  std::unique_lock<std::mutex> LockCommits() const {
    return std::unique_lock<std::mutex>(commit_mu_);
  }

  // ---- Query lifecycle ----

  /// Parses, normalizes, and optimizes a CleanM query once. The error case
  /// carries the specific StatusCode: kParseError (with line/column) for
  /// malformed CleanM, kKeyError for a clause referencing an unknown
  /// column, kTypeError for a grouping-monoid term of the wrong type.
  /// Tables bind lazily at Execute time.
  Result<PreparedQuery> Prepare(const std::string& query_text);

  /// Prepares an already-parsed query.
  Result<PreparedQuery> PrepareQuery(const CleanMQuery& query);

  /// Prepares a denial constraint (a theta self-join over t1/t2 with
  /// `pred`; `prefilter` over one side is pushed below the join) as a
  /// single-operation PreparedQuery, so DC checks participate in the same
  /// prepare-once / execute-many lifecycle as CleanM text.
  Result<PreparedQuery> PrepareDenialConstraint(const std::string& table, ExprPtr pred,
                                                ExprPtr prefilter = nullptr);

  /// One-shot convenience: Prepare + a single Execute.
  Result<QueryResult> Execute(const std::string& query_text);

  /// One-shot convenience for an already-parsed query.
  Result<QueryResult> ExecuteQuery(const CleanMQuery& query);

  // ---- Programmatic cleaning operations ----

  /// FD check: lhs → rhs over `table` (alias `var` inside the exprs).
  Result<OpResult> CheckFd(const std::string& table, const std::string& var,
                           const FdClause& fd);

  /// General denial constraint with inequalities: a theta self-join with
  /// predicate over variables t1/t2; `prefilter` (over t1 or t2 alone) is
  /// pushed below the join. Violations are the matching pairs.
  Result<OpResult> CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                         ExprPtr prefilter = nullptr);

  /// Duplicate elimination per the DEDUP clause semantics.
  Result<OpResult> Deduplicate(const std::string& table, const std::string& var,
                               const DedupClause& dedup);

  /// Term validation: values of `term` (an expression over `data_var`) are
  /// validated against `dict_table`.`dict_attr`; violations couple each
  /// dirty term with its suggested repairs. Terms that appear verbatim in
  /// the dictionary are clean and skipped before grouping.
  Result<OpResult> ValidateTerms(const std::string& data_table,
                                 const std::string& data_var,
                                 const std::string& dict_table,
                                 const std::string& dict_attr,
                                 const ClusterByClause& cb);

  /// Syntactic transformations (Table 4): split a date column into
  /// year/month/day and/or fill missing numeric values with the column
  /// average. `one_pass` applies all requested repairs in a single dataset
  /// traversal; otherwise each repair re-traverses (the baseline).
  struct TransformSpec {
    std::string split_date_column;    ///< empty = skip
    std::string fill_missing_column;  ///< empty = skip
  };
  Result<Dataset> Transform(const std::string& table, const TransformSpec& spec,
                            bool one_pass);

  engine::Cluster& cluster() { return *cluster_; }
  const CleanDBOptions& options() const { return options_; }
  /// The session function registry: register scalar / aggregate / repair
  /// functions here to make them callable from CleanM query text (see
  /// functions/function_registry.h and README, "Extending CleanM").
  /// Register before Prepare — prepared plans resolve calls at Prepare
  /// time and validate names/arities against the registry's state then.
  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }
  /// The session partition cache (stats for tests/monitoring; Clear() to
  /// drop all cached partitionings).
  PartitionCache& partition_cache() { return cache_; }
  /// The session buffer pool, or null on a fully in-memory session
  /// (options().buffer_pool_bytes == 0). Stats expose resident/peak bytes
  /// for the out-of-core CI gate.
  const BufferPool* buffer_pool() const { return pool_.get(); }

  /// The session-cumulative engine counters rendered in Prometheus text
  /// exposition format (one `cleandb_<counter>_total` counter per
  /// QueryMetrics field, plus the materialization peak/now gauges) — ready
  /// to serve from a /metrics endpoint or diff across executions.
  std::string ExportMetricsText() const;

  /// Samples k-means centers for a grouping clause: from the dictionary
  /// when given, else from the data column.
  std::vector<std::string> SampleCenters(const std::string& table,
                                         const std::string& attr, size_t k) const;

 private:
  friend class PreparedQuery;

  /// A point-in-time view of the table registrations. `catalog` holds raw
  /// Dataset pointers (the form the executor binds); `leases` co-own those
  /// datasets so a concurrent re-registration can never free data an
  /// in-flight execution still reads — the snapshot-visibility rule: a new
  /// generation is seen only by executions that snapshot after it.
  struct TableSnapshot {
    Catalog catalog;
    std::vector<std::shared_ptr<const Dataset>> leases;
    /// Leases on the paged copies bound in catalog.paged (out-of-core
    /// sessions only) — same survival rule as `leases`.
    std::vector<std::shared_ptr<const PagedTable>> paged_leases;
  };
  TableSnapshot SnapshotTables() const;

  Result<OpResult> RunCleaningPlan(Executor& exec, const CleaningPlan& cp);
  /// Shared execution wrapper of the programmatic ops: snapshots the
  /// catalog, takes the config lock shared, scopes per-op metrics, and runs
  /// `cp` with a transient executor.
  Result<OpResult> RunProgrammaticOp(const CleaningPlan& cp);
  /// Shared Prepare body; `query_text` (when available) positions the
  /// kKeyError of an unknown function / arity mismatch at the recorded
  /// call offset. Defined in prepared_query.cc.
  Result<PreparedQuery> PrepareQueryImpl(const CleanMQuery& query,
                                         const std::string* query_text);
  /// Executes a prepared query's plans under `opts`, streaming into `sink`;
  /// fills the summary fields (timings, metrics, cache deltas) of
  /// `*summary` when non-null. Defined in prepared_query.cc.
  Status ExecutePrepared(const PreparedQuery& pq, const ExecOptions& opts,
                         ViolationSink& sink, QueryResult* summary);

  /// FIFO admission against options_.max_inflight_bytes: blocks until
  /// `estimated_bytes` fits next to the already-admitted executions (an
  /// oversized request is admitted once it runs alone). Returns the charge
  /// ReleaseExecution must give back. No-op returning 0 when the budget is
  /// unlimited.
  uint64_t AdmitExecution(uint64_t estimated_bytes);
  void ReleaseExecution(uint64_t charged_bytes);

  CleanDBOptions options_;
  std::unique_ptr<engine::Cluster> cluster_;

  /// Guards tables_ and generations_ (shared: lookups/snapshots; exclusive:
  /// registrations). Ordered before the cache's internal mutex and never
  /// held while executing.
  mutable std::shared_mutex table_mu_;
  /// Datasets are shared-owned so snapshot leases survive re-registration.
  std::map<std::string, std::shared_ptr<const Dataset>> tables_;
  /// Per-table registration counters backing the cache's staleness keys.
  std::map<std::string, uint64_t> generations_;
  /// Paged copies of registered tables (out-of-core sessions; guarded by
  /// table_mu_ like tables_). A table may lack one — paged ingestion is an
  /// optimization, never a correctness dependency.
  std::map<std::string, std::shared_ptr<const PagedTable>> paged_tables_;

  /// Read-modify-write commit serialization (see LockCommits). Ordered
  /// before table_mu_.
  mutable std::mutex commit_mu_;

  /// Cluster-configuration lock: executions that apply cluster-mutating
  /// ExecOptions hold it exclusively for their whole run; every other
  /// execution holds it shared, so the shared cluster's knobs never change
  /// under a running plan.
  mutable std::shared_mutex config_mu_;

  // Admission-control state (see AdmitExecution).
  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  uint64_t admission_inflight_bytes_ = 0;
  size_t admission_inflight_count_ = 0;
  uint64_t admission_next_ticket_ = 0;
  uint64_t admission_serve_ticket_ = 0;

  /// Suffix counter making concurrently-running ValidateTerms calls' temp
  /// table names unique.
  std::atomic<uint64_t> temp_table_seq_{0};

  /// Out-of-core state (null on fully in-memory sessions). Declared before
  /// cache_ so the cache (whose pager writes through session_spill_) is
  /// destroyed first. The page store is shared-owned by every PagedTable
  /// built over it.
  std::unique_ptr<BufferPool> pool_;
  std::shared_ptr<SingleFileStore> page_store_;
  /// Session spill context backing the partition-cache pager (per-execution
  /// breaker spills use their own, stack-owned in ExecutePrepared).
  std::unique_ptr<SpillContext> session_spill_;

  /// Session-owned partition cache shared by every execution.
  PartitionCache cache_;
  /// Session-owned function registry (user scalar/aggregate/repair
  /// functions); referenced by prepared plans, so it must outlive them —
  /// which it does, since PreparedQuerys must not outlive their CleanDB.
  FunctionRegistry functions_;
};

}  // namespace cleanm
