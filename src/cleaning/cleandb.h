// CleanDB: the unified querying + cleaning engine (paper Section 7,
// Figure 2).
//
// Pipeline per query: Parser → (Monoid Rewriter) cleaning clauses desugar to
// canonical plans → Monoid/algebra optimizer (normalization + CoalesceNests
// + RewritePlan) → physical executor on the virtual cluster → unified
// violation report (the top-level outer join of Section 4.4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/rewriter.h"
#include "cleaning/plan_builder.h"
#include "common/timer.h"
#include "language/parser.h"
#include "physical/planner.h"

namespace cleanm {

struct CleanDBOptions {
  size_t num_nodes = 4;
  /// Simulated interconnect cost (see engine::ClusterOptions).
  double shuffle_ns_per_byte = 1.0;
  /// Shuffle batching + thread-model knobs (see engine::ClusterOptions).
  size_t shuffle_batch_rows = 1024;
  double shuffle_ns_per_batch = 0.0;
  bool use_worker_pool = true;
  PhysicalOptions physical;
  /// Defaults for token filtering / k-means parameters (q, k, delta, seed).
  FilteringOptions filtering;
  /// When false, cleaning clauses run as standalone plans with no Nest
  /// coalescing and no scan sharing — the ablation knob for Figure 5.
  bool unify_operations = true;
};

/// Output of one cleaning operation.
struct OpResult {
  std::string op_name;
  /// Violation tuples (struct Values; fields depend on the operation).
  ValueList violations;
  double seconds = 0;
};

/// Output of a whole query: per-operation results plus the entities that
/// violate at least one rule (paper: the outer join of all violations).
struct QueryResult {
  std::vector<OpResult> ops;
  /// entity → names of the operations it violates.
  std::vector<std::pair<Value, std::vector<std::string>>> dirty_entities;
  double total_seconds = 0;
  int nests_coalesced = 0;
  uint64_t rows_shuffled = 0;
  uint64_t bytes_shuffled = 0;
};

/// \brief The CleanDB engine. Register tables, then execute CleanM queries
/// or call the programmatic cleaning APIs (used by the benchmarks).
class CleanDB {
 public:
  explicit CleanDB(CleanDBOptions options = {});

  /// Registers (or replaces) a named table.
  void RegisterTable(const std::string& name, Dataset dataset);
  Result<const Dataset*> GetTable(const std::string& name) const;

  /// Parses and executes a CleanM query end to end.
  Result<QueryResult> Execute(const std::string& query_text);

  /// Executes an already-parsed query.
  Result<QueryResult> ExecuteQuery(const CleanMQuery& query);

  // ---- Programmatic cleaning operations ----

  /// FD check: lhs → rhs over `table` (alias `var` inside the exprs).
  Result<OpResult> CheckFd(const std::string& table, const std::string& var,
                           const FdClause& fd);

  /// General denial constraint with inequalities: a theta self-join with
  /// predicate over variables t1/t2; `prefilter` (over t1 or t2 alone) is
  /// pushed below the join. Violations are the matching pairs.
  Result<OpResult> CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                         ExprPtr prefilter = nullptr);

  /// Duplicate elimination per the DEDUP clause semantics.
  Result<OpResult> Deduplicate(const std::string& table, const std::string& var,
                               const DedupClause& dedup);

  /// Term validation: values of `term` (an expression over `data_var`) are
  /// validated against `dict_table`.`dict_attr`; violations couple each
  /// dirty term with its suggested repairs. Terms that appear verbatim in
  /// the dictionary are clean and skipped before grouping.
  Result<OpResult> ValidateTerms(const std::string& data_table,
                                 const std::string& data_var,
                                 const std::string& dict_table,
                                 const std::string& dict_attr,
                                 const ClusterByClause& cb);

  /// Syntactic transformations (Table 4): split a date column into
  /// year/month/day and/or fill missing numeric values with the column
  /// average. `one_pass` applies all requested repairs in a single dataset
  /// traversal; otherwise each repair re-traverses (the baseline).
  struct TransformSpec {
    std::string split_date_column;    ///< empty = skip
    std::string fill_missing_column;  ///< empty = skip
  };
  Result<Dataset> Transform(const std::string& table, const TransformSpec& spec,
                            bool one_pass);

  engine::Cluster& cluster() { return *cluster_; }
  const CleanDBOptions& options() const { return options_; }

  /// Samples k-means centers for a grouping clause: from the dictionary
  /// when given, else from the data column.
  std::vector<std::string> SampleCenters(const std::string& table,
                                         const std::string& attr, size_t k) const;

 private:
  Result<OpResult> RunCleaningPlan(Executor& exec, const CleaningPlan& cp);
  Catalog MakeCatalog() const;

  CleanDBOptions options_;
  std::unique_ptr<engine::Cluster> cluster_;
  std::map<std::string, Dataset> tables_;
};

}  // namespace cleanm
