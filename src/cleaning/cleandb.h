// CleanDB: the unified querying + cleaning engine (paper Section 7,
// Figure 2).
//
// Pipeline per query: Parser → (Monoid Rewriter) cleaning clauses desugar to
// canonical plans → Monoid/algebra optimizer (normalization + CoalesceNests
// + RewritePlan) → physical executor on the virtual cluster → unified
// violation report (the top-level outer join of Section 4.4).
//
// Query lifecycle: Prepare(text) performs the parse/normalize/rewrite work
// once and returns a PreparedQuery whose Execute(ExecOptions) runs the
// optimized plans against the current table registrations, reusing the
// session-owned PartitionCache (scans, wrapped scans, coalesced Nest
// outputs, keyed by table generation). Execute(text) remains as the
// one-shot convenience — it is exactly Prepare + a single Execute.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "algebra/rewriter.h"
#include "cleaning/plan_builder.h"
#include "cleaning/session_knobs.h"
#include "common/timer.h"
#include "functions/function_registry.h"
#include "language/parser.h"
#include "physical/partition_cache.h"
#include "physical/planner.h"
#include "storage/delta.h"
#include "storage/pagestore/buffer_pool.h"
#include "storage/pagestore/paged_table.h"
#include "storage/pagestore/spill.h"

namespace cleanm {

class PreparedQuery;
class QueryProfile;
class ViolationSink;
struct ExecOptions;

struct CleanDBOptions {
  // Shared session knobs, generated from CLEANM_SESSION_KNOBS
  // (cleaning/session_knobs.h) so the session default, the per-call
  // ExecOptions optional, and the per-execution resolution stay one list.
  // In brief (see exec_options.h for the full per-knob documentation):
  //   unify_operations   — Nest-coalesced plan forms (Figure-5 ablation).
  //   shuffle_*          — simulated interconnect model.
  //   pipeline / morsel_rows — morsel-driven execution below the sink.
  //   incremental        — serve minor-generation (mutation) re-executions
  //     from the incremental delta path instead of a full run.
  //   buffer_pool_bytes / spill_dir / page_bytes — out-of-core storage
  //     (DESIGN.md, "Out-of-core storage & spill"); buffer_pool_bytes > 0
  //     additionally ingests registered tables into a paged store.
  //   profile / trace_path — operator-level tracing spans + QueryProfile.
#define CLEANM_X(type, name, default_value) type name = default_value;
  CLEANM_SESSION_KNOBS(CLEANM_X)
#undef CLEANM_X

  size_t num_nodes = 4;
  bool use_worker_pool = true;
  PhysicalOptions physical;
  /// Defaults for token filtering / k-means parameters (q, k, delta, seed).
  FilteringOptions filtering;
  /// Byte budget of the session partition cache (cached scans / wrapped
  /// scans / Nest outputs, LRU-evicted). 0 = unbounded.
  size_t partition_cache_bytes = size_t{256} << 20;
  /// Admission control for concurrent executions: bound on the summed
  /// admission charges (logical input bytes, or the per-call
  /// ExecOptions::admission_bytes override) of in-flight
  /// PreparedQuery executions. Executions over the bound queue FIFO; an
  /// oversized execution is admitted once it is alone. 0 = unlimited (no
  /// queueing, the default).
  uint64_t max_inflight_bytes = 0;
  /// Session defaults for fault injection, task retry/backoff, and node
  /// blacklisting (see engine::FaultOptions; off by default). Probability /
  /// seed / retry knobs are overridable per call via ExecOptions.
  engine::FaultOptions fault;
  /// Skew threshold for profile warnings: an operator whose per-node row
  /// distribution has ImbalanceFactor (max/mean) above this is flagged.
  double skew_warn_factor = 2.0;
};

/// Output of one cleaning operation.
struct OpResult {
  std::string op_name;
  /// Violation tuples (struct Values; fields depend on the operation).
  ValueList violations;
  double seconds = 0;
};

/// Output of a whole query: per-operation results plus the entities that
/// violate at least one rule (paper: the outer join of all violations).
struct QueryResult {
  std::vector<OpResult> ops;
  /// entity → names of the operations it violates.
  std::vector<std::pair<Value, std::vector<std::string>>> dirty_entities;
  double total_seconds = 0;
  int nests_coalesced = 0;
  /// Engine counters for this execution — the full QueryMetrics snapshot
  /// (rows/bytes/batches shuffled, comparisons, ...), replacing the old
  /// hand-copied rows_shuffled/bytes_shuffled pair.
  MetricsCounters metrics;
  /// Partition-cache activity during this execution: hit/miss/eviction
  /// counters are per-execution deltas; resident_* are end-of-execution
  /// gauges.
  PartitionCache::Stats cache;
  /// Poison rows recorded and skipped by the quarantine (empty unless
  /// ExecOptions::max_quarantined_rows enabled it).
  std::vector<engine::QuarantinedRow> quarantined;
  /// The execution's trace-derived profile (EXPLAIN ANALYZE: per-operator
  /// timings, rows, per-node skew, counter attribution). Null unless
  /// profiling was on (ExecOptions::profile / CleanDBOptions::profile).
  std::shared_ptr<const QueryProfile> profile;
};

/// \brief The CleanDB engine. Register tables, then Prepare/Execute CleanM
/// queries or call the programmatic cleaning APIs (used by the benchmarks).
///
/// Thread model (DESIGN.md, "Threading & session concurrency"): one CleanDB
/// may serve N driver threads concurrently executing PreparedQuerys and
/// programmatic ops over the shared worker pool. Registrations are guarded
/// by a reader/writer lock and every execution binds a *snapshot* of the
/// tables visible when it starts: re-registering a table (RegisterTable,
/// repair Commit) bumps the generation for executions that start later,
/// while in-flight executions keep reading the datasets they snapshotted
/// (shared-ownership leases keep them alive). Cluster-reconfiguring
/// ExecOptions (max_nodes, shuffle_*) take the session's config lock
/// exclusively and so run alone; plain executions share it.
class CleanDB {
 public:
  explicit CleanDB(CleanDBOptions options = {});

  /// Registers (or replaces) a named table. Replacing bumps the table's
  /// generation and invalidates every cached partitioning derived from it,
  /// so no execution that starts afterwards can be served stale data.
  /// Thread-safe; executions already in flight keep their snapshot.
  void RegisterTable(const std::string& name, Dataset dataset);
  /// Drops a table (and its cached partitionings). No-op when absent.
  void UnregisterTable(const std::string& name);
  /// Borrowed pointer into the current registration. Stable only until the
  /// next RegisterTable/UnregisterTable of `name` — callers that may race a
  /// re-registration use GetTableShared.
  Result<const Dataset*> GetTable(const std::string& name) const;
  /// Shared-ownership lease on the current registration: the dataset stays
  /// alive for the lease's lifetime even if the name is re-registered.
  Result<std::shared_ptr<const Dataset>> GetTableShared(
      const std::string& name) const;
  /// Current generation (version) of `name`, bumped by every RegisterTable
  /// / UnregisterTable *and* every effective mutation (AppendRows /
  /// UpdateRows / DeleteRows); 0 = never registered.
  uint64_t TableGeneration(const std::string& name) const;
  /// Major registration epoch of `name`: bumped only by RegisterTable /
  /// UnregisterTable (the events that invalidate cached partitionings);
  /// 0 = never registered.
  uint64_t TableMajor(const std::string& name) const;
  /// Mutations applied to `name` since its last registration (reset to 0 by
  /// RegisterTable).
  uint64_t TableMinor(const std::string& name) const;

  // ---- Table mutation (minor generations) ----
  //
  // Mutations publish a new effective dataset plus a delta-log entry and
  // bump the table's generation and *minor* counter — but, unlike
  // RegisterTable, they do NOT invalidate cached partitionings: entries of
  // older versions simply become unreachable (the LRU reclaims them), and
  // pinned readers are untouched. A re-execution whose snapshot differs
  // from the cached state only by minor generations is then served by the
  // incremental delta path (see DESIGN.md, "Incremental validation & the
  // delta log"). All three are thread-safe and atomic (exclusive table
  // lock); a mutation that changes nothing (no matches, sets equal to the
  // current values) publishes nothing and bumps nothing.

  /// Row predicate for UpdateRows/DeleteRows.
  using RowMatcher = std::function<bool(const Schema&, const Row&)>;
  /// In-place row editor for UpdateRowsWith: return true after modifying
  /// `*row`, false to leave the row untouched.
  using RowEditor = std::function<bool(const Schema&, Row*)>;

  /// What a mutation did: the table's resulting (generation, major, minor)
  /// and how many rows it touched (0 = no-op, nothing was published).
  struct MutationResult {
    uint64_t generation = 0;
    uint64_t major = 0;
    uint64_t minor = 0;
    size_t rows_affected = 0;
  };

  /// Appends `rows` (schema-checked for width) to `table`.
  Result<MutationResult> AppendRows(const std::string& table,
                                    std::vector<Row> rows);
  /// Sets the columns named in `sets` on every row `matcher` accepts. Rows
  /// whose matched values already equal the targets are not counted (and
  /// contribute no delta).
  Result<MutationResult> UpdateRows(const std::string& table,
                                    const RowMatcher& matcher,
                                    const ValueStruct& sets);
  /// Generalized update: `editor` may rewrite any cell of the rows it
  /// returns true for (the form RepairSink::CommitDelta routes through).
  Result<MutationResult> UpdateRowsWith(const std::string& table,
                                        const RowEditor& editor);
  /// Removes every row `matcher` accepts.
  Result<MutationResult> DeleteRows(const std::string& table,
                                    const RowMatcher& matcher);

  /// Serializes table read-modify-write commits (repair Commit): holding
  /// the returned lock guarantees no other committer replaces the table
  /// between reading it and re-registering the modified copy. Plain
  /// RegisterTable calls are atomic on their own and need not take it.
  std::unique_lock<std::mutex> LockCommits() const {
    return std::unique_lock<std::mutex>(commit_mu_);
  }

  // ---- Query lifecycle ----

  /// Parses, normalizes, and optimizes a CleanM query once. The error case
  /// carries the specific StatusCode: kParseError (with line/column) for
  /// malformed CleanM, kKeyError for a clause referencing an unknown
  /// column, kTypeError for a grouping-monoid term of the wrong type.
  /// Tables bind lazily at Execute time.
  Result<PreparedQuery> Prepare(const std::string& query_text);

  /// Prepares an already-parsed query.
  Result<PreparedQuery> PrepareQuery(const CleanMQuery& query);

  /// Prepares a denial constraint (a theta self-join over t1/t2 with
  /// `pred`; `prefilter` over one side is pushed below the join) as a
  /// single-operation PreparedQuery, so DC checks participate in the same
  /// prepare-once / execute-many lifecycle as CleanM text.
  Result<PreparedQuery> PrepareDenialConstraint(const std::string& table, ExprPtr pred,
                                                ExprPtr prefilter = nullptr);

  /// One-shot convenience: Prepare + a single Execute.
  Result<QueryResult> Execute(const std::string& query_text);

  /// One-shot convenience for an already-parsed query.
  Result<QueryResult> ExecuteQuery(const CleanMQuery& query);

  // ---- Programmatic cleaning operations ----

  /// FD check: lhs → rhs over `table` (alias `var` inside the exprs).
  Result<OpResult> CheckFd(const std::string& table, const std::string& var,
                           const FdClause& fd);

  /// General denial constraint with inequalities: a theta self-join with
  /// predicate over variables t1/t2; `prefilter` (over t1 or t2 alone) is
  /// pushed below the join. Violations are the matching pairs.
  Result<OpResult> CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                         ExprPtr prefilter = nullptr);

  /// Duplicate elimination per the DEDUP clause semantics.
  Result<OpResult> Deduplicate(const std::string& table, const std::string& var,
                               const DedupClause& dedup);

  /// Term validation: values of `term` (an expression over `data_var`) are
  /// validated against `dict_table`.`dict_attr`; violations couple each
  /// dirty term with its suggested repairs. Terms that appear verbatim in
  /// the dictionary are clean and skipped before grouping.
  Result<OpResult> ValidateTerms(const std::string& data_table,
                                 const std::string& data_var,
                                 const std::string& dict_table,
                                 const std::string& dict_attr,
                                 const ClusterByClause& cb);

  /// Syntactic transformations (Table 4): split a date column into
  /// year/month/day and/or fill missing numeric values with the column
  /// average. `one_pass` applies all requested repairs in a single dataset
  /// traversal; otherwise each repair re-traverses (the baseline).
  struct TransformSpec {
    std::string split_date_column;    ///< empty = skip
    std::string fill_missing_column;  ///< empty = skip
  };
  Result<Dataset> Transform(const std::string& table, const TransformSpec& spec,
                            bool one_pass);

  engine::Cluster& cluster() { return *cluster_; }
  const CleanDBOptions& options() const { return options_; }
  /// The session function registry: register scalar / aggregate / repair
  /// functions here to make them callable from CleanM query text (see
  /// functions/function_registry.h and README, "Extending CleanM").
  /// Register before Prepare — prepared plans resolve calls at Prepare
  /// time and validate names/arities against the registry's state then.
  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }
  /// The session partition cache (stats for tests/monitoring; Clear() to
  /// drop all cached partitionings).
  PartitionCache& partition_cache() { return cache_; }
  /// The session buffer pool, or null on a fully in-memory session
  /// (options().buffer_pool_bytes == 0). Stats expose resident/peak bytes
  /// for the out-of-core CI gate.
  const BufferPool* buffer_pool() const { return pool_.get(); }

  /// The session-cumulative engine counters rendered in Prometheus text
  /// exposition format (one `cleandb_<counter>_total` counter per
  /// QueryMetrics field, plus the materialization peak/now gauges) — ready
  /// to serve from a /metrics endpoint or diff across executions.
  std::string ExportMetricsText() const;

  /// Samples k-means centers for a grouping clause: from the dictionary
  /// when given, else from the data column.
  std::vector<std::string> SampleCenters(const std::string& table,
                                         const std::string& attr, size_t k) const;

 private:
  friend class PreparedQuery;

  /// A point-in-time view of the table registrations. `catalog` holds raw
  /// Dataset pointers (the form the executor binds); `leases` co-own those
  /// datasets so a concurrent re-registration can never free data an
  /// in-flight execution still reads — the snapshot-visibility rule: a new
  /// generation is seen only by executions that snapshot after it.
  struct TableSnapshot {
    Catalog catalog;
    std::vector<std::shared_ptr<const Dataset>> leases;
    /// Leases on the paged copies bound in catalog.paged (out-of-core
    /// sessions only) — same survival rule as `leases`.
    std::vector<std::shared_ptr<const PagedTable>> paged_leases;
    /// Leases on the base (as-registered) datasets bound in catalog.bases
    /// and on the mutation delta logs bound in catalog.deltas — same
    /// survival rule as `leases`.
    std::vector<std::shared_ptr<const Dataset>> base_leases;
    std::vector<std::shared_ptr<const DeltaLog>> delta_leases;
  };
  TableSnapshot SnapshotTables() const;

  /// Shared execution wrapper of the programmatic ops: wraps `cp` in a
  /// transient single-operation PreparedQuery and runs it through
  /// ExecutePrepared — the same code path (snapshot, admission, config
  /// lock, metrics scope, sink emission) as Prepare→Execute, with cache
  /// persistence off so the throwaway plan's Nest outputs never pollute
  /// the session cache.
  Result<OpResult> RunProgrammaticOp(CleaningPlan cp);
  /// Shared Prepare body; `query_text` (when available) positions the
  /// kKeyError of an unknown function / arity mismatch at the recorded
  /// call offset. Defined in prepared_query.cc.
  Result<PreparedQuery> PrepareQueryImpl(const CleanMQuery& query,
                                         const std::string* query_text);
  /// Executes a prepared query's plans under `opts`, streaming into `sink`;
  /// fills the summary fields (timings, metrics, cache deltas) of
  /// `*summary` when non-null. Defined in prepared_query.cc.
  Status ExecutePrepared(const PreparedQuery& pq, const ExecOptions& opts,
                         ViolationSink& sink, QueryResult* summary);

  /// FIFO admission against options_.max_inflight_bytes: blocks until
  /// `estimated_bytes` fits next to the already-admitted executions (an
  /// oversized request is admitted once it runs alone). Returns the charge
  /// ReleaseExecution must give back. No-op returning 0 when the budget is
  /// unlimited.
  uint64_t AdmitExecution(uint64_t estimated_bytes);
  void ReleaseExecution(uint64_t charged_bytes);

  CleanDBOptions options_;
  std::unique_ptr<engine::Cluster> cluster_;

  /// One mutation's dataset rewrite: fill `next` (constructed empty over
  /// the current schema) from `current`, recording the row-level effect in
  /// `delta`. Runs under the exclusive table lock.
  using MutationFn = std::function<Status(const Dataset& current,
                                          Dataset* next, TableDelta* delta)>;
  /// Shared mutation body: applies `fn` to the current registration of
  /// `table` and — iff the delta is non-empty — publishes the new dataset,
  /// bumps generation + minor, and appends to the table's delta log, all in
  /// one exclusive table_mu_ critical section. Never invalidates the cache.
  Result<MutationResult> MutateTable(const std::string& table,
                                     const MutationFn& fn);

  /// Guards tables_, generations_, and the mutation state (base_tables_,
  /// majors_, minors_, delta_logs_) — shared: lookups/snapshots; exclusive:
  /// registrations and mutations. Lock order: commit_mu_ → config_mu_ →
  /// table_mu_ → the cache's internal mutex; never held while executing.
  /// UnregisterTable drops the table, its counters, and its delta log in
  /// one exclusive critical section, so a concurrent mutation either
  /// completes before the drop or fails with kKeyError — a log can never
  /// survive its table.
  mutable std::shared_mutex table_mu_;
  /// Datasets are shared-owned so snapshot leases survive re-registration.
  std::map<std::string, std::shared_ptr<const Dataset>> tables_;
  /// Per-table version counters backing the cache's staleness keys; bumped
  /// by registrations and mutations alike.
  std::map<std::string, uint64_t> generations_;
  /// The dataset as last *registered* (mutations replace tables_ but not
  /// this): the incremental validator's bootstrap input.
  std::map<std::string, std::shared_ptr<const Dataset>> base_tables_;
  /// Major registration epochs (bumped by Register/UnregisterTable only).
  std::map<std::string, uint64_t> majors_;
  /// Mutations since the last registration (reset by RegisterTable).
  std::map<std::string, uint64_t> minors_;
  /// Immutable delta-log snapshots; a mutation publishes a copied+extended
  /// log so snapshot holders keep reading a frozen one.
  std::map<std::string, std::shared_ptr<const DeltaLog>> delta_logs_;
  /// Paged copies of registered tables (out-of-core sessions; guarded by
  /// table_mu_ like tables_). A table may lack one — paged ingestion is an
  /// optimization, never a correctness dependency.
  std::map<std::string, std::shared_ptr<const PagedTable>> paged_tables_;

  /// Read-modify-write commit serialization (see LockCommits). Ordered
  /// before table_mu_.
  mutable std::mutex commit_mu_;

  /// Cluster-configuration lock: executions that apply cluster-mutating
  /// ExecOptions hold it exclusively for their whole run; every other
  /// execution holds it shared, so the shared cluster's knobs never change
  /// under a running plan.
  mutable std::shared_mutex config_mu_;

  // Admission-control state (see AdmitExecution).
  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  uint64_t admission_inflight_bytes_ = 0;
  size_t admission_inflight_count_ = 0;
  uint64_t admission_next_ticket_ = 0;
  uint64_t admission_serve_ticket_ = 0;

  /// Suffix counter making concurrently-running ValidateTerms calls' temp
  /// table names unique.
  std::atomic<uint64_t> temp_table_seq_{0};

  /// Out-of-core state (null on fully in-memory sessions). Declared before
  /// cache_ so the cache (whose pager writes through session_spill_) is
  /// destroyed first. The page store is shared-owned by every PagedTable
  /// built over it.
  std::unique_ptr<BufferPool> pool_;
  std::shared_ptr<SingleFileStore> page_store_;
  /// Session spill context backing the partition-cache pager (per-execution
  /// breaker spills use their own, stack-owned in ExecutePrepared).
  std::unique_ptr<SpillContext> session_spill_;

  /// Session-owned partition cache shared by every execution.
  PartitionCache cache_;
  /// Session-owned function registry (user scalar/aggregate/repair
  /// functions); referenced by prepared plans, so it must outlive them —
  /// which it does, since PreparedQuerys must not outlive their CleanDB.
  FunctionRegistry functions_;
};

}  // namespace cleanm
