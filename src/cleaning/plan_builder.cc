#include "cleaning/plan_builder.h"

#include <unordered_set>

#include "common/hash.h"

namespace cleanm {

bool ViolationDeduper::ShouldEmit(const Value& v) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  bool projected = false;
  for (const auto& var : cp_->entity_vars) {
    auto field = v.GetField(var);
    if (field.ok()) {
      h = HashCombine(h, field.value().Hash());
      projected = true;
    }
  }
  return !projected || seen_.insert(h).second;
}

Status ForEachDedupedViolation(const Value& plan_output, const CleaningPlan& cp,
                               const std::function<Status(const Value&)>& emit) {
  ViolationDeduper dedup(cp);
  for (const auto& v : plan_output.AsList()) {
    if (!dedup.ShouldEmit(v)) continue;  // duplicate projection
    CLEANM_RETURN_NOT_OK(emit(v));
  }
  return Status::OK();
}

ExprPtr CombineAttrs(const std::vector<ExprPtr>& attrs) {
  CLEANM_CHECK(!attrs.empty());
  if (attrs.size() == 1) return attrs[0];
  std::vector<ExprPtr> args;
  for (size_t i = 0; i < attrs.size(); i++) {
    if (i) args.push_back(ConstString("|"));
    args.push_back(attrs[i]);
  }
  return Call("concat", std::move(args));
}

const char* MetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kLevenshtein: return "LD";
    case SimilarityMetric::kJaccard: return "jaccard";
    case SimilarityMetric::kEuclidean: return "euclidean";
  }
  return "?";
}

namespace {

GroupSpec MakeGroupSpec(FilteringAlgo algo, ExprPtr term,
                        const FilteringOptions& options,
                        std::vector<std::string> centers) {
  GroupSpec group;
  group.algo = algo;
  group.term = std::move(term);
  group.q = options.q;
  group.k = options.k;
  group.delta = options.delta;
  group.centers = std::move(centers);
  return group;
}

}  // namespace

Result<CleaningPlan> BuildFdPlan(const std::string& table, const std::string& var,
                                 const FdClause& fd) {
  if (fd.lhs.empty() || fd.rhs.empty()) {
    return Status::InvalidArgument("FD requires LHS and RHS attributes");
  }
  GroupSpec group;
  group.algo = FilteringAlgo::kExactKey;
  group.term = CombineAttrs(fd.lhs);

  std::vector<NestAgg> aggs;
  aggs.push_back({"vals", "set", CombineAttrs(fd.rhs)});
  aggs.push_back({"partition", "bag", Var(var)});
  // Violation: the LHS group maps to more than one distinct RHS value.
  ExprPtr having = Binary(BinaryOp::kGt, Call("count", {Var("vals")}), ConstInt(1));

  CleaningPlan out;
  out.op_name = "FD";
  out.plan = NestOp(Scan(table, var), std::move(group), std::move(aggs),
                    std::move(having));
  out.entity_vars = {"partition"};
  return out;
}

Result<CleaningPlan> BuildDedupPlan(const std::string& table, const std::string& var,
                                    const DedupClause& dedup,
                                    const FilteringOptions& options,
                                    std::vector<std::string> centers) {
  if (dedup.attributes.empty()) {
    return Status::InvalidArgument("DEDUP requires at least one attribute");
  }
  ExprPtr term = CombineAttrs(dedup.attributes);
  GroupSpec group = MakeGroupSpec(dedup.op, term, options, std::move(centers));

  std::vector<NestAgg> aggs;
  aggs.push_back({"partition", "bag", Var(var)});
  ExprPtr having =
      Binary(BinaryOp::kGt, Call("count", {Var("partition")}), ConstInt(1));
  AlgOpPtr nest = NestOp(Scan(table, var), std::move(group), std::move(aggs),
                         std::move(having));

  // Pairwise comparison within each group: unnest the partition twice,
  // order the pair (p1 < p2) to emit each candidate once, then apply the
  // similarity predicate over the records' text.
  AlgOpPtr pairs = UnnestOp(UnnestOp(nest, Var("partition"), "p1"),
                            Var("partition"), "p2");
  ExprPtr ordered = Binary(BinaryOp::kLt, Var("p1"), Var("p2"));
  ExprPtr similar = Call("similar", {ConstString(MetricName(dedup.metric)),
                                     Call("to_string", {Var("p1")}),
                                     Call("to_string", {Var("p2")}),
                                     ConstDouble(dedup.theta)});
  CleaningPlan out;
  out.op_name = "DEDUP";
  out.plan = SelectOp(std::move(pairs), Binary(BinaryOp::kAnd, ordered, similar));
  out.entity_vars = {"p1", "p2"};
  return out;
}

Result<CleaningPlan> BuildTermValidationPlan(
    const std::string& data_table, const std::string& data_var,
    const std::string& dict_table, const std::string& dict_var,
    const std::string& dict_attr, const ClusterByClause& cb,
    const FilteringOptions& options, std::vector<std::string> centers) {
  if (!cb.term) return Status::InvalidArgument("CLUSTER BY requires a term");

  // dataGroup := for(c <- data) yield filter(c.term, algo)
  GroupSpec data_group = MakeGroupSpec(cb.op, cb.term, options, centers);
  AlgOpPtr data_nest = NestOp(Scan(data_table, data_var), data_group,
                              {{"terms", "set", cb.term}}, nullptr, "key");

  // dictGroup := for(d <- dict) yield filter(d.attr, algo)
  ExprPtr dict_term = FieldAccess(Var(dict_var), dict_attr);
  GroupSpec dict_group = MakeGroupSpec(cb.op, dict_term, options, std::move(centers));
  AlgOpPtr dict_nest = NestOp(Scan(dict_table, dict_var), dict_group,
                              {{"dict_terms", "set", dict_term}}, nullptr, "dkey");

  // Compare only clusters with the same grouping key (Section 4.4).
  AlgOpPtr joined = EquiJoinOp(data_nest, dict_nest, Var("key"), Var("dkey"));
  AlgOpPtr exploded = UnnestOp(UnnestOp(joined, Var("terms"), "term"),
                               Var("dict_terms"), "suggestion");
  // A violation couples a dirty term with a similar dictionary term; exact
  // dictionary matches are clean and excluded.
  ExprPtr not_in_dict = Binary(BinaryOp::kNe, Var("term"), Var("suggestion"));
  ExprPtr similar = Call("similar", {ConstString(MetricName(cb.metric)), Var("term"),
                                     Var("suggestion"), ConstDouble(cb.theta)});
  CleaningPlan out;
  out.op_name = "CLUSTER BY";
  out.plan = SelectOp(std::move(exploded),
                      Binary(BinaryOp::kAnd, not_in_dict, similar));
  out.entity_vars = {"term", "suggestion"};
  return out;
}

ExprPtr FdComprehension(const std::string& table, const std::string& var,
                        const FdClause& fd) {
  // groups := for(c <- T) yield filter(lhs); violations: count(rhs set) > 1.
  // Rendered as a single nested comprehension over the exact-group monoid's
  // entries — the printable Section 4.4 form.
  auto inner = Comprehension(
      "set", Substitute(CombineAttrs(fd.rhs), var, Var(var + "2")),
      {Generator(var + "2", Var(table)),
       Predicate(Binary(BinaryOp::kEq,
                        Substitute(CombineAttrs(fd.lhs), var, Var(var + "2")),
                        CombineAttrs(fd.lhs)))});
  return Comprehension(
      "bag", Var(var),
      {Generator(var, Var(table)),
       Predicate(Binary(BinaryOp::kGt, Call("count", {inner}), ConstInt(1)))});
}

}  // namespace cleanm
