// Streaming consumption of cleaning results.
//
// PreparedQuery::ExecuteInto pushes violations and the unified dirty-entity
// join (the Section-4.4 outer join) into a ViolationSink as they are
// produced, instead of materializing a whole QueryResult first. Sinks that
// only count, forward, or filter violations never hold the full violation
// set in memory; the classic materializing behavior survives as
// QueryResultSink, so old callers migrate mechanically:
//
//   auto result = db.Execute(text);                 // before
//   auto pq = db.Prepare(text);                     // after
//   auto result = pq.value().Execute();             //   (materializing)
//   CountingSink sink;                              //   (streaming)
//   pq.value().ExecuteInto(sink);
//
// Any callback returning a non-OK Status aborts the execution and becomes
// ExecuteInto's return value (early exit, e.g. "first 100 violations").
#pragma once

#include <string>
#include <vector>

#include "cleaning/cleandb.h"
#include "common/status.h"
#include "storage/value.h"

namespace cleanm {

/// Per-operation completion summary delivered to OnOpEnd.
struct OpSummary {
  std::string op_name;
  size_t violations = 0;
  double seconds = 0;
};

/// \brief Receiver interface for streamed cleaning results.
///
/// Call order per execution: for each operation, OnOpBegin, then zero or
/// more OnViolation (already deduplicated on the operation's entity
/// projection), then OnOpEnd; after all operations, one OnDirtyEntity per
/// entity that violates at least one rule.
class ViolationSink {
 public:
  virtual ~ViolationSink() = default;

  virtual Status OnOpBegin(const std::string& op_name) {
    (void)op_name;
    return Status::OK();
  }

  virtual Status OnViolation(const std::string& op_name, const Value& violation) = 0;

  virtual Status OnOpEnd(const OpSummary& summary) {
    (void)summary;
    return Status::OK();
  }

  /// One entity of the unified report with the names of the operations it
  /// violates (ordered as the operations ran).
  virtual Status OnDirtyEntity(const Value& entity,
                               const std::vector<std::string>& violated_ops) = 0;

  // ---- Retractable results (incremental executions only) ----
  //
  // When an execution is served by the incremental delta path (the table
  // snapshot differs from the cached state only by mutation-minor
  // generations; see DESIGN.md, "Incremental validation & the delta log"),
  // the stream becomes a *diff* against the previous execution: between
  // OnOpBegin and OnOpEnd, violations that disappeared because of the
  // mutations arrive via OnViolationRetracted, violations that appeared
  // arrive via OnViolationNew, and violations that persist still arrive via
  // plain OnViolation — so (previous − retracted + new) equals what a full
  // re-execution would emit. Both have compatible defaults (retractions are
  // dropped, new violations forward to OnViolation), so sinks written
  // before this interface existed compile and behave unchanged.

  /// A violation emitted by a previous execution of the same prepared query
  /// that no longer holds after the table mutations. Default: ignored.
  virtual Status OnViolationRetracted(const std::string& op_name,
                                      const Value& violation) {
    (void)op_name;
    (void)violation;
    return Status::OK();
  }

  /// A violation that did not exist before the table mutations. Default:
  /// forwards to OnViolation, so non-diff-aware sinks see the usual stream.
  virtual Status OnViolationNew(const std::string& op_name, const Value& violation) {
    return OnViolation(op_name, violation);
  }
};

/// \brief The materializing sink: accumulates everything into a
/// QueryResult, reproducing the pre-streaming API surface.
class QueryResultSink final : public ViolationSink {
 public:
  Status OnOpBegin(const std::string& op_name) override {
    OpResult op;
    op.op_name = op_name;
    result_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status OnViolation(const std::string& op_name, const Value& violation) override {
    (void)op_name;  // OnOpBegin already opened this operation
    result_.ops.back().violations.push_back(violation);
    return Status::OK();
  }

  Status OnOpEnd(const OpSummary& summary) override {
    result_.ops.back().seconds = summary.seconds;
    return Status::OK();
  }

  Status OnDirtyEntity(const Value& entity,
                       const std::vector<std::string>& violated_ops) override {
    result_.dirty_entities.emplace_back(entity, violated_ops);
    return Status::OK();
  }

  QueryResult& result() { return result_; }

 private:
  QueryResult result_;
};

}  // namespace cleanm
