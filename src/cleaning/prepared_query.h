// PreparedQuery: the prepare-once / execute-many half of the CleanDB API.
//
// The paper's central claim is that one declarative CleanM query is
// optimized *once* and then serves repeated cleaning passes over evolving
// data. CleanDB::Prepare performs the per-query work exactly once — parse,
// monoid normalization, clause desugaring, algebra rewriting, Nest
// coalescing, schema validation — and the resulting PreparedQuery owns both
// plan forms (standalone and unified). Each Execute then only runs the
// physical plans, reusing the session's partition cache, so re-executions
// skip re-parsing, re-planning, and (on cache hits) re-partitioning.
//
// Binding is lazy: tables are resolved against the session catalog at
// execution time, so a query may be prepared before its tables are
// registered (executing then yields kKeyError), and re-registering a table
// between executions is picked up automatically via the generation bump.
// The one prepare-time constant is k-means center sampling: centers are
// sampled (deterministically) when the source table is registered at
// Prepare time and embedded in the plan, like bound parameters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cleaning/cleandb.h"
#include "cleaning/exec_options.h"
#include "cleaning/plan_builder.h"
#include "cleaning/violation_sink.h"
#include "language/ast.h"

namespace cleanm {

struct IncrementalState;

/// \brief An optimized, session-bound CleanM query (or programmatic
/// cleaning program). Create via CleanDB::Prepare / PrepareQuery /
/// PrepareDenialConstraint; must not outlive its CleanDB.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  /// Preparation status: OK for a PreparedQuery obtained from a successful
  /// Prepare (the failing case — positioned ParseError, unknown column,
  /// type error — is carried by the Result<PreparedQuery> itself), non-OK
  /// for an unprepared instance (e.g. moved-from); executing the latter
  /// returns this status.
  const Status& status() const { return status_; }

  /// The parsed query (empty for programmatic preparations).
  const CleanMQuery& query() const { return query_; }

  size_t num_operations() const { return plans_.size(); }
  std::vector<std::string> operation_names() const;

  /// Nest stages the optimizer coalesced in the unified plan forms.
  int nests_coalesced() const { return nests_coalesced_; }

  /// For queries with a SELECT plan (GROUP BY / HAVING / pure projection):
  /// the output field names whose values follow the repair-action contract
  /// (a registered repair function is called in their expression), and the
  /// FROM table those actions repair. Empty when the query repairs nothing.
  const std::vector<std::string>& repair_fields() const { return repair_fields_; }
  const std::string& repair_table() const { return repair_table_; }

  /// EXPLAIN: renders the plan forms this query would execute under `opts`
  /// (only `unify_operations` matters here) — one tree per cleaning
  /// operation, with coalesced Nest stages marked as shared and the scans'
  /// partition-cache residency expectations against the session cache's
  /// current state. No execution happens; see
  /// QueryResult::profile->ToString() for the EXPLAIN ANALYZE counterpart.
  std::string Explain(const ExecOptions& opts = {}) const;

  /// Runs the prepared plans and materializes a QueryResult (via
  /// QueryResultSink). `opts` fields override the session defaults for
  /// this call only.
  Result<QueryResult> Execute(const ExecOptions& opts = {});

  /// Runs the prepared plans, streaming violations and the dirty-entity
  /// join into `sink`. A non-OK status from the sink aborts the execution
  /// and is returned.
  Status ExecuteInto(ViolationSink& sink, const ExecOptions& opts = {});

  /// Cooperative cancellation: Cancel() from any thread makes in-flight
  /// (and future) Executes of this query unwind at the next epoch/morsel
  /// boundary with kCancelled. Sticky until Reset().
  engine::CancelToken& cancel_token() { return *cancel_token_; }

 private:
  friend class CleanDB;
  PreparedQuery() = default;

  CleanDB* db_ = nullptr;
  /// Set to OK by the Prepare factories; anything else is unprepared.
  Status status_ = Status::Internal("PreparedQuery was not prepared");
  CleanMQuery query_;
  /// Standalone per-operation plans (executed when unify is off).
  std::vector<CleaningPlan> plans_;
  /// Nest-coalesced plan roots, same order (executed when unify is on).
  std::vector<AlgOpPtr> unified_roots_;
  int nests_coalesced_ = 0;
  /// Repair bookkeeping of the SELECT plan (see accessors above).
  std::vector<std::string> repair_fields_;
  std::string repair_table_;
  /// False for the one-shot Execute convenience: the plans die with this
  /// object, so their Nest outputs must not persist in (and pollute) the
  /// session cache.
  bool persist_cache_ = true;
  /// Shared so the token survives moves of the PreparedQuery while another
  /// thread holds a reference to cancel through.
  std::shared_ptr<engine::CancelToken> cancel_token_ =
      std::make_shared<engine::CancelToken>();
  /// Cached per-Nest group state of the incremental delta path (see
  /// cleaning/incremental.h). Null when this preparation never takes the
  /// incremental path (transient programmatic wrappers); allocated by
  /// PrepareQueryImpl / PrepareDenialConstraint.
  std::shared_ptr<IncrementalState> incremental_;
};

}  // namespace cleanm
