#include "cleaning/query_profile.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace cleanm {

namespace {

std::string FmtMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendCountersJson(const MetricsCounters& c, std::string* out) {
  *out += '{';
  const char* sep = "";
#define CLEANM_X(name, fold)                              \
  *out += sep;                                            \
  *out += "\"" #name "\":" + std::to_string(c.name);      \
  sep = ",";
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  *out += '}';
}

/// Nonzero fields of `c` as "name=value name=value"; empty when all zero.
std::string NonzeroCounters(const MetricsCounters& c) {
  std::string out;
#define CLEANM_X(name, fold)                                  \
  if (c.name != 0) {                                          \
    if (!out.empty()) out += ' ';                             \
    out += #name "=" + std::to_string(c.name);                \
  }
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  return out;
}

bool IsWorkerLeafSpan(const TraceSpan& s) {
  if (s.node < 0) return false;
  return std::strcmp(s.name, "task") == 0 || std::strcmp(s.name, "produce") == 0;
}

bool IsOperatorSpan(const TraceSpan& s) {
  return std::strcmp(s.category, "operator") == 0;
}

}  // namespace

QueryProfile QueryProfile::Build(
    std::vector<TraceSpan> spans,
    const std::map<const void*, std::string>& op_labels,
    double skew_warn_factor) {
  QueryProfile profile;
  profile.spans_ = std::move(spans);
  const std::vector<TraceSpan>& all = profile.spans_;

  // Span indexes: by id, and children-by-parent adjacency.
  std::unordered_map<uint64_t, size_t> by_id;
  std::unordered_map<uint64_t, std::vector<size_t>> kids;
  by_id.reserve(all.size());
  for (size_t i = 0; i < all.size(); i++) {
    by_id.emplace(all[i].id, i);
    kids[all[i].parent].push_back(i);
  }

  // One OperatorProfile per operator-span instance, in start order (spans_
  // is start-ordered from Drain).
  std::unordered_map<uint64_t, size_t> op_of_span;  // span id -> operator idx
  for (size_t i = 0; i < all.size(); i++) {
    const TraceSpan& s = all[i];
    if (!IsOperatorSpan(s)) continue;
    OperatorProfile op;
    op.name = s.name;
    if (s.op != nullptr) {
      auto it = op_labels.find(s.op);
      if (it != op_labels.end()) op.label = it->second;
    }
    op.start_ns = s.start_ns;
    op.wall_ns = s.dur_ns;
    op.self_ns = s.dur_ns;
    op.rows_in = s.rows_in;
    op.rows_out = s.rows_out;
    op.node_rows = s.node_rows;
    if (s.has_counters) {
      op.counters = s.counters;
      op.self_counters = s.counters;
    }
    LoadReport load;
    load.rows_per_node = op.node_rows;
    op.imbalance = load.ImbalanceFactor();
    op.skew_warning =
        !op.node_rows.empty() && op.imbalance > skew_warn_factor;
    op_of_span.emplace(s.id, profile.operators_.size());
    profile.operators_.push_back(std::move(op));
  }

  // Link the operator tree: each operator's parent is its nearest ancestor
  // operator span; spans with none are roots. Self time/counters subtract
  // the direct children.
  for (const auto& [span_id, op_idx] : op_of_span) {
    const TraceSpan& s = all[by_id.at(span_id)];
    uint64_t p = s.parent;
    size_t parent_op = static_cast<size_t>(-1);
    while (p != 0) {
      auto found = op_of_span.find(p);
      if (found != op_of_span.end()) {
        parent_op = found->second;
        break;
      }
      auto pi = by_id.find(p);
      if (pi == by_id.end()) break;
      p = all[pi->second].parent;
    }
    if (parent_op == static_cast<size_t>(-1)) {
      profile.roots_.push_back(op_idx);
    } else {
      profile.operators_[parent_op].children.push_back(op_idx);
      OperatorProfile& par = profile.operators_[parent_op];
      const OperatorProfile& child = profile.operators_[op_idx];
      par.self_ns -= std::min(par.self_ns, child.wall_ns);
      par.self_counters = CountersDelta(par.self_counters, child.counters);
    }
  }
  // Deterministic ordering (the maps above iterate in hash order).
  auto by_start = [&](size_t a, size_t b) {
    return profile.operators_[a].start_ns < profile.operators_[b].start_ns;
  };
  std::sort(profile.roots_.begin(), profile.roots_.end(), by_start);
  for (auto& op : profile.operators_) {
    std::sort(op.children.begin(), op.children.end(), by_start);
  }

  // Per-node time: walk each operator's span subtree; a task/produce span
  // attributes its whole duration to (operator, node) and is not descended
  // (its nested dispatches would double-count), and descent stops at nested
  // operator spans (their time is their own).
  for (const auto& [span_id, op_idx] : op_of_span) {
    OperatorProfile& op = profile.operators_[op_idx];
    std::vector<uint64_t> stack = {span_id};
    while (!stack.empty()) {
      const uint64_t id = stack.back();
      stack.pop_back();
      auto k = kids.find(id);
      if (k == kids.end()) continue;
      for (size_t ci : k->second) {
        const TraceSpan& child = all[ci];
        if (IsOperatorSpan(child)) continue;
        if (IsWorkerLeafSpan(child)) {
          const size_t n = static_cast<size_t>(child.node);
          if (op.node_time_ns.size() <= n) op.node_time_ns.resize(n + 1, 0);
          op.node_time_ns[n] += child.dur_ns;
          continue;
        }
        stack.push_back(child.id);
      }
    }
  }
  return profile;
}

MetricsCounters QueryProfile::totals() const {
  MetricsCounters sum;
  for (const auto& op : operators_) {
#define CLEANM_X(name, fold) sum.name += op.self_counters.name;
    CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  }
  return sum;
}

std::string QueryProfile::ToString() const {
  std::string out;
  // Recursive tree render, EXPLAIN ANALYZE style.
  auto render = [&](auto&& self, size_t idx, int depth) -> void {
    const OperatorProfile& op = operators_[idx];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "-> " + op.name;
    if (!op.label.empty()) out += " [" + op.label + "]";
    out += "  (wall " + FmtMs(op.wall_ns) + " ms, self " + FmtMs(op.self_ns) +
           " ms, rows " + std::to_string(op.rows_in) + " -> " +
           std::to_string(op.rows_out) + ")";
    if (op.skew_warning) out += "  SKEW";
    out += '\n';
    const std::string pad(static_cast<size_t>(depth) * 2 + 3, ' ');
    if (!op.node_rows.empty() || !op.node_time_ns.empty()) {
      out += pad + "nodes:";
      if (!op.node_rows.empty()) {
        out += " rows[";
        for (size_t i = 0; i < op.node_rows.size(); i++) {
          if (i) out += ' ';
          out += std::to_string(op.node_rows[i]);
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "] imbalance %.2f", op.imbalance);
        out += buf;
      }
      if (!op.node_time_ns.empty()) {
        out += " time_ms[";
        for (size_t i = 0; i < op.node_time_ns.size(); i++) {
          if (i) out += ' ';
          out += FmtMs(op.node_time_ns[i]);
        }
        out += ']';
      }
      out += '\n';
    }
    const std::string counters = NonzeroCounters(op.self_counters);
    if (!counters.empty()) out += pad + "counters: " + counters + '\n';
    for (size_t c : op.children) self(self, c, depth + 1);
  };
  for (size_t r : roots_) render(render, r, 0);
  if (!roots_.empty()) {
    out += "totals: " + totals().ToString() + '\n';
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out;
  auto render = [&](auto&& self, size_t idx) -> void {
    const OperatorProfile& op = operators_[idx];
    out += "{\"name\":\"";
    AppendJsonEscaped(op.name, &out);
    out += "\",\"label\":\"";
    AppendJsonEscaped(op.label, &out);
    out += "\",\"wall_ns\":" + std::to_string(op.wall_ns);
    out += ",\"self_ns\":" + std::to_string(op.self_ns);
    out += ",\"rows_in\":" + std::to_string(op.rows_in);
    out += ",\"rows_out\":" + std::to_string(op.rows_out);
    out += ",\"node_rows\":[";
    for (size_t i = 0; i < op.node_rows.size(); i++) {
      if (i) out += ',';
      out += std::to_string(op.node_rows[i]);
    }
    out += "],\"node_time_ns\":[";
    for (size_t i = 0; i < op.node_time_ns.size(); i++) {
      if (i) out += ',';
      out += std::to_string(op.node_time_ns[i]);
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "],\"imbalance\":%.4f", op.imbalance);
    out += buf;
    out += ",\"skew_warning\":";
    out += op.skew_warning ? "true" : "false";
    out += ",\"self_counters\":";
    AppendCountersJson(op.self_counters, &out);
    out += ",\"counters\":";
    AppendCountersJson(op.counters, &out);
    out += ",\"children\":[";
    for (size_t i = 0; i < op.children.size(); i++) {
      if (i) out += ',';
      self(self, op.children[i]);
    }
    out += "]}";
  };
  out += "{\"operators\":[";
  for (size_t i = 0; i < roots_.size(); i++) {
    if (i) out += ',';
    render(render, roots_[i]);
  }
  out += "],\"totals\":";
  AppendCountersJson(totals(), &out);
  out += ",\"span_count\":" + std::to_string(spans_.size());
  out += '}';
  return out;
}

std::string QueryProfile::ChromeTraceJson() const {
  // trace_event format: a JSON array of events; ts/dur are microseconds
  // (fractional, so the nanosecond nesting is preserved exactly). One track
  // per (node, thread): pid = node + 1 (driver work at pid 0), tid = the
  // recording thread's ordinal.
  std::string out = "[";
  const char* sep = "\n";
  // Process-name metadata, one per distinct pid.
  std::vector<int> pids;
  for (const auto& s : spans_) {
    const int pid = s.node + 1;
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) pids.push_back(pid);
  }
  std::sort(pids.begin(), pids.end());
  for (int pid : pids) {
    out += sep;
    sep = ",\n";
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           (pid == 0 ? std::string("driver")
                     : "node " + std::to_string(pid - 1)) +
           "\"}}";
  }
  for (const auto& s : spans_) {
    out += sep;
    sep = ",\n";
    char buf[64];
    out += "{\"ph\":\"X\",\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(s.category, &out);
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3);
    out += buf;
    out += ",\"pid\":" + std::to_string(s.node + 1);
    out += ",\"tid\":" + std::to_string(s.thread);
    out += ",\"args\":{\"span_id\":" + std::to_string(s.id);
    out += ",\"parent\":" + std::to_string(s.parent);
    if (s.rows_in != 0) out += ",\"rows_in\":" + std::to_string(s.rows_in);
    if (s.rows_out != 0) out += ",\"rows_out\":" + std::to_string(s.rows_out);
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

Status QueryProfile::WriteChromeTrace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open trace file: " + path);
  const std::string json = ChromeTraceJson();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.close();
  if (!f) return Status::IOError("cannot write trace file: " + path);
  return Status::OK();
}

}  // namespace cleanm
