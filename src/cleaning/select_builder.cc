#include "cleaning/select_builder.h"

#include <set>

#include "monoid/eval.h"
#include "monoid/monoid.h"
#include "monoid/normalize.h"

namespace cleanm {

namespace {

/// Collects the Nest aggregations a grouped query needs while rewriting its
/// SELECT/HAVING expressions onto the Nest output tuple {key, <agg names>}.
class GroupedRewriter {
 public:
  GroupedRewriter(const FunctionRegistry* functions, std::string row_alias,
                  std::vector<ExprPtr> group_terms)
      : functions_(functions),
        row_alias_(std::move(row_alias)),
        group_terms_(std::move(group_terms)) {}

  /// Rewrites `e`: subexpressions equal to a GROUP BY term become key
  /// references, aggregate calls over the row become Var(<agg field>), and
  /// anything still referencing the row alias afterwards is a kTypeError.
  Result<ExprPtr> Rewrite(const ExprPtr& e) {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr rewritten, RewriteNode(e));
    for (const auto& v : FreeVars(rewritten)) {
      if (v == row_alias_) {
        return Status::TypeError(
            "expression references row variable '" + row_alias_ +
            "' outside an aggregate; every SELECT/HAVING term must derive "
            "from the GROUP BY keys or an aggregate call");
      }
    }
    return rewritten;
  }

  /// True when `e`'s whole subtree contains a registered repair call.
  bool SawRepairCall() const { return saw_repair_; }
  void ResetRepairFlag() { saw_repair_ = false; }

  const std::vector<NestAgg>& aggs() const { return aggs_; }

  /// The key expression a GROUP BY term `index` maps to on the Nest output.
  ExprPtr KeyRef(size_t index) const {
    if (group_terms_.size() == 1) return Var("key");
    return FieldAccess(Var("key"), "g" + std::to_string(index));
  }

  /// The grouping term of the Nest: the single GROUP BY expression, or a
  /// record {g0: t0, g1: t1, ...} for multi-key grouping (records hash and
  /// compare structurally, so exact grouping works unchanged).
  ExprPtr GroupTerm() const {
    if (group_terms_.size() == 1) return group_terms_[0];
    std::vector<std::string> names;
    std::vector<ExprPtr> values;
    for (size_t i = 0; i < group_terms_.size(); i++) {
      names.push_back("g" + std::to_string(i));
      values.push_back(group_terms_[i]);
    }
    return Record(std::move(names), std::move(values));
  }

 private:
  /// An aggregate call consumes row-level data: its name resolves as an
  /// aggregate (registered UDF aggregate, builtin monoid, or avg) and its
  /// argument's free variables stay within the FROM row. Calls over Nest
  /// outputs (e.g. count(vals)) remain scalar by this rule.
  bool IsAggregateCall(const ExprPtr& e) const {
    if (e->kind != ExprKind::kCall || e->args.size() != 1) return false;
    const bool aggregate_name =
        (functions_ && functions_->FindAggregate(e->name)) ||
        LookupMonoid(e->name).ok() || e->name == "avg";
    if (!aggregate_name) return false;
    for (const auto& v : FreeVars(e->args[0])) {
      if (v != row_alias_) return false;
    }
    return true;
  }

  bool ContainsAggregateCall(const ExprPtr& e) const {
    if (!e) return false;
    if (IsAggregateCall(e)) return true;
    if (ContainsAggregateCall(e->child) || ContainsAggregateCall(e->lhs) ||
        ContainsAggregateCall(e->rhs) || ContainsAggregateCall(e->cond) ||
        ContainsAggregateCall(e->then_e) || ContainsAggregateCall(e->else_e)) {
      return true;
    }
    for (const auto& a : e->args) {
      if (ContainsAggregateCall(a)) return true;
    }
    for (const auto& v : e->field_values) {
      if (ContainsAggregateCall(v)) return true;
    }
    return false;
  }

  /// Finds or adds the Nest aggregation (monoid, expr); returns its field.
  std::string AdoptAgg(const std::string& monoid, const ExprPtr& expr) {
    for (const auto& agg : aggs_) {
      if (agg.monoid == monoid && ExprEquals(agg.expr, expr)) return agg.name;
    }
    const std::string name = "agg" + std::to_string(aggs_.size());
    aggs_.push_back({name, monoid, expr});
    return name;
  }

  Result<ExprPtr> RewriteNode(const ExprPtr& e) {
    if (!e) return ExprPtr(nullptr);

    // GROUP BY terms rewrite to key references wherever they appear.
    for (size_t i = 0; i < group_terms_.size(); i++) {
      if (ExprEquals(e, group_terms_[i])) return KeyRef(i);
    }

    if (e->kind == ExprKind::kCall && functions_ && functions_->IsRepair(e->name)) {
      saw_repair_ = true;
    }

    if (IsAggregateCall(e)) {
      if (ContainsAggregateCall(e->args[0])) {
        return Status::TypeError("nested aggregate in '" + e->ToString() + "'");
      }
      // avg is not a monoid (and, as a builtin name, can never be shadowed
      // by a registration): collect the bag, apply the builtin avg to it
      // (nulls skipped, empty bag → null) on the Nest output.
      if (e->name == "avg") {
        return Call("avg", {Var(AdoptAgg("bag", e->args[0]))});
      }
      return Var(AdoptAgg(e->name, e->args[0]));
    }

    // Structural recursion.
    ExprPtr out = CloneExpr(e);
    CLEANM_ASSIGN_OR_RETURN(out->child, RewriteNode(e->child));
    CLEANM_ASSIGN_OR_RETURN(out->lhs, RewriteNode(e->lhs));
    CLEANM_ASSIGN_OR_RETURN(out->rhs, RewriteNode(e->rhs));
    CLEANM_ASSIGN_OR_RETURN(out->cond, RewriteNode(e->cond));
    CLEANM_ASSIGN_OR_RETURN(out->then_e, RewriteNode(e->then_e));
    CLEANM_ASSIGN_OR_RETURN(out->else_e, RewriteNode(e->else_e));
    for (size_t i = 0; i < e->args.size(); i++) {
      CLEANM_ASSIGN_OR_RETURN(out->args[i], RewriteNode(e->args[i]));
    }
    for (size_t i = 0; i < e->field_values.size(); i++) {
      CLEANM_ASSIGN_OR_RETURN(out->field_values[i], RewriteNode(e->field_values[i]));
    }
    if (e->kind == ExprKind::kComprehension) {
      return Status::NotImplemented("comprehension in SELECT position");
    }
    return out;
  }

  const FunctionRegistry* functions_;
  std::string row_alias_;
  std::vector<ExprPtr> group_terms_;
  std::vector<NestAgg> aggs_;
  bool saw_repair_ = false;
};

/// Output-field name for one SELECT item: explicit alias, else derived from
/// the expression (field / call / variable name), else positional.
std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr) {
    if (item.expr->kind == ExprKind::kField) return item.expr->name;
    if (item.expr->kind == ExprKind::kCall) return item.expr->name;
    if (item.expr->kind == ExprKind::kVar) return item.expr->name;
  }
  return "col" + std::to_string(index);
}

/// Rejects calls to aggregate-*only* names (builtin monoids like sum/max,
/// registered aggregates) in positions where no Nest will consume them —
/// ungrouped SELECT items and WHERE. Dual-natured names (count/avg, which
/// are also builtin scalars over collections) stay legal: `count(t.tags)`
/// on a list column is an ordinary scalar call. Without this, the mistake
/// surfaces only at execution as a misleading "unknown builtin function".
Status RejectStrayAggregates(const ExprPtr& e, const FunctionRegistry* functions,
                             const char* position) {
  if (!e) return Status::OK();
  if (e->kind == ExprKind::kCall) {
    const bool aggregate_only =
        ((functions && functions->FindAggregate(e->name)) ||
         LookupMonoid(e->name).ok()) &&
        !IsBuiltinFunction(e->name);
    if (aggregate_only) {
      return Status::TypeError("aggregate '" + e->name + "' in " + position +
                               " requires a GROUP BY clause");
    }
  }
  for (const ExprPtr& child :
       {e->child, e->lhs, e->rhs, e->cond, e->then_e, e->else_e}) {
    CLEANM_RETURN_NOT_OK(RejectStrayAggregates(child, functions, position));
  }
  for (const auto& a : e->args) {
    CLEANM_RETURN_NOT_OK(RejectStrayAggregates(a, functions, position));
  }
  for (const auto& v : e->field_values) {
    CLEANM_RETURN_NOT_OK(RejectStrayAggregates(v, functions, position));
  }
  return Status::OK();
}

bool ContainsRepairCall(const ExprPtr& e, const FunctionRegistry* functions) {
  if (!e || !functions) return false;
  if (e->kind == ExprKind::kCall && functions->IsRepair(e->name)) return true;
  if (ContainsRepairCall(e->child, functions) || ContainsRepairCall(e->lhs, functions) ||
      ContainsRepairCall(e->rhs, functions) || ContainsRepairCall(e->cond, functions) ||
      ContainsRepairCall(e->then_e, functions) ||
      ContainsRepairCall(e->else_e, functions)) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ContainsRepairCall(a, functions)) return true;
  }
  for (const auto& v : e->field_values) {
    if (ContainsRepairCall(v, functions)) return true;
  }
  return false;
}

}  // namespace

bool QueryWantsSelectPlan(const CleanMQuery& query) {
  if (!query.group_by.empty() || query.having) return true;
  // `SELECT * FROM t FD(...)` keeps its historical meaning: the select list
  // is the paper's "report the violations" convention, not a projection.
  return !query.HasCleaningOps();
}

Result<SelectPlan> BuildSelectPlan(const CleanMQuery& query,
                                   const FunctionRegistry* functions) {
  if (query.from.empty()) return Status::InvalidArgument("query has no FROM table");
  if (query.having && query.group_by.empty()) {
    return Status::TypeError("HAVING requires a GROUP BY clause");
  }
  const TableRef& base = query.from[0];
  // Extra FROM entries are only meaningful as CLUSTER BY dictionaries.
  if (query.from.size() > 1 && query.cluster_bys.empty()) {
    return Status::NotImplemented("multi-table SELECT is not supported");
  }

  SelectPlan out;
  out.source_table = base.table;

  // Monoid-level normalization (R1–R9) of every user expression before the
  // algebra is built, mirroring the cleaning-clause pipeline.
  CLEANM_RETURN_NOT_OK(RejectStrayAggregates(query.where, functions, "WHERE"));
  AlgOpPtr plan = Scan(base.table, base.alias);
  if (query.where) plan = SelectOp(plan, Normalize(query.where));

  std::vector<ExprPtr> head_exprs;
  std::vector<std::string> head_names;
  auto adopt_name = [&head_names](std::string name) {
    // Keep projection field names unique (aliases can collide with derived
    // names); later duplicates get a positional suffix.
    int suffix = 1;
    std::string candidate = name;
    while (true) {
      bool taken = false;
      for (const auto& existing : head_names) {
        if (existing == candidate) {
          taken = true;
          break;
        }
      }
      if (!taken) break;
      candidate = name + "_" + std::to_string(++suffix);
    }
    head_names.push_back(candidate);
    return candidate;
  };

  if (query.group_by.empty()) {
    // Ungrouped projection: a single `*` keeps whole records; otherwise a
    // record per row. Aggregate calls need GROUP BY.
    if (query.select_list.size() == 1 && query.select_list[0].star) {
      out.plan.op_name = "SELECT";
      out.plan.plan = ReduceOp(std::move(plan), "list", Var(base.alias));
      out.output_fields = {base.alias};
      return out;
    }
    for (size_t i = 0; i < query.select_list.size(); i++) {
      const SelectItem& item = query.select_list[i];
      if (item.star) {
        return Status::NotImplemented(
            "SELECT * alongside other select items is not supported");
      }
      CLEANM_RETURN_NOT_OK(
          RejectStrayAggregates(item.expr, functions, "SELECT"));
      ExprPtr e = Normalize(item.expr);
      const std::string name = adopt_name(ItemName(item, i));
      if (ContainsRepairCall(e, functions)) out.repair_fields.push_back(name);
      head_exprs.push_back(std::move(e));
    }
    out.plan.op_name = "SELECT";
    out.plan.plan = ReduceOp(std::move(plan), "list",
                             Record(head_names, std::move(head_exprs)));
    out.output_fields = head_names;
    return out;
  }

  // Grouped query: collect aggregations while rewriting items and HAVING
  // onto the Nest output tuple.
  std::vector<ExprPtr> group_terms;
  for (const auto& g : query.group_by) group_terms.push_back(Normalize(g));
  GroupedRewriter rewriter(functions, base.alias, group_terms);

  // Alias → rewritten item expression, so HAVING can reference select
  // aliases (`... count(c) AS n ... HAVING n > 1`).
  std::vector<std::pair<std::string, ExprPtr>> alias_map;

  for (size_t i = 0; i < query.select_list.size(); i++) {
    const SelectItem& item = query.select_list[i];
    if (item.star) {
      return Status::TypeError("SELECT * cannot be combined with GROUP BY");
    }
    rewriter.ResetRepairFlag();
    CLEANM_ASSIGN_OR_RETURN(ExprPtr rewritten, rewriter.Rewrite(Normalize(item.expr)));
    const std::string name = adopt_name(ItemName(item, i));
    if (rewriter.SawRepairCall()) out.repair_fields.push_back(name);
    if (!item.alias.empty()) alias_map.emplace_back(item.alias, rewritten);
    head_exprs.push_back(std::move(rewritten));
  }

  ExprPtr having;
  if (query.having) {
    ExprPtr h = Normalize(query.having);
    for (const auto& [alias, rewritten] : alias_map) {
      h = Substitute(h, alias, rewritten);
    }
    CLEANM_ASSIGN_OR_RETURN(having, rewriter.Rewrite(h));
  }

  GroupSpec group;
  group.algo = FilteringAlgo::kExactKey;
  group.term = rewriter.GroupTerm();
  AlgOpPtr nest = NestOp(std::move(plan), std::move(group), rewriter.aggs(),
                         std::move(having), "key");

  out.plan.op_name = "SELECT";
  out.plan.plan =
      ReduceOp(std::move(nest), "list", Record(head_names, std::move(head_exprs)));
  out.output_fields = head_names;
  return out;
}

}  // namespace cleanm
