#include "engine/aggregate.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace cleanm::engine {

const char* AggregateStrategyName(AggregateStrategy s) {
  switch (s) {
    case AggregateStrategy::kLocalCombine: return "local-combine";
    case AggregateStrategy::kSortShuffle: return "sort-shuffle";
    case AggregateStrategy::kHashShuffle: return "hash-shuffle";
  }
  return "?";
}

Value RowsAccInit(const Row& row) {
  ValueList one;
  ValueList row_vals(row.begin(), row.end());
  one.push_back(Value(std::move(row_vals)));
  return Value(std::move(one));
}

Value RowsAccMerge(Value a, const Value& b) {
  auto& list = a.MutableList();
  const auto& other = b.AsList();
  list.insert(list.end(), other.begin(), other.end());
  return a;
}

std::function<Value(const Row&)> DistinctAccInit(
    std::function<Value(const Row&)> project) {
  return [project = std::move(project)](const Row& row) {
    return Value(ValueList{project(row)});
  };
}

Value DistinctAccMerge(Value a, const Value& b) {
  auto& list = a.MutableList();
  for (const auto& v : b.AsList()) {
    bool found = false;
    for (const auto& existing : list) {
      if (existing.Equals(v)) {
        found = true;
        break;
      }
    }
    if (!found) list.push_back(v);
  }
  return a;
}

namespace {

/// Hash map keyed by Value (deep hash/equality).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};
using AccMap = std::unordered_map<Value, Value, ValueHash, ValueEq>;

/// Aggregates one partition's rows into an accumulator map.
AccMap LocalAggregate(const Partition& rows, const AggregateSpec& spec) {
  AccMap accs;
  for (const auto& row : rows) {
    Value key = spec.key(row);
    auto it = accs.find(key);
    if (it == accs.end()) {
      accs.emplace(std::move(key), spec.init(row));
    } else {
      it->second = spec.merge(std::move(it->second), spec.init(row));
    }
  }
  return accs;
}

Partitioned FinalizePerNode(Cluster& cluster, std::vector<AccMap>& per_node,
                            const AggregateSpec& spec) {
  Partitioned out(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    out[n].reserve(per_node[n].size());
    for (const auto& [key, acc] : per_node[n]) {
      spec.finalize(key, acc, &out[n]);
    }
    cluster.metrics().groups_built += per_node[n].size();
  });
  return out;
}

/// Encodes a (key, accumulator) partial as a two-value row for shuffling.
Row EncodePartial(const Value& key, Value acc) {
  return Row{key, std::move(acc)};
}

/// CleanDB strategy: local combine → shuffle partials → merge → finalize.
Partitioned RunLocalCombine(Cluster& cluster, const Partitioned& in,
                            const AggregateSpec& spec, LoadReport* load) {
  // Phases 1+2 in one dispatch: node-local aggregation (no data movement)
  // immediately encoded as shuffle-ready partials, one row per (node, key).
  Partitioned partials(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    AccMap local = LocalAggregate(in[n], spec);
    partials[n].reserve(local.size());
    for (auto& [key, acc] : local) {
      partials[n].push_back(EncodePartial(key, std::move(acc)));
    }
  });
  Partitioned routed =
      cluster.Shuffle(partials, [](const Row& r) { return r[0].Hash(); });
  if (load != nullptr) *load = cluster.Load(routed);

  // Phase 3: merge partials per key, then finalize.
  std::vector<AccMap> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    for (auto& row : routed[n]) {
      auto it = merged[n].find(row[0]);
      if (it == merged[n].end()) {
        merged[n].emplace(row[0], std::move(row[1]));
      } else {
        it->second = spec.merge(std::move(it->second), row[1]);
      }
    }
  });
  return FinalizePerNode(cluster, merged, spec);
}

/// Spark SQL strategy: sample key quantiles, range-partition all raw rows
/// (the shuffle stage of a sort-based aggregation), aggregate per node.
Partitioned RunSortShuffle(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, LoadReport* load) {
  // Driver-side sample of keys to derive range boundaries, mimicking
  // Spark's RangePartitioner.
  std::vector<Value> sample;
  constexpr size_t kSampleStride = 17;
  size_t i = 0;
  for (const auto& p : in) {
    for (const auto& row : p) {
      if (i++ % kSampleStride == 0) sample.push_back(spec.key(row));
    }
  }
  std::sort(sample.begin(), sample.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  const size_t n_nodes = cluster.num_nodes();
  std::vector<Value> bounds;  // n_nodes - 1 split points
  for (size_t b = 1; b < n_nodes && !sample.empty(); b++) {
    bounds.push_back(sample[b * sample.size() / n_nodes]);
  }
  auto range_of = [&bounds](const Value& key) -> uint64_t {
    // First bound greater than the key determines the range. Equal keys all
    // map to the same range — the property that makes hot keys pile up.
    size_t lo = 0;
    for (; lo < bounds.size(); lo++) {
      if (key.Compare(bounds[lo]) <= 0) break;
    }
    return lo;
  };

  Partitioned routed =
      cluster.Shuffle(in, [&](const Row& r) { return range_of(spec.key(r)); });
  if (load != nullptr) *load = cluster.Load(routed);

  // Node-local sort by key then aggregate runs of equal keys (the "sort"
  // part of sort-based aggregation).
  std::vector<AccMap> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    Partition rows = routed[n];
    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      return spec.key(a).Compare(spec.key(b)) < 0;
    });
    merged[n] = LocalAggregate(rows, spec);
  });
  return FinalizePerNode(cluster, merged, spec);
}

/// BigDansing strategy: route every raw row by key hash, aggregate per node.
Partitioned RunHashShuffle(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, LoadReport* load) {
  Partitioned routed =
      cluster.Shuffle(in, [&](const Row& r) { return spec.key(r).Hash(); });
  if (load != nullptr) *load = cluster.Load(routed);
  std::vector<AccMap> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) { merged[n] = LocalAggregate(routed[n], spec); });
  return FinalizePerNode(cluster, merged, spec);
}

}  // namespace

Partitioned AggregateByKey(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, AggregateStrategy strategy,
                           LoadReport* load) {
  CLEANM_CHECK(spec.key && spec.init && spec.merge && spec.finalize);
  switch (strategy) {
    case AggregateStrategy::kLocalCombine:
      return RunLocalCombine(cluster, in, spec, load);
    case AggregateStrategy::kSortShuffle:
      return RunSortShuffle(cluster, in, spec, load);
    case AggregateStrategy::kHashShuffle:
      return RunHashShuffle(cluster, in, spec, load);
  }
  CLEANM_CHECK(false);
  return {};
}

}  // namespace cleanm::engine
