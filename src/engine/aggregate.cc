#include "engine/aggregate.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "engine/fault.h"
#include "storage/pagestore/spill.h"

namespace cleanm::engine {

const char* AggregateStrategyName(AggregateStrategy s) {
  switch (s) {
    case AggregateStrategy::kLocalCombine: return "local-combine";
    case AggregateStrategy::kSortShuffle: return "sort-shuffle";
    case AggregateStrategy::kHashShuffle: return "hash-shuffle";
  }
  return "?";
}

Value RowsAccInit(const Row& row) {
  ValueList one;
  ValueList row_vals(row.begin(), row.end());
  one.push_back(Value(std::move(row_vals)));
  return Value(std::move(one));
}

Value RowsAccMerge(Value a, const Value& b) {
  auto& list = a.MutableList();
  const auto& other = b.AsList();
  list.insert(list.end(), other.begin(), other.end());
  return a;
}

std::function<Value(const Row&)> DistinctAccInit(
    std::function<Value(const Row&)> project) {
  return [project = std::move(project)](const Row& row) {
    return Value(ValueList{project(row)});
  };
}

Value DistinctAccMerge(Value a, const Value& b) {
  auto& list = a.MutableList();
  for (const auto& v : b.AsList()) {
    bool found = false;
    for (const auto& existing : list) {
      if (existing.Equals(v)) {
        found = true;
        break;
      }
    }
    if (!found) list.push_back(v);
  }
  return a;
}

namespace {

/// Folds one row: key and unit are both evaluated *before* the map is
/// touched, so a throwing row (poison data under the quarantine hook)
/// leaves the accumulator state untouched.
void FoldOne(OrderedAccs* accs, const Row& row, const AggregateSpec& spec) {
  Value key = spec.key(row);
  Value unit = spec.init(row);
  auto it = accs->map.find(key);
  if (it == accs->map.end()) {
    accs->order.push_back(key);
    accs->map.emplace(std::move(key), std::move(unit));
  } else {
    it->second = spec.merge(std::move(it->second), unit);
  }
}

/// Folds rows into an accumulator map in row order (shared by the
/// whole-partition and morsel-fed paths, so their fold sequences — and the
/// map's growth/iteration order — cannot diverge). `node` / `first_ordinal`
/// identify the rows for the on_row_error hook (ordinal = position within
/// the node's fold stream).
void AccumulateRows(OrderedAccs* accs, const Partition& rows, const AggregateSpec& spec,
                    size_t node, size_t first_ordinal = 0) {
  if (!spec.on_row_error) {
    for (const auto& row : rows) FoldOne(accs, row, spec);
    return;
  }
  for (size_t i = 0; i < rows.size(); i++) {
    try {
      FoldOne(accs, rows[i], spec);
    } catch (const StatusException&) {
      throw;  // cancellation / injected unavailability is not a poison row
    } catch (const std::exception& e) {
      Status st = spec.on_row_error(node, first_ordinal + i, rows[i], e);
      if (!st.ok()) throw StatusException(std::move(st));
    }
  }
}

/// Aggregates one partition's rows into an accumulator map.
OrderedAccs LocalAggregate(const Partition& rows, const AggregateSpec& spec,
                           size_t node) {
  OrderedAccs accs;
  AccumulateRows(&accs, rows, spec, node);
  return accs;
}

Partitioned FinalizePerNode(Cluster& cluster, std::vector<OrderedAccs>& per_node,
                            const AggregateSpec& spec) {
  Partitioned out(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    out[n].reserve(per_node[n].map.size());
    for (const auto& key : per_node[n].order) {
      spec.finalize(key, per_node[n].map.find(key)->second, &out[n]);
    }
    cluster.metrics().groups_built += per_node[n].map.size();
  });
  return out;
}

/// Encodes a (key, accumulator) partial as a two-value row for shuffling.
Row EncodePartial(const Value& key, Value acc) {
  return Row{key, std::move(acc)};
}

/// Drains `accs` into shuffle-ready partial rows, one per key in
/// first-occurrence order (the accumulators are moved out; `accs` is spent).
void EncodePartials(OrderedAccs* accs, Partition* out) {
  out->reserve(out->size() + accs->order.size());
  for (const auto& key : accs->order) {
    out->push_back(EncodePartial(key, std::move(accs->map.find(key)->second)));
  }
}

/// The local-combine tail shared with MorselAggregator::Finish: shuffle the
/// encoded partials by key hash, merge per key, finalize.
Partitioned CombinePartialsAndFinalize(Cluster& cluster, const Partitioned& partials,
                                       const AggregateSpec& spec, LoadReport* load) {
  Partitioned routed =
      cluster.Shuffle(partials, [](const Row& r) { return r[0].Hash(); });
  if (load != nullptr) *load = cluster.Load(routed);

  // Phase 3: merge partials per key, then finalize. The merged state keys
  // finalize order by first arrival in the routed stream (OrderedAccs),
  // which depends only on the shuffle's deterministic routing — never on
  // map internals.
  std::vector<OrderedAccs> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    for (auto& row : routed[n]) {
      auto it = merged[n].map.find(row[0]);
      if (it == merged[n].map.end()) {
        merged[n].order.push_back(row[0]);
        merged[n].map.emplace(row[0], std::move(row[1]));
      } else {
        it->second = spec.merge(std::move(it->second), row[1]);
      }
    }
  });
  return FinalizePerNode(cluster, merged, spec);
}

/// CleanDB strategy: local combine → shuffle partials → merge → finalize.
Partitioned RunLocalCombine(Cluster& cluster, const Partitioned& in,
                            const AggregateSpec& spec, LoadReport* load) {
  // Phases 1+2 in one dispatch: node-local aggregation (no data movement)
  // immediately encoded as shuffle-ready partials, one row per (node, key).
  Partitioned partials(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    OrderedAccs local = LocalAggregate(in[n], spec, n);
    EncodePartials(&local, &partials[n]);
  });
  return CombinePartialsAndFinalize(cluster, partials, spec, load);
}

/// Spark SQL strategy: sample key quantiles, range-partition all raw rows
/// (the shuffle stage of a sort-based aggregation), aggregate per node.
Partitioned RunSortShuffle(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, LoadReport* load) {
  // Driver-side sample of keys to derive range boundaries, mimicking
  // Spark's RangePartitioner.
  std::vector<Value> sample;
  constexpr size_t kSampleStride = 17;
  size_t i = 0;
  for (const auto& p : in) {
    for (const auto& row : p) {
      if (i++ % kSampleStride == 0) sample.push_back(spec.key(row));
    }
  }
  std::sort(sample.begin(), sample.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  const size_t n_nodes = cluster.num_nodes();
  std::vector<Value> bounds;  // n_nodes - 1 split points
  for (size_t b = 1; b < n_nodes && !sample.empty(); b++) {
    bounds.push_back(sample[b * sample.size() / n_nodes]);
  }
  auto range_of = [&bounds](const Value& key) -> uint64_t {
    // First bound greater than the key determines the range. Equal keys all
    // map to the same range — the property that makes hot keys pile up.
    size_t lo = 0;
    for (; lo < bounds.size(); lo++) {
      if (key.Compare(bounds[lo]) <= 0) break;
    }
    return lo;
  };

  Partitioned routed =
      cluster.Shuffle(in, [&](const Row& r) { return range_of(spec.key(r)); });
  if (load != nullptr) *load = cluster.Load(routed);

  // Node-local sort by key then aggregate runs of equal keys (the "sort"
  // part of sort-based aggregation).
  std::vector<OrderedAccs> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    Partition rows = routed[n];
    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      return spec.key(a).Compare(spec.key(b)) < 0;
    });
    merged[n] = LocalAggregate(rows, spec, n);
  });
  return FinalizePerNode(cluster, merged, spec);
}

/// BigDansing strategy: route every raw row by key hash, aggregate per node.
Partitioned RunHashShuffle(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, LoadReport* load) {
  Partitioned routed =
      cluster.Shuffle(in, [&](const Row& r) { return spec.key(r).Hash(); });
  if (load != nullptr) *load = cluster.Load(routed);
  std::vector<OrderedAccs> merged(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) { merged[n] = LocalAggregate(routed[n], spec, n); });
  return FinalizePerNode(cluster, merged, spec);
}

}  // namespace

Partitioned AggregateByKey(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, AggregateStrategy strategy,
                           LoadReport* load) {
  CLEANM_CHECK(spec.key && spec.init && spec.merge && spec.finalize);
  switch (strategy) {
    case AggregateStrategy::kLocalCombine:
      return RunLocalCombine(cluster, in, spec, load);
    case AggregateStrategy::kSortShuffle:
      return RunSortShuffle(cluster, in, spec, load);
    case AggregateStrategy::kHashShuffle:
      return RunHashShuffle(cluster, in, spec, load);
  }
  CLEANM_CHECK(false);
  return {};
}

MorselAggregator::MorselAggregator(Cluster& cluster, AggregateSpec spec,
                                   AggregateStrategy strategy, SpillContext* spill)
    : cluster_(cluster),
      spec_(std::move(spec)),
      strategy_(strategy),
      spill_(spill) {
  CLEANM_CHECK(spec_.key && spec_.init && spec_.merge && spec_.finalize);
  if (strategy_ == AggregateStrategy::kLocalCombine) {
    per_node_.resize(cluster_.num_nodes());
    fold_base_.assign(cluster_.num_nodes(), 0);
    spilled_.resize(cluster_.num_nodes());
  } else {
    buffered_.resize(cluster_.num_nodes());
  }
}

void MorselAggregator::MaybeSpill(size_t node) {
  if (spill_ == nullptr || !spill_->enabled()) return;
  OrderedAccs& accs = per_node_[node];
  uint64_t bytes = 0;
  for (const auto& key : accs.order) {
    bytes += key.ByteSize() + accs.map.find(key)->second.ByteSize();
  }
  // Per-node share: every node's breaker state competes for the one pool
  // budget, so a node spills once N such states would exceed it.
  if (!spill_->ShouldSpill(bytes, per_node_.size())) return;
  Partition partials;
  EncodePartials(&accs, &partials);
  accs.map.clear();
  accs.order.clear();
  Result<std::vector<PageSpan>> spans = spill_->SpillRows(partials);
  if (!spans.ok()) throw StatusException(spans.status());
  spilled_[node].push_back(spans.MoveValue());
}

void MorselAggregator::Accumulate(size_t node, Partition rows) {
  if (strategy_ == AggregateStrategy::kLocalCombine) {
    AccumulateRows(&per_node_[node], rows, spec_, node, fold_base_[node]);
    fold_base_[node] += rows.size();
    MaybeSpill(node);
    return;
  }
  // The shuffle-all-rows baselines route every raw row: nothing to fold
  // until all rows are present, so buffer (the materializing behavior the
  // strategy implies anyway) — splicing the handed-over morsel, not
  // copying it.
  buffered_[node].insert(buffered_[node].end(),
                         std::make_move_iterator(rows.begin()),
                         std::make_move_iterator(rows.end()));
}

Partitioned MorselAggregator::Finish(LoadReport* load) {
  if (strategy_ != AggregateStrategy::kLocalCombine) {
    return AggregateByKey(cluster_, buffered_, spec_, strategy_, load);
  }
  // Encode the partials exactly as RunLocalCombine's phase 2 does — same
  // first-occurrence key order, since the per-node fold sequence was
  // identical. Spilled generations come first, in spill order: their
  // concatenation with the live tail replays the unspilled key sequence
  // (a key's later occurrences merge into later generations, and the
  // downstream per-key merge is associative), so results stay
  // bit-identical whether or not the budget forced spills.
  Partitioned partials(cluster_.num_nodes());
  cluster_.RunOnNodes([&](size_t n) {
    for (const auto& generation : spilled_[n]) {
      Status st = spill_->ReadBack(generation, &partials[n]);
      if (!st.ok()) throw StatusException(std::move(st));
    }
    EncodePartials(&per_node_[n], &partials[n]);
  });
  return CombinePartialsAndFinalize(cluster_, partials, spec_, load);
}

}  // namespace cleanm::engine
