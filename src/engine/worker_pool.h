// Persistent worker pool: the thread substrate of the virtual cluster.
//
// One long-lived thread per virtual node. Operators dispatch a task epoch
// (one closure invocation per worker) instead of spawning fresh threads, so
// a multi-operator unified plan pays thread startup once per query session
// rather than once per operator call. See DESIGN.md, "Thread model".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cleanm::engine {

/// \brief Fixed-size pool of long-lived workers driven by task epochs.
///
/// Dispatch model: the driver publishes one closure per epoch; every worker
/// runs it exactly once with its own worker id, then decrements a completion
/// latch. Epochs are serialized — dispatching while one is in flight first
/// waits for it to drain. Exceptions thrown by workers are captured and the
/// first one is rethrown on the driver in Wait()/Run().
///
/// Multi-driver safety: the pool serves one driver thread at a time. A
/// Dispatch from a thread that does not hold driver ownership first acquires
/// it (blocking until the current owner's Wait() releases), so two sessions
/// can never adopt each other's epoch, completion latch, or captured error.
/// TryAcquireDriver() lets callers probe for ownership without blocking and
/// fall back to running the closure inline on their own thread.
///
/// Re-entrancy: Dispatch()/Run() called from inside one of this pool's own
/// workers (an operator nested in a task) executes the closure inline on the
/// calling thread for all worker ids instead of deadlocking on the busy
/// pool. The inline run never touches the outer epoch's completion latch;
/// its first exception parks in a thread-local slot that the paired Wait()
/// rethrows, so the enclosing task surfaces it like any other worker error.
class WorkerPool {
 public:
  explicit WorkerPool(size_t num_workers);

  /// Drains any in-flight epoch, then stops and joins all workers. Errors
  /// from an unwaited epoch are swallowed (destructors cannot throw).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Dispatches fn as the next epoch and blocks until every worker has run
  /// fn(worker_id). Rethrows the first worker exception, if any.
  void Run(const std::function<void(size_t)>& fn);

  /// Publishes fn as the next epoch without waiting for completion (blocks
  /// only until any *previous* epoch drains). Acquires driver ownership if
  /// the calling thread does not hold it. Pair with Wait().
  void Dispatch(std::function<void(size_t)> fn);

  /// Blocks until the in-flight epoch (if any) completes; rethrows the
  /// first captured worker exception and releases driver ownership.
  void Wait();

  /// Non-blocking probe for driver ownership: true when the calling thread
  /// now owns (or already owned) the driver slot. On success the caller
  /// must reach a Wait() (e.g. via Dispatch+Wait or Run) to release it.
  bool TryAcquireDriver();

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop(size_t id);
  void AcquireDriver();
  void ReleaseDriver();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new epoch is published
  std::condition_variable done_cv_;  ///< driver: the epoch latch reached zero
  std::function<void(size_t)> task_;
  uint64_t epoch_ = 0;
  size_t pending_ = 0;  ///< completion latch for the current epoch
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;

  /// Driver-ownership lock: which external thread may publish epochs.
  mutable std::mutex driver_mu_;
  std::condition_variable driver_cv_;
  bool driver_held_ = false;
  std::thread::id driver_owner_;
};

}  // namespace cleanm::engine
