// Fault model for the virtual cluster: deterministic fault injection,
// cooperative cancellation/deadlines, and the poison-row quarantine.
//
// The paper's comprehensions compile to per-node local phases merged by
// associative monoid merges, so re-executing one node's partition after a
// failed task attempt reproduces the exact same partial — the property the
// retry path below relies on (see DESIGN.md, "Fault model & recovery").
// Failures are *injected* (this cluster is a simulator): a seeded
// FaultInjector decides per task attempt whether the attempt fails with
// kUnavailable or suffers a latency spike, deterministically in
// (seed, node, attempt#), so every failure scenario replays bit-identically
// in tests and CI.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cleanm::engine {

/// \brief Exception carrying a Status through the worker substrate.
///
/// The engine propagates worker errors as exceptions (WorkerPool captures
/// and rethrows them on the driver); the session layer catches this type at
/// its boundary and returns the carried Status, so kUnavailable /
/// kCancelled / kDeadlineExceeded surface as ordinary error Statuses.
class StatusException : public std::runtime_error {
 public:
  explicit StatusException(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Thrown when a node's task attempt fails (injected kUnavailable) and, if
/// retries were available, stayed failed past max_task_retries.
class NodeUnavailableError : public StatusException {
 public:
  NodeUnavailableError(size_t node, std::string msg)
      : StatusException(Status::Unavailable(std::move(msg))), node_(node) {}
  size_t node() const { return node_; }

 private:
  size_t node_;
};

/// Fault-injection and recovery knobs (ClusterOptions::fault; overridable
/// per execution through ExecOptions).
struct FaultOptions {
  /// Probability that any one task attempt fails with kUnavailable.
  double failure_probability = 0.0;
  /// Seed for the deterministic per-(node, attempt) failure/spike decisions.
  uint64_t seed = 0;
  /// When ≥ 0, faults fire only on this node (targeted-node trigger).
  int target_node = -1;
  /// Targeted trigger: a node's first K task attempts fail deterministically
  /// (on top of failure_probability). Combined with target_node this scripts
  /// exact retry / blacklist scenarios.
  uint64_t fail_first_attempts = 0;
  /// Probability that a task attempt sleeps latency_spike_ns before running
  /// (a slow node rather than a dead one).
  double latency_spike_probability = 0.0;
  uint64_t latency_spike_ns = 0;
  /// Failed attempts retried per task before the failure is fatal
  /// (kUnavailable propagates to the execution).
  size_t max_task_retries = 3;
  /// Base of the capped exponential retry backoff: attempt k sleeps
  /// retry_backoff_ns << min(k, 6). 0 disables the sleep.
  uint64_t retry_backoff_ns = 20000;
  /// Consecutive failures after which a node is blacklisted: it stops
  /// failing (its partitions' work runs on the surviving pool) and new
  /// partitionings route around it. 0 = never blacklist.
  size_t node_blacklist_threshold = 0;

  /// True when any injection can fire — the retry wrapper's fast-path gate.
  bool enabled() const {
    return failure_probability > 0 || fail_first_attempts > 0 ||
           latency_spike_probability > 0;
  }
};

/// \brief Seeded per-node fault state owned by Cluster. Thread-safe for
/// concurrent task attempts; option changes are driver-only (the session
/// layer serializes them behind its exclusive config lock).
class FaultInjector {
 public:
  explicit FaultInjector(size_t num_nodes, FaultOptions options = {});

  /// Driver-only, between epochs. Keeps per-node counters and blacklist
  /// state (a blacklisted node stays out of service for the session).
  void SetOptions(const FaultOptions& options) { options_ = options; }
  const FaultOptions& options() const { return options_; }

  struct AttemptOutcome {
    bool fail = false;               ///< attempt must fail with kUnavailable
    bool newly_blacklisted = false;  ///< this failure crossed the threshold
  };

  /// Called at the start of each task attempt on `node`: applies any
  /// latency spike (sleeps), then decides deterministically whether the
  /// attempt fails, updating the consecutive-failure / blacklist state.
  AttemptOutcome OnTaskAttempt(size_t node);

  bool blacklisted(size_t node) const {
    return node < nodes_ && state_[node].blacklisted.load(std::memory_order_acquire);
  }
  /// Cheap gate for the shuffle/parallelize re-routing paths.
  bool AnyBlacklisted() const {
    return blacklisted_count_.load(std::memory_order_acquire) > 0;
  }

 private:
  struct NodeState {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> consecutive_failures{0};
    std::atomic<bool> blacklisted{false};
  };

  FaultOptions options_;
  size_t nodes_;
  std::unique_ptr<NodeState[]> state_;
  std::atomic<size_t> blacklisted_count_{0};
};

/// \brief Cooperative cancellation flag shared between a driver and the
/// threads that may cancel it. Exposed on PreparedQuery; sticky until
/// Reset().
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief One execution's cancellation sources: a CancelToken and/or a
/// deadline. Checked at epoch boundaries (every task attempt), at morsel
/// boundaries (PumpToDriver's drain loop), and inside simulated network
/// sleeps, so a cancelled or overdue execution unwinds promptly through the
/// existing abort/join protocol.
struct ExecControl {
  const CancelToken* token = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  Status Check() const {
    if (token && token->cancelled()) {
      return Status::Cancelled("execution cancelled via CancelToken");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("ExecOptions::deadline_ns elapsed");
    }
    return Status::OK();
  }
};

/// \brief RAII: installs an ExecControl for the calling thread, exactly the
/// MetricsScope pattern — Cluster fan-outs capture Current() on the driver
/// and re-install it on the workers running that driver's closures.
class ExecControlScope {
 public:
  explicit ExecControlScope(const ExecControl* control);
  ~ExecControlScope();
  ExecControlScope(const ExecControlScope&) = delete;
  ExecControlScope& operator=(const ExecControlScope&) = delete;

  static const ExecControl* Current();

 private:
  const ExecControl* prev_;
};

/// One poison row recorded by the quarantine.
struct QuarantinedRow {
  std::string table;  ///< source label: scan table name, "join", or "nest"
  size_t node = 0;    ///< node whose partition held the row
  size_t row = 0;     ///< row ordinal within that node's source stream
  std::string error;  ///< what the compiled expression / UDF threw
};

/// \brief Per-execution record of poison rows: a row whose compiled
/// expression or UDF throws is recorded here and skipped instead of
/// aborting the execution, up to a hard cap. Thread-safe (producers on
/// several nodes quarantine concurrently).
class QuarantineSink {
 public:
  explicit QuarantineSink(size_t max_rows) : max_rows_(max_rows) {}

  /// Records one poison row. OK = row quarantined, caller skips it; error
  /// (kInternal) = the cap is exhausted and the execution must abort.
  Status Record(QuarantinedRow row);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
  }
  std::vector<QuarantinedRow> TakeRows() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(rows_);
  }

 private:
  size_t max_rows_;
  mutable std::mutex mu_;
  std::vector<QuarantinedRow> rows_;
};

}  // namespace cleanm::engine
