#include "engine/worker_pool.h"

#include "common/status.h"

namespace cleanm::engine {

namespace {
/// Set for the duration of each worker's life; lets Run() detect calls made
/// from inside a task of the same pool and fall back to inline execution.
thread_local const WorkerPool* tls_current_pool = nullptr;

/// First exception of a nested inline Dispatch made from a worker thread.
/// The nested run must not touch the outer epoch's completion latch or
/// first_error_ slot, so its error parks here until the paired Wait().
thread_local std::exception_ptr tls_nested_error = nullptr;
}  // namespace

WorkerPool::WorkerPool(size_t num_workers) {
  CLEANM_CHECK(num_workers > 0);
  workers_.reserve(num_workers);
  for (size_t id = 0; id < num_workers; id++) {
    workers_.emplace_back(&WorkerPool::WorkerLoop, this, id);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Let a dispatched-but-unwaited epoch drain before stopping: workers
    // always prefer a pending epoch over the stop flag, but waiting here
    // keeps the shutdown ordering obvious and the latch accounting simple.
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::WorkerLoop(size_t id) {
  tls_current_pool = this;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (epoch_ != seen) {
      seen = epoch_;
      lock.unlock();
      try {
        task_(id);
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
  }
}

void WorkerPool::AcquireDriver() {
  const auto me = std::this_thread::get_id();
  std::unique_lock<std::mutex> lock(driver_mu_);
  if (driver_held_ && driver_owner_ == me) return;
  driver_cv_.wait(lock, [&] { return !driver_held_; });
  driver_held_ = true;
  driver_owner_ = me;
}

bool WorkerPool::TryAcquireDriver() {
  const auto me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(driver_mu_);
  if (driver_held_) return driver_owner_ == me;
  driver_held_ = true;
  driver_owner_ = me;
  return true;
}

void WorkerPool::ReleaseDriver() {
  {
    std::lock_guard<std::mutex> lock(driver_mu_);
    if (!driver_held_ || driver_owner_ != std::this_thread::get_id()) return;
    driver_held_ = false;
  }
  driver_cv_.notify_one();
}

void WorkerPool::Dispatch(std::function<void(size_t)> fn) {
  CLEANM_CHECK(fn != nullptr);
  if (OnWorkerThread()) {
    // Nested dispatch from one of our own tasks: the pool is busy running
    // the enclosing epoch, so execute inline on the calling thread. The
    // completion latch belongs to the outer epoch and must not be touched;
    // the first exception parks in the thread-local slot for Wait().
    // Starting a new nested dispatch discards any error a previous,
    // never-waited-for nested dispatch abandoned — mirroring how the driver
    // path resets first_error_ per epoch.
    tls_nested_error = nullptr;
    for (size_t id = 0; id < workers_.size(); id++) {
      try {
        fn(id);
      } catch (...) {
        if (!tls_nested_error) tls_nested_error = std::current_exception();
      }
    }
    return;
  }
  AcquireDriver();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });  // serialize epochs
    task_ = std::move(fn);
    first_error_ = nullptr;
    pending_ = workers_.size();
    epoch_++;
  }
  work_cv_.notify_all();
}

void WorkerPool::Wait() {
  if (OnWorkerThread()) {
    // Completing a nested inline Dispatch: surface its parked error to the
    // enclosing task (which the outer epoch then captures as usual).
    std::exception_ptr error = tls_nested_error;
    tls_nested_error = nullptr;
    if (error) std::rethrow_exception(error);
    return;
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  ReleaseDriver();
  if (error) std::rethrow_exception(error);
}

bool WorkerPool::OnWorkerThread() const { return tls_current_pool == this; }

void WorkerPool::Run(const std::function<void(size_t)>& fn) {
  Dispatch(fn);
  Wait();
}

}  // namespace cleanm::engine
