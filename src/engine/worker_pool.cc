#include "engine/worker_pool.h"

#include "common/status.h"

namespace cleanm::engine {

namespace {
/// Set for the duration of each worker's life; lets Run() detect calls made
/// from inside a task of the same pool and fall back to inline execution.
thread_local const WorkerPool* tls_current_pool = nullptr;
}  // namespace

WorkerPool::WorkerPool(size_t num_workers) {
  CLEANM_CHECK(num_workers > 0);
  workers_.reserve(num_workers);
  for (size_t id = 0; id < num_workers; id++) {
    workers_.emplace_back(&WorkerPool::WorkerLoop, this, id);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Let a dispatched-but-unwaited epoch drain before stopping: workers
    // always prefer a pending epoch over the stop flag, but waiting here
    // keeps the shutdown ordering obvious and the latch accounting simple.
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::WorkerLoop(size_t id) {
  tls_current_pool = this;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (epoch_ != seen) {
      seen = epoch_;
      lock.unlock();
      try {
        task_(id);
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
  }
}

void WorkerPool::Dispatch(std::function<void(size_t)> fn) {
  CLEANM_CHECK(fn != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });  // serialize epochs
    task_ = std::move(fn);
    first_error_ = nullptr;
    pending_ = workers_.size();
    epoch_++;
  }
  work_cv_.notify_all();
}

void WorkerPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

bool WorkerPool::OnWorkerThread() const { return tls_current_pool == this; }

void WorkerPool::Run(const std::function<void(size_t)>& fn) {
  if (OnWorkerThread()) {
    // Nested dispatch from one of our own tasks: the pool is busy running
    // the enclosing epoch, so execute inline on the calling thread.
    for (size_t id = 0; id < workers_.size(); id++) fn(id);
    return;
  }
  Dispatch(fn);
  Wait();
}

}  // namespace cleanm::engine
