// Distributed grouping/aggregation strategies (paper Section 6,
// "Handling data skew").
//
// All three strategies compute the same monoid aggregation — key extraction,
// a unit function, an associative merge, and a finalizer — but differ in
// *where* rows travel, which is exactly the contrast the paper draws:
//
//  * kLocalCombine  — CleanDB's plan (Spark `aggregateByKey`): aggregate
//    locally on each node first, shuffle only the combined partials, merge.
//    Traffic is O(distinct keys); hot keys are pre-collapsed, so skew does
//    not concentrate load.
//  * kSortShuffle   — Spark SQL's sort-based aggregation: sample the key
//    distribution, range-partition all raw rows, aggregate per node. All
//    rows travel, and a hot key lands whole on one node.
//  * kHashShuffle   — BigDansing's hash-based blocking: route all raw rows
//    by key hash, aggregate per node. All rows travel; a hot key again
//    lands whole on one node.
//
// Being a monoid is what makes kLocalCombine legal: the merge's
// associativity lets partial aggregates combine in any grouping/order —
// the language-level property (Section 4) surfacing at the physical level.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/cluster.h"
#include "storage/pagestore/page.h"

namespace cleanm {
class SpillContext;
}

namespace cleanm::engine {

enum class AggregateStrategy {
  kLocalCombine,
  kSortShuffle,
  kHashShuffle,
};

const char* AggregateStrategyName(AggregateStrategy s);

/// \brief A monoid aggregation over rows.
///
/// `init` lifts one row into the accumulator domain (the unit function U⊕);
/// `merge` is the associative ⊕; `finalize` maps each (key, accumulator)
/// group to zero or more output rows (e.g. "emit the group if it has > 1
/// distinct RHS value" for an FD check).
struct AggregateSpec {
  std::function<Value(const Row&)> key;
  std::function<Value(const Row&)> init;
  std::function<Value(Value, const Value&)> merge;
  std::function<void(const Value& key, const Value& acc, Partition*)> finalize;
  /// Optional poison-row hook (the physical layer's quarantine): when set,
  /// a row whose `key`/`init` throws during the fold is handed here with
  /// its node and fold ordinal instead of unwinding. OK → the row is
  /// skipped (it never touches the accumulator map); non-OK → the error
  /// aborts the aggregation (thrown as StatusException). StatusException
  /// itself (cancellation, injected faults) always propagates. `merge` and
  /// `finalize` see only accumulators — no per-row user expressions — and
  /// are not guarded.
  std::function<Status(size_t node, size_t ordinal, const Row& row,
                       const std::exception& error)>
      on_row_error;
};

/// Common accumulator helpers used by the cleaning operators.

/// unit: row → list-of-one-row (collects whole groups; ⊕ = list concat).
Value RowsAccInit(const Row& row);
/// ⊕ for RowsAccInit.
Value RowsAccMerge(Value a, const Value& b);

/// unit: row → singleton list of one projected value; merge keeps the list
/// *distinct* (set semantics), so the accumulator stays small for FD checks.
std::function<Value(const Row&)> DistinctAccInit(std::function<Value(const Row&)> project);
Value DistinctAccMerge(Value a, const Value& b);

/// \brief Runs the aggregation under the chosen strategy.
///
/// Returns the finalized output, still partitioned by node; `load` (if not
/// null) receives the per-node row counts *after* the shuffle and *before*
/// aggregation — the quantity that exhibits skew imbalance.
Partitioned AggregateByKey(Cluster& cluster, const Partitioned& in,
                           const AggregateSpec& spec, AggregateStrategy strategy,
                           LoadReport* load = nullptr);

/// Deep-hash map from group key to accumulator (node-local aggregation
/// state).
struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEqual {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};
using AccMap = std::unordered_map<Value, Value, ValueHasher, ValueEqual>;

/// Node-local aggregation state: the accumulator map plus the keys in
/// first-occurrence order. Partial encoding and finalize both walk
/// `order`, never the unordered_map, so the emission sequence is a pure
/// function of the per-node key stream — unordered_map iteration order
/// (which varies with rehash history, and would differ between a
/// whole-stream map and one that was spilled and cleared mid-stream)
/// never leaks into results. Concatenating the partial streams of
/// successive spill generations therefore reproduces the unspilled
/// stream's key order exactly, which is what keeps spilled executions
/// bit-identical (see DESIGN.md, "Out-of-core storage & spill").
struct OrderedAccs {
  AccMap map;
  std::vector<Value> order;  ///< keys in first-occurrence order
};

/// \brief Morsel-fed variant of AggregateByKey: the pipeline breaker at a
/// Nest boundary.
///
/// Each node folds its input morsels into node-local state as they stream
/// in (Accumulate, called from that node's worker), so the keyed input is
/// never materialized as a whole Partitioned; Finish then runs the same
/// shuffle/merge/finalize machinery as AggregateByKey, producing a
/// bit-identical result as long as each node sees its rows in the same
/// order (morsel boundaries never change the fold, by monoid
/// associativity — and the accumulator map's growth sequence, hence its
/// partial-encoding order, depends only on the per-node key sequence).
///
/// kLocalCombine folds incrementally; the shuffle-all-rows baseline
/// strategies (sort/hash) inherently need every raw row and therefore
/// buffer them, degenerating to the materializing path.
class MorselAggregator {
 public:
  /// `spill` (optional) lets the breaker bound its resident partial state:
  /// when the summed per-node accumulator estimate exceeds the pool
  /// budget, a node's partials are encoded (in key order), written to the
  /// spill file, and the map is cleared; Finish re-reads every generation
  /// in order ahead of the live partials, so the merge sees the same
  /// partial stream modulo generation splits — exact by monoid
  /// associativity, order-exact by OrderedAccs.
  MorselAggregator(Cluster& cluster, AggregateSpec spec, AggregateStrategy strategy,
                   SpillContext* spill = nullptr);

  /// Folds one morsel of node `node`'s rows (by value: callers hand over
  /// morsels they own, so the buffering baselines splice without copying).
  /// Thread-safe across distinct nodes; per node, morsels must arrive in
  /// row order.
  void Accumulate(size_t node, Partition rows);

  /// Shuffles the partial accumulators, merges, finalizes. Driver-only;
  /// call at most once.
  Partitioned Finish(LoadReport* load = nullptr);

 private:
  /// Spills node `node`'s partials if the summed accumulator estimate is
  /// over budget (no-op without a spill context).
  void MaybeSpill(size_t node);

  Cluster& cluster_;
  AggregateSpec spec_;
  AggregateStrategy strategy_;
  SpillContext* spill_;
  std::vector<OrderedAccs> per_node_;  ///< kLocalCombine state
  /// Rows folded so far per node (kLocalCombine): the ordinal base handed
  /// to the on_row_error hook for each incoming morsel.
  std::vector<uint64_t> fold_base_;
  /// Spilled partial generations per node, in spill order.
  std::vector<std::vector<std::vector<PageSpan>>> spilled_;
  Partitioned buffered_;          ///< raw rows for the shuffle-all baselines
};

}  // namespace cleanm::engine
