#include "engine/cluster.h"

#include <chrono>
#include <thread>

namespace cleanm::engine {

Cluster::Cluster(ClusterOptions options) : options_(options) {
  CLEANM_CHECK(options_.num_nodes > 0);
}

void Cluster::RunOnNodes(const std::function<void(size_t)>& fn) const {
  std::vector<std::thread> workers;
  workers.reserve(options_.num_nodes);
  for (size_t n = 0; n < options_.num_nodes; n++) {
    workers.emplace_back(fn, n);
  }
  for (auto& w : workers) w.join();
}

Partitioned Cluster::Parallelize(const std::vector<Row>& rows) const {
  Partitioned out(options_.num_nodes);
  const size_t per_node = rows.size() / options_.num_nodes + 1;
  for (auto& p : out) p.reserve(per_node);
  for (size_t i = 0; i < rows.size(); i++) {
    out[i % options_.num_nodes].push_back(rows[i]);
  }
  metrics_.rows_scanned += rows.size();
  return out;
}

std::vector<Row> Cluster::Collect(const Partitioned& data) const {
  std::vector<Row> out;
  out.reserve(TotalRows(data));
  for (const auto& p : data) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

size_t Cluster::TotalRows(const Partitioned& data) {
  size_t n = 0;
  for (const auto& p : data) n += p.size();
  return n;
}

LoadReport Cluster::Load(const Partitioned& data) const {
  LoadReport report;
  report.rows_per_node.reserve(data.size());
  for (const auto& p : data) report.rows_per_node.push_back(p.size());
  return report;
}

Partitioned Cluster::Map(const Partitioned& in,
                         const std::function<Row(const Row&)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    out[n].reserve(in[n].size());
    for (const auto& row : in[n]) out[n].push_back(fn(row));
  });
  return out;
}

Partitioned Cluster::Filter(const Partitioned& in,
                            const std::function<bool(const Row&)>& pred) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    for (const auto& row : in[n]) {
      if (pred(row)) out[n].push_back(row);
    }
  });
  return out;
}

Partitioned Cluster::FlatMap(
    const Partitioned& in,
    const std::function<void(const Row&, Partition*)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    for (const auto& row : in[n]) fn(row, &out[n]);
  });
  return out;
}

Partitioned Cluster::MapPartitions(
    const Partitioned& in,
    const std::function<Partition(size_t, const Partition&)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) { out[n] = fn(n, in[n]); });
  return out;
}

void Cluster::ChargeShuffle(uint64_t bytes) const {
  metrics_.bytes_shuffled += bytes;
  if (options_.shuffle_ns_per_byte <= 0) return;
  const auto delay = std::chrono::nanoseconds(
      static_cast<int64_t>(static_cast<double>(bytes) * options_.shuffle_ns_per_byte));
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

Partitioned Cluster::Shuffle(const Partitioned& in,
                             const std::function<uint64_t(const Row&)>& route) {
  const size_t n_nodes = options_.num_nodes;
  // outgoing[src][dst] staged per sending node, then concatenated per
  // destination. Each source node routes and charges its own traffic.
  std::vector<std::vector<Partition>> outgoing(in.size(),
                                               std::vector<Partition>(n_nodes));
  RunOnNodes([&](size_t src) {
    if (src >= in.size()) return;
    uint64_t bytes_sent = 0, rows_sent = 0;
    for (const auto& row : in[src]) {
      const size_t dst = route(row) % n_nodes;
      if (dst != src) {
        bytes_sent += RowByteSize(row);
        rows_sent++;
      }
      outgoing[src][dst].push_back(row);
    }
    metrics_.rows_shuffled += rows_sent;
    ChargeShuffle(bytes_sent);
  });

  Partitioned result(n_nodes);
  RunOnNodes([&](size_t dst) {
    size_t total = 0;
    for (const auto& src : outgoing) total += src[dst].size();
    result[dst].reserve(total);
    for (auto& src : outgoing) {
      for (auto& row : src[dst]) result[dst].push_back(std::move(row));
    }
  });
  return result;
}

Partition Cluster::BroadcastAll(const Partitioned& in) {
  Partition all;
  uint64_t bytes = 0;
  for (const auto& p : in) {
    for (const auto& row : p) {
      bytes += RowByteSize(row);
      all.push_back(row);
    }
  }
  // Every node receives a full copy: N-1 network transfers per row.
  const uint64_t transfers = bytes * (options_.num_nodes - 1);
  metrics_.rows_shuffled += TotalRows(in) * (options_.num_nodes - 1);
  ChargeShuffle(transfers);
  return all;
}

}  // namespace cleanm::engine
