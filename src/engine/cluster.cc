#include "engine/cluster.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/trace.h"

namespace cleanm::engine {

namespace {
/// Per-thread metrics destination installed by MetricsScope; nullptr means
/// "charge the cluster's session-cumulative counters".
thread_local QueryMetrics* tls_metrics = nullptr;
}  // namespace

MetricsScope::MetricsScope(QueryMetrics* metrics) : prev_(tls_metrics) {
  tls_metrics = metrics;
}

MetricsScope::~MetricsScope() { tls_metrics = prev_; }

QueryMetrics* MetricsScope::Current() { return tls_metrics; }

QueryMetrics& Cluster::metrics() const {
  return tls_metrics ? *tls_metrics : metrics_;
}

Cluster::Cluster(ClusterOptions options)
    : options_(options), active_nodes_(options.num_nodes) {
  CLEANM_CHECK(options_.num_nodes > 0);
  CLEANM_CHECK(options_.shuffle_batch_rows > 0);
  if (options_.use_worker_pool) {
    pool_ = std::make_unique<WorkerPool>(options_.num_nodes);
  }
  fault_ = std::make_unique<FaultInjector>(options_.num_nodes, options_.fault);
}

void Cluster::SetFaultOptions(const FaultOptions& options) {
  options_.fault = options;
  fault_->SetOptions(options);
}

void Cluster::RunWithFaults(size_t n,
                            const std::function<void(size_t)>& body) const {
  // Epoch-boundary cancellation: a cancelled or overdue execution stops
  // before dispatching more per-node work.
  if (const ExecControl* control = ExecControlScope::Current()) {
    Status st = control->Check();
    if (!st.ok()) throw StatusException(std::move(st));
  }
  if (!fault_->options().enabled()) {
    body(n);
    return;
  }
  const FaultOptions& fo = fault_->options();
  for (size_t attempt = 0;; attempt++) {
    FaultInjector::AttemptOutcome outcome = fault_->OnTaskAttempt(n);
    if (outcome.newly_blacklisted) metrics().nodes_blacklisted += 1;
    if (!outcome.fail) {
      // The attempt starts clean: an injected failure fires *before* the
      // task body, so no partial output from a failed attempt survives and
      // this (re-)execution rebuilds node n's partial from scratch.
      body(n);
      return;
    }
    metrics().tasks_failed += 1;
    if (attempt >= fo.max_task_retries) {
      throw NodeUnavailableError(
          n, "node " + std::to_string(n) + " unavailable after " +
                 std::to_string(attempt + 1) + " task attempts");
    }
    metrics().tasks_retried += 1;
    if (fo.retry_backoff_ns > 0) {
      const uint64_t backoff = fo.retry_backoff_ns
                               << (attempt < 6 ? attempt : 6);
      TraceScope backoff_span("fault", "retry_backoff", nullptr,
                              static_cast<int>(n));
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
  }
}

size_t Cluster::SurvivorFor(size_t dst) const {
  if (!fault_->AnyBlacklisted()) return dst;
  const size_t n = active_nodes_;
  for (size_t k = 0; k < n; k++) {
    const size_t candidate = (dst + k) % n;
    if (!fault_->blacklisted(candidate)) return candidate;
  }
  return dst;  // every node blacklisted: keep the original routing
}

void Cluster::SetActiveNodes(size_t n) {
  if (n < 1) n = 1;
  if (n > options_.num_nodes) n = options_.num_nodes;
  active_nodes_ = n;
}

void Cluster::SetShuffleCost(double ns_per_byte, double ns_per_batch) {
  options_.shuffle_ns_per_byte = ns_per_byte;
  options_.shuffle_ns_per_batch = ns_per_batch;
}

void Cluster::SetShuffleBatchRows(size_t rows) {
  // Clamp like SetActiveNodes: a 0 from ExecOptions means row-at-a-time,
  // not a session abort.
  options_.shuffle_batch_rows = rows < 1 ? 1 : rows;
}

void Cluster::RunOnNodes(const std::function<void(size_t)>& fn) const {
  const size_t active = active_nodes_;
  // Workers (and legacy spawned threads) run the dispatching driver's
  // closures, so they must charge that driver's per-execution metrics (and
  // observe its cancellation sources), not whatever the worker thread last
  // saw.
  QueryMetrics* driver_metrics = MetricsScope::Current();
  const ExecControl* driver_control = ExecControlScope::Current();
  // Like the metrics/control scopes, tracing context propagates explicitly:
  // the dispatch span opens driver-side, and each per-node task re-installs
  // the driver's recorder so its "task" span parents under the dispatch.
  TraceScope dispatch_span("cluster", "dispatch");
  TraceRecorder* driver_rec = TraceRecorderScope::Current();
  const uint64_t trace_parent = TraceRecorderScope::CurrentParent();
  const auto task = [this, &fn, active, driver_metrics, driver_control,
                     driver_rec, trace_parent](size_t n) {
    MetricsScope scope(driver_metrics);
    ExecControlScope control_scope(driver_control);
    TraceRecorderScope trace_scope(driver_rec, trace_parent);
    TraceScope task_span("cluster", "task", nullptr, static_cast<int>(n));
    if (n < active) RunWithFaults(n, fn);
  };
  if (pool_ && (pool_->OnWorkerThread() || pool_->TryAcquireDriver())) {
    // On a worker thread this is a nested dispatch (runs inline inside
    // Run); otherwise this session just became the pool's driver.
    pool_->Run(task);
    return;
  }
  // Spawn-per-call: one fresh thread per node per operator call. Two users:
  //  * the legacy execution model (use_worker_pool = false), kept as the
  //    A/B baseline for the dispatch-latency microbenchmark and CI gate;
  //  * a driver session that lost the pool to another session. Spawning
  //    (instead of queueing behind the owner, or running the node loop
  //    sequentially inline) keeps concurrent sessions independent AND keeps
  //    their per-node work parallel — without it, each non-owner execution
  //    serializes its own simulated-network sleeps and the sessions gain
  //    nothing from overlapping. Engine operators are deterministic under
  //    any node scheduling, so results are identical on either substrate.
  // Exceptions propagate to the caller, matching the pool's contract.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(active);
  for (size_t n = 0; n < active; n++) {
    workers.emplace_back([&task, &error_mu, &first_error, n] {
      try {
        task(n);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

uint64_t PartitionLogicalBytes(const Partition& rows) {
  uint64_t bytes = 0;
  for (const auto& row : rows) bytes += RowByteSize(row);
  return bytes;
}

uint64_t PartitionedLogicalBytes(const Partitioned& data) {
  uint64_t bytes = 0;
  for (const auto& partition : data) bytes += PartitionLogicalBytes(partition);
  return bytes;
}

Partitioned Cluster::Parallelize(const std::vector<Row>& rows) const {
  Partitioned out(active_nodes_);
  const size_t per_node = rows.size() / active_nodes_ + 1;
  for (auto& p : out) p.reserve(per_node);
  for (size_t i = 0; i < rows.size(); i++) {
    out[SurvivorFor(i % active_nodes_)].push_back(rows[i]);
  }
  metrics().rows_scanned += rows.size();
  return out;
}

std::vector<Row> Cluster::Collect(const Partitioned& data) const {
  std::vector<Row> out;
  out.reserve(TotalRows(data));
  for (const auto& p : data) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

size_t Cluster::TotalRows(const Partitioned& data) {
  size_t n = 0;
  for (const auto& p : data) n += p.size();
  return n;
}

LoadReport Cluster::Load(const Partitioned& data) const {
  LoadReport report;
  report.rows_per_node.reserve(data.size());
  for (const auto& p : data) report.rows_per_node.push_back(p.size());
  return report;
}

Partitioned Cluster::Map(const Partitioned& in,
                         const std::function<Row(const Row&)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    out[n].reserve(in[n].size());
    for (const auto& row : in[n]) out[n].push_back(fn(row));
  });
  return out;
}

Partitioned Cluster::Filter(const Partitioned& in,
                            const std::function<bool(const Row&)>& pred) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    for (const auto& row : in[n]) {
      if (pred(row)) out[n].push_back(row);
    }
  });
  return out;
}

Partitioned Cluster::FlatMap(
    const Partitioned& in,
    const std::function<void(const Row&, Partition*)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) {
    for (const auto& row : in[n]) fn(row, &out[n]);
  });
  return out;
}

Partitioned Cluster::MapPartitions(
    const Partitioned& in,
    const std::function<Partition(size_t, const Partition&)>& fn) const {
  Partitioned out(in.size());
  RunOnNodes([&](size_t n) { out[n] = fn(n, in[n]); });
  return out;
}

void Cluster::ChargeNetwork(uint64_t bytes, uint64_t batches) const {
  const double ns = static_cast<double>(bytes) * options_.shuffle_ns_per_byte +
                    static_cast<double>(batches) * options_.shuffle_ns_per_batch;
  if (ns <= 0) return;
  auto remaining = std::chrono::nanoseconds(static_cast<int64_t>(ns));
  if (remaining.count() <= 0) return;
  TraceScope net_span("cluster", "network");
  // Sleep in slices so a deadline or cancellation interrupts a
  // network-dominated epoch promptly instead of after the whole transfer.
  const ExecControl* control = ExecControlScope::Current();
  const auto slice = std::chrono::milliseconds(1);
  while (remaining.count() > 0) {
    if (control) {
      Status st = control->Check();
      if (!st.ok()) throw StatusException(std::move(st));
    }
    const auto chunk = control && remaining > slice
                           ? std::chrono::nanoseconds(slice)
                           : remaining;
    std::this_thread::sleep_for(chunk);
    remaining -= chunk;
  }
}

namespace {
/// One source node's outgoing rows for one destination, pending flush.
struct ShuffleBuffer {
  Partition rows;
  uint64_t bytes = 0;  ///< remote bytes staged (0 when dst == src)
};
}  // namespace

Partitioned Cluster::Shuffle(const Partitioned& in,
                             const std::function<uint64_t(const Row&)>& route) {
  TraceScope shuffle_span("cluster", "shuffle");
  shuffle_span.SetRows(TotalRows(in), TotalRows(in));
  const size_t n_nodes = active_nodes_;
  const size_t batch_rows = options_.shuffle_batch_rows;
  // staged[src][dst] holds the flushed batches in routing order, so the
  // destination splice below reproduces the exact row order of an
  // unbatched, source-major shuffle (determinism the e2e cross-checks
  // rely on).
  std::vector<std::vector<std::vector<Partition>>> staged(
      in.size(), std::vector<std::vector<Partition>>(n_nodes));
  RunOnNodes([&](size_t src) {
    if (src >= in.size()) return;
    std::vector<ShuffleBuffer> buffers(n_nodes);
    uint64_t rows_sent = 0;
    auto flush = [&](size_t dst) {
      ShuffleBuffer& b = buffers[dst];
      if (b.rows.empty()) return;
      if (dst != src) {
        metrics().bytes_shuffled += b.bytes;
        metrics().shuffle_batches += 1;
        ChargeNetwork(b.bytes, 1);
      }
      staged[src][dst].push_back(std::move(b.rows));
      b.rows = Partition();
      b.bytes = 0;
    };
    for (const auto& row : in[src]) {
      const size_t dst = SurvivorFor(route(row) % n_nodes);
      ShuffleBuffer& b = buffers[dst];
      if (dst != src) {
        b.bytes += RowByteSize(row);
        rows_sent++;
      }
      b.rows.push_back(row);
      if (b.rows.size() >= batch_rows) flush(dst);
    }
    for (size_t dst = 0; dst < n_nodes; dst++) flush(dst);
    metrics().rows_shuffled += rows_sent;
  });

  Partitioned result(n_nodes);
  RunOnNodes([&](size_t dst) {
    size_t total = 0;
    for (const auto& src : staged) {
      for (const auto& batch : src[dst]) total += batch.size();
    }
    result[dst].reserve(total);
    for (auto& src : staged) {
      for (auto& batch : src[dst]) {
        for (auto& row : batch) result[dst].push_back(std::move(row));
      }
    }
  });
  return result;
}

Partition Cluster::BroadcastAll(const Partitioned& in) {
  TraceScope broadcast_span("cluster", "broadcast");
  broadcast_span.SetRows(TotalRows(in), TotalRows(in));
  const size_t n_nodes = active_nodes_;
  const size_t receivers = n_nodes - 1;
  // Offsets let every source copy its slice into the shared result
  // concurrently (the "receive work" of the broadcast).
  std::vector<size_t> offset(in.size() + 1, 0);
  for (size_t i = 0; i < in.size(); i++) offset[i + 1] = offset[i] + in[i].size();
  Partition all(offset.back());
  // Strided over workers so every partition is covered even when the input
  // holds more partitions than this cluster has nodes.
  RunOnNodes([&](size_t worker) {
    for (size_t src = worker; src < in.size(); src += n_nodes) {
      if (in[src].empty()) continue;
      uint64_t bytes = 0;
      size_t pos = offset[src];
      for (const auto& row : in[src]) {
        bytes += RowByteSize(row);
        all[pos++] = row;
      }
      if (receivers == 0) continue;
      // Every other node receives a full copy of this source's slice; each
      // (source, receiver) transfer moves ceil(rows / batch) batches.
      const uint64_t batches_per_receiver =
          (in[src].size() + options_.shuffle_batch_rows - 1) /
          options_.shuffle_batch_rows;
      metrics().rows_shuffled += in[src].size() * receivers;
      metrics().bytes_shuffled += bytes * receivers;
      metrics().shuffle_batches += batches_per_receiver * receivers;
      ChargeNetwork(bytes * receivers, batches_per_receiver * receivers);
    }
  });
  return all;
}

}  // namespace cleanm::engine
