#include "engine/fault.h"

#include <thread>

namespace cleanm::engine {

namespace {

/// Counter-based deterministic PRNG (splitmix64): the decision for
/// (seed, node, attempt#) is a pure function, so a failure scenario replays
/// identically regardless of thread scheduling.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) draw for one (seed, node, attempt, stream) tuple.
double Draw(uint64_t seed, size_t node, uint64_t attempt, uint64_t stream) {
  uint64_t h = Mix64(seed ^ Mix64(node * 0x9e3779b97f4a7c15ULL) ^
                     Mix64(attempt) ^ Mix64(stream * 0xda942042e4dd58b5ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Per-thread ExecControl installed by ExecControlScope; nullptr = none.
thread_local const ExecControl* tls_exec_control = nullptr;

}  // namespace

ExecControlScope::ExecControlScope(const ExecControl* control)
    : prev_(tls_exec_control) {
  tls_exec_control = control;
}

ExecControlScope::~ExecControlScope() { tls_exec_control = prev_; }

const ExecControl* ExecControlScope::Current() { return tls_exec_control; }

FaultInjector::FaultInjector(size_t num_nodes, FaultOptions options)
    : options_(options),
      nodes_(num_nodes),
      state_(std::make_unique<NodeState[]>(num_nodes)) {}

FaultInjector::AttemptOutcome FaultInjector::OnTaskAttempt(size_t node) {
  AttemptOutcome out;
  if (node >= nodes_ || !options_.enabled()) return out;
  // A blacklisted node is out of service: the simulator runs its partition's
  // work on the surviving pool thread without injecting further faults.
  NodeState& st = state_[node];
  if (st.blacklisted.load(std::memory_order_acquire)) return out;
  const uint64_t attempt = st.attempts.fetch_add(1, std::memory_order_relaxed);
  const bool targeted =
      options_.target_node < 0 || node == static_cast<size_t>(options_.target_node);
  if (targeted && options_.latency_spike_probability > 0 &&
      options_.latency_spike_ns > 0 &&
      Draw(options_.seed, node, attempt, /*stream=*/1) <
          options_.latency_spike_probability) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.latency_spike_ns));
  }
  if (!targeted) return out;
  out.fail = attempt < options_.fail_first_attempts ||
             (options_.failure_probability > 0 &&
              Draw(options_.seed, node, attempt, /*stream=*/0) <
                  options_.failure_probability);
  if (!out.fail) {
    st.consecutive_failures.store(0, std::memory_order_relaxed);
    return out;
  }
  const uint64_t streak =
      st.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.node_blacklist_threshold > 0 &&
      streak >= options_.node_blacklist_threshold &&
      !st.blacklisted.exchange(true, std::memory_order_acq_rel)) {
    blacklisted_count_.fetch_add(1, std::memory_order_release);
    out.newly_blacklisted = true;
  }
  return out;
}

Status QuarantineSink::Record(QuarantinedRow row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rows_.size() >= max_rows_) {
    return Status::Internal(
        "poison-row quarantine cap exceeded (max_quarantined_rows=" +
        std::to_string(max_rows_) + "): " + row.error);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace cleanm::engine
