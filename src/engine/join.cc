#include "engine/join.h"

#include <cmath>
#include <unordered_map>

#include "engine/fault.h"
#include "storage/pagestore/spill.h"

namespace cleanm::engine {

namespace {
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};
using BuildTable = std::unordered_map<Value, std::vector<const Row*>, ValueHash, ValueEq>;

/// If the shuffled build side `r` is over the spill budget, writes each
/// node's build partition to the spill file and clears the resident copy.
/// Returns per-node page spans (empty when nothing was spilled). The probe
/// phase then revives one node's build side at a time via ReviveBuildSide,
/// so at most ~|r|/N build rows are resident at once instead of |r|.
std::vector<std::vector<PageSpan>> MaybeSpillBuildSide(SpillContext* spill,
                                                       Partitioned& r) {
  std::vector<std::vector<PageSpan>> spans(r.size());
  if (spill == nullptr || !spill->enabled()) return spans;
  uint64_t bytes = 0;
  for (const auto& part : r)
    for (const auto& row : part) bytes += RowByteSize(row);
  if (!spill->ShouldSpill(bytes, 1)) return spans;
  for (size_t n = 0; n < r.size(); n++) {
    if (r[n].empty()) continue;
    Result<std::vector<PageSpan>> s = spill->SpillRows(r[n]);
    if (!s.ok()) throw StatusException(s.status());
    spans[n] = s.MoveValue();
    Partition().swap(r[n]);
  }
  return spans;
}

/// Reads node `n`'s spilled build rows back into `revived` and returns a
/// reference to them; when nothing was spilled, returns the resident
/// partition untouched.
const Partition& ReviveBuildSide(SpillContext* spill,
                                 const std::vector<std::vector<PageSpan>>& spans,
                                 const Partitioned& r, size_t n,
                                 Partition* revived) {
  if (spans[n].empty()) return r[n];
  Status st = spill->ReadBack(spans[n], revived);
  if (!st.ok()) throw StatusException(st);
  return *revived;
}
}  // namespace

Partitioned HashEquiJoin(Cluster& cluster, const Partitioned& left,
                         const Partitioned& right,
                         const std::function<Value(const Row&)>& left_key,
                         const std::function<Value(const Row&)>& right_key,
                         const std::function<Row(const Row&, const Row&)>& emit,
                         SpillContext* spill) {
  Partitioned l = cluster.Shuffle(left, [&](const Row& r) { return left_key(r).Hash(); });
  Partitioned r = cluster.Shuffle(right, [&](const Row& x) { return right_key(x).Hash(); });
  const std::vector<std::vector<PageSpan>> spilled = MaybeSpillBuildSide(spill, r);
  Partitioned out(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    Partition revived;
    const Partition& build = ReviveBuildSide(spill, spilled, r, n, &revived);
    BuildTable table;
    table.reserve(build.size());
    for (const auto& row : build) table[right_key(row)].push_back(&row);
    for (const auto& lrow : l[n]) {
      auto it = table.find(left_key(lrow));
      if (it == table.end()) continue;
      for (const Row* rrow : it->second) out[n].push_back(emit(lrow, *rrow));
    }
  });
  return out;
}

Partitioned HashLeftOuterJoin(
    Cluster& cluster, const Partitioned& left, const Partitioned& right,
    const std::function<Value(const Row&)>& left_key,
    const std::function<Value(const Row&)>& right_key,
    const std::function<Row(const Row&, const Row&)>& emit,
    const std::function<Row(const Row&)>& emit_unmatched,
    SpillContext* spill) {
  Partitioned l = cluster.Shuffle(left, [&](const Row& r) { return left_key(r).Hash(); });
  Partitioned r = cluster.Shuffle(right, [&](const Row& x) { return right_key(x).Hash(); });
  const std::vector<std::vector<PageSpan>> spilled = MaybeSpillBuildSide(spill, r);
  Partitioned out(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    Partition revived;
    const Partition& build = ReviveBuildSide(spill, spilled, r, n, &revived);
    BuildTable table;
    table.reserve(build.size());
    for (const auto& row : build) table[right_key(row)].push_back(&row);
    for (const auto& lrow : l[n]) {
      auto it = table.find(left_key(lrow));
      if (it == table.end()) {
        out[n].push_back(emit_unmatched(lrow));
        continue;
      }
      for (const Row* rrow : it->second) out[n].push_back(emit(lrow, *rrow));
    }
  });
  return out;
}

const char* ThetaJoinAlgoName(ThetaJoinAlgo a) {
  switch (a) {
    case ThetaJoinAlgo::kCartesian: return "cartesian";
    case ThetaJoinAlgo::kMinMax: return "minmax";
    case ThetaJoinAlgo::kMatrix: return "matrix";
  }
  return "?";
}

namespace {

/// Spark SQL fallback: broadcast the right side, each node crosses its
/// left slice against everything.
Partitioned CartesianJoin(Cluster& cluster, const Partitioned& left,
                          const Partitioned& right,
                          const std::function<bool(const Row&, const Row&)>& pred,
                          const std::function<Row(const Row&, const Row&)>& emit) {
  const Partition all_right = cluster.BroadcastAll(right);
  Partitioned out(cluster.num_nodes());
  cluster.RunOnNodes([&](size_t n) {
    uint64_t checks = 0;
    for (const auto& lrow : left[n]) {
      for (const auto& rrow : all_right) {
        checks++;
        if (pred(lrow, rrow)) out[n].push_back(emit(lrow, rrow));
      }
    }
    cluster.metrics().comparisons += checks;
  });
  return out;
}

struct Bounds {
  Value min, max;
  bool empty = true;
  void Add(const Value& v) {
    if (empty) {
      min = v;
      max = v;
      empty = false;
      return;
    }
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
};

/// BigDansing: per-partition min/max pruning. Partition pairs whose bounds
/// may match are co-located (right chunk shipped to the left chunk's node)
/// and fully compared.
Partitioned MinMaxJoin(Cluster& cluster, const Partitioned& left,
                       const Partitioned& right,
                       const std::function<bool(const Row&, const Row&)>& pred,
                       const std::function<Row(const Row&, const Row&)>& emit,
                       const ThetaJoinOptions& options) {
  const size_t n_nodes = cluster.num_nodes();
  std::vector<Bounds> lb(n_nodes), rb(n_nodes);
  const bool have_bounds =
      options.left_bound && options.right_bound && options.ranges_may_match;
  if (have_bounds) {
    cluster.RunOnNodes([&](size_t n) {
      for (const auto& row : left[n]) lb[n].Add(options.left_bound(row));
      for (const auto& row : right[n]) rb[n].Add(options.right_bound(row));
    });
  }
  auto pair_may_match = [&](size_t li, size_t ri) {
    if (left[li].empty() || right[ri].empty()) return false;
    if (!have_bounds) return true;  // no pruning possible
    if (lb[li].empty || rb[ri].empty) return false;
    return options.ranges_may_match(lb[li].min, lb[li].max, rb[ri].min, rb[ri].max);
  };

  // Ship every right chunk that survives pruning to the matching left node;
  // this is the "excessive data shuffling" the paper observes when pruning
  // is ineffective. Each receiving node assembles (and accounts) its own
  // incoming chunks concurrently.
  Partitioned out(n_nodes);
  std::vector<Partition> shipped(n_nodes);
  cluster.RunOnNodes([&](size_t li) {
    uint64_t bytes = 0;
    size_t total = 0;
    for (size_t ri = 0; ri < n_nodes; ri++) {
      if (pair_may_match(li, ri)) total += right[ri].size();
    }
    shipped[li].reserve(total);
    const size_t batch = cluster.options().shuffle_batch_rows;
    for (size_t ri = 0; ri < n_nodes; ri++) {
      if (!pair_may_match(li, ri)) continue;
      for (const auto& row : right[ri]) {
        if (ri != li) bytes += RowByteSize(row);
        shipped[li].push_back(row);
      }
      if (ri != li) {
        cluster.metrics().rows_shuffled += right[ri].size();
        // One chunk transfer = ceil(rows / batch) network messages.
        cluster.metrics().shuffle_batches += (right[ri].size() + batch - 1) / batch;
      }
    }
    cluster.metrics().bytes_shuffled += bytes;
  });
  cluster.RunOnNodes([&](size_t n) {
    uint64_t checks = 0;
    for (const auto& lrow : left[n]) {
      for (const auto& rrow : shipped[n]) {
        checks++;
        if (pred(lrow, rrow)) out[n].push_back(emit(lrow, rrow));
      }
    }
    cluster.metrics().comparisons += checks;
  });
  return out;
}

/// CleanDB: Okcan & Riedewald matrix partitioning. The |L|×|S| matrix is
/// tiled into a g_r × g_c grid with g_r * g_c >= N and near-square tiles
/// (minimizing per-node input), each tile assigned round-robin to a node.
Partitioned MatrixJoin(Cluster& cluster, const Partitioned& left,
                       const Partitioned& right,
                       const std::function<bool(const Row&, const Row&)>& pred,
                       const std::function<Row(const Row&, const Row&)>& emit) {
  const size_t n_nodes = cluster.num_nodes();
  // Statistics phase: exact input cardinalities (the paper's "global data
  // statistics" step).
  const size_t n_left = Cluster::TotalRows(left);
  const size_t n_right = Cluster::TotalRows(right);
  if (n_left == 0 || n_right == 0) return Partitioned(n_nodes);

  // Choose grid dimensions: tiles as square as possible subject to
  // g_r * g_c >= N, g_r <= n_left, g_c <= n_right.
  const double target = std::sqrt(static_cast<double>(n_nodes) *
                                  static_cast<double>(n_left) /
                                  static_cast<double>(n_right));
  size_t g_r = static_cast<size_t>(std::llround(target));
  g_r = std::max<size_t>(1, std::min<size_t>(n_left, g_r));
  size_t g_c = (n_nodes + g_r - 1) / g_r;
  g_c = std::max<size_t>(1, std::min<size_t>(n_right, g_c));
  while (g_r * g_c < n_nodes && g_r < n_left) g_r++;

  // Row/column ranges per tile (equi-sized stripes over the collected
  // inputs; collection is metered as shuffle traffic below).
  std::vector<Row> lrows;
  lrows.reserve(n_left);
  for (const auto& p : left) lrows.insert(lrows.end(), p.begin(), p.end());
  std::vector<Row> rrows;
  rrows.reserve(n_right);
  for (const auto& p : right) rrows.insert(rrows.end(), p.begin(), p.end());

  // Each node receives one stripe of L rows and one stripe of S rows per
  // tile it owns; meter that traffic (each row travels to every tile that
  // needs it, i.e. L rows g_c times, S rows g_r times, minus local copies).
  uint64_t bytes = 0;
  for (const auto& r : lrows) bytes += RowByteSize(r) * g_c;
  for (const auto& r : rrows) bytes += RowByteSize(r) * g_r;
  cluster.metrics().rows_shuffled += n_left * g_c + n_right * g_r;
  cluster.metrics().bytes_shuffled += bytes;

  struct Tile {
    size_t l_begin, l_end, r_begin, r_end;
  };
  std::vector<std::vector<Tile>> tiles_per_node(n_nodes);
  size_t tile_idx = 0;
  uint64_t tile_batches = 0;
  const size_t batch = cluster.options().shuffle_batch_rows;
  for (size_t tr = 0; tr < g_r; tr++) {
    const size_t l_begin = tr * n_left / g_r;
    const size_t l_end = (tr + 1) * n_left / g_r;
    for (size_t tc = 0; tc < g_c; tc++) {
      const size_t r_begin = tc * n_right / g_c;
      const size_t r_end = (tc + 1) * n_right / g_c;
      tiles_per_node[tile_idx % n_nodes].push_back({l_begin, l_end, r_begin, r_end});
      tile_idx++;
      // Each tile receives one L stripe and one S stripe; a stripe of k
      // rows moves as ceil(k / batch) network messages (coarse like the
      // row/byte metering above: local copies are not subtracted).
      if (l_end > l_begin) tile_batches += (l_end - l_begin + batch - 1) / batch;
      if (r_end > r_begin) tile_batches += (r_end - r_begin + batch - 1) / batch;
    }
  }
  cluster.metrics().shuffle_batches += tile_batches;

  Partitioned out(n_nodes);
  cluster.RunOnNodes([&](size_t n) {
    uint64_t checks = 0;
    for (const auto& tile : tiles_per_node[n]) {
      for (size_t i = tile.l_begin; i < tile.l_end; i++) {
        for (size_t j = tile.r_begin; j < tile.r_end; j++) {
          checks++;
          if (pred(lrows[i], rrows[j])) out[n].push_back(emit(lrows[i], rrows[j]));
        }
      }
    }
    cluster.metrics().comparisons += checks;
  });
  return out;
}

}  // namespace

Partitioned ThetaJoin(Cluster& cluster, const Partitioned& left,
                      const Partitioned& right,
                      const std::function<bool(const Row&, const Row&)>& pred,
                      const std::function<Row(const Row&, const Row&)>& emit,
                      const ThetaJoinOptions& options) {
  switch (options.algo) {
    case ThetaJoinAlgo::kCartesian:
      return CartesianJoin(cluster, left, right, pred, emit);
    case ThetaJoinAlgo::kMinMax:
      return MinMaxJoin(cluster, left, right, pred, emit, options);
    case ThetaJoinAlgo::kMatrix:
      return MatrixJoin(cluster, left, right, pred, emit);
  }
  CLEANM_CHECK(false);
  return {};
}

}  // namespace cleanm::engine
