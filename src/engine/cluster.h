// Virtual cluster: the scale-out execution substrate.
//
// The paper executes CleanM plans on Spark over 10 worker nodes. This module
// substitutes a *virtual cluster*: N nodes, each a worker thread owning one
// partition set. Data moves between nodes only through explicit shuffle
// calls, which (a) meter rows/bytes moved into QueryMetrics and (b) charge a
// configurable simulated network cost, so that the shuffle-volume and
// load-balance differences the evaluation studies are visible in both the
// counters and the wall clock. See DESIGN.md, "Substitutions".
#pragma once

#include <functional>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/dataset.h"

namespace cleanm::engine {

/// One node's slice of a distributed collection.
using Partition = std::vector<Row>;
/// A distributed collection: element i lives on node i.
using Partitioned = std::vector<Partition>;

struct ClusterOptions {
  /// Number of virtual worker nodes (the paper uses 10).
  size_t num_nodes = 10;
  /// Simulated network cost charged to a sending node per shuffled byte.
  /// The default models a ~1 GB/s effective interconnect. Set to 0 to
  /// benchmark pure compute.
  double shuffle_ns_per_byte = 1.0;
};

/// \brief N-node virtual cluster. All engine operators run through it.
///
/// Thread model: every operator call fans one thread out per node, runs the
/// node-local work, and joins. Shuffles stage outgoing rows per (source,
/// destination) pair, charge the simulated network cost, then hand each node
/// its incoming rows.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  size_t num_nodes() const { return options_.num_nodes; }
  const ClusterOptions& options() const { return options_; }
  QueryMetrics& metrics() { return metrics_; }

  /// Runs fn(node_id) on every node concurrently and waits for all.
  void RunOnNodes(const std::function<void(size_t)>& fn) const;

  /// Distributes rows round-robin across nodes ("parallelize").
  Partitioned Parallelize(const std::vector<Row>& rows) const;

  /// Gathers all partitions to the driver (order: node 0..N-1).
  std::vector<Row> Collect(const Partitioned& data) const;

  static size_t TotalRows(const Partitioned& data);

  /// Per-node row counts, for imbalance analysis.
  LoadReport Load(const Partitioned& data) const;

  // ---- Narrow-dependency transformations (no shuffle) ----

  Partitioned Map(const Partitioned& in,
                  const std::function<Row(const Row&)>& fn) const;

  Partitioned Filter(const Partitioned& in,
                     const std::function<bool(const Row&)>& pred) const;

  Partitioned FlatMap(const Partitioned& in,
                      const std::function<void(const Row&, Partition*)>& fn) const;

  /// mapPartitions: the function sees a whole node-local partition at once.
  Partitioned MapPartitions(
      const Partitioned& in,
      const std::function<Partition(size_t node, const Partition&)>& fn) const;

  // ---- Wide dependencies (shuffle; metered + charged) ----

  /// Routes every row to the node chosen by `route(row) % num_nodes`.
  Partitioned Shuffle(const Partitioned& in,
                      const std::function<uint64_t(const Row&)>& route);

  /// Replicates every row of `in` to all nodes (broadcast); traffic is
  /// charged once per (row, receiving node).
  Partition BroadcastAll(const Partitioned& in);

 private:
  ClusterOptions options_;
  mutable QueryMetrics metrics_;

  /// Applies the simulated per-byte network charge for one node's sends.
  void ChargeShuffle(uint64_t bytes) const;
};

}  // namespace cleanm::engine
