// Virtual cluster: the scale-out execution substrate.
//
// The paper executes CleanM plans on Spark over 10 worker nodes. This module
// substitutes a *virtual cluster*: N nodes, each a worker thread owning one
// partition set. Data moves between nodes only through explicit shuffle
// calls, which (a) meter rows/bytes/batches moved into QueryMetrics and
// (b) charge a configurable simulated network cost, so that the
// shuffle-volume and load-balance differences the evaluation studies are
// visible in both the counters and the wall clock. See DESIGN.md,
// "Substitutions" and "Thread model & shuffle batching".
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/fault.h"
#include "engine/worker_pool.h"
#include "storage/dataset.h"

namespace cleanm::engine {

/// One node's slice of a distributed collection.
using Partition = std::vector<Row>;
/// A distributed collection: element i lives on node i.
using Partitioned = std::vector<Partition>;

/// Morsel-pump parameters (see Cluster::PumpToDriver / PumpOnWorkers).
struct MorselSpec {
  /// Rows accumulated per output morsel before it is flushed. A single
  /// input row that expands past the target (an Unnest blow-up) still
  /// flushes as one morsel, so the bound is morsel_rows plus one row's
  /// expansion, never a whole operator output.
  size_t morsel_rows = 4096;
  /// Flushed morsels a producing node may buffer ahead of the consumer
  /// (PumpToDriver only). Total in-flight pipeline memory is bounded by
  /// nodes × queue_window × morsel bytes.
  size_t queue_window = 4;
};

/// Per-row expansion applied on the producing worker: appends zero or more
/// output rows for one input row of node `node`.
using MorselExpand = std::function<void(size_t node, const Row&, Partition*)>;

/// Logical footprint (RowByteSize) of a partition / a whole partitioning —
/// the one accounting shared by the shuffle meter, the partition cache,
/// and the peak_bytes_materialized gauge.
uint64_t PartitionLogicalBytes(const Partition& rows);
uint64_t PartitionedLogicalBytes(const Partitioned& data);

/// \brief RAII: routes Cluster::metrics() on the calling thread to a
/// per-execution QueryMetrics for the scope's lifetime.
///
/// Concurrent executions share one Cluster; without a scope they would
/// interleave their counters in the session-cumulative QueryMetrics. A
/// driver thread installs its execution's metrics here; every Cluster
/// fan-out (RunOnNodes, the morsel pumps) re-installs the dispatching
/// driver's override on the workers running its closures, so counters
/// charged from worker code land in the right execution. Passing nullptr
/// (or using no scope) resolves metrics() to the Cluster's own counters.
class MetricsScope {
 public:
  explicit MetricsScope(QueryMetrics* metrics);
  ~MetricsScope();
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  /// The calling thread's active override (nullptr when none) — what a
  /// fan-out captures on the driver to re-install on its workers.
  static QueryMetrics* Current();

 private:
  QueryMetrics* prev_;
};

struct ClusterOptions {
  /// Number of virtual worker nodes (the paper uses 10).
  size_t num_nodes = 10;
  /// Simulated network cost charged to a sending node per shuffled byte.
  /// The default models a ~1 GB/s effective interconnect. Set to 0 to
  /// benchmark pure compute.
  double shuffle_ns_per_byte = 1.0;
  /// Rows accumulated per (source, destination) buffer before a shuffle
  /// batch is flushed to its destination. The simulated network cost is
  /// charged once per flushed batch. 1 degenerates to row-at-a-time.
  size_t shuffle_batch_rows = 1024;
  /// Fixed simulated latency charged per flushed remote batch (on top of
  /// the per-byte cost) — the "per-message" term of a real interconnect.
  double shuffle_ns_per_batch = 0.0;
  /// When true (default), operator calls dispatch onto a persistent worker
  /// pool owned by the Cluster. When false, every call spawns and joins
  /// fresh threads — the pre-pool behavior, kept for A/B benchmarking.
  bool use_worker_pool = true;
  /// Deterministic fault injection + retry/blacklist knobs (off by
  /// default). See engine/fault.h.
  FaultOptions fault;
};

/// \brief N-node virtual cluster. All engine operators run through it.
///
/// Thread model: the cluster owns one persistent worker thread per node
/// (see WorkerPool); every operator call dispatches one task epoch and
/// blocks on its completion latch. Shuffles accumulate outgoing rows into
/// per-destination batches, charge the simulated network cost per flushed
/// batch, and destinations splice whole batches via std::move.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  /// Nodes participating in execution right now (≤ max_nodes; see
  /// SetActiveNodes). All Partitioned widths follow this value.
  size_t num_nodes() const { return active_nodes_; }
  /// Physical pool width, fixed at construction.
  size_t max_nodes() const { return options_.num_nodes; }
  const ClusterOptions& options() const { return options_; }

  /// The calling thread's metrics destination: the MetricsScope override
  /// when one is installed (per-execution counters), else the cluster's
  /// session-cumulative counters.
  QueryMetrics& metrics() const;

  /// The session-cumulative counters, bypassing any MetricsScope override —
  /// where completed executions fold their per-execution totals.
  QueryMetrics& session_metrics() const { return metrics_; }

  // ---- Per-execution reconfiguration (the session API's ExecOptions) ----
  //
  // These mutate the shared cluster and must only be called from the
  // driver between operator calls — never while an epoch is in flight.
  // Callers are expected to restore the previous values afterwards (see
  // cleaning/prepared_query.cc, ScopedClusterConfig).

  /// Caps execution to the first `n` nodes (clamped to [1, max_nodes]).
  /// Workers above the cap idle through their epochs; partitionings built
  /// under a different cap are not interchangeable (the partition cache
  /// keys on the active width).
  void SetActiveNodes(size_t n);

  /// Re-points the simulated interconnect cost model.
  void SetShuffleCost(double ns_per_byte, double ns_per_batch);

  /// Re-sizes the per-destination shuffle batches (clamped to ≥ 1).
  void SetShuffleBatchRows(size_t rows);

  /// Re-points the fault-injection / retry knobs. Per-node attempt counters
  /// and blacklist state survive (a node blacklisted earlier in the session
  /// stays out of service).
  void SetFaultOptions(const FaultOptions& options);
  const FaultOptions& fault_options() const { return fault_->options(); }

  /// True when `node` was blacklisted after node_blacklist_threshold
  /// consecutive failures. New partitionings route around such nodes.
  bool NodeBlacklisted(size_t node) const { return fault_->blacklisted(node); }

  /// Runs fn(node_id) on every node concurrently and waits for all.
  /// Worker exceptions propagate to the caller (first one wins). Each
  /// node's task attempt passes through the fault injector: an injected
  /// kUnavailable failure is retried with capped exponential backoff (the
  /// attempt fails *before* fn runs, so the retry re-executes that node's
  /// partition from its still-resident input and partials stay exact);
  /// retries exhausted throws NodeUnavailableError. An installed
  /// ExecControlScope is checked per attempt (epoch-boundary cancellation).
  void RunOnNodes(const std::function<void(size_t)>& fn) const;

  /// Distributes rows round-robin across nodes ("parallelize").
  Partitioned Parallelize(const std::vector<Row>& rows) const;

  /// Gathers all partitions to the driver (order: node 0..N-1).
  std::vector<Row> Collect(const Partitioned& data) const;

  static size_t TotalRows(const Partitioned& data);

  /// Per-node row counts, for imbalance analysis.
  LoadReport Load(const Partitioned& data) const;

  // ---- Narrow-dependency transformations (no shuffle) ----

  Partitioned Map(const Partitioned& in,
                  const std::function<Row(const Row&)>& fn) const;

  Partitioned Filter(const Partitioned& in,
                     const std::function<bool(const Row&)>& pred) const;

  Partitioned FlatMap(const Partitioned& in,
                      const std::function<void(const Row&, Partition*)>& fn) const;

  /// mapPartitions: the function sees a whole node-local partition at once.
  Partitioned MapPartitions(
      const Partitioned& in,
      const std::function<Partition(size_t node, const Partition&)>& fn) const;

  // ---- Wide dependencies (shuffle; metered + charged) ----

  /// Routes every row to the node chosen by `route(row) % num_nodes`.
  /// Each source accumulates per-destination batches of
  /// `shuffle_batch_rows` rows; the network charge lands once per flushed
  /// remote batch. Row-level metrics are identical to an unbatched shuffle.
  Partitioned Shuffle(const Partitioned& in,
                      const std::function<uint64_t(const Row&)>& route);

  /// Replicates every row of `in` to all nodes (broadcast); traffic is
  /// charged once per (row, receiving node), concurrently per sending node.
  Partition BroadcastAll(const Partitioned& in);

  // ---- Morsel-driven pipelining (operator-level streaming) ----
  //
  // Both pumps stream `source` through `expand` in fixed-size morsels on
  // the persistent workers instead of materializing a whole transformed
  // Partitioned. They meter morsels_processed and charge each in-flight
  // morsel's logical bytes to the peak_bytes_materialized gauge.

  /// Workers expand their own node's rows concurrently; the *calling
  /// thread* consumes the transformed morsels in deterministic node-major
  /// order (node 0's morsels in row order, then node 1's, ...), exactly the
  /// order Collect() would deliver. Producers run ahead of the consumer by
  /// at most `spec.queue_window` morsels per node. A non-OK status from
  /// `consume` aborts the producers early and is returned; worker
  /// exceptions rethrow on the caller.
  Status PumpToDriver(const Partitioned& source, const MorselSpec& spec,
                      const MorselExpand& expand,
                      const std::function<Status(size_t node, Partition&&)>& consume);

  /// Same production loop, but each node's morsels are consumed on that
  /// node's own worker thread with no cross-node ordering — the shape
  /// pipeline *breakers* want (fold each morsel straight into node-local
  /// aggregation state). `consume` must tolerate concurrent calls for
  /// distinct nodes; per node, calls arrive in row order.
  void PumpOnWorkers(const Partitioned& source, const MorselSpec& spec,
                     const MorselExpand& expand,
                     const std::function<void(size_t node, Partition&&)>& consume) const;

 private:
  ClusterOptions options_;
  /// Nodes participating in execution (≤ options_.num_nodes).
  size_t active_nodes_;
  mutable QueryMetrics metrics_;
  /// Lives for the Cluster's lifetime; null when use_worker_pool is false.
  mutable std::unique_ptr<WorkerPool> pool_;
  /// Seeded fault state; always constructed (injection disabled by default).
  mutable std::unique_ptr<FaultInjector> fault_;

  /// One node's task attempt loop: ExecControl check, fault injection,
  /// retry with capped exponential backoff, blacklist bookkeeping. Runs
  /// `body(n)` at most 1 + max_task_retries times; only injector-thrown
  /// unavailability retries (real worker errors propagate immediately).
  void RunWithFaults(size_t n, const std::function<void(size_t)>& body) const;

  /// Destination remap for new partitionings: a blacklisted node receives
  /// nothing; its share re-routes to the next surviving node.
  size_t SurvivorFor(size_t dst) const;

  /// Sleeps for the simulated transfer time of `bytes` across `batches`
  /// network messages. Pure wall-clock charge; metering is the caller's
  /// job. Sleeps in small slices, checking the installed ExecControl
  /// between slices, so deadlines stay prompt in shuffle-dominated epochs.
  void ChargeNetwork(uint64_t bytes, uint64_t batches) const;
};

}  // namespace cleanm::engine
