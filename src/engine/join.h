// Distributed joins: partitioned hash equi-join, broadcast join, and the
// three theta-join algorithms the evaluation contrasts (paper Section 6,
// "Handling theta joins"; Table 5).
//
//  * kCartesian  — Spark SQL's default for non-equi predicates: broadcast
//    one side everywhere and evaluate the full cross product. O(|L|·|S|)
//    comparisons and O(|S|·N) traffic; the plan that "was unable to
//    compute" rule ψ in the paper.
//  * kMinMax     — BigDansing: partition both sides arbitrarily, compute
//    per-partition min/max of the join attributes, and only ship/compare
//    partition pairs whose ranges overlap. Prunes little unless the
//    partitioning aligns with the predicate attributes.
//  * kMatrix     — CleanDB: the statistics-aware matrix partitioning of
//    Okcan & Riedewald. The |L|×|S| comparison matrix is tiled into N
//    near-square rectangles of equal area using the observed cardinalities,
//    one rectangle per node: balanced load by construction.
#pragma once

#include <functional>

#include "engine/cluster.h"

namespace cleanm {
class SpillContext;
}

namespace cleanm::engine {

/// Equality join: partitions both sides by key hash, then builds and probes
/// a node-local hash table. `left_key`/`right_key` extract the join key;
/// `emit` receives each matching pair. `spill` (optional) bounds the build
/// side: when the shuffled right side exceeds the pool budget it is written
/// to the spill file after the shuffle and re-read per node for the
/// build+probe phase, so the resident copy exists one node at a time.
Partitioned HashEquiJoin(Cluster& cluster, const Partitioned& left,
                         const Partitioned& right,
                         const std::function<Value(const Row&)>& left_key,
                         const std::function<Value(const Row&)>& right_key,
                         const std::function<Row(const Row&, const Row&)>& emit,
                         SpillContext* spill = nullptr);

/// Left outer equality join: unmatched left rows are emitted via
/// `emit_unmatched`. `spill` as in HashEquiJoin.
Partitioned HashLeftOuterJoin(
    Cluster& cluster, const Partitioned& left, const Partitioned& right,
    const std::function<Value(const Row&)>& left_key,
    const std::function<Value(const Row&)>& right_key,
    const std::function<Row(const Row&, const Row&)>& emit,
    const std::function<Row(const Row&)>& emit_unmatched,
    SpillContext* spill = nullptr);

enum class ThetaJoinAlgo {
  kCartesian,
  kMinMax,
  kMatrix,
};

const char* ThetaJoinAlgoName(ThetaJoinAlgo a);

struct ThetaJoinOptions {
  ThetaJoinAlgo algo = ThetaJoinAlgo::kMatrix;
  /// For kMinMax: value extractor used to compute per-partition min/max
  /// bounds; a partition pair is compared only when [min,max] ranges
  /// overlap as required by `ranges_may_match`.
  std::function<Value(const Row&)> left_bound;
  std::function<Value(const Row&)> right_bound;
  /// Given (left_min, left_max, right_min, right_max), may any pair match?
  /// Defaults to "always true" (no pruning), the worst case the paper
  /// describes for misaligned partitioning.
  std::function<bool(const Value&, const Value&, const Value&, const Value&)>
      ranges_may_match;
};

/// General theta join: emits `emit(l, r)` for every pair satisfying `pred`.
/// Every pairwise predicate evaluation increments metrics().comparisons.
Partitioned ThetaJoin(Cluster& cluster, const Partitioned& left,
                      const Partitioned& right,
                      const std::function<bool(const Row&, const Row&)>& pred,
                      const std::function<Row(const Row&, const Row&)>& emit,
                      const ThetaJoinOptions& options = {});

}  // namespace cleanm::engine
