// Morsel-driven pipelining over the persistent worker pool.
//
// The pumps move fixed-size row batches ("morsels") from a resident source
// Partitioned through a per-row expansion to a consumer, instead of
// materializing the whole transformed output (paper-level motivation: one
// pass over huge dirty data should hold one morsel per node in memory, not
// an operator's full result). PumpToDriver hands morsels to the calling
// thread in deterministic node-major order through bounded per-node queues,
// so producers pipeline ahead of the consumer by a fixed window;
// PumpOnWorkers keeps consumption on the producing worker for node-local
// breaker state (aggregation folds).
//
// Materialization accounting: the instantaneous set of in-flight morsels
// depends on thread timing, so charging them live would make
// peak_bytes_materialized nondeterministic run to run. Instead each node
// tracks its largest morsel, and the pump folds the deterministic
// worst-case bound — every node simultaneously holding its largest morsel
// at every pipeline slot (the build buffer plus, for PumpToDriver, the
// queue window) — into the peak once the pump drains.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/trace.h"
#include "engine/cluster.h"

namespace cleanm::engine {

namespace {

/// One node's flushed-but-unconsumed morsels (PumpToDriver).
struct MorselQueue {
  std::deque<Partition> morsels;
  bool done = false;
};

/// Per-node morsel-size statistics for the in-flight bound.
struct MorselStats {
  uint64_t max_bytes = 0;    ///< largest single morsel
  uint64_t total_bytes = 0;  ///< whole stream (an in-flight cap)
  void Observe(uint64_t bytes) {
    if (bytes > max_bytes) max_bytes = bytes;
    total_bytes += bytes;
  }
};

/// Folds the per-node worst-case in-flight bound into the peak gauge: every
/// node simultaneously holding its largest morsel at every pipeline slot,
/// capped by the node's total stream (in-flight can never exceed what the
/// node produces overall).
void ChargeInFlightBound(QueryMetrics& metrics, const std::vector<MorselStats>& stats,
                         uint64_t slots_per_node) {
  uint64_t bound = 0;
  for (const MorselStats& s : stats) {
    bound += std::min(s.max_bytes * slots_per_node, s.total_bytes);
  }
  if (bound == 0) return;
  metrics.ChargeMaterialized(bound);
  metrics.ReleaseMaterialized(bound);
}

/// One node's produce loop, shared by every pump mode: expand rows into a
/// morsel buffer, hand each full morsel (and the final partial one) to
/// `flush`. `flush` observes a non-empty buffer, consumes or queues it, and
/// returns false to stop producing early (abort / sink error); `stop`, when
/// given, is polled per row for cross-thread aborts. Morsel-size stats are
/// observed here so every mode feeds the in-flight bound identically.
template <typename Flush>
void ProduceNode(const Partition& rows, size_t morsel_rows,
                 const MorselExpand& expand, size_t n, MorselStats* node_stats,
                 const std::atomic<bool>* stop, Flush&& flush) {
  Partition buf;
  auto emit = [&]() -> bool {
    if (buf.empty()) return true;
    node_stats->Observe(PartitionLogicalBytes(buf));
    if (!flush(&buf)) return false;
    buf = Partition();
    return true;
  };
  for (const auto& row : rows) {
    if (stop && stop->load(std::memory_order_relaxed)) break;
    expand(n, row, &buf);
    if (buf.size() >= morsel_rows && !emit()) return;
  }
  emit();
}

}  // namespace

void Cluster::PumpOnWorkers(
    const Partitioned& source, const MorselSpec& spec, const MorselExpand& expand,
    const std::function<void(size_t node, Partition&&)>& consume) const {
  const size_t morsel_rows = spec.morsel_rows < 1 ? 1 : spec.morsel_rows;
  TraceScope pump_span("pipeline", "pump_workers");
  std::vector<MorselStats> stats(active_nodes_);
  RunOnNodes([&](size_t n) {
    if (n >= source.size()) return;
    ProduceNode(source[n], morsel_rows, expand, n, &stats[n], nullptr,
                [&](Partition* buf) {
                  metrics().morsels_processed += 1;
                  consume(n, std::move(*buf));
                  return true;
                });
  });
  ChargeInFlightBound(metrics(), stats, /*slots_per_node=*/1);
}

Status Cluster::PumpToDriver(
    const Partitioned& source, const MorselSpec& spec, const MorselExpand& expand,
    const std::function<Status(size_t node, Partition&&)>& consume) {
  const size_t n_nodes = active_nodes_;
  const size_t morsel_rows = spec.morsel_rows < 1 ? 1 : spec.morsel_rows;
  const size_t window = spec.queue_window < 1 ? 1 : spec.queue_window;
  TraceScope pump_span("pipeline", "pump");
  std::vector<MorselStats> stats(n_nodes);

  // Nested invocation (an operator running inside a worker task): drive the
  // pipeline inline on the calling thread, interleaving produce and consume
  // per morsel — same order, no concurrency. Only the truly-nested case runs
  // inline; a driver that merely lost the pool to another session falls
  // through to spawned producer threads below, so its pipeline stays
  // parallel instead of serializing every node on the calling thread.
  const ExecControl* exec_control = ExecControlScope::Current();
  if (pool_ && pool_->OnWorkerThread()) {
    Status status = Status::OK();
    for (size_t n = 0; n < n_nodes && n < source.size() && status.ok(); n++) {
      if (exec_control && !(status = exec_control->Check()).ok()) break;
      ProduceNode(source[n], morsel_rows, expand, n, &stats[n], nullptr,
                  [&](Partition* buf) {
                    metrics().morsels_processed += 1;
                    status = consume(n, std::move(*buf));
                    return status.ok();
                  });
    }
    ChargeInFlightBound(metrics(), stats, /*slots_per_node=*/1);
    return status;
  }

  std::mutex mu;
  std::condition_variable cv_space;  ///< producers: a queue slot freed / abort
  std::condition_variable cv_data;   ///< driver: a morsel arrived / a node done
  std::vector<MorselQueue> queues(n_nodes);
  // Written under mu (so cv waits cannot miss the flip); read locklessly in
  // the producers' row loops.
  std::atomic<bool> abort{false};

  // Producers run on pool workers (or legacy threads) but charge the
  // dispatching driver's per-execution metrics and observe its cancellation
  // sources. Each node's produce loop is one task attempt through the fault
  // injector: an injected failure fires before any morsel is flushed, so
  // the retry re-produces that node's stream from the start with the queue
  // still empty — delivery stays bit-identical.
  QueryMetrics* driver_metrics = MetricsScope::Current();
  TraceRecorder* driver_rec = TraceRecorderScope::Current();
  const uint64_t trace_parent = TraceRecorderScope::CurrentParent();
  auto produce = [&, driver_metrics, exec_control, driver_rec,
                  trace_parent](size_t n) {
    MetricsScope metrics_scope(driver_metrics);
    ExecControlScope control_scope(exec_control);
    TraceRecorderScope trace_scope(driver_rec, trace_parent);
    if (n >= n_nodes) return;
    TraceScope produce_span("pipeline", "produce", nullptr,
                            static_cast<int>(n));
    auto mark_done = [&] {
      std::lock_guard<std::mutex> lock(mu);
      queues[n].done = true;
      cv_data.notify_all();
    };
    try {
      if (n < source.size()) {
        RunWithFaults(n, [&](size_t node) {
          ProduceNode(source[node], morsel_rows, expand, node, &stats[node],
                      &abort,
                      [&](Partition* buf) {  // false: aborted, stop producing
                        std::unique_lock<std::mutex> lock(mu);
                        cv_space.wait(lock, [&] {
                          return queues[node].morsels.size() < window || abort;
                        });
                        if (abort) return false;
                        metrics().morsels_processed += 1;
                        queues[node].morsels.push_back(std::move(*buf));
                        cv_data.notify_all();
                        return true;
                      });
        });
      }
      mark_done();
    } catch (...) {
      mark_done();  // never leave the driver waiting on a dead producer
      throw;        // captured by the pool / the legacy thread wrapper
    }
  };

  // Launch the producers: one epoch on the pool when this session owns the
  // driver slot, otherwise (legacy model, or the pool is busy with another
  // session) one fresh thread per node with the same exception contract.
  const bool own_pool = pool_ && pool_->TryAcquireDriver();
  std::vector<std::thread> legacy_threads;
  std::mutex legacy_error_mu;
  std::exception_ptr legacy_error;
  if (own_pool) {
    pool_->Dispatch(produce);
  } else {
    legacy_threads.reserve(n_nodes);
    for (size_t n = 0; n < n_nodes; n++) {
      legacy_threads.emplace_back([&, n] {
        try {
          produce(n);
        } catch (...) {
          std::lock_guard<std::mutex> lock(legacy_error_mu);
          if (!legacy_error) legacy_error = std::current_exception();
        }
      });
    }
  }

  auto abort_producers = [&] {
    std::lock_guard<std::mutex> lock(mu);
    abort = true;
    cv_space.notify_all();
  };
  auto join_producers = [&] {
    if (own_pool) {
      pool_->Wait();
    } else {
      for (auto& t : legacy_threads) t.join();
    }
  };

  // Drain node-major on this thread; stop producing on the first sink
  // error. A *throwing* consume must not unwind past the stack-local
  // queues while producers still touch them: abort and join first, then
  // rethrow (the driver's exception outranks any worker error).
  Status status = Status::OK();
  try {
    for (size_t n = 0; n < n_nodes && status.ok(); n++) {
      for (;;) {
        Partition morsel;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_data.wait(lock, [&] {
            return !queues[n].morsels.empty() || queues[n].done;
          });
          if (queues[n].morsels.empty()) break;  // node finished
          morsel = std::move(queues[n].morsels.front());
          queues[n].morsels.pop_front();
          cv_space.notify_all();
        }
        // Morsel-boundary cancellation: stop consuming (and producing) as
        // soon as the execution is cancelled or overdue.
        if (exec_control) status = exec_control->Check();
        if (status.ok()) status = consume(n, std::move(morsel));
        if (!status.ok()) {
          abort_producers();
          break;
        }
      }
    }
  } catch (...) {
    abort_producers();
    try {
      join_producers();
    } catch (...) {
    }
    throw;
  }

  // Wait out the producers (on abort they observe the flag and exit).
  join_producers();
  if (legacy_error) std::rethrow_exception(legacy_error);
  // Worst case in flight: every node's largest morsel at every slot — the
  // queue window plus the one being built — plus the one crossing to the
  // driver.
  ChargeInFlightBound(metrics(), stats, /*slots_per_node=*/window + 2);
  return status;
}

}  // namespace cleanm::engine
