#include "repair/repair_sink.h"

#include <algorithm>
#include <unordered_map>

#include "algebra/algebra_eval.h"  // RowToRecord
#include "common/trace.h"

namespace cleanm {

namespace {

/// An action value: a struct with an "entity" field and a struct-valued
/// "set" field. (The shape is distinctive enough that projection fields
/// carrying ordinary data can never be mistaken for repairs.)
bool IsRepairAction(const Value& v) {
  if (v.type() != ValueType::kStruct) return false;
  bool has_entity = false, has_set = false;
  for (const auto& [name, field] : v.AsStruct()) {
    if (name == "entity") has_entity = true;
    if (name == "set" && field.type() == ValueType::kStruct) has_set = true;
  }
  return has_entity && has_set;
}

RepairAction ToAction(const Value& v) {
  RepairAction action;
  for (const auto& [name, field] : v.AsStruct()) {
    if (name == "entity") action.entity = field;
    if (name == "set") action.set = field.AsStruct();
  }
  return action;
}

}  // namespace

std::vector<RepairAction> ExtractRepairActions(
    const Value& output_tuple, const std::vector<std::string>* fields) {
  std::vector<RepairAction> actions;
  if (output_tuple.type() != ValueType::kStruct) return actions;
  for (const auto& [name, field] : output_tuple.AsStruct()) {
    if (fields != nullptr &&
        std::find(fields->begin(), fields->end(), name) == fields->end()) {
      continue;
    }
    if (IsRepairAction(field)) {
      actions.push_back(ToAction(field));
      continue;
    }
    if (field.type() == ValueType::kList) {
      for (const auto& element : field.AsList()) {
        if (IsRepairAction(element)) actions.push_back(ToAction(element));
      }
    }
  }
  return actions;
}

Result<Dataset> ApplyRepairActions(const Dataset& source,
                                   const std::vector<RepairAction>& actions,
                                   RepairSummary* summary, QueryMetrics* metrics) {
  summary->actions = actions.size();

  // Resolve the target columns once, and index the actions by entity hash
  // so the application pass stays O(rows + actions).
  std::vector<std::vector<size_t>> column_indexes(actions.size());
  std::unordered_map<uint64_t, std::vector<size_t>> by_entity;
  for (size_t a = 0; a < actions.size(); a++) {
    for (const auto& [column, value] : actions[a].set) {
      (void)value;
      CLEANM_ASSIGN_OR_RETURN(size_t idx, source.schema().IndexOf(column));
      column_indexes[a].push_back(idx);
    }
    by_entity[actions[a].entity.Hash()].push_back(a);
  }

  std::vector<bool> matched(actions.size(), false);
  Dataset repaired(source.schema());
  for (const auto& source_row : source.rows()) {
    Row row = source_row;
    const Value record = RowToRecord(source.schema(), source_row);
    bool changed = false;
    auto candidates = by_entity.find(record.Hash());
    if (candidates != by_entity.end()) {
      for (size_t a : candidates->second) {
        if (!actions[a].entity.Equals(record)) continue;
        matched[a] = true;
        for (size_t s = 0; s < actions[a].set.size(); s++) {
          const size_t idx = column_indexes[a][s];
          const Value& new_value = actions[a].set[s].second;
          if (row[idx].Equals(new_value)) continue;
          row[idx] = new_value;
          summary->cells_changed++;
          changed = true;
        }
      }
    }
    if (changed) summary->rows_changed++;
    repaired.Append(std::move(row));
  }
  for (bool m : matched) {
    if (!m) summary->unmatched++;
  }
  if (metrics) metrics->repairs_applied += summary->cells_changed;
  return repaired;
}

RepairSink::RepairSink(CleanDB* db, const PreparedQuery& pq,
                       std::string target_table)
    : db_(db),
      source_table_(pq.repair_table()),
      target_table_(std::move(target_table)),
      repair_fields_(pq.repair_fields()) {}

RepairSink::RepairSink(CleanDB* db, std::string source_table,
                       std::string target_table)
    : db_(db),
      source_table_(std::move(source_table)),
      target_table_(std::move(target_table)) {}

Status RepairSink::OnViolation(const std::string& op_name, const Value& violation) {
  (void)op_name;
  const std::vector<std::string>* fields =
      repair_fields_.empty() ? nullptr : &repair_fields_;
  for (auto& action : ExtractRepairActions(violation, fields)) {
    actions_.push_back(std::move(action));
  }
  return Status::OK();
}

Status RepairSink::OnDirtyEntity(const Value& entity,
                                 const std::vector<std::string>& violated_ops) {
  (void)entity;
  (void)violated_ops;
  return Status::OK();
}

Result<RepairSummary> RepairSink::Commit() {
  if (db_ == nullptr) return Status::Internal("RepairSink has no CleanDB");
  TraceScope commit_span("repair", "repair_commit");
  commit_span.SetRowsIn(actions_.size());
  // Read-modify-write under the session commit lock: no other committer can
  // replace the source table between reading it and re-registering the
  // repaired copy, so concurrent Commits serialize instead of losing
  // updates. In-flight executions are unaffected — they hold snapshot
  // leases — and see the new generation only if they start after
  // RegisterTable below.
  auto commit_lock = db_->LockCommits();
  CLEANM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> source,
                          db_->GetTableShared(source_table_));

  RepairSummary summary;
  CLEANM_ASSIGN_OR_RETURN(
      Dataset repaired,
      ApplyRepairActions(*source, actions_, &summary,
                         &db_->cluster().session_metrics()));

  // Re-register under the target name: RegisterTable bumps the generation
  // and invalidates every cached partitioning of that table, so follow-up
  // (even already-prepared) queries bind the clean data.
  const std::string target =
      target_table_.empty() ? source_table_ : target_table_;
  db_->RegisterTable(target, std::move(repaired));
  summary.table = target;
  summary.new_generation = db_->TableGeneration(target);
  actions_.clear();
  return summary;
}

Result<RepairSummary> RepairSink::CommitDelta() {
  if (db_ == nullptr) return Status::Internal("RepairSink has no CleanDB");
  if (!target_table_.empty() && target_table_ != source_table_) {
    return Status::InvalidArgument(
        "CommitDelta repairs in place; re-registering under a new name ('" +
        target_table_ + "') requires Commit()");
  }
  TraceScope commit_span("repair", "repair_commit_delta");
  commit_span.SetRowsIn(actions_.size());
  // Same serialization as Commit(): the commit lock keeps other committers
  // out of the read-modify-write window. The mutation itself is atomic
  // under the table lock; concurrent snapshots see either the pre- or
  // post-repair generation, never a torn state.
  auto commit_lock = db_->LockCommits();
  CLEANM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> source,
                          db_->GetTableShared(source_table_));

  RepairSummary summary;
  summary.actions = actions_.size();

  // Resolve target columns and index actions by entity hash up front (the
  // same O(rows + actions) plan as ApplyRepairActions). Mutations never
  // change a table's schema, so the indexes stay valid for the editor run.
  std::vector<std::vector<size_t>> column_indexes(actions_.size());
  std::unordered_map<uint64_t, std::vector<size_t>> by_entity;
  for (size_t a = 0; a < actions_.size(); a++) {
    for (const auto& [column, value] : actions_[a].set) {
      (void)value;
      CLEANM_ASSIGN_OR_RETURN(size_t idx, source->schema().IndexOf(column));
      column_indexes[a].push_back(idx);
    }
    by_entity[actions_[a].entity.Hash()].push_back(a);
  }

  std::vector<bool> matched(actions_.size(), false);
  CLEANM_ASSIGN_OR_RETURN(
      CleanDB::MutationResult mutation,
      db_->UpdateRowsWith(
          source_table_, [&](const Schema& schema, Row* row) -> bool {
            const Value record = RowToRecord(schema, *row);
            auto candidates = by_entity.find(record.Hash());
            if (candidates == by_entity.end()) return false;
            bool changed = false;
            for (size_t a : candidates->second) {
              if (!actions_[a].entity.Equals(record)) continue;
              matched[a] = true;
              for (size_t s = 0; s < actions_[a].set.size(); s++) {
                const size_t idx = column_indexes[a][s];
                const Value& new_value = actions_[a].set[s].second;
                if ((*row)[idx].Equals(new_value)) continue;
                (*row)[idx] = new_value;
                summary.cells_changed++;
                changed = true;
              }
            }
            if (changed) summary.rows_changed++;
            return changed;
          }));
  for (bool m : matched) {
    if (!m) summary.unmatched++;
  }
  db_->cluster().session_metrics().repairs_applied += summary.cells_changed;

  summary.table = source_table_;
  summary.new_generation =
      mutation.generation ? mutation.generation : db_->TableGeneration(source_table_);
  actions_.clear();
  return summary;
}

}  // namespace cleanm
