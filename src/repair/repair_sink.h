// The repair half of the function-registry subsystem: collect the
// repair-action outputs of a query, apply them cell-wise, and re-register
// the repaired table so follow-up queries run against clean data.
//
// This closes the paper's detect → repair loop (and echoes the
// consistent-query-answering view of repairs: a repaired relation is a
// first-class query input, not side-channel output). A registered repair
// function (FunctionRegistry::RegisterRepair) called in SELECT position
// emits actions of the shape
//
//   { "entity": <source record>, "set": { <column>: <new value>, ... } }
//
// (one action or a list per output cell). RepairSink streams over a
// PreparedQuery execution, recognizes those action values, and on Commit():
//
//   1. matches each action's `entity` against the source table's records
//      (Value equality over the full record — the same representation the
//      plan scanned),
//   2. overwrites the named cells (counted into QueryMetrics::
//      repairs_applied),
//   3. materializes the repaired Dataset and re-registers it via
//      CleanDB::RegisterTable under the target name — which bumps the
//      table generation and eagerly invalidates every cached partitioning,
//      so a later PreparedQuery execution re-partitions the clean data and
//      can never see the dirty rows again.
//
// Usage:
//   RepairSink sink(&db, pq.repair_table());      // in-place repair
//   CLEANM_RETURN_NOT_OK(pq.ExecuteInto(sink));
//   auto summary = sink.Commit();                  // applies + re-registers
#pragma once

#include <string>
#include <vector>

#include "cleaning/cleandb.h"
#include "cleaning/prepared_query.h"
#include "cleaning/violation_sink.h"
#include "storage/dataset.h"

namespace cleanm {

/// One cell-wise repair: overwrite `set`'s columns on every source row
/// whose record equals `entity`.
struct RepairAction {
  Value entity;
  ValueStruct set;  ///< column → new value
};

/// Outcome of one Commit().
struct RepairSummary {
  size_t actions = 0;        ///< actions collected from the execution
  size_t rows_changed = 0;   ///< source rows with ≥ 1 cell overwritten
  size_t cells_changed = 0;  ///< cells whose value actually changed
  size_t unmatched = 0;      ///< actions whose entity matched no source row
  std::string table;         ///< name the repaired table was registered under
  uint64_t new_generation = 0;
};

/// Extracts the repair actions embedded in one query-output tuple: every
/// field whose value is an action ({entity, set} struct) or a list of
/// actions contributes; other fields are ignored. `fields` (optional)
/// restricts extraction to the named output fields — the scoping a
/// PreparedQuery's repair_fields() provides, so tuples of *other*
/// operations (or data columns that happen to look action-shaped) can
/// never be mistaken for repairs. Exposed for tests.
std::vector<RepairAction> ExtractRepairActions(
    const Value& output_tuple, const std::vector<std::string>* fields = nullptr);

/// Applies `actions` to `source` cell-wise (see RepairAction). Unknown
/// columns in an action's `set` are kKeyError. Fills `summary`'s
/// row/cell/unmatched counts; `metrics` (optional) is charged one
/// repairs_applied tick per changed cell.
Result<Dataset> ApplyRepairActions(const Dataset& source,
                                   const std::vector<RepairAction>& actions,
                                   RepairSummary* summary,
                                   QueryMetrics* metrics = nullptr);

/// \brief Streaming sink that collects repair actions during a
/// PreparedQuery execution and applies + re-registers on Commit().
class RepairSink final : public ViolationSink {
 public:
  /// The preferred form: scopes collection to `pq`'s repair metadata —
  /// only values in the prepared query's repair_fields() are treated as
  /// actions, and the source table is its repair_table(). `target_table`
  /// names the re-registered result; empty = repair in place (re-register
  /// under the source name, bumping its generation).
  RepairSink(CleanDB* db, const PreparedQuery& pq, std::string target_table = "");

  /// Unscoped form for hand-built pipelines: *any* action-shaped field of
  /// any streamed violation is collected. Prefer the PreparedQuery form
  /// when one exists — it cannot mistake look-alike data for repairs.
  RepairSink(CleanDB* db, std::string source_table, std::string target_table = "");

  Status OnViolation(const std::string& op_name, const Value& violation) override;
  Status OnDirtyEntity(const Value& entity,
                       const std::vector<std::string>& violated_ops) override;

  /// Applies the collected actions to the current contents of the source
  /// table, registers the repaired dataset, and resets the collected set
  /// (so one sink can serve repeated execute→commit rounds). kKeyError when
  /// the source table is unknown or an action names an unknown column.
  Result<RepairSummary> Commit();

  /// Mutation-path commit: applies the collected actions through
  /// CleanDB::UpdateRowsWith instead of re-registering. The repair lands as
  /// a *minor* generation — cached partitionings stay valid and the next
  /// execution of the detecting query re-validates incrementally from the
  /// delta log, so the detect → repair fixpoint loops without ever
  /// re-partitioning (repair → delta re-validate → repair). Only valid for
  /// in-place repair (no target table, or target == source): a mutation
  /// cannot create a new registration — use Commit() for that. A no-op
  /// round (every action already applied or unmatched) publishes nothing;
  /// MutationResult semantics, surfaced through the same RepairSummary.
  Result<RepairSummary> CommitDelta();

  const std::vector<RepairAction>& actions() const { return actions_; }

 private:
  CleanDB* db_;
  std::string source_table_;
  std::string target_table_;
  /// Output fields to harvest actions from; empty = unscoped.
  std::vector<std::string> repair_fields_;
  std::vector<RepairAction> actions_;
};

}  // namespace cleanm
