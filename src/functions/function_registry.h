// Session-owned registry of user-defined functions (the "Extending CleanM"
// surface): scalar functions, monoid-annotated aggregates, and repair
// functions, all callable from CleanM query text.
//
// The paper's claim is that *every* cleaning operation — including
// user-written repair logic — is expressible inside one optimizable CleanM
// query. The registry is what makes that true beyond the built-in
// operators:
//
//  * Scalar functions extend the builtin library (prefix, lower, ...) and
//    run per row inside compiled predicates and projections.
//  * Aggregate functions carry a full monoid annotation — identity (zero),
//    unit, and an associative merge — so the physical layer can fold them
//    with local pre-aggregation and merge partial accumulators across
//    worker nodes exactly like the built-in monoids (Section 4.1's
//    parallelism argument applies unchanged). An optional `finalize` maps
//    the accumulator to the reported value (e.g. a {sum, count} pair to a
//    mean), which keeps non-monoid aggregates like avg distributable.
//  * Repair functions are scalar-callable from SELECT position but their
//    results follow the repair-action contract (see below); a RepairSink
//    (src/repair/) collects those actions, applies them cell-wise, and
//    re-registers the repaired table.
//
// Repair-action contract: a repair function returns either one action or a
// list of actions, each a struct Value
//
//   { "entity": <the source record to repair>,
//     "set":    { <column>: <new value>, ... } }
//
// `entity` must equal (Value::Equals) the record as scanned from the source
// table; `set` names the cells to overwrite. Anything else in the result is
// ignored by the repair applier.
//
// Name resolution: registered names must not shadow builtin functions or
// builtin monoids — registration fails instead, so a query's meaning can
// never change silently when a registry fills up.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "monoid/monoid.h"
#include "storage/value.h"

namespace cleanm {

/// A user function body: argument values → result. Non-OK results
/// null-propagate on the physical path (like builtin errors) and surface as
/// errors on the strict reference-evaluator path.
using UserFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// A registered scalar (or repair) function.
struct ScalarFunction {
  std::string name;
  /// Declared argument count; -1 = variadic. Checked at Prepare time.
  int arity = -1;
  UserFn fn;
  /// True for repair functions: results follow the repair-action contract
  /// and are routed to the RepairSink by the cleaning layer.
  bool is_repair = false;
};

/// A registered aggregate: a monoid (zero / unit / merge) plus an optional
/// finalizer applied once per group after all partial merges.
struct AggregateFunction {
  std::string name;
  std::shared_ptr<Monoid> monoid;
  /// Optional: maps the final accumulator to the reported value. Null =
  /// report the accumulator itself.
  UserFn finalize;
};

/// \brief Per-session function registry. Owned by CleanDB; consulted by
/// Prepare-time validation, the physical expression compiler, the Nest/
/// Reduce planners, and the reference evaluator.
///
/// Thread-safe: registrations take an exclusive lock, lookups a shared one.
/// Returned ScalarFunction/AggregateFunction pointers stay valid for the
/// registry's lifetime — entries live in node-stable maps and are never
/// erased — so compiled plans may hold them across concurrent
/// registrations; a registration is visible to queries prepared after it.
class FunctionRegistry {
 public:
  /// Registers a scalar function. `arity` -1 = variadic. Fails with
  /// kInvalidArgument on an empty name, a duplicate registration, or a name
  /// that shadows a builtin function or monoid.
  Status RegisterScalar(const std::string& name, int arity, UserFn fn);

  /// Registers a repair function (a scalar whose results follow the
  /// repair-action contract above). Same name rules as RegisterScalar.
  Status RegisterRepair(const std::string& name, int arity, UserFn fn);

  /// Registers an aggregate from its monoid annotation: `zero` is the
  /// identity, `unit` lifts one element, `merge` is the associative ⊕.
  /// `finalize` (optional) maps the merged accumulator to the reported
  /// value. `commutative`/`idempotent` declare the algebraic properties the
  /// optimizer may rely on (merge order across nodes is unspecified, so
  /// non-commutative aggregates should fold into order-insensitive form).
  Status RegisterAggregate(const std::string& name, Value zero,
                           std::function<Value(const Value&)> unit,
                           std::function<Value(Value, const Value&)> merge,
                           UserFn finalize = nullptr, bool commutative = true,
                           bool idempotent = false);

  /// Scalar or repair function by name; nullptr when absent.
  const ScalarFunction* FindScalar(const std::string& name) const;
  /// Aggregate by name; nullptr when absent.
  const AggregateFunction* FindAggregate(const std::string& name) const;
  /// True when `name` is a registered repair function.
  bool IsRepair(const std::string& name) const;

  /// Checks a call site at Prepare time: unknown names and arity mismatches
  /// are kKeyError (the caller decorates the message with the source
  /// position). A name is acceptable if *any* interpretation — builtin
  /// function, builtin monoid (aggregates take one argument), registered
  /// scalar/repair, registered aggregate — matches the argument count.
  Status ValidateCall(const std::string& name, size_t num_args) const;

  size_t num_scalars() const;
  size_t num_aggregates() const;

 private:
  /// Expects mu_ held (exclusively) by the calling Register*.
  Status CheckName(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, ScalarFunction> scalars_;  // includes repairs
  std::map<std::string, AggregateFunction> aggregates_;
};

/// Resolves a Nest/Reduce aggregation monoid by name: the registry's
/// aggregates first (when `functions` is non-null; `*udf` then receives the
/// entry so callers can apply its finalize), falling back to the builtin
/// monoid registry. Shared by the physical planner and the reference
/// evaluator so the two paths cannot diverge.
Result<const Monoid*> ResolveAggregateMonoid(const FunctionRegistry* functions,
                                             const std::string& name,
                                             const AggregateFunction** udf = nullptr);

}  // namespace cleanm
