#include "functions/function_registry.h"

#include <mutex>

#include "monoid/eval.h"

namespace cleanm {

Status FunctionRegistry::CheckName(const std::string& name) const {
  if (name.empty()) return Status::InvalidArgument("function name is empty");
  if (IsBuiltinFunction(name)) {
    return Status::InvalidArgument("function '" + name +
                                   "' shadows a builtin function");
  }
  if (LookupMonoid(name).ok()) {
    return Status::InvalidArgument("function '" + name +
                                   "' shadows a builtin monoid");
  }
  if (scalars_.count(name) || aggregates_.count(name)) {
    return Status::InvalidArgument("function '" + name + "' is already registered");
  }
  return Status::OK();
}

Status FunctionRegistry::RegisterScalar(const std::string& name, int arity,
                                        UserFn fn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CLEANM_RETURN_NOT_OK(CheckName(name));
  if (!fn) return Status::InvalidArgument("function '" + name + "' has no body");
  scalars_.emplace(name, ScalarFunction{name, arity, std::move(fn), false});
  return Status::OK();
}

Status FunctionRegistry::RegisterRepair(const std::string& name, int arity,
                                        UserFn fn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CLEANM_RETURN_NOT_OK(CheckName(name));
  if (!fn) return Status::InvalidArgument("function '" + name + "' has no body");
  scalars_.emplace(name, ScalarFunction{name, arity, std::move(fn), true});
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(const std::string& name, Value zero,
                                           std::function<Value(const Value&)> unit,
                                           std::function<Value(Value, const Value&)> merge,
                                           UserFn finalize, bool commutative,
                                           bool idempotent) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CLEANM_RETURN_NOT_OK(CheckName(name));
  if (!unit || !merge) {
    return Status::InvalidArgument("aggregate '" + name +
                                   "' needs both a unit and a merge");
  }
  auto monoid = std::make_shared<Monoid>(name, std::move(zero), std::move(unit),
                                         std::move(merge), commutative, idempotent);
  aggregates_.emplace(
      name, AggregateFunction{name, std::move(monoid), std::move(finalize)});
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(const std::string& name) const {
  // The returned pointer outlives the lock: map nodes are stable and never
  // erased (see the class doc).
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

const AggregateFunction* FunctionRegistry::FindAggregate(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = aggregates_.find(name);
  return it == aggregates_.end() ? nullptr : &it->second;
}

size_t FunctionRegistry::num_scalars() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return scalars_.size();
}

size_t FunctionRegistry::num_aggregates() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return aggregates_.size();
}

bool FunctionRegistry::IsRepair(const std::string& name) const {
  const ScalarFunction* fn = FindScalar(name);
  return fn != nullptr && fn->is_repair;
}

Status FunctionRegistry::ValidateCall(const std::string& name,
                                      size_t num_args) const {
  bool known = false;
  const auto n = static_cast<int>(num_args);

  if (auto arity = BuiltinFunctionArity(name); arity.ok()) {
    known = true;
    if (arity.value() < 0 || arity.value() == n) return Status::OK();
  }
  if (const ScalarFunction* s = FindScalar(name)) {
    known = true;
    if (s->arity < 0 || s->arity == n) return Status::OK();
  }
  // Aggregate interpretations (builtin monoids and registered aggregates)
  // fold exactly one expression per group.
  if (FindAggregate(name) || LookupMonoid(name).ok()) {
    known = true;
    if (n == 1) return Status::OK();
  }

  if (!known) return Status::KeyError("unknown function '" + name + "'");
  return Status::KeyError("function '" + name + "' does not accept " +
                          std::to_string(num_args) + " argument(s)");
}

Result<const Monoid*> ResolveAggregateMonoid(const FunctionRegistry* functions,
                                             const std::string& name,
                                             const AggregateFunction** udf) {
  if (udf) *udf = nullptr;
  if (functions != nullptr) {
    if (const AggregateFunction* agg = functions->FindAggregate(name)) {
      if (udf) *udf = agg;
      return agg->monoid.get();
    }
  }
  return LookupMonoid(name);
}

}  // namespace cleanm
