// "colpack": a binary columnar on-disk format with dictionary encoding.
//
// Stand-in for Parquet in the evaluation (Figures 6b, 7): column-major
// layout, per-column dictionary encoding for strings (the compression that
// makes the Parquet runs faster/smaller in the paper), and support for
// nested list/struct values via a row-encoded auxiliary column section.
//
// Layout (little-endian):
//   magic "CPK1" | u32 ncols | u64 nrows
//   per column: u32 name_len | name | u8 type | encoding payload
// Scalar columns: type-specific arrays; strings are dictionary-coded
// (u32 dict_size, dict entries, then u32 codes). Nested columns fall back
// to length-prefixed serialized values.
#pragma once

#include <string>

#include "common/status.h"
#include "storage/dataset.h"

namespace cleanm {

/// Writes the dataset column-major with dictionary-coded strings.
Status WriteColpack(const Dataset& dataset, const std::string& path);

/// Reads a colpack file back into a Dataset.
Result<Dataset> ReadColpack(const std::string& path);

}  // namespace cleanm
