#include "storage/xml.h"

#include <fstream>
#include <sstream>

namespace cleanm {

namespace {

std::string DecodeEntities(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == '&') {
      if (s.compare(i, 5, "&amp;") == 0) {
        out += '&';
        i += 4;
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out += '<';
        i += 3;
        continue;
      }
      if (s.compare(i, 4, "&gt;") == 0) {
        out += '>';
        i += 3;
        continue;
      }
      if (s.compare(i, 6, "&quot;") == 0) {
        out += '"';
        i += 5;
        continue;
      }
      if (s.compare(i, 6, "&apos;") == 0) {
        out += '\'';
        i += 5;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string EncodeEntities(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

struct Tag {
  std::string name;
  bool closing = false;
  bool self_closing = false;
  bool declaration = false;  // <?xml ...?> or <!...>
};

/// Scans the next tag starting at `*pos` (which must point at '<').
Result<Tag> ReadTag(const std::string& t, size_t* pos) {
  CLEANM_CHECK(t[*pos] == '<');
  const size_t end = t.find('>', *pos);
  if (end == std::string::npos) return Status::ParseError("unterminated XML tag");
  std::string inner = t.substr(*pos + 1, end - *pos - 1);
  *pos = end + 1;
  Tag tag;
  if (!inner.empty() && (inner[0] == '?' || inner[0] == '!')) {
    tag.declaration = true;
    return tag;
  }
  if (!inner.empty() && inner[0] == '/') {
    tag.closing = true;
    inner = inner.substr(1);
  }
  if (!inner.empty() && inner.back() == '/') {
    tag.self_closing = true;
    inner.pop_back();
  }
  // Drop attributes: the name runs to the first whitespace.
  const size_t sp = inner.find_first_of(" \t\r\n");
  tag.name = (sp == std::string::npos) ? inner : inner.substr(0, sp);
  if (tag.name.empty() && !tag.declaration) {
    return Status::ParseError("empty XML tag name");
  }
  return tag;
}

/// Reads text content until the next '<'.
std::string ReadText(const std::string& t, size_t* pos) {
  const size_t start = *pos;
  const size_t end = t.find('<', start);
  *pos = (end == std::string::npos) ? t.size() : end;
  return DecodeEntities(t.substr(start, *pos - start));
}

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

Result<Dataset> ParseXmlString(const std::string& text) {
  size_t pos = 0;
  // Find the root element.
  std::string root;
  while (pos < text.size()) {
    const size_t lt = text.find('<', pos);
    if (lt == std::string::npos) return Status::ParseError("no root element");
    pos = lt;
    CLEANM_ASSIGN_OR_RETURN(Tag tag, ReadTag(text, &pos));
    if (tag.declaration) continue;
    if (tag.closing) return Status::ParseError("unexpected closing tag before root");
    root = tag.name;
    break;
  }

  // Iterate over record elements under the root.
  std::vector<ValueStruct> records;
  std::vector<std::string> key_order;
  auto note_key = [&key_order](const std::string& k) {
    for (const auto& existing : key_order) {
      if (existing == k) return;
    }
    key_order.push_back(k);
  };

  while (pos < text.size()) {
    const size_t lt = text.find('<', pos);
    if (lt == std::string::npos) break;
    pos = lt;
    CLEANM_ASSIGN_OR_RETURN(Tag rec, ReadTag(text, &pos));
    if (rec.declaration) continue;
    if (rec.closing) {
      if (rec.name != root) {
        return Status::ParseError("mismatched closing tag </" + rec.name + ">");
      }
      break;  // end of document
    }
    const std::string record_tag = rec.name;
    // Collect child fields. Repeated tags accumulate into a list.
    ValueStruct fields;
    if (!rec.self_closing) {
      while (true) {
        (void)ReadText(text, &pos);  // skip whitespace between children
        if (pos >= text.size()) return Status::ParseError("unterminated record");
        CLEANM_ASSIGN_OR_RETURN(Tag child, ReadTag(text, &pos));
        if (child.declaration) continue;
        if (child.closing) {
          if (child.name != record_tag) {
            return Status::ParseError("mismatched closing tag </" + child.name + ">");
          }
          break;
        }
        std::string content;
        if (!child.self_closing) {
          content = Trim(ReadText(text, &pos));
          CLEANM_ASSIGN_OR_RETURN(Tag close, ReadTag(text, &pos));
          if (!close.closing || close.name != child.name) {
            return Status::ParseError("expected </" + child.name + ">");
          }
        }
        // Merge into `fields`: first occurrence is a scalar; a repeat
        // upgrades the field to a list.
        bool merged = false;
        for (auto& [fname, fval] : fields) {
          if (fname != child.name) continue;
          if (fval.type() == ValueType::kList) {
            fval.MutableList().push_back(Value(content));
          } else {
            fval = Value(ValueList{fval, Value(content)});
          }
          merged = true;
          break;
        }
        if (!merged) fields.emplace_back(child.name, Value(content));
        note_key(child.name);
      }
    }
    records.push_back(std::move(fields));
  }

  // Assemble aligned rows.
  std::vector<Field> schema_fields;
  for (const auto& k : key_order) schema_fields.push_back({k, ValueType::kString});
  Dataset out(Schema{std::move(schema_fields)});
  for (auto& rec : records) {
    Row row;
    row.reserve(key_order.size());
    for (const auto& k : key_order) {
      Value found = Value::Null();
      for (auto& [fname, fval] : rec) {
        if (fname == k) {
          found = fval;
          break;
        }
      }
      row.push_back(std::move(found));
    }
    out.Append(std::move(row));
  }
  for (size_t i = 0; i < out.schema().num_fields(); i++) {
    for (const auto& r : out.rows()) {
      if (!r[i].is_null()) {
        out.mutable_schema()->mutable_field(i)->type = r[i].type();
        break;
      }
    }
  }
  return out;
}

Result<Dataset> ReadXml(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseXmlString(buf.str());
}

Status WriteXml(const Dataset& dataset, const std::string& path,
                const std::string& root_tag, const std::string& record_tag) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  out << '<' << root_tag << ">\n";
  for (const auto& row : dataset.rows()) {
    out << "  <" << record_tag << ">\n";
    for (size_t i = 0; i < row.size(); i++) {
      const std::string& name = dataset.schema().field(i).name;
      const Value& v = row[i];
      if (v.is_null()) continue;
      if (v.type() == ValueType::kList) {
        for (const auto& e : v.AsList()) {
          out << "    <" << name << '>' << EncodeEntities(e.ToString()) << "</" << name
              << ">\n";
        }
      } else {
        out << "    <" << name << '>' << EncodeEntities(v.ToString()) << "</" << name
            << ">\n";
      }
    }
    out << "  </" << record_tag << ">\n";
  }
  out << "</" << root_tag << ">\n";
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace cleanm
