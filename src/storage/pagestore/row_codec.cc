#include "storage/pagestore/row_codec.h"

#include <cstring>

namespace cleanm {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

Status Truncated(const char* what) {
  return Status::IOError(std::string("row codec: truncated payload reading ") +
                         what);
}

Result<uint32_t> GetU32(const std::string& buf, size_t* pos, const char* what) {
  if (buf.size() - *pos < 4) return Truncated(what);
  uint32_t v;
  std::memcpy(&v, buf.data() + *pos, 4);
  *pos += 4;
  return v;
}

Result<uint64_t> GetU64(const std::string& buf, size_t* pos, const char* what) {
  if (buf.size() - *pos < 8) return Truncated(what);
  uint64_t v;
  std::memcpy(&v, buf.data() + *pos, 8);
  *pos += 8;
  return v;
}

Result<std::string> GetBytes(const std::string& buf, size_t* pos, size_t len,
                             const char* what) {
  if (buf.size() - *pos < len) return Truncated(what);
  std::string s(buf.data() + *pos, len);
  *pos += len;
  return s;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt: {
      // Two's-complement bits through uint64: exact.
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      break;
    }
    case ValueType::kDouble: {
      // Raw IEEE bits: NaN payloads, -0.0, everything round-trips.
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(bits, out);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      break;
    }
    case ValueType::kList: {
      const ValueList& l = v.AsList();
      PutU32(static_cast<uint32_t>(l.size()), out);
      for (const auto& e : l) EncodeValue(e, out);
      break;
    }
    case ValueType::kStruct: {
      const ValueStruct& s = v.AsStruct();
      PutU32(static_cast<uint32_t>(s.size()), out);
      for (const auto& [name, field] : s) {
        PutU32(static_cast<uint32_t>(name.size()), out);
        out->append(name);
        EncodeValue(field, out);
      }
      break;
    }
  }
}

void EncodeRow(const Row& row, std::string* out) {
  PutU32(static_cast<uint32_t>(row.size()), out);
  for (const auto& v : row) EncodeValue(v, out);
}

void EncodeRowChunk(const Row* rows, size_t count, std::string* out) {
  PutU32(static_cast<uint32_t>(count), out);
  for (size_t i = 0; i < count; i++) EncodeRow(rows[i], out);
}

Result<Value> DecodeValue(const std::string& buf, size_t* pos) {
  if (*pos >= buf.size()) return Truncated("value tag");
  const auto tag = static_cast<ValueType>(buf[(*pos)++]);
  switch (tag) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      if (*pos >= buf.size()) return Truncated("bool");
      return Value(buf[(*pos)++] != 0);
    }
    case ValueType::kInt: {
      CLEANM_ASSIGN_OR_RETURN(uint64_t bits, GetU64(buf, pos, "int"));
      return Value(static_cast<int64_t>(bits));
    }
    case ValueType::kDouble: {
      CLEANM_ASSIGN_OR_RETURN(uint64_t bits, GetU64(buf, pos, "double"));
      double d;
      std::memcpy(&d, &bits, 8);
      return Value(d);
    }
    case ValueType::kString: {
      CLEANM_ASSIGN_OR_RETURN(uint32_t len, GetU32(buf, pos, "string length"));
      CLEANM_ASSIGN_OR_RETURN(std::string s, GetBytes(buf, pos, len, "string"));
      return Value(std::move(s));
    }
    case ValueType::kList: {
      CLEANM_ASSIGN_OR_RETURN(uint32_t n, GetU32(buf, pos, "list length"));
      ValueList l;
      l.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        CLEANM_ASSIGN_OR_RETURN(Value e, DecodeValue(buf, pos));
        l.push_back(std::move(e));
      }
      return Value(std::move(l));
    }
    case ValueType::kStruct: {
      CLEANM_ASSIGN_OR_RETURN(uint32_t n, GetU32(buf, pos, "struct length"));
      ValueStruct s;
      s.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        CLEANM_ASSIGN_OR_RETURN(uint32_t len, GetU32(buf, pos, "field name length"));
        CLEANM_ASSIGN_OR_RETURN(std::string name,
                                GetBytes(buf, pos, len, "field name"));
        CLEANM_ASSIGN_OR_RETURN(Value field, DecodeValue(buf, pos));
        s.emplace_back(std::move(name), std::move(field));
      }
      return Value(std::move(s));
    }
  }
  return Status::IOError("row codec: unknown value tag (corrupt page payload)");
}

Result<Row> DecodeRow(const std::string& buf, size_t* pos) {
  CLEANM_ASSIGN_OR_RETURN(uint32_t arity, GetU32(buf, pos, "row arity"));
  Row row;
  row.reserve(arity);
  for (uint32_t i = 0; i < arity; i++) {
    CLEANM_ASSIGN_OR_RETURN(Value v, DecodeValue(buf, pos));
    row.push_back(std::move(v));
  }
  return row;
}

Status DecodeRowChunk(const std::string& payload, std::vector<Row>* out) {
  size_t pos = 0;
  CLEANM_ASSIGN_OR_RETURN(uint32_t count, GetU32(payload, &pos, "chunk row count"));
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; i++) {
    CLEANM_ASSIGN_OR_RETURN(Row row, DecodeRow(payload, &pos));
    out->push_back(std::move(row));
  }
  if (pos != payload.size()) {
    return Status::IOError("row codec: trailing bytes after chunk");
  }
  return Status::OK();
}

}  // namespace cleanm
