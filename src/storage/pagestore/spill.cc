#include "storage/pagestore/spill.h"

#include <cstring>

#include "common/trace.h"

namespace cleanm {

Result<std::vector<PageSpan>> SpillContext::SpillRows(
    const std::vector<Row>& rows) {
  TraceScope spill_span("io", "spill_write");
  spill_span.SetRowsIn(rows.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) {
    CLEANM_ASSIGN_OR_RETURN(store_,
                            SingleFileStore::CreateTemp(spill_dir_, "spill",
                                                        page_bytes_));
  }
  std::vector<PageSpan> spans;
  std::string payload;
  uint32_t pending = 0;
  auto flush = [&]() -> Status {
    if (pending == 0) return Status::OK();
    std::string chunk;
    chunk.reserve(4 + payload.size());
    char count[4];
    std::memcpy(count, &pending, 4);
    chunk.append(count, 4);
    chunk.append(payload);
    CLEANM_ASSIGN_OR_RETURN(uint64_t page_id, store_->AppendPage(chunk));
    spans.push_back(PageSpan{page_id, pending});
    bytes_spilled_.fetch_add(chunk.size());
    payload.clear();
    pending = 0;
    return Status::OK();
  };
  for (size_t i = 0; i < rows.size(); i++) {
    EncodeRow(rows[i], &payload);
    pending++;
    if (payload.size() + sizeof(PageHeader) + 4 >= store_->page_bytes()) {
      CLEANM_RETURN_NOT_OK(flush());
    }
  }
  CLEANM_RETURN_NOT_OK(flush());
  return spans;
}

Status SpillContext::ReadBack(const std::vector<PageSpan>& chunks,
                              std::vector<Row>* out) const {
  TraceScope readback_span("io", "spill_readback");
  const SingleFileStore* store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = store_.get();
  }
  if (store == nullptr) {
    return chunks.empty() ? Status::OK()
                          : Status::Internal("spill read-back before any spill");
  }
  for (const PageSpan& chunk : chunks) {
    PagePin pin;
    if (pool_ != nullptr) {
      CLEANM_ASSIGN_OR_RETURN(pin, pool_->Pin(*store, chunk.page_id));
    } else {
      CLEANM_ASSIGN_OR_RETURN(std::string payload, store->ReadPage(chunk.page_id));
      pin = std::make_shared<const std::string>(std::move(payload));
    }
    const size_t before = out->size();
    CLEANM_RETURN_NOT_OK(DecodeRowChunk(*pin, out));
    if (out->size() - before != chunk.rows) {
      return Status::IOError("spill: chunk row count mismatch");
    }
  }
  readback_span.SetRowsOut(out->size());
  return Status::OK();
}

}  // namespace cleanm
