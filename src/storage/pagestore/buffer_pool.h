// Byte-budget buffer pool over SingleFileStore pages.
//
// Pin/unpin protocol (the PartitionPin pattern from the partition cache):
// Pin returns a shared-ownership lease on the page payload; LRU eviction
// only drops the *pool's* reference, so a reader streaming from a pinned
// page is never torn even if the frame is evicted under it — resident
// accounting tracks what the pool's frame map holds, and an evicted-but-
// pinned payload is charged to its reader, not the pool. A single payload
// larger than the whole budget is admitted alone (same rule as the
// partition cache), so resident bytes never exceed
// max(budget, largest single page).
//
// Frames are keyed by (store_id, page_id). Store ids are process-unique
// and never recycled, so frames of a destroyed store (a finished
// execution's spill file) go stale harmlessly and age out by LRU instead
// of aliasing a later store.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"
#include "storage/pagestore/single_file_store.h"

namespace cleanm {

/// Shared read lease on one page payload. Holding it keeps the bytes alive
/// across evictions.
using PagePin = std::shared_ptr<const std::string>;

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< pages read from disk
    uint64_t evictions = 0; ///< frames dropped by the byte budget
    uint64_t resident_bytes = 0;
    uint64_t peak_resident_bytes = 0;
  };

  /// `byte_budget` bounds the summed payload bytes of resident frames;
  /// 0 = unbounded.
  explicit BufferPool(uint64_t byte_budget) : byte_budget_(byte_budget) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pin on the page, reading it from `store` on a miss. The
  /// disk read happens outside the pool mutex; two racing misses on the
  /// same page both read, and the loser adopts the winner's frame.
  Result<PagePin> Pin(const SingleFileStore& store, uint64_t page_id);

  uint64_t byte_budget() const { return byte_budget_; }
  Stats stats() const;

 private:
  using FrameKey = std::pair<uint64_t, uint64_t>;  ///< (store_id, page_id)
  struct Frame {
    PagePin data;
    uint64_t last_used = 0;
  };

  void EvictToBudgetLocked(const FrameKey& keep);

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  uint64_t resident_bytes_ = 0;
  std::map<FrameKey, Frame> frames_;
  Stats stats_;
};

}  // namespace cleanm
