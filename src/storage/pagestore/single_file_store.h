// Single-file page store: append-only checksummed pages in one flat file.
//
// The store is scratch storage for one session (paged table registrations,
// partition-cache write-back) or one execution (breaker spill): pages are
// immutable once written, ids are never recycled, and the whole file is
// unlinked when the store closes (remove-on-close) — there is no recovery
// story, by design, because everything in it can be recomputed from the
// registered datasets.
//
// Thread model: AppendPage serializes slot allocation + pwrite under a
// mutex; ReadPage uses pread and takes no lock, so concurrent readers
// (buffer-pool misses on different worker threads) never contend. A page
// id is only published to readers after its write completed, so a reader
// can never observe a partially written page of its own id.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/pagestore/page.h"

namespace cleanm {

class SingleFileStore {
 public:
  /// Creates (truncates) `path`. `remove_on_close` unlinks it in the
  /// destructor — the RAII guarantee the spill satellite relies on.
  static Result<std::unique_ptr<SingleFileStore>> Create(
      std::string path, size_t page_bytes = kDefaultPageBytes,
      bool remove_on_close = true);

  /// Creates a uniquely named remove-on-close store under `dir`
  /// (empty = the system temp directory).
  static Result<std::unique_ptr<SingleFileStore>> CreateTemp(
      const std::string& dir, const std::string& prefix,
      size_t page_bytes = kDefaultPageBytes);

  ~SingleFileStore();

  SingleFileStore(const SingleFileStore&) = delete;
  SingleFileStore& operator=(const SingleFileStore&) = delete;

  /// Writes `payload` as one page (spanning multiple slots when oversized)
  /// and returns its page id.
  Result<uint64_t> AppendPage(const std::string& payload);

  /// Reads back the page at `page_id`, verifying magic, id, length, and
  /// checksum; any mismatch is a kIOError naming the file, page, and byte
  /// offset. Thread-safe (pread, no lock).
  Result<std::string> ReadPage(uint64_t page_id) const;

  const std::string& path() const { return path_; }
  size_t page_bytes() const { return page_bytes_; }
  /// Process-unique store identity — the buffer pool's frame key. Ids are
  /// never recycled, so a destroyed store's stale frames can never alias a
  /// later store (unlike raw pointers).
  uint64_t store_id() const { return store_id_; }
  uint64_t pages_allocated() const { return next_slot_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }

 private:
  SingleFileStore(std::string path, int fd, size_t page_bytes,
                  bool remove_on_close);

  std::string path_;
  int fd_ = -1;
  size_t page_bytes_;
  bool remove_on_close_;
  uint64_t store_id_;
  std::mutex append_mu_;
  std::atomic<uint64_t> next_slot_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace cleanm
