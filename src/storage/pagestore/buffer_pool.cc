#include "storage/pagestore/buffer_pool.h"

#include "common/trace.h"

namespace cleanm {

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<PagePin> BufferPool::Pin(const SingleFileStore& store, uint64_t page_id) {
  const FrameKey key{store.store_id(), page_id};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      it->second.last_used = ++tick_;
      stats_.hits++;
      return it->second.data;
    }
  }
  // Miss: read outside the mutex so concurrent misses on *different* pages
  // overlap their I/O (the tsan stress test churns exactly this path).
  TraceScope miss_span("io", "page_miss");
  CLEANM_ASSIGN_OR_RETURN(std::string payload, store.ReadPage(page_id));
  auto pin = std::make_shared<const std::string>(std::move(payload));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // A racing miss beat us to the insert; adopt its frame and drop ours.
    it->second.last_used = ++tick_;
    stats_.hits++;
    return it->second.data;
  }
  stats_.misses++;
  Frame frame;
  frame.data = pin;
  frame.last_used = ++tick_;
  resident_bytes_ += pin->size();
  frames_.emplace(key, std::move(frame));
  if (byte_budget_ > 0) EvictToBudgetLocked(key);
  stats_.resident_bytes = resident_bytes_;
  // Sampled after eviction: the steady-state invariant the CI gate checks
  // is resident ≤ max(budget, largest single payload).
  if (resident_bytes_ > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = resident_bytes_;
  }
  return pin;
}

void BufferPool::EvictToBudgetLocked(const FrameKey& keep) {
  while (resident_bytes_ > byte_budget_ && frames_.size() > 1) {
    auto victim = frames_.end();
    for (auto it = frames_.begin(); it != frames_.end(); ++it) {
      if (it->first == keep) continue;  // never evict the frame being pinned
      if (victim == frames_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == frames_.end()) return;
    // Drops only the pool's reference: outstanding pins keep the payload.
    resident_bytes_ -= victim->second.data->size();
    frames_.erase(victim);
    stats_.evictions++;
  }
  stats_.resident_bytes = resident_bytes_;
}

}  // namespace cleanm
