#include "storage/pagestore/paged_table.h"

#include <cstring>

namespace cleanm {

Status PagedTable::ScanRows(BufferPool* pool,
                            const std::function<void(Row&&)>& emit) const {
  for (const PageSpan& chunk : chunks_) {
    PagePin pin;
    if (pool != nullptr) {
      CLEANM_ASSIGN_OR_RETURN(pin, pool->Pin(*store_, chunk.page_id));
    } else {
      CLEANM_ASSIGN_OR_RETURN(std::string payload,
                              store_->ReadPage(chunk.page_id));
      pin = std::make_shared<const std::string>(std::move(payload));
    }
    std::vector<Row> rows;
    CLEANM_RETURN_NOT_OK(DecodeRowChunk(*pin, &rows));
    if (rows.size() != chunk.rows) {
      return Status::IOError("paged table: chunk row count mismatch");
    }
    for (auto& row : rows) emit(std::move(row));
  }
  return Status::OK();
}

Status PagedTableBuilder::Append(const Row& row) {
  EncodeRow(row, &pending_payload_);
  pending_rows_++;
  num_rows_++;
  logical_bytes_ += RowByteSize(row);
  // Flush when the open chunk fills its page (header + count prefix leave
  // a little slack; oversized single rows span slots, see page.h).
  if (pending_payload_.size() + sizeof(PageHeader) + 4 >= store_->page_bytes()) {
    return Flush();
  }
  return Status::OK();
}

Status PagedTableBuilder::Flush() {
  if (pending_rows_ == 0) return Status::OK();
  std::string payload;
  payload.reserve(4 + pending_payload_.size());
  char count[4];
  std::memcpy(count, &pending_rows_, 4);
  payload.append(count, 4);
  payload.append(pending_payload_);
  CLEANM_ASSIGN_OR_RETURN(uint64_t page_id, store_->AppendPage(payload));
  chunks_.push_back(PageSpan{page_id, pending_rows_});
  pending_payload_.clear();
  pending_rows_ = 0;
  return Status::OK();
}

Result<PagedTable> PagedTableBuilder::Finish(Schema schema) {
  CLEANM_RETURN_NOT_OK(Flush());
  return PagedTable(std::move(schema), store_, std::move(chunks_), num_rows_,
                    logical_bytes_);
}

}  // namespace cleanm
