// Page layout of the out-of-core store (DESIGN.md, "Out-of-core storage
// & spill").
//
// A SingleFileStore is a flat array of fixed-size *slots* of `page_bytes`
// each. A logical page is one checksummed payload written at a slot
// boundary; a payload larger than one slot spans ceil(size / page_bytes)
// consecutive slots (so the page size is a granularity, not a hard cap —
// a single oversized row never wedges ingestion). Every page starts with
// a PageHeader whose FNV-1a checksum covers the payload, making torn or
// corrupted reads detectable as a positioned kIOError instead of UB.
#pragma once

#include <cstdint>
#include <cstring>

namespace cleanm {

/// Default page granularity: 64 KiB, a few thousand customer rows.
inline constexpr size_t kDefaultPageBytes = 64 * 1024;

/// On-disk header preceding every page payload. Fixed-width fields,
/// written and read by the same process image (the store is session- or
/// execution-scoped scratch, never an interchange format), so the struct
/// bytes are the layout.
struct PageHeader {
  static constexpr uint64_t kMagic = 0x436c6e4d50616765ULL;  // "ClnMPage"

  uint64_t magic = kMagic;
  uint64_t page_id = 0;       ///< slot index; must match the read request
  uint64_t checksum = 0;      ///< Fnv1a over the payload bytes
  uint32_t payload_len = 0;   ///< bytes following the header
  uint32_t reserved = 0;
};
static_assert(sizeof(PageHeader) == 32, "page header layout");

/// A contiguous run of encoded rows inside a store: the unit a spilled
/// partition or a paged-table chunk is addressed by.
struct PageSpan {
  uint64_t page_id = 0;  ///< first slot of the chunk's page
  uint32_t rows = 0;     ///< decoded row count (redundant with the chunk
                         ///< header; lets readers reserve up front)
};

}  // namespace cleanm
