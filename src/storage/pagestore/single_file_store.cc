#include "storage/pagestore/single_file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/hash.h"

namespace cleanm {

namespace {

std::atomic<uint64_t> g_store_seq{0};

Status Positioned(const std::string& path, uint64_t page_id, uint64_t offset,
                  const std::string& what) {
  std::ostringstream os;
  os << path << ": page " << page_id << " at byte offset " << offset << ": "
     << what;
  return Status::IOError(os.str());
}

}  // namespace

SingleFileStore::SingleFileStore(std::string path, int fd, size_t page_bytes,
                                 bool remove_on_close)
    : path_(std::move(path)),
      fd_(fd),
      page_bytes_(page_bytes),
      remove_on_close_(remove_on_close),
      store_id_(++g_store_seq) {}

SingleFileStore::~SingleFileStore() {
  if (fd_ >= 0) ::close(fd_);
  if (remove_on_close_) ::unlink(path_.c_str());
}

Result<std::unique_ptr<SingleFileStore>> SingleFileStore::Create(
    std::string path, size_t page_bytes, bool remove_on_close) {
  if (page_bytes <= sizeof(PageHeader)) {
    return Status::InvalidArgument("page_bytes must exceed the page header");
  }
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (fd < 0) {
    return Status::IOError(path + ": open: " + std::strerror(errno));
  }
  return std::unique_ptr<SingleFileStore>(
      new SingleFileStore(std::move(path), fd, page_bytes, remove_on_close));
}

Result<std::unique_ptr<SingleFileStore>> SingleFileStore::CreateTemp(
    const std::string& dir, const std::string& prefix, size_t page_bytes) {
  std::error_code ec;
  std::string base = dir;
  if (base.empty()) {
    base = std::filesystem::temp_directory_path(ec).string();
    if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  } else {
    std::filesystem::create_directories(base, ec);
    if (ec) return Status::IOError(base + ": create_directories: " + ec.message());
  }
  // pid + a process-wide sequence makes the name unique across concurrent
  // sessions and executions without coordinating through O_EXCL retries.
  std::ostringstream name;
  name << base << "/" << prefix << "." << ::getpid() << "."
       << (g_store_seq.load() + 1) << ".cleanm-pages";
  return Create(name.str(), page_bytes, /*remove_on_close=*/true);
}

Result<uint64_t> SingleFileStore::AppendPage(const std::string& payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("page payload exceeds 4 GiB");
  }
  PageHeader header;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.checksum = Fnv1a(payload.data(), payload.size());

  const uint64_t total = sizeof(PageHeader) + payload.size();
  const uint64_t slots = (total + page_bytes_ - 1) / page_bytes_;

  std::lock_guard<std::mutex> lock(append_mu_);
  const uint64_t page_id = next_slot_.load();
  header.page_id = page_id;
  const uint64_t offset = page_id * page_bytes_;

  std::string buf(sizeof(PageHeader) + payload.size(), '\0');
  std::memcpy(buf.data(), &header, sizeof(PageHeader));
  std::memcpy(buf.data() + sizeof(PageHeader), payload.data(), payload.size());
  size_t written = 0;
  while (written < buf.size()) {
    const ssize_t n = ::pwrite(fd_, buf.data() + written, buf.size() - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Positioned(path_, page_id, offset + written,
                        std::string("pwrite: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  // Publish the slot advance only after the bytes are durably in the file
  // (page-cache durable — crash safety is a non-goal for scratch), so a
  // concurrent ReadPage of this id cannot see a torn page.
  next_slot_.store(page_id + slots);
  bytes_written_.fetch_add(buf.size());
  return page_id;
}

Result<std::string> SingleFileStore::ReadPage(uint64_t page_id) const {
  const uint64_t offset = page_id * page_bytes_;
  PageHeader header;
  ssize_t n = ::pread(fd_, &header, sizeof(header), static_cast<off_t>(offset));
  if (n < 0) {
    return Positioned(path_, page_id, offset,
                      std::string("pread: ") + std::strerror(errno));
  }
  if (static_cast<size_t>(n) < sizeof(header)) {
    return Positioned(path_, page_id, offset, "short read of page header");
  }
  if (header.magic != PageHeader::kMagic) {
    return Positioned(path_, page_id, offset, "bad page magic (corrupt page)");
  }
  if (header.page_id != page_id) {
    std::ostringstream os;
    os << "page id mismatch (header says " << header.page_id << ")";
    return Positioned(path_, page_id, offset, os.str());
  }
  std::string payload(header.payload_len, '\0');
  size_t got = 0;
  while (got < payload.size()) {
    n = ::pread(fd_, payload.data() + got, payload.size() - got,
                static_cast<off_t>(offset + sizeof(header) + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Positioned(path_, page_id, offset + sizeof(header) + got,
                        std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Positioned(path_, page_id, offset + sizeof(header) + got,
                        "short read of page payload");
    }
    got += static_cast<size_t>(n);
  }
  const uint64_t checksum = Fnv1a(payload.data(), payload.size());
  if (checksum != header.checksum) {
    std::ostringstream os;
    os << "checksum mismatch (stored " << header.checksum << ", computed "
       << checksum << ")";
    return Positioned(path_, page_id, offset, os.str());
  }
  return payload;
}

}  // namespace cleanm
