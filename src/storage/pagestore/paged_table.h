// Paged table: a registered dataset's rows as row chunks in a
// SingleFileStore, scanned through the buffer pool one pinned page at a
// time instead of from a resident std::vector<Row>.
//
// The chunk list preserves ingestion row order exactly, so a paged scan
// replays the same row sequence Cluster::Parallelize would see from the
// resident dataset — the property that keeps paged and in-memory
// executions bit-identical.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/dataset.h"
#include "storage/pagestore/buffer_pool.h"
#include "storage/pagestore/page.h"
#include "storage/pagestore/row_codec.h"

namespace cleanm {

class PagedTable {
 public:
  PagedTable(Schema schema, std::shared_ptr<SingleFileStore> store,
             std::vector<PageSpan> chunks, uint64_t num_rows,
             uint64_t logical_bytes)
      : schema_(std::move(schema)),
        store_(std::move(store)),
        chunks_(std::move(chunks)),
        num_rows_(num_rows),
        logical_bytes_(logical_bytes) {}

  const Schema& schema() const { return schema_; }
  const SingleFileStore& store() const { return *store_; }
  const std::vector<PageSpan>& chunks() const { return chunks_; }
  uint64_t num_rows() const { return num_rows_; }
  /// Summed RowByteSize of the ingested rows — the dataset-footprint
  /// figure budgets are sized against.
  uint64_t logical_bytes() const { return logical_bytes_; }

  /// Streams every row in ingestion order: pin chunk → decode → emit →
  /// unpin, so at most one chunk's payload is held per scan at a time
  /// (plus whatever the pool keeps resident under its budget).
  Status ScanRows(BufferPool* pool,
                  const std::function<void(Row&&)>& emit) const;

 private:
  Schema schema_;
  std::shared_ptr<SingleFileStore> store_;
  std::vector<PageSpan> chunks_;
  uint64_t num_rows_;
  uint64_t logical_bytes_;
};

/// Builds a PagedTable by appending rows, flushing a chunk page whenever
/// the encoded payload reaches the store's page granularity.
class PagedTableBuilder {
 public:
  explicit PagedTableBuilder(std::shared_ptr<SingleFileStore> store)
      : store_(std::move(store)) {}

  Status Append(const Row& row);

  /// Flushes the tail chunk and assembles the table. The builder is spent
  /// afterwards.
  Result<PagedTable> Finish(Schema schema);

 private:
  Status Flush();

  std::shared_ptr<SingleFileStore> store_;
  std::string pending_payload_;  ///< encoded rows of the open chunk
  uint32_t pending_rows_ = 0;
  std::vector<PageSpan> chunks_;
  uint64_t num_rows_ = 0;
  uint64_t logical_bytes_ = 0;
};

}  // namespace cleanm
