// Spill context: where pipeline breakers (Nest partials, hash-join build
// sides) and the partition cache park partitions that exceed the pool
// budget.
//
// One SpillContext lives per execution (stack-owned inside
// ExecutePrepared) or per session (the partition cache's write-back
// target). Its backing SingleFileStore is created lazily on first spill
// and is remove-on-close, so the temp file disappears on *every* exit
// path — success, sink abort, deadline/cancel unwinds, retry
// exhaustion — purely by destructor order (the RAII satellite).
//
// Thread model: SpillPartition serializes appends under the context mutex
// (workers of different nodes spill concurrently); ReadBack pins pages
// through the shared BufferPool and takes no context lock beyond the lazy
// store check. Lock order: a caller may hold engine worker state but
// never the partition-cache or pool mutex when calling SpillPartition
// (the cache write-back path holds the cache mutex, which is ordered
// *before* this context's mutex and the pool's — see DESIGN.md).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/pagestore/buffer_pool.h"
#include "storage/pagestore/page.h"
#include "storage/pagestore/row_codec.h"

namespace cleanm {

class SpillContext {
 public:
  /// `budget_bytes` is the pool byte budget spill decisions compare
  /// against (0 disables spilling); `pool` serves the read-back pins and
  /// must outlive the context.
  SpillContext(std::string spill_dir, size_t page_bytes, uint64_t budget_bytes,
               BufferPool* pool)
      : spill_dir_(std::move(spill_dir)),
        page_bytes_(page_bytes),
        budget_bytes_(budget_bytes),
        pool_(pool) {}

  bool enabled() const { return budget_bytes_ > 0; }

  /// Should state holding `resident_bytes` spill, given that `shares`
  /// peers (e.g. the cluster's nodes) each hold a like amount? True when
  /// the summed estimate exceeds the budget.
  bool ShouldSpill(uint64_t resident_bytes, size_t shares) const {
    return enabled() && resident_bytes * shares > budget_bytes_;
  }

  /// Writes `rows` out as page-sized chunks; returns their spans in row
  /// order. Thread-safe.
  Result<std::vector<PageSpan>> SpillRows(const std::vector<Row>& rows);

  /// Reads spilled chunks back in order, appending onto `*out`. Pins one
  /// page at a time through the pool.
  Status ReadBack(const std::vector<PageSpan>& chunks,
                  std::vector<Row>* out) const;

  uint64_t bytes_spilled() const { return bytes_spilled_.load(); }
  BufferPool* pool() const { return pool_; }
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  const std::string spill_dir_;
  const size_t page_bytes_;
  const uint64_t budget_bytes_;
  BufferPool* const pool_;

  mutable std::mutex mu_;
  std::unique_ptr<SingleFileStore> store_;  ///< lazy; remove-on-close
  std::atomic<uint64_t> bytes_spilled_{0};
};

}  // namespace cleanm
