// Row serialization for the page store: an exact, bit-faithful round trip
// of the dynamic Value model.
//
// Exactness is load-bearing, not cosmetic: spilled Nest partials and
// page-backed partitionings re-enter the same monoid merges and
// Equals/Hash-keyed maps as their resident twins, and the engine's
// bit-identical-violations contract (CI-gated) requires a decoded value to
// be indistinguishable from the original — int 1 must come back as int 1
// (never double 1.0), doubles keep their exact IEEE bits, struct field
// order is preserved.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace cleanm {

/// Appends the encoding of one value to `out` (1-byte type tag + payload).
void EncodeValue(const Value& v, std::string* out);

/// Appends one row (u32 arity + values).
void EncodeRow(const Row& row, std::string* out);

/// Appends a row chunk (u32 row count + rows) — the page payload format
/// shared by spilled partitions and paged-table chunks.
void EncodeRowChunk(const Row* rows, size_t count, std::string* out);

/// Decodes a value starting at `*pos`; advances `*pos`. Truncated or
/// malformed input is a kIOError (corrupt page payload), never UB.
Result<Value> DecodeValue(const std::string& buf, size_t* pos);

/// Decodes one row starting at `*pos`.
Result<Row> DecodeRow(const std::string& buf, size_t* pos);

/// Decodes a whole row chunk (the inverse of EncodeRowChunk), appending
/// onto `*out`.
Status DecodeRowChunk(const std::string& payload, std::vector<Row>* out);

}  // namespace cleanm
