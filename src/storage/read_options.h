// Shared loader robustness knobs: bounded skipping of malformed input rows.
//
// Real dirty data is dirty at the *file* level too — broken quoting, bad
// escapes, ragged arity. The strict default (any malformed row fails the
// whole load) is right for curated inputs, but a cleaning system should be
// able to ingest a mostly-good file and report what it dropped; that is
// what `max_bad_rows` buys. Dropped rows are never silent: each one is
// recorded with its 1-based physical line number and the parse error, in a
// ReadReport returned alongside the Dataset.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace cleanm {

class SingleFileStore;

/// One malformed input row skipped during a load.
struct BadRow {
  /// 1-based physical line number where the record starts (header counts
  /// as line 1 for CSV inputs that have one).
  size_t line = 0;
  std::string error;  ///< parse error that disqualified the row
};

/// What a tolerant load skipped. Filled (replacing previous contents) when
/// the caller passes a report out-param; bad_rows.size() <= max_bad_rows.
struct ReadReport {
  std::vector<BadRow> bad_rows;
  size_t rows_loaded = 0;  ///< rows that made it into the Dataset
};

/// Loader robustness knobs, embedded in each format's option struct.
struct ReadOptions {
  /// Maximum number of malformed rows to skip-and-record before the load
  /// fails. 0 (default) keeps the strict behavior: the first malformed
  /// row fails the whole load. When the count would exceed the cap, the
  /// load fails with a ParseError naming the cap and the offending line.
  size_t max_bad_rows = 0;

  /// Out-of-core ingestion target (storage/pagestore/): the paged read
  /// entry points (ReadCsvPaged / ReadJsonLinesPaged) append accepted rows
  /// to this store in page-sized chunks as they parse, so the file's rows
  /// are never all resident at once. Ignored by the plain Dataset readers.
  std::shared_ptr<SingleFileStore> page_store;
};

}  // namespace cleanm
