#include "storage/value.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace cleanm {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kList: return "list";
    case ValueType::kStruct: return "struct";
  }
  return "?";
}

ValueCoercionError::ValueCoercionError(ValueType actual, const char* wanted)
    : std::runtime_error(std::string("cannot read ") + ValueTypeName(actual) +
                         " value as " + wanted) {}

Result<Value> Value::GetField(const std::string& name) const {
  if (type() != ValueType::kStruct) {
    return Status::TypeError("GetField on non-struct value of type " +
                             std::string(ValueTypeName(type())));
  }
  for (const auto& [fname, fval] : AsStruct()) {
    if (fname == name) return fval;
  }
  return Status::KeyError("no field named '" + name + "'");
}

bool Value::Equals(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull: return true;
    case ValueType::kBool: return AsBool() == other.AsBool();
    case ValueType::kInt: return AsInt() == other.AsInt();
    case ValueType::kDouble: return AsDouble() == other.AsDouble();
    case ValueType::kString: return AsString() == other.AsString();
    case ValueType::kList: {
      const auto& a = AsList();
      const auto& b = other.AsList();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); i++) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ValueType::kStruct: {
      const auto& a = AsStruct();
      const auto& b = other.AsStruct();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); i++) {
        if (a[i].first != b[i].first || !a[i].second.Equals(b[i].second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

namespace {
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& other) const {
  // Cross-type numeric comparison first; otherwise order by type rank.
  if (is_numeric() && other.is_numeric()) {
    return Sign(ToDouble() - other.ToDouble());
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull: return 0;
    case ValueType::kBool: return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kInt: {
      const int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: return Sign(AsDouble() - other.AsDouble());
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kList: {
      const auto& a = AsList();
      const auto& b = other.AsList();
      const size_t n = a.size() < b.size() ? a.size() : b.size();
      for (size_t i = 0; i < n; i++) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case ValueType::kStruct: {
      const auto& a = AsStruct();
      const auto& b = other.AsStruct();
      const size_t n = a.size() < b.size() ? a.size() : b.size();
      for (size_t i = 0; i < n; i++) {
        const int nc = a[i].first.compare(b[i].first);
        if (nc != 0) return nc < 0 ? -1 : 1;
        const int c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  const uint64_t tag = HashInt(static_cast<uint64_t>(type()));
  switch (type()) {
    case ValueType::kNull: return tag;
    case ValueType::kBool: return HashCombine(tag, HashInt(AsBool() ? 1 : 0));
    case ValueType::kInt: return HashCombine(tag, HashInt(static_cast<uint64_t>(AsInt())));
    case ValueType::kDouble: {
      const double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashCombine(tag, HashInt(bits));
    }
    case ValueType::kString: return HashCombine(tag, HashString(AsString()));
    case ValueType::kList: {
      uint64_t h = tag;
      for (const auto& v : AsList()) h = HashCombine(h, v.Hash());
      return h;
    }
    case ValueType::kStruct: {
      uint64_t h = tag;
      for (const auto& [name, v] : AsStruct()) {
        h = HashCombine(h, HashString(name));
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
  }
  return tag;
}

Value Value::DeepCopy() const {
  switch (type()) {
    case ValueType::kList: {
      ValueList copy;
      copy.reserve(AsList().size());
      for (const auto& v : AsList()) copy.push_back(v.DeepCopy());
      return Value(std::move(copy));
    }
    case ValueType::kStruct: {
      ValueStruct copy;
      copy.reserve(AsStruct().size());
      for (const auto& [name, v] : AsStruct()) copy.emplace_back(name, v.DeepCopy());
      return Value(std::move(copy));
    }
    default:
      return *this;  // scalars have value semantics already
  }
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 1;
    case ValueType::kInt: return 8;
    case ValueType::kDouble: return 8;
    case ValueType::kString: return AsString().size() + 8;
    case ValueType::kList: {
      size_t s = 16;
      for (const auto& v : AsList()) s += v.ByteSize();
      return s;
    }
    case ValueType::kStruct: {
      size_t s = 16;
      for (const auto& [name, v] : AsStruct()) s += name.size() + v.ByteSize();
      return s;
    }
  }
  return 0;
}

namespace {
void Render(const Value& v, bool quote_strings, std::ostringstream& os) {
  switch (v.type()) {
    case ValueType::kNull: os << "null"; break;
    case ValueType::kBool: os << (v.AsBool() ? "true" : "false"); break;
    case ValueType::kInt: os << v.AsInt(); break;
    case ValueType::kDouble: {
      // Keep enough digits to round-trip, and keep whole values visibly
      // doubles ("60.0", not "60") so readers re-infer the right type.
      const double d = v.AsDouble();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      std::string s(buf);
      // Trim excess digits when a short form round-trips exactly.
      for (int prec = 1; prec < 17; prec++) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
        if (std::strtod(shorter, nullptr) == d) {
          s = shorter;
          break;
        }
      }
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("0123456789") != std::string::npos) {
        s += ".0";
      }
      os << s;
      break;
    }
    case ValueType::kString:
      if (quote_strings) {
        os << '"' << v.AsString() << '"';
      } else {
        os << v.AsString();
      }
      break;
    case ValueType::kList: {
      os << '[';
      bool first = true;
      for (const auto& e : v.AsList()) {
        if (!first) os << ',';
        first = false;
        Render(e, /*quote_strings=*/true, os);
      }
      os << ']';
      break;
    }
    case ValueType::kStruct: {
      os << '{';
      bool first = true;
      for (const auto& [name, e] : v.AsStruct()) {
        if (!first) os << ',';
        first = false;
        os << '"' << name << "\":";
        Render(e, /*quote_strings=*/true, os);
      }
      os << '}';
      break;
    }
  }
}
}  // namespace

std::string Value::ToString() const {
  std::ostringstream os;
  Render(*this, /*quote_strings=*/false, os);
  return os.str();
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const auto& v : row) h = HashCombine(h, v.Hash());
  return h;
}

size_t RowByteSize(const Row& row) {
  size_t s = 8;
  for (const auto& v : row) s += v.ByteSize();
  return s;
}

}  // namespace cleanm
