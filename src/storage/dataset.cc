#include "storage/dataset.h"

#include <sstream>

namespace cleanm {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); i++) {
    if (fields_[i].name == name) return i;
  }
  return Status::KeyError("schema has no field '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < fields_.size(); i++) {
    if (i) os << ", ";
    os << fields_[i].name << ':' << ValueTypeName(fields_[i].type);
  }
  os << ')';
  return os.str();
}

Status Dataset::Validate() const {
  for (size_t i = 0; i < rows_.size(); i++) {
    if (rows_[i].size() != schema_.num_fields()) {
      return Status::Internal("row " + std::to_string(i) + " has " +
                              std::to_string(rows_[i].size()) + " values, schema has " +
                              std::to_string(schema_.num_fields()) + " fields");
    }
  }
  return Status::OK();
}

size_t Dataset::ByteSize() const {
  size_t s = 0;
  for (const auto& r : rows_) s += RowByteSize(r);
  return s;
}

Result<Dataset> FlattenListColumn(const Dataset& in, const std::string& column) {
  CLEANM_ASSIGN_OR_RETURN(const size_t col, in.schema().IndexOf(column));
  Schema out_schema = in.schema();
  // The flattened column holds scalar elements; keep the name, relax the type.
  out_schema = Schema([&] {
    std::vector<Field> fields = in.schema().fields();
    fields[col].type = ValueType::kString;
    return fields;
  }());
  Dataset out(out_schema);
  for (const auto& row : in.rows()) {
    const Value& v = row[col];
    if (v.type() != ValueType::kList) {
      out.Append(row);  // already flat
      continue;
    }
    for (const auto& elem : v.AsList()) {
      Row copy = row;
      copy[col] = elem;
      out.Append(std::move(copy));
    }
  }
  return out;
}

}  // namespace cleanm
