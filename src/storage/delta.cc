#include "storage/delta.h"

namespace cleanm {

namespace {

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

}  // namespace

bool DeltaLog::Collect(uint64_t from_exclusive, uint64_t to_inclusive,
                       std::vector<Row>* added, std::vector<Row>* removed) const {
  if (to_inclusive <= from_exclusive) return true;  // empty window
  std::vector<Row> add_acc, rm_acc;
  // Entry generations are consecutive within an epoch, so contiguous
  // coverage means seeing exactly from+1, from+2, ..., to in order.
  uint64_t expect = from_exclusive + 1;
  for (const auto& entry : entries_) {
    if (entry->generation <= from_exclusive) continue;
    if (entry->generation > to_inclusive) break;
    if (entry->generation != expect) return false;
    expect++;
    for (const auto& r : entry->removed) {
      // A removal of a row added earlier in the window nets out: the base
      // never saw it, so neither output should.
      bool netted = false;
      for (size_t i = 0; i < add_acc.size(); i++) {
        if (RowsEqual(add_acc[i], r)) {
          add_acc.erase(add_acc.begin() + static_cast<long>(i));
          netted = true;
          break;
        }
      }
      if (!netted) rm_acc.push_back(r);
    }
    for (const auto& r : entry->added) add_acc.push_back(r);
  }
  if (expect != to_inclusive + 1) return false;  // window not fully covered
  added->insert(added->end(), add_acc.begin(), add_acc.end());
  removed->insert(removed->end(), rm_acc.begin(), rm_acc.end());
  return true;
}

}  // namespace cleanm
