#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cleanm {

namespace {

/// Splits one CSV record, honouring double-quote escaping. `pos` advances
/// past the record's trailing newline. `newlines` counts every '\n'
/// consumed (quoted embedded newlines included) so the caller can keep a
/// physical line counter; `unterminated` reports a quote still open when
/// the record ended (at EOF — an embedded newline just continues the
/// record), which tolerant loads treat as a bad row.
std::vector<std::string> SplitRecord(const std::string& text, size_t* pos, char delim,
                                     size_t* newlines, bool* unterminated) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  *newlines = 0;
  size_t i = *pos;
  for (; i < text.size(); i++) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          i++;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*newlines;
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++*newlines;
      i++;
      break;
    } else if (c == '\r') {
      // swallow; \n handled next iteration
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  *pos = i;
  *unterminated = in_quotes;
  return out;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); i++) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

Value ParseCell(const std::string& s, bool infer) {
  if (s.empty()) return Value::Null();
  if (!infer) return Value(s);
  if (LooksLikeInt(s)) return Value(static_cast<int64_t>(std::strtoll(s.c_str(), nullptr, 10)));
  if (LooksLikeDouble(s)) return Value(std::strtod(s.c_str(), nullptr));
  return Value(s);
}

void WriteCell(const Value& v, char delim, std::ostream& os) {
  const std::string s = v.is_null() ? "" : v.ToString();
  const bool needs_quotes = s.find(delim) != std::string::npos ||
                            s.find('"') != std::string::npos ||
                            s.find('\n') != std::string::npos;
  if (!needs_quotes) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

Result<Dataset> ParseCsvString(const std::string& text, const CsvOptions& options,
                               ReadReport* report) {
  if (report) *report = ReadReport{};
  std::vector<BadRow> bad_rows;
  // Skips one malformed record (recording it) while under the cap; over
  // the cap the whole load fails, naming the line.
  auto skip_or_fail = [&](size_t line_no, std::string error) -> Status {
    if (bad_rows.size() < options.read.max_bad_rows) {
      bad_rows.push_back({line_no, std::move(error)});
      return Status::OK();
    }
    std::string prefix = options.read.max_bad_rows
                             ? "more than " + std::to_string(options.read.max_bad_rows) +
                                   " bad rows; "
                             : "";
    return Status::ParseError(prefix + "line " + std::to_string(line_no) + ": " +
                              std::move(error));
  };

  size_t pos = 0;
  size_t line = 1;  // 1-based physical line of the next record
  size_t newlines = 0;
  bool unterminated = false;
  std::vector<std::string> header;
  if (options.has_header) {
    if (pos >= text.size()) return Status::ParseError("empty CSV input");
    header = SplitRecord(text, &pos, options.delimiter, &newlines, &unterminated);
    if (unterminated) {
      return Status::ParseError("line 1: unterminated quoted field in header");
    }
    line += newlines;
  }

  std::vector<Row> rows;
  size_t width = header.size();
  while (pos < text.size()) {
    const size_t record_line = line;
    auto cells = SplitRecord(text, &pos, options.delimiter, &newlines, &unterminated);
    line += newlines;
    if (!unterminated && cells.size() == 1 && cells[0].empty()) continue;  // blank line
    if (unterminated) {
      CLEANM_RETURN_NOT_OK(
          skip_or_fail(record_line, "unterminated quoted field"));
      continue;
    }
    if (width == 0) width = cells.size();
    if (cells.size() != width) {
      CLEANM_RETURN_NOT_OK(skip_or_fail(
          record_line, "CSV record has " + std::to_string(cells.size()) +
                           " fields, expected " + std::to_string(width)));
      continue;
    }
    Row row;
    row.reserve(cells.size());
    for (const auto& c : cells) row.push_back(ParseCell(c, options.infer_types));
    rows.push_back(std::move(row));
  }
  if (report) {
    report->bad_rows = std::move(bad_rows);
    report->rows_loaded = rows.size();
  }

  // Build the schema: header names (or f0..fn), types from the first
  // non-null value in each column.
  std::vector<Field> fields;
  for (size_t i = 0; i < width; i++) {
    Field f;
    f.name = options.has_header ? header[i] : ("f" + std::to_string(i));
    f.type = ValueType::kString;
    for (const auto& r : rows) {
      if (!r[i].is_null()) {
        f.type = r[i].type();
        break;
      }
    }
    fields.push_back(std::move(f));
  }
  return Dataset(Schema(std::move(fields)), std::move(rows));
}

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options,
                        ReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsvString(buf.str(), options, report);
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                const CsvOptions& options) {
  for (const auto& f : dataset.schema().fields()) {
    if (f.type == ValueType::kList || f.type == ValueType::kStruct) {
      return Status::InvalidArgument("CSV cannot store nested column '" + f.name +
                                     "'; flatten the dataset first");
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  if (options.has_header) {
    for (size_t i = 0; i < dataset.schema().num_fields(); i++) {
      if (i) out << options.delimiter;
      out << dataset.schema().field(i).name;
    }
    out << '\n';
  }
  for (const auto& row : dataset.rows()) {
    for (size_t i = 0; i < row.size(); i++) {
      if (i) out << options.delimiter;
      WriteCell(row[i], options.delimiter, out);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace cleanm
